GO ?= go

.PHONY: build test race vet check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# The full verification gate: build + vet + race-enabled tests.
check:
	./scripts/check.sh

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
