package visclean

// One benchmark per table and figure of the paper's evaluation (§VII).
// Each drives the same harness code as cmd/experiments, at a reduced
// generator scale so `go test -bench=.` finishes in minutes; run
// `cmd/experiments -scale 0.05 all` (or larger) for the numbers recorded
// in EXPERIMENTS.md. Benchmarks report ns/op for one full experiment
// unit plus custom metrics where a figure is about a quantity other than
// time (final EMD, user seconds).

import (
	"testing"

	"visclean/internal/artifact"
	"visclean/internal/datagen"
	"visclean/internal/experiments"
	"visclean/internal/oracle"
	"visclean/internal/pipeline"
	"visclean/internal/vql"
)

// benchScale keeps a full -bench=. run tractable.
const benchScale = 0.01

func benchEnv() *experiments.Env { return experiments.NewEnv(benchScale, 1) }

// BenchmarkTableIV_Datasets regenerates the three datasets and verifies
// their Table IV statistics.
func BenchmarkTableIV_Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := experiments.NewEnv(benchScale, int64(i+1))
		_ = experiments.TableIV(env)
	}
}

// BenchmarkTableV_Queries parses and executes all 18 workload queries on
// dirty and clean data.
func BenchmarkTableV_Queries(b *testing.B) {
	env := benchEnv()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableV(env); err != nil {
			b.Fatal(err)
		}
	}
}

// benchProgress drives one Exp-1 progression (Figs 10–12).
func benchProgress(b *testing.B, task string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		env := benchEnv()
		_, curve, err := experiments.Exp1Progress(env, task)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(curve.InitialDist, "dist0")
		b.ReportMetric(curve.FinalDist(), "distN")
	}
}

// BenchmarkFig10_ProgressQ1 is the paper's running example: Q1 cleaned
// by GSS with chart snapshots at 0/5/10/15 questions.
func BenchmarkFig10_ProgressQ1(b *testing.B) { benchProgress(b, "Q1") }

// BenchmarkFig11_ProgressQ7 cleans the predicate-heavy Q7.
func BenchmarkFig11_ProgressQ7(b *testing.B) { benchProgress(b, "Q7") }

// BenchmarkFig12_ProgressQ8 cleans the pie chart Q8.
func BenchmarkFig12_ProgressQ8(b *testing.B) { benchProgress(b, "Q8") }

// BenchmarkFig13_EMDCurves runs the per-dataset EMD-vs-iteration curves.
func BenchmarkFig13_EMDCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := benchEnv()
		if _, _, err := experiments.Exp1Curves(env, []string{"Q1", "Q10", "Q15"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig14_SelectorEffectiveness compares GSS, GSS+, B&B, 5-B&B,
// Single and Random end to end on one task.
func BenchmarkFig14_SelectorEffectiveness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := benchEnv()
		_, out, err := experiments.Exp2Effectiveness(env, []string{"Q1"})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range out["Q1"] {
			if c.Selector == pipeline.SelectGSS.String() {
				b.ReportMetric(c.FinalDist(), "gss_distN")
			}
		}
	}
}

// BenchmarkFig15_16_UserTime measures the composite-vs-single user-time
// comparison; the saving fraction is reported as a custom metric.
func BenchmarkFig15_16_UserTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := benchEnv()
		_, out, err := experiments.Exp2UserTime(env, []string{"Q1"})
		if err != nil {
			b.Fatal(err)
		}
		pair := out["Q1"]
		comp, single := pair[0], pair[1]
		if n, m := len(comp.UserSeconds), len(single.UserSeconds); n > 0 && m > 0 {
			cs := comp.UserSeconds[n-1]
			ss := single.UserSeconds[m-1]
			if ss > 0 {
				b.ReportMetric((1-cs/ss)*100, "saving_%")
			}
		}
	}
}

// BenchmarkMultiView runs the multi-view comparison (DESIGN.md §13): one
// session serving the three-view D1 dashboard versus one dedicated
// session per view. The custom metrics are the figure itself —
// answers-to-convergence of each arm (0 when an arm missed the budget)
// — so BENCH_pr10.json records them next to the wall-clock cost.
func BenchmarkMultiView(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Seed 11: both arms converge within the default budget at this
		// scale, so the recorded metrics are real answer counts, not 0s.
		env := experiments.NewEnv(benchScale, 11)
		_, res, err := experiments.ExpMultiView(env, 0)
		if err != nil {
			b.Fatal(err)
		}
		mt, mok := res.MultiTotal()
		st, sok := res.SeqTotal()
		if !mok {
			mt = 0
		}
		if !sok {
			st = 0
		}
		b.ReportMetric(float64(mt), "multi_answers")
		b.ReportMetric(float64(st), "seq_answers")
	}
}

// BenchmarkTableVI_NoisyInput runs the wrong-label / completeness grid
// for one task with one repeat.
func BenchmarkTableVI_NoisyInput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := benchEnv()
		if _, _, err := experiments.Exp3NoisyInput(env, []string{"Q2"}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig17a_SelectionVaryK times CQG selection on a synthetic ERG
// with 20,000 edges, varying k (all five algorithms).
func BenchmarkFig17a_SelectionVaryK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, pts := experiments.Exp4VaryK(20000, []int{5, 10, 15, 20, 25, 30}, 200000, 1)
		if len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

// BenchmarkFig17b_SelectionVaryEdges times CQG selection at k=5 on ERGs
// from 5,000 to 40,000 edges.
func BenchmarkFig17b_SelectionVaryEdges(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, pts := experiments.Exp4VaryEdges(5, []int{5000, 10000, 20000, 30000, 40000}, 200000, 1)
		if len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

// BenchmarkFig18_ComponentTime measures the per-component machine time
// of a full cleaning run.
func BenchmarkFig18_ComponentTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := benchEnv()
		_, out, err := experiments.Exp4ComponentTime(env, []string{"Q1"})
		if err != nil {
			b.Fatal(err)
		}
		if tm, ok := out["Q1"]; ok {
			b.ReportMetric(float64(tm.Train.Microseconds()), "train_µs")
			b.ReportMetric(float64(tm.Benefit.Microseconds()), "benefit_µs")
		}
	}
}

// annotateSession builds one D1 session at the given scale for the
// benefit-annotation benchmark. noInc switches off the incremental
// delta pricer so the benchmark can compare it against full rebuilds.
func annotateSession(b *testing.B, scale float64, workers int, noInc bool) *pipeline.Session {
	b.Helper()
	d := datagen.D1(datagen.Config{Scale: scale, Seed: 1})
	q := vql.MustParse(`VISUALIZE bar SELECT Venue, SUM(Citations) FROM D1 TRANSFORM GROUP BY Venue SORT Y BY DESC LIMIT 10`)
	s, err := pipeline.NewSession(d.Dirty, q, d.KeyColumns, pipeline.Config{Seed: 1, Workers: workers, NoIncremental: noInc})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkAnnotate isolates the benefit-model hot path — pricing every
// edge and vertex repair of the first iteration's ERG. Sub-benchmarks
// cover the incremental delta pricer at worker counts 1 and 8 plus a
// FullRebuild variant (NoIncremental) that re-executes the query per
// hypothesis the way PR 2 did — the ns/op ratio between FullRebuild and
// Workers1 is the speedup the delta pricer buys. All variants are
// bit-identical (cross-checked against the Workers1 edge benefits), so
// the only difference is wall-clock. evals/op reports unique hypotheses
// priced (memo cache misses); the pricer sits inside the memoized path,
// so evals is the same in every variant.
func BenchmarkAnnotate(b *testing.B) {
	const scale = 0.05
	var baseline []float64 // Workers=1 edge benefits, for cross-check
	for _, v := range []struct {
		name    string
		workers int
		noInc   bool
	}{
		{"Workers1", 1, false},
		{"Workers8", 8, false},
		{"FullRebuild", 1, true},
	} {
		v := v
		b.Run(v.name, func(b *testing.B) {
			s := annotateSession(b, scale, v.workers, v.noInc)
			workers := v.workers
			var evals int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g, n, err := s.BuildAnnotatedERG(workers)
				if err != nil {
					b.Fatal(err)
				}
				evals = n
				benefits := make([]float64, g.NumEdges())
				for e := 0; e < g.NumEdges(); e++ {
					benefits[e] = g.Edge(e).Benefit
				}
				b.StopTimer()
				if v.name == "Workers1" {
					baseline = benefits
				} else if baseline != nil {
					if len(benefits) != len(baseline) {
						b.Fatalf("edge count differs across variants: %d vs %d", len(benefits), len(baseline))
					}
					for e := range benefits {
						if benefits[e] != baseline[e] {
							b.Fatalf("edge %d benefit differs across variants: %v vs %v", e, benefits[e], baseline[e])
						}
					}
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(evals), "evals/op")
		})
	}
}

// BenchmarkIterationPhases runs a short cleaning session (four
// iterations — the amortization horizon that matters, since detection
// structures built in iteration 1 pay off in 2..n) and reports the
// summed per-phase breakdown (Report.Timings) as custom metrics. The
// Incremental/FullDetect sub-benchmarks differ only in the
// NoIncrementalDetect kill switch, so their detect_µs ratio is the
// detect-phase speedup; scripts/check.sh gates on the Incremental
// variant's detect_µs against the recorded baseline.
func BenchmarkIterationPhases(b *testing.B) {
	const scale = 0.05
	const iters = 4
	d := datagen.D1(datagen.Config{Scale: scale, Seed: 1})
	q := vql.MustParse(`VISUALIZE bar SELECT Venue, SUM(Citations) FROM D1 TRANSFORM GROUP BY Venue SORT Y BY DESC LIMIT 10`)
	for _, v := range []struct {
		name        string
		noIncDetect bool
	}{
		{"Incremental", false},
		{"FullDetect", true},
	} {
		v := v
		b.Run(v.name, func(b *testing.B) {
			var detect, buildERG, annotate, sel, accepts, fallbacks float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s, err := pipeline.NewSession(d.Dirty.Clone(), q, d.KeyColumns, pipeline.Config{
					Seed: 1, Workers: 1, NoIncrementalDetect: v.noIncDetect,
				})
				if err != nil {
					b.Fatal(err)
				}
				user := oracle.New(d.Truth, 1)
				detect, buildERG, annotate, sel, accepts, fallbacks = 0, 0, 0, 0, 0, 0
				b.StartTimer()
				for it := 0; it < iters; it++ {
					rep, err := s.RunIteration(user)
					if err != nil {
						b.Fatal(err)
					}
					b.StopTimer()
					detect += float64(rep.Timings.Detect.Microseconds())
					buildERG += float64(rep.Timings.BuildERG.Microseconds())
					annotate += float64(rep.Timings.Benefit.Microseconds())
					sel += float64(rep.Timings.Select.Microseconds())
					accepts += float64(rep.DetectAccepts)
					fallbacks += float64(rep.DetectFallbacks)
					if rep.Exhausted {
						b.Fatal("session exhausted inside the phase benchmark")
					}
					b.StartTimer()
				}
			}
			b.ReportMetric(detect, "detect_µs")
			b.ReportMetric(buildERG, "buildERG_µs")
			b.ReportMetric(annotate, "annotate_µs")
			b.ReportMetric(sel, "select_µs")
			b.ReportMetric(accepts, "accepts/op")
			b.ReportMetric(fallbacks, "fallbacks/op")
		})
	}
}

// BenchmarkSessionSetup measures a session's construction cost on the
// Fig 10 configuration — entity-matching bootstrap (features + random
// forest), kNN token index, per-column standardizers and the base
// visualization — under the shared artifact cache (DESIGN.md §12).
// Cold builds every artifact into a fresh cache (first session on a
// server); Warm serves every artifact from a pre-populated cache (every
// later session over the same dataset in a multi-tenant server). The
// Cold/Warm ns/op ratio is the setup speedup the cache buys;
// scripts/check.sh gates the Warm variant against BENCH_pr9.json.
func BenchmarkSessionSetup(b *testing.B) {
	d := datagen.D1(datagen.Config{Scale: benchScale, Seed: 1})
	q := vql.MustParse(`VISUALIZE bar SELECT Venue, SUM(Citations) FROM D1 TRANSFORM GROUP BY Venue SORT Y BY DESC LIMIT 10`)
	setup := func(b *testing.B, cache *artifact.Cache) {
		s, err := pipeline.NewSession(d.Dirty, q, d.KeyColumns, pipeline.Config{
			Seed: 1, Workers: 1, Artifacts: cache,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.CurrentVis(); err != nil {
			b.Fatal(err)
		}
		s.Close()
	}
	b.Run("Cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			setup(b, artifact.New(0))
		}
	})
	b.Run("Warm", func(b *testing.B) {
		cache := artifact.New(0)
		setup(b, cache) // populate once; every timed setup hits
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			setup(b, cache)
		}
	})
}

// BenchmarkAblation_DesignChoices measures what the documented design
// choices (transformation-rule generalization, merge hysteresis)
// contribute: final EMD per variant is reported as a custom metric.
func BenchmarkAblation_DesignChoices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := benchEnv()
		_, out, err := experiments.Ablation(env, "Q1")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(out["full"].FinalDist(), "full_distN")
		b.ReportMetric(out["-generalize"].FinalDist(), "noGen_distN")
	}
}
