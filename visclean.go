// Package visclean is a from-scratch Go implementation of VisClean, the
// interactive-cleaning-for-progressive-visualization (ICPV) system of
//
//	Luo, Chai, Qin, Tang, Li. "Interactive Cleaning for Progressive
//	Visualization through Composite Questions." ICDE 2020.
//
// Given a visualization query over a dirty dataset and a small
// interaction budget, VisClean iteratively asks the user composite
// cleaning questions — small connected subgraphs of an errors-and-repairs
// graph bundling duplicate/missing/outlier questions — chosen to maximize
// an estimated visualization-quality benefit, and applies the answers to
// progressively turn a bad chart into a good one.
//
// Quick start:
//
//	tbl, _ := visclean.LoadCSV("pubs.csv", nil)
//	q := visclean.MustParseQuery(`VISUALIZE bar SELECT Venue, SUM(Citations)
//	    FROM pubs TRANSFORM GROUP BY Venue SORT Y BY DESC LIMIT 10`)
//	session, _ := visclean.NewSession(tbl, q, nil, visclean.Config{Seed: 1})
//	reports, _ := session.Run(user, 15) // user implements visclean.User
//
// The subpackages under internal/ hold the substrates (relational tables,
// the VQL query language, EMD, the random-forest entity matcher, the ERG
// and CQG selection algorithms, dataset generators, the simulated user);
// this package re-exports the surface a downstream application needs.
package visclean

import (
	"io"

	"visclean/internal/crowd"
	"visclean/internal/datagen"
	"visclean/internal/dataset"
	"visclean/internal/distance"
	"visclean/internal/erg"
	"visclean/internal/oracle"
	"visclean/internal/pipeline"
	"visclean/internal/render"
	"visclean/internal/usercost"
	"visclean/internal/vis"
	"visclean/internal/vql"
)

// Core data model.
type (
	// Table is an in-memory relation with stable tuple identifiers.
	Table = dataset.Table
	// Schema describes a table's columns.
	Schema = dataset.Schema
	// Column is one attribute (name + kind).
	Column = dataset.Column
	// Value is one nullable cell.
	Value = dataset.Value
	// TupleID identifies a tuple across table versions.
	TupleID = dataset.TupleID
)

// Column kinds.
const (
	String = dataset.String
	Float  = dataset.Float
)

// Cell constructors.
var (
	Str  = dataset.Str
	Num  = dataset.Num
	Null = dataset.Null
)

// NewTable creates an empty table with the given schema.
func NewTable(schema Schema) *Table { return dataset.NewTable(schema) }

// LoadCSV reads a table from a CSV file; a nil schema infers column kinds.
func LoadCSV(path string, schema Schema) (*Table, error) {
	return dataset.LoadCSVFile(path, schema)
}

// ReadCSV reads a table from a CSV stream; a nil schema infers kinds.
func ReadCSV(r io.Reader, schema Schema) (*Table, error) {
	return dataset.ReadCSV(r, schema)
}

// Query language (§II-A).
type (
	// Query is a parsed VQL statement.
	Query = vql.Query
	// VisData is a materialized visualization (bar/pie series).
	VisData = vis.Data
)

// ParseQuery parses a VQL statement.
func ParseQuery(src string) (*Query, error) { return vql.Parse(src) }

// MustParseQuery parses a known-good VQL statement, panicking on error.
func MustParseQuery(src string) *Query { return vql.MustParse(src) }

// Visualization distances (§II-B). Dist is the pipeline default
// (label-aligned EMD); EMD is the paper's literal Eq. (1)–(4).
var (
	Dist = distance.Default
	EMD  = distance.EMD
	L1   = distance.L1
	L2   = distance.L2
	KL   = distance.KL
	JS   = distance.JS
)

// Cleaning session (§III).
type (
	// Session is one interactive cleaning run.
	Session = pipeline.Session
	// Config parameterizes a session; zero values take paper defaults.
	Config = pipeline.Config
	// User answers cleaning questions (implemented by Oracle and by
	// interactive frontends).
	User = pipeline.User
	// Report describes one iteration's outcome.
	Report = pipeline.Report
	// SelectorKind names a CQG selection algorithm.
	SelectorKind = pipeline.SelectorKind
)

// CQG selection strategies (§V-B and the §VII baselines).
const (
	SelectGSS     = pipeline.SelectGSS
	SelectGSSPlus = pipeline.SelectGSSPlus
	SelectBB      = pipeline.SelectBB
	SelectAlphaBB = pipeline.SelectAlphaBB
	SelectRandom  = pipeline.SelectRandom
	SelectSingle  = pipeline.SelectSingle
)

// NewSession starts a cleaning session over a dirty table. keyColumns are
// the blocking-key column indices for entity matching (nil picks the
// first string column).
func NewSession(table *Table, query *Query, keyColumns []int, cfg Config) (*Session, error) {
	return pipeline.NewSession(table, query, keyColumns, cfg)
}

// Synthetic datasets with ground truth (§VII-A substitutes).
type (
	// Dataset bundles a generated dirty table with its ground truth.
	Dataset = datagen.Dataset
	// GenConfig controls generation scale and seed.
	GenConfig = datagen.Config
	// GroundTruth is what the generator corrupted.
	GroundTruth = oracle.GroundTruth
	// Oracle simulates the human participant, with Exp-3's noise knobs.
	Oracle = oracle.Oracle
	// CostModel prices user interactions in seconds (Figs 15–16).
	CostModel = usercost.Model
	// ERG is the errors-and-repairs graph (Definition 2.1).
	ERG = erg.Graph
)

// Generators for the paper's three evaluation datasets.
var (
	GenerateD1 = datagen.D1
	GenerateD2 = datagen.D2
	GenerateD3 = datagen.D3
)

// NewOracle builds a simulated user over recorded ground truth.
func NewOracle(truth *GroundTruth, seed int64) *Oracle { return oracle.New(truth, seed) }

// CrowdPanel is a pool of imperfect simulated workers answering each
// question by majority vote / median — the crowdsourcing substrate the
// paper's ground truth was collected with. It implements User.
type CrowdPanel = crowd.Panel

// NewCrowdPanel builds n workers with accuracies drawn from
// [minAcc, maxAcc] over the ground truth.
func NewCrowdPanel(truth *GroundTruth, n int, minAcc, maxAcc float64, seed int64) *CrowdPanel {
	return crowd.NewPanel(truth, n, minAcc, maxAcc, seed)
}

// NewCostModel builds the calibrated user-time model.
func NewCostModel(seed int64) *CostModel { return usercost.NewModel(seed) }

// Rendering (§VI, terminal edition).
var (
	// RenderChart draws a bar or pie chart as text.
	RenderChart = render.Chart
	// RenderCQG draws a composite question graph as text.
	RenderCQG = render.CQG
	// VegaLite encodes a visualization as a Vega-Lite v5 spec.
	VegaLite = render.VegaLite
)
