#!/bin/sh
# bench.sh — run the performance-tracking benchmarks and record their
# metrics as JSON (BENCH_pr7.json) so future changes can be compared
# against a committed baseline. BenchmarkAnnotate isolates the benefit
# engine hot path: the incremental delta pricer at Workers=1 vs
# Workers=8, plus a FullRebuild variant (Config.NoIncremental) that
# prices every hypothesis by re-executing the query from scratch — the
# FullRebuild/Workers1 ratio is what incremental pricing buys.
# BenchmarkIterationPhases records the per-phase breakdown
# (detect/buildERG/annotate/select) of a four-iteration session twice:
# the Incremental sub-benchmark uses the maintained detection structures
# (detectdelta.go), FullDetect sets Config.NoIncrementalDetect — their
# detect_µs ratio is what incremental detection buys. Fig10 is the
# end-to-end progression smoke. All variants are cross-checked
# bit-identical by the equivalence suites scripts/check.sh runs.
#
# BenchmarkTableOps and BenchmarkCloneVsOverlay (bench_table_test.go)
# cover the columnar dataset engine: raw cell scans, id-indexed reads,
# column extraction, sort, append, and the Clone-vs-Overlay comparison
# that justifies the copy-on-write layer. They run with -benchmem so the
# JSON records B/op and allocs/op alongside ns/op — the allocation
# counts are the regression surface scripts/check.sh gates on.
#
# BenchmarkSessionSetup (→ BENCH_pr9.json) measures session
# construction with the shared artifact cache (DESIGN.md §12) cold vs
# warm; the Warm ns/op is the second-session setup cost check.sh gates
# on, and the Cold/Warm ratio is what cross-session artifact sharing
# buys.
#
# After the go benches, cmd/loadgen storms a self-contained two-shard
# cluster (router + shared snapshot dir, all in one process) with 200
# concurrent oracle-backed sessions and writes BENCH_load.json: answer
# and iterate latency percentiles, 503 rejects, retries, per-shard
# session placement and the router's migration counters (DESIGN.md §9).
#
# Usage: scripts/bench.sh [output.json] [load-output.json] [setup-output.json]
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_pr8.json}"
loadout="${2:-BENCH_load.json}"
setupout="${3:-BENCH_pr9.json}"

raw=$(go test -run xxx -bench 'BenchmarkAnnotate|BenchmarkIterationPhases|BenchmarkFig10' -benchtime=1x -count=1 . 2>&1)
echo "$raw"

tableraw=$(go test -run xxx -bench 'BenchmarkTableOps|BenchmarkCloneVsOverlay' -benchmem -count=1 . 2>&1)
echo "$tableraw"
raw=$(printf '%s\n%s' "$raw" "$tableraw")

echo "$raw" | awk -v out="$out" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    nsop[name] = $3
    for (i = 5; i < NF; i += 2) metric[name "." $(i+1)] = $i
    order[n++] = name
}
END {
    printf "{\n" > out
    printf "  \"generated_by\": \"scripts/bench.sh\",\n" >> out
    printf "  \"go_bench\": {\n" >> out
    for (i = 0; i < n; i++) {
        name = order[i]
        printf "    \"%s\": {\"ns_per_op\": %s", name, nsop[name] >> out
        for (m in metric) {
            split(m, parts, ".")
            if (parts[1] == name) printf ", \"%s\": %s", parts[2], metric[m] >> out
        }
        printf "}%s\n", (i + 1 < n ? "," : "") >> out
    }
    printf "  }\n}\n" >> out
}
'
echo "wrote $out"

echo "== session setup: artifact cache cold vs warm"
setupraw=$(go test -run xxx -bench 'BenchmarkSessionSetup' -benchtime=5x -count=1 . 2>&1)
echo "$setupraw"

echo "$setupraw" | awk -v out="$setupout" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    nsop[name] = $3
    order[n++] = name
}
END {
    printf "{\n" > out
    printf "  \"generated_by\": \"scripts/bench.sh\",\n" >> out
    printf "  \"go_bench\": {\n" >> out
    for (i = 0; i < n; i++) {
        name = order[i]
        printf "    \"%s\": {\"ns_per_op\": %s}%s\n", name, nsop[name], (i + 1 < n ? "," : "") >> out
    }
    printf "  }\n}\n" >> out
}
'
echo "wrote $setupout"

echo "== cluster load: 200 concurrent sessions over 2 in-process shards"
go run ./cmd/loadgen -self 2 -sessions 200 -concurrency 200 -iters 2 -out "$loadout"
echo "wrote $loadout"
