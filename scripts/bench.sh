#!/bin/sh
# bench.sh — run the performance-tracking benchmarks and record their
# metrics as JSON (BENCH_pr7.json) so future changes can be compared
# against a committed baseline. BenchmarkAnnotate isolates the benefit
# engine hot path: the incremental delta pricer at Workers=1 vs
# Workers=8, plus a FullRebuild variant (Config.NoIncremental) that
# prices every hypothesis by re-executing the query from scratch — the
# FullRebuild/Workers1 ratio is what incremental pricing buys.
# BenchmarkIterationPhases records the per-phase breakdown
# (detect/buildERG/annotate/select) of a four-iteration session twice:
# the Incremental sub-benchmark uses the maintained detection structures
# (detectdelta.go), FullDetect sets Config.NoIncrementalDetect — their
# detect_µs ratio is what incremental detection buys. Fig10 is the
# end-to-end progression smoke. All variants are cross-checked
# bit-identical by the equivalence suites scripts/check.sh runs.
#
# BenchmarkTableOps and BenchmarkCloneVsOverlay (bench_table_test.go)
# cover the columnar dataset engine: raw cell scans, id-indexed reads,
# column extraction, sort, append, and the Clone-vs-Overlay comparison
# that justifies the copy-on-write layer. They run with -benchmem so the
# JSON records B/op and allocs/op alongside ns/op — the allocation
# counts are the regression surface scripts/check.sh gates on.
#
# BenchmarkSessionSetup (→ BENCH_pr9.json) measures session
# construction with the shared artifact cache (DESIGN.md §12) cold vs
# warm; the Warm ns/op is the second-session setup cost check.sh gates
# on, and the Cold/Warm ratio is what cross-session artifact sharing
# buys.
#
# BenchmarkMultiView (→ BENCH_pr10.json) runs the multi-view comparison
# of DESIGN.md §13 — one session serving the three-view D1 dashboard vs
# one dedicated session per view — and records answers-to-convergence of
# both arms. Those counts are deterministic (fixed seed and scale), so
# scripts/check.sh gates them by equality, immune to machine drift.
#
# After the go benches, cmd/loadgen storms a self-contained two-shard
# cluster (router + shared snapshot dir, all in one process) with 200
# concurrent oracle-backed sessions and writes BENCH_load.json: answer
# and iterate latency percentiles, 503 rejects, retries, per-shard
# session placement and the router's migration counters (DESIGN.md §9).
#
# Usage: scripts/bench.sh [output.json] [load-output.json] [setup-output.json] [multiview-output.json]
#        scripts/bench.sh --baseline-worktree
#
# --baseline-worktree is the honest way to compare against HEAD on a
# machine whose clock drifts between runs (this box drifts ~25% across
# sessions): it checks HEAD out into a scratch git worktree, runs every
# check.sh-gated benchmark there AND in the current tree within one
# script lifetime, writes HEAD's numbers to BENCH_baseline.json
# (gitignored), and prints old-vs-new side by side. check.sh prefers
# BENCH_baseline.json over the committed BENCH_prN.json when present.
set -eu

cd "$(dirname "$0")/.."

# The union of benchmarks check.sh gates on; --baseline-worktree runs
# exactly these in both trees.
gated='BenchmarkAnnotate/Workers1$|BenchmarkIterationPhases/Incremental$|BenchmarkTableOps/NumericColumn$|BenchmarkTableOps/Scan$|BenchmarkSessionSetup/Warm$|BenchmarkMultiView$'

# emit_json <raw-bench-output-file> <out.json> — shared awk emitter:
# ns/op plus every -benchmem and ReportMetric column, keyed by
# benchmark name with the -GOMAXPROCS suffix stripped.
emit_json() {
    awk -v out="$2" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    nsop[name] = $3
    for (i = 5; i < NF; i += 2) metric[name "." $(i+1)] = $i
    order[n++] = name
}
END {
    printf "{\n" > out
    printf "  \"generated_by\": \"scripts/bench.sh\",\n" >> out
    printf "  \"go_bench\": {\n" >> out
    for (i = 0; i < n; i++) {
        name = order[i]
        printf "    \"%s\": {\"ns_per_op\": %s", name, nsop[name] >> out
        for (m in metric) {
            split(m, parts, ".")
            if (parts[1] == name) printf ", \"%s\": %s", parts[2], metric[m] >> out
        }
        printf "}%s\n", (i + 1 < n ? "," : "") >> out
    }
    printf "  }\n}\n" >> out
}
' "$1"
}

if [ "${1:-}" = "--baseline-worktree" ]; then
    head=$(git rev-parse --short HEAD)
    wt=$(mktemp -d)
    trap 'git worktree remove --force "$wt" >/dev/null 2>&1 || rm -rf "$wt"; git worktree prune >/dev/null 2>&1 || true' EXIT INT TERM
    git worktree add --detach --quiet "$wt" HEAD

    oldraw=$(mktemp) && newraw=$(mktemp)
    echo "== baseline: gated benchmarks at HEAD ($head) in scratch worktree"
    (cd "$wt" && go test -run xxx -bench "$gated" -benchmem -benchtime=2x -count=1 .) 2>&1 | tee "$oldraw"
    echo "== current: same benchmarks in the working tree"
    go test -run xxx -bench "$gated" -benchmem -benchtime=2x -count=1 . 2>&1 | tee "$newraw"

    emit_json "$oldraw" BENCH_baseline.json
    echo "wrote BENCH_baseline.json (HEAD $head) — check.sh now gates against it"

    echo "== old (HEAD) vs new (working tree), ns/op"
    awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    if (FNR == NR) { old[name] = $3 }
    else { new[name] = $3; if (!(name in seen)) { seen[name] = 1; order[n++] = name } }
}
END {
    for (i = 0; i < n; i++) {
        name = order[i]
        if (name in old && old[name] + 0 > 0)
            printf "%-45s %14s -> %14s  (%.2fx)\n", name, old[name], new[name], new[name] / old[name]
        else
            printf "%-45s %14s -> %14s\n", name, "-", new[name]
    }
}
' "$oldraw" "$newraw"
    rm -f "$oldraw" "$newraw"
    exit 0
fi

out="${1:-BENCH_pr8.json}"
loadout="${2:-BENCH_load.json}"
setupout="${3:-BENCH_pr9.json}"
mvout="${4:-BENCH_pr10.json}"

raw=$(mktemp)
go test -run xxx -bench 'BenchmarkAnnotate|BenchmarkIterationPhases|BenchmarkFig10' -benchtime=1x -count=1 . 2>&1 | tee "$raw"
go test -run xxx -bench 'BenchmarkTableOps|BenchmarkCloneVsOverlay' -benchmem -count=1 . 2>&1 | tee -a "$raw"
emit_json "$raw" "$out"
rm -f "$raw"
echo "wrote $out"

echo "== session setup: artifact cache cold vs warm"
setupraw=$(mktemp)
go test -run xxx -bench 'BenchmarkSessionSetup' -benchtime=5x -count=1 . 2>&1 | tee "$setupraw"
emit_json "$setupraw" "$setupout"
rm -f "$setupraw"
echo "wrote $setupout"

echo "== multi-view dashboard: one session vs per-view sequential"
mvraw=$(mktemp)
go test -run xxx -bench 'BenchmarkMultiView$' -benchtime=1x -count=1 . 2>&1 | tee "$mvraw"
emit_json "$mvraw" "$mvout"
rm -f "$mvraw"
echo "wrote $mvout"

echo "== cluster load: 200 concurrent sessions over 2 in-process shards"
go run ./cmd/loadgen -self 2 -sessions 200 -concurrency 200 -iters 2 -out "$loadout"
echo "wrote $loadout"
