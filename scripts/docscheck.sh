#!/bin/sh
# docscheck.sh — the docs gate run by check.sh. Two checks:
#
#  1. Every package must carry a package doc comment (godoc is part of
#     the repo's documentation surface, DESIGN.md §5-§8 lean on it —
#     this is also what keeps internal/fault's failpoint semantics
#     documented at the source).
#  2. Backticked repo paths in the top-level docs (DESIGN.md, README.md,
#     EXPERIMENTS.md) must exist, so renames and deletions cannot leave
#     the prose pointing at nothing.
set -eu

cd "$(dirname "$0")/.."

echo "-- package docs"
undocumented=$(go list -f '{{if not .Doc}}{{.ImportPath}}{{end}}' ./... | grep -v '^$' || true)
if [ -n "$undocumented" ]; then
    echo "FAIL: packages missing a package doc comment:"
    echo "$undocumented"
    exit 1
fi

echo "-- doc links"
# Pull backticked tokens that look like repo paths: rooted at a known
# top-level directory, or a bare filename with a tracked extension.
# Trailing slashes (directory spelling) are allowed. Stdlib import
# paths, benchmark subnames and qualified identifiers slip the net on
# purpose — only paths this repo owns are checked.
status=0
for doc in DESIGN.md README.md EXPERIMENTS.md; do
    [ -f "$doc" ] || { echo "FAIL: $doc missing"; status=1; continue; }
    paths=$(grep -o '`[A-Za-z0-9_][A-Za-z0-9_./-]*`' "$doc" | tr -d '`' |
        grep -E '^((internal|cmd|scripts|examples|results)/|[A-Za-z0-9_.-]+\.(go|sh|md|json|txt|csv|mod)$)' |
        sort -u || true)
    for p in $paths; do
        candidate=${p%/}
        if [ ! -e "$candidate" ]; then
            echo "FAIL: $doc references \`$p\` which does not exist"
            status=1
        fi
    done
done
exit $status
