#!/bin/sh
# docscheck.sh — the docs gate run by check.sh. Three checks:
#
#  1. Every package must carry a package doc comment (godoc is part of
#     the repo's documentation surface, DESIGN.md §5-§8 lean on it —
#     this is also what keeps internal/fault's failpoint semantics
#     documented at the source).
#  2. Backticked repo paths in the top-level docs (DESIGN.md, README.md,
#     EXPERIMENTS.md) must exist, so renames and deletions cannot leave
#     the prose pointing at nothing.
#  3. Backticked `pkg.Symbol` identifiers in DESIGN.md whose pkg is a
#     directory under internal/ must resolve via `go doc`, so the design
#     doc cannot keep describing exported API that was renamed or
#     deleted.
set -eu

cd "$(dirname "$0")/.."

echo "-- package docs"
undocumented=$(go list -f '{{if not .Doc}}{{.ImportPath}}{{end}}' ./... | grep -v '^$' || true)
if [ -n "$undocumented" ]; then
    echo "FAIL: packages missing a package doc comment:"
    echo "$undocumented"
    exit 1
fi

echo "-- doc links"
# Pull backticked tokens that look like repo paths: rooted at a known
# top-level directory, or a bare filename with a tracked extension.
# Trailing slashes (directory spelling) are allowed. Stdlib import
# paths, benchmark subnames and qualified identifiers slip the net on
# purpose — only paths this repo owns are checked.
status=0
for doc in DESIGN.md README.md EXPERIMENTS.md; do
    [ -f "$doc" ] || { echo "FAIL: $doc missing"; status=1; continue; }
    paths=$(grep -o '`[A-Za-z0-9_][A-Za-z0-9_./-]*`' "$doc" | tr -d '`' |
        grep -E '^((internal|cmd|scripts|examples|results)/|[A-Za-z0-9_.-]+\.(go|sh|md|json|txt|csv|mod)$)' |
        sort -u || true)
    for p in $paths; do
        candidate=${p%/}
        if [ ! -e "$candidate" ]; then
            echo "FAIL: $doc references \`$p\` which does not exist"
            status=1
        fi
    done
done

echo "-- doc identifiers"
# Backticked `pkg.Symbol` tokens where pkg names a directory under
# internal/ are probed with `go doc`: a symbol DESIGN.md names must
# still be exported from that package. Method spellings
# (pkg.Type.Method) and field references are covered too — go doc
# resolves both. Tokens whose first segment is not an internal package
# (stdlib types, file names, metric names) slip the net on purpose.
syms=$(grep -o '`[a-z][a-z0-9]*\.[A-Za-z][A-Za-z0-9_.]*`' DESIGN.md | tr -d '`' | sort -u || true)
for s in $syms; do
    pkg=${s%%.*}
    sym=${s#*.}
    [ -d "internal/$pkg" ] || continue
    case $sym in *.*.*) continue ;; esac # deeper than Type.Method: not a go doc query
    case $sym in
    Test*|Benchmark*|Fuzz*)
        # Test identifiers live outside go doc's view; grep the package's
        # test files for the declaration instead.
        if ! grep -q "func $sym(" "internal/$pkg"/*_test.go 2>/dev/null; then
            echo "FAIL: DESIGN.md references \`$s\` but no such test exists in internal/$pkg"
            status=1
        fi
        ;;
    *)
        # -u admits the handful of unexported-but-documented internals
        # (e.g. pipeline.deltaPricer) the design doc narrates.
        if ! go doc -u "visclean/internal/$pkg" "$sym" >/dev/null 2>&1; then
            echo "FAIL: DESIGN.md references \`$s\` but 'go doc -u visclean/internal/$pkg $sym' finds nothing"
            status=1
        fi
        ;;
    esac
done
exit $status
