#!/bin/sh
# check.sh — the repo's verification gate: build, vet, then the full
# test suite with the race detector on. CI and pre-commit both run this.
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race ./...

echo "== OK"
