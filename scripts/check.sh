#!/bin/sh
# check.sh — the repo's verification gate: build, vet, the full test
# suite with the race detector on, the determinism suite (same seed and
# Workers=1 vs Workers=8 must be byte-identical — this is what the
# parallel benefit engine promises), and a one-shot benchmark smoke so
# the bench harness cannot rot. CI and pre-commit both run this.
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race ./...

echo "== determinism suite (-race)"
go test -race -count=1 -run 'TestDeterminism' ./internal/pipeline/

echo "== benchmark smoke (Fig 10, 1 iteration)"
go test -run xxx -bench 'BenchmarkFig10' -benchtime=1x .

echo "== OK"
