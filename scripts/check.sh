#!/bin/sh
# check.sh — the repo's verification gate: build, vet, the full test
# suite with the race detector on, the determinism + incremental
# equivalence suites (same seed, Workers=1 vs Workers=8, delta pricing
# vs full rebuild, and incremental detection vs full detect must all be
# byte-identical), and a one-shot benchmark smoke so the bench harness
# cannot rot. The smoke also guards the incremental engines' reason to
# exist: if BenchmarkAnnotate's Workers=1 ns/op or the Incremental
# iteration-phase detect_µs regresses to more than 2x the committed
# baseline (BENCH_pr3.json / BENCH_pr7.json), the check fails. The
# columnar dataset engine gets the same treatment via BENCH_pr8.json:
# table-ops ns/op must stay within 2x and the zero-allocation scan path
# must not start allocating. The shared artifact cache's reason to
# exist — a warm second-session setup — is guarded the same way via
# BENCH_pr9.json: BenchmarkSessionSetup/Warm must stay within 2x of the
# committed baseline. CI and pre-commit both run this.
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race ./...

echo "== determinism + incremental equivalence suites (-race)"
go test -race -count=1 -run 'TestDeterminism|TestIncremental|TestDetectEquivalence' ./internal/pipeline/

echo "== chaos suite: fault-injection kill-restart (-race, short mode)"
go test -race -short -count=1 -run 'TestChaos' ./internal/service/

echo "== cluster smoke: 2 shards + consistent-hash router (-race, short mode)"
go test -race -short -count=1 -run 'TestClusterSmoke' ./internal/cluster/

echo "== loadgen smoke: self-contained cluster, 8 oracle-backed sessions"
loadout=$(mktemp)
go run ./cmd/loadgen -self 2 -sessions 8 -concurrency 8 -iters 1 -out "$loadout"
rm -f "$loadout"

echo "== benchmark smoke (Fig 10 + Annotate + IterationPhases, 1 iteration)"
smoke=$(go test -run xxx -bench 'BenchmarkFig10|BenchmarkAnnotate/Workers1$|BenchmarkIterationPhases/Incremental$' -benchtime=1x .)
echo "$smoke"

if [ -f BENCH_pr3.json ]; then
    baseline=$(awk -F'ns_per_op": ' '/"BenchmarkAnnotate\/Workers1"/ {split($2, a, /[,}]/); print a[1]}' BENCH_pr3.json)
    current=$(echo "$smoke" | awk '$1 ~ /^BenchmarkAnnotate\/Workers1/ {print $3}')
    if [ -n "$baseline" ] && [ -n "$current" ]; then
        echo "== annotate regression guard: current ${current} ns/op vs baseline ${baseline} ns/op"
        awk -v c="$current" -v b="$baseline" 'BEGIN {
            if (c > 2 * b) { printf "FAIL: Annotate ns/op regressed more than 2x (%s > 2 * %s)\n", c, b; exit 1 }
        }'
    else
        echo "== SKIP annotate regression guard: BENCH_pr3.json present but unparsable (baseline='${baseline}', current='${current}') — regenerate with scripts/bench.sh"
    fi
else
    echo "== SKIP annotate regression guard: no BENCH_pr3.json baseline in this checkout — generate one with scripts/bench.sh"
fi

if [ -f BENCH_pr7.json ]; then
    dbase=$(awk -F'"detect_µs": ' '/"BenchmarkIterationPhases\/Incremental"/ {split($2, a, /[,}]/); print a[1]}' BENCH_pr7.json)
    dcur=$(echo "$smoke" | awk '$1 ~ /^BenchmarkIterationPhases\/Incremental/ {for (i = 3; i < NF; i++) if ($(i+1) == "detect_µs") print $i}')
    if [ -n "$dbase" ] && [ -n "$dcur" ]; then
        echo "== detect regression guard: current ${dcur} µs vs baseline ${dbase} µs"
        awk -v c="$dcur" -v b="$dbase" 'BEGIN {
            if (c > 2 * b) { printf "FAIL: incremental detect_µs regressed more than 2x (%s > 2 * %s)\n", c, b; exit 1 }
        }'
    else
        echo "== SKIP detect regression guard: BENCH_pr7.json present but unparsable (baseline='${dbase}', current='${dcur}') — regenerate with scripts/bench.sh"
    fi
else
    echo "== SKIP detect regression guard: no BENCH_pr7.json baseline in this checkout — generate one with scripts/bench.sh"
fi

echo "== table benchmark smoke (columnar engine, -benchmem)"
tsmoke=$(go test -run xxx -bench 'BenchmarkTableOps/NumericColumn$|BenchmarkTableOps/Scan$|BenchmarkCloneVsOverlay' -benchmem -benchtime=100x .)
echo "$tsmoke"

if [ -f BENCH_pr8.json ]; then
    tbase=$(awk -F'ns_per_op": ' '/"BenchmarkTableOps\/NumericColumn"/ {split($2, a, /[,}]/); print a[1]}' BENCH_pr8.json)
    tcur=$(echo "$tsmoke" | awk '$1 ~ /^BenchmarkTableOps\/NumericColumn/ {print $3}')
    if [ -n "$tbase" ] && [ -n "$tcur" ]; then
        echo "== table-ops regression guard: NumericColumn current ${tcur} ns/op vs baseline ${tbase} ns/op"
        awk -v c="$tcur" -v b="$tbase" 'BEGIN {
            if (c > 2 * b) { printf "FAIL: table-ops ns/op regressed more than 2x (%s > 2 * %s)\n", c, b; exit 1 }
        }'
    else
        echo "== SKIP table-ops regression guard: BENCH_pr8.json present but unparsable (baseline='${tbase}', current='${tcur}') — regenerate with scripts/bench.sh"
    fi
    abase=$(awk -F'"allocs/op": ' '/"BenchmarkTableOps\/Scan"/ {split($2, a, /[,}]/); print a[1]}' BENCH_pr8.json)
    acur=$(echo "$tsmoke" | awk '$1 ~ /^BenchmarkTableOps\/Scan/ {for (i = 3; i < NF; i++) if ($(i+1) == "allocs/op") print $i}')
    if [ -n "$abase" ] && [ -n "$acur" ]; then
        echo "== alloc regression guard: Scan current ${acur} allocs/op vs baseline ${abase} allocs/op"
        awk -v c="$acur" -v b="$abase" 'BEGIN {
            if (c + 0 > 2 * b && c + 0 > 0) { printf "FAIL: scan allocs/op regressed (%s > 2 * %s) — the zero-allocation Get path is gone\n", c, b; exit 1 }
        }'
    else
        echo "== SKIP alloc regression guard: BENCH_pr8.json present but unparsable (baseline='${abase}', current='${acur}') — regenerate with scripts/bench.sh"
    fi
else
    echo "== SKIP table regression guards: no BENCH_pr8.json baseline in this checkout — generate one with scripts/bench.sh"
fi

echo "== session-setup benchmark smoke (artifact cache warm path)"
ssmoke=$(go test -run xxx -bench 'BenchmarkSessionSetup/Warm$' -benchtime=5x .)
echo "$ssmoke"

if [ -f BENCH_pr9.json ]; then
    wbase=$(awk -F'ns_per_op": ' '/"BenchmarkSessionSetup\/Warm"/ {split($2, a, /[,}]/); print a[1]}' BENCH_pr9.json)
    wcur=$(echo "$ssmoke" | awk '$1 ~ /^BenchmarkSessionSetup\/Warm/ {print $3}')
    if [ -n "$wbase" ] && [ -n "$wcur" ]; then
        echo "== warm-setup regression guard: current ${wcur} ns/op vs baseline ${wbase} ns/op"
        awk -v c="$wcur" -v b="$wbase" 'BEGIN {
            if (c > 2 * b) { printf "FAIL: warm session setup regressed more than 2x (%s > 2 * %s) — the artifact cache hit path is broken\n", c, b; exit 1 }
        }'
    else
        echo "== SKIP warm-setup regression guard: BENCH_pr9.json present but unparsable (baseline='${wbase}', current='${wcur}') — regenerate with scripts/bench.sh"
    fi
else
    echo "== SKIP warm-setup regression guard: no BENCH_pr9.json baseline in this checkout — generate one with scripts/bench.sh"
fi

echo "== docs gate (package docs + doc links)"
./scripts/docscheck.sh

echo "== OK"
