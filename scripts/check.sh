#!/bin/sh
# check.sh — the repo's verification gate: build, vet, the full test
# suite with the race detector on, the determinism + incremental
# equivalence suites (same seed, Workers=1 vs Workers=8, delta pricing
# vs full rebuild, and incremental detection vs full detect must all be
# byte-identical), and a one-shot benchmark smoke so the bench harness
# cannot rot. The smoke also guards the incremental engines' reason to
# exist: if BenchmarkAnnotate's Workers=1 ns/op or the Incremental
# iteration-phase detect_µs regresses to more than 2x the committed
# baseline (BENCH_pr3.json / BENCH_pr7.json), the check fails. The
# columnar dataset engine gets the same treatment via BENCH_pr8.json:
# table-ops ns/op must stay within 2x and the zero-allocation scan path
# must not start allocating. The shared artifact cache's reason to
# exist — a warm second-session setup — is guarded the same way via
# BENCH_pr9.json: BenchmarkSessionSetup/Warm must stay within 2x of the
# committed baseline. The multi-view session (DESIGN.md §13) is guarded
# by BENCH_pr10.json: BenchmarkMultiView's answers-to-convergence counts
# are deterministic (fixed seed/scale), so they must match the baseline
# exactly — any drift means cross-view pricing changed behavior. CI and
# pre-commit both run this.
#
# Every guard prefers BENCH_baseline.json when it covers the benchmark:
# that file is written by `scripts/bench.sh --baseline-worktree`, which
# benches HEAD and the working tree in one script lifetime on THIS
# machine — the committed BENCH_prN.json numbers come from a box whose
# clock drifts ~25% between sessions, so a same-run baseline is the only
# fair ns/op comparison. BENCH_baseline.json is gitignored.
set -eu

cd "$(dirname "$0")/.."

# pick_baseline <bench-name> <committed-file>: prefer the same-machine
# same-run BENCH_baseline.json over the committed baseline when present
# and covering the benchmark.
pick_baseline() {
    if [ -f BENCH_baseline.json ] && grep -q "\"$1\"" BENCH_baseline.json; then
        echo BENCH_baseline.json
    else
        echo "$2"
    fi
}

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race -shuffle=on ./..."
go test -race -shuffle=on ./...

echo "== determinism + incremental equivalence suites (-race)"
go test -race -count=1 -run 'TestDeterminism|TestIncremental|TestDetectEquivalence' ./internal/pipeline/

echo "== chaos suite: fault-injection kill-restart (-race, short mode)"
go test -race -short -count=1 -run 'TestChaos' ./internal/service/

echo "== cluster smoke: 2 shards + consistent-hash router (-race, short mode)"
go test -race -short -count=1 -run 'TestClusterSmoke' ./internal/cluster/

echo "== loadgen smoke: self-contained cluster, 8 oracle-backed sessions"
loadout=$(mktemp)
go run ./cmd/loadgen -self 2 -sessions 8 -concurrency 8 -iters 1 -out "$loadout"
rm -f "$loadout"

echo "== benchmark smoke (Fig 10 + Annotate + IterationPhases, 1 iteration)"
smoke=$(go test -run xxx -bench 'BenchmarkFig10|BenchmarkAnnotate/Workers1$|BenchmarkIterationPhases/Incremental$' -benchtime=1x .)
echo "$smoke"

afile=$(pick_baseline 'BenchmarkAnnotate/Workers1' BENCH_pr3.json)
if [ -f "$afile" ]; then
    baseline=$(awk -F'ns_per_op": ' '/"BenchmarkAnnotate\/Workers1"/ {split($2, a, /[,}]/); print a[1]}' "$afile")
    current=$(echo "$smoke" | awk '$1 ~ /^BenchmarkAnnotate\/Workers1/ {print $3}')
    if [ -n "$baseline" ] && [ -n "$current" ]; then
        echo "== annotate regression guard: current ${current} ns/op vs baseline ${baseline} ns/op (${afile})"
        awk -v c="$current" -v b="$baseline" 'BEGIN {
            if (c > 2 * b) { printf "FAIL: Annotate ns/op regressed more than 2x (%s > 2 * %s)\n", c, b; exit 1 }
        }'
    else
        echo "== SKIP annotate regression guard: ${afile} present but unparsable (baseline='${baseline}', current='${current}') — regenerate with scripts/bench.sh"
    fi
else
    echo "== SKIP annotate regression guard: no BENCH_pr3.json baseline in this checkout — generate one with scripts/bench.sh"
fi

dfile=$(pick_baseline 'BenchmarkIterationPhases/Incremental' BENCH_pr7.json)
if [ -f "$dfile" ]; then
    dbase=$(awk -F'"detect_µs": ' '/"BenchmarkIterationPhases\/Incremental"/ {split($2, a, /[,}]/); print a[1]}' "$dfile")
    dcur=$(echo "$smoke" | awk '$1 ~ /^BenchmarkIterationPhases\/Incremental/ {for (i = 3; i < NF; i++) if ($(i+1) == "detect_µs") print $i}')
    if [ -n "$dbase" ] && [ -n "$dcur" ]; then
        echo "== detect regression guard: current ${dcur} µs vs baseline ${dbase} µs (${dfile})"
        awk -v c="$dcur" -v b="$dbase" 'BEGIN {
            if (c > 2 * b) { printf "FAIL: incremental detect_µs regressed more than 2x (%s > 2 * %s)\n", c, b; exit 1 }
        }'
    else
        echo "== SKIP detect regression guard: ${dfile} present but unparsable (baseline='${dbase}', current='${dcur}') — regenerate with scripts/bench.sh"
    fi
else
    echo "== SKIP detect regression guard: no BENCH_pr7.json baseline in this checkout — generate one with scripts/bench.sh"
fi

echo "== table benchmark smoke (columnar engine, -benchmem)"
tsmoke=$(go test -run xxx -bench 'BenchmarkTableOps/NumericColumn$|BenchmarkTableOps/Scan$|BenchmarkCloneVsOverlay' -benchmem -benchtime=100x .)
echo "$tsmoke"

tfile=$(pick_baseline 'BenchmarkTableOps/NumericColumn' BENCH_pr8.json)
if [ -f "$tfile" ]; then
    tbase=$(awk -F'ns_per_op": ' '/"BenchmarkTableOps\/NumericColumn"/ {split($2, a, /[,}]/); print a[1]}' "$tfile")
    tcur=$(echo "$tsmoke" | awk '$1 ~ /^BenchmarkTableOps\/NumericColumn/ {print $3}')
    if [ -n "$tbase" ] && [ -n "$tcur" ]; then
        echo "== table-ops regression guard: NumericColumn current ${tcur} ns/op vs baseline ${tbase} ns/op (${tfile})"
        awk -v c="$tcur" -v b="$tbase" 'BEGIN {
            if (c > 2 * b) { printf "FAIL: table-ops ns/op regressed more than 2x (%s > 2 * %s)\n", c, b; exit 1 }
        }'
    else
        echo "== SKIP table-ops regression guard: ${tfile} present but unparsable (baseline='${tbase}', current='${tcur}') — regenerate with scripts/bench.sh"
    fi
    sfile=$(pick_baseline 'BenchmarkTableOps/Scan' BENCH_pr8.json)
    abase=$(awk -F'"allocs/op": ' '/"BenchmarkTableOps\/Scan"/ {split($2, a, /[,}]/); print a[1]}' "$sfile")
    acur=$(echo "$tsmoke" | awk '$1 ~ /^BenchmarkTableOps\/Scan/ {for (i = 3; i < NF; i++) if ($(i+1) == "allocs/op") print $i}')
    if [ -n "$abase" ] && [ -n "$acur" ]; then
        echo "== alloc regression guard: Scan current ${acur} allocs/op vs baseline ${abase} allocs/op (${sfile})"
        awk -v c="$acur" -v b="$abase" 'BEGIN {
            if (c + 0 > 2 * b && c + 0 > 0) { printf "FAIL: scan allocs/op regressed (%s > 2 * %s) — the zero-allocation Get path is gone\n", c, b; exit 1 }
        }'
    else
        echo "== SKIP alloc regression guard: ${sfile} present but unparsable (baseline='${abase}', current='${acur}') — regenerate with scripts/bench.sh"
    fi
else
    echo "== SKIP table regression guards: no BENCH_pr8.json baseline in this checkout — generate one with scripts/bench.sh"
fi

echo "== session-setup benchmark smoke (artifact cache warm path)"
ssmoke=$(go test -run xxx -bench 'BenchmarkSessionSetup/Warm$' -benchtime=5x .)
echo "$ssmoke"

wfile=$(pick_baseline 'BenchmarkSessionSetup/Warm' BENCH_pr9.json)
if [ -f "$wfile" ]; then
    wbase=$(awk -F'ns_per_op": ' '/"BenchmarkSessionSetup\/Warm"/ {split($2, a, /[,}]/); print a[1]}' "$wfile")
    wcur=$(echo "$ssmoke" | awk '$1 ~ /^BenchmarkSessionSetup\/Warm/ {print $3}')
    if [ -n "$wbase" ] && [ -n "$wcur" ]; then
        echo "== warm-setup regression guard: current ${wcur} ns/op vs baseline ${wbase} ns/op (${wfile})"
        awk -v c="$wcur" -v b="$wbase" 'BEGIN {
            if (c > 2 * b) { printf "FAIL: warm session setup regressed more than 2x (%s > 2 * %s) — the artifact cache hit path is broken\n", c, b; exit 1 }
        }'
    else
        echo "== SKIP warm-setup regression guard: ${wfile} present but unparsable (baseline='${wbase}', current='${wcur}') — regenerate with scripts/bench.sh"
    fi
else
    echo "== SKIP warm-setup regression guard: no BENCH_pr9.json baseline in this checkout — generate one with scripts/bench.sh"
fi

echo "== multi-view benchmark smoke (cross-view pricing, deterministic counts)"
mvsmoke=$(go test -run xxx -bench 'BenchmarkMultiView$' -benchtime=1x .)
echo "$mvsmoke"

mvfile=$(pick_baseline 'BenchmarkMultiView' BENCH_pr10.json)
if [ -f "$mvfile" ]; then
    mbase=$(awk -F'"multi_answers": ' '/"BenchmarkMultiView"/ {split($2, a, /[,}]/); print a[1]}' "$mvfile")
    sbase=$(awk -F'"seq_answers": ' '/"BenchmarkMultiView"/ {split($2, a, /[,}]/); print a[1]}' "$mvfile")
    mcur=$(echo "$mvsmoke" | awk '$1 ~ /^BenchmarkMultiView/ {for (i = 3; i < NF; i++) if ($(i+1) == "multi_answers") print $i}')
    scur=$(echo "$mvsmoke" | awk '$1 ~ /^BenchmarkMultiView/ {for (i = 3; i < NF; i++) if ($(i+1) == "seq_answers") print $i}')
    if [ -n "$mbase" ] && [ -n "$mcur" ] && [ -n "$sbase" ] && [ -n "$scur" ]; then
        echo "== multi-view determinism guard: multi ${mcur} vs ${mbase}, seq ${scur} vs ${sbase} (current vs ${mvfile})"
        awk -v mc="$mcur" -v mb="$mbase" -v sc="$scur" -v sb="$sbase" 'BEGIN {
            if (mc + 0 != mb + 0 || sc + 0 != sb + 0) {
                printf "FAIL: multi-view answers-to-convergence moved (multi %s -> %s, seq %s -> %s) — these counts are deterministic, so cross-view pricing changed behavior; regenerate the baseline with scripts/bench.sh if intended\n", mb, mc, sb, sc
                exit 1
            }
        }'
    else
        echo "== SKIP multi-view guard: ${mvfile} present but unparsable (multi='${mbase}'/'${mcur}', seq='${sbase}'/'${scur}') — regenerate with scripts/bench.sh"
    fi
else
    echo "== SKIP multi-view guard: no BENCH_pr10.json baseline in this checkout — generate one with scripts/bench.sh"
fi

echo "== docs gate (package docs + doc links)"
./scripts/docscheck.sh

echo "== OK"
