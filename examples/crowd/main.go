// Crowd: drive a cleaning session with a simulated crowd instead of one
// expert.
//
// The paper collected its ground truth by crowdsourcing — many imperfect
// annotators whose aggregated answers approach an expert's. This example
// cleans the same D1 chart three ways and compares the outcomes:
//
//  1. a perfect expert oracle,
//  2. a crowd panel (9 workers, 75–95% accuracy, 3-vote majority),
//  3. a single mediocre worker (75% accuracy, no aggregation),
//
// showing that majority aggregation recovers most of the expert's
// cleaning quality while a lone unreliable worker does visibly worse.
//
// Run it with:
//
//	go run ./examples/crowd [-scale 0.01] [-budget 12]
package main

import (
	"flag"
	"fmt"
	"log"

	"visclean"
)

func main() {
	scale := flag.Float64("scale", 0.01, "dataset scale")
	budget := flag.Int("budget", 12, "interaction budget")
	flag.Parse()

	query := visclean.MustParseQuery(`
		VISUALIZE bar SELECT Venue, SUM(Citations) FROM D1
		TRANSFORM GROUP BY Venue SORT Y BY DESC LIMIT 10`)

	type runner struct {
		name string
		user func(d *visclean.Dataset) visclean.User
	}
	runners := []runner{
		{"expert oracle", func(d *visclean.Dataset) visclean.User {
			return visclean.NewOracle(d.Truth, 21)
		}},
		{"crowd (9 workers, 3 votes)", func(d *visclean.Dataset) visclean.User {
			return visclean.NewCrowdPanel(d.Truth, 9, 0.75, 0.95, 21)
		}},
		{"single 75% worker", func(d *visclean.Dataset) visclean.User {
			p := visclean.NewCrowdPanel(d.Truth, 1, 0.75, 0.75, 21)
			p.K = 1
			return p
		}},
	}

	fmt.Printf("%-28s %12s %12s\n", "answering mechanism", "initial", "final")
	for _, r := range runners {
		d := visclean.GenerateD1(visclean.GenConfig{Scale: *scale, Seed: 21})
		truthVis, err := query.Execute(d.Truth.Clean)
		if err != nil {
			log.Fatal(err)
		}
		session, err := visclean.NewSession(d.Dirty, query, d.KeyColumns, visclean.Config{
			Seed:     21,
			TruthVis: truthVis,
		})
		if err != nil {
			log.Fatal(err)
		}
		d0, _ := session.DistToTruth()
		if _, err := session.Run(r.user(d), *budget); err != nil {
			log.Fatal(err)
		}
		dEnd, _ := session.DistToTruth()
		fmt.Printf("%-28s %12.5f %12.5f\n", r.name, d0, dEnd)
	}
}
