// Publications: the paper's Exp-1 scenario on the D1 DB-Papers dataset.
//
// Generates a synthetic crawl of database publications (duplicate
// records from six sources, venue synonyms, missing citation counts,
// decimal-shift outliers), runs the paper's Q1 — top-10 venues by total
// citations — and cleans it with composite questions answered by a
// simulated expert, printing the progressive charts the way the paper's
// Fig 10 does (after 0, 5, 10 and 15 questions).
//
// Run it with:
//
//	go run ./examples/publications [-scale 0.02] [-budget 15]
package main

import (
	"flag"
	"fmt"
	"log"

	"visclean"
)

func main() {
	scale := flag.Float64("scale", 0.02, "dataset scale (1.0 = 13,915 papers)")
	budget := flag.Int("budget", 15, "interaction budget")
	flag.Parse()

	d := visclean.GenerateD1(visclean.GenConfig{Scale: *scale, Seed: 42})
	query := visclean.MustParseQuery(`
		VISUALIZE bar SELECT Venue, SUM(Citations) FROM D1
		TRANSFORM GROUP BY Venue SORT Y BY DESC LIMIT 10`)

	truthVis, err := query.Execute(d.Truth.Clean)
	if err != nil {
		log.Fatal(err)
	}
	session, err := visclean.NewSession(d.Dirty, query, d.KeyColumns, visclean.Config{
		Seed:     42,
		TruthVis: truthVis,
	})
	if err != nil {
		log.Fatal(err)
	}
	user := visclean.NewOracle(d.Truth, 42)

	fmt.Printf("D1: %d dirty tuples over %d distinct papers\n\n", d.Dirty.NumRows(), d.Truth.Clean.NumRows())
	show := map[int]bool{0: true, 5: true, 10: true, *budget: true}
	if show[0] {
		printState(session, 0)
	}
	for i := 0; i < *budget; i++ {
		rep, err := session.RunIteration(user)
		if err != nil {
			log.Fatal(err)
		}
		if rep.Exhausted {
			fmt.Println("nothing left to ask")
			break
		}
		if show[rep.Iteration] {
			printState(session, rep.Iteration)
		}
	}
	fmt.Println("== ground truth ==")
	fmt.Print(visclean.RenderChart(truthVis, 44))
}

func printState(s *visclean.Session, iter int) {
	v, err := s.CurrentVis()
	if err != nil {
		log.Fatal(err)
	}
	dist, _ := s.DistToTruth()
	fmt.Printf("== after %d composite questions (EMD to truth %.5f) ==\n", iter, dist)
	fmt.Print(visclean.RenderChart(v, 44))
	fmt.Println()
}
