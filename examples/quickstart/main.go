// Quickstart: clean the paper's running example.
//
// This program builds the dirty publications excerpt of the paper's
// Table I, runs the Fig 1(a) bar chart query (total citations per
// venue), and lets a scripted user answer three composite questions —
// watch the duplicated SIGMOD bars merge and the 1740-citation outlier
// collapse to 174.
//
// Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"visclean"
)

// tableI is the dirty excerpt of the paper's Table I.
func tableI() *visclean.Table {
	tbl := visclean.NewTable(visclean.Schema{
		{Name: "Year", Kind: visclean.Float},
		{Name: "Title", Kind: visclean.String},
		{Name: "Venue", Kind: visclean.String},
		{Name: "Affiliation", Kind: visclean.String},
		{Name: "Citations", Kind: visclean.Float},
	})
	rows := [][]visclean.Value{
		{visclean.Num(2013), visclean.Str("NADEEF"), visclean.Str("ACM SIGMOD"), visclean.Str("QCRI"), visclean.Num(174)},
		{visclean.Num(2013), visclean.Str("NADEEF"), visclean.Str("SIGMOD Conf."), visclean.Str("QCRI, HBKU"), visclean.Num(1740)},
		{visclean.Num(2013), visclean.Str("NADEEF"), visclean.Str("SIGMOD"), visclean.Str("QCRI HBKU"), visclean.Num(174)},
		{visclean.Num(2013), visclean.Str("KuaFu"), visclean.Str("ICDE 2013"), visclean.Str("Microsoft"), visclean.Num(15)},
		{visclean.Num(2013), visclean.Str("TsingNUS"), visclean.Str("SIGMOD'13"), visclean.Str("Tsinghua"), visclean.Num(13)},
		{visclean.Num(2013), visclean.Str("TsingNUS"), visclean.Str("SIGMOD'13"), visclean.Str("THU"), visclean.Num(13)},
		{visclean.Num(2014), visclean.Str("SeeDB"), visclean.Str("VLDB"), visclean.Str("Stanford Univ."), visclean.Null(visclean.Float)},
		{visclean.Num(2014), visclean.Str("SeeDB"), visclean.Str("Very Large Data Bases"), visclean.Str("Stanford"), visclean.Num(55)},
		{visclean.Num(2015), visclean.Str("Elaps"), visclean.Str("ICDE"), visclean.Str("NUS"), visclean.Num(42)},
		{visclean.Num(2015), visclean.Str("Elaps"), visclean.Str("IEEE ICDE Conf. 2015"), visclean.Str("CS@NUS"), visclean.Num(44)},
	}
	for _, r := range rows {
		if _, err := tbl.Append(r); err != nil {
			log.Fatal(err)
		}
	}
	return tbl
}

// expertUser answers from the paper's ground truth (Table II): duplicate
// records share a Title, venue synonyms share an obvious meaning, the
// SeeDB citation count is 55 and the 1740 is a decimal-shifted 174.
type expertUser struct {
	table *visclean.Table
}

func (u *expertUser) AnswerT(a, b visclean.TupleID) (bool, bool) {
	ra, okA := u.table.RowByID(a)
	rb, okB := u.table.RowByID(b)
	if !okA || !okB {
		return false, true
	}
	ta, _ := ra[1].Text()
	tb, _ := rb[1].Text()
	return ta == tb, true // in Table I, same title = same paper
}

var venueClass = map[string]string{
	"ACM SIGMOD": "SIGMOD", "SIGMOD Conf.": "SIGMOD", "SIGMOD": "SIGMOD",
	"SIGMOD'13": "SIGMOD", "ICDE 2013": "ICDE", "ICDE": "ICDE",
	"IEEE ICDE Conf. 2015": "ICDE", "VLDB": "VLDB", "Very Large Data Bases": "VLDB",
}

func (u *expertUser) AnswerA(column, v1, v2 string) (bool, bool) {
	return venueClass[v1] != "" && venueClass[v1] == venueClass[v2], true
}

func (u *expertUser) AnswerM(column string, id visclean.TupleID) (float64, bool) {
	return 55, true // t7's missing citation count (Table II)
}

func (u *expertUser) AnswerO(column string, id visclean.TupleID, current float64) (bool, float64, bool) {
	if current == 1740 {
		return true, 174, true // the decimal-shift outlier of t2
	}
	return false, current, true
}

func main() {
	tbl := tableI()
	query := visclean.MustParseQuery(`
		VISUALIZE bar SELECT Venue, SUM(Citations) FROM pubs
		TRANSFORM GROUP BY Venue SORT Y BY DESC`)

	session, err := visclean.NewSession(tbl, query, []int{1}, visclean.Config{Seed: 1, K: 6})
	if err != nil {
		log.Fatal(err)
	}

	initial, err := session.CurrentVis()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Dirty bar chart (the paper's Fig 1a): duplicated SIGMOD bars,")
	fmt.Println("a 10x outlier and a missing VLDB citation count.")
	fmt.Println()
	fmt.Print(visclean.RenderChart(initial, 45))

	user := &expertUser{table: session.Table()}
	for i := 0; i < 4; i++ {
		rep, err := session.RunIteration(user)
		if err != nil {
			log.Fatal(err)
		}
		if rep.Exhausted {
			break
		}
		fmt.Printf("\ncomposite question %d: %d tuples, %d questions answered (T=%d A=%d M=%d O=%d)\n",
			rep.Iteration, rep.CQGVertices, rep.Questions(),
			rep.TQuestions, rep.AQuestions, rep.MQuestions, rep.OQuestions)
	}

	final, err := session.CurrentVis()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nCleaned bar chart (compare the paper's Table II ground truth):")
	fmt.Println()
	fmt.Print(visclean.RenderChart(final, 45))
	fmt.Printf("\nvisualization distance moved: %.4f (EMD)\n", visclean.EMD(initial, final))
}
