// Books: cleaning a predicate-filtered chart on D3.
//
// Generates the book-ratings dataset (two sources, publisher and
// language spelling variants, rating errors) and runs the paper's Q15 —
// average rating per publisher over English books. The interesting
// dirtiness: the WHERE Lang = 'English' predicate silently drops every
// row spelled "english", "ENG" or "en-US", so whole publishers are
// missing or undercounted until attribute-level cleaning standardizes
// the language column (the paper's §II-C(ii) selection pathology and the
// Q7 discussion).
//
// Run it with:
//
//	go run ./examples/books [-scale 0.05] [-budget 15]
package main

import (
	"flag"
	"fmt"
	"log"

	"visclean"
)

func main() {
	scale := flag.Float64("scale", 0.05, "dataset scale (1.0 = 3,702 books)")
	budget := flag.Int("budget", 15, "interaction budget")
	flag.Parse()

	d := visclean.GenerateD3(visclean.GenConfig{Scale: *scale, Seed: 3})
	query := visclean.MustParseQuery(`
		VISUALIZE bar SELECT Publ, AVG(Rating) FROM D3
		TRANSFORM GROUP BY Publ WHERE Lang = 'English' SORT Y BY DESC LIMIT 10`)

	truthVis, err := query.Execute(d.Truth.Clean)
	if err != nil {
		log.Fatal(err)
	}
	session, err := visclean.NewSession(d.Dirty, query, d.KeyColumns, visclean.Config{
		Seed:     3,
		TruthVis: truthVis,
	})
	if err != nil {
		log.Fatal(err)
	}
	user := visclean.NewOracle(d.Truth, 3)

	// Count how many English rows the dirty predicate loses.
	lang := d.Dirty.ColumnIndex("Lang")
	literal, spelledVariant := 0, 0
	for i := 0; i < d.Dirty.NumRows(); i++ {
		if s, ok := d.Dirty.Get(i, lang).Text(); ok {
			if s == "English" {
				literal++
			} else if d.Truth.CanonicalValue("Lang", s) == "English" {
				spelledVariant++
			}
		}
	}
	fmt.Printf("D3: %d rows; WHERE Lang = 'English' matches %d rows literally and\n", d.Dirty.NumRows(), literal)
	fmt.Printf("silently drops %d rows spelled differently (english/ENG/en-US/...).\n\n", spelledVariant)

	initial, err := session.CurrentVis()
	if err != nil {
		log.Fatal(err)
	}
	d0, _ := session.DistToTruth()
	fmt.Printf("Dirty chart (EMD to truth %.5f):\n%s\n", d0, visclean.RenderChart(initial, 40))

	for i := 0; i < *budget; i++ {
		rep, err := session.RunIteration(user)
		if err != nil {
			log.Fatal(err)
		}
		if rep.Exhausted {
			break
		}
	}

	final, err := session.CurrentVis()
	if err != nil {
		log.Fatal(err)
	}
	dEnd, _ := session.DistToTruth()
	fmt.Printf("Cleaned chart after %d composite questions (EMD to truth %.5f):\n%s\n",
		session.Iteration(), dEnd, visclean.RenderChart(final, 40))
	fmt.Printf("Ground truth:\n%s", visclean.RenderChart(truthVis, 40))
}
