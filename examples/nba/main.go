// NBA: compare composite questions against single questions on D2.
//
// Generates the NBA-players dataset (records from three communities with
// team-name variants and stat errors), runs the paper's Q10 — team share
// of total points as a pie chart — twice with the same budget: once with
// composite questions (GSS) and once with the Single baseline, and
// reports the user-time saving of the composite mechanism (the paper's
// Figs 15–16 finding: ≈40%).
//
// Run it with:
//
//	go run ./examples/nba [-scale 0.05] [-budget 15]
package main

import (
	"flag"
	"fmt"
	"log"

	"visclean"
)

func main() {
	scale := flag.Float64("scale", 0.05, "dataset scale (1.0 = 4,644 players)")
	budget := flag.Int("budget", 15, "interaction budget")
	flag.Parse()

	query := visclean.MustParseQuery(`
		VISUALIZE pie SELECT Team, SUM(#Points) FROM D2
		TRANSFORM GROUP BY Team SORT Y BY DESC LIMIT 10`)

	type outcome struct {
		name    string
		seconds float64
		dist    float64
		final   *visclean.VisData
	}
	var outcomes []outcome
	for _, mode := range []struct {
		name     string
		selector visclean.SelectorKind
	}{
		{"composite (GSS)", visclean.SelectGSS},
		{"single questions", visclean.SelectSingle},
	} {
		d := visclean.GenerateD2(visclean.GenConfig{Scale: *scale, Seed: 7})
		truthVis, err := query.Execute(d.Truth.Clean)
		if err != nil {
			log.Fatal(err)
		}
		session, err := visclean.NewSession(d.Dirty, query, d.KeyColumns, visclean.Config{
			Seed:     7,
			Selector: mode.selector,
			TruthVis: truthVis,
		})
		if err != nil {
			log.Fatal(err)
		}
		user := visclean.NewOracle(d.Truth, 7)
		cost := visclean.NewCostModel(7)

		if len(outcomes) == 0 {
			initial, err := session.CurrentVis()
			if err != nil {
				log.Fatal(err)
			}
			d0, _ := session.DistToTruth()
			fmt.Printf("Dirty pie chart (EMD to truth %.5f):\n%s\n", d0, visclean.RenderChart(initial, 40))
		}

		seconds := 0.0
		for i := 0; i < *budget; i++ {
			rep, err := session.RunIteration(user)
			if err != nil {
				log.Fatal(err)
			}
			if rep.Exhausted {
				break
			}
			if mode.selector == visclean.SelectSingle {
				seconds += cost.SingleGroupCost(rep.Questions())
			} else {
				seconds += cost.CompositeCost(rep.TQuestions+rep.AQuestions, rep.MQuestions+rep.OQuestions)
			}
		}
		dist, _ := session.DistToTruth()
		final, err := session.CurrentVis()
		if err != nil {
			log.Fatal(err)
		}
		outcomes = append(outcomes, outcome{mode.name, seconds, dist, final})
	}

	fmt.Printf("%-18s %12s %12s\n", "mechanism", "user time", "final EMD")
	for _, o := range outcomes {
		fmt.Printf("%-18s %11.0fs %12.5f\n", o.name, o.seconds, o.dist)
	}
	if s := outcomes[1].seconds; s > 0 {
		fmt.Printf("\ncomposite questions saved %.0f%% of user time\n",
			(1-outcomes[0].seconds/s)*100)
	}
	fmt.Printf("\nCleaned pie chart (composite):\n%s", visclean.RenderChart(outcomes[0].final, 40))
}
