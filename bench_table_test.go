package visclean

// Benchmarks for the columnar dataset engine (PR 8): raw table
// operations with allocation tracking, and the Clone-vs-Overlay
// comparison that justifies the copy-on-write layer. scripts/bench.sh
// records these (with -benchmem) into BENCH_pr8.json and
// scripts/check.sh gates on regressions.

import (
	"testing"

	"visclean/internal/datagen"
	"visclean/internal/dataset"
)

// tableOpsTable builds a mid-sized D1 dirty table (scale 0.05 ≈ 2.5k
// rows at seed 1 — the same fixture the annotate benches use).
func tableOpsTable(b *testing.B) *dataset.Table {
	b.Helper()
	d := datagen.D1(datagen.Config{Scale: 0.05, Seed: 1})
	return d.Dirty
}

// BenchmarkTableOps measures the dataset substrate's hot operations.
// The interesting metrics are allocs/op (Scan and GetByID must be
// zero-allocation on the columnar store) and the NumericColumn /
// DistinctStrings costs, which detection pays on every full rebuild.
func BenchmarkTableOps(b *testing.B) {
	tbl := tableOpsTable(b)
	cit := tbl.ColumnIndex("Citations")
	venue := tbl.ColumnIndex("Venue")

	b.Run("Scan", func(b *testing.B) {
		b.ReportAllocs()
		sum := 0.0
		for i := 0; i < b.N; i++ {
			for r := 0; r < tbl.NumRows(); r++ {
				if f, ok := tbl.Get(r, cit).Float(); ok {
					sum += f
				}
			}
		}
		_ = sum
	})

	b.Run("GetByID", func(b *testing.B) {
		b.ReportAllocs()
		ids := tbl.IDs()
		sum := 0.0
		for i := 0; i < b.N; i++ {
			for _, id := range ids {
				if v, ok := tbl.GetByID(id, cit); ok {
					if f, ok := v.Float(); ok {
						sum += f
					}
				}
			}
		}
		_ = sum
	})

	b.Run("NumericColumn", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			vals, _ := tbl.NumericColumn(cit)
			if len(vals) == 0 {
				b.Fatal("empty numeric column")
			}
		}
	})

	b.Run("DistinctStrings", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := tbl.DistinctStrings(venue)
			if len(m) == 0 {
				b.Fatal("no distinct venues")
			}
		}
	})

	b.Run("SortBy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cp := tbl.Clone()
			b.StartTimer()
			cp.SortBy(cit, true)
		}
	})

	b.Run("Append", func(b *testing.B) {
		b.ReportAllocs()
		row := tbl.Row(0)
		for i := 0; i < b.N; i++ {
			out := dataset.NewTable(tbl.Schema())
			for r := 0; r < 1000; r++ {
				out.MustAppend(row)
			}
		}
	})
}

// BenchmarkCloneVsOverlay is the tentpole's headline: hypothetical
// repairs and snapshots need a mutable view of the session table, and
// the copy-on-write Overlay must beat a deep Clone by ≥10× in both time
// and bytes. Each op performs the canonical hypothesis-pricing edit
// script: derive a view, patch 3 cells, read them back.
func BenchmarkCloneVsOverlay(b *testing.B) {
	tbl := tableOpsTable(b)
	cit := tbl.ColumnIndex("Citations")
	ids := []dataset.TupleID{tbl.ID(1), tbl.ID(tbl.NumRows() / 2), tbl.ID(tbl.NumRows() - 1)}

	b.Run("Clone", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cp := tbl.Clone()
			for _, id := range ids {
				if err := cp.SetByID(id, cit, dataset.Num(float64(i))); err != nil {
					b.Fatal(err)
				}
			}
			for _, id := range ids {
				if _, ok := cp.GetByID(id, cit); !ok {
					b.Fatal("lost cell")
				}
			}
		}
	})

	b.Run("Overlay", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ov := tbl.Overlay()
			for _, id := range ids {
				if err := ov.Set(id, cit, dataset.Num(float64(i))); err != nil {
					b.Fatal(err)
				}
			}
			for _, id := range ids {
				if _, ok := ov.Get(id, cit); !ok {
					b.Fatal("lost cell")
				}
			}
		}
	})
}
