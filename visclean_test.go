package visclean

import (
	"fmt"
	"strings"
	"testing"
)

// TestFacadeEndToEnd drives the whole system through the public API only:
// generate a dataset, parse a query, clean with the oracle, render.
func TestFacadeEndToEnd(t *testing.T) {
	d := GenerateD1(GenConfig{Scale: 0.004, Seed: 9})
	q := MustParseQuery(`VISUALIZE bar SELECT Venue, SUM(Citations) FROM D1 TRANSFORM GROUP BY Venue SORT Y BY DESC LIMIT 10`)
	truthVis, err := q.Execute(d.Truth.Clean)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(d.Dirty, q, d.KeyColumns, Config{Seed: 9, TruthVis: truthVis})
	if err != nil {
		t.Fatal(err)
	}
	user := NewOracle(d.Truth, 9)
	d0, err := s.DistToTruth()
	if err != nil {
		t.Fatal(err)
	}
	reports, err := s.Run(user, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) == 0 {
		t.Fatal("no iterations ran")
	}
	dEnd, _ := s.DistToTruth()
	if dEnd >= d0 {
		t.Fatalf("facade run did not clean: %v -> %v", d0, dEnd)
	}
	v, err := s.CurrentVis()
	if err != nil {
		t.Fatal(err)
	}
	if out := RenderChart(v, 30); !strings.Contains(out, "█") {
		t.Fatalf("render produced no bars:\n%s", out)
	}
}

func TestFacadeTableAndCSV(t *testing.T) {
	tbl := NewTable(Schema{{Name: "A", Kind: String}, {Name: "B", Kind: Float}})
	if _, err := tbl.Append([]Value{Str("x"), Num(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Append([]Value{Str("y"), Null(Float)}); err != nil {
		t.Fatal(err)
	}
	in := strings.NewReader("A,B\nx,1\ny,")
	back, err := ReadCSV(in, tbl.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 2 || !back.Get(1, 1).IsNull() {
		t.Fatal("csv read through facade broken")
	}
}

func TestFacadeDistances(t *testing.T) {
	q := MustParseQuery(`VISUALIZE pie SELECT A, COUNT(A) FROM t TRANSFORM GROUP BY A`)
	tbl := NewTable(Schema{{Name: "A", Kind: String}})
	tbl.MustAppend([]Value{Str("x")})
	tbl.MustAppend([]Value{Str("y")})
	v1, err := q.Execute(tbl)
	if err != nil {
		t.Fatal(err)
	}
	for name, f := range map[string]func(a, b *VisData) float64{
		"Dist": Dist, "EMD": EMD, "L1": L1, "L2": L2, "KL": KL, "JS": JS,
	} {
		if d := f(v1, v1); d > 1e-6 {
			t.Errorf("%s(v,v) = %v", name, d)
		}
	}
}

// ExampleNewSession demonstrates the full public-API flow on the paper's
// Table I excerpt, with a tiny scripted user.
func ExampleNewSession() {
	tbl := NewTable(Schema{
		{Name: "Title", Kind: String},
		{Name: "Venue", Kind: String},
		{Name: "Citations", Kind: Float},
	})
	rows := [][]Value{
		{Str("NADEEF"), Str("ACM SIGMOD"), Num(174)},
		{Str("NADEEF"), Str("SIGMOD"), Num(174)},
		{Str("SeeDB"), Str("VLDB"), Num(55)},
	}
	for _, r := range rows {
		if _, err := tbl.Append(r); err != nil {
			panic(err)
		}
	}
	q := MustParseQuery(`VISUALIZE bar SELECT Venue, SUM(Citations) FROM pubs TRANSFORM GROUP BY Venue SORT Y BY DESC`)
	v, err := q.Execute(tbl)
	if err != nil {
		panic(err)
	}
	for _, p := range v.Points {
		fmt.Printf("%s: %g\n", p.Label, p.Y)
	}
	// Output:
	// ACM SIGMOD: 174
	// SIGMOD: 174
	// VLDB: 55
}
