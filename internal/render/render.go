// Package render draws visualizations and composite-question graphs as
// text — the terminal edition of the paper's GUI (§VI). Bar charts render
// as horizontal bars, pie charts as a proportion table, and CQGs as an
// adjacency listing with question annotations the user can answer.
package render

import (
	"fmt"
	"sort"
	"strings"

	"visclean/internal/erg"
	"visclean/internal/vis"
)

// BarChart renders a horizontal ASCII bar chart of the series, width
// characters wide at the longest bar.
func BarChart(d *vis.Data, width int) string {
	if width <= 0 {
		width = 40
	}
	if len(d.Points) == 0 {
		return "(empty visualization)\n"
	}
	maxLabel := 0
	maxY := 0.0
	for _, p := range d.Points {
		if len(p.Label) > maxLabel {
			maxLabel = len(p.Label)
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	var b strings.Builder
	for _, p := range d.Points {
		bar := 0
		if maxY > 0 && p.Y > 0 {
			bar = int(p.Y / maxY * float64(width))
			if bar == 0 {
				bar = 1
			}
		}
		fmt.Fprintf(&b, "%-*s |%s %g\n", maxLabel, p.Label, strings.Repeat("█", bar), p.Y)
	}
	return b.String()
}

// PieChart renders the proportions of the series as a table with a
// percentage column and a small glyph bar.
func PieChart(d *vis.Data) string {
	if len(d.Points) == 0 {
		return "(empty visualization)\n"
	}
	norm := d.NormalizedY()
	maxLabel := 0
	for _, p := range d.Points {
		if len(p.Label) > maxLabel {
			maxLabel = len(p.Label)
		}
	}
	var b strings.Builder
	for i, p := range d.Points {
		pct := norm[i] * 100
		glyphs := int(pct / 4)
		fmt.Fprintf(&b, "%-*s %6.2f%% %s (%g)\n", maxLabel, p.Label, pct, strings.Repeat("◔", glyphs), p.Y)
	}
	return b.String()
}

// Chart dispatches on the chart type.
func Chart(d *vis.Data, width int) string {
	if d.Type == vis.Pie {
		return PieChart(d)
	}
	return BarChart(d, width)
}

// CQG renders a composite question graph: its vertices with repair
// questions and its edges with T/A questions, numbered so a terminal
// user can answer them one by one.
func CQG(g *erg.Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Composite question: %d tuples, %d links\n", g.NumVertices(), g.NumEdges())

	var vertices []string
	for _, v := range g.Vertices() {
		label := fmt.Sprintf("t%d", v)
		if r := g.Repair(v); r != nil {
			if r.Kind == erg.Missing {
				label += fmt.Sprintf(" [M? suggest %.4g]", r.Suggested)
			} else {
				label += fmt.Sprintf(" [O? %.4g → %.4g]", r.Current, r.Suggested)
			}
		}
		vertices = append(vertices, label)
	}
	sort.Strings(vertices)
	fmt.Fprintf(&b, "  vertices: %s\n", strings.Join(vertices, ", "))

	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(i)
		var qs []string
		if e.HasT {
			qs = append(qs, fmt.Sprintf("same entity? p=%.2f", e.PT))
		}
		if e.HasA {
			qs = append(qs, fmt.Sprintf("%s: %q ≟ %q (p=%.2f)", e.ACol, e.AV1, e.AV2, e.PA))
		}
		if len(qs) == 0 {
			qs = append(qs, "context")
		}
		fmt.Fprintf(&b, "  edge %d: t%d — t%d   %s\n", i+1, e.A, e.B, strings.Join(qs, "; "))
	}
	return b.String()
}

// SideBySide renders two charts in two labeled blocks for before/after
// comparisons in examples and the CLI.
func SideBySide(titleA string, a *vis.Data, titleB string, b *vis.Data, width int) string {
	var sb strings.Builder
	sb.WriteString("== " + titleA + " ==\n")
	sb.WriteString(Chart(a, width))
	sb.WriteString("== " + titleB + " ==\n")
	sb.WriteString(Chart(b, width))
	return sb.String()
}
