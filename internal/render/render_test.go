package render

import (
	"strings"
	"testing"

	"visclean/internal/dataset"
	"visclean/internal/erg"
	"visclean/internal/vis"
)

func barData() *vis.Data {
	return &vis.Data{
		Type: vis.Bar,
		Points: []vis.Point{
			{Label: "SIGMOD", Y: 174},
			{Label: "VLDB", Y: 55},
			{Label: "ICDE", Y: 0},
		},
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart(barData(), 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "SIGMOD") || !strings.Contains(lines[0], "174") {
		t.Fatalf("first line = %q", lines[0])
	}
	// Longest bar is width glyphs; zero bar has none.
	if got := strings.Count(lines[0], "█"); got != 20 {
		t.Fatalf("max bar width = %d", got)
	}
	if strings.Count(lines[2], "█") != 0 {
		t.Fatalf("zero bar should be empty: %q", lines[2])
	}
	// Small positive values round up to one glyph.
	small := &vis.Data{Points: []vis.Point{{Label: "a", Y: 1000}, {Label: "b", Y: 1}}}
	outSmall := BarChart(small, 30)
	if !strings.Contains(outSmall, "█ 1\n") {
		t.Fatalf("tiny bar missing:\n%s", outSmall)
	}
}

func TestBarChartEmptyAndDefaults(t *testing.T) {
	if got := BarChart(&vis.Data{}, 10); !strings.Contains(got, "empty") {
		t.Fatalf("empty chart = %q", got)
	}
	// width <= 0 takes the default without panicking.
	if got := BarChart(barData(), 0); !strings.Contains(got, "SIGMOD") {
		t.Fatal("default width render failed")
	}
}

func TestPieChart(t *testing.T) {
	d := &vis.Data{Type: vis.Pie, Points: []vis.Point{
		{Label: "2013", Y: 6},
		{Label: "2014", Y: 2},
		{Label: "2015", Y: 2},
	}}
	out := PieChart(d)
	if !strings.Contains(out, "60.00%") {
		t.Fatalf("pie proportions wrong:\n%s", out)
	}
	if !strings.Contains(out, "2014") || !strings.Contains(out, "20.00%") {
		t.Fatalf("pie output:\n%s", out)
	}
	if got := PieChart(&vis.Data{}); !strings.Contains(got, "empty") {
		t.Fatalf("empty pie = %q", got)
	}
}

func TestChartDispatch(t *testing.T) {
	bar := barData()
	if Chart(bar, 10) != BarChart(bar, 10) {
		t.Fatal("bar dispatch wrong")
	}
	pie := &vis.Data{Type: vis.Pie, Points: bar.Points}
	if Chart(pie, 10) != PieChart(pie) {
		t.Fatal("pie dispatch wrong")
	}
}

func TestCQGRendering(t *testing.T) {
	g := erg.MustNew([]dataset.TupleID{1, 2, 7})
	if err := g.AddEdge(erg.Edge{A: 1, B: 2, HasT: true, PT: 0.7, HasA: true, PA: 0.6,
		ACol: "Venue", AV1: "ACM SIGMOD", AV2: "SIGMOD Conf."}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(erg.Edge{A: 2, B: 7}); err != nil {
		t.Fatal(err)
	}
	if err := g.SetRepair(erg.VertexRepair{ID: 2, Kind: erg.Outlier, Current: 1740, Suggested: 174}); err != nil {
		t.Fatal(err)
	}
	if err := g.SetRepair(erg.VertexRepair{ID: 7, Kind: erg.Missing, Suggested: 55}); err != nil {
		t.Fatal(err)
	}
	out := CQG(g)
	for _, want := range []string{
		"3 tuples, 2 links",
		"same entity? p=0.70",
		`Venue: "ACM SIGMOD" ≟ "SIGMOD Conf."`,
		"[O? 1740 → 174]",
		"[M? suggest 55]",
		"context",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("CQG render missing %q:\n%s", want, out)
		}
	}
}

func TestSideBySide(t *testing.T) {
	a, b := barData(), barData()
	out := SideBySide("before", a, "after", b, 10)
	if !strings.Contains(out, "== before ==") || !strings.Contains(out, "== after ==") {
		t.Fatalf("side by side:\n%s", out)
	}
}

func TestVegaLiteBar(t *testing.T) {
	out, err := VegaLite(barData(), "Citations per venue")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"mark"`, `"bar"`, `"SIGMOD"`, `"Citations per venue"`, "vega-lite/v5.json"} {
		if !strings.Contains(out, want) {
			t.Fatalf("vega-lite spec missing %q:\n%s", want, out)
		}
	}
}

func TestVegaLitePie(t *testing.T) {
	d := &vis.Data{Type: vis.Pie, XField: "Year", YField: "Count",
		Points: []vis.Point{{Label: "2013", Y: 6}}}
	out, err := VegaLite(d, "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"arc"`) || !strings.Contains(out, `"theta"`) {
		t.Fatalf("pie spec wrong:\n%s", out)
	}
	if !strings.Contains(out, `"Year"`) {
		t.Fatalf("pie spec missing field title:\n%s", out)
	}
}
