package vis

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func sample() *Data {
	return &Data{
		Type:   Bar,
		XField: "Venue",
		YField: "Citations",
		Points: []Point{
			{Label: "SIGMOD", Y: 3},
			{Label: "VLDB", Y: 1},
		},
	}
}

func TestChartTypeString(t *testing.T) {
	if Bar.String() != "bar" || Pie.String() != "pie" {
		t.Fatal("chart type names wrong")
	}
	if !strings.Contains(ChartType(9).String(), "9") {
		t.Fatal("unknown chart type should include the value")
	}
}

func TestYVector(t *testing.T) {
	got := sample().YVector()
	if len(got) != 2 || got[0] != 3 || got[1] != 1 {
		t.Fatalf("YVector = %v", got)
	}
}

func TestNormalizedY(t *testing.T) {
	n := sample().NormalizedY()
	if math.Abs(n[0]-0.75) > 1e-12 || math.Abs(n[1]-0.25) > 1e-12 {
		t.Fatalf("normalized = %v", n)
	}
}

func TestNormalizedYNegativeShift(t *testing.T) {
	d := &Data{Points: []Point{{Label: "a", Y: -1}, {Label: "b", Y: 3}}}
	n := d.NormalizedY()
	// Shifted to (0, 4) then normalized -> (0, 1).
	if n[0] != 0 || n[1] != 1 {
		t.Fatalf("normalized = %v", n)
	}
}

func TestNormalizedYZeroSum(t *testing.T) {
	d := &Data{Points: []Point{{Y: 0}, {Y: 0}, {Y: 0}}}
	n := d.NormalizedY()
	for _, v := range n {
		if math.Abs(v-1.0/3.0) > 1e-12 {
			t.Fatalf("zero-sum should normalize uniform, got %v", n)
		}
	}
	if len((&Data{}).NormalizedY()) != 0 {
		t.Fatal("empty series should normalize empty")
	}
}

func TestLabelMapAccumulates(t *testing.T) {
	d := &Data{Points: []Point{{Label: "a", Y: 1}, {Label: "a", Y: 2}, {Label: "b", Y: 5}}}
	m := d.LabelMap()
	if m["a"] != 3 || m["b"] != 5 {
		t.Fatalf("label map = %v", m)
	}
}

func TestCloneIndependent(t *testing.T) {
	d := sample()
	cp := d.Clone()
	cp.Points[0].Y = 99
	if d.Points[0].Y != 3 {
		t.Fatal("clone aliased points")
	}
}

func TestString(t *testing.T) {
	s := sample().String()
	if !strings.Contains(s, "bar(Venue,Citations)") || !strings.Contains(s, "SIGMOD=3") {
		t.Fatalf("String = %q", s)
	}
}

// Property: NormalizedY always sums to ~1 for non-empty series and every
// entry is in [0, 1].
func TestQuickNormalizedYIsDistribution(t *testing.T) {
	f := func(ys []float64) bool {
		if len(ys) == 0 {
			return true
		}
		d := &Data{}
		for _, y := range ys {
			if math.IsNaN(y) || math.IsInf(y, 0) {
				y = 0
			}
			if y > 1e12 {
				y = 1e12
			}
			if y < -1e12 {
				y = -1e12
			}
			d.Points = append(d.Points, Point{Y: y})
		}
		n := d.NormalizedY()
		sum := 0.0
		for _, v := range n {
			if v < -1e-9 || v > 1+1e-9 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
