// Package vis defines the visualization data model shared by the query
// executor (which produces it) and the distance functions (which consume
// it): a chart is a typed series of (x, y) points, exactly the d =
// (d_1..d_m), d_i = (d_i(x), d_i(y)) notation of §II-B.
package vis

import (
	"fmt"
	"strings"
)

// ChartType enumerates the chart types of the paper's VQL (Fig 2).
type ChartType int

const (
	Bar ChartType = iota
	Pie
)

func (c ChartType) String() string {
	switch c {
	case Bar:
		return "bar"
	case Pie:
		return "pie"
	default:
		return fmt.Sprintf("ChartType(%d)", int(c))
	}
}

// Point is one mark of a chart: a categorical label (group name or bin
// label) and optionally a numeric x position (bin lower bound), plus the
// y value.
type Point struct {
	Label string
	X     float64
	HasX  bool
	Y     float64
}

// Data is the materialized visualization: what Q(D) evaluates to.
type Data struct {
	Type   ChartType
	XField string // source column for the x axis
	YField string // source column for the y axis ("" for COUNT(*) style)
	Points []Point
}

// YVector returns the raw y values in point order.
func (d *Data) YVector() []float64 {
	out := make([]float64, len(d.Points))
	for i, p := range d.Points {
		out[i] = p.Y
	}
	return out
}

// NormalizedY returns the y values scaled to sum to 1, as required by the
// EMD formulation of §II-B. Negative y values are shifted so the minimum
// maps to zero before normalization (EMD needs non-negative mass). A
// series that sums to zero normalizes to the uniform distribution.
func (d *Data) NormalizedY() []float64 {
	out := make([]float64, len(d.Points))
	if len(out) == 0 {
		return out
	}
	min := d.Points[0].Y
	for _, p := range d.Points {
		if p.Y < min {
			min = p.Y
		}
	}
	shift := 0.0
	if min < 0 {
		shift = -min
	}
	sum := 0.0
	for i, p := range d.Points {
		out[i] = p.Y + shift
		sum += out[i]
	}
	if sum <= 0 {
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// LabelMap returns y values keyed by label, for label-aligned distances.
// Duplicate labels accumulate.
func (d *Data) LabelMap() map[string]float64 {
	m := make(map[string]float64, len(d.Points))
	for _, p := range d.Points {
		m[p.Label] += p.Y
	}
	return m
}

// Clone deep-copies the data.
func (d *Data) Clone() *Data {
	cp := *d
	cp.Points = make([]Point, len(d.Points))
	copy(cp.Points, d.Points)
	return &cp
}

// String renders the series compactly for logs and tests.
func (d *Data) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s,%s)[", d.Type, d.XField, d.YField)
	for i, p := range d.Points {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%g", p.Label, p.Y)
	}
	b.WriteByte(']')
	return b.String()
}
