// Package fault provides named failpoints for deterministic fault
// injection, in the style production Go storage systems use to reach
// crash and error paths no integration test can hit from the outside.
//
// A failpoint is a call site like
//
//	if err := fault.Point("service/persist.rename"); err != nil { ... }
//
// that is a compiled-in no-op — one atomic load — unless the point has
// been armed by a test (Arm* helpers) or by an operator spec (ParseSpec,
// wired to viscleanweb's -faults debug flag). An armed point fires in
// one of three modes:
//
//   - error: Point returns a configured error, exercising the caller's
//     failure path (a full disk, a rename refused by the OS, …).
//   - delay: Point sleeps for a configured duration, widening race
//     windows that are otherwise nanoseconds wide.
//   - crash: Point panics with a private sentinel, simulating the
//     process dying at exactly that instruction. RecoverCrash converts
//     the panic into ErrCrash at the function boundary, so on-disk
//     state is left exactly as a kill would leave it (temp files
//     orphaned, renames not performed) while the test process survives.
//
// Whether a given call fires is decided by a deterministic Schedule
// over the point's per-arm call counter: "fail the 2nd call", "fail
// every 3rd call", or "fail always". Schedules make fault runs
// reproducible — the same operation sequence hits the same faults.
//
// This package is reproduction infrastructure (nothing in the paper
// needs it); it exists so the service layer's durability claims in
// DESIGN.md §8 are tested rather than asserted.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects what an armed failpoint does when its schedule fires.
type Mode int

const (
	// ModeError makes Point return the armed error.
	ModeError Mode = iota
	// ModeDelay makes Point sleep for the armed duration.
	ModeDelay
	// ModeCrash makes Point panic with the crash sentinel (see
	// RecoverCrash).
	ModeCrash
)

func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModeDelay:
		return "delay"
	case ModeCrash:
		return "crash"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Schedule decides deterministically which calls of an armed point
// fire, counted from 1 since the point was armed. An empty schedule
// never fires.
type Schedule struct {
	// Calls lists 1-based call numbers that fire ("fail the 2nd call").
	Calls []int
	// Every fires every Nth call (N, 2N, 3N, …). Zero disables.
	Every int
	// Always fires on every call.
	Always bool
}

func (s Schedule) fires(call int) bool {
	if s.Always {
		return true
	}
	for _, c := range s.Calls {
		if c == call {
			return true
		}
	}
	return s.Every > 0 && call%s.Every == 0
}

// ErrCrash is the sentinel error a simulated crash resolves to once
// RecoverCrash has recovered the panic. Callers that retry transient
// persistence errors must NOT retry ErrCrash: it models the process
// dying, and retrying in-process would defeat the simulation.
var ErrCrash = errors.New("fault: simulated crash")

// crashPanic is the private panic payload of ModeCrash.
type crashPanic struct{ name string }

// RecoverCrash is a deferred helper that converts a simulated-crash
// panic into an error assigned to *errp (wrapping ErrCrash). Any other
// panic is re-raised. Place it at the boundary whose on-disk effects
// should look crash-interrupted:
//
//	func WriteSnapshotFile(path string, snap Snapshot) (err error) {
//	    defer fault.RecoverCrash(&err)
//	    ...
func RecoverCrash(errp *error) {
	v := recover()
	if v == nil {
		return
	}
	c, ok := v.(crashPanic)
	if !ok {
		panic(v)
	}
	*errp = fmt.Errorf("%w at %s", ErrCrash, c.name)
}

// point is one armed failpoint.
type point struct {
	mode  Mode
	sched Schedule
	err   error
	delay time.Duration
	calls int
}

var (
	// armed counts armed points; Point's fast path is a single load of
	// it, so a binary with no faults armed pays one atomic read per
	// failpoint — unmeasurable next to any I/O the point guards.
	armed atomic.Int32

	mu     sync.Mutex
	points = map[string]*point{}
)

// Point checks the named failpoint. Disarmed (the overwhelmingly common
// case) it returns nil after one atomic load. Armed, it advances the
// point's call counter and, when the schedule fires, returns the armed
// error, sleeps the armed delay, or panics with the crash sentinel.
func Point(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	p := points[name]
	if p == nil {
		mu.Unlock()
		return nil
	}
	p.calls++
	fire := p.sched.fires(p.calls)
	mode, errv, delay := p.mode, p.err, p.delay
	mu.Unlock()
	if !fire {
		return nil
	}
	switch mode {
	case ModeDelay:
		time.Sleep(delay)
		return nil
	case ModeCrash:
		panic(crashPanic{name})
	default:
		return errv
	}
}

// arm installs (or replaces) a point, resetting its call counter, and
// returns a disarm func for deferring.
func arm(name string, p *point) func() {
	mu.Lock()
	if _, exists := points[name]; !exists {
		armed.Add(1)
	}
	points[name] = p
	mu.Unlock()
	return func() { Disarm(name) }
}

// ArmError arms a point to return err on scheduled calls. A nil err is
// replaced with a generic injected-fault error.
func ArmError(name string, err error, s Schedule) func() {
	if err == nil {
		err = fmt.Errorf("fault: injected error at %s", name)
	}
	return arm(name, &point{mode: ModeError, sched: s, err: err})
}

// ArmDelay arms a point to sleep d on scheduled calls.
func ArmDelay(name string, d time.Duration, s Schedule) func() {
	return arm(name, &point{mode: ModeDelay, sched: s, delay: d})
}

// ArmCrash arms a point to simulate a process crash on scheduled calls
// (panic with the sentinel RecoverCrash understands).
func ArmCrash(name string, s Schedule) func() {
	return arm(name, &point{mode: ModeCrash, sched: s})
}

// Disarm removes one armed point; a no-op for unknown names.
func Disarm(name string) {
	mu.Lock()
	if _, ok := points[name]; ok {
		delete(points, name)
		armed.Add(-1)
	}
	mu.Unlock()
}

// Reset disarms every point. Tests that arm faults must defer this so
// global state never leaks across tests.
func Reset() {
	mu.Lock()
	for name := range points {
		delete(points, name)
		armed.Add(-1)
	}
	mu.Unlock()
}

// Hits reports how many times an armed point has been reached since it
// was armed (fired or not). Zero for disarmed points.
func Hits(name string) int {
	mu.Lock()
	defer mu.Unlock()
	if p := points[name]; p != nil {
		return p.calls
	}
	return 0
}

// Armed lists the currently armed point names, sorted.
func Armed() []string {
	mu.Lock()
	names := make([]string, 0, len(points))
	for name := range points {
		names = append(names, name)
	}
	mu.Unlock()
	sort.Strings(names)
	return names
}

// ParseSpec arms failpoints from a textual spec, the grammar behind
// viscleanweb's -faults flag:
//
//	spec     = clause { ";" clause }
//	clause   = point "=" mode [ ":" arg ] [ "@" schedule ]
//	mode     = "error" | "delay" | "crash"
//	arg      = error message (error) | duration (delay, e.g. 50ms)
//	schedule = "always" (default) | "everyN" | call numbers "2" / "1,3"
//
// Examples:
//
//	service/persist.rename=error@2
//	service/persist.sync=delay:50ms@every3;service/persist.write=crash@1
//
// On error, nothing is armed (clauses armed before the bad one are
// disarmed again).
func ParseSpec(spec string) error {
	var cleanups []func()
	fail := func(err error) error {
		for _, c := range cleanups {
			c()
		}
		return err
	}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, rest, ok := strings.Cut(clause, "=")
		if !ok || name == "" {
			return fail(fmt.Errorf("fault: bad clause %q: want point=mode[:arg][@schedule]", clause))
		}
		modeArg, schedStr, hasSched := strings.Cut(rest, "@")
		modeStr, arg, _ := strings.Cut(modeArg, ":")
		sched := Schedule{Always: true}
		if hasSched {
			var err error
			if sched, err = parseSchedule(schedStr); err != nil {
				return fail(fmt.Errorf("fault: bad clause %q: %w", clause, err))
			}
		}
		switch modeStr {
		case "error":
			var err error
			if arg != "" {
				err = errors.New(arg)
			}
			cleanups = append(cleanups, ArmError(name, err, sched))
		case "delay":
			d, err := time.ParseDuration(arg)
			if err != nil {
				return fail(fmt.Errorf("fault: bad clause %q: delay needs a duration arg: %w", clause, err))
			}
			cleanups = append(cleanups, ArmDelay(name, d, sched))
		case "crash":
			cleanups = append(cleanups, ArmCrash(name, sched))
		default:
			return fail(fmt.Errorf("fault: bad clause %q: unknown mode %q", clause, modeStr))
		}
	}
	return nil
}

func parseSchedule(s string) (Schedule, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "always":
		return Schedule{Always: true}, nil
	case strings.HasPrefix(s, "every"):
		n, err := strconv.Atoi(s[len("every"):])
		if err != nil || n <= 0 {
			return Schedule{}, fmt.Errorf("bad schedule %q: want everyN with N ≥ 1", s)
		}
		return Schedule{Every: n}, nil
	default:
		var sched Schedule
		for _, part := range strings.Split(s, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				return Schedule{}, fmt.Errorf("bad schedule %q: want call numbers ≥ 1", s)
			}
			sched.Calls = append(sched.Calls, n)
		}
		return sched, nil
	}
}
