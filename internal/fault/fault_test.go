package fault

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestDisarmedIsNoOp(t *testing.T) {
	Reset()
	if err := Point("never/armed"); err != nil {
		t.Fatalf("disarmed point returned %v", err)
	}
	if got := Hits("never/armed"); got != 0 {
		t.Fatalf("Hits on disarmed point = %d, want 0", got)
	}
	if names := Armed(); len(names) != 0 {
		t.Fatalf("Armed() = %v, want empty", names)
	}
}

func TestErrorSchedules(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")

	// Fail exactly the 2nd call.
	ArmError("p/second", boom, Schedule{Calls: []int{2}})
	results := make([]error, 4)
	for i := range results {
		results[i] = Point("p/second")
	}
	for i, err := range results {
		want := i == 1
		if (err != nil) != want {
			t.Errorf("call %d: err = %v, want fire=%v", i+1, err, want)
		}
	}
	if !errors.Is(results[1], boom) {
		t.Errorf("fired error = %v, want boom", results[1])
	}
	if got := Hits("p/second"); got != 4 {
		t.Errorf("Hits = %d, want 4", got)
	}

	// Fail every 3rd call.
	ArmError("p/third", nil, Schedule{Every: 3})
	var fired []int
	for i := 1; i <= 9; i++ {
		if Point("p/third") != nil {
			fired = append(fired, i)
		}
	}
	if len(fired) != 3 || fired[0] != 3 || fired[1] != 6 || fired[2] != 9 {
		t.Errorf("every-3 fired on calls %v, want [3 6 9]", fired)
	}

	// Always.
	ArmError("p/always", boom, Schedule{Always: true})
	for i := 0; i < 3; i++ {
		if Point("p/always") == nil {
			t.Fatal("always schedule did not fire")
		}
	}
}

func TestRearmResetsCounter(t *testing.T) {
	defer Reset()
	ArmError("p/rearm", nil, Schedule{Calls: []int{1}})
	if Point("p/rearm") == nil {
		t.Fatal("1st call after arm did not fire")
	}
	if Point("p/rearm") != nil {
		t.Fatal("2nd call fired")
	}
	ArmError("p/rearm", nil, Schedule{Calls: []int{1}})
	if Point("p/rearm") == nil {
		t.Fatal("1st call after re-arm did not fire (counter not reset)")
	}
}

func TestDelayMode(t *testing.T) {
	defer Reset()
	ArmDelay("p/slow", 30*time.Millisecond, Schedule{Always: true})
	start := time.Now()
	if err := Point("p/slow"); err != nil {
		t.Fatalf("delay mode returned error %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("delay point slept only %v", d)
	}
}

func TestCrashModeAndRecover(t *testing.T) {
	defer Reset()
	ArmCrash("p/crash", Schedule{Always: true})

	op := func() (err error) {
		defer RecoverCrash(&err)
		if e := Point("p/crash"); e != nil {
			return e
		}
		t.Fatal("crash point returned instead of panicking")
		return nil
	}
	err := op()
	if !errors.Is(err, ErrCrash) {
		t.Fatalf("recovered crash = %v, want ErrCrash", err)
	}

	// Unrelated panics pass through RecoverCrash untouched.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("real panic was swallowed")
			}
		}()
		var e error
		defer RecoverCrash(&e)
		panic("real bug")
	}()
}

func TestDisarmAndReset(t *testing.T) {
	cleanup := ArmError("p/tmp", nil, Schedule{Always: true})
	if Point("p/tmp") == nil {
		t.Fatal("armed point did not fire")
	}
	cleanup()
	if Point("p/tmp") != nil {
		t.Fatal("disarmed point fired")
	}
	ArmError("p/a", nil, Schedule{Always: true})
	ArmError("p/b", nil, Schedule{Always: true})
	if got := Armed(); len(got) != 2 || got[0] != "p/a" || got[1] != "p/b" {
		t.Fatalf("Armed() = %v", got)
	}
	Reset()
	if Point("p/a") != nil || Point("p/b") != nil {
		t.Fatal("Reset left points armed")
	}
	if armed.Load() != 0 {
		t.Fatalf("armed count after Reset = %d", armed.Load())
	}
}

func TestParseSpec(t *testing.T) {
	defer Reset()
	spec := "service/persist.rename=error:disk gone@2; service/persist.sync=delay:1ms@every3;service/persist.write=crash@1,4"
	if err := ParseSpec(spec); err != nil {
		t.Fatal(err)
	}
	if got := Armed(); len(got) != 3 {
		t.Fatalf("Armed() = %v, want 3 points", got)
	}
	if Point("service/persist.rename") != nil {
		t.Fatal("rename fired on call 1")
	}
	if err := Point("service/persist.rename"); err == nil || err.Error() != "disk gone" {
		t.Fatalf("rename call 2 = %v, want custom message", err)
	}
	var err error
	func() {
		defer RecoverCrash(&err)
		_ = Point("service/persist.write")
	}()
	if !errors.Is(err, ErrCrash) {
		t.Fatalf("crash clause call 1 = %v, want ErrCrash", err)
	}

	bad := []string{
		"no-equals",
		"=error",
		"p=frobnicate",
		"p=delay",           // delay without duration
		"p=delay:nonsense",  // unparsable duration
		"p=error@every0",    // bad schedule
		"p=error@zero,calls@x",
	}
	for _, spec := range bad {
		Reset()
		if err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted a bad spec", spec)
		}
		if n := len(Armed()); n != 0 {
			t.Errorf("ParseSpec(%q) left %d points armed after failing", spec, n)
		}
	}
}

// TestConcurrentPoints hammers a mixed armed/disarmed set from many
// goroutines; run with -race.
func TestConcurrentPoints(t *testing.T) {
	defer Reset()
	ArmError("p/conc", nil, Schedule{Every: 2})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				_ = Point("p/conc")
				_ = Point("p/not-armed")
			}
		}()
	}
	wg.Wait()
	if got := Hits("p/conc"); got != 4000 {
		t.Fatalf("Hits = %d, want 4000", got)
	}
}

// BenchmarkPointDisarmed documents the disarmed fast path: one atomic
// load, no allocation.
func BenchmarkPointDisarmed(b *testing.B) {
	Reset()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if Point("service/persist.write") != nil {
			b.Fatal("fired")
		}
	}
}
