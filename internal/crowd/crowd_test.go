package crowd

import (
	"math/rand"
	"testing"

	"visclean/internal/dataset"
	"visclean/internal/oracle"
)

func testTruth() *oracle.GroundTruth {
	return &oracle.GroundTruth{
		Entity: map[dataset.TupleID]int{1: 100, 2: 100, 3: 101},
		Canonical: map[string]map[string]string{
			"Venue": {"SIGMOD": "SIGMOD", "ACM SIGMOD": "SIGMOD", "VLDB": "VLDB"},
		},
		TrueY: map[string]map[dataset.TupleID]float64{
			"Citations": {1: 174, 2: 174, 3: 15},
		},
	}
}

func TestPanelMajorityRecoversTruth(t *testing.T) {
	// 9 workers at 80% accuracy, 5 votes per question: majority should
	// answer nearly perfectly; sample many questions and count errors.
	p := NewPanel(testTruth(), 9, 0.8, 0.8, 1)
	p.K = 5
	wrong := 0
	const n = 400
	for i := 0; i < n; i++ {
		if m, ok := p.AnswerT(1, 2); !ok || !m {
			wrong++
		}
		if m, ok := p.AnswerT(1, 3); !ok || m {
			wrong++
		}
	}
	// P(majority of 5 wrong at 80% accuracy) ≈ 5.8%; allow sampling slack.
	if rate := float64(wrong) / (2 * n); rate > 0.09 {
		t.Fatalf("majority error rate %v, want < 0.09", rate)
	}
	// And the panel must beat a single worker's 20% error rate.
	if rate := float64(wrong) / (2 * n); rate > 0.15 {
		t.Fatalf("panel no better than one worker: %v", rate)
	}
}

func TestPanelBadWorkersDegrade(t *testing.T) {
	good := NewPanel(testTruth(), 9, 0.95, 0.95, 2)
	bad := NewPanel(testTruth(), 9, 0.55, 0.55, 2)
	errs := func(p *Panel) int {
		wrong := 0
		for i := 0; i < 300; i++ {
			if m, _ := p.AnswerT(1, 2); !m {
				wrong++
			}
		}
		return wrong
	}
	if errs(good) >= errs(bad) {
		t.Fatal("high-accuracy panel should beat low-accuracy panel")
	}
}

func TestPanelNumericAggregation(t *testing.T) {
	p := NewPanel(testTruth(), 9, 0.9, 0.9, 3)
	p.K = 5
	hits := 0
	for i := 0; i < 200; i++ {
		v, ok := p.AnswerM("Citations", 1)
		if ok && v == 174 {
			hits++
		}
	}
	if hits < 150 {
		t.Fatalf("median recovered truth only %d/200 times", hits)
	}
}

func TestPanelAnswerO(t *testing.T) {
	p := NewPanel(testTruth(), 9, 0.95, 0.95, 4)
	p.K = 5
	outVotes, fixes := 0, 0
	for i := 0; i < 100; i++ {
		isOut, v, ok := p.AnswerO("Citations", 1, 1740)
		if !ok {
			continue
		}
		if isOut {
			outVotes++
			if v == 174 {
				fixes++
			}
		}
	}
	if outVotes < 90 || fixes < 80 {
		t.Fatalf("outlier consensus weak: %d verdicts, %d correct fixes", outVotes, fixes)
	}
	// Correct values should rarely be flagged.
	flagged := 0
	for i := 0; i < 100; i++ {
		if isOut, _, _ := p.AnswerO("Citations", 1, 174); isOut {
			flagged++
		}
	}
	if flagged > 10 {
		t.Fatalf("correct value flagged %d/100 times", flagged)
	}
}

func TestPanelKClamps(t *testing.T) {
	p := NewPanel(testTruth(), 2, 0.9, 0.9, 5)
	p.K = 10 // more than workers: must clamp, not panic
	if _, ok := p.AnswerT(1, 2); !ok {
		t.Fatal("clamped panel failed to answer")
	}
}

func TestEstimateAccuracies(t *testing.T) {
	// Synthesize an answer matrix: workers with known accuracies voting
	// on questions with known truth; estimation must rank workers
	// correctly and roughly recover the accuracy levels.
	rng := rand.New(rand.NewSource(6))
	trueAcc := []float64{0.95, 0.85, 0.6, 0.5}
	const nq = 500
	answers := make([][]bool, nq)
	for q := range answers {
		truth := rng.Intn(2) == 0
		row := make([]bool, len(trueAcc))
		for w, acc := range trueAcc {
			if rng.Float64() < acc {
				row[w] = truth
			} else {
				row[w] = !truth
			}
		}
		answers[q] = row
	}
	est := EstimateAccuracies(answers, 15)
	if len(est) != len(trueAcc) {
		t.Fatalf("estimates = %v", est)
	}
	for w := 1; w < len(est); w++ {
		if est[w-1] < est[w]-0.05 {
			t.Fatalf("worker ranking wrong: %v (true %v)", est, trueAcc)
		}
	}
	if est[0] < 0.85 {
		t.Fatalf("best worker underestimated: %v", est)
	}
	if est[3] > 0.65 {
		t.Fatalf("random worker overestimated: %v", est)
	}
}

func TestEstimateAccuraciesEmpty(t *testing.T) {
	if out := EstimateAccuracies(nil, 5); out != nil {
		t.Fatalf("empty matrix estimates = %v", out)
	}
}
