// Package crowd simulates the crowdsourcing substrate the paper's
// evaluation rests on: its ground truth was "obtained via crowdsourcing
// [23], [8]" — many imperfect workers answering each question, with
// aggregation recovering a near-expert answer. The package provides
//
//   - Worker: one annotator with an individual accuracy, answering from
//     ground truth with that reliability,
//   - Panel: a pool of workers that answers each question by majority
//     vote over a sample of k workers (boolean questions) or by the
//     median (numeric questions), and implements pipeline.User so a
//     whole crowd can drive a cleaning session,
//   - EstimateAccuracies: an iterative consensus re-weighting scheme (a
//     one-coin Dawid–Skene variant) recovering worker reliabilities
//     from their answer matrix without ground truth.
package crowd

import (
	"math/rand"
	"sort"

	"visclean/internal/dataset"
	"visclean/internal/oracle"
)

// Worker is one simulated annotator. Accuracy is the probability a
// boolean answer is correct; numeric answers are corrupted with the
// complement probability.
type Worker struct {
	ID       int
	Accuracy float64
	oracle   *oracle.Oracle
	rng      *rand.Rand
}

// answerBool returns the truth with probability Accuracy.
func (w *Worker) answerBool(truth bool) bool {
	if w.rng.Float64() < w.Accuracy {
		return truth
	}
	return !truth
}

// answerFloat returns the truth or a perturbed value.
func (w *Worker) answerFloat(truth float64) float64 {
	if w.rng.Float64() < w.Accuracy {
		return truth
	}
	switch w.rng.Intn(3) {
	case 0:
		return truth * 10
	case 1:
		return truth / 2
	default:
		return truth + 50*(w.rng.Float64()-0.5)
	}
}

// Panel is a pool of workers answering questions by aggregation. It
// implements pipeline.User.
type Panel struct {
	Workers []*Worker
	// K is how many workers answer each question (default 3, like the
	// common 3-vote crowdsourcing deployment).
	K   int
	rng *rand.Rand
}

// NewPanel builds n workers over the given ground truth. Worker
// accuracies are drawn uniformly from [minAcc, maxAcc].
func NewPanel(truth *oracle.GroundTruth, n int, minAcc, maxAcc float64, seed int64) *Panel {
	rng := rand.New(rand.NewSource(seed))
	p := &Panel{K: 3, rng: rng}
	for i := 0; i < n; i++ {
		acc := minAcc + (maxAcc-minAcc)*rng.Float64()
		p.Workers = append(p.Workers, &Worker{
			ID:       i,
			Accuracy: acc,
			oracle:   oracle.New(truth, seed+int64(i)*101),
			rng:      rand.New(rand.NewSource(seed + int64(i)*211)),
		})
	}
	return p
}

// sample picks K distinct workers.
func (p *Panel) sample() []*Worker {
	k := p.K
	if k <= 0 {
		k = 3
	}
	if k > len(p.Workers) {
		k = len(p.Workers)
	}
	idx := p.rng.Perm(len(p.Workers))[:k]
	out := make([]*Worker, k)
	for i, j := range idx {
		out[i] = p.Workers[j]
	}
	return out
}

// majority aggregates boolean votes.
func majority(votes []bool) bool {
	yes := 0
	for _, v := range votes {
		if v {
			yes++
		}
	}
	return yes*2 > len(votes)
}

// median aggregates numeric answers.
func median(vals []float64) float64 {
	cp := append([]float64(nil), vals...)
	sort.Float64s(cp)
	mid := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[mid]
	}
	return (cp[mid-1] + cp[mid]) / 2
}

// AnswerT implements pipeline.User by majority vote.
func (p *Panel) AnswerT(a, b dataset.TupleID) (bool, bool) {
	workers := p.sample()
	if len(workers) == 0 {
		return false, false
	}
	votes := make([]bool, 0, len(workers))
	for _, w := range workers {
		truth, ok := w.oracle.AnswerT(a, b)
		if !ok {
			continue
		}
		votes = append(votes, w.answerBool(truth))
	}
	if len(votes) == 0 {
		return false, false
	}
	return majority(votes), true
}

// AnswerA implements pipeline.User by majority vote.
func (p *Panel) AnswerA(column, v1, v2 string) (bool, bool) {
	workers := p.sample()
	if len(workers) == 0 {
		return false, false
	}
	votes := make([]bool, 0, len(workers))
	for _, w := range workers {
		truth, ok := w.oracle.AnswerA(column, v1, v2)
		if !ok {
			continue
		}
		votes = append(votes, w.answerBool(truth))
	}
	if len(votes) == 0 {
		return false, false
	}
	return majority(votes), true
}

// AnswerM implements pipeline.User by the median of worker values.
func (p *Panel) AnswerM(column string, id dataset.TupleID) (float64, bool) {
	workers := p.sample()
	vals := make([]float64, 0, len(workers))
	for _, w := range workers {
		truth, ok := w.oracle.AnswerM(column, id)
		if !ok {
			continue
		}
		vals = append(vals, w.answerFloat(truth))
	}
	if len(vals) == 0 {
		return 0, false
	}
	return median(vals), true
}

// AnswerO implements pipeline.User: majority on the verdict, median on
// the repair value among workers voting "outlier".
func (p *Panel) AnswerO(column string, id dataset.TupleID, current float64) (bool, float64, bool) {
	workers := p.sample()
	votes := make([]bool, 0, len(workers))
	vals := make([]float64, 0, len(workers))
	for _, w := range workers {
		isOut, truth, ok := w.oracle.AnswerO(column, id, current)
		if !ok {
			continue
		}
		vote := w.answerBool(isOut)
		votes = append(votes, vote)
		if vote {
			vals = append(vals, w.answerFloat(truth))
		}
	}
	if len(votes) == 0 {
		return false, 0, false
	}
	if !majority(votes) {
		return false, current, true
	}
	if len(vals) == 0 {
		return false, current, true
	}
	return true, median(vals), true
}

// EstimateAccuracies recovers worker reliabilities from a boolean answer
// matrix without ground truth: answers[q][w] is worker w's vote on
// question q. It alternates between (1) weighted-majority consensus per
// question and (2) re-scoring each worker by agreement with the
// consensus — the one-coin Dawid–Skene fixed point. Returns per-worker
// estimated accuracies in [0, 1].
func EstimateAccuracies(answers [][]bool, iterations int) []float64 {
	if len(answers) == 0 {
		return nil
	}
	nw := len(answers[0])
	acc := make([]float64, nw)
	for i := range acc {
		acc[i] = 0.7 // neutral optimistic prior
	}
	if iterations <= 0 {
		iterations = 10
	}
	consensus := make([]bool, len(answers))
	for it := 0; it < iterations; it++ {
		// E-step: weighted majority per question. Weights log-odds-like:
		// acc − 0.5 keeps the math simple and monotone.
		for q, row := range answers {
			score := 0.0
			for w, vote := range row {
				weight := acc[w] - 0.5
				if vote {
					score += weight
				} else {
					score -= weight
				}
			}
			consensus[q] = score >= 0
		}
		// M-step: accuracy = agreement rate with consensus, smoothed.
		for w := 0; w < nw; w++ {
			agree := 0
			for q, row := range answers {
				if row[w] == consensus[q] {
					agree++
				}
			}
			acc[w] = (float64(agree) + 1) / (float64(len(answers)) + 2)
		}
	}
	return acc
}
