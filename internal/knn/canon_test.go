package knn

import (
	"reflect"
	"testing"

	"visclean/internal/dataset"
)

// TestNewIndexCanonNilMatchesNewIndex pins the fallback: a nil Canon is
// the historical raw-token behaviour.
func TestNewIndexCanonNilMatchesNewIndex(t *testing.T) {
	tbl := testTable(t)
	a := NewIndex(tbl, 2)
	b := NewIndexCanon(tbl, 2, nil)
	for r := 0; r < tbl.NumRows(); r++ {
		if !reflect.DeepEqual(a.Tokens(r), b.Tokens(r)) {
			t.Fatalf("row %d tokens differ: %v vs %v", r, a.Tokens(r), b.Tokens(r))
		}
	}
}

// TestCanonAndResetRows drives the pipeline's standardization flow: the
// canon function changes what a cell tokenizes to, and ResetRows brings
// affected rows up to date with a from-scratch rebuild.
func TestCanonAndResetRows(t *testing.T) {
	tbl := testTable(t)
	synonyms := map[string]string{} // mutable, like a session's standardizers
	canon := func(col int, v dataset.Value) string {
		if txt, ok := v.Text(); ok && col == 1 {
			if c, ok := synonyms[txt]; ok {
				return c
			}
		}
		return v.String()
	}
	ix := NewIndexCanon(tbl, 2, canon)

	// Before any approval canon is the identity: raw tokens.
	raw := NewIndex(tbl, 2)
	for r := 0; r < tbl.NumRows(); r++ {
		if !reflect.DeepEqual(ix.Tokens(r), raw.Tokens(r)) {
			t.Fatalf("row %d: identity canon diverges from raw tokens", r)
		}
	}
	if _, ok := ix.Tokens(1)["conf"]; !ok {
		t.Fatal("row 1 should carry its raw venue token before the merge")
	}

	// Approve "SIGMOD Conf" → "SIGMOD" and reset the row carrying it.
	synonyms["SIGMOD Conf"] = "SIGMOD"
	ix.ResetRows([]int{1})

	fresh := NewIndexCanon(tbl, 2, canon)
	for r := 0; r < tbl.NumRows(); r++ {
		if !reflect.DeepEqual(ix.Tokens(r), fresh.Tokens(r)) {
			t.Fatalf("row %d: ResetRows diverges from rebuild: %v vs %v", r, ix.Tokens(r), fresh.Tokens(r))
		}
	}
	if _, ok := ix.Tokens(1)["conf"]; ok {
		t.Fatal("row 1 kept its pre-merge token after ResetRows")
	}

	// Rows 0 and 1 now share identical venue text; row 1 must become row
	// 0's perfect neighbour.
	ns := ix.Nearest(0, 1, nil)
	if len(ns) != 1 || ns[0].Row != 1 || ns[0].Sim != 1 {
		t.Fatalf("post-merge nearest to row 0 = %+v, want row 1 at sim 1", ns)
	}

	// Out-of-range rows are ignored, not a panic.
	ix.ResetRows([]int{-1, tbl.NumRows() + 5})
}
