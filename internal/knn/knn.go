// Package knn provides a shared nearest-neighbour index over a table's
// row token sets. The missing-value imputer and the outlier repairer
// both rank candidate rows by the token Jaccard of the concatenated
// non-measure attributes; before this package each of them tokenized the
// whole table privately, paying the dominant detection cost twice per
// iteration. One Index is built per table (the pipeline caches it for
// the session: token sets exclude the measure column, so measure repairs
// never stale it; attribute standardization does change the effective
// cell text, which the pipeline pushes in through ResetRows).
//
// This is reproduction infrastructure — the paper's kNN-based imputation
// and repair (§III) do not specify an index; this one exists so the
// reproduction's detection phase scales.
package knn

import (
	"sort"

	"visclean/internal/dataset"
	"visclean/internal/stringsim"
)

// Canon maps a cell to the text that gets tokenized. The pipeline uses
// it to tokenize attribute cells through the session's value
// standardizers, so rows whose raw values are approved synonyms share
// tokens. A nil Canon (or a nil result path) falls back to
// Value.String(), the historical behaviour.
type Canon func(col int, v dataset.Value) string

// Index holds per-row token sets for similarity search. Safe for
// concurrent Nearest calls between mutations; ResetRows must not race
// with readers.
type Index struct {
	table   *dataset.Table
	skipCol int
	canon   Canon
	tokens  []map[string]struct{}
}

// NewIndex tokenizes every row of t, excluding skipCol (the measure
// column, so a row's own — possibly corrupt — measure value never
// influences which neighbours are chosen).
func NewIndex(t *dataset.Table, skipCol int) *Index {
	return NewIndexCanon(t, skipCol, nil)
}

// NewIndexCanon is NewIndex with every cell routed through canon before
// tokenization.
func NewIndexCanon(t *dataset.Table, skipCol int, canon Canon) *Index {
	ix := &Index{table: t, skipCol: skipCol, canon: canon}
	ix.tokens = make([]map[string]struct{}, t.NumRows())
	for i := 0; i < t.NumRows(); i++ {
		ix.tokens[i] = ix.rowTokens(i)
	}
	return ix
}

func (ix *Index) rowTokens(row int) map[string]struct{} {
	set := make(map[string]struct{})
	for c := 0; c < ix.table.NumCols(); c++ {
		if c == ix.skipCol {
			continue
		}
		text := ""
		if ix.canon != nil {
			text = ix.canon(c, ix.table.Get(row, c))
		} else {
			text = ix.table.Get(row, c).String()
		}
		for _, tok := range stringsim.Tokenize(text) {
			set[tok] = struct{}{}
		}
	}
	return set
}

// TokenSets returns the per-row token sets backing the index. Both the
// slice and the sets are shared live state: callers must treat them as
// read-only. The artifact cache stores raw (canon-free) token sets this
// way and re-binds them to each session's table via NewIndexFromTokens.
func (ix *Index) TokenSets() []map[string]struct{} { return ix.tokens }

// NewIndexFromTokens builds an Index over t from precomputed token sets,
// sharing the set maps with the source. tokens must be what
// NewIndexCanon(t, skipCol, canon) would have produced for rows it is
// not later asked to ResetRows — sharing is safe because ResetRows
// replaces a row's map wholesale, never mutating a set in place.
func NewIndexFromTokens(t *dataset.Table, skipCol int, canon Canon, tokens []map[string]struct{}) *Index {
	return &Index{
		table:   t,
		skipCol: skipCol,
		canon:   canon,
		tokens:  append([]map[string]struct{}(nil), tokens...),
	}
}

// ResetRows re-tokenizes the given rows against the table's (and canon's)
// current state. The pipeline calls it when an approved attribute synonym
// changes the canonical form of a value those rows carry.
func (ix *Index) ResetRows(rows []int) {
	for _, r := range rows {
		if r >= 0 && r < len(ix.tokens) {
			ix.tokens[r] = ix.rowTokens(r)
		}
	}
}

// Table returns the indexed table.
func (ix *Index) Table() *dataset.Table { return ix.table }

// SkipCol returns the excluded column index.
func (ix *Index) SkipCol() int { return ix.skipCol }

// Tokens returns the token set of one row. Callers must not mutate it.
func (ix *Index) Tokens(row int) map[string]struct{} { return ix.tokens[row] }

// Neighbor is one similarity-ranked candidate row.
type Neighbor struct {
	Row int
	ID  dataset.TupleID
	Sim float64
}

// Nearest returns up to k rows most similar to row, excluding row itself
// and any candidate rejected by accept (nil accepts all), ordered by
// descending similarity with ascending tuple id as the tiebreak — the
// deterministic ranking the imputer has always used. Candidates are
// scored in row order, so the result is reproducible bit for bit.
func (ix *Index) Nearest(row, k int, accept func(row int) bool) []Neighbor {
	var cands []Neighbor
	for i := range ix.tokens {
		if i == row {
			continue
		}
		if accept != nil && !accept(i) {
			continue
		}
		cands = append(cands, Neighbor{
			Row: i,
			ID:  ix.table.ID(i),
			Sim: stringsim.JaccardSets(ix.tokens[row], ix.tokens[i]),
		})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].Sim != cands[b].Sim {
			return cands[a].Sim > cands[b].Sim
		}
		return cands[a].ID < cands[b].ID
	})
	if k > 0 && len(cands) > k {
		cands = cands[:k]
	}
	return cands
}
