package knn

import (
	"testing"

	"visclean/internal/dataset"
)

func testTable(t *testing.T) *dataset.Table {
	t.Helper()
	tbl := dataset.NewTable(dataset.Schema{
		{Name: "Title", Kind: dataset.String},
		{Name: "Venue", Kind: dataset.String},
		{Name: "Citations", Kind: dataset.Float},
	})
	rows := [][]dataset.Value{
		{dataset.Str("NADEEF data cleaning"), dataset.Str("SIGMOD"), dataset.Num(174)},
		{dataset.Str("NADEEF data cleaning"), dataset.Str("SIGMOD Conf"), dataset.Num(1740)},
		{dataset.Str("SeeDB visual analytics"), dataset.Str("VLDB"), dataset.Null(dataset.Float)},
		{dataset.Str("Elaps time travel"), dataset.Str("ICDE"), dataset.Num(42)},
	}
	for _, r := range rows {
		tbl.MustAppend(r)
	}
	return tbl
}

func TestNearestRankingAndSelfExclusion(t *testing.T) {
	ix := NewIndex(testTable(t), 2)
	ns := ix.Nearest(0, 3, nil)
	if len(ns) != 3 {
		t.Fatalf("expected 3 neighbours, got %d", len(ns))
	}
	// Row 1 shares all tokens except the venue suffix — must rank first.
	if ns[0].Row != 1 {
		t.Fatalf("nearest to row 0 is row %d, want 1 (%+v)", ns[0].Row, ns)
	}
	for _, n := range ns {
		if n.Row == 0 {
			t.Fatal("Nearest returned the probe row itself")
		}
	}
	for i := 1; i < len(ns); i++ {
		if ns[i].Sim > ns[i-1].Sim {
			t.Fatalf("neighbours not in descending similarity: %+v", ns)
		}
	}
}

func TestNearestAcceptFilter(t *testing.T) {
	tbl := testTable(t)
	ix := NewIndex(tbl, 2)
	// The imputer's filter: only rows with a usable measure value.
	hasY := func(i int) bool {
		_, ok := tbl.Get(i, 2).Float()
		return ok
	}
	for _, n := range ix.Nearest(0, 10, hasY) {
		if n.Row == 2 {
			t.Fatal("rejected row returned")
		}
	}
}

func TestSkipColExcludedFromTokens(t *testing.T) {
	ix := NewIndex(testTable(t), 2)
	for row := 0; row < 4; row++ {
		for tok := range ix.Tokens(row) {
			if tok == "174" || tok == "1740" || tok == "42" {
				t.Fatalf("row %d tokens include measure value %q", row, tok)
			}
		}
	}
	if ix.SkipCol() != 2 {
		t.Fatalf("SkipCol = %d", ix.SkipCol())
	}
}

func TestNearestTruncatesToK(t *testing.T) {
	ix := NewIndex(testTable(t), 2)
	if got := len(ix.Nearest(0, 2, nil)); got != 2 {
		t.Fatalf("k=2 returned %d neighbours", got)
	}
	if got := len(ix.Nearest(0, 0, nil)); got != 3 {
		t.Fatalf("k=0 (unbounded) returned %d neighbours", got)
	}
}
