package em

import (
	"visclean/internal/dataset"
)

// ValuePairKey identifies an unordered pair of attribute values within
// one column.
type ValuePairKey struct {
	Col    int
	V1, V2 string
}

// MakeValuePairKey canonicalizes the value order.
func MakeValuePairKey(col int, v1, v2 string) ValuePairKey {
	if v1 > v2 {
		v1, v2 = v2, v1
	}
	return ValuePairKey{Col: col, V1: v1, V2: v2}
}

// CandidateIndex is a static inverted view of a blocking candidate list:
// for each (column, value pair) the first candidate in list order whose
// endpoints exhibit those two differing values, and for each tuple the
// candidates touching it in list order. The candidate list and the
// attribute cells it references are fixed for a session's lifetime
// (cleaning rewrites only the measure column), so the index is built once
// and replaces the per-iteration full scans of ERG construction
// (candidate-pair-by-values lookup, isolated-vertex attachment) with
// O(1)/O(degree) lookups returning the exact same elements.
type CandidateIndex struct {
	byValue  map[ValuePairKey]Pair
	incident map[dataset.TupleID][]Pair
}

// NewCandidateIndex scans candidates once against the given columns.
func NewCandidateIndex(t *dataset.Table, candidates []Pair, cols []int) *CandidateIndex {
	ix := &CandidateIndex{
		byValue:  make(map[ValuePairKey]Pair),
		incident: make(map[dataset.TupleID][]Pair),
	}
	for _, p := range candidates {
		ix.incident[p.A] = append(ix.incident[p.A], p)
		ix.incident[p.B] = append(ix.incident[p.B], p)
		for _, c := range cols {
			va, okA := t.GetByID(p.A, c)
			vb, okB := t.GetByID(p.B, c)
			if !okA || !okB {
				continue
			}
			ta, okA := va.Text()
			tb, okB := vb.Text()
			if !okA || !okB || ta == tb {
				continue
			}
			key := MakeValuePairKey(c, ta, tb)
			if _, dup := ix.byValue[key]; !dup {
				ix.byValue[key] = p
			}
		}
	}
	return ix
}

// PairForValues returns the first candidate exhibiting the value pair.
func (ix *CandidateIndex) PairForValues(col int, v1, v2 string) (Pair, bool) {
	p, ok := ix.byValue[MakeValuePairKey(col, v1, v2)]
	return p, ok
}

// Incident returns the candidates touching id, in candidate-list order.
// Callers must not mutate the returned slice.
func (ix *CandidateIndex) Incident(id dataset.TupleID) []Pair {
	return ix.incident[id]
}
