package em

import "sort"

// UnionFind is a disjoint-set forest with union by size and path
// compression, keyed by dense integer indices.
type UnionFind struct {
	parent []int
	size   []int
}

// NewUnionFind creates n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

// Find returns the set representative of x, halving the path as it
// walks. The halving write is skipped when it would not move the entry:
// after Compress has settled the forest, Find performs no writes at all,
// which is what makes a compressed forest safe for concurrent readers.
func (uf *UnionFind) Find(x int) int {
	for uf.parent[x] != x {
		if g := uf.parent[uf.parent[x]]; g != uf.parent[x] {
			uf.parent[x] = g
		}
		x = uf.parent[x]
	}
	return x
}

// Compress points every element directly at its root, so subsequent
// Find/Same/Groups calls are write-free until the next Union. The
// cleaning pipeline compresses its entity forest before fanning
// hypothetical-visualization pricing out across workers.
func (uf *UnionFind) Compress() {
	for i := range uf.parent {
		root := i
		for uf.parent[root] != root {
			root = uf.parent[root]
		}
		for x := i; uf.parent[x] != root; {
			next := uf.parent[x]
			uf.parent[x] = root
			x = next
		}
	}
}

// Union merges the sets of a and b, returning the new representative.
func (uf *UnionFind) Union(a, b int) int {
	ra, rb := uf.Find(a), uf.Find(b)
	if ra == rb {
		return ra
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	uf.size[ra] += uf.size[rb]
	return ra
}

// Same reports whether a and b share a set.
func (uf *UnionFind) Same(a, b int) bool { return uf.Find(a) == uf.Find(b) }

// SetSize returns the size of x's set.
func (uf *UnionFind) SetSize(x int) int { return uf.size[uf.Find(x)] }

// Groups returns the sets with at least minSize members, each sorted, the
// whole list sorted by first member — fully deterministic.
func (uf *UnionFind) Groups(minSize int) [][]int {
	byRoot := make(map[int][]int)
	for i := range uf.parent {
		r := uf.Find(i)
		byRoot[r] = append(byRoot[r], i)
	}
	var out [][]int
	for _, members := range byRoot {
		if len(members) >= minSize {
			out = append(out, members) // members are appended in index order
		}
	}
	// First members are distinct across sets, so this order is total.
	sort.Slice(out, func(a, b int) bool { return out[a][0] < out[b][0] })
	return out
}
