package em

import (
	"reflect"
	"testing"

	"visclean/internal/dataset"
)

// TestCandidateIndexMatchesScans verifies the inverted index against the
// linear scans it replaces: for every (column, value pair) it returns
// the first candidate in list order exhibiting those values, and for
// every tuple the candidates touching it, in list order.
func TestCandidateIndexMatchesScans(t *testing.T) {
	tbl := pubsTable(t)
	cands := Candidates(tbl, BlockingConfig{KeyColumns: []int{0}})
	if len(cands) == 0 {
		t.Fatal("no blocking candidates")
	}
	cols := []int{1} // Venue
	ix := NewCandidateIndex(tbl, cands, cols)

	// Incident lists: compare against a direct scan per endpoint.
	seenIDs := map[dataset.TupleID]bool{}
	for _, p := range cands {
		seenIDs[p.A] = true
		seenIDs[p.B] = true
	}
	for id := range seenIDs {
		var want []Pair
		for _, p := range cands {
			if p.A == id || p.B == id {
				want = append(want, p)
			}
		}
		got := ix.Incident(id)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Incident(%d) = %v, want %v", id, got, want)
		}
	}
	if got := ix.Incident(9999); got != nil {
		t.Errorf("Incident on untouched tuple = %v", got)
	}

	// Value-pair lookups: every differing value pair along a candidate
	// resolves to the first such candidate; same-value and unknown pairs
	// miss.
	for _, p := range cands {
		for _, c := range cols {
			va, _ := tbl.GetByID(p.A, c)
			vb, _ := tbl.GetByID(p.B, c)
			ta, okA := va.Text()
			tb, okB := vb.Text()
			if !okA || !okB || ta == tb {
				continue
			}
			got, ok := ix.PairForValues(c, ta, tb)
			if !ok {
				t.Fatalf("PairForValues(%d, %q, %q) missed", c, ta, tb)
			}
			// First in list order.
			var want Pair
			for _, q := range cands {
				wa, _ := tbl.GetByID(q.A, c)
				wb, _ := tbl.GetByID(q.B, c)
				sa, _ := wa.Text()
				sb, _ := wb.Text()
				if (sa == ta && sb == tb) || (sa == tb && sb == ta) {
					want = q
					break
				}
			}
			if got != want {
				t.Errorf("PairForValues(%d, %q, %q) = %v, want %v", c, ta, tb, got, want)
			}
			// Order-insensitive.
			if rev, ok := ix.PairForValues(c, tb, ta); !ok || rev != got {
				t.Errorf("PairForValues not symmetric for (%q, %q)", ta, tb)
			}
		}
	}
	if _, ok := ix.PairForValues(1, "SIGMOD", "SIGMOD"); ok {
		t.Error("identical values resolved to a pair")
	}
	if _, ok := ix.PairForValues(1, "no-such", "values"); ok {
		t.Error("unknown values resolved to a pair")
	}
}
