// Package em implements the entity-matching subsystem of §IV (Q_T):
// per-attribute similarity features over tuple pairs, token blocking to
// keep candidate generation sub-quadratic, a random-forest match
// probability model, active-learning question generation (uncertain pairs
// near probability 0.5), and constraint-aware clustering of matches.
package em

import (
	"math"
	"sort"

	"visclean/internal/dataset"
	"visclean/internal/stringsim"
)

// FeatureExtractor turns a tuple pair into a fixed-width feature vector.
// String columns contribute token Jaccard, Jaro-Winkler and an exact-match
// flag; numeric columns contribute a dispersion-scaled similarity
// exp(−|a−b| / MAD) plus an agreement flag, where MAD is the column's
// median absolute deviation. MAD is the right scale: a range-normalized
// difference is useless on heavy-tailed columns (outliers stretch the
// range until every pair looks similar) and a relative difference is
// useless on offset-dominated columns like years (every pair looks
// identical). Null cells yield neutral 0.5 features so missing values
// neither force nor forbid a match.
type FeatureExtractor struct {
	schema dataset.Schema
	scale  []float64 // per column: MAD for Float columns (>= 1), else 0
}

// NewFeatureExtractor scans the table once to learn per-column scales.
func NewFeatureExtractor(t *dataset.Table) *FeatureExtractor {
	fe := &FeatureExtractor{schema: t.Schema()}
	fe.scale = make([]float64, t.NumCols())
	for c := 0; c < t.NumCols(); c++ {
		if fe.schema[c].Kind != dataset.Float {
			continue
		}
		fe.scale[c] = madOf(t, c)
	}
	return fe
}

// madOf computes the median absolute deviation of a Float column,
// clamped to at least 1 so degenerate columns don't divide by zero.
func madOf(t *dataset.Table, c int) float64 {
	vals, _ := t.NumericColumn(c)
	if len(vals) == 0 {
		return 1
	}
	med := medianFloat(vals)
	devs := make([]float64, len(vals))
	for i, v := range vals {
		d := v - med
		if d < 0 {
			d = -d
		}
		devs[i] = d
	}
	mad := medianFloat(devs)
	if mad < 1 {
		mad = 1
	}
	return mad
}

func medianFloat(vals []float64) float64 {
	cp := append([]float64(nil), vals...)
	sort.Float64s(cp)
	mid := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[mid]
	}
	return (cp[mid-1] + cp[mid]) / 2
}

// Width reports the feature vector length.
func (fe *FeatureExtractor) Width() int {
	w := 0
	for _, c := range fe.schema {
		if c.Kind == dataset.String {
			w += 3
		} else {
			w += 2
		}
	}
	return w
}

// Features computes the feature vector for tuple rows a and b of t, which
// must have the extractor's schema.
func (fe *FeatureExtractor) Features(t *dataset.Table, a, b dataset.TupleID) []float64 {
	ia, okA := t.RowIndex(a)
	ib, okB := t.RowIndex(b)
	out := make([]float64, 0, fe.Width())
	if !okA || !okB {
		// A vanished tuple (merged away) matches nothing; emit the most
		// dissimilar vector rather than panicking so stale questions
		// degrade gracefully.
		for range fe.schema {
			out = append(out, 0, 0)
		}
		return out[:fe.Width()]
	}
	for c, col := range fe.schema {
		va, vb := t.Get(ia, c), t.Get(ib, c)
		if col.Kind == dataset.String {
			sa, okSA := va.Text()
			sb, okSB := vb.Text()
			if !okSA || !okSB {
				out = append(out, 0.5, 0.5, 0.5)
				continue
			}
			exact := 0.0
			if sa == sb {
				exact = 1.0
			}
			out = append(out, stringsim.Jaccard(sa, sb), stringsim.JaroWinkler(sa, sb), exact)
		} else {
			fa, okFA := va.Float()
			fb, okFB := vb.Float()
			if !okFA || !okFB {
				out = append(out, 0.5, 0.5)
				continue
			}
			diff := fa - fb
			if diff < 0 {
				diff = -diff
			}
			sim := math.Exp(-diff / fe.scale[c])
			agree := 0.0
			if fa == fb {
				agree = 1.0
			}
			out = append(out, sim, agree)
		}
	}
	return out
}
