package em

import (
	"sort"

	"visclean/internal/dataset"
)

// Clusters is a partition of tuple ids into entities, the output of
// matching. User-confirmed pairs are must-links, user-split pairs are
// cannot-links; remaining candidates merge when the model's probability
// clears the threshold, in descending-probability order, skipping any
// merge that would violate a cannot-link.
type Clusters struct {
	uf    *UnionFind
	index map[dataset.TupleID]int
	ids   []dataset.TupleID
}

// ClusterConfig parameterizes clustering.
type ClusterConfig struct {
	// Threshold is the auto-merge probability (0.5 in the paper's EM
	// usage: pairs the model believes match).
	Threshold float64
	// Confirmed and Split are the user's answers: must-link / cannot-link.
	Confirmed []Pair
	Split     []Pair
}

// SortMergeCandidates scores the candidate pairs, keeps those at or
// above the threshold and sorts them by descending probability with
// deterministic tiebreaks. The result can be reused across many
// BuildClustersSorted calls (the benefit model rebuilds clusters for
// every T-hypothesis; scoring and sorting dominate if repeated).
func SortMergeCandidates(candidates []Pair, prob func(Pair) float64, threshold float64) []ScoredPair {
	scored := make([]ScoredPair, 0, len(candidates))
	for _, p := range candidates {
		if pr := prob(p); pr >= threshold {
			scored = append(scored, ScoredPair{Pair: p, Prob: pr})
		}
	}
	sort.Slice(scored, func(i, j int) bool {
		if scored[i].Prob != scored[j].Prob {
			return scored[i].Prob > scored[j].Prob
		}
		if scored[i].Pair.A != scored[j].Pair.A {
			return scored[i].Pair.A < scored[j].Pair.A
		}
		return scored[i].Pair.B < scored[j].Pair.B
	})
	return scored
}

// BuildClusters partitions the tuples of t.
func BuildClusters(t *dataset.Table, candidates []Pair, prob func(Pair) float64, cfg ClusterConfig) *Clusters {
	return BuildClustersSorted(t, SortMergeCandidates(candidates, prob, cfg.Threshold), cfg)
}

// BuildClustersSorted is BuildClusters over a pre-scored, pre-sorted
// merge list (see SortMergeCandidates).
func BuildClustersSorted(t *dataset.Table, sorted []ScoredPair, cfg ClusterConfig) *Clusters {
	c := &Clusters{
		index: make(map[dataset.TupleID]int, t.NumRows()),
		ids:   make([]dataset.TupleID, t.NumRows()),
	}
	for i := 0; i < t.NumRows(); i++ {
		id := t.ID(i)
		c.index[id] = i
		c.ids[i] = id
	}
	clusterInto(c, sorted, cfg.Confirmed, cfg.Split)
	return c
}

// clusterInto runs the constrained merge process over a Clusters whose
// index/ids are already populated: cannot-links first, then must-links,
// then model merges in descending probability. Shared by the one-shot
// builders and ClusterBuilder so the two paths cannot diverge.
func clusterInto(c *Clusters, sorted []ScoredPair, confirmed, split []Pair) {
	c.uf = NewUnionFind(len(c.ids))

	// cannotRoots[root] is the set of roots this set must never join.
	cannot := make(map[int]map[int]struct{})
	addCannot := func(ra, rb int) {
		if cannot[ra] == nil {
			cannot[ra] = map[int]struct{}{}
		}
		if cannot[rb] == nil {
			cannot[rb] = map[int]struct{}{}
		}
		cannot[ra][rb] = struct{}{}
		cannot[rb][ra] = struct{}{}
	}
	blocked := func(ra, rb int) bool {
		_, bad := cannot[ra][rb]
		return bad
	}
	merge := func(a, b dataset.TupleID) bool {
		ia, okA := c.index[a]
		ib, okB := c.index[b]
		if !okA || !okB {
			return false
		}
		ra, rb := c.uf.Find(ia), c.uf.Find(ib)
		if ra == rb {
			return true
		}
		if blocked(ra, rb) {
			return false
		}
		r := c.uf.Union(ra, rb)
		// The merged set inherits both cannot-link sets.
		merged := map[int]struct{}{}
		for o := range cannot[ra] {
			merged[o] = struct{}{}
		}
		for o := range cannot[rb] {
			merged[o] = struct{}{}
		}
		delete(merged, ra)
		delete(merged, rb)
		if len(merged) > 0 {
			cannot[r] = merged
			for o := range merged {
				if cannot[o] == nil {
					cannot[o] = map[int]struct{}{}
				}
				delete(cannot[o], ra)
				delete(cannot[o], rb)
				cannot[o][r] = struct{}{}
			}
		}
		return true
	}

	// 1. Cannot-links first so they constrain everything after.
	for _, p := range split {
		ia, okA := c.index[p.A]
		ib, okB := c.index[p.B]
		if !okA || !okB {
			continue
		}
		addCannot(c.uf.Find(ia), c.uf.Find(ib))
	}
	// 2. Must-links. A must-link conflicting with a cannot-link is
	// dropped (the user contradicted themselves; cannot-link wins as the
	// safer interpretation — not merging never corrupts data).
	for _, p := range confirmed {
		merge(p.A, p.B)
	}
	// 3. Model merges in descending probability so stronger evidence
	// shapes clusters first.
	for _, sp := range sorted {
		merge(sp.Pair.A, sp.Pair.B)
	}
}

// Freeze settles the underlying union-find (full path compression) so
// subsequent Same/Groups/ClusterOf calls perform no writes — safe for
// concurrent readers until the next merge.
func (c *Clusters) Freeze() { c.uf.Compress() }

// Same reports whether two tuples are currently the same entity.
func (c *Clusters) Same(a, b dataset.TupleID) bool {
	ia, okA := c.index[a]
	ib, okB := c.index[b]
	return okA && okB && c.uf.Same(ia, ib)
}

// Groups returns the entity clusters with at least minSize tuples, each
// sorted by tuple id, deterministically ordered.
func (c *Clusters) Groups(minSize int) [][]dataset.TupleID {
	raw := c.uf.Groups(minSize)
	out := make([][]dataset.TupleID, len(raw))
	for i, g := range raw {
		ids := make([]dataset.TupleID, len(g))
		for j, idx := range g {
			ids[j] = c.ids[idx]
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		out[i] = ids
	}
	sort.Slice(out, func(a, b int) bool { return out[a][0] < out[b][0] })
	return out
}

// Root returns an opaque identifier of id's current cluster: two tuples
// are the same entity iff their roots are equal. It may path-halve the
// forest, so it is not safe for concurrent use unless the receiver is
// frozen; the delta pricer only calls it on private, per-hypothesis
// partitions.
func (c *Clusters) Root(id dataset.TupleID) (int, bool) {
	i, ok := c.index[id]
	if !ok {
		return 0, false
	}
	return c.uf.Find(i), true
}

// GroupIntact reports whether members (non-empty) is exactly one cluster
// of c — the partition-diff primitive of incremental hypothesis pricing:
// a base cluster that is intact under a hypothetical partition keeps its
// consolidated view row unchanged.
func (c *Clusters) GroupIntact(members []dataset.TupleID) bool {
	i0, ok := c.index[members[0]]
	if !ok {
		return false
	}
	if c.uf.SetSize(i0) != len(members) {
		return false
	}
	root := c.uf.Find(i0)
	for _, id := range members[1:] {
		i, ok := c.index[id]
		if !ok || c.uf.Find(i) != root {
			return false
		}
	}
	return true
}

// ClusterBuilder amortizes the per-table setup of clustering (the tuple
// index) across many Build calls. The benefit model rebuilds the entity
// partition for every T-hypothesis; with the builder each rebuild costs
// one union-find pass over the shared merge list instead of also paying
// an O(n) map construction per hypothesis. A builder is safe for
// concurrent Build calls: it only reads its captured state, and every
// Build returns a private Clusters (sharing the immutable index/ids).
type ClusterBuilder struct {
	index     map[dataset.TupleID]int
	ids       []dataset.TupleID
	sorted    []ScoredPair
	confirmed []Pair
	split     []Pair
}

// NewClusterBuilder captures the table's tuple index plus the shared
// merge list and accumulated user constraints. The captured slices are
// referenced, not copied — callers must not mutate them while the
// builder is in use.
func NewClusterBuilder(t *dataset.Table, sorted []ScoredPair, cfg ClusterConfig) *ClusterBuilder {
	b := &ClusterBuilder{
		index:     make(map[dataset.TupleID]int, t.NumRows()),
		ids:       make([]dataset.TupleID, t.NumRows()),
		sorted:    sorted,
		confirmed: cfg.Confirmed,
		split:     cfg.Split,
	}
	for i := 0; i < t.NumRows(); i++ {
		id := t.ID(i)
		b.index[id] = i
		b.ids[i] = id
	}
	return b
}

// Build partitions the tuples under the captured constraints plus the
// extra hypothetical ones, exactly as BuildClustersSorted would with the
// extras appended — the merge process is shared code, so the resulting
// partition is bit-identical.
func (b *ClusterBuilder) Build(extraConfirm, extraSplit []Pair) *Clusters {
	conf := b.confirmed
	spl := b.split
	if len(extraConfirm) > 0 {
		conf = append(append([]Pair(nil), conf...), extraConfirm...)
	}
	if len(extraSplit) > 0 {
		spl = append(append([]Pair(nil), spl...), extraSplit...)
	}
	c := &Clusters{index: b.index, ids: b.ids}
	clusterInto(c, b.sorted, conf, spl)
	return c
}

// ClusterOf returns all members of the tuple's entity, sorted.
func (c *Clusters) ClusterOf(id dataset.TupleID) []dataset.TupleID {
	i, ok := c.index[id]
	if !ok {
		return nil
	}
	root := c.uf.Find(i)
	var out []dataset.TupleID
	for j := range c.ids {
		if c.uf.Find(j) == root {
			out = append(out, c.ids[j])
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
