package em

import (
	"sort"

	"visclean/internal/dataset"
	"visclean/internal/stringsim"
)

// Pair is an unordered candidate tuple pair with A < B.
type Pair struct {
	A, B dataset.TupleID
}

// MakePair canonicalizes an unordered pair.
func MakePair(a, b dataset.TupleID) Pair {
	if a > b {
		a, b = b, a
	}
	return Pair{A: a, B: b}
}

// BlockingConfig controls candidate generation.
type BlockingConfig struct {
	// KeyColumns are the column indices whose tokens form blocking keys.
	// Tuples sharing any token in any key column become candidates.
	KeyColumns []int
	// MaxBlockSize skips tokens shared by more tuples than this (stop
	// words like "the" or "conference" would otherwise create quadratic
	// blocks). 0 means DefaultMaxBlockSize.
	MaxBlockSize int
}

// DefaultMaxBlockSize bounds the per-token block size.
const DefaultMaxBlockSize = 120

// Candidates generates the candidate duplicate pairs of a table via token
// blocking over the configured key columns. The result is deterministic:
// sorted by (A, B).
func Candidates(t *dataset.Table, cfg BlockingConfig) []Pair {
	maxBlock := cfg.MaxBlockSize
	if maxBlock <= 0 {
		maxBlock = DefaultMaxBlockSize
	}
	keyCols := cfg.KeyColumns
	if len(keyCols) == 0 {
		// Default: first string column.
		for c, col := range t.Schema() {
			if col.Kind == dataset.String {
				keyCols = []int{c}
				break
			}
		}
	}

	blocks := make(map[string][]dataset.TupleID)
	for i := 0; i < t.NumRows(); i++ {
		id := t.ID(i)
		for _, c := range keyCols {
			s, ok := t.Get(i, c).Text()
			if !ok {
				continue
			}
			for _, tok := range stringsim.Tokenize(s) {
				blocks[tok] = append(blocks[tok], id)
			}
		}
	}

	seen := make(map[Pair]struct{})
	for _, ids := range blocks {
		if len(ids) > maxBlock || len(ids) < 2 {
			continue
		}
		// Tuples may appear several times in a block (same token in two
		// key columns); dedupe first.
		uniq := dedupeIDs(ids)
		for i := 0; i < len(uniq); i++ {
			for j := i + 1; j < len(uniq); j++ {
				seen[MakePair(uniq[i], uniq[j])] = struct{}{}
			}
		}
	}
	out := make([]Pair, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

func dedupeIDs(ids []dataset.TupleID) []dataset.TupleID {
	set := make(map[dataset.TupleID]struct{}, len(ids))
	out := ids[:0:0]
	for _, id := range ids {
		if _, dup := set[id]; dup {
			continue
		}
		set[id] = struct{}{}
		out = append(out, id)
	}
	return out
}
