package em

import (
	"sort"

	"visclean/internal/dataset"
	"visclean/internal/rf"
)

// Matcher is the entity-matching model: a random forest over pair
// features, retrained as user labels accumulate (framework step 6 feeds
// back into step 2). Before any training it falls back to a similarity
// heuristic so active learning can bootstrap.
type Matcher struct {
	fe     *FeatureExtractor
	cfg    rf.Config
	labels map[Pair]bool
	forest *rf.Forest
}

// NewMatcher builds a matcher for the table's schema.
func NewMatcher(t *dataset.Table, cfg rf.Config) *Matcher {
	return &Matcher{
		fe:     NewFeatureExtractor(t),
		cfg:    cfg,
		labels: make(map[Pair]bool),
	}
}

// AddLabel records a user (or seed) label for a pair. Relabeling
// overwrites, which is how corrected answers propagate.
func (m *Matcher) AddLabel(p Pair, match bool) { m.labels[p] = match }

// Forest returns the trained forest, nil before the first successful
// Train. Forests are immutable after training, so the returned pointer
// may be shared (the artifact cache does).
func (m *Matcher) Forest() *rf.Forest { return m.forest }

// SetForest installs a pre-trained forest, warm-starting the matcher
// from the artifact cache. Callers must only install a forest equal to
// what Train would produce on the matcher's current labels — rf.Train
// is deterministic, so a forest trained on the same table content,
// labels and config qualifies; the determinism suite enforces it.
func (m *Matcher) SetForest(f *rf.Forest) { m.forest = f }

// Label reports a recorded label and whether one exists.
func (m *Matcher) Label(p Pair) (match, ok bool) {
	match, ok = m.labels[p]
	return match, ok
}

// NumLabels reports how many labeled pairs the model holds.
func (m *Matcher) NumLabels() int { return len(m.labels) }

// LabeledPairs returns the labeled pairs in deterministic order.
func (m *Matcher) LabeledPairs() []Pair {
	out := make([]Pair, 0, len(m.labels))
	for p := range m.labels {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Train fits the forest on the current labels against the given table.
// With fewer than two labels or a single class it leaves the heuristic in
// place (training a forest on one class would pin every probability to 0
// or 1 and destroy active learning).
func (m *Matcher) Train(t *dataset.Table) error {
	pairs := m.LabeledPairs()
	var x [][]float64
	var y []int
	pos, neg := 0, 0
	for _, p := range pairs {
		x = append(x, m.fe.Features(t, p.A, p.B))
		if m.labels[p] {
			y = append(y, 1)
			pos++
		} else {
			y = append(y, 0)
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		m.forest = nil
		return nil
	}
	f, err := rf.Train(x, y, m.cfg)
	if err != nil {
		return err
	}
	m.forest = f
	return nil
}

// Trained reports whether a forest is active (vs. the bootstrap heuristic).
func (m *Matcher) Trained() bool { return m.forest != nil }

// Prob returns the matching probability of a pair. Labeled pairs return
// their label (1 or 0) — the user's answer is ground truth from the
// system's perspective. Otherwise the forest predicts; before training, a
// similarity heuristic (mean of the string-similarity features) stands in.
func (m *Matcher) Prob(t *dataset.Table, p Pair) float64 {
	return m.ProbWithFeatures(p, m.fe.Features(t, p.A, p.B))
}

// Features exposes the pair feature vector so callers maintaining a
// feature cache (feature extraction dominates probability refresh on
// large candidate sets) can reuse vectors across retrains.
func (m *Matcher) Features(t *dataset.Table, p Pair) []float64 {
	return m.fe.Features(t, p.A, p.B)
}

// ProbWithFeatures is Prob for a precomputed feature vector.
func (m *Matcher) ProbWithFeatures(p Pair, feats []float64) float64 {
	if match, ok := m.labels[p]; ok {
		if match {
			return 1
		}
		return 0
	}
	if m.forest != nil {
		// Blend the forest with the similarity heuristic. Early in a
		// session the forest is trained on a few dozen labels and its
		// predictions on marginal pairs flip with every retrain; the
		// heuristic is crude but perfectly stable, and the blend keeps
		// the auto-merged entity set from thrashing between iterations.
		return 0.7*m.forest.PredictProba(feats) + 0.3*m.heuristic(feats)
	}
	return m.heuristic(feats)
}

// heuristic averages the per-attribute similarity features (the first
// feature of each attribute block), a crude but monotone match signal.
func (m *Matcher) heuristic(feats []float64) float64 {
	sum, n := 0.0, 0
	i := 0
	for _, col := range m.fe.schema {
		sum += feats[i]
		n++
		if col.Kind == dataset.String {
			i += 3
		} else {
			i += 2
		}
	}
	if n == 0 {
		return 0.5
	}
	return sum / float64(n)
}

// ScoredPair is a candidate pair with its current match probability.
type ScoredPair struct {
	Pair Pair
	Prob float64
}

// UncertainPairs implements the active-learning question generator of
// §IV: it scores every unlabeled candidate and returns the n pairs whose
// probability is closest to 0.5 (most informative to label), sorted by
// ascending |prob−0.5| with (A,B) tiebreaks.
func (m *Matcher) UncertainPairs(t *dataset.Table, candidates []Pair, n int) []ScoredPair {
	scored := make([]ScoredPair, 0, len(candidates))
	for _, p := range candidates {
		if _, ok := m.labels[p]; ok {
			continue
		}
		scored = append(scored, ScoredPair{Pair: p, Prob: m.Prob(t, p)})
	}
	sort.Slice(scored, func(i, j int) bool {
		di := abs(scored[i].Prob - 0.5)
		dj := abs(scored[j].Prob - 0.5)
		if di != dj {
			return di < dj
		}
		if scored[i].Pair.A != scored[j].Pair.A {
			return scored[i].Pair.A < scored[j].Pair.A
		}
		return scored[i].Pair.B < scored[j].Pair.B
	})
	if n > 0 && len(scored) > n {
		scored = scored[:n]
	}
	return scored
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}
