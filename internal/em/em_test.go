package em

import (
	"math/rand"
	"testing"
	"testing/quick"

	"visclean/internal/dataset"
	"visclean/internal/rf"
)

func pubsTable(t testing.TB) *dataset.Table {
	tbl := dataset.NewTable(dataset.Schema{
		{Name: "Title", Kind: dataset.String},
		{Name: "Venue", Kind: dataset.String},
		{Name: "Citations", Kind: dataset.Float},
	})
	rows := [][]dataset.Value{
		{dataset.Str("NADEEF"), dataset.Str("ACM SIGMOD"), dataset.Num(174)},
		{dataset.Str("NADEEF"), dataset.Str("SIGMOD Conf."), dataset.Num(1740)},
		{dataset.Str("NADEEF"), dataset.Str("SIGMOD"), dataset.Num(174)},
		{dataset.Str("KuaFu"), dataset.Str("ICDE 2013"), dataset.Num(15)},
		{dataset.Str("SeeDB"), dataset.Str("VLDB"), dataset.Null(dataset.Float)},
		{dataset.Str("SeeDB"), dataset.Str("Very Large Data Bases"), dataset.Num(55)},
		{dataset.Str("Elaps"), dataset.Str("ICDE"), dataset.Num(42)},
		{dataset.Str("Elaps"), dataset.Str("IEEE ICDE Conf. 2015"), dataset.Num(44)},
	}
	for _, r := range rows {
		tbl.MustAppend(r)
	}
	return tbl
}

func TestFeaturesShapeAndRange(t *testing.T) {
	tbl := pubsTable(t)
	fe := NewFeatureExtractor(tbl)
	want := 3 + 3 + 2 // two string cols, one float col
	if fe.Width() != want {
		t.Fatalf("width = %d, want %d", fe.Width(), want)
	}
	f := fe.Features(tbl, tbl.ID(0), tbl.ID(1))
	if len(f) != want {
		t.Fatalf("feature len = %d", len(f))
	}
	for i, v := range f {
		if v < 0 || v > 1 {
			t.Fatalf("feature %d = %v out of [0,1]", i, v)
		}
	}
	// Same title -> exact-match flag 1 for Title block (index 2).
	if f[2] != 1 {
		t.Fatalf("title exact flag = %v", f[2])
	}
}

func TestFeaturesIdenticalTuples(t *testing.T) {
	tbl := pubsTable(t)
	fe := NewFeatureExtractor(tbl)
	f := fe.Features(tbl, tbl.ID(0), tbl.ID(0))
	for i, v := range f {
		if v != 1 {
			t.Fatalf("self features[%d] = %v, want 1", i, v)
		}
	}
}

func TestFeaturesNullsNeutral(t *testing.T) {
	tbl := pubsTable(t)
	fe := NewFeatureExtractor(tbl)
	// Tuple 4 has null Citations; numeric block (last two features) must
	// be neutral 0.5.
	f := fe.Features(tbl, tbl.ID(4), tbl.ID(5))
	if f[6] != 0.5 || f[7] != 0.5 {
		t.Fatalf("null numeric features = %v %v, want 0.5 0.5", f[6], f[7])
	}
}

func TestFeaturesVanishedTuple(t *testing.T) {
	tbl := pubsTable(t)
	fe := NewFeatureExtractor(tbl)
	f := fe.Features(tbl, tbl.ID(0), dataset.TupleID(999))
	if len(f) != fe.Width() {
		t.Fatalf("vanished-tuple feature len = %d", len(f))
	}
	for _, v := range f {
		if v != 0 {
			t.Fatalf("vanished tuple should be maximally dissimilar, got %v", f)
		}
	}
}

func TestCandidatesBlocking(t *testing.T) {
	tbl := pubsTable(t)
	pairs := Candidates(tbl, BlockingConfig{KeyColumns: []int{0}})
	// Titles: NADEEF x3 -> 3 pairs, SeeDB x2 -> 1, Elaps x2 -> 1.
	if len(pairs) != 5 {
		t.Fatalf("candidates = %v", pairs)
	}
	for _, p := range pairs {
		if p.A >= p.B {
			t.Fatalf("non-canonical pair %v", p)
		}
	}
	// Deterministic ordering.
	again := Candidates(tbl, BlockingConfig{KeyColumns: []int{0}})
	for i := range pairs {
		if pairs[i] != again[i] {
			t.Fatal("candidate order not deterministic")
		}
	}
}

func TestCandidatesDefaultKeyColumn(t *testing.T) {
	tbl := pubsTable(t)
	pairs := Candidates(tbl, BlockingConfig{})
	if len(pairs) != 5 {
		t.Fatalf("default key column candidates = %d", len(pairs))
	}
}

func TestCandidatesMaxBlockSkipsStopTokens(t *testing.T) {
	tbl := dataset.NewTable(dataset.Schema{{Name: "T", Kind: dataset.String}})
	for i := 0; i < 10; i++ {
		tbl.MustAppend([]dataset.Value{dataset.Str("common")})
	}
	pairs := Candidates(tbl, BlockingConfig{KeyColumns: []int{0}, MaxBlockSize: 5})
	if len(pairs) != 0 {
		t.Fatalf("oversized block should be skipped, got %d pairs", len(pairs))
	}
}

func TestMatcherHeuristicAndLabels(t *testing.T) {
	tbl := pubsTable(t)
	m := NewMatcher(tbl, rf.DefaultConfig())
	p01 := MakePair(tbl.ID(0), tbl.ID(1))
	p03 := MakePair(tbl.ID(0), tbl.ID(3))
	if m.Trained() {
		t.Fatal("untrained matcher reports trained")
	}
	if m.Prob(tbl, p01) <= m.Prob(tbl, p03) {
		t.Fatal("heuristic should rank same-title pair above different-title pair")
	}
	m.AddLabel(p01, true)
	if got := m.Prob(tbl, p01); got != 1 {
		t.Fatalf("labeled pair prob = %v, want 1", got)
	}
	m.AddLabel(p01, false)
	if got := m.Prob(tbl, p01); got != 0 {
		t.Fatalf("relabeled pair prob = %v, want 0", got)
	}
}

func TestMatcherTrainAndPredict(t *testing.T) {
	tbl := pubsTable(t)
	m := NewMatcher(tbl, rf.DefaultConfig())
	// Seed: duplicates share titles in this fixture.
	m.AddLabel(MakePair(tbl.ID(0), tbl.ID(1)), true)
	m.AddLabel(MakePair(tbl.ID(0), tbl.ID(2)), true)
	m.AddLabel(MakePair(tbl.ID(0), tbl.ID(3)), false)
	m.AddLabel(MakePair(tbl.ID(3), tbl.ID(6)), false)
	if err := m.Train(tbl); err != nil {
		t.Fatal(err)
	}
	if !m.Trained() {
		t.Fatal("expected trained forest")
	}
	match := m.Prob(tbl, MakePair(tbl.ID(1), tbl.ID(2)))    // NADEEF pair
	nonmatch := m.Prob(tbl, MakePair(tbl.ID(4), tbl.ID(6))) // SeeDB vs Elaps
	if match <= nonmatch {
		t.Fatalf("trained model: match prob %v <= nonmatch prob %v", match, nonmatch)
	}
}

func TestMatcherSingleClassKeepsHeuristic(t *testing.T) {
	tbl := pubsTable(t)
	m := NewMatcher(tbl, rf.DefaultConfig())
	m.AddLabel(MakePair(tbl.ID(0), tbl.ID(1)), true)
	if err := m.Train(tbl); err != nil {
		t.Fatal(err)
	}
	if m.Trained() {
		t.Fatal("single-class training should not produce a forest")
	}
}

func TestUncertainPairs(t *testing.T) {
	tbl := pubsTable(t)
	m := NewMatcher(tbl, rf.DefaultConfig())
	cands := Candidates(tbl, BlockingConfig{KeyColumns: []int{0}})
	top := m.UncertainPairs(tbl, cands, 3)
	if len(top) != 3 {
		t.Fatalf("got %d uncertain pairs", len(top))
	}
	for i := 1; i < len(top); i++ {
		if abs(top[i-1].Prob-0.5) > abs(top[i].Prob-0.5) {
			t.Fatal("uncertain pairs not sorted by uncertainty")
		}
	}
	// Labeled pairs are excluded.
	m.AddLabel(top[0].Pair, true)
	top2 := m.UncertainPairs(tbl, cands, 10)
	for _, sp := range top2 {
		if sp.Pair == top[0].Pair {
			t.Fatal("labeled pair still proposed")
		}
	}
}

func TestBuildClusters(t *testing.T) {
	tbl := pubsTable(t)
	probs := map[Pair]float64{
		MakePair(tbl.ID(0), tbl.ID(1)): 0.9,
		MakePair(tbl.ID(1), tbl.ID(2)): 0.8,
		MakePair(tbl.ID(4), tbl.ID(5)): 0.6,
		MakePair(tbl.ID(6), tbl.ID(7)): 0.3,
	}
	cands := make([]Pair, 0, len(probs))
	for p := range probs {
		cands = append(cands, p)
	}
	c := BuildClusters(tbl, cands, func(p Pair) float64 { return probs[p] }, ClusterConfig{Threshold: 0.5})
	if !c.Same(tbl.ID(0), tbl.ID(2)) {
		t.Fatal("transitive merge missing")
	}
	if !c.Same(tbl.ID(4), tbl.ID(5)) {
		t.Fatal("0.6 pair should merge")
	}
	if c.Same(tbl.ID(6), tbl.ID(7)) {
		t.Fatal("0.3 pair should not merge")
	}
	groups := c.Groups(2)
	if len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
}

func TestBuildClustersConstraints(t *testing.T) {
	tbl := pubsTable(t)
	p01 := MakePair(tbl.ID(0), tbl.ID(1))
	p12 := MakePair(tbl.ID(1), tbl.ID(2))
	cands := []Pair{p01, p12}
	high := func(Pair) float64 { return 0.99 }

	// Split(0,2) must prevent the transitive merge of all three.
	c := BuildClusters(tbl, cands, high, ClusterConfig{
		Threshold: 0.5,
		Split:     []Pair{MakePair(tbl.ID(0), tbl.ID(2))},
	})
	if c.Same(tbl.ID(0), tbl.ID(2)) {
		t.Fatal("cannot-link violated")
	}
	// One of the two merges succeeded, the other was blocked.
	merged := 0
	if c.Same(tbl.ID(0), tbl.ID(1)) {
		merged++
	}
	if c.Same(tbl.ID(1), tbl.ID(2)) {
		merged++
	}
	if merged != 1 {
		t.Fatalf("merged = %d, want exactly 1", merged)
	}

	// Confirmed edges merge even below threshold.
	c2 := BuildClusters(tbl, nil, func(Pair) float64 { return 0 }, ClusterConfig{
		Threshold: 0.5,
		Confirmed: []Pair{p01},
	})
	if !c2.Same(tbl.ID(0), tbl.ID(1)) {
		t.Fatal("confirmed pair not merged")
	}
}

func TestClusterOf(t *testing.T) {
	tbl := pubsTable(t)
	c := BuildClusters(tbl, nil, func(Pair) float64 { return 0 }, ClusterConfig{
		Threshold: 0.5,
		Confirmed: []Pair{MakePair(tbl.ID(0), tbl.ID(1)), MakePair(tbl.ID(1), tbl.ID(2))},
	})
	got := c.ClusterOf(tbl.ID(2))
	if len(got) != 3 {
		t.Fatalf("cluster = %v", got)
	}
	if c.ClusterOf(dataset.TupleID(12345)) != nil {
		t.Fatal("unknown tuple should have nil cluster")
	}
}

func TestUnionFindProperties(t *testing.T) {
	f := func(ops []uint16, n uint8) bool {
		size := int(n%50) + 2
		uf := NewUnionFind(size)
		naive := make([]int, size)
		for i := range naive {
			naive[i] = i
		}
		naiveFind := func(x int) int { return naive[x] }
		naiveUnion := func(a, b int) {
			ra, rb := naive[a], naive[b]
			if ra == rb {
				return
			}
			for i := range naive {
				if naive[i] == rb {
					naive[i] = ra
				}
			}
		}
		for _, op := range ops {
			a := int(op) % size
			b := int(op>>8) % size
			uf.Union(a, b)
			naiveUnion(a, b)
		}
		for i := 0; i < size; i++ {
			for j := 0; j < size; j++ {
				if uf.Same(i, j) != (naiveFind(i) == naiveFind(j)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUnionFindGroupsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	uf := NewUnionFind(30)
	for i := 0; i < 25; i++ {
		uf.Union(rng.Intn(30), rng.Intn(30))
	}
	g1 := uf.Groups(2)
	g2 := uf.Groups(2)
	if len(g1) != len(g2) {
		t.Fatal("groups nondeterministic")
	}
	for i := range g1 {
		if len(g1[i]) != len(g2[i]) {
			t.Fatal("group sizes differ")
		}
		for j := range g1[i] {
			if g1[i][j] != g2[i][j] {
				t.Fatal("group members differ")
			}
		}
		if i > 0 && g1[i][0] < g1[i-1][0] {
			t.Fatal("groups not sorted by first member")
		}
	}
}

func TestNumericFeatureMADScale(t *testing.T) {
	// Years cluster tightly (MAD small) so a 5-year gap must be visibly
	// dissimilar; citation counts are heavy-tailed (MAD moderate) so a
	// 2-point gap must stay similar while a 10x decimal shift is
	// maximally dissimilar.
	tbl := dataset.NewTable(dataset.Schema{
		{Name: "Year", Kind: dataset.Float},
		{Name: "Citations", Kind: dataset.Float},
	})
	years := []float64{2010, 2011, 2012, 2013, 2014, 2015}
	cites := []float64{40, 42, 44, 174, 200, 1740}
	for i := range years {
		tbl.MustAppend([]dataset.Value{dataset.Num(years[i]), dataset.Num(cites[i])})
	}
	fe := NewFeatureExtractor(tbl)

	f01 := fe.Features(tbl, tbl.ID(0), tbl.ID(1)) // year gap 1, cite gap 2
	f05 := fe.Features(tbl, tbl.ID(0), tbl.ID(5)) // year gap 5, cite gap 1700
	// Feature layout: [yearSim, yearAgree, citeSim, citeAgree].
	if f01[0] <= f05[0] {
		t.Fatalf("year similarity not monotone: gap1=%v gap5=%v", f01[0], f05[0])
	}
	if f01[2] < 0.9 {
		t.Fatalf("small citation gap should stay similar, got %v", f01[2])
	}
	if f05[2] > 0.05 {
		t.Fatalf("decimal-shift citation gap should be dissimilar, got %v", f05[2])
	}
}

func TestHeuristicBlendStabilizesProb(t *testing.T) {
	// A trained matcher's probability must mix the forest with the
	// heuristic: train an all-positive-vs-negative forest and verify the
	// blended probability is strictly between the pure components.
	tbl := pubsTable(t)
	m := NewMatcher(tbl, rf.DefaultConfig())
	m.AddLabel(MakePair(tbl.ID(0), tbl.ID(1)), true)
	m.AddLabel(MakePair(tbl.ID(0), tbl.ID(2)), true)
	m.AddLabel(MakePair(tbl.ID(3), tbl.ID(6)), false)
	m.AddLabel(MakePair(tbl.ID(4), tbl.ID(6)), false)
	if err := m.Train(tbl); err != nil {
		t.Fatal(err)
	}
	p := MakePair(tbl.ID(1), tbl.ID(2))
	feats := m.Features(tbl, p)
	blended := m.ProbWithFeatures(p, feats)
	heur := m.heuristic(feats)
	forest := m.forest.PredictProba(feats)
	want := 0.7*forest + 0.3*heur
	if diff := blended - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("blend = %v, want %v (forest %v, heuristic %v)", blended, want, forest, heur)
	}
}
