package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

func TestForEachIndexCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 1000
		hits := make([]int32, n)
		ForEachIndex(workers, n, func(i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

// TestForEachIndexDeterministicReduction is the index-write rule in
// miniature: every worker count yields the same result slice.
func TestForEachIndexDeterministicReduction(t *testing.T) {
	const n = 512
	want := make([]float64, n)
	ForEachIndex(1, n, func(i int) { want[i] = float64(i) * 1.5 })
	for _, workers := range []int{2, 4, 8} {
		got := make([]float64, n)
		ForEachIndex(workers, n, func(i int) { got[i] = float64(i) * 1.5 })
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestForEachIndexEmptyAndTiny(t *testing.T) {
	ForEachIndex(4, 0, func(i int) { t.Fatal("fn called for n=0") })
	ran := false
	ForEachIndex(4, 1, func(i int) { ran = true })
	if !ran {
		t.Fatal("fn not called for n=1")
	}
}
