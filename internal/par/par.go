// Package par provides the bounded fan-out primitive the hot paths
// (benefit annotation, forest training) are parallelized with. The
// contract that keeps parallel runs bit-identical to sequential ones is
// the index-write reduction rule: work item i may write only to slot i
// of a result slice that exists before the fan-out. No shared
// accumulators, no channels carrying results in completion order —
// ordering then never depends on the scheduler, and Workers=1 and
// Workers=N produce the same bytes. See DESIGN.md "Concurrency and
// determinism".
//
// This is reproduction infrastructure: the paper does not discuss
// parallelism, and every result is identical at any worker count.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"visclean/internal/obs"
)

// Pool-shape metrics (DESIGN.md §5): how often the fan-out primitive
// runs, how much work it distributes, how many workers are live right
// now, and the accumulated busy time — utilization is busy seconds
// divided by wall seconds times GOMAXPROCS. All updates happen at
// fan-out granularity (per call / per worker goroutine), never per
// item, so the instrumentation cannot show up in the annotate hot path.
var (
	obsFanouts = obs.Default.Counter("visclean_par_fanouts_total",
		"ForEachIndex fan-outs executed (including degenerate sequential runs).")
	obsItems = obs.Default.Counter("visclean_par_items_total",
		"Work items distributed across all fan-outs.")
	obsActive = obs.Default.Gauge("visclean_par_active_workers",
		"Worker goroutines currently executing fan-out items.")
	obsBusy = obs.Default.FloatCounter("visclean_par_worker_busy_seconds_total",
		"Accumulated worker busy time across all fan-outs.")
)

// Workers resolves a configured worker count: values < 1 select
// GOMAXPROCS (all the hardware allows), anything else is taken as-is.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEachIndex runs fn(i) for every i in [0, n) across at most workers
// goroutines (workers < 1 selects GOMAXPROCS). It returns when all calls
// have finished. Work is handed out by an atomic counter, so goroutines
// stay busy under uneven per-item cost; fn must confine its writes to
// data owned by item i (the index-write rule) for the reduction to be
// deterministic. With workers == 1 or n <= 1 it degenerates to a plain
// loop on the caller's goroutine — no goroutines, no synchronization.
func ForEachIndex(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	track := obs.Enabled()
	if track {
		obsFanouts.Inc()
		obsItems.Add(int64(n))
	}
	if workers == 1 {
		var start time.Time
		if track {
			obsActive.Inc()
			start = time.Now()
		}
		for i := 0; i < n; i++ {
			fn(i)
		}
		if track {
			obsBusy.Add(time.Since(start).Seconds())
			obsActive.Dec()
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			var start time.Time
			if track {
				obsActive.Inc()
				start = time.Now()
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					break
				}
				fn(i)
			}
			if track {
				obsBusy.Add(time.Since(start).Seconds())
				obsActive.Dec()
			}
		}()
	}
	wg.Wait()
}
