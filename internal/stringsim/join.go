package stringsim

import (
	"math"
	"sort"
)

// Pair is one similarity-join result: indices into the two input slices
// and the token-Jaccard similarity of the joined strings.
type Pair struct {
	I, J int
	Sim  float64
}

// Join finds all pairs (a[i], b[j]) with token-Jaccard similarity strictly
// greater than threshold, using the prefix-filtering technique from the
// string-similarity-join literature [16]: tokens are ordered by global
// frequency (rare first), and two strings can only reach the threshold if
// their rare-token prefixes share at least one token. Self-join callers
// pass the same slice twice and drop i >= j pairs themselves.
//
// The result is sorted by descending similarity, ties broken by (I, J),
// so downstream question generation is deterministic.
func Join(a, b []string, threshold float64) []Pair {
	if threshold < 0 {
		threshold = 0
	}
	if threshold >= 1 {
		// The result predicate is sim > threshold, so threshold >= 1
		// would match nothing (Jaccard never exceeds 1). Clamp to just
		// below 1: only identical token sets (sim == 1) qualify.
		threshold = math.Nextafter(1, 0)
	}
	tokensA, setsA := tokenize(a)
	tokensB, setsB := tokenize(b)

	// Global token frequency across both sides defines the canonical
	// token order for prefix filtering.
	freq := make(map[string]int)
	for _, ts := range tokensA {
		for _, t := range ts {
			freq[t]++
		}
	}
	for _, ts := range tokensB {
		for _, t := range ts {
			freq[t]++
		}
	}
	order := func(ts []string) {
		sort.Slice(ts, func(x, y int) bool {
			if freq[ts[x]] != freq[ts[y]] {
				return freq[ts[x]] < freq[ts[y]]
			}
			return ts[x] < ts[y]
		})
	}
	for _, ts := range tokensA {
		order(ts)
	}
	for _, ts := range tokensB {
		order(ts)
	}

	// Index side B by prefix tokens. For Jaccard threshold t, a string of
	// length l needs overlap with any match in its first l - ceil(t*l) + 1
	// tokens.
	index := make(map[string][]int)
	for j, ts := range tokensB {
		for _, tok := range prefix(ts, threshold) {
			index[tok] = append(index[tok], j)
		}
	}

	// candidates is rebuilt per i and i never repeats, so (i, j) pairs
	// are already unique — no cross-iteration dedup needed.
	var out []Pair
	for i, ts := range tokensA {
		candidates := make(map[int]struct{})
		for _, tok := range prefix(ts, threshold) {
			for _, j := range index[tok] {
				candidates[j] = struct{}{}
			}
		}
		setA := setsA[i]
		for j := range candidates {
			sim := JaccardSets(setA, setsB[j])
			if sim > threshold {
				out = append(out, Pair{I: i, J: j, Sim: sim})
			}
		}
	}
	sort.Slice(out, func(x, y int) bool {
		if out[x].Sim != out[y].Sim {
			return out[x].Sim > out[y].Sim
		}
		if out[x].I != out[y].I {
			return out[x].I < out[y].I
		}
		return out[x].J < out[y].J
	})
	return out
}

// SelfJoin finds all unordered pairs within vals whose token-Jaccard
// similarity exceeds threshold.
func SelfJoin(vals []string, threshold float64) []Pair {
	all := Join(vals, vals, threshold)
	out := all[:0]
	for _, p := range all {
		if p.I < p.J {
			out = append(out, p)
		}
	}
	return out
}

// tokenize returns each string's token list plus its token set. The set
// is the one TokenSet already built — kept so the verification loop in
// Join compares sets directly instead of rebuilding one per candidate
// pair (the lists are reordered in place for prefix filtering; the sets
// are order-free and unaffected).
func tokenize(ss []string) ([][]string, []map[string]struct{}) {
	out := make([][]string, len(ss))
	sets := make([]map[string]struct{}, len(ss))
	for i, s := range ss {
		set := TokenSet(s)
		ts := make([]string, 0, len(set))
		for t := range set {
			ts = append(ts, t)
		}
		out[i] = ts
		sets[i] = set
	}
	return out, sets
}

// prefix returns the prefix-filter tokens of a frequency-ordered token
// list for the given Jaccard threshold.
func prefix(ts []string, threshold float64) []string {
	l := len(ts)
	if l == 0 {
		return nil
	}
	need := l - int(ceilMul(threshold, l)) + 1
	if need < 1 {
		need = 1
	}
	if need > l {
		need = l
	}
	return ts[:need]
}

func ceilMul(t float64, l int) float64 {
	v := t * float64(l)
	iv := float64(int(v))
	if v > iv {
		return iv + 1
	}
	return iv
}
