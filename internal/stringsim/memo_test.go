package stringsim

import (
	"math"
	"reflect"
	"testing"
)

// TestMemoMatchesDirect: memoized similarities are the very floats the
// direct functions compute, in either argument order, and token sets are
// cached per string.
func TestMemoMatchesDirect(t *testing.T) {
	m := NewMemo()
	pairs := [][2]string{
		{"ACM SIGMOD", "SIGMOD Conf."},
		{"SIGMOD Conf.", "ACM SIGMOD"}, // reversed: same cache entry
		{"VLDB", "Very Large Data Bases"},
		{"", ""},
		{"ICDE", ""},
		{"same string", "same string"},
	}
	for _, p := range pairs {
		want := Jaccard(p[0], p[1])
		for i := 0; i < 2; i++ { // second call is the cached path
			got := m.Jaccard(p[0], p[1])
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("Jaccard(%q, %q) = %v, want %v", p[0], p[1], got, want)
			}
		}
		if got := m.Jaccard(p[1], p[0]); math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("reversed Jaccard(%q, %q) = %v, want %v", p[1], p[0], got, want)
		}
	}

	for _, s := range []string{"ACM SIGMOD", "", "a b a"} {
		want := TokenSet(s)
		got := m.TokenSet(s)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("TokenSet(%q) = %v, want %v", s, got, want)
		}
		if again := m.TokenSet(s); !sameMap(again, got) {
			t.Errorf("TokenSet(%q) not cached", s)
		}
	}
}

// sameMap checks pointer-level identity of two map values via a write.
func sameMap(a, b map[string]struct{}) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) == 0 {
		return true // cannot distinguish empty maps; equality suffices
	}
	return reflect.ValueOf(a).Pointer() == reflect.ValueOf(b).Pointer()
}
