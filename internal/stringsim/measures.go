// Package stringsim implements the string similarity measures and the
// set-similarity join that VisClean's cleaning components rely on:
//
//   - token and q-gram set similarities (Jaccard, Dice, cosine) used by
//     the entity-matching features (§IV) and attribute-duplicate detection,
//   - edit-based similarities (Levenshtein, Jaro-Winkler) used as extra
//     matching features,
//   - a prefix-filter string similarity join (Jiang et al. [16]) used by
//     Algorithm 1 Strategy 2 to find cross-cluster synonym candidates.
package stringsim

import (
	"math"
	"strings"
	"unicode"
)

// Tokenize lower-cases s and splits it into alphanumeric word tokens.
// Punctuation such as the periods in "SIGMOD Conf." and apostrophes in
// "SIGMOD'13" separate tokens, which is what lets those variants overlap.
func Tokenize(s string) []string {
	return strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// TokenSet returns the deduplicated token set of s.
func TokenSet(s string) map[string]struct{} {
	set := make(map[string]struct{})
	for _, tok := range Tokenize(s) {
		set[tok] = struct{}{}
	}
	return set
}

// QGrams returns the padded character q-grams of the lower-cased string.
// q must be >= 1; the string is padded with q-1 sentinel '#' characters on
// both sides so short strings still produce grams.
func QGrams(s string, q int) []string {
	if q < 1 {
		panic("stringsim: q must be >= 1")
	}
	pad := strings.Repeat("#", q-1)
	runes := []rune(pad + strings.ToLower(s) + pad)
	if len(runes) < q {
		return nil
	}
	grams := make([]string, 0, len(runes)-q+1)
	for i := 0; i+q <= len(runes); i++ {
		grams = append(grams, string(runes[i:i+q]))
	}
	return grams
}

func setOf(items []string) map[string]struct{} {
	set := make(map[string]struct{}, len(items))
	for _, it := range items {
		set[it] = struct{}{}
	}
	return set
}

func overlap(a, b map[string]struct{}) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	n := 0
	for k := range a {
		if _, ok := b[k]; ok {
			n++
		}
	}
	return n
}

// JaccardSets computes |a∩b| / |a∪b| over two sets. Two empty sets have
// similarity 1 (they are identical).
func JaccardSets(a, b map[string]struct{}) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := overlap(a, b)
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// Jaccard is token-set Jaccard similarity of two strings.
func Jaccard(a, b string) float64 {
	return JaccardSets(TokenSet(a), TokenSet(b))
}

// QGramJaccard is q-gram-set Jaccard similarity of two strings.
func QGramJaccard(a, b string, q int) float64 {
	return JaccardSets(setOf(QGrams(a, q)), setOf(QGrams(b, q)))
}

// Dice computes the Sørensen–Dice coefficient over token sets.
func Dice(a, b string) float64 {
	sa, sb := TokenSet(a), TokenSet(b)
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	if len(sa) == 0 || len(sb) == 0 {
		return 0
	}
	return 2 * float64(overlap(sa, sb)) / float64(len(sa)+len(sb))
}

// Cosine computes the cosine similarity over token sets (binary weights).
func Cosine(a, b string) float64 {
	sa, sb := TokenSet(a), TokenSet(b)
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	if len(sa) == 0 || len(sb) == 0 {
		return 0
	}
	return float64(overlap(sa, sb)) / math.Sqrt(float64(len(sa))*float64(len(sb)))
}

// Levenshtein returns the edit distance between a and b (unit costs).
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// LevenshteinSim normalizes edit distance into a [0,1] similarity.
func LevenshteinSim(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	m := la
	if lb > m {
		m = lb
	}
	return 1 - float64(Levenshtein(a, b))/float64(m)
}

// Jaro computes the Jaro similarity of two strings.
func Jaro(a, b string) float64 {
	ra, rb := []rune(strings.ToLower(a)), []rune(strings.ToLower(b))
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	window := len(ra)
	if len(rb) > window {
		window = len(rb)
	}
	window = window/2 - 1
	if window < 0 {
		window = 0
	}
	matchedA := make([]bool, len(ra))
	matchedB := make([]bool, len(rb))
	matches := 0
	for i := range ra {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > len(rb) {
			hi = len(rb)
		}
		for j := lo; j < hi; j++ {
			if matchedB[j] || ra[i] != rb[j] {
				continue
			}
			matchedA[i], matchedB[j] = true, true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions among matched characters.
	transpositions := 0
	j := 0
	for i := range ra {
		if !matchedA[i] {
			continue
		}
		for !matchedB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	return (m/float64(len(ra)) + m/float64(len(rb)) + (m-float64(transpositions)/2)/m) / 3
}

// JaroWinkler boosts Jaro similarity for strings sharing a common prefix,
// with the standard scaling factor p=0.1 and prefix cap 4.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	ra, rb := []rune(strings.ToLower(a)), []rune(strings.ToLower(b))
	prefix := 0
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}
