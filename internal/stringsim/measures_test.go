package stringsim

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"SIGMOD Conf.", []string{"sigmod", "conf"}},
		{"SIGMOD'13", []string{"sigmod", "13"}},
		{"Very Large Data Bases", []string{"very", "large", "data", "bases"}},
		{"", nil},
		{"---", nil},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestQGrams(t *testing.T) {
	got := QGrams("ab", 2)
	want := []string{"#a", "ab", "b#"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("QGrams = %v, want %v", got, want)
	}
	if g := QGrams("", 3); g != nil {
		// padded empty string "####" yields grams; verify deterministic behaviour
		if len(g) != 2 {
			t.Fatalf("QGrams(\"\",3) = %v", g)
		}
	}
}

func TestQGramsPanicsOnBadQ(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	QGrams("x", 0)
}

func TestJaccard(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"SIGMOD", "sigmod", 1},
		{"SIGMOD Conf.", "SIGMOD", 0.5},
		{"VLDB", "Very Large Data Bases", 0},
		{"", "", 1},
		{"a b", "b c", 1.0 / 3.0},
	}
	for _, c := range cases {
		if got := Jaccard(c.a, c.b); !almostEq(got, c.want) {
			t.Errorf("Jaccard(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDiceAndCosine(t *testing.T) {
	if got := Dice("a b", "b c"); !almostEq(got, 0.5) {
		t.Errorf("Dice = %v, want 0.5", got)
	}
	if got := Cosine("a b", "b c"); !almostEq(got, 0.5) {
		t.Errorf("Cosine = %v, want 0.5", got)
	}
	if Dice("", "x") != 0 || Cosine("", "x") != 0 {
		t.Error("empty-vs-nonempty should be 0")
	}
	if Dice("", "") != 1 || Cosine("", "") != 1 {
		t.Error("empty-vs-empty should be 1")
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"kitten", "sitting", 3},
		{"", "abc", 3},
		{"abc", "", 3},
		{"abc", "abc", 0},
		{"SIGMOD", "SIGMD", 1},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if got := LevenshteinSim("abc", "abc"); got != 1 {
		t.Errorf("LevenshteinSim identical = %v", got)
	}
	if got := LevenshteinSim("", ""); got != 1 {
		t.Errorf("LevenshteinSim empty = %v", got)
	}
}

func TestJaroWinkler(t *testing.T) {
	// Classic reference values.
	if got := Jaro("MARTHA", "MARHTA"); !almostEq(got, 0.9444444444444445) {
		t.Errorf("Jaro(MARTHA,MARHTA) = %v", got)
	}
	if got := JaroWinkler("MARTHA", "MARHTA"); !almostEq(got, 0.9611111111111111) {
		t.Errorf("JaroWinkler(MARTHA,MARHTA) = %v", got)
	}
	if Jaro("", "") != 1 || Jaro("a", "") != 0 {
		t.Error("Jaro edge cases")
	}
	if got := JaroWinkler("SIGMOD", "SIGMOD"); got != 1 {
		t.Errorf("identical JaroWinkler = %v", got)
	}
}

// Properties shared by every similarity: symmetry, range [0,1], and
// self-similarity 1.
func TestQuickSimilarityAxioms(t *testing.T) {
	sims := map[string]func(a, b string) float64{
		"Jaccard":        Jaccard,
		"Dice":           Dice,
		"Cosine":         Cosine,
		"LevenshteinSim": LevenshteinSim,
		"JaroWinkler":    JaroWinkler,
	}
	words := []string{"sigmod", "vldb", "icde", "conf", "very", "large", "data", "bases", "13", "2013"}
	rng := rand.New(rand.NewSource(7))
	randStr := func() string {
		n := rng.Intn(4)
		s := ""
		for i := 0; i < n; i++ {
			if i > 0 {
				s += " "
			}
			s += words[rng.Intn(len(words))]
		}
		return s
	}
	for name, sim := range sims {
		for trial := 0; trial < 200; trial++ {
			a, b := randStr(), randStr()
			sab, sba := sim(a, b), sim(b, a)
			if !almostEq(sab, sba) {
				t.Fatalf("%s not symmetric on (%q,%q): %v vs %v", name, a, b, sab, sba)
			}
			if sab < 0 || sab > 1+1e-9 {
				t.Fatalf("%s out of range on (%q,%q): %v", name, a, b, sab)
			}
			if s := sim(a, a); !almostEq(s, 1) {
				t.Fatalf("%s self-similarity on %q = %v", name, a, s)
			}
		}
	}
}

// Property: Levenshtein is a metric (triangle inequality) on short strings.
func TestQuickLevenshteinTriangle(t *testing.T) {
	f := func(a, b, c string) bool {
		if len(a) > 12 || len(b) > 12 || len(c) > 12 {
			return true
		}
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
