package stringsim

// Memo caches token sets and pairwise token-Jaccard similarities across
// calls. Detection re-scores the same value pairs every iteration; the
// similarity of two fixed strings never changes, so memoizing is exact:
// Memo.Jaccard returns the very float64 Jaccard would (it calls the same
// JaccardSets over the same TokenSet results). Not safe for concurrent
// use; VisClean's detect phase is single-threaded.
type Memo struct {
	sets map[string]map[string]struct{}
	sims map[[2]string]float64
}

// NewMemo returns an empty similarity memo.
func NewMemo() *Memo {
	return &Memo{
		sets: make(map[string]map[string]struct{}),
		sims: make(map[[2]string]float64),
	}
}

// TokenSet is stringsim.TokenSet with caching. Callers must not mutate
// the returned set.
func (m *Memo) TokenSet(s string) map[string]struct{} {
	if set, ok := m.sets[s]; ok {
		return set
	}
	set := TokenSet(s)
	m.sets[s] = set
	return set
}

// Jaccard is stringsim.Jaccard with caching, bit-identical to the
// uncached function for any argument order (Jaccard is symmetric and
// JaccardSets is order-insensitive).
func (m *Memo) Jaccard(a, b string) float64 {
	k := [2]string{a, b}
	if a > b {
		k[0], k[1] = b, a
	}
	if sim, ok := m.sims[k]; ok {
		return sim
	}
	sim := JaccardSets(m.TokenSet(a), m.TokenSet(b))
	m.sims[k] = sim
	return sim
}
