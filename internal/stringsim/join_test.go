package stringsim

import (
	"math/rand"
	"sort"
	"testing"
)

func TestJoinFindsVenueSynonyms(t *testing.T) {
	a := []string{"SIGMOD", "VLDB", "ICDE 2013"}
	b := []string{"SIGMOD Conf.", "Very Large Data Bases", "ICDE"}
	pairs := Join(a, b, 0.3)
	found := map[[2]int]bool{}
	for _, p := range pairs {
		found[[2]int{p.I, p.J}] = true
	}
	if !found[[2]int{0, 0}] {
		t.Error("SIGMOD ~ SIGMOD Conf. not found")
	}
	if !found[[2]int{2, 2}] {
		t.Error("ICDE 2013 ~ ICDE not found")
	}
	if found[[2]int{1, 1}] {
		t.Error("VLDB should not match Very Large Data Bases at token level")
	}
}

func TestJoinSortedByDescSim(t *testing.T) {
	a := []string{"a b c", "a b", "a"}
	pairs := Join(a, []string{"a b c"}, 0.1)
	if !sort.SliceIsSorted(pairs, func(i, j int) bool {
		if pairs[i].Sim != pairs[j].Sim {
			return pairs[i].Sim > pairs[j].Sim
		}
		if pairs[i].I != pairs[j].I {
			return pairs[i].I < pairs[j].I
		}
		return pairs[i].J < pairs[j].J
	}) {
		t.Fatalf("pairs not sorted: %v", pairs)
	}
}

func TestSelfJoinNoSelfOrMirrorPairs(t *testing.T) {
	vals := []string{"SIGMOD", "SIGMOD Conf.", "ACM SIGMOD", "VLDB"}
	pairs := SelfJoin(vals, 0.2)
	seen := map[[2]int]bool{}
	for _, p := range pairs {
		if p.I >= p.J {
			t.Fatalf("self-join emitted non-canonical pair %v", p)
		}
		if seen[[2]int{p.I, p.J}] {
			t.Fatalf("duplicate pair %v", p)
		}
		seen[[2]int{p.I, p.J}] = true
	}
	if len(pairs) == 0 {
		t.Fatal("expected at least one synonym pair")
	}
}

func TestJoinNegativeThresholdClamped(t *testing.T) {
	// Must not panic; behaves as threshold 0.
	pairs := Join([]string{"a"}, []string{"a"}, -1)
	if len(pairs) != 1 {
		t.Fatalf("pairs = %v", pairs)
	}
}

func TestJoinThresholdOneClamped(t *testing.T) {
	// threshold >= 1 clamps to just below 1: identical token sets
	// (sim == 1) still join, anything less does not.
	pairs := Join([]string{"sigmod conf", "sigmod"}, []string{"conf sigmod", "vldb"}, 1)
	if len(pairs) != 1 || pairs[0].I != 0 || pairs[0].J != 0 || pairs[0].Sim != 1 {
		t.Fatalf("pairs = %v, want exactly the identical-token-set pair", pairs)
	}
	if pairs := Join([]string{"a"}, []string{"a"}, 2); len(pairs) != 1 {
		t.Fatalf("threshold 2 should clamp like 1, got %v", pairs)
	}
}

func TestJoinEmptyInputs(t *testing.T) {
	if p := Join(nil, []string{"x"}, 0.5); len(p) != 0 {
		t.Fatal("empty left side should yield no pairs")
	}
	if p := Join([]string{""}, []string{""}, 0.5); len(p) != 1 {
		// Two empty token sets have Jaccard 1 > 0.5; but prefix filter has
		// nothing to index. Accept either 0 or 1 results? No: we document
		// that empty strings never join (no tokens to index on).
		if len(p) != 0 {
			t.Fatalf("unexpected pairs for empty strings: %v", p)
		}
	}
}

// Property: prefix-filtered join is complete w.r.t. the brute-force join.
func TestJoinMatchesBruteForce(t *testing.T) {
	words := []string{"sigmod", "vldb", "icde", "conf", "acm", "ieee", "proc", "13", "2013", "intl"}
	rng := rand.New(rand.NewSource(42))
	randStr := func() string {
		n := 1 + rng.Intn(4)
		s := ""
		for i := 0; i < n; i++ {
			if i > 0 {
				s += " "
			}
			s += words[rng.Intn(len(words))]
		}
		return s
	}
	for trial := 0; trial < 30; trial++ {
		na, nb := 1+rng.Intn(15), 1+rng.Intn(15)
		a := make([]string, na)
		b := make([]string, nb)
		for i := range a {
			a[i] = randStr()
		}
		for j := range b {
			b[j] = randStr()
		}
		threshold := []float64{0.2, 0.5, 0.8}[rng.Intn(3)]

		want := map[[2]int]float64{}
		for i := range a {
			for j := range b {
				if sim := Jaccard(a[i], b[j]); sim > threshold {
					want[[2]int{i, j}] = sim
				}
			}
		}
		got := map[[2]int]float64{}
		for _, p := range Join(a, b, threshold) {
			got[[2]int{p.I, p.J}] = p.Sim
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d threshold %v: join found %d pairs, brute force %d\na=%v\nb=%v",
				trial, threshold, len(got), len(want), a, b)
		}
		for k, sim := range want {
			if gs, ok := got[k]; !ok || !almostEq(gs, sim) {
				t.Fatalf("trial %d: pair %v sim mismatch (got %v ok=%v, want %v)", trial, k, gs, ok, sim)
			}
		}
	}
}
