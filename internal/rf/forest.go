package rf

import (
	"fmt"
	"math/rand"

	"visclean/internal/par"
)

// Config holds the forest hyperparameters. The zero value is unusable;
// start from DefaultConfig.
type Config struct {
	NumTrees    int     // bagged trees
	MaxDepth    int     // maximum tree depth
	MinLeaf     int     // minimum samples per leaf
	FeatureFrac float64 // fraction of features considered per split
	Seed        int64   // RNG seed; training is deterministic given it
	// Workers bounds the per-tree training fan-out: < 1 selects
	// GOMAXPROCS, 1 trains sequentially. The forest is identical for
	// every worker count — each tree draws from its own RNG seeded by
	// treeSeed(Seed, t), not from a stream shared across trees.
	Workers int
}

// DefaultConfig returns the hyperparameters used throughout VisClean.
// Entity-matching feature vectors are short (one similarity per
// attribute), so modest trees generalize well and retrain fast — which
// matters because the pipeline retrains after every iteration (Fig 18
// attributes most machine time to Train Models).
func DefaultConfig() Config {
	return Config{NumTrees: 48, MaxDepth: 6, MinLeaf: 3, FeatureFrac: 0.7, Seed: 1}
}

// Forest is a trained random forest.
type Forest struct {
	trees    []*node
	features int
}

// Train fits a forest on feature matrix x and binary labels y (0 or 1).
// Every row of x must have the same length. It returns an error on empty
// or malformed input; single-class training sets are allowed (the forest
// then predicts that class's frequency, i.e. 0 or 1).
func Train(x [][]float64, y []int, cfg Config) (*Forest, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("rf: empty training set")
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("rf: %d rows but %d labels", len(x), len(y))
	}
	nf := len(x[0])
	if nf == 0 {
		return nil, fmt.Errorf("rf: rows have no features")
	}
	for i, row := range x {
		if len(row) != nf {
			return nil, fmt.Errorf("rf: row %d has %d features, want %d", i, len(row), nf)
		}
	}
	for i, label := range y {
		if label != 0 && label != 1 {
			return nil, fmt.Errorf("rf: label %d at row %d is not binary", label, i)
		}
	}
	if cfg.NumTrees < 1 || cfg.MaxDepth < 1 || cfg.MinLeaf < 1 {
		return nil, fmt.Errorf("rf: invalid config %+v", cfg)
	}

	tc := treeConfig{maxDepth: cfg.MaxDepth, minLeaf: cfg.MinLeaf, featureFrac: cfg.FeatureFrac}
	f := &Forest{features: nf, trees: make([]*node, cfg.NumTrees)}
	n := len(x)
	// Per-tree RNGs let the independent tree builds fan out across
	// workers while keeping the forest a pure function of cfg.Seed: tree
	// t writes only f.trees[t] (the index-write rule), and its random
	// stream never depends on which goroutine built the other trees.
	par.ForEachIndex(cfg.Workers, cfg.NumTrees, func(t int) {
		rng := rand.New(rand.NewSource(treeSeed(cfg.Seed, t)))
		// Bootstrap sample with replacement.
		idx := make([]int, n)
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		f.trees[t] = buildTree(x, y, idx, 0, tc, rng)
	})
	return f, nil
}

// treeSeed derives tree t's RNG seed from the forest seed with a
// splitmix64 finalizer, so neighbouring (seed, t) inputs yield
// decorrelated streams — naive seed+t offsets make tree t of seed s
// share a bootstrap with tree t-1 of seed s+1.
func treeSeed(seed int64, t int) int64 {
	z := uint64(seed) + uint64(t+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// PredictProba returns the forest's estimate of P(label == 1): the mean
// of the leaf probabilities across trees, always in [0, 1].
func (f *Forest) PredictProba(x []float64) float64 {
	if len(x) != f.features {
		panic(fmt.Sprintf("rf: predict with %d features, trained on %d", len(x), f.features))
	}
	sum := 0.0
	for _, t := range f.trees {
		sum += t.predict(x)
	}
	return sum / float64(len(f.trees))
}

// Predict returns the hard classification at threshold 0.5.
func (f *Forest) Predict(x []float64) int {
	if f.PredictProba(x) >= 0.5 {
		return 1
	}
	return 0
}

// NumTrees reports the ensemble size.
func (f *Forest) NumTrees() int { return len(f.trees) }

// NumNodes reports the total node count across all trees, which sizes a
// forest for the artifact cache's byte accounting.
func (f *Forest) NumNodes() int {
	n := 0
	for _, t := range f.trees {
		n += t.count()
	}
	return n
}

// MaxDepth reports the deepest tree's height, for introspection in tests.
func (f *Forest) MaxDepth() int {
	d := 0
	for _, t := range f.trees {
		if td := t.depth(); td > d {
			d = td
		}
	}
	return d
}
