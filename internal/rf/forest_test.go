package rf

import (
	"math/rand"
	"testing"
)

// linearlySeparable builds a 2-D dataset where class 1 iff x0+x1 > 1.
func linearlySeparable(rng *rand.Rand, n int) (x [][]float64, y []int) {
	for i := 0; i < n; i++ {
		a, b := rng.Float64(), rng.Float64()
		x = append(x, []float64{a, b})
		if a+b > 1 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	return x, y
}

func TestTrainValidation(t *testing.T) {
	cases := []struct {
		x   [][]float64
		y   []int
		cfg Config
	}{
		{nil, nil, DefaultConfig()},
		{[][]float64{{1}}, []int{0, 1}, DefaultConfig()},
		{[][]float64{{}}, []int{0}, DefaultConfig()},
		{[][]float64{{1}, {1, 2}}, []int{0, 1}, DefaultConfig()},
		{[][]float64{{1}}, []int{2}, DefaultConfig()},
		{[][]float64{{1}}, []int{0}, Config{}},
	}
	for i, c := range cases {
		if _, err := Train(c.x, c.y, c.cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestLearnsSeparableFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := linearlySeparable(rng, 400)
	f, err := Train(x, y, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	tests, wants := linearlySeparable(rng, 200)
	for i := range tests {
		if f.Predict(tests[i]) == wants[i] {
			correct++
		}
	}
	if acc := float64(correct) / 200; acc < 0.9 {
		t.Fatalf("accuracy = %v, want >= 0.9", acc)
	}
}

func TestProbaInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := linearlySeparable(rng, 100)
	f, err := Train(x, y, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		p := f.PredictProba([]float64{rng.Float64() * 2, rng.Float64() * 2})
		if p < 0 || p > 1 {
			t.Fatalf("probability %v out of range", p)
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, y := linearlySeparable(rng, 150)
	f1, _ := Train(x, y, DefaultConfig())
	f2, _ := Train(x, y, DefaultConfig())
	for i := 0; i < 50; i++ {
		p := []float64{rng.Float64(), rng.Float64()}
		if f1.PredictProba(p) != f2.PredictProba(p) {
			t.Fatal("same seed produced different forests")
		}
	}
	cfg := DefaultConfig()
	cfg.Seed = 999
	f3, _ := Train(x, y, cfg)
	diff := false
	for i := 0; i < 50 && !diff; i++ {
		p := []float64{rng.Float64(), rng.Float64()}
		diff = f1.PredictProba(p) != f3.PredictProba(p)
	}
	if !diff {
		t.Log("warning: different seeds produced identical predictions (possible but unlikely)")
	}
}

func TestSingleClassTraining(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}}
	f, err := Train(x, []int{1, 1, 1}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p := f.PredictProba([]float64{5}); p != 1 {
		t.Fatalf("all-positive forest predicts %v", p)
	}
	f0, err := Train(x, []int{0, 0, 0}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p := f0.PredictProba([]float64{5}); p != 0 {
		t.Fatalf("all-negative forest predicts %v", p)
	}
}

func TestConstantFeatures(t *testing.T) {
	// No valid split exists; must not loop or panic.
	x := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	y := []int{0, 1, 0, 1}
	f, err := Train(x, y, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p := f.PredictProba([]float64{1, 1}); p < 0.2 || p > 0.8 {
		t.Fatalf("constant-feature prediction %v, want near 0.5", p)
	}
}

func TestMaxDepthRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, y := linearlySeparable(rng, 300)
	cfg := DefaultConfig()
	cfg.MaxDepth = 3
	f, err := Train(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// depth counts nodes on the longest path; MaxDepth bounds split depth.
	if d := f.MaxDepth(); d > cfg.MaxDepth+1 {
		t.Fatalf("tree depth %d exceeds configured max %d", d, cfg.MaxDepth)
	}
	if f.NumTrees() != cfg.NumTrees {
		t.Fatalf("trees = %d", f.NumTrees())
	}
}

func TestPredictPanicsOnWrongWidth(t *testing.T) {
	x := [][]float64{{0, 0}, {1, 1}}
	f, err := Train(x, []int{0, 1}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.PredictProba([]float64{1})
}

func TestTrainWorkerCountInvariance(t *testing.T) {
	// The forest is a pure function of cfg.Seed: per-tree RNGs mean the
	// worker count (and hence goroutine scheduling) must not change a
	// single prediction.
	rng := rand.New(rand.NewSource(5))
	x, y := linearlySeparable(rng, 300)
	probes, _ := linearlySeparable(rng, 100)
	var ref []float64
	for _, workers := range []int{1, 2, 8} {
		cfg := DefaultConfig()
		cfg.Workers = workers
		f, err := Train(x, y, cfg)
		if err != nil {
			t.Fatal(err)
		}
		preds := make([]float64, len(probes))
		for i, p := range probes {
			preds[i] = f.PredictProba(p)
		}
		if ref == nil {
			ref = preds
			continue
		}
		for i := range preds {
			if preds[i] != ref[i] {
				t.Fatalf("workers=%d: probe %d predicts %v, workers=1 predicted %v", workers, i, preds[i], ref[i])
			}
		}
	}
}

func TestTreeSeedDecorrelated(t *testing.T) {
	// Naive seed+t offsets make tree t of seed s equal tree t-1 of seed
	// s+1; the splitmix64 mix must not.
	if treeSeed(1, 1) == treeSeed(2, 0) {
		t.Fatal("treeSeed(1,1) == treeSeed(2,0): adjacent forests share tree streams")
	}
	seen := map[int64]bool{}
	for s := int64(0); s < 8; s++ {
		for tr := 0; tr < 8; tr++ {
			v := treeSeed(s, tr)
			if seen[v] {
				t.Fatalf("duplicate tree seed %d at (%d,%d)", v, s, tr)
			}
			seen[v] = true
		}
	}
}

func BenchmarkTrain(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x, y := linearlySeparable(rng, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(x, y, DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredict(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	x, y := linearlySeparable(rng, 500)
	f, _ := Train(x, y, DefaultConfig())
	p := []float64{0.4, 0.7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.PredictProba(p)
	}
}
