// Package rf implements a random forest binary classifier from scratch:
// CART decision trees split on Gini impurity, trained on bootstrap
// samples with per-split feature subsampling. VisClean uses it as the
// entity-matching model (§IV), following the paper's choice of random
// forests [19]; predicted match probabilities are the P^Y terms of the
// benefit model (Eq. 6) and the edge weights of the ERG.
package rf

import (
	"math"
	"math/rand"
	"sort"
)

// node is one CART tree node. Leaves carry the positive-class fraction.
type node struct {
	feature   int     // split feature; -1 for leaves
	threshold float64 // go left when x[feature] <= threshold
	left      *node
	right     *node
	prob      float64 // leaf: P(label == 1)
}

// treeConfig bundles the per-tree hyperparameters.
type treeConfig struct {
	maxDepth    int
	minLeaf     int
	featureFrac float64
}

// buildTree grows a CART tree on the rows indexed by idx.
func buildTree(x [][]float64, y []int, idx []int, depth int, cfg treeConfig, rng *rand.Rand) *node {
	pos := 0
	for _, i := range idx {
		pos += y[i]
	}
	prob := float64(pos) / float64(len(idx))
	if depth >= cfg.maxDepth || len(idx) < 2*cfg.minLeaf || pos == 0 || pos == len(idx) {
		return &node{feature: -1, prob: prob}
	}

	feat, thr, ok := bestSplit(x, y, idx, cfg, rng)
	if !ok {
		return &node{feature: -1, prob: prob}
	}
	var left, right []int
	for _, i := range idx {
		if x[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < cfg.minLeaf || len(right) < cfg.minLeaf {
		return &node{feature: -1, prob: prob}
	}
	return &node{
		feature:   feat,
		threshold: thr,
		left:      buildTree(x, y, left, depth+1, cfg, rng),
		right:     buildTree(x, y, right, depth+1, cfg, rng),
	}
}

// bestSplit scans a random feature subset for the split minimizing the
// weighted Gini impurity of the children.
func bestSplit(x [][]float64, y []int, idx []int, cfg treeConfig, rng *rand.Rand) (feat int, thr float64, ok bool) {
	nf := len(x[idx[0]])
	sub := int(math.Ceil(cfg.featureFrac * float64(nf)))
	if sub < 1 {
		sub = 1
	}
	if sub > nf {
		sub = nf
	}
	feats := rng.Perm(nf)[:sub]

	bestGini := math.Inf(1)
	type fv struct {
		v float64
		y int
	}
	vals := make([]fv, len(idx))
	for _, f := range feats {
		for k, i := range idx {
			vals[k] = fv{v: x[i][f], y: y[i]}
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a].v < vals[b].v })

		totalPos := 0
		for _, e := range vals {
			totalPos += e.y
		}
		leftPos, leftN := 0, 0
		n := len(vals)
		for k := 0; k+1 < n; k++ {
			leftPos += vals[k].y
			leftN++
			if vals[k].v == vals[k+1].v {
				continue // can't split between equal values
			}
			rightPos := totalPos - leftPos
			rightN := n - leftN
			g := (gini(leftPos, leftN)*float64(leftN) + gini(rightPos, rightN)*float64(rightN)) / float64(n)
			if g < bestGini {
				bestGini = g
				feat = f
				thr = (vals[k].v + vals[k+1].v) / 2
				ok = true
			}
		}
	}
	return feat, thr, ok
}

func gini(pos, n int) float64 {
	if n == 0 {
		return 0
	}
	p := float64(pos) / float64(n)
	return 2 * p * (1 - p)
}

// predict walks the tree to a leaf probability.
func (nd *node) predict(x []float64) float64 {
	for nd.feature >= 0 {
		if x[nd.feature] <= nd.threshold {
			nd = nd.left
		} else {
			nd = nd.right
		}
	}
	return nd.prob
}

// depth returns the tree height (leaves have depth 1).
func (nd *node) depth() int {
	if nd.feature < 0 {
		return 1
	}
	l, r := nd.left.depth(), nd.right.depth()
	if r > l {
		l = r
	}
	return l + 1
}

// count returns the number of nodes in the subtree.
func (nd *node) count() int {
	if nd.feature < 0 {
		return 1
	}
	return 1 + nd.left.count() + nd.right.count()
}
