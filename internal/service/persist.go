package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"visclean/internal/obs"
	"visclean/internal/pipeline"
)

// SnapshotVersion is bumped whenever the snapshot schema changes
// incompatibly; readers skip snapshots from the future.
const SnapshotVersion = 1

// Snapshot is the on-disk form of a session: the spec that built it plus
// its answer log. Replaying History against a session freshly built from
// Spec reproduces the live state (see pipeline.Session.Replay).
type Snapshot struct {
	Version     int              `json:"version"`
	ID          string           `json:"id"`
	Spec        Spec             `json:"spec"`
	SavedAtUnix int64            `json:"savedAt"`
	History     pipeline.History `json:"history"`
}

// WriteSnapshotFile atomically persists a snapshot: the JSON is written
// to a temp file in the target directory and renamed into place, so a
// crash mid-write leaves either the old snapshot or none — never a
// truncated one under the final name.
func WriteSnapshotFile(path string, snap Snapshot) error {
	snap.Version = SnapshotVersion
	if snap.SavedAtUnix == 0 {
		snap.SavedAtUnix = time.Now().Unix()
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("service: encode snapshot: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("service: write snapshot: %w", err)
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	serr := tmp.Sync()
	cerr := tmp.Close()
	for _, e := range []error{werr, serr, cerr} {
		if e != nil {
			_ = os.Remove(tmpName)
			return fmt.Errorf("service: write snapshot: %w", e)
		}
	}
	if err := os.Rename(tmpName, path); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("service: write snapshot: %w", err)
	}
	return nil
}

// ReadSnapshotFile loads and validates one snapshot. A missing file
// returns os.ErrNotExist (wrapped); a corrupt, truncated or
// future-versioned file returns a descriptive error so callers can log
// and skip it rather than fail the whole server.
func ReadSnapshotFile(path string) (Snapshot, error) {
	var snap Snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return snap, err
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		return snap, fmt.Errorf("service: corrupt snapshot %s: %w", path, err)
	}
	if snap.Version <= 0 || snap.Version > SnapshotVersion {
		return snap, fmt.Errorf("service: snapshot %s has unsupported version %d (supported ≤ %d)",
			path, snap.Version, SnapshotVersion)
	}
	if snap.ID == "" {
		return snap, fmt.Errorf("service: snapshot %s has no session id", path)
	}
	return snap, nil
}

// snapshotPath maps a session id to its snapshot file.
func (r *Registry) snapshotPath(id string) string {
	return filepath.Join(r.cfg.SnapshotDir, id+".json")
}

// persistSession snapshots a session's current history to disk. Callers
// must hold exclusive ownership of the pipeline (worker at iteration
// end, or registry teardown after the iteration stopped).
func (r *Registry) persistSession(s *Session) {
	if r.cfg.SnapshotDir == "" {
		return
	}
	snap := Snapshot{ID: s.id, Spec: s.spec, History: s.ps.History()}
	path := r.snapshotPath(s.id)
	start := time.Now()
	if err := WriteSnapshotFile(path, snap); err != nil {
		r.cfg.Logf("service: persist session %s: %v", s.id, err)
		return
	}
	if obs.Enabled() {
		obsSnapshotSeconds.Observe(time.Since(start).Seconds())
		if fi, err := os.Stat(path); err == nil {
			obsSnapshotBytes.Observe(float64(fi.Size()))
		}
	}
}

// deleteSnapshot removes a session's snapshot file, reporting whether
// one existed.
func (r *Registry) deleteSnapshot(id string) bool {
	if r.cfg.SnapshotDir == "" {
		return false
	}
	return os.Remove(r.snapshotPath(id)) == nil
}
