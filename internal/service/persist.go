package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"visclean/internal/fault"
	"visclean/internal/obs"
	"visclean/internal/pipeline"
)

// SnapshotVersion is bumped whenever the snapshot schema changes
// incompatibly; readers skip snapshots from the future.
const SnapshotVersion = 1

// Snapshot is the on-disk form of a session: the spec that built it plus
// its answer log. Replaying History against a session freshly built from
// Spec reproduces the live state (see pipeline.Session.Replay).
type Snapshot struct {
	Version     int              `json:"version"`
	ID          string           `json:"id"`
	Spec        Spec             `json:"spec"`
	SavedAtUnix int64            `json:"savedAt"`
	History     pipeline.History `json:"history"`
	// Fingerprint is the session's dataset content hash (DESIGN.md §12),
	// recorded for diagnostics. Snapshots never embed cached artifacts —
	// restore rebuilds the session from Spec+History and re-acquires its
	// artifacts from the registry's shared cache by this same key, which
	// is recomputed from the rebuilt table. Empty when the session ran
	// without a cache.
	Fingerprint string `json:"fingerprint,omitempty"`
}

// WriteSnapshotFile atomically and durably persists a snapshot: the
// JSON is written to a temp file in the target directory, fsynced,
// renamed into place, and the directory is fsynced so the rename itself
// survives a power loss — a crash mid-write leaves either the old
// snapshot or none under the final name, never a truncated one.
//
// Failpoints (DESIGN.md §8): service/persist.write, .sync, .rename,
// .dirsync. A simulated crash at any of them unwinds without cleanup,
// leaving the temp file orphaned exactly as a kill would — the orphan
// sweep in NewRegistry/RestoreAll reclaims those.
func WriteSnapshotFile(path string, snap Snapshot) (err error) {
	defer fault.RecoverCrash(&err)
	snap.Version = SnapshotVersion
	if snap.SavedAtUnix == 0 {
		snap.SavedAtUnix = time.Now().Unix()
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("service: encode snapshot: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("service: write snapshot: %w", err)
	}
	tmpName := tmp.Name()
	werr := fault.Point("service/persist.write")
	if werr == nil {
		_, werr = tmp.Write(data)
	}
	serr := fault.Point("service/persist.sync")
	if serr == nil {
		serr = tmp.Sync()
	}
	cerr := tmp.Close()
	for _, e := range []error{werr, serr, cerr} {
		if e != nil {
			_ = os.Remove(tmpName)
			return fmt.Errorf("service: write snapshot: %w", e)
		}
	}
	if err := fault.Point("service/persist.rename"); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("service: write snapshot: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("service: write snapshot: %w", err)
	}
	if err := syncDir(dir); err != nil {
		// The snapshot is in place but its directory entry may not be
		// durable yet; report it so callers retry the whole write.
		return fmt.Errorf("service: sync snapshot dir: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory, making a rename inside it durable.
func syncDir(dir string) error {
	if err := fault.Point("service/persist.dirsync"); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// ReadSnapshotFile loads and validates one snapshot. A missing file
// returns os.ErrNotExist (wrapped); a corrupt, truncated or
// future-versioned file returns a descriptive error so callers can log
// and skip it rather than fail the whole server.
func ReadSnapshotFile(path string) (Snapshot, error) {
	var snap Snapshot
	if err := fault.Point("service/persist.read"); err != nil {
		return snap, fmt.Errorf("service: read snapshot %s: %w", path, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return snap, err
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		return snap, fmt.Errorf("service: corrupt snapshot %s: %w", path, err)
	}
	if snap.Version <= 0 || snap.Version > SnapshotVersion {
		return snap, fmt.Errorf("service: snapshot %s has unsupported version %d (supported ≤ %d)",
			path, snap.Version, SnapshotVersion)
	}
	if snap.ID == "" {
		return snap, fmt.Errorf("service: snapshot %s has no session id", path)
	}
	return snap, nil
}

// snapshotPath maps a session id to its snapshot file.
func (r *Registry) snapshotPath(id string) string {
	return filepath.Join(r.cfg.SnapshotDir, id+".json")
}

// Persist retry backoff: transient write failures (full disk clearing,
// antivirus briefly locking the file, an injected fault) are retried a
// few times with capped exponential backoff before the persist is
// declared failed.
const (
	persistRetryBase = 5 * time.Millisecond
	persistRetryMax  = 40 * time.Millisecond
)

// persistSession snapshots a session's current history to disk,
// retrying transient failures Config.PersistRetries times. Callers must
// hold exclusive ownership of the pipeline (worker at iteration end, or
// registry teardown after the iteration stopped). On failure (after
// retries) it bumps visclean_persist_failures_total and returns the
// error; eviction uses that to keep the session live instead of
// dropping acked answers.
func (r *Registry) persistSession(s *Session) error {
	if r.cfg.SnapshotDir == "" {
		return nil
	}
	snap := Snapshot{ID: s.id, Spec: s.spec, History: s.ps.History(), Fingerprint: s.ps.Fingerprint()}
	path := r.snapshotPath(s.id)
	start := time.Now()
	var err error
	backoff := persistRetryBase
	for attempt := 0; ; attempt++ {
		err = WriteSnapshotFile(path, snap)
		if err == nil {
			break
		}
		// A simulated crash means "the process died here": the retry
		// loop does not exist in that world, so don't run it.
		if errors.Is(err, fault.ErrCrash) || attempt >= r.cfg.PersistRetries {
			break
		}
		r.cfg.Logf("service: persist session %s (attempt %d of %d): %v",
			s.id, attempt+1, r.cfg.PersistRetries+1, err)
		time.Sleep(backoff)
		if backoff *= 2; backoff > persistRetryMax {
			backoff = persistRetryMax
		}
	}
	if err != nil {
		obsPersistFailures.Inc()
		r.cfg.Logf("service: persist session %s failed: %v", s.id, err)
		return err
	}
	if obs.Enabled() {
		obsSnapshotSeconds.Observe(time.Since(start).Seconds())
		if fi, err := os.Stat(path); err == nil {
			obsSnapshotBytes.Observe(float64(fi.Size()))
		}
	}
	return nil
}

// orphanTempGrace is how old a snapshot temp file must be before the
// orphan sweep may delete it. The grace period keeps the sweep from
// racing a live writer in another process pointed at the same
// directory; any tmp file this old is the residue of a crash between
// CreateTemp and Rename.
const orphanTempGrace = time.Hour

// sweepOrphanTemps removes stale `<id>.json.tmp-*` files left behind by
// crashes mid-persist. Called at registry construction and before
// RestoreAll scans.
func (r *Registry) sweepOrphanTemps() {
	entries, err := os.ReadDir(r.cfg.SnapshotDir)
	if err != nil {
		return
	}
	cutoff := time.Now().Add(-orphanTempGrace)
	for _, e := range entries {
		if e.IsDir() || !strings.Contains(e.Name(), ".json.tmp-") {
			continue
		}
		info, err := e.Info()
		if err != nil || info.ModTime().After(cutoff) {
			continue
		}
		if os.Remove(filepath.Join(r.cfg.SnapshotDir, e.Name())) == nil {
			r.cfg.Logf("service: removed orphaned snapshot temp file %s", e.Name())
		}
	}
}

// deleteSnapshot removes a session's snapshot file, reporting whether
// one existed.
func (r *Registry) deleteSnapshot(id string) bool {
	if r.cfg.SnapshotDir == "" {
		return false
	}
	return os.Remove(r.snapshotPath(id)) == nil
}
