package service

// Session migration: the primitives the cluster router composes into
// shard-to-shard handoff (DESIGN.md §9). Detach quiesces a session and
// returns its snapshot — the same spec + answer-log payload persistence
// uses — and Attach rebuilds one from a snapshot via factory + replay.
// Because replay is deterministic (pipeline.Session.Replay), a detached
// session attached elsewhere resumes with the exact table, model and
// chart state it left with, including answers applied mid-iteration
// (the cancel path folds them into History.Partial).
//
// Detach deliberately does NOT delete the local snapshot file. In the
// shared-snapshot-directory deployment the importer's first persist
// atomically supersedes it; with per-shard directories the stale copy
// is inert as long as the router's single-writer routing holds (a shard
// never serves a session the ring assigns elsewhere). Keeping the file
// means a migration interrupted between export and import loses
// nothing: the session is still durable at its last persisted boundary
// and lazily restorable by whichever shard is asked for it next.

import (
	"errors"
	"fmt"
	"os"
	"time"
)

// Detach removes a session from this registry and returns its snapshot
// for transfer to another registry. A live session is quiesced first —
// cancelled, waited for, its partial answers folded into the history —
// so the snapshot carries every acknowledged answer, not just the last
// persisted boundary. A session known only on disk is handed over as
// its persisted snapshot. The id is unknown here afterwards (until a
// lazy restore resurrects the on-disk copy; see the package comment).
func (r *Registry) Detach(id string) (Snapshot, error) {
	if !validSessionID(id) {
		return Snapshot{}, ErrNotFound
	}
	release := r.lockID(id)
	defer release()

	r.mu.Lock()
	s, ok := r.sessions[id]
	r.mu.Unlock()
	if !ok {
		// Disk-only session: hand over the last persisted boundary.
		snap, err := r.readDiskSnapshot(id)
		if err != nil {
			return Snapshot{}, err
		}
		obsSessionsDetached.Inc()
		r.cfg.Logf("service: session %s detached (snapshot only)", id)
		return snap, nil
	}

	// Quiesce exactly like an eviction: mark closed (blocks new
	// iterations and bars the zombie-persist path), cancel, wait.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Snapshot{}, ErrClosed
	}
	s.closed = true
	done := s.iterDone
	s.mu.Unlock()
	s.cancel()
	wedged := false
	if done != nil {
		select {
		case <-done:
		case <-r.cfg.teardownAfter(r.cfg.TeardownTimeout):
			// The iteration ignored cancellation; the pipeline may still
			// be mutating, so its history is unsafe to read.
			wedged = true
		}
	}
	r.mu.Lock()
	delete(r.sessions, id)
	obsSessionsLive.Set(int64(len(r.sessions)))
	r.mu.Unlock()

	if wedged {
		r.cfg.Logf("service: session %s iteration did not stop within %v during detach; handing over last persisted boundary",
			id, r.cfg.TeardownTimeout)
		snap, err := r.readDiskSnapshot(id)
		if err != nil {
			return Snapshot{}, fmt.Errorf("service: detach %s: wedged iteration and no durable snapshot: %w", id, err)
		}
		obsSessionsDetached.Inc()
		return snap, nil
	}

	snap := Snapshot{
		Version:     SnapshotVersion,
		ID:          id,
		Spec:        s.spec,
		SavedAtUnix: time.Now().Unix(),
		History:     s.ps.History(),
	}
	obsSessionsDetached.Inc()
	r.cfg.Logf("service: session %s detached (%d iterations, %d answers)",
		id, len(snap.History.Iterations), snap.History.NumAnswers())
	return snap, nil
}

// readDiskSnapshot loads and validates a session's persisted snapshot.
func (r *Registry) readDiskSnapshot(id string) (Snapshot, error) {
	if r.cfg.SnapshotDir == "" {
		return Snapshot{}, ErrNotFound
	}
	snap, err := ReadSnapshotFile(r.snapshotPath(id))
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			r.cfg.Logf("service: detach %s: %v", id, err)
		}
		return Snapshot{}, ErrNotFound
	}
	if snap.ID != id {
		r.cfg.Logf("service: detach %s: snapshot claims id %s", id, snap.ID)
		return Snapshot{}, ErrNotFound
	}
	return snap, nil
}

// Attach registers a session rebuilt from a snapshot: factory(spec),
// then deterministic replay of the answer log — the import half of a
// migration. It fails with ErrExists if the id is already live here,
// ErrBusy at the capacity cap, and persists the session locally on
// success so the new owner is immediately durable.
func (r *Registry) Attach(snap Snapshot) error {
	id := snap.ID
	if !validSessionID(id) {
		return fmt.Errorf("service: attach: invalid session id %q", id)
	}
	if snap.Version <= 0 || snap.Version > SnapshotVersion {
		return fmt.Errorf("service: attach %s: unsupported snapshot version %d (supported ≤ %d)",
			id, snap.Version, SnapshotVersion)
	}
	release := r.lockID(id)
	defer release()

	r.mu.Lock()
	_, live := r.sessions[id]
	r.mu.Unlock()
	if live {
		return ErrExists
	}
	if err := r.reserveSlot(); err != nil {
		return err
	}
	ps, auto, err := r.cfg.Factory(snap.Spec)
	if err == nil {
		err = ps.Replay(snap.History)
	}
	if err != nil {
		r.releaseSlot()
		return fmt.Errorf("service: attach session %s: %w", id, err)
	}
	s := r.wrap(id, snap.Spec, ps, auto)
	r.mu.Lock()
	r.building--
	if r.closed {
		r.mu.Unlock()
		s.cancel()
		return ErrClosed
	}
	r.sessions[id] = s
	obsSessionsLive.Set(int64(len(r.sessions)))
	r.mu.Unlock()
	obsSessionsAttached.Inc()
	_ = r.persistSession(s)
	r.cfg.Logf("service: session %s attached (%d iterations, %d answers replayed)",
		id, len(snap.History.Iterations), snap.History.NumAnswers())
	return nil
}
