package service

// Observability wiring for the multi-tenant session layer (catalog in
// DESIGN.md §5): lifecycle counters, backpressure rejections, the
// worker-pool queue, and snapshot persistence costs. Everything here is
// observational; with obs disabled each site costs one gated atomic
// load.

import "visclean/internal/obs"

var (
	obsSessionsLive = obs.Default.Gauge("visclean_service_sessions_live",
		"Sessions currently resident in memory.")
	obsSessionsCreated = obs.Default.Counter("visclean_service_sessions_created_total",
		"Sessions created.")
	obsSessionsRestored = obs.Default.Counter("visclean_service_sessions_restored_total",
		"Sessions restored from snapshots (lazily or at startup).")
	obsSessionsEvicted = obs.Default.Counter("visclean_service_sessions_evicted_total",
		"Idle sessions evicted to disk by the TTL sweeper.")
	obsSessionsClosed = obs.Default.Counter("visclean_service_sessions_closed_total",
		"Sessions explicitly closed by clients.")

	obsBusyRejections = obs.Default.Counter("visclean_service_busy_total",
		"Creates/restores rejected at the max-sessions cap (ErrBusy).")
	obsOverloadRejections = obs.Default.Counter("visclean_service_overload_total",
		"Iterations rejected because the worker-pool queue was full (ErrOverloaded).")
	obsAnswerTimeouts = obs.Default.Counter("visclean_service_answer_timeouts_total",
		"Parked questions that timed out waiting for a client answer.")

	obsQueueDepth = obs.Default.Gauge("visclean_service_queue_depth",
		"Iterations queued for a pool worker right now.")
	obsWorkersBusy = obs.Default.Gauge("visclean_service_workers_busy",
		"Pool workers currently executing an iteration.")
	obsIterationSeconds = obs.Default.Histogram("visclean_service_iteration_seconds",
		"Wall time of scheduled iterations, including parked question waits.", obs.TimeBuckets)

	obsSessionsDetached = obs.Default.Counter("visclean_service_sessions_detached_total",
		"Sessions exported for migration to another shard (Detach).")
	obsSessionsAttached = obs.Default.Counter("visclean_service_sessions_attached_total",
		"Sessions imported from another shard and rebuilt by replay (Attach).")

	obsPersistFailures = obs.Default.Counter("visclean_persist_failures_total",
		"Session snapshot persists that failed after retries; eviction keeps such sessions live and retries at the next sweep.")

	obsSnapshotSeconds = obs.Default.Histogram("visclean_service_snapshot_seconds",
		"Session snapshot persistence latency.", obs.TimeBuckets)
	obsSnapshotBytes = obs.Default.Histogram("visclean_service_snapshot_bytes",
		"Session snapshot sizes on disk.", obs.SizeBuckets)
)
