package service

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"visclean/internal/vis"
)

// testSpec is a small, fast session: D1 at scale 0.004 is ~55 entities.
func testSpec(seed int64, auto bool) Spec {
	return Spec{Dataset: "D1", Scale: 0.004, Seed: seed, Auto: auto}
}

// newTestRegistry builds a registry whose sweeper never fires on its own
// (tests drive Sweep explicitly) and that logs through the test.
func newTestRegistry(t *testing.T, mutate func(*Config)) *Registry {
	t.Helper()
	cfg := Config{
		MaxSessions:   16,
		Workers:       4,
		SweepInterval: time.Hour,
		Logf:          t.Logf,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	reg := NewRegistry(cfg)
	t.Cleanup(reg.Shutdown)
	return reg
}

// iterateRetry schedules an iteration, retrying briefly while the worker
// queue rejects with backpressure.
func iterateRetry(reg *Registry, id string) error {
	deadline := time.Now().Add(60 * time.Second)
	for {
		err := reg.Iterate(id)
		if !errors.Is(err, ErrOverloaded) || time.Now().After(deadline) {
			return err
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitIdle polls until the session has no iteration in flight.
func waitIdle(reg *Registry, id string) (State, error) {
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := reg.State(id)
		if err != nil {
			return st, err
		}
		if !st.Running {
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, errors.New("iteration never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitQuestion polls until the session parks a question.
func waitQuestion(reg *Registry, id string) (State, error) {
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := reg.State(id)
		if err != nil {
			return st, err
		}
		if st.Question != nil {
			return st, nil
		}
		if !st.Running {
			return st, errors.New("iteration finished without asking anything")
		}
		if time.Now().After(deadline) {
			return st, errors.New("no question ever parked")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestConcurrentSessions is the headline multi-tenancy test: 8 client
// goroutines, each owning its own auto-answered session, progress
// independently through answered iterations over a 4-worker pool. Run
// with -race.
func TestConcurrentSessions(t *testing.T) {
	reg := newTestRegistry(t, nil)
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients*4)
	fail := func(err error) { errs <- err }
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, err := reg.Create(testSpec(int64(i+1), true))
			if err != nil {
				fail(err)
				return
			}
			for want := 1; want <= 2; want++ {
				if err := iterateRetry(reg, id); err != nil {
					fail(err)
					return
				}
				st, err := waitIdle(reg, id)
				if err != nil {
					fail(err)
					return
				}
				if st.Err != "" {
					fail(errors.New("session " + id + " iteration error: " + st.Err))
					return
				}
				if st.Report != nil && st.Report.Exhausted {
					break
				}
				if st.Iteration != want {
					fail(errors.New("session " + id + " did not advance"))
					return
				}
				if st.Report == nil || st.Report.Questions() == 0 {
					fail(errors.New("session " + id + " answered no questions"))
					return
				}
			}
			if err := reg.Close(id); err != nil {
				fail(err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := reg.Len(); n != 0 {
		t.Fatalf("registry still holds %d sessions after all clients closed", n)
	}
}

// TestCapacityCap verifies the hard max-sessions rejection.
func TestCapacityCap(t *testing.T) {
	reg := newTestRegistry(t, func(c *Config) { c.MaxSessions = 2 })
	a, err := reg.Create(testSpec(1, false))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create(testSpec(2, false)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create(testSpec(3, false)); !errors.Is(err, ErrBusy) {
		t.Fatalf("create beyond cap: err = %v, want ErrBusy", err)
	}
	// Closing frees the slot.
	if err := reg.Close(a); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create(testSpec(3, false)); err != nil {
		t.Fatalf("create after close: %v", err)
	}
}

// TestBackpressure fills the one-worker, one-slot queue: a parked
// interactive session occupies the worker, a second session's iteration
// queues, and a third is rejected with ErrOverloaded.
func TestBackpressure(t *testing.T) {
	reg := newTestRegistry(t, func(c *Config) {
		c.Workers = 1
		c.QueueDepth = 1
	})
	parked, err := reg.Create(testSpec(1, false))
	if err != nil {
		t.Fatal(err)
	}
	queuedA, err := reg.Create(testSpec(2, true))
	if err != nil {
		t.Fatal(err)
	}
	queuedB, err := reg.Create(testSpec(3, true))
	if err != nil {
		t.Fatal(err)
	}

	if err := reg.Iterate(parked); err != nil {
		t.Fatal(err)
	}
	// Once a question is parked the iteration is definitely ON the
	// worker, so the queue is empty and its single slot is free.
	if _, err := waitQuestion(reg, parked); err != nil {
		t.Fatal(err)
	}
	if err := reg.Iterate(queuedA); err != nil {
		t.Fatalf("queueing one iteration should succeed: %v", err)
	}
	if err := reg.Iterate(queuedB); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("iterate with full queue: err = %v, want ErrOverloaded", err)
	}
	// The rejected session must be schedulable again, not stuck
	// "running".
	st, err := reg.State(queuedB)
	if err != nil {
		t.Fatal(err)
	}
	if st.Running {
		t.Fatal("rejected iteration left the session marked running")
	}

	// Drain: answer the parked session's questions as skips until its
	// iteration ends, freeing the worker for the queued one.
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := reg.State(parked)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Running {
			break
		}
		if st.Question != nil {
			if err := reg.Answer(parked, Answer{Skip: true}); err != nil && !errors.Is(err, ErrNoQuestion) {
				t.Fatal(err)
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("parked iteration never drained")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st, err := waitIdle(reg, queuedA); err != nil || st.Iteration == 0 {
		t.Fatalf("queued iteration never ran: state=%+v err=%v", st, err)
	}
}

// TestAnswerTimeoutUnparks proves an abandoned client cannot wedge a
// worker: every question times out as a skip and the iteration still
// completes.
func TestAnswerTimeoutUnparks(t *testing.T) {
	reg := newTestRegistry(t, func(c *Config) {
		c.Workers = 1
		c.AnswerTimeout = 20 * time.Millisecond
	})
	id, err := reg.Create(testSpec(1, false))
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Iterate(id); err != nil {
		t.Fatal(err)
	}
	st, err := waitIdle(reg, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Err != "" {
		t.Fatalf("iteration error: %s", st.Err)
	}
	if st.Report == nil || st.Report.Unanswered != st.Report.Questions() {
		t.Fatalf("expected every question to time out as unanswered, report=%+v", st.Report)
	}
	// A late answer must hit ErrNoQuestion, not a dead channel.
	if err := reg.Answer(id, Answer{Yes: true}); !errors.Is(err, ErrNoQuestion) {
		t.Fatalf("late answer: err = %v, want ErrNoQuestion", err)
	}
}

// TestEvictionUnderLoad parks an interactive session on a question, lets
// it go idle and sweeps: the evictor must snapshot it to disk, unblock
// the parked iteration (freeing the sole worker) and drop it from
// memory; a later request restores it lazily from the snapshot.
func TestEvictionUnderLoad(t *testing.T) {
	dir := t.TempDir()
	reg := newTestRegistry(t, func(c *Config) {
		c.Workers = 1
		c.IdleTTL = 50 * time.Millisecond
		c.SnapshotDir = dir
	})
	id, err := reg.Create(testSpec(1, false))
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Iterate(id); err != nil {
		t.Fatal(err)
	}
	if _, err := waitQuestion(reg, id); err != nil {
		t.Fatal(err)
	}

	// Go idle past the TTL (polling State would keep it alive).
	time.Sleep(120 * time.Millisecond)
	if n := reg.Sweep(); n != 1 {
		t.Fatalf("sweep evicted %d sessions, want 1", n)
	}
	if reg.Len() != 0 {
		t.Fatalf("evicted session still live: Len=%d", reg.Len())
	}
	if _, err := ReadSnapshotFile(reg.snapshotPath(id)); err != nil {
		t.Fatalf("eviction left no readable snapshot: %v", err)
	}

	// The sole worker must be free again: a fresh auto session completes
	// an iteration.
	other, err := reg.Create(testSpec(2, true))
	if err != nil {
		t.Fatal(err)
	}
	if err := iterateRetry(reg, other); err != nil {
		t.Fatal(err)
	}
	if st, err := waitIdle(reg, other); err != nil || st.Iteration == 0 {
		t.Fatalf("worker still blocked after eviction: state=%+v err=%v", st, err)
	}

	// Lazy restore: asking for the evicted id brings it back.
	st, err := reg.State(id)
	if err != nil {
		t.Fatalf("restore after eviction: %v", err)
	}
	if st.ID != id || st.Running || st.Question != nil {
		t.Fatalf("restored state = %+v", st)
	}
	if reg.Len() != 2 {
		t.Fatalf("Len after restore = %d, want 2", reg.Len())
	}
}

// TestRestartRoundTrip is the kill/restart acceptance test: a session
// iterated under one registry is restored by a second registry pointed
// at the same snapshot directory, and its replayed state matches the
// live one — same iteration count and same distance-to-truth.
func TestRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	mutate := func(c *Config) { c.SnapshotDir = dir }

	reg1 := NewRegistry(Config{
		MaxSessions: 16, Workers: 4, SweepInterval: time.Hour,
		SnapshotDir: dir, Logf: t.Logf,
	})
	id, err := reg1.Create(testSpec(4, true))
	if err != nil {
		t.Fatal(err)
	}
	var before State
	for i := 0; i < 2; i++ {
		if err := iterateRetry(reg1, id); err != nil {
			t.Fatal(err)
		}
		before, err = waitIdle(reg1, id)
		if err != nil {
			t.Fatal(err)
		}
		if before.Err != "" {
			t.Fatalf("iteration error: %s", before.Err)
		}
	}
	if before.Iteration == 0 {
		t.Fatal("session never progressed before the kill")
	}
	reg1.Shutdown() // the "kill": persists and drops everything

	reg2 := newTestRegistry(t, mutate)
	if n := reg2.RestoreAll(); n != 1 {
		t.Fatalf("RestoreAll restored %d sessions, want 1", n)
	}
	after, err := reg2.State(id)
	if err != nil {
		t.Fatal(err)
	}
	if after.Iteration != before.Iteration {
		t.Fatalf("iteration after restart = %d, want %d", after.Iteration, before.Iteration)
	}
	if math.Abs(after.DistToTruth-before.DistToTruth) > 1e-12 {
		t.Fatalf("dist to truth after restart = %v, want %v", after.DistToTruth, before.DistToTruth)
	}
	chartEqual(t, before.Vis, after.Vis)

	// And the restored session keeps working.
	if err := iterateRetry(reg2, id); err != nil {
		t.Fatal(err)
	}
	st, err := waitIdle(reg2, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Err != "" {
		t.Fatalf("post-restart iteration error: %s", st.Err)
	}
}

func chartEqual(t *testing.T, a, b *vis.Data) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatalf("one chart is nil: %v vs %v", a == nil, b == nil)
	}
	if a == nil {
		return
	}
	if len(a.Points) != len(b.Points) {
		t.Fatalf("chart point count: %d vs %d", len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		if a.Points[i].Label != b.Points[i].Label {
			t.Fatalf("chart label %d: %q vs %q", i, a.Points[i].Label, b.Points[i].Label)
		}
		if math.Abs(a.Points[i].Y-b.Points[i].Y) > 1e-12 {
			t.Fatalf("chart value %d: %v vs %v", i, a.Points[i].Y, b.Points[i].Y)
		}
	}
}

// TestCloseDeletesSnapshot distinguishes close (user done, snapshot
// deleted) from eviction (snapshot kept).
func TestCloseDeletesSnapshot(t *testing.T) {
	dir := t.TempDir()
	reg := newTestRegistry(t, func(c *Config) { c.SnapshotDir = dir })
	id, err := reg.Create(testSpec(1, false))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshotFile(reg.snapshotPath(id)); err != nil {
		t.Fatalf("create did not persist: %v", err)
	}
	if err := reg.Close(id); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshotFile(reg.snapshotPath(id)); err == nil {
		t.Fatal("close left the snapshot behind")
	}
	if _, err := reg.State(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("state after close: err = %v, want ErrNotFound", err)
	}
}
