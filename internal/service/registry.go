package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"visclean/internal/pipeline"
)

// Registry is the multi-tenant session manager: it owns every live
// session, enforces the capacity cap, schedules iterations on the
// bounded worker pool, evicts idle sessions to disk and restores them
// on demand.
type Registry struct {
	cfg  Config
	pool *pool

	mu       sync.Mutex
	sessions map[string]*Session
	// building counts sessions being constructed or restored, so the
	// capacity check covers in-flight creates too.
	building int
	closed   bool

	stopSweep   chan struct{}
	sweeperDone chan struct{}
}

// NewRegistry builds a registry and starts its evictor. Call Shutdown
// to stop it and persist every live session.
func NewRegistry(cfg Config) *Registry {
	r := &Registry{
		cfg:         cfg.withDefaults(),
		sessions:    make(map[string]*Session),
		stopSweep:   make(chan struct{}),
		sweeperDone: make(chan struct{}),
	}
	r.pool = newPool(r.cfg.Workers, r.cfg.QueueDepth)
	go r.sweeper()
	return r
}

func newSessionID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unheard of; fall back to a timestamp.
		return fmt.Sprintf("s%x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// validSessionID guards snapshot paths against traversal: generated ids
// are hex, and restore must never turn a request path segment into an
// arbitrary filesystem path.
func validSessionID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for _, c := range id {
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' || c == '_'
		if !ok {
			return false
		}
	}
	return true
}

// reserveSlot claims one unit of session capacity.
func (r *Registry) reserveSlot() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	if len(r.sessions)+r.building >= r.cfg.MaxSessions {
		obsBusyRejections.Inc()
		return ErrBusy
	}
	r.building++
	return nil
}

func (r *Registry) releaseSlot() {
	r.mu.Lock()
	r.building--
	r.mu.Unlock()
}

// wrap turns a built pipeline session into a managed one and primes its
// cached view state.
func (r *Registry) wrap(id string, spec Spec, ps *pipeline.Session, auto pipeline.User) *Session {
	ps.SetTraceLabel(id)
	ctx, cancel := context.WithCancel(context.Background())
	s := &Session{
		id:         id,
		spec:       spec,
		reg:        r,
		ctx:        ctx,
		cancel:     cancel,
		ps:         ps,
		autoUser:   auto,
		lastActive: time.Now(),
	}
	s.refreshCache()
	return s
}

// Create builds a new session from the spec and registers it. It fails
// with ErrBusy at the capacity cap. The spec is normalized first; the
// normalized form is what snapshots store.
func (r *Registry) Create(spec Spec) (string, error) {
	spec = spec.WithDefaults()
	if err := r.reserveSlot(); err != nil {
		return "", err
	}
	ps, auto, err := r.cfg.Factory(spec)
	if err != nil {
		r.releaseSlot()
		return "", err
	}
	id := newSessionID()
	s := r.wrap(id, spec, ps, auto)

	r.mu.Lock()
	r.building--
	if r.closed {
		r.mu.Unlock()
		s.cancel()
		return "", ErrClosed
	}
	r.sessions[id] = s
	obsSessionsLive.Set(int64(len(r.sessions)))
	r.mu.Unlock()
	obsSessionsCreated.Inc()

	// Persist immediately so even a never-iterated session survives a
	// restart.
	r.persistSession(s)
	r.cfg.Logf("service: session %s created (%s scale=%g seed=%d auto=%v)",
		id, spec.Dataset, spec.Scale, spec.Seed, spec.Auto)
	return id, nil
}

// get returns a live session, lazily restoring it from its snapshot if
// the id is known only on disk.
func (r *Registry) get(id string) (*Session, error) {
	r.mu.Lock()
	s, ok := r.sessions[id]
	r.mu.Unlock()
	if ok {
		return s, nil
	}
	return r.restore(id)
}

// restore rebuilds a session from its snapshot: factory(spec) then
// replay of the answer log. Corrupt or unreadable snapshots are
// reported as ErrNotFound to the caller after logging — one bad file
// must never take the server down.
func (r *Registry) restore(id string) (*Session, error) {
	if r.cfg.SnapshotDir == "" || !validSessionID(id) {
		return nil, ErrNotFound
	}
	snap, err := ReadSnapshotFile(r.snapshotPath(id))
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			r.cfg.Logf("service: skipping snapshot for %s: %v", id, err)
		}
		return nil, ErrNotFound
	}
	if snap.ID != id {
		r.cfg.Logf("service: snapshot id mismatch: file %s claims %s", id, snap.ID)
		return nil, ErrNotFound
	}
	if err := r.reserveSlot(); err != nil {
		return nil, err
	}
	ps, auto, err := r.cfg.Factory(snap.Spec)
	if err != nil {
		r.releaseSlot()
		r.cfg.Logf("service: rebuild session %s: %v", id, err)
		return nil, ErrNotFound
	}
	if err := ps.Replay(snap.History); err != nil {
		r.releaseSlot()
		r.cfg.Logf("service: replay session %s: %v", id, err)
		return nil, ErrNotFound
	}
	s := r.wrap(id, snap.Spec, ps, auto)

	r.mu.Lock()
	r.building--
	if r.closed {
		r.mu.Unlock()
		s.cancel()
		return nil, ErrClosed
	}
	if existing, ok := r.sessions[id]; ok {
		// A concurrent restore won the race; use its session.
		r.mu.Unlock()
		s.cancel()
		return existing, nil
	}
	r.sessions[id] = s
	obsSessionsLive.Set(int64(len(r.sessions)))
	r.mu.Unlock()
	obsSessionsRestored.Inc()
	r.cfg.Logf("service: session %s restored from snapshot (%d iterations, %d answers replayed)",
		id, len(snap.History.Iterations), snap.History.NumAnswers())
	return s, nil
}

// RestoreAll eagerly restores every snapshot in the snapshot directory,
// up to the capacity cap, skipping corrupt files. It returns how many
// sessions were restored.
func (r *Registry) RestoreAll() int {
	if r.cfg.SnapshotDir == "" {
		return 0
	}
	entries, err := os.ReadDir(r.cfg.SnapshotDir)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			r.cfg.Logf("service: restore scan: %v", err)
		}
		return 0
	}
	restored := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		id := strings.TrimSuffix(name, ".json")
		if _, err := r.get(id); err == nil {
			restored++
		}
	}
	return restored
}

// State returns a session's current view state, touching its idle clock
// (an actively polled session is a live session).
func (r *Registry) State(id string) (State, error) {
	s, err := r.get(id)
	if err != nil {
		return State{}, err
	}
	s.touch()
	return s.State(), nil
}

// Iterate schedules one cleaning iteration on the worker pool. It fails
// with ErrIterationRunning if one is already in flight for this session
// and with ErrOverloaded when the pool queue is full (backpressure).
func (r *Registry) Iterate(id string) error {
	s, err := r.get(id)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.running {
		s.mu.Unlock()
		return ErrIterationRunning
	}
	s.running = true
	s.errMsg = ""
	s.cqg = nil
	s.iterDone = make(chan struct{})
	s.lastActive = time.Now()
	s.mu.Unlock()

	if !r.pool.trySubmit(s.runIteration) {
		s.mu.Lock()
		s.running = false
		done := s.iterDone
		s.iterDone = nil
		s.mu.Unlock()
		if done != nil {
			close(done) // a teardown may already be waiting on it
		}
		obsOverloadRejections.Inc()
		return ErrOverloaded
	}
	return nil
}

// Answer resolves the session's pending question.
func (r *Registry) Answer(id string, a Answer) error {
	s, err := r.get(id)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.pending == nil {
		s.mu.Unlock()
		return ErrNoQuestion
	}
	reply := s.pending.reply
	s.pending = nil
	s.lastActive = time.Now()
	s.mu.Unlock()
	reply <- a // buffered(1), sole sender per question: never blocks
	return nil
}

// Close terminates a session: its in-flight iteration is cancelled, its
// parked question unparked, and its snapshot deleted — close is the
// "user is done" verb, unlike eviction which preserves the snapshot for
// later resumption.
func (r *Registry) Close(id string) error {
	r.mu.Lock()
	s, ok := r.sessions[id]
	r.mu.Unlock()
	if ok {
		r.teardown(s, false)
		r.deleteSnapshot(id)
		obsSessionsClosed.Inc()
		r.cfg.Logf("service: session %s closed", id)
		return nil
	}
	if validSessionID(id) && r.deleteSnapshot(id) {
		obsSessionsClosed.Inc()
		r.cfg.Logf("service: session %s closed (snapshot only)", id)
		return nil
	}
	return ErrNotFound
}

// teardown cancels a session, waits for its iteration to stop,
// optionally persists it, and removes it from the registry.
func (r *Registry) teardown(s *Session, persist bool) {
	r.teardownAll([]*Session{s}, persist)
}

// teardownAll tears down a batch: every victim is cancelled FIRST, then
// each is waited on. Cancelling up front matters when victims share the
// worker pool — a victim whose iteration is queued behind another
// victim's parked iteration only finishes once that one is cancelled
// too, so cancel-then-wait per session could stall the whole sweep.
func (r *Registry) teardownAll(victims []*Session, persist bool) {
	var started []*Session
	for _, s := range victims {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			continue
		}
		s.closed = true
		s.mu.Unlock()
		s.cancel()
		started = append(started, s)
	}
	for _, s := range started {
		s.mu.Lock()
		done := s.iterDone
		s.mu.Unlock()
		keep := persist
		if done != nil {
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				// The iteration ignored cancellation (stuck user code).
				// The pipeline may still be mutating, so reading its
				// history is unsafe — drop the session without a snapshot.
				r.cfg.Logf("service: session %s iteration did not stop within 30s; dropping without snapshot", s.id)
				keep = false
			}
		}
		if keep {
			r.persistSession(s)
		}
		r.mu.Lock()
		delete(r.sessions, s.id)
		obsSessionsLive.Set(int64(len(r.sessions)))
		r.mu.Unlock()
	}
}

// SessionInfo summarizes one live session.
type SessionInfo struct {
	ID         string    `json:"id"`
	Spec       Spec      `json:"spec"`
	Iteration  int       `json:"iteration"`
	Running    bool      `json:"running"`
	LastActive time.Time `json:"lastActive"`
}

// List reports every live session, most recently active first.
func (r *Registry) List() []SessionInfo {
	r.mu.Lock()
	sessions := make([]*Session, 0, len(r.sessions))
	for _, s := range r.sessions {
		sessions = append(sessions, s)
	}
	r.mu.Unlock()
	out := make([]SessionInfo, 0, len(sessions))
	for _, s := range sessions {
		s.mu.Lock()
		out = append(out, SessionInfo{
			ID:         s.id,
			Spec:       s.spec,
			Iteration:  s.iterCount,
			Running:    s.running,
			LastActive: s.lastActive,
		})
		s.mu.Unlock()
	}
	sortInfos(out)
	return out
}

func sortInfos(infos []SessionInfo) {
	for i := 1; i < len(infos); i++ {
		for j := i; j > 0 && infos[j].LastActive.After(infos[j-1].LastActive); j-- {
			infos[j], infos[j-1] = infos[j-1], infos[j]
		}
	}
}

// Len reports the number of live sessions.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

// Sweep evicts every session idle past the TTL: the session is
// cancelled (which unparks any pending question and aborts the
// iteration at its next question boundary), snapshotted to disk and
// dropped from memory. A later request for its id restores it. Returns
// the number of sessions evicted.
func (r *Registry) Sweep() int {
	cutoff := time.Now().Add(-r.cfg.IdleTTL)
	r.mu.Lock()
	var victims []*Session
	for _, s := range r.sessions {
		s.mu.Lock()
		idle := !s.closed && s.lastActive.Before(cutoff)
		s.mu.Unlock()
		if idle {
			victims = append(victims, s)
		}
	}
	r.mu.Unlock()
	for _, s := range victims {
		r.cfg.Logf("service: evicting idle session %s", s.id)
		r.teardown(s, true)
		obsSessionsEvicted.Inc()
	}
	return len(victims)
}

func (r *Registry) sweeper() {
	defer close(r.sweeperDone)
	ticker := time.NewTicker(r.cfg.SweepInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			r.Sweep()
		case <-r.stopSweep:
			return
		}
	}
}

// Shutdown stops the evictor, persists and tears down every live
// session, and drains the worker pool. The registry is unusable
// afterwards; a new one pointed at the same SnapshotDir resumes every
// session.
func (r *Registry) Shutdown() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	sessions := make([]*Session, 0, len(r.sessions))
	for _, s := range r.sessions {
		sessions = append(sessions, s)
	}
	r.mu.Unlock()

	close(r.stopSweep)
	<-r.sweeperDone
	for _, s := range sessions {
		r.teardown(s, true)
	}
	r.pool.shutdown()
}
