package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"visclean/internal/artifact"
	"visclean/internal/fault"
	"visclean/internal/pipeline"
	"visclean/internal/vql"
)

// Registry is the multi-tenant session manager: it owns every live
// session, enforces the capacity cap, schedules iterations on the
// bounded worker pool, evicts idle sessions to disk and restores them
// on demand.
type Registry struct {
	cfg  Config
	pool *pool
	// artifacts is the registry-wide shared artifact cache (DESIGN.md
	// §12): sessions over identical dataset content share their frozen
	// setup structures through it. Nil when Config.NoArtifactCache.
	artifacts *artifact.Cache

	mu       sync.Mutex
	sessions map[string]*Session
	// building counts sessions being constructed or restored, so the
	// capacity check covers in-flight creates too.
	building int
	closed   bool
	// idLocks serializes restore and close per session id (entries are
	// refcounted and removed when idle). Without it, Close on a
	// disk-only session can delete the snapshot while a concurrent
	// restore has already read it — the restore then re-registers and
	// later re-persists the session, resurrecting a closed id.
	idLocks map[string]*idLock

	stopSweep   chan struct{}
	sweeperDone chan struct{}
}

// NewRegistry builds a registry and starts its evictor. Call Shutdown
// to stop it and persist every live session.
func NewRegistry(cfg Config) *Registry {
	// Whether the caller injected a Factory must be decided before
	// withDefaults fills the field: only the default factory is safe to
	// swap for the cache-threading one.
	userFactory := cfg.Factory != nil
	r := &Registry{
		cfg:         cfg.withDefaults(),
		sessions:    make(map[string]*Session),
		idLocks:     make(map[string]*idLock),
		stopSweep:   make(chan struct{}),
		sweeperDone: make(chan struct{}),
	}
	if !r.cfg.NoArtifactCache {
		budget := r.cfg.ArtifactBudget
		if budget < 0 {
			budget = 0 // negative Config budget means unlimited
		}
		r.artifacts = artifact.New(budget)
		if !userFactory {
			r.cfg.Factory = CachedFactory(r.artifacts)
		}
	}
	r.pool = newPool(r.cfg.Workers, r.cfg.QueueDepth)
	if r.cfg.SnapshotDir != "" {
		r.sweepOrphanTemps()
	}
	go r.sweeper()
	return r
}

func newSessionID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unheard of; fall back to a timestamp.
		return fmt.Sprintf("s%x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// validSessionID guards snapshot paths against traversal: generated ids
// are hex, and restore must never turn a request path segment into an
// arbitrary filesystem path.
func validSessionID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for _, c := range id {
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' || c == '_'
		if !ok {
			return false
		}
	}
	return true
}

// idLock is one per-id restore/close mutex, refcounted so the map entry
// disappears once nobody holds or waits on it.
type idLock struct {
	ref int
	mu  sync.Mutex
}

// lockID acquires the per-id lock, returning its release func. Lock
// order: r.mu is only ever held briefly inside lockID/release, never
// while blocking on an idLock, so the two levels cannot deadlock.
func (r *Registry) lockID(id string) (release func()) {
	r.mu.Lock()
	l := r.idLocks[id]
	if l == nil {
		l = &idLock{}
		r.idLocks[id] = l
	}
	l.ref++
	r.mu.Unlock()
	l.mu.Lock()
	return func() {
		l.mu.Unlock()
		r.mu.Lock()
		if l.ref--; l.ref == 0 {
			delete(r.idLocks, id)
		}
		r.mu.Unlock()
	}
}

// reserveSlot claims one unit of session capacity.
func (r *Registry) reserveSlot() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	if len(r.sessions)+r.building >= r.cfg.MaxSessions {
		obsBusyRejections.Inc()
		return ErrBusy
	}
	r.building++
	return nil
}

func (r *Registry) releaseSlot() {
	r.mu.Lock()
	r.building--
	r.mu.Unlock()
}

// wrap turns a built pipeline session into a managed one and primes its
// cached view state.
func (r *Registry) wrap(id string, spec Spec, ps *pipeline.Session, auto pipeline.User) *Session {
	ps.SetTraceLabel(id)
	ctx, cancel := context.WithCancel(context.Background())
	s := &Session{
		id:         id,
		spec:       spec,
		reg:        r,
		ctx:        ctx,
		cancel:     cancel,
		ps:         ps,
		autoUser:   auto,
		lastActive: time.Now(),
	}
	s.refreshCache()
	return s
}

// Create builds a new session from the spec and registers it. It fails
// with ErrBusy at the capacity cap. The spec is normalized first; the
// normalized form is what snapshots store.
func (r *Registry) Create(spec Spec) (string, error) {
	// Generated ids are 16 hex chars of crypto/rand output: no duplicate
	// check needed, and no per-id lock either.
	return r.create(newSessionID(), spec)
}

// CreateWithID builds a new session under a caller-chosen id. The
// cluster router uses it so a session's id (and therefore its
// consistent-hash placement) is decided before the shard is picked. It
// fails with ErrExists when the id already names a live session or an
// on-disk snapshot.
func (r *Registry) CreateWithID(id string, spec Spec) (string, error) {
	if !validSessionID(id) {
		return "", fmt.Errorf("service: invalid session id %q", id)
	}
	release := r.lockID(id)
	defer release()
	r.mu.Lock()
	_, live := r.sessions[id]
	r.mu.Unlock()
	if live {
		return "", ErrExists
	}
	if r.cfg.SnapshotDir != "" {
		if _, err := os.Stat(r.snapshotPath(id)); err == nil {
			return "", ErrExists
		}
	}
	return r.create(id, spec)
}

func (r *Registry) create(id string, spec Spec) (string, error) {
	spec = spec.WithDefaults()
	if err := r.reserveSlot(); err != nil {
		return "", err
	}
	ps, auto, err := r.cfg.Factory(spec)
	if err != nil {
		r.releaseSlot()
		return "", err
	}
	s := r.wrap(id, spec, ps, auto)

	r.mu.Lock()
	r.building--
	if r.closed {
		r.mu.Unlock()
		s.cancel()
		s.ps.Close()
		return "", ErrClosed
	}
	r.sessions[id] = s
	obsSessionsLive.Set(int64(len(r.sessions)))
	r.mu.Unlock()
	obsSessionsCreated.Inc()

	// Persist immediately so even a never-iterated session survives a
	// restart. A failed persist is logged and metered inside; the
	// session is still live, and the next successful persist (iteration
	// end or eviction) establishes durability.
	_ = r.persistSession(s)
	r.cfg.Logf("service: session %s created (%s scale=%g seed=%d auto=%v)",
		id, spec.Dataset, spec.Scale, spec.Seed, spec.Auto)
	return id, nil
}

// get returns a live session, lazily restoring it from its snapshot if
// the id is known only on disk.
func (r *Registry) get(id string) (*Session, error) {
	r.mu.Lock()
	s, ok := r.sessions[id]
	r.mu.Unlock()
	if ok {
		return s, nil
	}
	return r.restore(id)
}

// restore rebuilds a session from its snapshot: factory(spec) then
// replay of the answer log, all under the per-id lock so a concurrent
// Close cannot delete the snapshot mid-restore (and two restores of the
// same id cannot double-build). Corrupt or unreadable snapshots are
// reported as ErrNotFound to the caller after logging — one bad file
// must never take the server down.
func (r *Registry) restore(id string) (*Session, error) {
	if r.cfg.SnapshotDir == "" || !validSessionID(id) {
		return nil, ErrNotFound
	}
	release := r.lockID(id)
	defer release()
	// A concurrent restore may have won while we waited for the lock.
	r.mu.Lock()
	if s, ok := r.sessions[id]; ok {
		r.mu.Unlock()
		return s, nil
	}
	r.mu.Unlock()

	snap, err := ReadSnapshotFile(r.snapshotPath(id))
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			r.cfg.Logf("service: skipping snapshot for %s: %v", id, err)
		}
		return nil, ErrNotFound
	}
	if snap.ID != id {
		r.cfg.Logf("service: snapshot id mismatch: file %s claims %s", id, snap.ID)
		return nil, ErrNotFound
	}
	if err := r.reserveSlot(); err != nil {
		return nil, err
	}
	// Failpoint service/restore.build sits between the snapshot read
	// and the rebuild: a delay here is the widened race window the
	// close/restore regression test drives.
	if err := fault.Point("service/restore.build"); err == nil {
		var ps *pipeline.Session
		var auto pipeline.User
		ps, auto, err = r.cfg.Factory(snap.Spec)
		if err == nil {
			if rerr := fault.Point("service/restore.replay"); rerr != nil {
				err = rerr
			} else {
				err = ps.Replay(snap.History)
			}
		}
		if err == nil {
			s := r.wrap(id, snap.Spec, ps, auto)
			r.mu.Lock()
			r.building--
			if r.closed {
				r.mu.Unlock()
				s.cancel()
				s.ps.Close()
				return nil, ErrClosed
			}
			r.sessions[id] = s
			obsSessionsLive.Set(int64(len(r.sessions)))
			r.mu.Unlock()
			obsSessionsRestored.Inc()
			r.cfg.Logf("service: session %s restored from snapshot (%d iterations, %d answers replayed)",
				id, len(snap.History.Iterations), snap.History.NumAnswers())
			return s, nil
		}
		if ps != nil {
			// The factory built the session but replay failed: release its
			// artifact-cache handles before discarding it.
			ps.Close()
		}
	}
	r.releaseSlot()
	r.cfg.Logf("service: rebuild session %s: %v", id, err)
	return nil, ErrNotFound
}

// RestoreAll eagerly restores every snapshot in the snapshot directory,
// up to the capacity cap, skipping corrupt files; snapshots beyond the
// cap are left intact on disk for lazy restore once capacity frees up.
// It returns how many sessions were restored.
func (r *Registry) RestoreAll() int {
	if r.cfg.SnapshotDir == "" {
		return 0
	}
	r.sweepOrphanTemps()
	entries, err := os.ReadDir(r.cfg.SnapshotDir)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			r.cfg.Logf("service: restore scan: %v", err)
		}
		return 0
	}
	restored, overCap := 0, 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		id := strings.TrimSuffix(name, ".json")
		switch _, err := r.get(id); {
		case err == nil:
			restored++
		case errors.Is(err, ErrBusy):
			// Not corruption: the cap is full. The snapshot stays on
			// disk and restores lazily when a slot frees.
			overCap++
		}
	}
	if overCap > 0 {
		r.cfg.Logf("service: restore: %d snapshot(s) left on disk (session capacity %d reached)",
			overCap, r.cfg.MaxSessions)
	}
	return restored
}

// State returns a session's current view state, touching its idle clock
// (an actively polled session is a live session).
func (r *Registry) State(id string) (State, error) {
	s, err := r.get(id)
	if err != nil {
		return State{}, err
	}
	s.touch()
	return s.State(), nil
}

// Iterate schedules one cleaning iteration on the worker pool. It fails
// with ErrIterationRunning if one is already in flight for this session
// and with ErrOverloaded when the pool queue is full (backpressure).
func (r *Registry) Iterate(id string) error {
	return r.iterate(id, "")
}

// IterateTagged is Iterate with a request tag (typically the
// X-Request-ID header the cluster router stamped on the request) that
// is folded into the iteration's obs trace label, so one request can be
// followed from the router through the shard into the pipeline trace.
func (r *Registry) IterateTagged(id, tag string) error {
	return r.iterate(id, tag)
}

func (r *Registry) iterate(id, tag string) error {
	s, err := r.get(id)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.running {
		s.mu.Unlock()
		return ErrIterationRunning
	}
	s.running = true
	s.errMsg = ""
	s.cqg = nil
	s.iterTag = tag
	s.iterDone = make(chan struct{})
	s.lastActive = time.Now()
	s.mu.Unlock()

	if !r.pool.trySubmit(s.runIteration) {
		s.mu.Lock()
		s.running = false
		done := s.iterDone
		s.iterDone = nil
		s.mu.Unlock()
		if done != nil {
			close(done) // a teardown may already be waiting on it
		}
		obsOverloadRejections.Inc()
		return ErrOverloaded
	}
	return nil
}

// AddView registers an additional VQL view on a live session and
// returns its index. The view lands in the session's answer log
// (pipeline.AnswerKindV), so the next snapshot persists it and replay
// restores it in order. It fails with ErrIterationRunning while an
// iteration is in flight — view registration mutates pipeline state and
// must not interleave with one.
func (r *Registry) AddView(id, query string) (int, error) {
	s, err := r.get(id)
	if err != nil {
		return 0, err
	}
	q, err := vql.Parse(query)
	if err != nil {
		return 0, err
	}
	// Claim the pipeline exactly like an iteration does (running flag
	// plus a done channel for teardown to wait on): between here and the
	// close(done) below this goroutine is the pipeline's sole owner.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	if s.running {
		s.mu.Unlock()
		return 0, ErrIterationRunning
	}
	s.running = true
	s.iterDone = make(chan struct{})
	s.lastActive = time.Now()
	s.mu.Unlock()

	v, verr := s.ps.AddView(q)
	if verr == nil {
		// Persist before declaring the registration done, unless a
		// teardown closed the session meanwhile (same rationale as
		// runIteration's closed check).
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if !closed {
			s.refreshCache()
			_ = r.persistSession(s)
		}
	}

	s.mu.Lock()
	s.running = false
	s.lastActive = time.Now()
	done := s.iterDone
	s.iterDone = nil
	s.mu.Unlock()
	if done != nil {
		close(done)
	}
	if verr != nil {
		return 0, verr
	}
	r.cfg.Logf("service: session %s view %d added (%s)", id, v, query)
	return v, nil
}

// Answer resolves the session's pending question. A nil return is the
// acknowledgement: the answer has been handed to the iteration and will
// be applied and logged (the durability guarantee in DESIGN.md §8
// starts from here). On error the question stays pending and the client
// may retry.
func (r *Registry) Answer(id string, a Answer) error {
	s, err := r.get(id)
	if err != nil {
		return err
	}
	if err := fault.Point("service/answer.deliver"); err != nil {
		return err
	}
	s.mu.Lock()
	if s.pending == nil {
		s.mu.Unlock()
		return ErrNoQuestion
	}
	reply := s.pending.reply
	s.pending = nil
	s.lastActive = time.Now()
	s.mu.Unlock()
	reply <- a // buffered(1), sole sender per question: never blocks
	return nil
}

// Close terminates a session: its in-flight iteration is cancelled, its
// parked question unparked, and its snapshot deleted — close is the
// "user is done" verb, unlike eviction which preserves the snapshot for
// later resumption. The per-id lock serializes it against a concurrent
// restore of the same id, so a restore that already read the snapshot
// cannot re-register the session after Close deleted the file.
func (r *Registry) Close(id string) error {
	if !validSessionID(id) {
		// Generated ids are always valid, so nothing can exist here.
		return ErrNotFound
	}
	release := r.lockID(id)
	defer release()
	r.mu.Lock()
	s, ok := r.sessions[id]
	r.mu.Unlock()
	if ok {
		r.teardown(s, false)
		r.deleteSnapshot(id)
		obsSessionsClosed.Inc()
		r.cfg.Logf("service: session %s closed", id)
		return nil
	}
	if r.deleteSnapshot(id) {
		obsSessionsClosed.Inc()
		r.cfg.Logf("service: session %s closed (snapshot only)", id)
		return nil
	}
	return ErrNotFound
}

// teardown cancels a session, waits for its iteration to stop,
// optionally persists it, and removes it from the registry.
func (r *Registry) teardown(s *Session, persist bool) {
	r.teardownAll([]*Session{s}, persist, false)
}

// teardownAll tears down a batch: every victim is cancelled FIRST, then
// each is waited on. Cancelling up front matters when victims share the
// worker pool — a victim whose iteration is queued behind another
// victim's parked iteration only finishes once that one is cancelled
// too, so cancel-then-wait per session could stall the whole sweep.
//
// With keepOnPersistFailure (eviction), a victim whose snapshot cannot
// be persisted even after retries is NOT dropped: discarding it would
// silently lose acked answers. It is re-registered live (fresh context,
// closed flag cleared) and the next sweep retries. The count of such
// kept sessions is returned.
func (r *Registry) teardownAll(victims []*Session, persist, keepOnPersistFailure bool) (kept int) {
	var started []*Session
	for _, s := range victims {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			continue
		}
		s.closed = true
		s.mu.Unlock()
		s.cancel()
		started = append(started, s)
	}
	for _, s := range started {
		s.mu.Lock()
		done := s.iterDone
		s.mu.Unlock()
		keep := persist
		if done != nil {
			select {
			case <-done:
			case <-r.cfg.teardownAfter(r.cfg.TeardownTimeout):
				// The iteration ignored cancellation (stuck user code).
				// The pipeline may still be mutating, so reading its
				// history is unsafe — drop the session without a snapshot.
				r.cfg.Logf("service: session %s iteration did not stop within %v; dropping without snapshot",
					s.id, r.cfg.TeardownTimeout)
				keep = false
			}
		}
		if keep && r.persistSession(s) != nil && keepOnPersistFailure {
			// Persist failed after retries. Resurrect the session under
			// a fresh context rather than dropping state the user was
			// told was applied; the next sweep will retry the persist.
			ns := r.wrap(s.id, s.spec, s.ps, s.autoUser)
			r.mu.Lock()
			if !r.closed {
				r.sessions[s.id] = ns
				r.mu.Unlock()
				r.cfg.Logf("service: session %s kept live after persist failure; will retry at next sweep", s.id)
				kept++
				continue
			}
			r.mu.Unlock()
			ns.cancel()
			r.cfg.Logf("service: session %s state lost: persist failed during shutdown", s.id)
		}
		r.mu.Lock()
		delete(r.sessions, s.id)
		obsSessionsLive.Set(int64(len(r.sessions)))
		r.mu.Unlock()
		// The session is out of the registry for good: release its
		// artifact-cache handles so the shared entries can go idle (and
		// become evictable). Safe even on the wedged-iteration path —
		// the pipeline's close is guarded against concurrent acquires,
		// and the session's own references keep the structures alive.
		s.ps.Close()
	}
	return kept
}

// SessionInfo summarizes one live session.
type SessionInfo struct {
	ID         string    `json:"id"`
	Spec       Spec      `json:"spec"`
	Iteration  int       `json:"iteration"`
	Running    bool      `json:"running"`
	LastActive time.Time `json:"lastActive"`
}

// List reports every live session, most recently active first.
func (r *Registry) List() []SessionInfo {
	r.mu.Lock()
	sessions := make([]*Session, 0, len(r.sessions))
	for _, s := range r.sessions {
		sessions = append(sessions, s)
	}
	r.mu.Unlock()
	out := make([]SessionInfo, 0, len(sessions))
	for _, s := range sessions {
		s.mu.Lock()
		out = append(out, SessionInfo{
			ID:         s.id,
			Spec:       s.spec,
			Iteration:  s.iterCount,
			Running:    s.running,
			LastActive: s.lastActive,
		})
		s.mu.Unlock()
	}
	sortInfos(out)
	return out
}

func sortInfos(infos []SessionInfo) {
	for i := 1; i < len(infos); i++ {
		for j := i; j > 0 && infos[j].LastActive.After(infos[j-1].LastActive); j-- {
			infos[j], infos[j-1] = infos[j-1], infos[j]
		}
	}
}

// Len reports the number of live sessions.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

// Sweep evicts every session idle past the TTL: the session is
// cancelled (which unparks any pending question and aborts the
// iteration at its next question boundary), snapshotted to disk and
// dropped from memory. A later request for its id restores it. A
// session whose snapshot cannot be written stays live (see
// teardownAll). Returns the number of sessions actually evicted.
func (r *Registry) Sweep() int {
	cutoff := time.Now().Add(-r.cfg.IdleTTL)
	r.mu.Lock()
	var victims []*Session
	for _, s := range r.sessions {
		s.mu.Lock()
		idle := !s.closed && s.lastActive.Before(cutoff)
		s.mu.Unlock()
		if idle {
			victims = append(victims, s)
		}
	}
	r.mu.Unlock()
	if len(victims) == 0 {
		return 0
	}
	for _, s := range victims {
		r.cfg.Logf("service: evicting idle session %s", s.id)
	}
	kept := r.teardownAll(victims, true, true)
	evicted := len(victims) - kept
	obsSessionsEvicted.Add(int64(evicted))
	return evicted
}

func (r *Registry) sweeper() {
	defer close(r.sweeperDone)
	ticker := time.NewTicker(r.cfg.SweepInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			r.Sweep()
		case <-r.stopSweep:
			return
		}
	}
}

// Shutdown stops the evictor, persists and tears down every live
// session, and drains the worker pool. The registry is unusable
// afterwards; a new one pointed at the same SnapshotDir resumes every
// session.
func (r *Registry) Shutdown() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	sessions := make([]*Session, 0, len(r.sessions))
	for _, s := range r.sessions {
		sessions = append(sessions, s)
	}
	r.mu.Unlock()

	close(r.stopSweep)
	<-r.sweeperDone
	r.teardownAll(sessions, true, false)
	r.pool.shutdown()
}

// Kill tears the registry down WITHOUT persisting anything: in-flight
// iterations are cancelled and waited for, but no final snapshots are
// written, so disk keeps exactly what earlier iteration-boundary
// persists made durable — the on-disk state a kill -9 would leave,
// minus the leaked goroutines. It exists for crash drills (the cluster
// chaos harness kills whole in-process shards with it) and must never
// be the production shutdown path.
func (r *Registry) Kill() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	sessions := make([]*Session, 0, len(r.sessions))
	for _, s := range r.sessions {
		sessions = append(sessions, s)
	}
	r.mu.Unlock()

	close(r.stopSweep)
	<-r.sweeperDone
	r.teardownAll(sessions, false, false)
	r.pool.shutdown()
}

// QueueStats reports the worker pool's shape: jobs accepted but not yet
// picked up, the queue capacity, and the worker count. The web layer
// derives its Retry-After hint from these.
func (r *Registry) QueueStats() (queued, capacity, workers int) {
	return r.pool.stats()
}

// ArtifactStats reports the shared artifact cache's occupancy (zero
// when the cache is disabled).
func (r *Registry) ArtifactStats() artifact.Stats {
	if r.artifacts == nil {
		return artifact.Stats{}
	}
	return r.artifacts.Stats()
}
