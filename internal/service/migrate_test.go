package service

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// historyJSON canonicalizes a snapshot's answer log for comparison.
func historyJSON(t *testing.T, s Snapshot) string {
	t.Helper()
	data, err := json.Marshal(s.History)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestDetachAttachRoundTrip migrates an auto session at an iteration
// boundary between two registries with no snapshot directory (so the
// moved session exists nowhere but in the transferred snapshot) and
// asserts the attached session is bit-exactly the detached one — same
// chart, same distance-to-truth — and resumes the fault-free
// trajectory.
func TestDetachAttachRoundTrip(t *testing.T) {
	regA := newTestRegistry(t, nil)
	regB := newTestRegistry(t, nil)

	id, err := regA.Create(testSpec(11, true))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := iterateRetry(regA, id); err != nil {
			t.Fatal(err)
		}
		if _, err := waitIdle(regA, id); err != nil {
			t.Fatal(err)
		}
	}
	before, err := regA.State(id)
	if err != nil {
		t.Fatal(err)
	}

	snap, err := regA.Detach(id)
	if err != nil {
		t.Fatalf("detach: %v", err)
	}
	if snap.ID != id || len(snap.History.Iterations) != 2 {
		t.Fatalf("snapshot shape: id=%s iterations=%d", snap.ID, len(snap.History.Iterations))
	}
	if _, err := regA.State(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("session still on old registry after detach: %v", err)
	}

	if err := regB.Attach(snap); err != nil {
		t.Fatalf("attach: %v", err)
	}
	after, err := regB.State(id)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := chartKey(after), chartKey(before); got != want {
		t.Fatalf("attached state diverged:\n got %s\nwant %s", got, want)
	}

	// The migrated session must resume the same trajectory a
	// never-migrated session follows: drive one more iteration on the
	// new registry and compare with a pristine 3-iteration run.
	if err := iterateRetry(regB, id); err != nil {
		t.Fatal(err)
	}
	resumed, err := waitIdle(regB, id)
	if err != nil {
		t.Fatal(err)
	}
	regRef := newTestRegistry(t, nil)
	refID, err := regRef.Create(testSpec(11, true))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := iterateRetry(regRef, refID); err != nil {
			t.Fatal(err)
		}
		if _, err := waitIdle(regRef, refID); err != nil {
			t.Fatal(err)
		}
	}
	ref, err := regRef.State(refID)
	if err != nil {
		t.Fatal(err)
	}
	// chartKey includes the iteration count; ids differ but charts and
	// distance must match bit-exactly.
	if got, want := chartKey(resumed), chartKey(ref); got != want {
		t.Fatalf("post-migration trajectory diverged:\n got %s\nwant %s", got, want)
	}
}

// TestDetachMidIteration detaches an interactive session with acked
// answers and a parked (unanswered) question mid-iteration: the
// snapshot must carry the acked answers as partial history, the parked
// question must not survive (it was never answered), and re-exporting
// from the new registry must reproduce the identical answer log and
// distance-to-truth.
func TestDetachMidIteration(t *testing.T) {
	regA := newTestRegistry(t, nil)
	regB := newTestRegistry(t, nil)

	id, err := regA.Create(testSpec(7, false))
	if err != nil {
		t.Fatal(err)
	}
	if err := iterateRetry(regA, id); err != nil {
		t.Fatal(err)
	}
	// Ack two answers, then leave the third question parked.
	for i := 0; i < 2; i++ {
		st, err := waitQuestion(regA, id)
		if err != nil {
			t.Fatal(err)
		}
		if err := regA.Answer(id, chaosAnswer(*st.Question)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := waitQuestion(regA, id); err != nil {
		t.Fatal(err)
	}

	snap, err := regA.Detach(id)
	if err != nil {
		t.Fatalf("detach mid-iteration: %v", err)
	}
	if len(snap.History.Iterations) != 0 {
		t.Fatalf("no iteration completed, yet %d committed in history", len(snap.History.Iterations))
	}
	// Each ack logs at least one answer (a confirmed T answer also
	// records its implied A-column votes, so the log may hold more).
	if got := len(snap.History.Partial); got < 2 {
		t.Fatalf("partial answers in snapshot = %d, want >= the 2 acked ones", got)
	}

	if err := regB.Attach(snap); err != nil {
		t.Fatalf("attach: %v", err)
	}
	st, err := regB.State(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Question != nil || st.Running {
		t.Fatalf("attached session resumed with a phantom question: %+v", st.Question)
	}

	// Round-trip invariance: exporting again yields the identical
	// answer history, and a second attach of that export lands at the
	// identical distance-to-truth.
	snap2, err := regB.Detach(id)
	if err != nil {
		t.Fatalf("re-detach: %v", err)
	}
	if got, want := historyJSON(t, snap2), historyJSON(t, snap); got != want {
		t.Fatalf("answer history changed across migration:\n got %s\nwant %s", got, want)
	}
	regC := newTestRegistry(t, nil)
	if err := regC.Attach(snap2); err != nil {
		t.Fatal(err)
	}
	st2, err := regC.State(id)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := chartKey(st2), chartKey(st); got != want {
		t.Fatalf("distance/chart diverged across second migration:\n got %s\nwant %s", got, want)
	}
}

// TestCreateWithIDAndAttachRefuseDuplicates: pinned ids and imports
// must never clobber an existing session.
func TestCreateWithIDAndAttachRefuseDuplicates(t *testing.T) {
	reg := newTestRegistry(t, nil)
	if _, err := reg.CreateWithID("pin-1", testSpec(3, true)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.CreateWithID("pin-1", testSpec(3, true)); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate CreateWithID: %v, want ErrExists", err)
	}
	if _, err := reg.CreateWithID("../evil", testSpec(3, true)); err == nil || errors.Is(err, ErrExists) {
		t.Fatalf("path-traversal id accepted: %v", err)
	}
	snap, err := reg.Detach("pin-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Attach(snap); err != nil {
		t.Fatal(err)
	}
	if err := reg.Attach(snap); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate attach: %v, want ErrExists", err)
	}
}

// TestCreateWithIDRefusesDiskDuplicate: a pinned id that exists only
// as an on-disk snapshot is taken too.
func TestCreateWithIDRefusesDiskDuplicate(t *testing.T) {
	dir := t.TempDir()
	reg := newTestRegistry(t, func(c *Config) { c.SnapshotDir = dir })
	if _, err := reg.CreateWithID("disk-1", testSpec(3, true)); err != nil {
		t.Fatal(err)
	}
	// Evict to disk, leaving no live session.
	forceIdle(reg, "disk-1")
	if n := reg.Sweep(); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	if _, err := reg.CreateWithID("disk-1", testSpec(3, true)); !errors.Is(err, ErrExists) {
		t.Fatalf("CreateWithID over snapshot: %v, want ErrExists", err)
	}
}

// TestKillDoesNotPersist: Kill is crash semantics — unlike Shutdown it
// must not write final snapshots, so disk keeps exactly the state of
// the last boundary persist.
func TestKillDoesNotPersist(t *testing.T) {
	dir := t.TempDir()
	reg := newTestRegistry(t, func(c *Config) { c.SnapshotDir = dir })
	id, err := reg.Create(testSpec(5, true))
	if err != nil {
		t.Fatal(err)
	}
	if err := iterateRetry(reg, id); err != nil {
		t.Fatal(err)
	}
	if _, err := waitIdle(reg, id); err != nil {
		t.Fatal(err)
	}
	// Remove the boundary snapshot; a persisting teardown would rewrite
	// it, a crash-semantics one must not.
	path := filepath.Join(dir, id+".json")
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	reg.Kill()
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("Kill persisted a snapshot: stat err = %v", err)
	}
}
