package service

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"visclean/internal/pipeline"
)

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "abc123.json")
	snap := Snapshot{
		ID:   "abc123",
		Spec: testSpec(9, true).WithDefaults(),
		History: pipeline.History{
			Iterations: [][]pipeline.Answer{{
				{Kind: pipeline.AnswerKindT, A: 1, B: 2, Yes: true},
				{Kind: pipeline.AnswerKindM, A: 3, Value: 41.5},
			}},
			Partial: []pipeline.Answer{
				{Kind: pipeline.AnswerKindA, Column: "Venue", V1: "ICDE", V2: "ICDE 2013", Yes: true},
			},
		},
	}
	if err := WriteSnapshotFile(path, snap); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != SnapshotVersion {
		t.Fatalf("version = %d, want %d", got.Version, SnapshotVersion)
	}
	if got.ID != snap.ID || !reflect.DeepEqual(got.Spec, snap.Spec) {
		t.Fatalf("round trip mangled identity: %+v", got)
	}
	if got.History.NumAnswers() != 3 || len(got.History.Iterations) != 1 || len(got.History.Partial) != 1 {
		t.Fatalf("round trip mangled history: %+v", got.History)
	}
	if got.History.Iterations[0][1].Value != 41.5 {
		t.Fatalf("answer payload lost: %+v", got.History.Iterations[0][1])
	}

	// Atomicity hygiene: no temp files left behind, only the snapshot.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("dir has %d entries, want 1", len(entries))
	}
}

func TestWriteSnapshotReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.json")
	if err := WriteSnapshotFile(path, Snapshot{ID: "s", Spec: testSpec(1, false)}); err != nil {
		t.Fatal(err)
	}
	// Overwrite with a new snapshot; the old one must be replaced whole.
	snap2 := Snapshot{ID: "s", Spec: testSpec(2, false), SavedAtUnix: 42}
	if err := WriteSnapshotFile(path, snap2); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Spec.Seed != 2 || got.SavedAtUnix != 42 {
		t.Fatalf("overwrite not applied: %+v", got)
	}
}

func TestReadSnapshotErrors(t *testing.T) {
	dir := t.TempDir()

	// Missing file: os.ErrNotExist passes through so callers can tell
	// "never existed" from "corrupt".
	if _, err := ReadSnapshotFile(filepath.Join(dir, "missing.json")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file: err = %v, want ErrNotExist", err)
	}

	write := func(name, content string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	cases := []struct {
		name, content string
	}{
		{"garbage.json", "not json at all"},
		{"truncated.json", `{"version":1,"id":"x","history":{"iter`},
		{"future.json", `{"version":99,"id":"x"}`},
		{"noid.json", `{"version":1}`},
		{"empty.json", ""},
	}
	for _, c := range cases {
		p := write(c.name, c.content)
		_, err := ReadSnapshotFile(p)
		if err == nil {
			t.Fatalf("%s: read succeeded on bad snapshot", c.name)
		}
		if errors.Is(err, os.ErrNotExist) {
			t.Fatalf("%s: bad snapshot misreported as missing", c.name)
		}
	}
}

// TestRestoreAllSkipsCorrupt seeds a snapshot directory with one good
// snapshot, one corrupt file and one future-versioned file: the registry
// must restore exactly the good one and keep serving.
func TestRestoreAllSkipsCorrupt(t *testing.T) {
	dir := t.TempDir()

	reg1 := NewRegistry(Config{
		MaxSessions: 4, Workers: 2, SweepInterval: time.Hour,
		SnapshotDir: dir, Logf: t.Logf,
	})
	id, err := reg1.Create(testSpec(1, true))
	if err != nil {
		t.Fatal(err)
	}
	reg1.Shutdown()

	bad := filepath.Join(dir, "deadbeef.json")
	if err := os.WriteFile(bad, []byte("{{{ truncated garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	future := filepath.Join(dir, "cafe0000.json")
	if err := os.WriteFile(future, []byte(`{"version":99,"id":"cafe0000"}`), 0o644); err != nil {
		t.Fatal(err)
	}

	reg2 := newTestRegistry(t, func(c *Config) { c.SnapshotDir = dir })
	if n := reg2.RestoreAll(); n != 1 {
		t.Fatalf("RestoreAll restored %d, want 1 (good snapshot only)", n)
	}
	if _, err := reg2.State(id); err != nil {
		t.Fatalf("good session not restored: %v", err)
	}
	if _, err := reg2.State("deadbeef"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("corrupt snapshot: err = %v, want ErrNotFound", err)
	}
	if _, err := reg2.State("cafe0000"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("future snapshot: err = %v, want ErrNotFound", err)
	}
	// The corrupt files must still be on disk (skip, don't destroy).
	if _, err := os.Stat(bad); err != nil {
		t.Fatalf("corrupt snapshot was deleted: %v", err)
	}
}

// TestSnapshotIDMismatch: a snapshot renamed to another id must not
// restore under that id.
func TestSnapshotIDMismatch(t *testing.T) {
	dir := t.TempDir()
	reg1 := NewRegistry(Config{
		MaxSessions: 4, Workers: 2, SweepInterval: time.Hour,
		SnapshotDir: dir, Logf: t.Logf,
	})
	id, err := reg1.Create(testSpec(1, false))
	if err != nil {
		t.Fatal(err)
	}
	reg1.Shutdown()

	if err := os.Rename(filepath.Join(dir, id+".json"), filepath.Join(dir, "impostor.json")); err != nil {
		t.Fatal(err)
	}
	reg2 := newTestRegistry(t, func(c *Config) { c.SnapshotDir = dir })
	if _, err := reg2.State("impostor"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("mismatched snapshot restored: err = %v", err)
	}
}

func TestValidSessionID(t *testing.T) {
	good := []string{"abc123", "ABC_def-0", "cli"}
	bad := []string{"", "../../etc/passwd", "a/b", "a.b", strings.Repeat("x", 65)}
	for _, id := range good {
		if !validSessionID(id) {
			t.Errorf("validSessionID(%q) = false, want true", id)
		}
	}
	for _, id := range bad {
		if validSessionID(id) {
			t.Errorf("validSessionID(%q) = true, want false", id)
		}
	}
}
