package service

// Registry-level coverage of the shared artifact cache (DESIGN.md §12):
// the default factory threads the registry's cache into every session,
// same-content sessions share entries, snapshots record the fingerprint
// (never the artifacts), restores re-acquire, and closing the last
// session leaves every entry idle (evictable).

import (
	"testing"
)

// runTwoIterations drives a session through two auto-answered
// iterations and returns its settled state.
func runTwoIterations(t *testing.T, reg *Registry, id string) State {
	t.Helper()
	var st State
	for i := 0; i < 2; i++ {
		if err := iterateRetry(reg, id); err != nil {
			t.Fatal(err)
		}
		var err error
		st, err = waitIdle(reg, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Err != "" {
			t.Fatalf("iteration error: %s", st.Err)
		}
	}
	return st
}

// TestRegistrySharedArtifactCache: two sessions over identical dataset
// content share one set of cache entries, their charts bit-match a
// cache-off registry, and closing both releases every entry to idle.
func TestRegistrySharedArtifactCache(t *testing.T) {
	off := newTestRegistry(t, func(c *Config) { c.NoArtifactCache = true })
	offID, err := off.Create(testSpec(3, true))
	if err != nil {
		t.Fatal(err)
	}
	want := chartKey(runTwoIterations(t, off, offID))
	if st := off.ArtifactStats(); st.Entries != 0 {
		t.Fatalf("NoArtifactCache registry cached %d artifacts", st.Entries)
	}

	reg := newTestRegistry(t, nil)
	idA, err := reg.Create(testSpec(3, true))
	if err != nil {
		t.Fatal(err)
	}
	stA := runTwoIterations(t, reg, idA)
	after1 := reg.ArtifactStats()
	if after1.Entries == 0 {
		t.Fatal("default registry cached nothing; the cache is not wired through the factory")
	}

	idB, err := reg.Create(testSpec(3, true))
	if err != nil {
		t.Fatal(err)
	}
	stB := runTwoIterations(t, reg, idB)
	after2 := reg.ArtifactStats()
	if after2.Entries != after1.Entries {
		t.Fatalf("second same-content session grew the cache from %d to %d entries; sharing is broken",
			after1.Entries, after2.Entries)
	}

	if got := chartKey(stA); got != want {
		t.Fatalf("cached session A chart diverged:\n got %s\nwant %s", got, want)
	}
	if got := chartKey(stB); got != want {
		t.Fatalf("cached session B chart diverged:\n got %s\nwant %s", got, want)
	}

	if err := reg.Close(idA); err != nil {
		t.Fatal(err)
	}
	if err := reg.Close(idB); err != nil {
		t.Fatal(err)
	}
	if st := reg.ArtifactStats(); st.Idle != st.Entries {
		t.Fatalf("after closing every session %d of %d entries are still referenced", st.Entries-st.Idle, st.Entries)
	}
}

// TestSnapshotRecordsFingerprintAndRestoreReacquires: the snapshot
// carries the dataset fingerprint (not the artifacts), and a restored
// session re-acquires the already-cached entries and resumes on the
// same trajectory.
func TestSnapshotRecordsFingerprintAndRestoreReacquires(t *testing.T) {
	dir := t.TempDir()
	reg := newTestRegistry(t, func(c *Config) { c.SnapshotDir = dir })
	id, err := reg.Create(testSpec(5, true))
	if err != nil {
		t.Fatal(err)
	}
	before := runTwoIterations(t, reg, id)

	snap, err := ReadSnapshotFile(reg.snapshotPath(id))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Fingerprint) != 64 {
		t.Fatalf("snapshot fingerprint = %q, want a sha256 hex digest", snap.Fingerprint)
	}

	// Evict the session; the shared entries stay in the registry cache.
	reg.mu.Lock()
	s := reg.sessions[id]
	reg.mu.Unlock()
	reg.teardown(s, true)
	entries := reg.ArtifactStats().Entries
	if entries == 0 {
		t.Fatal("eviction emptied the artifact cache; entries should outlive sessions")
	}

	// State() lazily restores from the snapshot, re-acquiring by the
	// recomputed fingerprint — no new entries, identical chart.
	after, err := reg.State(id)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.ArtifactStats().Entries; got != entries {
		t.Fatalf("restore grew the cache from %d to %d entries; fingerprint re-acquire is broken", entries, got)
	}
	if got, want := chartKey(after), chartKey(before); got != want {
		t.Fatalf("restored session diverged:\n got %s\nwant %s", got, want)
	}
}
