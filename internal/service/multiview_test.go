package service

// Multi-view sessions through the service layer: specs with extra
// views, mid-session AddView, the per-view state cache, and the
// kill/restart path restoring every panel (DESIGN.md §13).

import (
	"errors"
	"testing"
	"time"
)

const testSecondQuery = `VISUALIZE bar SELECT Affiliation, AVG(Citations) FROM D1 TRANSFORM GROUP BY Affiliation SORT Y BY DESC LIMIT 8`

// testMultiSpec is testSpec plus one extra view.
func testMultiSpec(seed int64, auto bool) Spec {
	sp := testSpec(seed, auto)
	sp.Queries = []string{testSecondQuery}
	return sp
}

// TestMultiViewStateCarriesAllPanels: a 2-view session's State exposes
// both charts and both query strings from creation onward, with view 0
// aliasing the legacy single-chart field.
func TestMultiViewStateCarriesAllPanels(t *testing.T) {
	reg := newTestRegistry(t, nil)
	id, err := reg.Create(testMultiSpec(4, true))
	if err != nil {
		t.Fatal(err)
	}
	st, err := reg.State(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.ViewVis) != 2 || len(st.ViewQueries) != 2 {
		t.Fatalf("fresh 2-view state has %d charts / %d queries", len(st.ViewVis), len(st.ViewQueries))
	}
	if st.ViewQueries[1] == st.ViewQueries[0] {
		t.Fatal("view queries not distinct")
	}
	chartEqual(t, st.Vis, st.ViewVis[0])
	if err := iterateRetry(reg, id); err != nil {
		t.Fatal(err)
	}
	st, err = waitIdle(reg, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Err != "" {
		t.Fatalf("iteration error: %s", st.Err)
	}
	if len(st.ViewVis) != 2 {
		t.Fatalf("post-iteration state has %d charts, want 2", len(st.ViewVis))
	}
	chartEqual(t, st.Vis, st.ViewVis[0])
}

// TestAddViewLifecycle: registering a view mid-session extends the
// state, persists immediately, rejects garbage, and refuses to run
// while an iteration holds the pipeline.
func TestAddViewLifecycle(t *testing.T) {
	dir := t.TempDir()
	reg := newTestRegistry(t, func(c *Config) { c.SnapshotDir = dir })
	id, err := reg.Create(testSpec(4, true))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.AddView(id, "VISUALIZE nope"); err == nil {
		t.Fatal("AddView accepted an unparsable query")
	}
	if _, err := reg.AddView(id, `VISUALIZE bar SELECT Venue, SUM(Year) FROM D1 TRANSFORM GROUP BY Venue`); err == nil {
		t.Fatal("AddView accepted a view over a different measure")
	}
	v, err := reg.AddView(id, testSecondQuery)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("AddView returned index %d, want 1", v)
	}
	st, err := reg.State(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.ViewVis) != 2 || len(st.ViewQueries) != 2 {
		t.Fatalf("state after AddView has %d charts / %d queries", len(st.ViewVis), len(st.ViewQueries))
	}
	// The registration is already durable: the snapshot replays it.
	snap, err := ReadSnapshotFile(reg.snapshotPath(id))
	if err != nil {
		t.Fatal(err)
	}
	if snap.History.NumAnswers() == 0 {
		t.Fatal("AddView not persisted into the answer log")
	}
	if _, err := reg.AddView("nosuch", testSecondQuery); !errors.Is(err, ErrNotFound) {
		t.Fatalf("AddView on unknown id: err = %v, want ErrNotFound", err)
	}
}

// TestAddViewConflictsWithIteration: while an iteration is parked on a
// question, AddView must refuse instead of mutating the pipeline under
// the worker.
func TestAddViewConflictsWithIteration(t *testing.T) {
	reg := newTestRegistry(t, nil)
	id, err := reg.Create(testSpec(4, false)) // no auto user: question parks
	if err != nil {
		t.Fatal(err)
	}
	if err := iterateRetry(reg, id); err != nil {
		t.Fatal(err)
	}
	if _, err := waitQuestion(reg, id); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.AddView(id, testSecondQuery); !errors.Is(err, ErrIterationRunning) {
		t.Fatalf("AddView mid-iteration: err = %v, want ErrIterationRunning", err)
	}
	if err := reg.Answer(id, Answer{Skip: true}); err != nil {
		t.Fatal(err)
	}
}

// TestMultiViewRestartRoundTrip is the service-level kill/restart
// fence: a session created with two views that adds a third mid-session
// must come back with all three panels bit-equal after a restart.
func TestMultiViewRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	reg1 := NewRegistry(Config{
		MaxSessions: 16, Workers: 4, SweepInterval: time.Hour,
		SnapshotDir: dir, Logf: t.Logf,
	})
	id, err := reg1.Create(testMultiSpec(4, true))
	if err != nil {
		t.Fatal(err)
	}
	if err := iterateRetry(reg1, id); err != nil {
		t.Fatal(err)
	}
	if _, err := waitIdle(reg1, id); err != nil {
		t.Fatal(err)
	}
	if _, err := reg1.AddView(id, `VISUALIZE bar SELECT Year, SUM(Citations) FROM D1 TRANSFORM BIN Year BY INTERVAL 1`); err != nil {
		t.Fatal(err)
	}
	if err := iterateRetry(reg1, id); err != nil {
		t.Fatal(err)
	}
	before, err := waitIdle(reg1, id)
	if err != nil {
		t.Fatal(err)
	}
	if before.Err != "" {
		t.Fatalf("iteration error: %s", before.Err)
	}
	if len(before.ViewVis) != 3 {
		t.Fatalf("pre-restart state has %d charts, want 3", len(before.ViewVis))
	}
	reg1.Shutdown()

	reg2 := newTestRegistry(t, func(c *Config) { c.SnapshotDir = dir })
	after, err := reg2.State(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.ViewVis) != 3 || len(after.ViewQueries) != 3 {
		t.Fatalf("restored state has %d charts / %d queries, want 3/3", len(after.ViewVis), len(after.ViewQueries))
	}
	for i := range before.ViewVis {
		if after.ViewQueries[i] != before.ViewQueries[i] {
			t.Fatalf("view %d query after restart: %q vs %q", i, after.ViewQueries[i], before.ViewQueries[i])
		}
		chartEqual(t, before.ViewVis[i], after.ViewVis[i])
	}
	// And it keeps iterating with all views priced.
	if err := iterateRetry(reg2, id); err != nil {
		t.Fatal(err)
	}
	st, err := waitIdle(reg2, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Err != "" {
		t.Fatalf("post-restart iteration error: %s", st.Err)
	}
}
