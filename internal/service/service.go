// Package service is the multi-tenant session layer between VisClean's
// cleaning pipeline and its frontends. A Registry owns N concurrent
// pipeline.Sessions behind opaque session ids and gives each frontend a
// uniform lifecycle:
//
//	create → iterate → (question → answer)* → iterate → … → close
//
// The registry enforces a max-sessions cap (clear "server busy"
// rejection instead of unbounded growth), runs a TTL-based idle evictor
// that snapshots abandoned sessions to disk and unblocks their parked
// question goroutines, and funnels all iteration compute through a
// bounded worker pool so at most K iterations run concurrently — the
// rest queue, and a full queue is reported as overload (backpressure)
// rather than spawning more goroutines.
//
// Sessions snapshot to versioned JSON files (see persist.go): the spec
// that created the session plus its answer log. A restarted server
// replays the log against a freshly built session and resumes exactly
// where the old one stopped — pipeline replay is deterministic (see
// pipeline.Session.Replay).
//
// This layer is reproduction infrastructure: the paper's prototype
// (§VI) is single-user, and nothing here alters the cleaning semantics
// — it only multiplexes, persists and meters them.
package service

import (
	"errors"
	"fmt"
	"log"
	"strings"
	"time"

	"visclean/internal/artifact"
	"visclean/internal/datagen"
	"visclean/internal/oracle"
	"visclean/internal/pipeline"
	"visclean/internal/vql"
)

// Sentinel errors, mapped to HTTP statuses by the web frontend.
var (
	// ErrNotFound: no live or snapshotted session with that id.
	ErrNotFound = errors.New("service: session not found")
	// ErrBusy: the max-sessions cap is reached; try again later.
	ErrBusy = errors.New("service: server busy, session capacity reached")
	// ErrOverloaded: the iteration queue is full (backpressure).
	ErrOverloaded = errors.New("service: server overloaded, iteration queue full")
	// ErrIterationRunning: the session already has an iteration in flight.
	ErrIterationRunning = errors.New("service: iteration already running")
	// ErrNoQuestion: an answer arrived with no question pending.
	ErrNoQuestion = errors.New("service: no pending question")
	// ErrClosed: the session (or the whole registry) has been shut down.
	ErrClosed = errors.New("service: session closed")
	// ErrExists: a session with that id already lives here (or has a
	// snapshot on disk) — CreateWithID and Attach refuse to clobber it.
	ErrExists = errors.New("service: session id already exists")
)

// Spec describes how to (re)build a session deterministically from
// scratch. It is stored verbatim inside every snapshot, so anything a
// session's construction depends on must be in here.
type Spec struct {
	// Dataset names a synthetic generator: D1, D2 or D3.
	Dataset string `json:"dataset"`
	// Scale is the generator's scale factor.
	Scale float64 `json:"scale"`
	// Seed drives every stochastic component of the session.
	Seed int64 `json:"seed"`
	// Query is the VQL visualization query (view 0).
	Query string `json:"query"`
	// Queries are additional VQL views registered at creation, beyond
	// Query. Views added later via AddView live in the answer log, not
	// here: the spec only describes construction, and replay restores
	// mid-session views on its own (pipeline.AnswerKindV).
	Queries []string `json:"queries,omitempty"`
	// K is the CQG size.
	K int `json:"k"`
	// Selector names the CQG selection algorithm (gss, gss+, bb, abb,
	// random, single).
	Selector string `json:"selector,omitempty"`
	// Auto lets the ground-truth oracle answer instead of a human.
	Auto bool `json:"auto,omitempty"`
}

var defaultQueries = map[string]string{
	"D1": `VISUALIZE bar SELECT Venue, SUM(Citations) FROM D1 TRANSFORM GROUP BY Venue SORT Y BY DESC LIMIT 10`,
	"D2": `VISUALIZE bar SELECT Team, SUM(#Points) FROM D2 TRANSFORM GROUP BY Team SORT Y BY DESC LIMIT 10`,
	"D3": `VISUALIZE bar SELECT Publ, AVG(Rating) FROM D3 TRANSFORM GROUP BY Publ SORT Y BY DESC LIMIT 10`,
}

// WithDefaults fills zero fields with the standard defaults. The
// registry normalizes every spec before storing it so snapshots rebuild
// the exact same session regardless of later default changes.
func (sp Spec) WithDefaults() Spec {
	if sp.Dataset == "" {
		sp.Dataset = "D1"
	}
	if sp.Scale == 0 {
		sp.Scale = 0.01
	}
	if sp.Seed == 0 {
		sp.Seed = 1
	}
	if sp.Query == "" {
		sp.Query = defaultQueries[sp.Dataset]
	}
	if sp.K == 0 {
		sp.K = 10
	}
	if sp.Selector == "" {
		sp.Selector = "gss"
	}
	return sp
}

// ParseSelector maps a selector name to its pipeline kind.
func ParseSelector(s string) (pipeline.SelectorKind, error) {
	switch strings.ToLower(s) {
	case "", "gss":
		return pipeline.SelectGSS, nil
	case "gss+", "gssplus":
		return pipeline.SelectGSSPlus, nil
	case "bb", "b&b":
		return pipeline.SelectBB, nil
	case "abb", "alphabb":
		return pipeline.SelectAlphaBB, nil
	case "random":
		return pipeline.SelectRandom, nil
	case "single":
		return pipeline.SelectSingle, nil
	default:
		return 0, fmt.Errorf("unknown selector %q", s)
	}
}

// Factory builds a live pipeline session (plus an optional auto-user
// that answers for spec.Auto sessions) from a normalized spec. Injected
// so tests can substitute cheap fixtures; StandardFactory is the
// datagen-backed production implementation.
type Factory func(spec Spec) (*pipeline.Session, pipeline.User, error)

// StandardFactory builds sessions over the paper's synthetic datasets.
// Construction is deterministic in the spec, which is what makes
// snapshot replay sound.
func StandardFactory(spec Spec) (*pipeline.Session, pipeline.User, error) {
	return buildSession(spec, nil)
}

// CachedFactory builds the same sessions as StandardFactory but threads
// a shared artifact cache (DESIGN.md §12) into the pipeline, so
// sessions over identical dataset content reuse each other's setup
// artifacts. The registry installs this automatically when Config
// leaves Factory nil; it is exported so a custom Factory wrapper can
// keep the cache.
func CachedFactory(cache *artifact.Cache) Factory {
	return func(spec Spec) (*pipeline.Session, pipeline.User, error) {
		return buildSession(spec, cache)
	}
}

func buildSession(spec Spec, cache *artifact.Cache) (*pipeline.Session, pipeline.User, error) {
	sel, err := ParseSelector(spec.Selector)
	if err != nil {
		return nil, nil, err
	}
	cfg := datagen.Config{Scale: spec.Scale, Seed: spec.Seed}
	var d *datagen.Dataset
	switch spec.Dataset {
	case "D1":
		d = datagen.D1(cfg)
	case "D2":
		d = datagen.D2(cfg)
	case "D3":
		d = datagen.D3(cfg)
	default:
		return nil, nil, fmt.Errorf("unknown dataset %q", spec.Dataset)
	}
	q, err := vql.Parse(spec.Query)
	if err != nil {
		return nil, nil, err
	}
	pcfg := pipeline.Config{K: spec.K, Seed: spec.Seed, Selector: sel, Artifacts: cache}
	for _, src := range spec.Queries {
		vq, err := vql.Parse(src)
		if err != nil {
			return nil, nil, fmt.Errorf("view query %q: %w", src, err)
		}
		pcfg.Queries = append(pcfg.Queries, vq)
	}
	if tv, err := q.Execute(d.Truth.Clean); err == nil {
		pcfg.TruthVis = tv
	}
	ps, err := pipeline.NewSession(d.Dirty, q, d.KeyColumns, pcfg)
	if err != nil {
		return nil, nil, err
	}
	var auto pipeline.User
	if spec.Auto {
		auto = oracle.New(d.Truth, spec.Seed)
	}
	return ps, auto, nil
}

// Config parameterizes a Registry. Zero values select sane defaults.
type Config struct {
	// MaxSessions caps concurrently live sessions (default 64). Creates
	// and restores beyond the cap fail with ErrBusy.
	MaxSessions int
	// IdleTTL is how long a session may sit untouched (no state poll,
	// answer or iterate) before the evictor snapshots and drops it
	// (default 15m).
	IdleTTL time.Duration
	// SweepInterval is the evictor period (default IdleTTL/4, clamped
	// to [1s, 1m]).
	SweepInterval time.Duration
	// Workers bounds concurrently executing iterations (default 4).
	Workers int
	// QueueDepth bounds iterations waiting for a worker (default
	// 2×Workers). A full queue rejects with ErrOverloaded.
	QueueDepth int
	// AnswerTimeout is the longest a question stays parked waiting for
	// an answer before it resolves as skipped (default 10m).
	AnswerTimeout time.Duration
	// TeardownTimeout is how long teardown waits for an in-flight
	// iteration to acknowledge cancellation before declaring it wedged
	// and dropping the session without a snapshot (default 30s).
	TeardownTimeout time.Duration
	// PersistRetries is how many times a failed snapshot persist is
	// retried with capped backoff before being declared failed
	// (default 2, i.e. up to 3 attempts).
	PersistRetries int
	// SnapshotDir persists session snapshots; empty disables
	// persistence (eviction then discards state).
	SnapshotDir string
	// Factory builds sessions. The default wires the registry's shared
	// artifact cache through StandardFactory; a custom Factory bypasses
	// the cache unless it threads one itself (see CachedFactory).
	Factory Factory
	// ArtifactBudget caps the registry's cross-session artifact cache
	// (DESIGN.md §12) in bytes. 0 selects the 256 MiB default; negative
	// disables the budget (never evict).
	ArtifactBudget int64
	// NoArtifactCache disables the shared artifact cache entirely:
	// every session builds its indexes and models privately.
	NoArtifactCache bool
	// Logf receives operational log lines (default log.Printf).
	Logf func(format string, args ...any)

	// teardownAfter is the teardown-timeout clock, injectable by tests
	// so a wedged-iteration timeout can fire deterministically
	// (default time.After).
	teardownAfter func(time.Duration) <-chan time.Time
}

func (c Config) withDefaults() Config {
	if c.MaxSessions == 0 {
		c.MaxSessions = 64
	}
	if c.IdleTTL == 0 {
		c.IdleTTL = 15 * time.Minute
	}
	if c.SweepInterval == 0 {
		c.SweepInterval = c.IdleTTL / 4
		if c.SweepInterval < time.Second {
			c.SweepInterval = time.Second
		}
		if c.SweepInterval > time.Minute {
			c.SweepInterval = time.Minute
		}
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.AnswerTimeout == 0 {
		c.AnswerTimeout = 10 * time.Minute
	}
	if c.TeardownTimeout == 0 {
		c.TeardownTimeout = 30 * time.Second
	}
	if c.PersistRetries == 0 {
		c.PersistRetries = 2
	}
	if c.teardownAfter == nil {
		c.teardownAfter = time.After
	}
	if c.ArtifactBudget == 0 {
		c.ArtifactBudget = 256 << 20
	}
	if c.Factory == nil {
		c.Factory = StandardFactory
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}
