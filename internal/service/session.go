package service

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"time"

	"visclean/internal/dataset"
	"visclean/internal/erg"
	"visclean/internal/obs"
	"visclean/internal/pipeline"
	"visclean/internal/vis"
)

// Session is one managed cleaning session: a pipeline.Session plus the
// lifecycle state the registry needs — its own lock, parked question,
// cancellation context and idle clock.
//
// Concurrency contract: the embedded pipeline session is NOT
// thread-safe. It is touched only by (a) the single pool worker running
// an iteration while `running` is true, and (b) the registry during
// create/restore/teardown when `running` is false and `closed` blocks
// new iterations. Everything frontends read per poll (chart, distance,
// iteration count, report) is cached on this struct under mu by the
// worker at iteration boundaries, so State() never races the pipeline.
type Session struct {
	id   string
	spec Spec
	reg  *Registry

	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	ps       *pipeline.Session
	autoUser pipeline.User

	running   bool
	closed    bool
	pending   *Question
	nextQID   int
	iterCount int
	vis       *vis.Data
	// viewVis/viewQueries cache every registered view's chart and VQL
	// text in registration order; viewVis[0] == vis. Multi-view sessions
	// (DESIGN.md §13) poll all panels through one State call.
	viewVis     []*vis.Data
	viewQueries []string
	dist        float64
	lastRep    *pipeline.Report
	cqg        *CQGView
	errMsg     string
	lastActive time.Time
	// iterTag is the request tag (X-Request-ID) of the iterate call that
	// scheduled the in-flight iteration; the worker folds it into the
	// iteration's obs trace label and clears it.
	iterTag string
	// iterDone is closed by the worker when the in-flight iteration
	// finishes; teardown waits on it after cancelling.
	iterDone chan struct{}
}

// Question is a parked cleaning question awaiting a client answer.
type Question struct {
	ID      int      `json:"id"`
	Kind    string   `json:"kind"` // "T", "A", "M", "O"
	Prompt  string   `json:"prompt"`
	Column  string   `json:"column,omitempty"`
	V1      string   `json:"v1,omitempty"`
	V2      string   `json:"v2,omitempty"`
	Current float64  `json:"current,omitempty"`
	Tuples  [][]Cell `json:"tuples,omitempty"`
	// TupleA/TupleB carry the raw tuple ids a machine client (loadgen's
	// oracle-backed drivers) needs to answer without parsing the prompt:
	// both for a T question, TupleA alone for M and O. Not omitempty —
	// tuple id 0 is valid.
	TupleA int `json:"tupleA"`
	TupleB int `json:"tupleB"`

	reply chan Answer
}

// Cell is one named cell of a tuple shown as question context.
type Cell struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// Answer is a client's reply to a parked question.
type Answer struct {
	Yes      bool
	Value    float64
	HasValue bool
	Skip     bool
}

// CQGView is a renderable summary of the current composite question
// graph.
type CQGView struct {
	Vertices []string `json:"vertices"`
	Edges    []string `json:"edges"`
}

// State is a point-in-time view of a session for frontends.
type State struct {
	ID          string
	Spec        Spec
	Iteration   int
	Running     bool
	Question    *Question
	CQG         *CQGView
	Report      *pipeline.Report
	Err         string
	Vis         *vis.Data
	// ViewVis/ViewQueries carry every registered view's chart and VQL
	// text in registration order; ViewVis[0] is the same chart as Vis.
	ViewVis     []*vis.Data
	ViewQueries []string
	DistToTruth float64
	LastActive  time.Time
}

func (s *Session) touch() {
	s.mu.Lock()
	s.lastActive = time.Now()
	s.mu.Unlock()
}

// State snapshots the session's cached view state.
func (s *Session) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := State{
		ID:          s.id,
		Spec:        s.spec,
		Iteration:   s.iterCount,
		Running:     s.running,
		CQG:         s.cqg,
		Err:         s.errMsg,
		Vis:         s.vis,
		ViewVis:     s.viewVis,
		ViewQueries: s.viewQueries,
		DistToTruth: s.dist,
		LastActive:  s.lastActive,
	}
	if s.pending != nil {
		q := *s.pending
		st.Question = &q
	}
	if s.lastRep != nil {
		rep := *s.lastRep
		st.Report = &rep
	}
	return st
}

// refreshCache recomputes the cached chart/distance/iteration view from
// the pipeline. Callers must hold exclusive ownership of the pipeline
// (worker at iteration end, registry at create/restore).
func (s *Session) refreshCache() {
	all, err := s.ps.CurrentVisAll()
	d, derr := s.ps.DistToTruth()
	iter := s.ps.Iteration()
	queries := make([]string, 0, s.ps.NumViews())
	for _, q := range s.ps.ViewQueries() {
		queries = append(queries, q.String())
	}
	s.mu.Lock()
	if err == nil {
		s.viewVis = all
		s.vis = all[0]
	}
	s.viewQueries = queries
	if derr == nil {
		s.dist = d
	}
	s.iterCount = iter
	s.mu.Unlock()
}

// runIteration executes one iteration on a pool worker.
func (s *Session) runIteration() {
	// Sole owner of the pipeline from here to iterDone: stamp the trace
	// label with this iteration's request tag (if any) so the span at
	// /debug/traces names the request that scheduled it.
	s.mu.Lock()
	label := s.id
	if s.iterTag != "" {
		label += " rid=" + s.iterTag
		s.iterTag = ""
	}
	s.mu.Unlock()
	s.ps.SetTraceLabel(label)

	var user pipeline.User = &sessionUser{s: s}
	if s.autoUser != nil {
		user = s.autoUser
	}
	iterStart := time.Now()
	rep, err := s.ps.RunIterationCtx(s.ctx, user)
	if obs.Enabled() {
		obsIterationSeconds.Observe(time.Since(iterStart).Seconds())
	}

	// Still the sole owner of the pipeline here: refresh the cached view
	// and persist before declaring the iteration done — unless a
	// teardown already closed the session. Skipping persist on closed
	// sessions matters twice: a teardown that timed out on a wedged
	// iteration decided the pipeline state is unsafe to snapshot, and a
	// Close must not have its snapshot deletion raced by a late persist
	// from the zombie iteration. (Eviction persists in teardown itself,
	// after waiting for this function to finish.)
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if !closed {
		s.refreshCache()
		_ = s.reg.persistSession(s)
	}

	s.mu.Lock()
	s.running = false
	s.lastActive = time.Now()
	switch {
	case err == nil:
		repCopy := rep
		s.lastRep = &repCopy
	case errors.Is(err, context.Canceled):
		// Closed or evicted mid-iteration: partial answers stay applied
		// and logged; not an error worth surfacing.
	default:
		s.errMsg = err.Error()
	}
	done := s.iterDone
	s.iterDone = nil
	s.mu.Unlock()
	if done != nil {
		close(done)
	}
}

// sessionUser implements pipeline.User by parking each question on the
// session and blocking until a client answers, the park times out, or
// the session is cancelled — so an abandoned client can never leave the
// iteration goroutine (and its pool worker) blocked forever.
type sessionUser struct{ s *Session }

func (u *sessionUser) BeginCQG(g *erg.Graph) {
	view := &CQGView{}
	for _, v := range g.Vertices() {
		label := tupleLabel(v)
		if r := g.Repair(v); r != nil {
			label += " [" + r.Kind.String() + "]"
		}
		view.Vertices = append(view.Vertices, label)
	}
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(i)
		view.Edges = append(view.Edges, tupleLabel(e.A)+" — "+tupleLabel(e.B))
	}
	u.s.mu.Lock()
	u.s.cqg = view
	u.s.mu.Unlock()
}

func tupleLabel(id dataset.TupleID) string {
	return "t" + strconv.Itoa(int(id))
}

// ask parks a question and waits for its answer, with timeout and
// cancellation unpark paths.
func (u *sessionUser) ask(q Question) Answer {
	s := u.s
	reply := make(chan Answer, 1)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Answer{Skip: true}
	}
	s.nextQID++
	q.ID = s.nextQID
	q.reply = reply
	s.pending = &q
	s.mu.Unlock()

	timer := time.NewTimer(s.reg.cfg.AnswerTimeout)
	defer timer.Stop()
	select {
	case a := <-reply:
		s.touch()
		return a
	case <-s.ctx.Done():
	case <-timer.C:
		obsAnswerTimeouts.Inc()
	}

	// Unpark: retract the question so a late answer gets ErrNoQuestion
	// instead of resolving a question nobody is waiting on.
	s.mu.Lock()
	if s.pending != nil && s.pending.reply == reply {
		s.pending = nil
	}
	s.mu.Unlock()
	// An answer may have been dispatched between the select and the
	// retraction; the reply buffer holds it.
	select {
	case a := <-reply:
		return a
	default:
	}
	return Answer{Skip: true}
}

func (u *sessionUser) tupleCells(id dataset.TupleID) []Cell {
	t := u.s.ps.Table()
	row, ok := t.RowByID(id)
	if !ok {
		return nil
	}
	out := make([]Cell, 0, len(row))
	for c, v := range row {
		out = append(out, Cell{Name: t.Schema()[c].Name, Value: v.String()})
	}
	return out
}

func (u *sessionUser) AnswerT(a, b dataset.TupleID) (bool, bool) {
	ans := u.ask(Question{
		Kind:   "T",
		Prompt: "Are " + tupleLabel(a) + " and " + tupleLabel(b) + " the same entity?",
		Tuples: [][]Cell{u.tupleCells(a), u.tupleCells(b)},
		TupleA: int(a), TupleB: int(b),
	})
	if ans.Skip {
		return false, false
	}
	return ans.Yes, true
}

func (u *sessionUser) AnswerA(column, v1, v2 string) (bool, bool) {
	ans := u.ask(Question{
		Kind:   "A",
		Prompt: "Do " + column + " values “" + v1 + "” and “" + v2 + "” denote the same thing?",
		Column: column, V1: v1, V2: v2,
	})
	if ans.Skip {
		return false, false
	}
	return ans.Yes, true
}

func (u *sessionUser) AnswerM(column string, id dataset.TupleID) (float64, bool) {
	ans := u.ask(Question{
		Kind:   "M",
		Prompt: tupleLabel(id) + " is missing its " + column + " value — what should it be?",
		Column: column,
		Tuples: [][]Cell{u.tupleCells(id)},
		TupleA: int(id),
	})
	if ans.Skip || !ans.HasValue {
		return 0, false
	}
	return ans.Value, true
}

func (u *sessionUser) AnswerO(column string, id dataset.TupleID, current float64) (bool, float64, bool) {
	ans := u.ask(Question{
		Kind:    "O",
		Prompt:  "Is " + column + " of " + tupleLabel(id) + " wrong (an outlier)? If yes, give the corrected value.",
		Column:  column,
		Current: current,
		Tuples:  [][]Cell{u.tupleCells(id)},
		TupleA:  int(id),
	})
	if ans.Skip {
		return false, 0, false
	}
	if !ans.Yes {
		return false, current, true
	}
	if !ans.HasValue {
		return false, 0, false
	}
	return true, ans.Value, true
}
