package service

import (
	"sync"
	"sync/atomic"

	"visclean/internal/fault"
	"visclean/internal/obs"
)

// pool is the bounded iteration worker pool: Workers goroutines drain a
// QueueDepth-buffered job channel. Submission never blocks — a full
// queue is the registry's backpressure signal (ErrOverloaded) — so the
// number of goroutines touching pipeline state is fixed at startup
// instead of growing with request fan-out.
type pool struct {
	jobs chan func()
	wg   sync.WaitGroup
	// queued tracks jobs accepted but not yet picked up by a worker. It
	// is the single source of truth for the queue-depth gauge: len(jobs)
	// snapshots taken from both the submit and the worker side can
	// interleave and publish stale values, an atomic counter cannot.
	queued atomic.Int64

	workers int

	mu     sync.Mutex
	closed bool
}

func newPool(workers, depth int) *pool {
	p := &pool{jobs: make(chan func(), depth), workers: workers}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				p.queued.Add(-1)
				if obs.Enabled() {
					obsQueueDepth.Set(p.queued.Load())
					obsWorkersBusy.Inc()
				}
				job()
				if obs.Enabled() {
					obsWorkersBusy.Dec()
				}
			}
		}()
	}
	return p
}

// stats reports queued jobs, queue capacity and worker count.
func (p *pool) stats() (queued, capacity, workers int) {
	return int(p.queued.Load()), cap(p.jobs), p.workers
}

// trySubmit enqueues a job unless the queue is full or the pool is shut
// down. It reports whether the job was accepted.
func (p *pool) trySubmit(job func()) bool {
	if err := fault.Point("service/pool.submit"); err != nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	// Count before sending so the counter never goes negative when a
	// worker dequeues the job instantly.
	p.queued.Add(1)
	select {
	case p.jobs <- job:
		if obs.Enabled() {
			obsQueueDepth.Set(p.queued.Load())
		}
		return true
	default:
		p.queued.Add(-1)
		return false
	}
}

// shutdown stops accepting jobs, then waits for queued and running jobs
// to finish. Queued jobs whose session context is already cancelled
// return near-instantly (RunIterationCtx checks the context up front).
func (p *pool) shutdown() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	close(p.jobs)
	p.mu.Unlock()
	p.wg.Wait()
}
