package service

// chaos_test.go — the fault-injection chaos harness (DESIGN.md §8).
//
// TestChaosKillRestart drives a storm of concurrent create / iterate /
// answer / evict / close / restore traffic against a registry whose
// persistence and restore paths have deterministic faults armed, kills
// the registry (simulated process death: every final persist fails, so
// disk keeps only what earlier boundaries made durable), restarts it on
// the same snapshot directory, and asserts the recovery invariant:
//
//	a recovered session's state is a bit-exact prefix of the same
//	session's fault-free run — same iteration-boundary charts, bit
//	for bit, never a diverged or merged state.
//
// The invariant is checkable because sessions are deterministic in
// their spec and answer policy: the oracle auto-user answers purely as
// a function of the question (Completeness=1 consults no RNG), and the
// harness's interactive policy below is a pure function too. Protected
// sessions are only killed or evicted at iteration boundaries — a
// mid-iteration cancellation folds partial answers into the history
// and legitimately diverges from an uninterrupted run, which is
// recoverable but not bit-comparable.
//
// Run with -race; check.sh runs it in -short mode (one seed).

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"visclean/internal/fault"
)

// chaosAnswer is the deterministic interactive answer policy: confirm
// every match, keep every outlier candidate, skip missing-value asks.
// It must be a pure function of the question for the bit-exact
// reference comparison to be sound.
func chaosAnswer(q Question) Answer {
	switch q.Kind {
	case "T", "A":
		return Answer{Yes: true}
	case "O":
		return Answer{Yes: false} // not an outlier: keep the current value
	default:
		return Answer{Skip: true}
	}
}

// chartKey fingerprints a session's visible state bit-exactly:
// distance-to-truth plus every chart point's label and y value through
// Float64bits, so even sign-of-zero or last-ulp drift shows up.
func chartKey(st State) string {
	var b strings.Builder
	fmt.Fprintf(&b, "iter=%d;d=%016x;", st.Iteration, math.Float64bits(st.DistToTruth))
	if st.Vis != nil {
		for _, p := range st.Vis.Points {
			fmt.Fprintf(&b, "%s=%016x;", p.Label, math.Float64bits(p.Y))
		}
	}
	return b.String()
}

// stateRetry polls State, riding out transient restore failures
// injected by read/replay faults (they surface as ErrNotFound while
// the snapshot stays on disk) and capacity blips (ErrBusy).
func stateRetry(reg *Registry, id string) (State, error) {
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := reg.State(id)
		if err == nil || !(errors.Is(err, ErrNotFound) || errors.Is(err, ErrBusy)) {
			return st, err
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("session %s unreachable: %w", id, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// driveTo advances a session to targetIter, one fully-completed
// iteration at a time, answering parked questions with chaosAnswer for
// interactive sessions. At every committed boundary it asserts the
// chart bit-matches ref at that iteration (when ref is non-nil). It
// tolerates injected submit, restore and deliver faults by retrying,
// and returns (never t.Fatal's — it runs on harness goroutines).
func driveTo(reg *Registry, id string, targetIter int, interactive bool, ref []string) error {
	deadline := time.Now().Add(180 * time.Second)
	for {
		if time.Now().After(deadline) {
			return fmt.Errorf("session %s stalled before iteration %d", id, targetIter)
		}
		st, err := stateRetry(reg, id)
		if err != nil {
			return err
		}
		if st.Err != "" {
			return fmt.Errorf("session %s iteration error: %s", id, st.Err)
		}
		if !st.Running {
			if ref != nil && st.Iteration < len(ref) {
				if got, want := chartKey(st), ref[st.Iteration]; got != want {
					return fmt.Errorf("session %s diverged from fault-free run at iteration %d:\n got %s\nwant %s",
						id, st.Iteration, got, want)
				}
			}
			if st.Iteration >= targetIter || (st.Report != nil && st.Report.Exhausted) {
				return nil
			}
			switch err := reg.Iterate(id); {
			case err == nil, errors.Is(err, ErrIterationRunning):
			case errors.Is(err, ErrOverloaded), errors.Is(err, ErrNotFound), errors.Is(err, ErrBusy):
				time.Sleep(5 * time.Millisecond) // backpressure or injected restore fault
			default:
				return fmt.Errorf("iterate %s: %w", id, err)
			}
			continue
		}
		if interactive && st.Question != nil {
			// An injected deliver fault leaves the question pending; the
			// next loop pass retries with the identical policy answer.
			if err := reg.Answer(id, chaosAnswer(*st.Question)); err != nil &&
				!errors.Is(err, ErrNoQuestion) && !errors.Is(err, ErrNotFound) {
				time.Sleep(2 * time.Millisecond)
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// referenceCharts runs spec in a pristine fault-free registry and
// records the chart fingerprint at every iteration boundary, index =
// iterations completed, stopping at maxIters or question exhaustion.
func referenceCharts(t *testing.T, spec Spec, maxIters int, interactive bool) []string {
	t.Helper()
	reg := NewRegistry(Config{
		MaxSessions: 4, Workers: 2,
		SweepInterval: time.Hour, IdleTTL: time.Hour,
		Logf: t.Logf,
	})
	defer reg.Shutdown()
	id, err := reg.Create(spec)
	if err != nil {
		t.Fatalf("reference create: %v", err)
	}
	var ref []string
	for i := 0; ; i++ {
		if err := driveTo(reg, id, i, interactive, nil); err != nil {
			t.Fatalf("reference drive: %v", err)
		}
		st, err := reg.State(id)
		if err != nil {
			t.Fatalf("reference state: %v", err)
		}
		if st.Iteration != i {
			// Exhausted before reaching i: the previous entry is final.
			break
		}
		ref = append(ref, chartKey(st))
		if i >= maxIters || (st.Report != nil && st.Report.Exhausted) {
			break
		}
	}
	if len(ref) < 2 {
		t.Fatalf("reference run for seed %d produced only %d boundary states", spec.Seed, len(ref))
	}
	return ref
}

// forceIdle backdates a session's idle clock so the next Sweep treats
// it as TTL-expired — the harness's lever for forcing eviction at an
// iteration boundary of its choosing.
func forceIdle(reg *Registry, id string) {
	reg.mu.Lock()
	s := reg.sessions[id]
	reg.mu.Unlock()
	if s != nil {
		s.mu.Lock()
		s.lastActive = time.Now().Add(-2 * time.Hour)
		s.mu.Unlock()
	}
}

// armStorm arms the deterministic fault storm: every persistence and
// restore failpoint fires on a fixed schedule, so a given operation
// sequence always hits the same faults.
func armStorm() {
	fault.ArmError("service/persist.write", nil, fault.Schedule{Calls: []int{2}, Every: 9})
	fault.ArmError("service/persist.sync", nil, fault.Schedule{Every: 13})
	fault.ArmCrash("service/persist.rename", fault.Schedule{Calls: []int{5}})
	fault.ArmError("service/persist.read", nil, fault.Schedule{Every: 7})
	fault.ArmError("service/restore.replay", nil, fault.Schedule{Every: 5})
	fault.ArmDelay("service/restore.build", 2*time.Millisecond, fault.Schedule{Every: 3})
	fault.ArmError("service/answer.deliver", nil, fault.Schedule{Every: 6})
	fault.ArmError("service/pool.submit", nil, fault.Schedule{Every: 17})
}

// killRegistry simulates the process dying with sessions live: every
// persist during Shutdown fails, so disk keeps exactly what earlier
// iteration-boundary persists made durable, and all goroutines are
// reclaimed (unlike a real kill, the test process must stay leak-free
// under -race).
func killRegistry(reg *Registry) {
	disarm := fault.ArmError("service/persist.write",
		errors.New("injected kill: process died before this write"), fault.Schedule{Always: true})
	defer disarm()
	reg.Shutdown()
}

// churn runs one disposable-client loop: create, iterate, poll, close,
// list — the background traffic the protected sessions must survive.
// Every error a client could plausibly see under load (busy, overload,
// injected faults) is tolerated; only the protected sessions carry
// assertions.
func churn(reg *Registry, seed int64, stop <-chan struct{}) {
	for n := int64(0); ; n++ {
		select {
		case <-stop:
			return
		default:
		}
		id, err := reg.Create(Spec{Dataset: "D1", Scale: 0.004, Seed: 1000 + seed*100 + n%7, Auto: true})
		if err != nil {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		_ = reg.Iterate(id)
		for i := 0; i < 50; i++ {
			st, err := reg.State(id)
			if err != nil || !st.Running {
				break
			}
			select {
			case <-stop:
				_ = reg.Close(id)
				return
			default:
			}
			time.Sleep(2 * time.Millisecond)
		}
		reg.List()
		_ = reg.Close(id)
	}
}

func newChaosRegistry(t *testing.T, dir string) *Registry {
	t.Helper()
	return NewRegistry(Config{
		MaxSessions:   8,
		Workers:       4,
		SweepInterval: time.Hour, // sweeps are driven explicitly, at boundaries
		IdleTTL:       time.Hour,
		SnapshotDir:   dir,
		Logf:          t.Logf,
	})
}

// TestChaosKillRestart is the kill-restart chaos loop. Per seed: two
// protected sessions (one oracle-answered, one interactive) advance
// through kill/restart cycles under a fault storm and concurrent
// churn, with a forced boundary eviction each cycle; after every
// restart their recovered state must be a bit-exact prefix of the
// fault-free reference run, and a final fault-free registry must drive
// both to the reference's last boundary chart.
func TestChaosKillRestart(t *testing.T) {
	if testing.Short() && testing.Verbose() {
		t.Log("short mode: one seed")
	}
	seeds := []int64{1, 2}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			chaosRun(t, seed)
		})
	}
}

func chaosRun(t *testing.T, seed int64) {
	defer fault.Reset()
	const maxIters = 4
	specAuto := testSpec(seed, true)
	specInter := testSpec(seed+50, false)
	refAuto := referenceCharts(t, specAuto, maxIters, false)
	refInter := referenceCharts(t, specInter, maxIters, true)
	t.Logf("reference runs: auto %d boundaries, interactive %d boundaries", len(refAuto), len(refInter))

	dir := t.TempDir()
	type protected struct {
		id          string
		spec        Spec
		interactive bool
		ref         []string
		achieved    int // iterations committed before the last kill
	}
	prots := []*protected{
		{spec: specAuto, ref: refAuto},
		{spec: specInter, interactive: true, ref: refInter},
	}

	const cycles = 2
	for cycle := 0; cycle < cycles; cycle++ {
		fault.Reset()
		reg := newChaosRegistry(t, dir)
		if cycle == 0 {
			for _, p := range prots {
				id, err := reg.Create(p.spec)
				if err != nil {
					t.Fatalf("cycle %d: create protected: %v", cycle, err)
				}
				p.id = id
			}
		} else {
			reg.RestoreAll()
			// Recovery invariant: what came back is a bit-exact prefix of
			// the fault-free run, no further along than what was achieved.
			for _, p := range prots {
				st, err := stateRetry(reg, p.id)
				if err != nil {
					t.Fatalf("cycle %d: protected session %s lost across kill: %v", cycle, p.id, err)
				}
				if st.Iteration > p.achieved {
					t.Fatalf("cycle %d: session %s recovered AHEAD of its pre-kill state (%d > %d)",
						cycle, p.id, st.Iteration, p.achieved)
				}
				if got, want := chartKey(st), p.ref[st.Iteration]; got != want {
					t.Fatalf("cycle %d: session %s recovered to a diverged state at iteration %d:\n got %s\nwant %s",
						cycle, p.id, st.Iteration, got, want)
				}
				t.Logf("cycle %d: session %s recovered at iteration %d/%d", cycle, p.id, st.Iteration, len(p.ref)-1)
			}
		}

		armStorm()
		stop := make(chan struct{})
		var churners sync.WaitGroup
		for c := int64(0); c < 3; c++ {
			churners.Add(1)
			go func(c int64) {
				defer churners.Done()
				churn(reg, seed*10+c, stop)
			}(c)
		}
		driveErrs := make(chan error, len(prots))
		var drivers sync.WaitGroup
		for _, p := range prots {
			target := min((cycle+1)*2, len(p.ref)-1)
			drivers.Add(1)
			go func(p *protected, target int) {
				defer drivers.Done()
				driveErrs <- driveTo(reg, p.id, target, p.interactive, p.ref)
			}(p, target)
		}
		drivers.Wait()
		close(stop)
		churners.Wait()
		close(driveErrs)
		for err := range driveErrs {
			if err != nil {
				t.Fatalf("cycle %d: %v", cycle, err)
			}
		}

		// Forced eviction at the boundary, still under the storm: a
		// session whose persist fails is kept live (keep-alive path), a
		// persisted one restores lazily — either way the chart must be
		// exactly what it was before the eviction.
		for _, p := range prots {
			forceIdle(reg, p.id)
		}
		reg.Sweep()
		for _, p := range prots {
			st, err := stateRetry(reg, p.id)
			if err != nil {
				t.Fatalf("cycle %d: session %s lost across boundary eviction: %v", cycle, p.id, err)
			}
			if got, want := chartKey(st), p.ref[st.Iteration]; got != want {
				t.Fatalf("cycle %d: session %s diverged across eviction at iteration %d:\n got %s\nwant %s",
					cycle, p.id, st.Iteration, got, want)
			}
			p.achieved = st.Iteration
		}

		fault.Reset()
		killRegistry(reg)
	}

	// Epilogue: a healthy registry restores the survivors and finishes
	// the job — the full fault history must leave both sessions able to
	// reach the reference run's final chart, bit for bit.
	fault.Reset()
	reg := newChaosRegistry(t, dir)
	defer reg.Shutdown()
	reg.RestoreAll()
	for _, p := range prots {
		target := len(p.ref) - 1
		if err := driveTo(reg, p.id, target, p.interactive, p.ref); err != nil {
			t.Fatalf("final drive: %v", err)
		}
		st, err := stateRetry(reg, p.id)
		if err != nil {
			t.Fatal(err)
		}
		exhausted := st.Report != nil && st.Report.Exhausted
		if st.Iteration != target && !exhausted {
			t.Fatalf("final drive: session %s stopped at iteration %d, want %d", p.id, st.Iteration, target)
		}
		if got, want := chartKey(st), p.ref[st.Iteration]; got != want {
			t.Fatalf("final state of %s diverged from fault-free run:\n got %s\nwant %s", p.id, got, want)
		}
		t.Logf("final: session %s at iteration %d matches the fault-free run bit for bit", p.id, st.Iteration)
	}
}
