package service

// faults_test.go — failpoint-driven regression tests for the
// concurrency and durability bugs the fault-injection layer exposed:
// the close/restore resurrection race, orphaned snapshot temp files,
// the wedged-iteration teardown timeout, persist retry + eviction
// keep-alive, RestoreAll at the capacity cap, and the worker-pool
// queue-depth gauge.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"visclean/internal/dataset"
	"visclean/internal/fault"
	"visclean/internal/obs"
	"visclean/internal/pipeline"
)

// logCapture is a concurrency-safe Config.Logf sink.
type logCapture struct {
	mu    sync.Mutex
	lines []string
}

func (lc *logCapture) logf(format string, args ...any) {
	lc.mu.Lock()
	lc.lines = append(lc.lines, fmt.Sprintf(format, args...))
	lc.mu.Unlock()
}

func (lc *logCapture) contains(sub string) bool {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	for _, l := range lc.lines {
		if strings.Contains(l, sub) {
			return true
		}
	}
	return false
}

// TestCloseRestoreNoResurrection drives the close/restore race: Close
// on a disk-only session runs while a concurrent restore has already
// read the snapshot (a fault delay inside restore widens the window
// from nanoseconds to 150ms). The per-id lock must serialize them so
// the closed id can neither stay registered nor re-persist its
// snapshot.
func TestCloseRestoreNoResurrection(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	reg := newTestRegistry(t, func(c *Config) {
		c.SnapshotDir = dir
		c.IdleTTL = time.Millisecond
	})
	id, err := reg.Create(testSpec(1, false))
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	if n := reg.Sweep(); n != 1 {
		t.Fatalf("sweep evicted %d sessions, want 1", n)
	}
	if reg.Len() != 0 {
		t.Fatalf("session still live after eviction")
	}

	fault.ArmDelay("service/restore.build", 150*time.Millisecond, fault.Schedule{Always: true})
	restoreDone := make(chan error, 1)
	go func() {
		_, err := reg.State(id) // lazy restore, parked in the delay point
		restoreDone <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the restore read the snapshot
	if err := reg.Close(id); err != nil {
		t.Fatalf("close during restore: %v", err)
	}
	<-restoreDone // either outcome is legal; the invariant is below
	fault.Reset()

	if _, err := reg.State(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("closed session resurrected: State err = %v, want ErrNotFound", err)
	}
	if _, err := os.Stat(reg.snapshotPath(id)); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("closed session's snapshot reappeared on disk")
	}
}

// TestOrphanTempSweep crash-simulates a kill between CreateTemp and
// Rename, then checks the registry reclaims the aged orphan while
// sparing a fresh temp file (which could belong to a live writer).
func TestOrphanTempSweep(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()

	fault.ArmCrash("service/persist.rename", fault.Schedule{Calls: []int{1}})
	err := WriteSnapshotFile(filepath.Join(dir, "dead0001.json"),
		Snapshot{ID: "dead0001", Spec: testSpec(1, false).WithDefaults()})
	if !errors.Is(err, fault.ErrCrash) {
		t.Fatalf("crash failpoint: err = %v, want ErrCrash", err)
	}
	fault.Reset()
	if _, err := os.Stat(filepath.Join(dir, "dead0001.json")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("crashed write still produced a final snapshot")
	}

	var orphan string
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".json.tmp-") {
			orphan = filepath.Join(dir, e.Name())
		}
	}
	if orphan == "" {
		t.Fatal("simulated crash left no orphan temp file")
	}
	old := time.Now().Add(-2 * orphanTempGrace)
	if err := os.Chtimes(orphan, old, old); err != nil {
		t.Fatal(err)
	}
	fresh := filepath.Join(dir, "live0001.json.tmp-42")
	if err := os.WriteFile(fresh, []byte("in flight"), 0o644); err != nil {
		t.Fatal(err)
	}

	newTestRegistry(t, func(c *Config) { c.SnapshotDir = dir })
	if _, err := os.Stat(orphan); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("aged orphan temp file survived the sweep")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatalf("fresh temp file was swept (grace period ignored): %v", err)
	}
}

// wedgedUser wedges the first question forever, ignoring cancellation —
// the "stuck user code" the teardown timeout exists for.
type wedgedUser struct {
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func (u *wedgedUser) block() {
	u.once.Do(func() { close(u.started) })
	<-u.release
}

func (u *wedgedUser) AnswerT(a, b dataset.TupleID) (bool, bool) { u.block(); return false, false }
func (u *wedgedUser) AnswerA(c, v1, v2 string) (bool, bool)     { u.block(); return false, false }
func (u *wedgedUser) AnswerM(c string, id dataset.TupleID) (float64, bool) {
	u.block()
	return 0, false
}
func (u *wedgedUser) AnswerO(c string, id dataset.TupleID, cur float64) (bool, float64, bool) {
	u.block()
	return false, 0, false
}

// TestTeardownTimeoutDropsWedged: a wedged iteration must be dropped
// without a snapshot after Config.TeardownTimeout (driven here by the
// injected teardown clock), while a healthy session in the same sweep
// persists — and the zombie iteration finishing later must not write a
// snapshot for the dropped session either.
func TestTeardownTimeoutDropsWedged(t *testing.T) {
	if got := (Config{}).withDefaults().TeardownTimeout; got != 30*time.Second {
		t.Fatalf("default TeardownTimeout = %v, want 30s", got)
	}

	dir := t.TempDir()
	wedge := &wedgedUser{started: make(chan struct{}), release: make(chan struct{})}
	expired := make(chan time.Time)
	close(expired) // the injected teardown clock fires immediately
	lc := &logCapture{}
	reg := NewRegistry(Config{
		MaxSessions: 4, Workers: 2, SweepInterval: time.Hour,
		IdleTTL: time.Millisecond, SnapshotDir: dir,
		TeardownTimeout: 123 * time.Millisecond,
		Logf:            lc.logf,
		teardownAfter:   func(time.Duration) <-chan time.Time { return expired },
		Factory: func(spec Spec) (*pipeline.Session, pipeline.User, error) {
			ps, auto, err := StandardFactory(spec)
			if err != nil {
				return nil, nil, err
			}
			if spec.Seed == 999 {
				return ps, wedge, nil
			}
			return ps, auto, nil
		},
	})
	release := sync.OnceFunc(func() { close(wedge.release) })
	defer reg.Shutdown() // deferred first so the release below runs before it
	defer release()

	healthy, err := reg.Create(testSpec(1, true))
	if err != nil {
		t.Fatal(err)
	}
	if err := iterateRetry(reg, healthy); err != nil {
		t.Fatal(err)
	}
	if _, err := waitIdle(reg, healthy); err != nil {
		t.Fatal(err)
	}
	wedged, err := reg.Create(testSpec(999, false))
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Iterate(wedged); err != nil {
		t.Fatal(err)
	}
	<-wedge.started // the iteration is inside stuck user code now
	// Remove the creation-time snapshot so "dropped without a snapshot"
	// is directly observable as file absence.
	if err := os.Remove(reg.snapshotPath(wedged)); err != nil {
		t.Fatal(err)
	}

	time.Sleep(5 * time.Millisecond) // both idle past the 1ms TTL
	if n := reg.Sweep(); n != 2 {
		t.Fatalf("sweep evicted %d sessions, want 2", n)
	}
	if reg.Len() != 0 {
		t.Fatalf("registry still holds %d sessions", reg.Len())
	}
	if !lc.contains("did not stop within 123ms") {
		t.Fatal("wedged drop was not logged with the configured timeout")
	}
	if _, err := ReadSnapshotFile(reg.snapshotPath(healthy)); err != nil {
		t.Fatalf("healthy session was not persisted: %v", err)
	}
	if _, err := os.Stat(reg.snapshotPath(wedged)); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("wedged session was snapshotted despite the timeout")
	}

	// Release the zombie: when its iteration finally finishes, the
	// closed-session check must suppress its end-of-iteration persist.
	release()
	time.Sleep(100 * time.Millisecond)
	if _, err := os.Stat(reg.snapshotPath(wedged)); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("zombie iteration resurrected the dropped session's snapshot")
	}
}

// TestPersistRetryThenEvictionKeepAlive covers the two persist
// hardening layers: a transient write failure is absorbed by the retry
// loop, and a persistent one makes eviction keep the session live
// (bumping visclean_persist_failures_total) instead of silently
// dropping it.
func TestPersistRetryThenEvictionKeepAlive(t *testing.T) {
	defer fault.Reset()
	prev := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(prev)
	base := obsPersistFailures.Value()

	dir := t.TempDir()
	lc := &logCapture{}
	reg := newTestRegistry(t, func(c *Config) {
		c.SnapshotDir = dir
		c.IdleTTL = time.Millisecond
		c.Logf = lc.logf
	})
	id, err := reg.Create(testSpec(1, true))
	if err != nil {
		t.Fatal(err)
	}

	// Transient failure: exactly the next write attempt fails; the
	// retry inside persistSession must succeed.
	fault.ArmError("service/persist.write", errors.New("injected hiccup"), fault.Schedule{Calls: []int{1}})
	if err := iterateRetry(reg, id); err != nil {
		t.Fatal(err)
	}
	if _, err := waitIdle(reg, id); err != nil {
		t.Fatal(err)
	}
	if hits := fault.Hits("service/persist.write"); hits < 2 {
		t.Fatalf("persist reached the write point %d times, want ≥ 2 (retry)", hits)
	}
	snap, err := ReadSnapshotFile(reg.snapshotPath(id))
	if err != nil {
		t.Fatalf("snapshot unreadable after retried persist: %v", err)
	}
	if snap.History.NumAnswers() == 0 {
		t.Fatal("retried persist did not capture the iteration's answers")
	}
	if got := obsPersistFailures.Value(); got != base {
		t.Fatalf("transient failure counted as persist failure (%d → %d)", base, got)
	}
	fault.Reset()

	// Persistent failure: eviction must keep the session live.
	fault.ArmError("service/persist.write", errors.New("injected disk gone"), fault.Schedule{Always: true})
	time.Sleep(5 * time.Millisecond)
	if n := reg.Sweep(); n != 0 {
		t.Fatalf("sweep evicted %d sessions despite failed persist, want 0", n)
	}
	if reg.Len() != 1 {
		t.Fatal("session dropped although its snapshot could not be written")
	}
	if got := obsPersistFailures.Value(); got != base+1 {
		t.Fatalf("persist failures counter = %d, want %d", got, base+1)
	}
	if !lc.contains("kept live after persist failure") {
		t.Fatal("keep-alive not logged")
	}
	if _, err := reg.State(id); err != nil {
		t.Fatalf("kept session unusable: %v", err)
	}

	// Disk heals: the next sweep evicts cleanly.
	fault.Reset()
	time.Sleep(5 * time.Millisecond)
	if n := reg.Sweep(); n != 1 {
		t.Fatalf("post-recovery sweep evicted %d sessions, want 1", n)
	}
	if reg.Len() != 0 {
		t.Fatal("session still live after successful eviction")
	}
	if _, err := ReadSnapshotFile(reg.snapshotPath(id)); err != nil {
		t.Fatalf("post-recovery eviction left no snapshot: %v", err)
	}
}

// TestRestoreAllAtCapacity: more snapshots on disk than MaxSessions —
// exactly cap sessions restore, the rest stay intact on disk for lazy
// restore, and the over-cap skips are reported as capacity, never as
// corruption.
func TestRestoreAllAtCapacity(t *testing.T) {
	dir := t.TempDir()
	reg1 := NewRegistry(Config{
		MaxSessions: 8, Workers: 2, SweepInterval: time.Hour,
		SnapshotDir: dir, Logf: t.Logf,
	})
	for i := 0; i < 4; i++ {
		if _, err := reg1.Create(testSpec(int64(i+1), false)); err != nil {
			t.Fatal(err)
		}
	}
	reg1.Shutdown()

	lc := &logCapture{}
	reg2 := NewRegistry(Config{
		MaxSessions: 2, Workers: 2, SweepInterval: time.Hour,
		SnapshotDir: dir, Logf: lc.logf,
	})
	t.Cleanup(reg2.Shutdown)
	if n := reg2.RestoreAll(); n != 2 {
		t.Fatalf("RestoreAll restored %d sessions, want exactly the cap (2)", n)
	}
	if reg2.Len() != 2 {
		t.Fatalf("Len after capped restore = %d, want 2", reg2.Len())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	jsonFiles := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".json") {
			jsonFiles++
		}
	}
	if jsonFiles != 4 {
		t.Fatalf("%d snapshots on disk after capped restore, want all 4 intact", jsonFiles)
	}
	if lc.contains("skipping snapshot") || lc.contains("corrupt") {
		t.Fatalf("over-cap snapshots logged as corruption: %v", lc.lines)
	}
	if !lc.contains("left on disk") {
		t.Fatal("capacity skip was not reported")
	}
}

// TestQueueDepthGauge pins the pool's queue-depth gauge to the atomic
// job counter: with one worker blocked, three queued jobs must read as
// exactly 3, and the gauge must return to 0 once drained — regardless
// of how submit and dequeue interleave.
func TestQueueDepthGauge(t *testing.T) {
	prev := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(prev)
	obsQueueDepth.Set(0)
	obsWorkersBusy.Set(0)

	p := newPool(1, 4)
	defer p.shutdown()
	block := make(chan struct{})
	running := make(chan struct{})
	if !p.trySubmit(func() { running <- struct{}{}; <-block }) {
		t.Fatal("submit rejected on an empty pool")
	}
	<-running // the sole worker is busy; the queue is empty
	for i := 0; i < 3; i++ {
		if !p.trySubmit(func() {}) {
			t.Fatalf("submit %d rejected below queue depth", i)
		}
	}
	if got := obsQueueDepth.Value(); got != 3 {
		t.Fatalf("queue depth gauge = %d, want 3", got)
	}
	if got := obsWorkersBusy.Value(); got != 1 {
		t.Fatalf("workers busy gauge = %d, want 1", got)
	}
	close(block)
	deadline := time.Now().Add(10 * time.Second)
	for obsQueueDepth.Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth gauge stuck at %d after drain", obsQueueDepth.Value())
		}
		time.Sleep(time.Millisecond)
	}
}
