package erg

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// Fingerprint hashes the graph's full logical content — vertex set, edge
// list (in insertion order, every payload field, floats by exact bit
// pattern), and vertex repairs — into one uint64. Two graphs built by
// equivalent code paths fingerprint equal iff they are field-identical,
// which is how the detect-equivalence suite compares an incrementally
// maintained ERG against a full rebuild without materializing both.
func (g *Graph) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wf := func(f float64) { wu(math.Float64bits(f)) }
	wb := func(b bool) {
		if b {
			wu(1)
		} else {
			wu(0)
		}
	}
	ws := func(s string) {
		wu(uint64(len(s)))
		h.Write([]byte(s))
	}

	wu(uint64(len(g.vertices)))
	for _, v := range g.vertices {
		wu(uint64(v))
	}
	wu(uint64(len(g.edges)))
	for _, e := range g.edges {
		wu(uint64(e.A))
		wu(uint64(e.B))
		wb(e.HasT)
		wf(e.PT)
		wb(e.HasA)
		wf(e.PA)
		ws(e.ACol)
		ws(e.AV1)
		ws(e.AV2)
		wf(e.Benefit)
	}
	reps := g.Repairs()
	wu(uint64(len(reps)))
	for _, r := range reps {
		wu(uint64(r.ID))
		wu(uint64(r.Kind))
		wf(r.Current)
		wf(r.Suggested)
		wf(r.Score)
		wu(uint64(len(r.Neighbors)))
		for _, n := range r.Neighbors {
			wu(uint64(n))
		}
		wf(r.Benefit)
	}
	return h.Sum64()
}
