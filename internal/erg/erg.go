// Package erg implements the Errors and Repairs Graph of Definition 2.1:
// vertices are tuples; an edge between two vertices carries a tuple-level
// matching probability p^t (a T-question) and/or an attribute-level
// matching probability p^a (an A-question); a vertex may carry an outlier
// repair (O-question, the paper's red label) or a missing-value repair
// (M-question, the hollow label). A composite question graph (CQG,
// Definition 2.2) is a connected induced subgraph.
//
// The package is a pure graph structure: detectors populate it (see
// internal/pipeline) and selection algorithms consume it (see
// internal/cqgselect). Benefits are attached by the benefit model; the
// accounting follows DESIGN.md: an edge's Benefit holds B_T + B_A, a
// vertex repair's Benefit holds B_M or B_O, the weight used to *sort*
// edges folds incident vertex benefits in (as in the paper's Example 5),
// and a subgraph's total benefit counts each vertex question once.
package erg

import (
	"fmt"
	"sort"

	"visclean/internal/dataset"
)

// RepairKind distinguishes vertex question types.
type RepairKind int

const (
	// Missing marks an M-question: the tuple's Y cell is null.
	Missing RepairKind = iota
	// Outlier marks an O-question: the tuple's Y cell is suspect.
	Outlier
)

func (k RepairKind) String() string {
	if k == Outlier {
		return "O"
	}
	return "M"
}

// Edge is one ERG edge with its question payloads.
type Edge struct {
	A, B dataset.TupleID

	// T-question payload: are tuples A and B the same entity?
	HasT bool
	PT   float64 // tuple-level matching probability p^t

	// A-question payload: are two attribute values the same entity? ACol
	// names the column the values come from (the X axis, or a
	// categorical column referenced by the query's WHERE clause).
	HasA     bool
	PA       float64 // attribute-level matching probability p^a
	ACol     string  // column the A-question is about
	AV1, AV2 string  // the two attribute values in question

	// Benefit is B_T + B_A, set by the benefit model.
	Benefit float64
}

// VertexRepair is an M- or O-question attached to a vertex.
type VertexRepair struct {
	ID        dataset.TupleID
	Kind      RepairKind
	Current   float64 // present (suspect) value; meaningful for Outlier
	Suggested float64 // proposed repair value
	Score     float64 // detector score (outlier score; 0 for missing)
	Neighbors []dataset.TupleID

	// Benefit is B_M or B_O, set by the benefit model.
	Benefit float64
}

// Graph is an ERG. Construct with New, then AddEdge/SetRepair.
type Graph struct {
	vertices []dataset.TupleID
	index    map[dataset.TupleID]int
	edges    []Edge
	adj      [][]int // vertex index -> incident edge indices
	repairs  map[dataset.TupleID]*VertexRepair
}

// New creates an ERG over the given vertex set (duplicates are an error).
func New(vertices []dataset.TupleID) (*Graph, error) {
	g := &Graph{
		vertices: append([]dataset.TupleID(nil), vertices...),
		index:    make(map[dataset.TupleID]int, len(vertices)),
		adj:      make([][]int, len(vertices)),
		repairs:  make(map[dataset.TupleID]*VertexRepair),
	}
	for i, v := range g.vertices {
		if _, dup := g.index[v]; dup {
			return nil, fmt.Errorf("erg: duplicate vertex %d", v)
		}
		g.index[v] = i
	}
	return g, nil
}

// MustNew is New for known-good vertex sets.
func MustNew(vertices []dataset.TupleID) *Graph {
	g, err := New(vertices)
	if err != nil {
		panic(err)
	}
	return g
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.vertices) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Vertices returns the vertex ids. Callers must not mutate it.
func (g *Graph) Vertices() []dataset.TupleID { return g.vertices }

// HasVertex reports vertex membership.
func (g *Graph) HasVertex(id dataset.TupleID) bool {
	_, ok := g.index[id]
	return ok
}

// AddEdge inserts an edge; both endpoints must be vertices and distinct,
// and at most one edge may join a pair.
func (g *Graph) AddEdge(e Edge) error {
	ia, okA := g.index[e.A]
	ib, okB := g.index[e.B]
	if !okA || !okB {
		return fmt.Errorf("erg: edge (%d,%d) references unknown vertex", e.A, e.B)
	}
	if e.A == e.B {
		return fmt.Errorf("erg: self loop on %d", e.A)
	}
	for _, ei := range g.adj[ia] {
		ex := g.edges[ei]
		if (ex.A == e.A && ex.B == e.B) || (ex.A == e.B && ex.B == e.A) {
			return fmt.Errorf("erg: duplicate edge (%d,%d)", e.A, e.B)
		}
	}
	g.edges = append(g.edges, e)
	ei := len(g.edges) - 1
	g.adj[ia] = append(g.adj[ia], ei)
	g.adj[ib] = append(g.adj[ib], ei)
	return nil
}

// Edge returns a pointer to the i-th edge (benefit model mutates Benefit).
func (g *Graph) Edge(i int) *Edge { return &g.edges[i] }

// Edges returns all edges. The slice is the graph's own storage.
func (g *Graph) Edges() []Edge { return g.edges }

// SetRepair attaches (or replaces) a vertex repair; the vertex must exist.
func (g *Graph) SetRepair(r VertexRepair) error {
	if _, ok := g.index[r.ID]; !ok {
		return fmt.Errorf("erg: repair references unknown vertex %d", r.ID)
	}
	cp := r
	g.repairs[r.ID] = &cp
	return nil
}

// Repair returns the vertex repair of id, or nil.
func (g *Graph) Repair(id dataset.TupleID) *VertexRepair { return g.repairs[id] }

// Repairs returns all vertex repairs ordered by tuple id.
func (g *Graph) Repairs() []*VertexRepair {
	out := make([]*VertexRepair, 0, len(g.repairs))
	for _, r := range g.repairs {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// IncidentEdges returns the indices of edges touching id.
func (g *Graph) IncidentEdges(id dataset.TupleID) []int {
	i, ok := g.index[id]
	if !ok {
		return nil
	}
	return g.adj[i]
}

// Neighbors returns the adjacent vertex ids of id, sorted.
func (g *Graph) Neighbors(id dataset.TupleID) []dataset.TupleID {
	i, ok := g.index[id]
	if !ok {
		return nil
	}
	out := make([]dataset.TupleID, 0, len(g.adj[i]))
	for _, ei := range g.adj[i] {
		e := g.edges[ei]
		if e.A == id {
			out = append(out, e.B)
		} else {
			out = append(out, e.A)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// EdgeSortWeight is the weight GSS sorts by: the edge's own benefit plus
// the benefits of repairs on its endpoints (Example 5 folds the O-repair
// of t2 into edge (t1,t2)).
func (g *Graph) EdgeSortWeight(i int) float64 {
	e := g.edges[i]
	w := e.Benefit
	if r := g.repairs[e.A]; r != nil {
		w += r.Benefit
	}
	if r := g.repairs[e.B]; r != nil {
		w += r.Benefit
	}
	return w
}

// SubgraphBenefit is the total benefit of the subgraph induced by the
// vertex set: the sum of induced edge benefits plus each member vertex's
// repair benefit counted once. It runs in O(Σ deg(v)) over the members —
// selection algorithms evaluate many candidate subgraphs per call, so a
// full edge scan here would make GSS quadratic in the ERG size.
//
// Summation runs in a canonical order — the deduped vertex set sorted by
// tuple id — NOT the caller's slice order or map iteration order:
// floating-point addition is order-sensitive, and a per-run summation
// order produces last-ULP benefit differences that flip strict >
// comparisons in GSS and B&B — same seed, different CQG. Any two calls
// with the same vertex *set* return the same bits.
func (g *Graph) SubgraphBenefit(vertices []dataset.TupleID) float64 {
	in := make(map[dataset.TupleID]struct{}, len(vertices))
	ordered := make([]dataset.TupleID, 0, len(vertices))
	for _, v := range vertices {
		if _, dup := in[v]; dup {
			continue
		}
		in[v] = struct{}{}
		ordered = append(ordered, v)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	total := 0.0
	seen := make(map[int]struct{})
	for _, v := range ordered {
		i, ok := g.index[v]
		if !ok {
			continue
		}
		for _, ei := range g.adj[i] {
			if _, dup := seen[ei]; dup {
				continue
			}
			e := g.edges[ei]
			if _, okA := in[e.A]; !okA {
				continue
			}
			if _, okB := in[e.B]; !okB {
				continue
			}
			seen[ei] = struct{}{}
			total += e.Benefit
		}
		if r := g.repairs[v]; r != nil {
			total += r.Benefit
		}
	}
	return total
}

// Connected reports whether the induced subgraph on the vertex set is
// connected (a requirement for a CQG). Empty sets are not connected;
// singletons are.
func (g *Graph) Connected(vertices []dataset.TupleID) bool {
	if len(vertices) == 0 {
		return false
	}
	in := make(map[dataset.TupleID]struct{}, len(vertices))
	for _, v := range vertices {
		if !g.HasVertex(v) {
			return false
		}
		in[v] = struct{}{}
	}
	seen := map[dataset.TupleID]struct{}{vertices[0]: {}}
	stack := []dataset.TupleID{vertices[0]}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range g.Neighbors(v) {
			if _, member := in[nb]; !member {
				continue
			}
			if _, done := seen[nb]; done {
				continue
			}
			seen[nb] = struct{}{}
			stack = append(stack, nb)
		}
	}
	return len(seen) == len(in)
}

// InducedSubgraph materializes the CQG on the vertex set, copying edges
// and repairs. Vertices missing from g are ignored.
func (g *Graph) InducedSubgraph(vertices []dataset.TupleID) *Graph {
	var kept []dataset.TupleID
	in := make(map[dataset.TupleID]struct{}, len(vertices))
	for _, v := range vertices {
		if !g.HasVertex(v) {
			continue
		}
		if _, dup := in[v]; dup {
			continue
		}
		in[v] = struct{}{}
		kept = append(kept, v)
	}
	sub := MustNew(kept)
	for _, e := range g.edges {
		if _, okA := in[e.A]; !okA {
			continue
		}
		if _, okB := in[e.B]; !okB {
			continue
		}
		if err := sub.AddEdge(e); err != nil {
			panic(err) // cannot happen: source graph had no duplicates
		}
	}
	for _, v := range kept {
		if r := g.repairs[v]; r != nil {
			if err := sub.SetRepair(*r); err != nil {
				panic(err)
			}
		}
	}
	return sub
}
