package erg

import "testing"

// TestFingerprintStableAndSensitive: two identically built graphs hash
// equal, and any single field change — vertex set, edge payload, repair
// payload, benefit — moves the hash. The detect-equivalence suite leans
// on this to compare whole ERGs in one word.
func TestFingerprintStableAndSensitive(t *testing.T) {
	base := fig4(t).Fingerprint()
	if again := fig4(t).Fingerprint(); again != base {
		t.Fatalf("identical graphs hash differently: %016x vs %016x", base, again)
	}

	mutants := map[string]func(*Graph){
		"edge benefit":   func(g *Graph) { g.edges[0].Benefit += 0.001 },
		"edge PT":        func(g *Graph) { g.edges[1].PT += 0.001 },
		"edge PA":        func(g *Graph) { g.edges[2].PA += 0.001 },
		"edge A-value":   func(g *Graph) { g.edges[0].AV1 = "X" },
		"repair value":   func(g *Graph) { r := g.Repair(7); r.Suggested++ },
		"repair benefit": func(g *Graph) { r := g.Repair(2); r.Benefit += 0.001 },
	}
	for name, mutate := range mutants {
		g := fig4(t)
		mutate(g)
		if g.Fingerprint() == base {
			t.Errorf("%s change left the fingerprint unchanged", name)
		}
	}

	noEdge := MustNew(ids(1, 2, 3, 7, 8))
	if noEdge.Fingerprint() == base {
		t.Error("empty graph hashes like fig4")
	}
	moreVerts := MustNew(ids(1, 2, 3, 7, 8, 9))
	if moreVerts.Fingerprint() == noEdge.Fingerprint() {
		t.Error("extra vertex left the fingerprint unchanged")
	}

	// Concatenation ambiguity: the A-value strings are length-prefixed,
	// so shifting a boundary must change the hash.
	a := MustNew(ids(1, 2))
	_ = a.AddEdge(Edge{A: 1, B: 2, HasA: true, AV1: "ab", AV2: "c"})
	b := MustNew(ids(1, 2))
	_ = b.AddEdge(Edge{A: 1, B: 2, HasA: true, AV1: "a", AV2: "bc"})
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("string boundary shift left the fingerprint unchanged")
	}
}
