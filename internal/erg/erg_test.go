package erg

import (
	"math"
	"testing"

	"visclean/internal/dataset"
)

func ids(ns ...int) []dataset.TupleID {
	out := make([]dataset.TupleID, len(ns))
	for i, n := range ns {
		out[i] = dataset.TupleID(n)
	}
	return out
}

// fig4 builds a small ERG in the spirit of the paper's Fig 4: a SIGMOD
// cluster {1,2,3} with an outlier on 2, plus a VLDB pair {7,8} with a
// missing value on 7.
func fig4(t testing.TB) *Graph {
	g := MustNew(ids(1, 2, 3, 7, 8))
	edges := []Edge{
		{A: 1, B: 2, HasT: true, PT: 0.7, HasA: true, PA: 0.6, AV1: "ACM SIGMOD", AV2: "SIGMOD Conf.", Benefit: 0.3},
		{A: 1, B: 3, HasT: true, PT: 0.6, HasA: true, PA: 0.7, AV1: "ACM SIGMOD", AV2: "SIGMOD", Benefit: 0.25},
		{A: 2, B: 3, HasT: true, PT: 0.65, HasA: true, PA: 0.55, AV1: "SIGMOD Conf.", AV2: "SIGMOD", Benefit: 0.2},
		{A: 7, B: 8, HasT: true, PT: 0.55, HasA: true, PA: 0.5, AV1: "VLDB", AV2: "Very Large Data Bases", Benefit: 0.4},
	}
	for _, e := range edges {
		if err := g.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.SetRepair(VertexRepair{ID: 2, Kind: Outlier, Current: 1740, Suggested: 174, Score: 100, Benefit: 0.2}); err != nil {
		t.Fatal(err)
	}
	if err := g.SetRepair(VertexRepair{ID: 7, Kind: Missing, Suggested: 55, Benefit: 0.15}); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGraphBasics(t *testing.T) {
	g := fig4(t)
	if g.NumVertices() != 5 || g.NumEdges() != 4 {
		t.Fatalf("size = %d/%d", g.NumVertices(), g.NumEdges())
	}
	if !g.HasVertex(1) || g.HasVertex(99) {
		t.Fatal("HasVertex wrong")
	}
	nbs := g.Neighbors(1)
	if len(nbs) != 2 || nbs[0] != 2 || nbs[1] != 3 {
		t.Fatalf("neighbors(1) = %v", nbs)
	}
	if len(g.IncidentEdges(2)) != 2 {
		t.Fatalf("incident(2) = %v", g.IncidentEdges(2))
	}
	reps := g.Repairs()
	if len(reps) != 2 || reps[0].ID != 2 || reps[1].ID != 7 {
		t.Fatalf("repairs = %v", reps)
	}
	if g.Repair(2).Kind != Outlier || g.Repair(7).Kind != Missing {
		t.Fatal("repair kinds wrong")
	}
	if g.Repair(99) != nil {
		t.Fatal("unknown repair should be nil")
	}
}

func TestNewRejectsDuplicates(t *testing.T) {
	if _, err := New(ids(1, 2, 1)); err == nil {
		t.Fatal("expected duplicate-vertex error")
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := MustNew(ids(1, 2))
	if err := g.AddEdge(Edge{A: 1, B: 9}); err == nil {
		t.Fatal("unknown endpoint accepted")
	}
	if err := g.AddEdge(Edge{A: 1, B: 1}); err == nil {
		t.Fatal("self loop accepted")
	}
	if err := g.AddEdge(Edge{A: 1, B: 2}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(Edge{A: 2, B: 1}); err == nil {
		t.Fatal("duplicate (reversed) edge accepted")
	}
}

func TestSetRepairValidation(t *testing.T) {
	g := MustNew(ids(1))
	if err := g.SetRepair(VertexRepair{ID: 5}); err == nil {
		t.Fatal("repair on unknown vertex accepted")
	}
}

func TestEdgeSortWeightFoldsVertexBenefits(t *testing.T) {
	g := fig4(t)
	// Edge 0 = (1,2): benefit 0.3 + outlier benefit 0.2 on vertex 2.
	if got := g.EdgeSortWeight(0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("sort weight = %v, want 0.5", got)
	}
	// Edge 3 = (7,8): 0.4 + missing 0.15.
	if got := g.EdgeSortWeight(3); math.Abs(got-0.55) > 1e-12 {
		t.Fatalf("sort weight = %v, want 0.55", got)
	}
}

func TestSubgraphBenefitCountsVertexOnce(t *testing.T) {
	g := fig4(t)
	// Triangle {1,2,3}: edges 0.3+0.25+0.2 = 0.75, plus outlier 0.2 once.
	if got := g.SubgraphBenefit(ids(1, 2, 3)); math.Abs(got-0.95) > 1e-12 {
		t.Fatalf("benefit = %v, want 0.95", got)
	}
	// Single vertex with repair.
	if got := g.SubgraphBenefit(ids(2)); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("benefit = %v, want 0.2", got)
	}
	if got := g.SubgraphBenefit(nil); got != 0 {
		t.Fatalf("empty benefit = %v", got)
	}
}

func TestConnected(t *testing.T) {
	g := fig4(t)
	cases := []struct {
		vs   []dataset.TupleID
		want bool
	}{
		{ids(1, 2, 3), true},
		{ids(1, 2), true},
		{ids(1), true},
		{ids(1, 7), false},
		{ids(1, 2, 3, 7, 8), false},
		{ids(7, 8), true},
		{nil, false},
		{ids(99), false},
	}
	for _, c := range cases {
		if got := g.Connected(c.vs); got != c.want {
			t.Errorf("Connected(%v) = %v, want %v", c.vs, got, c.want)
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := fig4(t)
	sub := g.InducedSubgraph(ids(1, 2, 3))
	if sub.NumVertices() != 3 || sub.NumEdges() != 3 {
		t.Fatalf("sub size = %d/%d", sub.NumVertices(), sub.NumEdges())
	}
	if sub.Repair(2) == nil || sub.Repair(7) != nil {
		t.Fatal("repairs not carried correctly")
	}
	// Mutating the subgraph's repair must not affect the parent.
	sub.Repair(2).Benefit = 99
	if g.Repair(2).Benefit == 99 {
		t.Fatal("repair aliased between graphs")
	}
	// Unknown and duplicate vertices ignored.
	sub2 := g.InducedSubgraph(ids(1, 1, 99))
	if sub2.NumVertices() != 1 {
		t.Fatalf("sub2 vertices = %d", sub2.NumVertices())
	}
}
