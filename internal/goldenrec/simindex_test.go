package goldenrec

import (
	"reflect"
	"testing"

	"visclean/internal/dataset"
)

// simIndexTable exercises every branch of the SimIndex filter: values in
// one cluster, values spread over two clusters, values outside every
// cluster, and similar pairs whose instances never cross clusters.
func simIndexTable(t testing.TB) (*dataset.Table, []dataset.TupleID) {
	t.Helper()
	tbl := dataset.NewTable(dataset.Schema{
		{Name: "Title", Kind: dataset.String},
		{Name: "Venue", Kind: dataset.String},
	})
	venues := []string{
		"ACM SIGMOD", "SIGMOD Conf.", "SIGMOD", "SIGMOD'13", "SIGMOD'13",
		"VLDB", "VLDB Conf.", "Very Large Data Bases", "ICDE", "IEEE ICDE",
	}
	ids := make([]dataset.TupleID, len(venues))
	for i, v := range venues {
		ids[i] = tbl.MustAppend([]dataset.Value{dataset.Str("p"), dataset.Str(v)})
	}
	return tbl, ids
}

// TestSimIndexMatchesCandidates is the equivalence proof referenced from
// simindex.go: one SimIndex, built once, must reproduce the package-level
// Candidates exactly for every clustering it is later queried with —
// clusterings grow, merge and shrink as cleaning progresses, while the
// join inputs stay fixed.
func TestSimIndexMatchesCandidates(t *testing.T) {
	tbl, ids := simIndexTable(t)
	venue := tbl.ColumnIndex("Venue")
	const threshold = 0.2
	ix := NewSimIndex(tbl, venue, threshold)

	clusterings := [][][]dataset.TupleID{
		nil, // empty clustering: Strategy 1 empty, Strategy 2 has no owners
		{{ids[0], ids[1], ids[2]}, {ids[3], ids[4]}},
		{{ids[0], ids[1], ids[2], ids[3], ids[4]}, {ids[5], ids[6]}, {ids[8]}},
		{{ids[0]}, {ids[1]}, {ids[2]}, {ids[3]}, {ids[4]}, {ids[5]}, {ids[6]}, {ids[7]}, {ids[8]}, {ids[9]}},
		{ids}, // one cluster holding every tuple
		{{ids[5], ids[8]}, {ids[6], ids[9]}},
	}
	for ci, clusters := range clusterings {
		want := Candidates(tbl, clusters, venue, threshold)
		got := ix.Candidates(tbl, clusters)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("clustering %d: SimIndex diverges from Candidates:\ngot  %+v\nwant %+v", ci, got, want)
		}
	}
}

// TestSimIndexSingletonSameClusterFiltered pins the Strategy 2 ownership
// condition: a similar value pair whose instances all live in one shared
// cluster is not a cross-cluster candidate (it is Strategy 1's job), but
// moving one value to its own cluster makes it one.
func TestSimIndexSingletonSameClusterFiltered(t *testing.T) {
	tbl, ids := simIndexTable(t)
	venue := tbl.ColumnIndex("Venue")
	ix := NewSimIndex(tbl, venue, 0.2)

	same := [][]dataset.TupleID{{ids[5], ids[6]}} // VLDB + VLDB Conf. together
	for _, c := range ix.Candidates(tbl, same) {
		if c.Prob != ClusterConfidence {
			t.Errorf("same-cluster pair surfaced as cross-cluster candidate: %+v", c)
		}
	}

	split := [][]dataset.TupleID{{ids[5]}, {ids[6]}}
	found := false
	for _, c := range ix.Candidates(tbl, split) {
		if c.V1 == "VLDB" && c.V2 == "VLDB Conf." && c.Prob != ClusterConfidence {
			found = true
		}
	}
	if !found {
		t.Error("split clusters did not surface the cross-cluster pair")
	}
}
