package goldenrec

import (
	"sort"

	"visclean/internal/dataset"
	"visclean/internal/stringsim"
)

// SimIndex is a session-lifetime accelerator for Candidates. The
// expensive part of Algorithm 1 is Strategy 2's string similarity join;
// its inputs — the distinct values of an attribute column — never change
// during cleaning (repairs rewrite only the measure column, and
// standardization is tracked logically, not by cell rewrites), so the
// join can be run once per column and re-filtered per iteration against
// the current clustering. Strategy 1's pairwise Jaccards are memoized
// for the same reason.
//
// Candidates(t, clusters, col) is bit-identical to
// goldenrec.Candidates(t, clusters, col, threshold): the prefix-filter
// join is lossless for any input ordering, the similarity of two fixed
// strings is a pure function, and the cross-cluster condition on a value
// pair ("some instance pair lies in two different clusters") reduces to
// cluster-ownership counts. See TestSimIndexMatchesCandidates.
type SimIndex struct {
	col       int
	threshold float64
	pairs     []Candidate // all distinct-value pairs with Sim > threshold; V1 < V2, Prob = Sim
	memo      *stringsim.Memo
}

// NewSimIndex joins the distinct text values of column col of t once.
// threshold is the λ of Algorithm 1 Strategy 2.
func NewSimIndex(t *dataset.Table, col int, threshold float64) *SimIndex {
	ix := &SimIndex{col: col, threshold: threshold, memo: stringsim.NewMemo()}
	freq := t.DistinctStrings(col)
	vals := make([]string, 0, len(freq))
	for v := range freq {
		vals = append(vals, v)
	}
	// Order is irrelevant to the join's result set but sorted input keeps
	// construction deterministic.
	sort.Strings(vals)
	for _, p := range stringsim.SelfJoin(vals, threshold) {
		v1, v2 := canonicalPair(vals[p.I], vals[p.J])
		ix.pairs = append(ix.pairs, Candidate{V1: v1, V2: v2, Sim: p.Sim, Prob: p.Sim})
	}
	return ix
}

// Col returns the indexed column.
func (ix *SimIndex) Col() int { return ix.col }

// Threshold returns the join's similarity cutoff λ.
func (ix *SimIndex) Threshold() float64 { return ix.threshold }

// Pairs returns the precomputed join result. Read-only for callers; the
// artifact cache sizes its SimIndex entries from it.
func (ix *SimIndex) Pairs() []Candidate { return ix.pairs }

// CloneShared returns a SimIndex sharing the immutable pairs slice with
// a private fresh memo. The join result never changes for fixed table
// content so it can be shared across sessions, but the memo accretes
// per-call state, so each session needs its own.
func (ix *SimIndex) CloneShared() *SimIndex {
	return &SimIndex{
		col:       ix.col,
		threshold: ix.threshold,
		pairs:     ix.pairs,
		memo:      stringsim.NewMemo(),
	}
}

// ownerInfo counts how many clusters a value occurs in; first is the
// index of the first such cluster.
type ownerInfo struct {
	n     int
	first int
}

// Candidates runs both Algorithm 1 strategies against the current
// clustering using the precomputed join, producing the same []Candidate
// as the package-level Candidates with this index's threshold.
func (ix *SimIndex) Candidates(t *dataset.Table, clusters [][]dataset.TupleID) []Candidate {
	owners := make(map[string]ownerInfo)
	clusterVals := make([][]string, len(clusters))
	for ci, cluster := range clusters {
		vals := distinctValues(t, cluster, ix.col)
		clusterVals[ci] = vals
		for _, v := range vals {
			oi, ok := owners[v]
			if !ok {
				oi.first = ci
			}
			oi.n++
			owners[v] = oi
		}
	}

	// Strategy 1: every unordered pair of distinct values co-occurring in
	// one cluster, deduplicated across clusters.
	seen := make(map[[2]string]struct{})
	var out []Candidate
	for _, vals := range clusterVals {
		for i := 0; i < len(vals); i++ {
			for j := i + 1; j < len(vals); j++ {
				v1, v2 := canonicalPair(vals[i], vals[j])
				key := [2]string{v1, v2}
				if _, dup := seen[key]; dup {
					continue
				}
				seen[key] = struct{}{}
				out = append(out, Candidate{V1: v1, V2: v2, Sim: ix.memo.Jaccard(v1, v2), Prob: ClusterConfidence})
			}
		}
	}

	// Strategy 2: a precomputed join pair qualifies iff some instance
	// pair of its two values lies in two different clusters — i.e. unless
	// both values live in exactly one and the same cluster. Strategy 1
	// wins on duplicates, matching Candidates' merge order.
	for _, c := range ix.pairs {
		o1, ok1 := owners[c.V1]
		o2, ok2 := owners[c.V2]
		if !ok1 || !ok2 {
			continue
		}
		if o1.n == 1 && o2.n == 1 && o1.first == o2.first {
			continue
		}
		if _, dup := seen[[2]string{c.V1, c.V2}]; dup {
			continue
		}
		out = append(out, c)
	}
	sortCandidates(out)
	return out
}
