// Package goldenrec implements GoldenRecordCreation [11] as used by
// Algorithm 1 (Strategy 1) of the paper: within each entity cluster, the
// distinct values of a target attribute should all refer to the same
// attribute-level entity, so every pair of distinct values is a candidate
// transformation ("ACM SIGMOD" ↔ "SIGMOD Conf."). It also elects the
// canonical ("golden") value used to standardize a synonym class.
package goldenrec

import (
	"sort"

	"visclean/internal/dataset"
	"visclean/internal/stringsim"
)

// Candidate is one attribute-level transformation candidate: the claim
// that V1 and V2 denote the same attribute entity. Sim is the token
// Jaccard similarity of the two values; Prob is the approval probability
// P^Y the benefit model uses (§V-A (2)). For Strategy-2 (similarity
// join) candidates Prob equals Sim; for Strategy-1 candidates — values
// co-occurring inside one matched entity cluster — Prob is the high
// ClusterConfidence regardless of string distance, because tuples known
// to be the same entity almost surely carry the same attribute entity
// even when the spellings share no tokens ("ICDE" ↔ "Intl. Conf. on
// Data Engineering").
type Candidate struct {
	V1, V2 string
	Sim    float64
	Prob   float64
}

// ClusterConfidence is the approval probability of Strategy-1 candidates.
const ClusterConfidence = 0.9

// canonicalPair orders a value pair deterministically.
func canonicalPair(a, b string) (string, string) {
	if a > b {
		return b, a
	}
	return a, b
}

// ClusterCandidates generates transformation candidates from entity
// clusters: for every cluster, every unordered pair of distinct values in
// column col. Duplicate pairs across clusters are merged. Results are
// sorted by descending similarity, then lexicographically.
func ClusterCandidates(t *dataset.Table, clusters [][]dataset.TupleID, col int) []Candidate {
	seen := make(map[[2]string]struct{})
	var out []Candidate
	for _, cluster := range clusters {
		values := distinctValues(t, cluster, col)
		for i := 0; i < len(values); i++ {
			for j := i + 1; j < len(values); j++ {
				v1, v2 := canonicalPair(values[i], values[j])
				key := [2]string{v1, v2}
				if _, dup := seen[key]; dup {
					continue
				}
				seen[key] = struct{}{}
				out = append(out, Candidate{V1: v1, V2: v2, Sim: stringsim.Jaccard(v1, v2), Prob: ClusterConfidence})
			}
		}
	}
	sortCandidates(out)
	return out
}

// CrossClusterCandidates implements Algorithm 1 Strategy 2: a string
// similarity join across the values of different clusters finds synonym
// candidates that clustering could not ("SIGMOD'13" ↔ "SIGMOD" when their
// tuples describe different papers). threshold is the λ of Algorithm 1.
func CrossClusterCandidates(t *dataset.Table, clusters [][]dataset.TupleID, col int, threshold float64) []Candidate {
	// Collect each cluster's distinct values and remember which cluster a
	// value instance came from, so same-cluster joins are excluded (they
	// are Strategy 1's job).
	var vals []string
	var owner []int
	for ci, cluster := range clusters {
		for _, v := range distinctValues(t, cluster, col) {
			vals = append(vals, v)
			owner = append(owner, ci)
		}
	}
	pairs := stringsim.SelfJoin(vals, threshold)
	seen := make(map[[2]string]struct{})
	var out []Candidate
	for _, p := range pairs {
		if owner[p.I] == owner[p.J] {
			continue
		}
		if vals[p.I] == vals[p.J] {
			continue
		}
		v1, v2 := canonicalPair(vals[p.I], vals[p.J])
		key := [2]string{v1, v2}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		out = append(out, Candidate{V1: v1, V2: v2, Sim: p.Sim, Prob: p.Sim})
	}
	sortCandidates(out)
	return out
}

// Candidates runs both strategies (Algorithm 1) and merges the result,
// Strategy 1 candidates taking precedence on duplicates.
func Candidates(t *dataset.Table, clusters [][]dataset.TupleID, col int, threshold float64) []Candidate {
	s1 := ClusterCandidates(t, clusters, col)
	seen := make(map[[2]string]struct{}, len(s1))
	for _, c := range s1 {
		seen[[2]string{c.V1, c.V2}] = struct{}{}
	}
	out := s1
	for _, c := range CrossClusterCandidates(t, clusters, col, threshold) {
		if _, dup := seen[[2]string{c.V1, c.V2}]; dup {
			continue
		}
		out = append(out, c)
	}
	sortCandidates(out)
	return out
}

func distinctValues(t *dataset.Table, cluster []dataset.TupleID, col int) []string {
	set := make(map[string]struct{})
	var out []string
	for _, id := range cluster {
		v, ok := t.GetByID(id, col)
		if !ok {
			continue
		}
		s, ok := v.Text()
		if !ok {
			continue
		}
		if _, dup := set[s]; dup {
			continue
		}
		set[s] = struct{}{}
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func sortCandidates(cs []Candidate) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Sim != cs[j].Sim {
			return cs[i].Sim > cs[j].Sim
		}
		if cs[i].V1 != cs[j].V1 {
			return cs[i].V1 < cs[j].V1
		}
		return cs[i].V2 < cs[j].V2
	})
}

// Standardizer accumulates approved value equivalences for one attribute
// and elects the golden value of each synonym class: the most frequent
// value in the data, ties broken by shortest then lexicographically
// smallest ("SIGMOD" beats "SIGMOD Conf." at equal frequency).
type Standardizer struct {
	parent map[string]string
	freq   map[string]int
	// canon caches Canonical results; invalidated by Approve. Canonical
	// is called once per table cell during view building, so without the
	// cache its class-scan cost dominates the whole pipeline.
	canon map[string]string
}

// NewStandardizer captures value frequencies from column col of t.
func NewStandardizer(t *dataset.Table, col int) *Standardizer {
	return &Standardizer{
		parent: make(map[string]string),
		freq:   t.DistinctStrings(col),
	}
}

func (s *Standardizer) find(v string) string {
	p, ok := s.parent[v]
	if !ok || p == v {
		return v
	}
	root := s.find(p)
	// Path-compress only when the entry actually moves: after Freeze has
	// compressed every chain, find performs no map writes at all, which
	// is what makes a frozen standardizer safe for concurrent readers.
	if root != p {
		s.parent[v] = root
	}
	return root
}

// Freeze precomputes every lazily derived structure — full path
// compression of the union-find and the canonical value of every known
// member — so that subsequent SameClass and Canonical calls perform no
// writes whatsoever. A frozen standardizer is safe for concurrent
// readers until the next Approve (which re-dirties the caches); the
// benefit model freezes the session's standardizers before fanning
// hypothetical-visualization pricing out across workers.
func (s *Standardizer) Freeze() {
	for v := range s.parent {
		s.find(v)
	}
	for v := range s.freq {
		s.Canonical(v)
	}
	for v := range s.parent {
		s.Canonical(v)
	}
}

// Bytes estimates the standardizer's heap footprint (frequency, parent
// and canonical maps), for the artifact cache's budget accounting.
func (s *Standardizer) Bytes() int64 {
	var b int64
	for v := range s.freq {
		b += int64(len(v)) + 48 + 8
	}
	for v, p := range s.parent {
		b += int64(len(v)+len(p)) + 48
	}
	for v, c := range s.canon {
		b += int64(len(v)+len(c)) + 48
	}
	return b
}

// Approve records that v1 and v2 are the same attribute entity.
func (s *Standardizer) Approve(v1, v2 string) {
	s.canon = nil
	r1, r2 := s.find(v1), s.find(v2)
	if r1 == r2 {
		return
	}
	// Keep the deterministic smaller root as representative; canonical
	// election happens at lookup time.
	if r1 > r2 {
		r1, r2 = r2, r1
	}
	s.parent[r2] = r1
	if _, ok := s.parent[r1]; !ok {
		s.parent[r1] = r1
	}
}

// Clone returns an independent copy sharing the (immutable) frequency
// map; the benefit model uses clones to price hypothetical approvals.
func (s *Standardizer) Clone() *Standardizer {
	cp := &Standardizer{parent: make(map[string]string, len(s.parent)), freq: s.freq}
	for k, v := range s.parent {
		cp.parent[k] = v
	}
	return cp
}

// SameClass reports whether two values are currently in one synonym class.
func (s *Standardizer) SameClass(v1, v2 string) bool { return s.find(v1) == s.find(v2) }

// Canonical returns the golden value of v's synonym class: the member
// maximizing containment + frequency, where containment counts the class
// members whose token sets include all of the candidate's tokens. The
// containment term is what elects "SIGMOD" over "SIGMOD'13" even when a
// variant is more frequent — the shared core of a synonym class is its
// natural golden value. Ties break to higher frequency, then shorter,
// then lexicographically smaller.
func (s *Standardizer) Canonical(v string) string {
	if c, ok := s.canon[v]; ok {
		return c
	}
	root := s.find(v)
	members := s.classMembers(root)
	best := v
	bestSeen := false
	if len(members) > 1 {
		tokens := make([]map[string]struct{}, len(members))
		for i, m := range members {
			tokens[i] = stringsim.TokenSet(m)
		}
		containment := make(map[string]int, len(members))
		for i, m := range members {
			n := 0
			for j := range members {
				if containsAll(tokens[j], tokens[i]) {
					n++
				}
			}
			containment[m] = n
		}
		for _, m := range members {
			if !bestSeen || betterGolden(m, best, containment, s.freq) {
				best = m
				bestSeen = true
			}
		}
	}
	if s.canon == nil {
		s.canon = make(map[string]string)
	}
	// The whole class shares the answer; cache every member.
	for _, m := range members {
		s.canon[m] = best
	}
	return best
}

// containsAll reports whether set a includes every token of b.
func containsAll(a, b map[string]struct{}) bool {
	if len(b) > len(a) {
		return false
	}
	for t := range b {
		if _, ok := a[t]; !ok {
			return false
		}
	}
	return true
}

func betterGolden(a, b string, containment map[string]int, freq map[string]int) bool {
	if containment[a] != containment[b] {
		return containment[a] > containment[b]
	}
	return better(a, b, freq)
}

func (s *Standardizer) classMembers(root string) []string {
	out := []string{root}
	for v := range s.parent {
		if v != root && s.find(v) == root {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

func better(a, b string, freq map[string]int) bool {
	if freq[a] != freq[b] {
		return freq[a] > freq[b]
	}
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	return a < b
}

// Apply rewrites every value of column col in t to its canonical form.
// It returns the number of cells changed.
func (s *Standardizer) Apply(t *dataset.Table, col int) int {
	changed := 0
	for i := 0; i < t.NumRows(); i++ {
		v, ok := t.Get(i, col).Text()
		if !ok {
			continue
		}
		canon := s.Canonical(v)
		if canon == v {
			continue
		}
		if err := t.Set(i, col, dataset.Str(canon)); err == nil {
			changed++
		}
	}
	return changed
}

// Classes returns the non-trivial synonym classes (size >= 2), each
// sorted, deterministically ordered — for rendering and tests.
func (s *Standardizer) Classes() [][]string {
	roots := make(map[string][]string)
	for v := range s.parent {
		r := s.find(v)
		roots[r] = append(roots[r], v)
	}
	var out [][]string
	for _, members := range roots {
		if len(members) < 2 {
			continue
		}
		sort.Strings(members)
		out = append(out, members)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
