package goldenrec

import (
	"reflect"
	"sync"
	"testing"

	"visclean/internal/dataset"
)

func venueTable(t testing.TB) (*dataset.Table, [][]dataset.TupleID) {
	tbl := dataset.NewTable(dataset.Schema{
		{Name: "Title", Kind: dataset.String},
		{Name: "Venue", Kind: dataset.String},
	})
	add := func(title, venue string) dataset.TupleID {
		return tbl.MustAppend([]dataset.Value{dataset.Str(title), dataset.Str(venue)})
	}
	// Cluster C1 = {t1,t2,t3} (NADEEF), C2 = {t5,t6} (TsingNUS), mirroring
	// the paper's §IV example.
	t1 := add("NADEEF", "ACM SIGMOD")
	t2 := add("NADEEF", "SIGMOD Conf.")
	t3 := add("NADEEF", "SIGMOD")
	t5 := add("TsingNUS", "SIGMOD'13")
	t6 := add("TsingNUS", "SIGMOD'13")
	clusters := [][]dataset.TupleID{{t1, t2, t3}, {t5, t6}}
	return tbl, clusters
}

func TestClusterCandidates(t *testing.T) {
	tbl, clusters := venueTable(t)
	venue := tbl.ColumnIndex("Venue")
	cands := ClusterCandidates(tbl, clusters, venue)
	// C1 has three distinct venues -> 3 pairs; C2 has one distinct venue.
	if len(cands) != 3 {
		t.Fatalf("candidates = %v", cands)
	}
	want := map[[2]string]bool{
		{"ACM SIGMOD", "SIGMOD Conf."}: true,
		{"ACM SIGMOD", "SIGMOD"}:       true,
		{"SIGMOD", "SIGMOD Conf."}:     true,
	}
	for _, c := range cands {
		if !want[[2]string{c.V1, c.V2}] {
			t.Errorf("unexpected candidate %+v", c)
		}
		if c.Sim <= 0 || c.Sim > 1 {
			t.Errorf("similarity out of range: %+v", c)
		}
	}
}

func TestCrossClusterCandidates(t *testing.T) {
	tbl, clusters := venueTable(t)
	venue := tbl.ColumnIndex("Venue")
	cands := CrossClusterCandidates(tbl, clusters, venue, 0.2)
	// Strategy 2 must surface SIGMOD'13 <-> SIGMOD (paper's example) and
	// must not repeat within-cluster pairs.
	foundCross := false
	for _, c := range cands {
		if c.V1 == "SIGMOD" && c.V2 == "SIGMOD'13" {
			foundCross = true
		}
		if (c.V1 == "ACM SIGMOD" && c.V2 == "SIGMOD") || (c.V1 == "ACM SIGMOD" && c.V2 == "SIGMOD Conf.") {
			// cross-cluster by ownership is fine only if the values really
			// come from different clusters; ACM SIGMOD exists only in C1,
			// so any pair of C1 values is within-cluster and excluded.
			t.Errorf("within-cluster pair leaked: %+v", c)
		}
	}
	if !foundCross {
		t.Fatalf("SIGMOD'13 <-> SIGMOD not found in %v", cands)
	}
}

func TestCombinedCandidatesNoDuplicates(t *testing.T) {
	tbl, clusters := venueTable(t)
	venue := tbl.ColumnIndex("Venue")
	all := Candidates(tbl, clusters, venue, 0.2)
	seen := map[[2]string]bool{}
	for _, c := range all {
		key := [2]string{c.V1, c.V2}
		if seen[key] {
			t.Fatalf("duplicate candidate %+v", c)
		}
		seen[key] = true
		if c.V1 >= c.V2 {
			t.Fatalf("non-canonical candidate order %+v", c)
		}
	}
	if len(all) < 4 {
		t.Fatalf("expected strategies to combine, got %v", all)
	}
}

func TestCandidatesSkipNullsAndMissingTuples(t *testing.T) {
	tbl := dataset.NewTable(dataset.Schema{{Name: "V", Kind: dataset.String}})
	a := tbl.MustAppend([]dataset.Value{dataset.Str("x")})
	b := tbl.MustAppend([]dataset.Value{dataset.Null(dataset.String)})
	cands := ClusterCandidates(tbl, [][]dataset.TupleID{{a, b, dataset.TupleID(99)}}, 0)
	if len(cands) != 0 {
		t.Fatalf("candidates = %v", cands)
	}
}

func TestStandardizerCanonicalElection(t *testing.T) {
	tbl := dataset.NewTable(dataset.Schema{{Name: "Venue", Kind: dataset.String}})
	for _, v := range []string{"SIGMOD", "SIGMOD", "SIGMOD", "ACM SIGMOD", "SIGMOD Conf."} {
		tbl.MustAppend([]dataset.Value{dataset.Str(v)})
	}
	s := NewStandardizer(tbl, 0)
	s.Approve("SIGMOD", "ACM SIGMOD")
	s.Approve("ACM SIGMOD", "SIGMOD Conf.")
	if !s.SameClass("SIGMOD", "SIGMOD Conf.") {
		t.Fatal("transitivity broken")
	}
	// SIGMOD is most frequent -> canonical for all.
	for _, v := range []string{"SIGMOD", "ACM SIGMOD", "SIGMOD Conf."} {
		if got := s.Canonical(v); got != "SIGMOD" {
			t.Fatalf("Canonical(%q) = %q", v, got)
		}
	}
	// Untracked value canonicalizes to itself.
	if got := s.Canonical("VLDB"); got != "VLDB" {
		t.Fatalf("Canonical(VLDB) = %q", got)
	}
}

func TestStandardizerTieBreaks(t *testing.T) {
	tbl := dataset.NewTable(dataset.Schema{{Name: "V", Kind: dataset.String}})
	for _, v := range []string{"AB", "XYZ"} {
		tbl.MustAppend([]dataset.Value{dataset.Str(v)})
	}
	s := NewStandardizer(tbl, 0)
	s.Approve("AB", "XYZ")
	// Equal frequency -> shorter wins.
	if got := s.Canonical("XYZ"); got != "AB" {
		t.Fatalf("Canonical = %q, want AB", got)
	}
}

func TestStandardizerApply(t *testing.T) {
	tbl := dataset.NewTable(dataset.Schema{{Name: "Venue", Kind: dataset.String}})
	venues := []string{"SIGMOD", "ACM SIGMOD", "SIGMOD", "VLDB"}
	for _, v := range venues {
		tbl.MustAppend([]dataset.Value{dataset.Str(v)})
	}
	s := NewStandardizer(tbl, 0)
	s.Approve("SIGMOD", "ACM SIGMOD")
	changed := s.Apply(tbl, 0)
	if changed != 1 {
		t.Fatalf("changed = %d, want 1", changed)
	}
	got := tbl.DistinctStrings(0)
	if got["SIGMOD"] != 3 || got["VLDB"] != 1 || len(got) != 2 {
		t.Fatalf("after apply: %v", got)
	}
}

func TestStandardizerClasses(t *testing.T) {
	tbl := dataset.NewTable(dataset.Schema{{Name: "V", Kind: dataset.String}})
	tbl.MustAppend([]dataset.Value{dataset.Str("a")})
	s := NewStandardizer(tbl, 0)
	s.Approve("a", "b")
	s.Approve("c", "d")
	s.Approve("b", "e")
	classes := s.Classes()
	want := [][]string{{"a", "b", "e"}, {"c", "d"}}
	if !reflect.DeepEqual(classes, want) {
		t.Fatalf("classes = %v, want %v", classes, want)
	}
}

func TestCanonicalContainmentElection(t *testing.T) {
	// "SIGMOD'13" is more frequent, but "SIGMOD" is the shared core of
	// the class: containment must elect it (the paper's golden value).
	tbl := dataset.NewTable(dataset.Schema{{Name: "Venue", Kind: dataset.String}})
	for _, v := range []string{"SIGMOD'13", "SIGMOD'13", "SIGMOD", "ACM SIGMOD", "SIGMOD Conf."} {
		tbl.MustAppend([]dataset.Value{dataset.Str(v)})
	}
	s := NewStandardizer(tbl, 0)
	s.Approve("SIGMOD", "SIGMOD'13")
	s.Approve("SIGMOD", "ACM SIGMOD")
	s.Approve("SIGMOD", "SIGMOD Conf.")
	for _, v := range []string{"SIGMOD'13", "ACM SIGMOD", "SIGMOD Conf.", "SIGMOD"} {
		if got := s.Canonical(v); got != "SIGMOD" {
			t.Fatalf("Canonical(%q) = %q, want SIGMOD", v, got)
		}
	}
}

func TestCandidateProbFields(t *testing.T) {
	tbl, clusters := venueTable(t)
	venue := tbl.ColumnIndex("Venue")
	for _, c := range ClusterCandidates(tbl, clusters, venue) {
		if c.Prob != ClusterConfidence {
			t.Fatalf("strategy-1 candidate prob = %v, want %v", c.Prob, ClusterConfidence)
		}
	}
	for _, c := range CrossClusterCandidates(tbl, clusters, venue, 0.2) {
		if c.Prob != c.Sim {
			t.Fatalf("strategy-2 candidate prob = %v, sim = %v", c.Prob, c.Sim)
		}
	}
}

func TestCanonicalCacheInvalidatedByApprove(t *testing.T) {
	tbl := dataset.NewTable(dataset.Schema{{Name: "V", Kind: dataset.String}})
	for _, v := range []string{"A", "A B"} {
		tbl.MustAppend([]dataset.Value{dataset.Str(v)})
	}
	s := NewStandardizer(tbl, 0)
	if got := s.Canonical("A B"); got != "A B" {
		t.Fatalf("pre-approve canonical = %q", got)
	}
	s.Approve("A", "A B")
	if got := s.Canonical("A B"); got != "A" {
		t.Fatalf("post-approve canonical = %q (cache stale?)", got)
	}
}

func TestFrozenStandardizerConcurrentReads(t *testing.T) {
	// After Freeze, SameClass/Canonical must perform no writes: this
	// test exists to run under -race with concurrent readers.
	tbl := dataset.NewTable(dataset.Schema{{Name: "Venue", Kind: dataset.String}})
	for _, v := range []string{"SIGMOD", "ACM SIGMOD", "SIGMOD Conf.", "VLDB", "PVLDB", "ICDE"} {
		tbl.MustAppend([]dataset.Value{dataset.Str(v)})
	}
	s := NewStandardizer(tbl, 0)
	s.Approve("SIGMOD", "ACM SIGMOD")
	s.Approve("ACM SIGMOD", "SIGMOD Conf.")
	s.Approve("VLDB", "PVLDB")
	s.Freeze()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if got := s.Canonical("SIGMOD Conf."); got != "SIGMOD" {
					t.Errorf("Canonical = %q", got)
					return
				}
				if !s.SameClass("VLDB", "PVLDB") || s.SameClass("ICDE", "VLDB") {
					t.Error("SameClass wrong on frozen standardizer")
					return
				}
			}
		}()
	}
	wg.Wait()

	// Approve re-dirties; a second Freeze restores the invariant.
	s.Approve("ICDE", "VLDB")
	s.Freeze()
	if !s.SameClass("ICDE", "PVLDB") {
		t.Fatal("post-freeze Approve lost")
	}
}
