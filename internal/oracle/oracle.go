// Package oracle simulates the human participant of the paper's
// experiments (§VII). The generators record the ground truth they corrupt
// — entity identity, canonical attribute values and true numeric values —
// and the oracle answers T/A/M/O questions from it. Exp-3's robustness
// knobs are built in: WrongLabelRate flips/perturbs a fraction of answers
// and Completeness drops a fraction entirely.
package oracle

import (
	"math/rand"

	"visclean/internal/dataset"
)

// GroundTruth is what the data generator knows and the system must
// recover.
type GroundTruth struct {
	// Entity maps each dirty tuple to its true entity id.
	Entity map[dataset.TupleID]int
	// Canonical maps, per column name, each attribute value variant to
	// its canonical form ("ACM SIGMOD" → "SIGMOD").
	Canonical map[string]map[string]string
	// TrueY maps each dirty tuple to the true value of the measure
	// column (per column name) before missing/outlier corruption.
	TrueY map[string]map[dataset.TupleID]float64
	// Clean is the fully consolidated clean table (one row per entity),
	// used to compute the ground-truth visualization Q(D_g).
	Clean *dataset.Table
}

// CanonicalValue resolves a value through the canonical map; unknown
// values canonicalize to themselves.
func (gt *GroundTruth) CanonicalValue(column, v string) string {
	if m := gt.Canonical[column]; m != nil {
		if c, ok := m[v]; ok {
			return c
		}
	}
	return v
}

// SameEntity reports whether two tuples are true duplicates.
func (gt *GroundTruth) SameEntity(a, b dataset.TupleID) bool {
	ea, okA := gt.Entity[a]
	eb, okB := gt.Entity[b]
	return okA && okB && ea == eb
}

// TrueValue returns the true measure value of a tuple, if recorded.
func (gt *GroundTruth) TrueValue(column string, id dataset.TupleID) (float64, bool) {
	m := gt.TrueY[column]
	if m == nil {
		return 0, false
	}
	v, ok := m[id]
	return v, ok
}

// Oracle answers cleaning questions from ground truth, with optional
// noise. The zero WrongLabelRate / zero missing rate oracle is the
// perfect expert of Exp-1/2.
type Oracle struct {
	Truth *GroundTruth
	// WrongLabelRate is the probability an answer is corrupted (flipped
	// for booleans, perturbed for values) — Exp-3's WrongLabel%.
	WrongLabelRate float64
	// Completeness is the probability an answer is given at all —
	// Exp-3's Completeness%. 0 means 1.0 (always answer).
	Completeness float64
	rng          *rand.Rand
}

// New builds an oracle with a deterministic noise stream.
func New(truth *GroundTruth, seed int64) *Oracle {
	return &Oracle{Truth: truth, Completeness: 1, rng: rand.New(rand.NewSource(seed))}
}

// Fork derives an oracle over the same ground truth and noise knobs but
// with an independent deterministic noise stream. Comparative
// experiments use it to give each arm of a comparison (e.g. the
// multi-view session vs. its per-view sequential runs) its own answer
// stream without re-plumbing the Exp-3 knobs.
func (o *Oracle) Fork(seed int64) *Oracle {
	return &Oracle{
		Truth:          o.Truth,
		WrongLabelRate: o.WrongLabelRate,
		Completeness:   o.Completeness,
		rng:            rand.New(rand.NewSource(seed)),
	}
}

// answers reports whether this question gets any answer.
func (o *Oracle) answers() bool {
	if o.Completeness <= 0 || o.Completeness >= 1 {
		return true
	}
	return o.rng.Float64() < o.Completeness
}

// lies reports whether this answer is corrupted.
func (o *Oracle) lies() bool {
	return o.WrongLabelRate > 0 && o.rng.Float64() < o.WrongLabelRate
}

// AnswerT answers a T-question: are a and b the same entity?
func (o *Oracle) AnswerT(a, b dataset.TupleID) (match, answered bool) {
	if !o.answers() {
		return false, false
	}
	match = o.Truth.SameEntity(a, b)
	if o.lies() {
		match = !match
	}
	return match, true
}

// AnswerA answers an A-question: do v1 and v2 of the given column denote
// the same attribute entity?
func (o *Oracle) AnswerA(column, v1, v2 string) (same, answered bool) {
	if !o.answers() {
		return false, false
	}
	same = o.Truth.CanonicalValue(column, v1) == o.Truth.CanonicalValue(column, v2)
	if o.lies() {
		same = !same
	}
	return same, true
}

// AnswerM answers an M-question with the true value of the tuple's
// measure cell. ok is false when the oracle abstains or has no truth.
func (o *Oracle) AnswerM(column string, id dataset.TupleID) (value float64, answered bool) {
	if !o.answers() {
		return 0, false
	}
	v, ok := o.Truth.TrueValue(column, id)
	if !ok {
		return 0, false
	}
	if o.lies() {
		v = corruptValue(o.rng, v)
	}
	return v, true
}

// AnswerO answers an O-question: whether current is wrong, and if so the
// true value.
func (o *Oracle) AnswerO(column string, id dataset.TupleID, current float64) (isOutlier bool, value float64, answered bool) {
	if !o.answers() {
		return false, 0, false
	}
	v, ok := o.Truth.TrueValue(column, id)
	if !ok {
		return false, 0, false
	}
	isOutlier = v != current
	value = v
	if o.lies() {
		if o.rng.Intn(2) == 0 {
			isOutlier = !isOutlier
		} else {
			value = corruptValue(o.rng, v)
		}
	}
	return isOutlier, value, true
}

// corruptValue produces a plausibly wrong numeric answer.
func corruptValue(rng *rand.Rand, v float64) float64 {
	switch rng.Intn(3) {
	case 0:
		return v * 10
	case 1:
		return v * 0.5
	default:
		return v + 100*(rng.Float64()-0.5)
	}
}
