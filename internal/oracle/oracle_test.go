package oracle

import (
	"testing"

	"visclean/internal/dataset"
)

func testTruth() *GroundTruth {
	return &GroundTruth{
		Entity: map[dataset.TupleID]int{1: 100, 2: 100, 3: 101},
		Canonical: map[string]map[string]string{
			"Venue": {
				"SIGMOD":       "SIGMOD",
				"ACM SIGMOD":   "SIGMOD",
				"SIGMOD Conf.": "SIGMOD",
				"VLDB":         "VLDB",
			},
		},
		TrueY: map[string]map[dataset.TupleID]float64{
			"Citations": {1: 174, 2: 174, 3: 15},
		},
	}
}

func TestPerfectOracle(t *testing.T) {
	o := New(testTruth(), 1)
	if m, ok := o.AnswerT(1, 2); !ok || !m {
		t.Fatal("duplicates not confirmed")
	}
	if m, ok := o.AnswerT(1, 3); !ok || m {
		t.Fatal("non-duplicates confirmed")
	}
	if _, ok := o.AnswerT(1, 99); !ok {
		t.Fatal("unknown tuple should still be answered (as non-match)")
	}
	if s, ok := o.AnswerA("Venue", "ACM SIGMOD", "SIGMOD Conf."); !ok || !s {
		t.Fatal("synonyms not matched")
	}
	if s, ok := o.AnswerA("Venue", "SIGMOD", "VLDB"); !ok || s {
		t.Fatal("distinct venues matched")
	}
	if s, ok := o.AnswerA("Venue", "Unknown Conf.", "Unknown Conf."); !ok || !s {
		t.Fatal("identical unknown values should match")
	}
	if v, ok := o.AnswerM("Citations", 1); !ok || v != 174 {
		t.Fatalf("AnswerM = %v/%v", v, ok)
	}
	if _, ok := o.AnswerM("Citations", 99); ok {
		t.Fatal("missing truth should abstain")
	}
	out, v, ok := o.AnswerO("Citations", 1, 1740)
	if !ok || !out || v != 174 {
		t.Fatalf("AnswerO = %v/%v/%v", out, v, ok)
	}
	out, _, _ = o.AnswerO("Citations", 1, 174)
	if out {
		t.Fatal("correct value flagged as outlier")
	}
}

func TestWrongLabels(t *testing.T) {
	o := New(testTruth(), 2)
	o.WrongLabelRate = 1 // always lie
	if m, _ := o.AnswerT(1, 2); m {
		t.Fatal("lying oracle told the truth")
	}
	if s, _ := o.AnswerA("Venue", "ACM SIGMOD", "SIGMOD"); s {
		t.Fatal("lying oracle told the truth on A")
	}
	if v, _ := o.AnswerM("Citations", 1); v == 174 {
		t.Fatal("lying oracle gave the true value")
	}
}

func TestWrongLabelRateApprox(t *testing.T) {
	o := New(testTruth(), 3)
	o.WrongLabelRate = 0.3
	wrong := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if m, _ := o.AnswerT(1, 2); !m {
			wrong++
		}
	}
	rate := float64(wrong) / n
	if rate < 0.25 || rate > 0.35 {
		t.Fatalf("observed wrong rate %v, want ≈ 0.3", rate)
	}
}

func TestCompleteness(t *testing.T) {
	o := New(testTruth(), 4)
	o.Completeness = 0.5
	answered := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if _, ok := o.AnswerT(1, 2); ok {
			answered++
		}
	}
	rate := float64(answered) / n
	if rate < 0.45 || rate > 0.55 {
		t.Fatalf("answer rate %v, want ≈ 0.5", rate)
	}
}

func TestCanonicalValueFallback(t *testing.T) {
	gt := testTruth()
	if got := gt.CanonicalValue("Venue", "NOVEL"); got != "NOVEL" {
		t.Fatalf("unknown canonicalizes to %q", got)
	}
	if got := gt.CanonicalValue("NoSuchColumn", "x"); got != "x" {
		t.Fatalf("unknown column canonicalizes to %q", got)
	}
}

func TestForkSharesTruthAndKnobs(t *testing.T) {
	o := New(testTruth(), 5)
	o.WrongLabelRate = 0.3
	o.Completeness = 0.5
	f := o.Fork(6)
	if f.Truth != o.Truth {
		t.Fatal("fork does not share the ground truth")
	}
	if f.WrongLabelRate != o.WrongLabelRate || f.Completeness != o.Completeness {
		t.Fatalf("fork dropped noise knobs: %+v", f)
	}
	// The streams are independent: draining the parent must not move the
	// fork — a same-seed fork answers identically to a fresh oracle.
	for i := 0; i < 100; i++ {
		o.AnswerT(1, 2)
	}
	fresh := New(testTruth(), 6)
	fresh.WrongLabelRate = 0.3
	fresh.Completeness = 0.5
	for i := 0; i < 50; i++ {
		gm, gok := f.AnswerT(1, 2)
		wm, wok := fresh.AnswerT(1, 2)
		if gm != wm || gok != wok {
			t.Fatalf("draw %d: fork (%v,%v) diverged from fresh same-seed oracle (%v,%v)", i, gm, gok, wm, wok)
		}
	}
}
