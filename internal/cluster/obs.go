package cluster

// Router observability (catalog in DESIGN.md §5): request and failover
// volume, shard health, and migration outcomes. The router exposes
// obs.Default at its own /metrics; when shards run in-process (the
// loadgen -self harness) the families merge into one registry, which
// is why every name here carries the visclean_router_ prefix.

import (
	"net/http"

	"visclean/internal/obs"
)

var (
	obsRequests = obs.Default.Counter("visclean_router_requests_total",
		"Requests accepted by the cluster router.")
	obsRetries = obs.Default.Counter("visclean_router_retries_total",
		"Failover attempts: a candidate shard failed or disclaimed the session and the next one was tried.")
	obsShardsReady = obs.Default.Gauge("visclean_router_shards_ready",
		"Shards currently passing their /readyz probe.")
	obsRebalances = obs.Default.Counter("visclean_router_rebalances_total",
		"Rebalance passes over the shard set.")
	obsMigrations = obs.Default.Counter("visclean_router_migrations_total",
		"Sessions moved between shards (export/import migrations).")
	obsMigrationFailures = obs.Default.Counter("visclean_router_migration_failures_total",
		"Migrations that failed at the import step; the session stays restorable from its snapshot.")
)

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.Default.WritePrometheus(w)
}
