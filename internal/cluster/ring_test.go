package cluster

import (
	"fmt"
	"testing"
)

// TestRingDeterminism: same nodes (any order) → identical ownership.
func TestRingDeterminism(t *testing.T) {
	a := NewRing(64, []string{"http://s1", "http://s2", "http://s3"})
	b := NewRing(64, []string{"http://s3", "http://s1", "http://s2"})
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("lg-%04d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %s: owner depends on node order: %s vs %s", key, a.Owner(key), b.Owner(key))
		}
	}
}

// TestRingBalance: with enough vnodes, no node owns a grossly
// disproportionate share of sequential session ids (the loadgen id
// shape) or of random-looking hex ids.
func TestRingBalance(t *testing.T) {
	for _, tc := range []struct {
		name  string
		nodes []string
	}{
		{"urls", []string{"http://127.0.0.1:8081", "http://127.0.0.1:8082"}},
		{"three", []string{"a", "b", "c"}},
	} {
		r := NewRing(64, tc.nodes)
		counts := make(map[string]int)
		const n = 1000
		for i := 0; i < n; i++ {
			counts[r.Owner(fmt.Sprintf("lg-%04d", i))]++
		}
		want := n / len(tc.nodes)
		for _, node := range tc.nodes {
			got := counts[node]
			if got < want/3 || got > want*3 {
				t.Errorf("%s: node %s owns %d of %d keys (fair share %d)", tc.name, node, got, n, want)
			}
		}
	}
}

// TestRingMinimalDisruption: removing one node must not move any key
// whose owner survives — the consistent-hashing contract the
// migration cost model rests on.
func TestRingMinimalDisruption(t *testing.T) {
	nodes := []string{"s1", "s2", "s3", "s4"}
	full := NewRing(64, nodes)
	without := NewRing(64, []string{"s1", "s2", "s4"}) // s3 removed
	moved, total := 0, 2000
	for i := 0; i < total; i++ {
		key := fmt.Sprintf("session-%d", i)
		was, now := full.Owner(key), without.Owner(key)
		if was != "s3" && was != now {
			t.Fatalf("key %s moved %s → %s though %s survived", key, was, now, was)
		}
		if was == "s3" {
			moved++
		}
	}
	if moved == 0 || moved > total/2 {
		t.Fatalf("implausible disruption: %d/%d keys owned by the removed node", moved, total)
	}
}

// TestRingOwners: the failover order starts at the owner, contains no
// duplicates, and never exceeds the node count.
func TestRingOwners(t *testing.T) {
	r := NewRing(64, []string{"s1", "s2", "s3"})
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("k%d", i)
		owners := r.Owners(key, 5)
		if len(owners) != 3 {
			t.Fatalf("key %s: %d owners, want 3 distinct", key, len(owners))
		}
		if owners[0] != r.Owner(key) {
			t.Fatalf("key %s: Owners[0]=%s != Owner=%s", key, owners[0], r.Owner(key))
		}
		seen := make(map[string]bool)
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("key %s: duplicate owner %s", key, o)
			}
			seen[o] = true
		}
	}
}

// TestRingEmpty: an empty ring owns nothing and panics nowhere.
func TestRingEmpty(t *testing.T) {
	r := NewRing(64, nil)
	if r.Owner("x") != "" {
		t.Fatal("empty ring returned an owner")
	}
	if r.Owners("x", 3) != nil {
		t.Fatal("empty ring returned owners")
	}
}
