package cluster

import (
	"encoding/json"
	"net/http"

	"visclean/internal/service"
)

// Rebalance walks every serving shard and moves each session whose
// ring owner differs from where it lives — which happens when a shard
// joins (its ring slice arrives occupied by others) or starts draining
// (it no longer sits on the ring at all). A session mid-iteration is
// left in place unless its shard is draining: migration at an
// iteration boundary is invisible (replay reproduces the state
// bit-exactly), whereas migrating mid-iteration folds the unanswered
// question away, so we don't do it without a reason to. Returns the
// number of sessions moved.
//
// Shard death needs no rebalance at all: the dead shard's sessions
// lazily restore on their new ring owners — from the shared snapshot
// directory, at their last persisted boundary — the moment a request
// for them arrives (see Router.handleSession).
func (rt *Router) Rebalance() (moved int) {
	obsRebalances.Inc()
	for _, sh := range rt.shards {
		st := sh.State()
		if st != ShardReady && st != ShardDraining {
			continue
		}
		res, err := rt.do(sh, http.MethodGet, "/api/sessions", "", nil)
		if err != nil {
			rt.markDown(sh)
			continue
		}
		if res.status != http.StatusOK {
			continue
		}
		var infos []service.SessionInfo
		if json.Unmarshal(res.body, &infos) != nil {
			continue
		}
		draining := st == ShardDraining
		for _, info := range infos {
			rt.mu.Lock()
			desired := rt.ring.Owner(info.ID)
			rt.mu.Unlock()
			if desired == "" || (desired == sh.name && !draining) {
				continue
			}
			if info.Running && !draining {
				continue // boundary-only migration; catch it next round
			}
			target := rt.byName[desired]
			if target == nil || target.State() != ShardReady {
				continue
			}
			if rt.migrate(info.ID, sh, target) {
				moved++
			}
		}
	}
	return moved
}

// migrate moves one session: export (detach) from the old shard,
// import (attach + replay) on the new one. A failed import is not
// fatal to the session — the export deliberately leaves the on-disk
// snapshot in place, so the session stays restorable at its last
// persisted boundary wherever the ring sends its next request.
func (rt *Router) migrate(id string, from, to *shard) bool {
	res, err := rt.do(from, http.MethodPost, "/api/session/"+id+"/export", "", nil)
	if err != nil {
		rt.markDown(from)
		return false
	}
	if res.status != http.StatusOK {
		// 404/410: the session vanished (closed, or already migrated by a
		// concurrent pass) — nothing to move.
		return false
	}
	imp, err := rt.do(to, http.MethodPost, "/api/session/import", "", res.body)
	if err != nil {
		rt.markDown(to)
		obsMigrationFailures.Inc()
		rt.cfg.Logf("cluster: migrate %s %s → %s: import failed: %v", id, from.name, to.name, err)
		return false
	}
	switch imp.status {
	case http.StatusNoContent, http.StatusConflict:
		// Conflict means the target already holds the session (a
		// concurrent restore or an earlier half-done migration) — the
		// outcome we wanted either way.
		rt.setSticky(id, to.name)
		obsMigrations.Inc()
		rt.cfg.Logf("cluster: migrated session %s %s → %s", id, from.name, to.name)
		return true
	default:
		obsMigrationFailures.Inc()
		rt.cfg.Logf("cluster: migrate %s %s → %s: import status %d: %s",
			id, from.name, to.name, imp.status, string(imp.body))
		return false
	}
}
