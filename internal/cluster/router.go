package cluster

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// Config parameterizes a Router.
type Config struct {
	// Shards are the backend base URLs, e.g. "http://127.0.0.1:8081"
	// (required, static membership: shards may die and rejoin but the
	// candidate set is fixed at construction).
	Shards []string
	// Replicas is the virtual nodes per shard on the ring (default 64).
	Replicas int
	// HealthInterval is the /readyz probe period (default 1s). Negative
	// disables the background loop entirely; tests then drive
	// CheckHealth and Rebalance by hand for determinism.
	HealthInterval time.Duration
	// RebalanceInterval is the periodic rebalance period (default 5s);
	// a rebalance also runs immediately after any health transition.
	RebalanceInterval time.Duration
	// Client is the HTTP client for proxying and probing (default: 30s
	// timeout).
	Client *http.Client
	// Logf receives operational log lines (default: drop).
	Logf func(format string, args ...any)
	// NewID generates session ids for creates that don't pin one
	// (default: 16 hex chars of crypto/rand). Tests inject sequential
	// ids so session→shard placement is deterministic.
	NewID func() string
}

// Router is the cluster front door: a consistent-hash reverse proxy
// over N viscleanweb shards. It routes each session's requests to the
// shard owning its id, fails over to successor shards when the owner
// dies (sessions restore from the shared snapshot directory), and
// migrates sessions between shards on membership changes.
type Router struct {
	cfg    Config
	client *http.Client
	shards []*shard
	byName map[string]*shard

	mu     sync.Mutex
	ring   *Ring
	sticky map[string]string // session id → shard name, overrides the ring

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// New builds a router, probes every shard once, and (unless
// HealthInterval < 0) starts the background health/rebalance loop.
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("cluster: no shards configured")
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 64
	}
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = time.Second
	}
	if cfg.RebalanceInterval <= 0 {
		cfg.RebalanceInterval = 5 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.NewID == nil {
		cfg.NewID = randomID
	}
	rt := &Router{
		cfg:    cfg,
		client: cfg.Client,
		byName: make(map[string]*shard),
		sticky: make(map[string]string),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	for _, name := range cfg.Shards {
		if _, dup := rt.byName[name]; dup {
			return nil, fmt.Errorf("cluster: duplicate shard %s", name)
		}
		sh := &shard{name: name}
		rt.shards = append(rt.shards, sh)
		rt.byName[name] = sh
	}
	rt.ring = NewRing(cfg.Replicas, nil)
	rt.CheckHealth()
	if cfg.HealthInterval > 0 {
		go rt.loop()
	} else {
		close(rt.done)
	}
	return rt, nil
}

func randomID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("s%x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// Close stops the background loop.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stop) })
	<-rt.done
}

func (rt *Router) loop() {
	defer close(rt.done)
	health := time.NewTicker(rt.cfg.HealthInterval)
	defer health.Stop()
	rebalance := time.NewTicker(rt.cfg.RebalanceInterval)
	defer rebalance.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-health.C:
			if rt.checkHealth() {
				rt.Rebalance()
			}
		case <-rebalance.C:
			rt.Rebalance()
		}
	}
}

// CheckHealth probes every shard once and reports whether any state
// changed. Exported so tests (and the smoke harness) can drive the
// health machine deterministically with the background loop disabled.
func (rt *Router) CheckHealth() bool { return rt.checkHealth() }

// Handler returns the router's routing mux.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", rt.handleIndex)
	mux.HandleFunc("POST /api/session", rt.handleCreate)
	mux.HandleFunc("GET /api/sessions", rt.handleList)
	mux.HandleFunc("GET /api/session/{id}/state", rt.handleSession)
	mux.HandleFunc("POST /api/session/{id}/iterate", rt.handleSession)
	mux.HandleFunc("POST /api/session/{id}/answer", rt.handleSession)
	mux.HandleFunc("DELETE /api/session/{id}", rt.handleSession)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /readyz", rt.handleReadyz)
	mux.HandleFunc("GET /cluster/state", rt.handleClusterState)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	return mux
}

// result is one buffered backend response.
type result struct {
	status int
	header http.Header
	body   []byte
}

// do sends one buffered request to a shard and buffers the response,
// so a failed attempt can be retried against the next candidate and a
// 404 kept aside while the scan continues.
func (rt *Router) do(sh *shard, method, path, rid string, body []byte) (*result, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, sh.name+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if rid != "" {
		req.Header.Set("X-Request-ID", rid)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	return &result{status: resp.StatusCode, header: resp.Header, body: data}, nil
}

func (rt *Router) relay(w http.ResponseWriter, res *result, rid string) {
	if ct := res.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := res.header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	if rid != "" {
		w.Header().Set("X-Request-ID", rid)
	}
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// requestID returns the inbound X-Request-ID or mints one, so every
// proxied request is traceable end to end (the shard folds the id into
// its iteration trace labels).
func (rt *Router) requestID(r *http.Request) string {
	if rid := r.Header.Get("X-Request-ID"); rid != "" {
		return rid
	}
	return randomID()
}

// candidates returns the shards to try for a session id, in order:
// the sticky owner (authoritative after a migration or a successful
// request), then the ring owners, then any draining shards still
// serving their old sessions. Only live-ish shards (ready or draining)
// are returned.
func (rt *Router) candidates(id string) []*shard {
	rt.mu.Lock()
	stickyName, hasSticky := rt.sticky[id]
	ringOwners := rt.ring.Owners(id, len(rt.shards))
	rt.mu.Unlock()

	var out []*shard
	seen := make(map[string]bool)
	add := func(name string) {
		if seen[name] {
			return
		}
		seen[name] = true
		sh := rt.byName[name]
		if sh == nil {
			return
		}
		if st := sh.State(); st == ShardReady || st == ShardDraining {
			out = append(out, sh)
		}
	}
	if hasSticky {
		add(stickyName)
	}
	for _, name := range ringOwners {
		add(name)
	}
	for _, sh := range rt.shards {
		add(sh.name)
	}
	return out
}

func (rt *Router) setSticky(id, name string) {
	rt.mu.Lock()
	rt.sticky[id] = name
	rt.mu.Unlock()
}

func (rt *Router) clearSticky(id string) {
	rt.mu.Lock()
	delete(rt.sticky, id)
	rt.mu.Unlock()
}

// handleSession proxies one per-session request to the shard owning
// the id, scanning failover candidates on connection errors (the shard
// died — mark it down and try its successor, which lazily restores the
// session from the shared snapshot directory) and on 404/410 (the
// session moved mid-rebalance; some other candidate has it). The first
// 404-class response is kept and relayed if nobody claims the session.
func (rt *Router) handleSession(w http.ResponseWriter, r *http.Request) {
	obsRequests.Inc()
	id := r.PathValue("id")
	rid := rt.requestID(r)
	path := r.URL.Path
	var body []byte
	if r.Body != nil {
		var err error
		body, err = io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	var miss *result
	for _, sh := range rt.candidates(id) {
		res, err := rt.do(sh, r.Method, path, rid, body)
		if err != nil {
			rt.markDown(sh)
			obsRetries.Inc()
			continue
		}
		if res.status == http.StatusNotFound || res.status == http.StatusGone {
			if miss == nil {
				miss = res
			}
			obsRetries.Inc()
			continue
		}
		if res.status < 300 {
			if r.Method == http.MethodDelete {
				rt.clearSticky(id)
			} else {
				rt.setSticky(id, sh.name)
			}
		}
		rt.relay(w, res, rid)
		return
	}
	if miss != nil {
		rt.relay(w, miss, rid)
		return
	}
	http.Error(w, "cluster: no shard available for session "+id, http.StatusBadGateway)
}

// handleCreate assigns the session id HERE — before any shard is
// contacted — so consistent-hash placement is decided by the router,
// then creates the session on the id's owner (falling through to ring
// successors when the owner is at capacity or dies mid-create). A
// client-pinned "id" in the body is honored.
func (rt *Router) handleCreate(w http.ResponseWriter, r *http.Request) {
	obsRequests.Inc()
	rid := rt.requestID(r)
	var spec map[string]any
	if data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20)); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	} else if len(data) > 0 {
		if err := json.Unmarshal(data, &spec); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	if spec == nil {
		spec = make(map[string]any)
	}
	id, _ := spec["id"].(string)
	if id == "" {
		id = rt.cfg.NewID()
		spec["id"] = id
	}
	body, err := json.Marshal(spec)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	rt.mu.Lock()
	owners := rt.ring.Owners(id, len(rt.shards))
	rt.mu.Unlock()
	var last *result
	for _, name := range owners {
		sh := rt.byName[name]
		if sh == nil || sh.State() != ShardReady {
			continue
		}
		res, err := rt.do(sh, http.MethodPost, "/api/session", rid, body)
		if err != nil {
			rt.markDown(sh)
			obsRetries.Inc()
			continue
		}
		last = res
		if res.status == http.StatusCreated {
			rt.setSticky(id, sh.name)
			rt.relay(w, res, rid)
			return
		}
		if res.status != http.StatusServiceUnavailable {
			// Hard error (bad spec, id conflict): successors would say
			// the same or worse — relay it.
			rt.relay(w, res, rid)
			return
		}
		obsRetries.Inc() // busy shard: spill to the next ring owner
	}
	if last != nil {
		rt.relay(w, last, rid)
		return
	}
	http.Error(w, "cluster: no ready shard", http.StatusServiceUnavailable)
}

// handleList fans GET /api/sessions out to every serving shard and
// merges the arrays.
func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	obsRequests.Inc()
	merged := make([]json.RawMessage, 0)
	for _, sh := range rt.shards {
		if st := sh.State(); st != ShardReady && st != ShardDraining {
			continue
		}
		res, err := rt.do(sh, http.MethodGet, "/api/sessions", "", nil)
		if err != nil {
			rt.markDown(sh)
			continue
		}
		if res.status != http.StatusOK {
			continue
		}
		var part []json.RawMessage
		if json.Unmarshal(res.body, &part) == nil {
			merged = append(merged, part...)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(merged)
}

// handleIndex proxies the GUI page from the first ready shard.
func (rt *Router) handleIndex(w http.ResponseWriter, r *http.Request) {
	for _, sh := range rt.shards {
		if sh.State() != ShardReady {
			continue
		}
		res, err := rt.do(sh, http.MethodGet, "/", "", nil)
		if err != nil {
			rt.markDown(sh)
			continue
		}
		rt.relay(w, res, "")
		return
	}
	http.Error(w, "cluster: no ready shard", http.StatusServiceUnavailable)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = io.WriteString(w, "ok\n")
}

// handleReadyz: the router is ready when at least one shard is.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, sh := range rt.shards {
		if sh.State() == ShardReady {
			_, _ = io.WriteString(w, "ok\n")
			return
		}
	}
	w.WriteHeader(http.StatusServiceUnavailable)
	_, _ = io.WriteString(w, "no ready shards\n")
}

// ShardStatus is one shard's row in GET /cluster/state.
type ShardStatus struct {
	Name     string `json:"name"`
	State    string `json:"state"`
	Sessions int    `json:"sessions"` // -1 when unreachable
}

// ClusterState is the GET /cluster/state document.
type ClusterState struct {
	Shards []ShardStatus `json:"shards"`
	Ring   []string      `json:"ring"`
}

// State reports shard health and per-shard session counts.
func (rt *Router) State() ClusterState {
	var cs ClusterState
	for _, sh := range rt.shards {
		row := ShardStatus{Name: sh.name, State: sh.State().String(), Sessions: -1}
		if st := sh.State(); st == ShardReady || st == ShardDraining {
			if res, err := rt.do(sh, http.MethodGet, "/api/sessions", "", nil); err == nil && res.status == http.StatusOK {
				var part []json.RawMessage
				if json.Unmarshal(res.body, &part) == nil {
					row.Sessions = len(part)
				}
			}
		}
		cs.Shards = append(cs.Shards, row)
	}
	rt.mu.Lock()
	cs.Ring = rt.ring.Nodes()
	rt.mu.Unlock()
	return cs
}

func (rt *Router) handleClusterState(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(rt.State())
}
