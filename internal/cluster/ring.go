// Package cluster shards the VisClean session service across N
// shared-nothing viscleanweb instances behind one consistent-hash
// router (DESIGN.md §9). Session ids hash onto a ring of virtual
// nodes; the router proxies each request to the shard that owns the
// id, health-checks shard readiness, and migrates sessions — via the
// web layer's snapshot export/import pair — when membership changes
// (a shard joins, drains, or dies). Because a session is a spec plus a
// deterministic answer log, migration is replay, and a shard death
// costs at most the answers since the victim's last persisted
// iteration boundary (nothing, when shards share a snapshot
// directory).
package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is an immutable consistent-hash ring: each node contributes
// `replicas` virtual points placed by hashing "node#i", and a key is
// owned by the first point clockwise of the key's own hash. Adding or
// removing one node therefore moves only ~1/N of the key space —
// exactly the sessions the router must migrate, no more.
type Ring struct {
	replicas int
	points   []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node string
}

// hashKey is FNV-1a 64 with a murmur-style finalizer — stable across
// processes and Go versions (unlike maphash) and cheap. The finalizer
// matters: raw FNV-1a places keys that differ only in the last byte
// within ~2^44 of each other on a 2^64 ring (the final XOR-multiply
// spreads them by at most 255× the FNV prime), so sequential ids like
// lg-0001, lg-0002, … would all cluster under one vnode. The avalanche
// mix diffuses them over the whole ring.
func hashKey(key string) uint64 {
	f := fnv.New64a()
	_, _ = f.Write([]byte(key))
	h := f.Sum64()
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// NewRing builds a ring over the given nodes with `replicas` virtual
// points per node (≤0 defaults to 64). An empty node list yields an
// empty ring whose Owner is "".
func NewRing(replicas int, nodes []string) *Ring {
	if replicas <= 0 {
		replicas = 64
	}
	r := &Ring{replicas: replicas}
	for _, n := range nodes {
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, ringPoint{hash: hashKey(n + "#" + strconv.Itoa(i)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on node name so equal hashes (vanishingly rare but
		// possible) order deterministically regardless of input order.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Nodes returns the distinct node names on the ring.
func (r *Ring) Nodes() []string {
	seen := make(map[string]bool)
	var out []string
	for _, p := range r.points {
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	sort.Strings(out)
	return out
}

// Owner returns the node owning the key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(key)].node
}

// Owners returns up to n distinct nodes in ring (preference) order
// starting at the key's owner: the owner first, then the nodes that
// would own the key if the ones before them vanished. The router uses
// this as its failover candidate order.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	start := r.search(key)
	seen := make(map[string]bool, n)
	var out []string
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// search finds the index of the first point clockwise of the key.
func (r *Ring) search(key string) int {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the key hashes past the last point
	}
	return i
}
