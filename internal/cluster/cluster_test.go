package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"visclean/internal/loadgen"
	"visclean/internal/service"
	"visclean/internal/web"
)

// testShard is one in-process viscleanweb instance on a real listener.
type testShard struct {
	reg *service.Registry
	srv *web.Server
	ts  *httptest.Server
}

func newTestShard(t *testing.T, snapDir string, ready, auto bool) *testShard {
	t.Helper()
	reg := service.NewRegistry(service.Config{
		MaxSessions: 32,
		Workers:     2,
		SnapshotDir: snapDir,
		Logf:        func(string, ...any) {},
	})
	srv := web.New(web.Config{
		Registry: reg,
		Defaults: service.Spec{Dataset: "D1", Scale: 0.004, Seed: 3, Auto: auto},
	})
	if ready {
		srv.SetReady(true)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); reg.Shutdown() })
	return &testShard{reg: reg, srv: srv, ts: ts}
}

// kill simulates whole-shard death: connections drop, nothing persists
// beyond the last iteration-boundary snapshot.
func (sh *testShard) kill() {
	sh.ts.CloseClientConnections()
	sh.ts.Close()
	sh.reg.Kill()
}

// pinnedIDs returns count ids (prefix-N) that the ring places on each
// of the given owners, so tests control session→shard placement
// deterministically.
func pinnedIDs(t *testing.T, ring *Ring, prefix string, perOwner int, owners ...string) map[string][]string {
	t.Helper()
	out := make(map[string][]string)
	for i := 0; i < 100000; i++ {
		id := fmt.Sprintf("%s-%d", prefix, i)
		o := ring.Owner(id)
		if len(out[o]) < perOwner {
			out[o] = append(out[o], id)
		}
		full := true
		for _, owner := range owners {
			if len(out[owner]) < perOwner {
				full = false
			}
		}
		if full {
			return out
		}
	}
	t.Fatal("could not find pinned ids for every owner")
	return nil
}

func routerReq(t *testing.T, mux http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body == "" {
		req = httptest.NewRequest(method, path, nil)
	} else {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	return rec
}

// stateBody fetches a session's state through the router and
// canonicalizes it, dropping lastReport: the report is per-iteration
// ephemera a snapshot replay deliberately does not reconstruct, while
// everything else (chart, distance-to-truth, iteration count) must
// survive migration bit-exactly. JSON float64 round-trips exactly in
// Go, so equal canonical bodies mean bit-identical state.
func stateBody(t *testing.T, mux http.Handler, id string) string {
	t.Helper()
	rec := routerReq(t, mux, http.MethodGet, "/api/session/"+id+"/state", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("state %s: %d %s", id, rec.Code, rec.Body.String())
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	delete(m, "lastReport")
	out, err := json.Marshal(m) // map keys marshal sorted: canonical
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// shardHas reports whether the shard itself (not the router) serves the
// session. A shard with a snapshot directory restores on demand, so
// this also claims sessions the shard could lazily restore — tests that
// assert placement use snapDir="" shards or check the source shard 404s.
func shardHas(t *testing.T, sh *testShard, id string) bool {
	t.Helper()
	resp, err := http.Get(sh.ts.URL + "/api/session/" + id + "/state")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func waitIdleVia(t *testing.T, mux http.Handler, id string, wantIter int) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var st struct {
			Iteration int  `json:"iteration"`
			Running   bool `json:"running"`
		}
		body := stateBody(t, mux, id)
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatal(err)
		}
		if !st.Running && st.Iteration >= wantIter {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("session %s never reached iteration %d", id, wantIter)
}

// TestClusterSmoke is the short-mode cluster check (scripts/check.sh):
// two shards behind a router, deterministic placement via pinned ids,
// one full auto iteration through the proxy, delete, and the cluster
// state document.
func TestClusterSmoke(t *testing.T) {
	snapDir := t.TempDir()
	a := newTestShard(t, snapDir, true, true)
	b := newTestShard(t, snapDir, true, true)
	var seq atomic.Int64
	rt, err := New(Config{
		Shards:         []string{a.ts.URL, b.ts.URL},
		HealthInterval: -1, // tests drive health by hand
		Logf:           t.Logf,
		NewID:          func() string { return fmt.Sprintf("smoke-auto-%d", seq.Add(1)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	mux := rt.Handler()

	if rec := routerReq(t, mux, http.MethodGet, "/readyz", ""); rec.Code != http.StatusOK {
		t.Fatalf("router readyz: %d", rec.Code)
	}

	// Two sessions per shard, placement chosen via the ring.
	rt.mu.Lock()
	ring := rt.ring
	rt.mu.Unlock()
	byOwner := pinnedIDs(t, ring, "smoke", 2, a.ts.URL, b.ts.URL)
	shardOf := map[string]*testShard{a.ts.URL: a, b.ts.URL: b}
	var all []string
	for owner, ids := range byOwner {
		for _, id := range ids {
			rec := routerReq(t, mux, http.MethodPost, "/api/session", `{"id":"`+id+`"}`)
			if rec.Code != http.StatusCreated {
				t.Fatalf("create %s: %d %s", id, rec.Code, rec.Body.String())
			}
			if rid := rec.Header().Get("X-Request-ID"); rid == "" {
				t.Fatal("router response missing X-Request-ID")
			}
			if !shardHas(t, shardOf[owner], id) {
				t.Fatalf("session %s not on its ring owner %s", id, owner)
			}
			all = append(all, id)
		}
	}

	// One full auto iteration proxied end to end.
	id := all[0]
	if rec := routerReq(t, mux, http.MethodPost, "/api/session/"+id+"/iterate", ""); rec.Code != http.StatusAccepted {
		t.Fatalf("iterate via router: %d %s", rec.Code, rec.Body.String())
	}
	waitIdleVia(t, mux, id, 1)

	// Delete through the router.
	victim := all[len(all)-1]
	if rec := routerReq(t, mux, http.MethodDelete, "/api/session/"+victim, ""); rec.Code >= 300 {
		t.Fatalf("delete via router: %d", rec.Code)
	}
	if rec := routerReq(t, mux, http.MethodGet, "/api/session/"+victim+"/state", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("deleted session still resolves: %d", rec.Code)
	}

	cs := rt.State()
	if len(cs.Ring) != 2 {
		t.Fatalf("ring nodes = %v, want both shards", cs.Ring)
	}
	total := 0
	for _, row := range cs.Shards {
		if row.State != "ready" {
			t.Fatalf("shard %s state %s, want ready", row.Name, row.State)
		}
		total += row.Sessions
	}
	if total != len(all)-1 {
		t.Fatalf("cluster holds %d sessions, want %d", total, len(all)-1)
	}
	if rec := routerReq(t, mux, http.MethodGet, "/metrics", ""); rec.Code != http.StatusOK {
		t.Fatalf("router metrics: %d", rec.Code)
	}
}

// TestClusterJoinAndDrain walks a shard through the membership
// lifecycle: it joins (sessions rebalance onto it, bit-exactly), then
// the other shard drains (all sessions hand off, nothing lost).
func TestClusterJoinAndDrain(t *testing.T) {
	// No snapshot dir: placement assertions must not be satisfied by
	// lazy restore, only by actual migration.
	a := newTestShard(t, "", true, true)
	b := newTestShard(t, "", false, true) // joins later
	rt, err := New(Config{
		Shards:         []string{a.ts.URL, b.ts.URL},
		HealthInterval: -1,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	mux := rt.Handler()

	// Placement under the FUTURE two-shard ring: two ids that will stay
	// on a, two that will move to b once it joins.
	fullRing := NewRing(64, []string{a.ts.URL, b.ts.URL})
	byOwner := pinnedIDs(t, fullRing, "join", 2, a.ts.URL, b.ts.URL)
	stay, move := byOwner[a.ts.URL], byOwner[b.ts.URL]

	for _, id := range append(append([]string(nil), stay...), move...) {
		rec := routerReq(t, mux, http.MethodPost, "/api/session", `{"id":"`+id+`"}`)
		if rec.Code != http.StatusCreated {
			t.Fatalf("create %s: %d %s", id, rec.Code, rec.Body.String())
		}
		if !shardHas(t, a, id) {
			t.Fatalf("session %s not on the only ready shard", id)
		}
	}
	// Give one mover history so migration replays a non-trivial log.
	if rec := routerReq(t, mux, http.MethodPost, "/api/session/"+move[0]+"/iterate", ""); rec.Code != http.StatusAccepted {
		t.Fatalf("iterate: %d", rec.Code)
	}
	waitIdleVia(t, mux, move[0], 1)
	before := make(map[string]string)
	for _, id := range append(append([]string(nil), stay...), move...) {
		before[id] = stateBody(t, mux, id)
	}

	// Join: b announces ready, the router rebalances b's ring slice
	// onto it.
	b.srv.SetReady(true)
	if !rt.CheckHealth() {
		t.Fatal("health probe missed the join")
	}
	if moved := rt.Rebalance(); moved != len(move) {
		t.Fatalf("join rebalance moved %d sessions, want %d", moved, len(move))
	}
	for _, id := range move {
		if !shardHas(t, b, id) || shardHas(t, a, id) {
			t.Fatalf("session %s did not hand off to the joining shard", id)
		}
	}
	for _, id := range stay {
		if !shardHas(t, a, id) {
			t.Fatalf("session %s left its owner during the join", id)
		}
	}
	for id, want := range before {
		if got := stateBody(t, mux, id); got != want {
			t.Fatalf("session %s state changed across join migration:\n was %s\n now %s", id, want, got)
		}
	}

	// Drain: a stops accepting and the router pulls its sessions off.
	a.srv.SetDraining()
	if !rt.CheckHealth() {
		t.Fatal("health probe missed the drain")
	}
	if moved := rt.Rebalance(); moved != len(stay) {
		t.Fatalf("drain rebalance moved %d sessions, want %d", moved, len(stay))
	}
	if n := a.reg.Len(); n != 0 {
		t.Fatalf("draining shard still holds %d sessions", n)
	}
	for id, want := range before {
		if !shardHas(t, b, id) {
			t.Fatalf("session %s missing from the surviving shard after drain", id)
		}
		if got := stateBody(t, mux, id); got != want {
			t.Fatalf("session %s state changed across drain handoff:\n was %s\n now %s", id, want, got)
		}
	}
	// New sessions keep flowing — to the survivor.
	rec := routerReq(t, mux, http.MethodPost, "/api/session", `{"id":"join-post-drain"}`)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create during drain: %d %s", rec.Code, rec.Body.String())
	}
	if !shardHas(t, b, "join-post-drain") {
		t.Fatal("post-drain session not on the surviving shard")
	}
}

// TestClusterShardKillStorm is the acceptance chaos drill: interactive
// oracle-backed drivers storm a 2-shard cluster through the router, one
// shard is killed mid-storm (crash semantics — no final persists), and
// every session must finish with every recorded iteration boundary
// bit-exactly equal to a fault-free single-shard reference run. Acked
// answers survive shard death because sessions restore from the shared
// snapshot directory at their last persisted boundary and the
// deterministic drivers re-supply the lost tail.
func TestClusterShardKillStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos storm: not for -short")
	}
	const (
		sessions = 6
		iters    = 3
	)
	spec := loadgen.SpecJSON{Dataset: "D1", Scale: 0.004, Seed: 9, K: 4}
	truth, err := loadgen.NewTruthCache().Truth(spec.Dataset, spec.Scale, spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	policy := loadgen.NewPolicy(truth, spec.Seed)
	client := &http.Client{Timeout: 30 * time.Second}

	// Fault-free reference trajectory: one driver, one shard, no router.
	refShard := newTestShard(t, t.TempDir(), true, false)
	refSpec := spec
	refSpec.ID = "kill-ref"
	ref := &loadgen.Driver{
		Client: client, Base: refShard.ts.URL, Spec: refSpec,
		Policy: policy, Iters: iters, Stats: loadgen.NewStats(),
	}
	if err := ref.Run(); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	for i := 0; i <= iters; i++ {
		if _, ok := ref.Boundaries[i]; !ok {
			t.Fatalf("reference run missing boundary %d", i)
		}
	}

	// The storm cluster: two shards over ONE shared snapshot directory —
	// the durability substrate that makes shard death lossless.
	snapDir := t.TempDir()
	a := newTestShard(t, snapDir, true, false)
	b := newTestShard(t, snapDir, true, false)
	rt, err := New(Config{
		Shards:            []string{a.ts.URL, b.ts.URL},
		HealthInterval:    50 * time.Millisecond,
		RebalanceInterval: time.Hour, // only health-change rebalances
		Logf:              t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	router := httptest.NewServer(rt.Handler())
	defer router.Close()

	stats := loadgen.NewStats()
	drivers := make([]*loadgen.Driver, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		sp := spec
		sp.ID = fmt.Sprintf("kill-%02d", i)
		drivers[i] = &loadgen.Driver{
			Client: client, Base: router.URL, Spec: sp,
			Policy: policy, Iters: iters, Stats: stats,
			Tolerant: true, Deadline: 3 * time.Minute,
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = drivers[i].Run()
		}(i)
	}

	// Kill shard a once the storm has acked real answers, so the crash
	// lands mid-flight for several sessions.
	killAt := time.Now().Add(60 * time.Second)
	for stats.Answered() < sessions {
		if time.Now().After(killAt) {
			t.Fatal("storm never made progress")
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Logf("killing shard %s after %d acked answers", a.ts.URL, stats.Answered())
	a.kill()
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Errorf("driver %s: %v", drivers[i].Spec.ID, err)
		}
	}
	if t.Failed() {
		t.FailNow()
	}
	// The invariant: every boundary any driver observed matches the
	// fault-free reference bit-exactly — acked answers survived the
	// shard death.
	for _, d := range drivers {
		for iter, fp := range d.Boundaries {
			want, ok := ref.Boundaries[iter]
			if !ok {
				t.Fatalf("%s reached boundary %d the reference never saw", d.Spec.ID, iter)
			}
			if fp != want {
				t.Errorf("%s boundary %d diverged from fault-free reference:\n got %s\nwant %s",
					d.Spec.ID, iter, fp, want)
			}
		}
		if d.FinalState.Iteration != iters {
			t.Errorf("%s finished at iteration %d, want %d", d.Spec.ID, d.FinalState.Iteration, iters)
		}
	}
	// The router must have noticed the death.
	deadline := time.Now().Add(5 * time.Second)
	for {
		cs := rt.State()
		if len(cs.Ring) == 1 && cs.Ring[0] == b.ts.URL {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("router never evicted the dead shard from the ring: %+v", cs)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
