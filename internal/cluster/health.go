package cluster

import (
	"io"
	"net/http"
	"strings"
	"sync/atomic"
)

// ShardState is a shard's last observed health, driven by its /readyz
// probe. Only Ready shards sit on the routing ring; Draining shards
// still serve their existing sessions while the router migrates them
// away; Starting shards are left alone (they will announce readiness
// themselves); Down shards are assumed dead and their sessions are
// claimed by the new ring owners via lazy restore from the shared
// snapshot directory.
type ShardState int32

const (
	ShardDown ShardState = iota
	ShardStarting
	ShardReady
	ShardDraining
)

func (s ShardState) String() string {
	switch s {
	case ShardReady:
		return "ready"
	case ShardStarting:
		return "starting"
	case ShardDraining:
		return "draining"
	default:
		return "down"
	}
}

// shard is one backend viscleanweb instance.
type shard struct {
	name  string // base URL, e.g. http://127.0.0.1:8081
	state atomic.Int32
}

func (s *shard) State() ShardState     { return ShardState(s.state.Load()) }
func (s *shard) setState(v ShardState) { s.state.Store(int32(v)) }

// probe asks the shard's /readyz and classifies the reply.
func probe(client *http.Client, base string) ShardState {
	resp, err := client.Get(base + "/readyz")
	if err != nil {
		return ShardDown
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	if resp.StatusCode == http.StatusOK {
		return ShardReady
	}
	if strings.Contains(string(body), "draining") {
		return ShardDraining
	}
	if resp.StatusCode == http.StatusServiceUnavailable {
		return ShardStarting
	}
	return ShardDown
}

// checkHealth probes every shard once and reports whether any state
// changed. On change the caller rebuilds the ring and rebalances.
func (rt *Router) checkHealth() (changed bool) {
	ready := 0
	for _, sh := range rt.shards {
		old := sh.State()
		now := probe(rt.client, sh.name)
		if now != old {
			sh.setState(now)
			rt.cfg.Logf("cluster: shard %s %s → %s", sh.name, old, now)
			changed = true
			if now == ShardDown {
				rt.dropSticky(sh.name)
			}
		}
		if now == ShardReady {
			ready++
		}
	}
	obsShardsReady.Set(int64(ready))
	if changed {
		rt.rebuildRing()
	}
	return changed
}

// markDown records a shard observed dead mid-request (connection
// error), without waiting for the next probe tick.
func (rt *Router) markDown(sh *shard) {
	if sh.State() == ShardDown {
		return
	}
	sh.setState(ShardDown)
	rt.cfg.Logf("cluster: shard %s down (request failed)", sh.name)
	rt.dropSticky(sh.name)
	rt.rebuildRing()
}

// rebuildRing recomputes the ring over Ready shards.
func (rt *Router) rebuildRing() {
	var ready []string
	for _, sh := range rt.shards {
		if sh.State() == ShardReady {
			ready = append(ready, sh.name)
		}
	}
	rt.mu.Lock()
	rt.ring = NewRing(rt.cfg.Replicas, ready)
	rt.mu.Unlock()
}

// dropSticky forgets every sticky route pointing at the shard, so its
// sessions re-resolve through the ring on their next request.
func (rt *Router) dropSticky(name string) {
	rt.mu.Lock()
	for id, owner := range rt.sticky {
		if owner == name {
			delete(rt.sticky, id)
		}
	}
	rt.mu.Unlock()
}
