package experiments

import (
	"fmt"
	"sort"
	"strings"

	"visclean/internal/render"
)

// Exp1Progress reproduces Figs 10–12: the visualization improvement
// progression of one task under GSS (k=10), with chart snapshots at
// iterations 0, 5, 10 and 15 plus the ground-truth chart, and the EMD of
// each snapshot. Fig 10 uses Q1, Fig 11 uses Q7, Fig 12 uses Q8.
func Exp1Progress(env *Env, taskID string) (string, Curve, error) {
	curve, err := RunTask(env, taskID, RunOptions{}, 0, 5, 10, 15)
	if err != nil {
		return "", curve, err
	}
	_, d, q, err := env.Materialize(taskID)
	if err != nil {
		return "", curve, err
	}
	truthVis, err := q.Execute(d.Truth.Clean)
	if err != nil {
		return "", curve, err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Exp-1 progression for %s (%s)\n", taskID, q.String())
	iters := make([]int, 0, len(curve.Snapshots))
	for it := range curve.Snapshots {
		iters = append(iters, it)
	}
	sort.Ints(iters)
	for _, it := range iters {
		dist := curve.InitialDist
		if it > 0 && it-1 < len(curve.Dists) {
			dist = curve.Dists[it-1]
		}
		fmt.Fprintf(&b, "\n-- after %d CQG questions: EMD to ground truth = %.5f --\n", it, dist)
		b.WriteString(render.Chart(curve.Snapshots[it], 40))
	}
	fmt.Fprintf(&b, "\n-- ground truth --\n")
	b.WriteString(render.Chart(truthVis, 40))
	return b.String(), curve, nil
}

// Exp1Curves reproduces Fig 13: EMD versus iteration count for
// representative tasks of each dataset under GSS.
func Exp1Curves(env *Env, taskIDs []string) (string, []Curve, error) {
	var curves []Curve
	for _, id := range taskIDs {
		c, err := RunTask(env, id, RunOptions{})
		if err != nil {
			return "", nil, err
		}
		curves = append(curves, c)
	}
	return FormatCurveTable("Fig 13: EMD vs. #-iterations (GSS, k=10, budget=15)", curves), curves, nil
}
