package experiments

// The multi-view scenario (DESIGN.md §13): one session serving a small
// D1 dashboard, with question benefit aggregated across every panel.
// The figure compares answers-to-convergence of one multi-view session
// against cleaning the same views one session at a time — the shared
// cleaning argument of the view-based cleaning literature, measured on
// this reproduction.

import (
	"fmt"
	"strings"

	"visclean/internal/distance"
	"visclean/internal/oracle"
	"visclean/internal/pipeline"
	"visclean/internal/vis"
	"visclean/internal/vql"
)

// MultiViewViews returns the D1 dashboard of the multi-view scenario:
// the running example Q1 plus two more views over the same Citations
// measure (a session's views must share the measure column — M/O
// repairs write exactly one column).
func MultiViewViews() []string {
	return []string{
		`VISUALIZE bar SELECT Venue, SUM(Citations) FROM D1 TRANSFORM GROUP BY Venue SORT Y BY DESC LIMIT 10`,
		`VISUALIZE bar SELECT Venue, AVG(Citations) FROM D1 TRANSFORM GROUP BY Venue SORT Y BY DESC LIMIT 10`,
		`VISUALIZE bar SELECT Year, SUM(Citations) FROM D1 TRANSFORM BIN Year BY INTERVAL 5`,
	}
}

// multiViewConvergeFrac defines per-view convergence: a view has
// converged once its distance to ground truth drops to at most this
// fraction of its initial distance.
const multiViewConvergeFrac = 0.3

// MultiViewResult holds the multi-view comparison's raw series.
type MultiViewResult struct {
	Views []string
	// InitialDist is each view's starting distance to ground truth
	// (identical in both arms — same dirty data, same queries).
	InitialDist []float64
	// MultiDists[i][v] is view v's distance to ground truth after
	// iteration i+1 of the single multi-view session; MultiAnswers[i] is
	// the session's cumulative answer count at that point.
	MultiDists   [][]float64
	MultiAnswers []int
	// SeqDists[v][i] is view v's distance after iteration i+1 of its own
	// dedicated single-view session; SeqAnswers[v][i] the cumulative
	// answers that session alone has spent.
	SeqDists   [][]float64
	SeqAnswers [][]int
	// MultiConverged[v] / SeqConverged[v] are the cumulative answers
	// spent when view v first converged (−1 = not within budget). For
	// the sequential arm the count is that view's own session only; the
	// sequential total for a dashboard is their sum.
	MultiConverged []int
	SeqConverged   []int
}

// MultiTotal returns the answers the multi-view session needed until
// every view had converged, and whether all did.
func (r *MultiViewResult) MultiTotal() (int, bool) {
	worst := 0
	for _, a := range r.MultiConverged {
		if a < 0 {
			return 0, false
		}
		if a > worst {
			worst = a
		}
	}
	return worst, true
}

// SeqTotal returns the summed answers of the per-view sequential
// sessions until each had converged, and whether all did.
func (r *MultiViewResult) SeqTotal() (int, bool) {
	total := 0
	for _, a := range r.SeqConverged {
		if a < 0 {
			return 0, false
		}
		total += a
	}
	return total, true
}

// ExpMultiView runs the multi-view comparison on D1: one session
// serving all of MultiViewViews at once versus one dedicated session
// per view, every arm with its own deterministic oracle stream (see
// oracle.Fork). budget bounds iterations per session (0 = 15).
func ExpMultiView(env *Env, budget int) (string, *MultiViewResult, error) {
	if budget == 0 {
		budget = 15
	}
	views := MultiViewViews()
	d := env.Dataset("D1")
	queries := make([]*vql.Query, len(views))
	truths := make([]*vis.Data, len(views))
	for v, src := range views {
		q, err := vql.Parse(src)
		if err != nil {
			return "", nil, fmt.Errorf("experiments: multi-view query %d: %w", v, err)
		}
		tv, err := q.Execute(d.Truth.Clean)
		if err != nil {
			return "", nil, fmt.Errorf("experiments: multi-view truth %d: %w", v, err)
		}
		queries[v] = q
		truths[v] = tv
	}
	base := oracle.New(d.Truth, env.Seed)

	res := &MultiViewResult{
		Views:          views,
		MultiConverged: make([]int, len(views)),
		SeqConverged:   make([]int, len(views)),
	}
	for v := range views {
		res.MultiConverged[v] = -1
		res.SeqConverged[v] = -1
	}

	// Arm 1: the multi-view session — every answer priced and applied
	// against all panels at once.
	session, err := pipeline.NewSession(d.Dirty, queries[0], d.KeyColumns, pipeline.Config{
		Selector: pipeline.SelectGSS,
		Seed:     env.Seed,
		Workers:  env.Workers,
		TruthVis: truths[0],
		Queries:  queries[1:],
	})
	if err != nil {
		return "", nil, err
	}
	initial, err := session.CurrentVisAll()
	if err != nil {
		return "", nil, err
	}
	res.InitialDist = make([]float64, len(views))
	for v := range views {
		res.InitialDist[v] = distance.Default(truths[v], initial[v])
	}
	user := base.Fork(env.Seed + 100)
	answers := 0
	for i := 0; i < budget; i++ {
		rep, err := session.RunIteration(user)
		if err != nil {
			return "", nil, err
		}
		if rep.Exhausted {
			break
		}
		answers += rep.Questions() - rep.Unanswered
		dists := make([]float64, len(views))
		for v := range views {
			dists[v] = distance.Default(truths[v], rep.ViewCharts[v])
			if res.MultiConverged[v] < 0 && dists[v] <= multiViewConvergeFrac*res.InitialDist[v] {
				res.MultiConverged[v] = answers
			}
		}
		res.MultiDists = append(res.MultiDists, dists)
		res.MultiAnswers = append(res.MultiAnswers, answers)
	}

	// Arm 2: per-view sequential — a dedicated single-view session per
	// panel, each paying its own question stream.
	res.SeqDists = make([][]float64, len(views))
	res.SeqAnswers = make([][]int, len(views))
	for v := range views {
		seq, err := pipeline.NewSession(d.Dirty, queries[v], d.KeyColumns, pipeline.Config{
			Selector: pipeline.SelectGSS,
			Seed:     env.Seed,
			Workers:  env.Workers,
			TruthVis: truths[v],
		})
		if err != nil {
			return "", nil, err
		}
		seqUser := base.Fork(env.Seed + 200 + int64(v))
		spent := 0
		for i := 0; i < budget; i++ {
			rep, err := seq.RunIteration(seqUser)
			if err != nil {
				return "", nil, err
			}
			if rep.Exhausted {
				break
			}
			spent += rep.Questions() - rep.Unanswered
			res.SeqDists[v] = append(res.SeqDists[v], rep.DistToTruth)
			res.SeqAnswers[v] = append(res.SeqAnswers[v], spent)
			if res.SeqConverged[v] < 0 && rep.DistToTruth <= multiViewConvergeFrac*res.InitialDist[v] {
				res.SeqConverged[v] = spent
				break // this view's panel is done; next session
			}
		}
	}
	return formatMultiView(res), res, nil
}

// formatMultiView renders the answers-to-convergence comparison table.
func formatMultiView(r *MultiViewResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Multi-view cleaning (D1, %d views, converge at %.0f%% of initial EMD)\n",
		len(r.Views), multiViewConvergeFrac*100)
	fmt.Fprintf(&b, "%-6s %9s %18s %18s  %s\n", "view", "dist0", "multi answers", "sequential answers", "query")
	fmtAns := func(a int) string {
		if a < 0 {
			return "—"
		}
		return fmt.Sprintf("%d", a)
	}
	for v, src := range r.Views {
		fmt.Fprintf(&b, "%-6s %9.5f %18s %18s  %s\n",
			fmt.Sprintf("V%d", v), r.InitialDist[v],
			fmtAns(r.MultiConverged[v]), fmtAns(r.SeqConverged[v]), src)
	}
	if mt, ok := r.MultiTotal(); ok {
		if st, ok2 := r.SeqTotal(); ok2 {
			fmt.Fprintf(&b, "dashboard converged: multi-view %d answers vs sequential %d answers", mt, st)
			if st > 0 {
				fmt.Fprintf(&b, " (saving %.0f%%)", (1-float64(mt)/float64(st))*100)
			}
			b.WriteByte('\n')
		} else {
			fmt.Fprintf(&b, "dashboard converged under multi-view (%d answers); a sequential view missed the budget\n", mt)
		}
	} else {
		b.WriteString("a view missed convergence within the multi-view budget\n")
	}
	return b.String()
}
