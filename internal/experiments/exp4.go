package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"visclean/internal/cqgselect"
	"visclean/internal/datagen"
	"visclean/internal/erg"
	"visclean/internal/pipeline"
)

// SelectionAlgo names one algorithm of the Fig 17 comparison.
type SelectionAlgo struct {
	Name string
	Run  func(g *erg.Graph, k int) cqgselect.Result
}

// Exp4Algorithms is the Fig 17 algorithm set. B&B variants carry an
// expansion budget so a single data point cannot run unboundedly; the
// paper itself reports B&B "much inefficient when k > 10", and the
// budget preserves exactly that trend while keeping the harness finite.
func Exp4Algorithms(maxExpansions int) []SelectionAlgo {
	return []SelectionAlgo{
		{Name: "GSS", Run: func(g *erg.Graph, k int) cqgselect.Result {
			return cqgselect.GSS(g, k)
		}},
		{Name: "GSS+", Run: func(g *erg.Graph, k int) cqgselect.Result {
			return cqgselect.GSSPlus(g, k, cqgselect.GSSPlusOptions{})
		}},
		{Name: "B&B", Run: func(g *erg.Graph, k int) cqgselect.Result {
			return cqgselect.BranchAndBound(g, k, cqgselect.BBOptions{MaxExpansions: maxExpansions})
		}},
		{Name: "5-B&B", Run: func(g *erg.Graph, k int) cqgselect.Result {
			return cqgselect.AlphaBB(g, k, 5, maxExpansions)
		}},
		{Name: "10-B&B", Run: func(g *erg.Graph, k int) cqgselect.Result {
			return cqgselect.AlphaBB(g, k, 10, maxExpansions)
		}},
	}
}

// Exp4Point is one (algorithm, configuration) efficiency measurement.
type Exp4Point struct {
	Algo      string
	K         int
	Edges     int
	Elapsed   time.Duration
	Benefit   float64
	Exhausted bool
}

// Exp4VaryK reproduces Fig 17(a): fix the ERG at `edges` edges and vary
// the CQG size k.
func Exp4VaryK(edges int, ks []int, maxExpansions int, seed int64) (string, []Exp4Point) {
	g := datagen.SyntheticERG(edges, seed)
	var pts []Exp4Point
	for _, k := range ks {
		for _, algo := range Exp4Algorithms(maxExpansions) {
			start := time.Now()
			res := algo.Run(g, k)
			pts = append(pts, Exp4Point{
				Algo: algo.Name, K: k, Edges: edges,
				Elapsed: time.Since(start), Benefit: res.Benefit, Exhausted: res.Exhausted,
			})
		}
	}
	return formatExp4(fmt.Sprintf("Fig 17(a): selection time, #-edges=%d, varying k", edges), pts, "k", func(p Exp4Point) int { return p.K }), pts
}

// Exp4VaryEdges reproduces Fig 17(b): fix k and vary the ERG size.
func Exp4VaryEdges(k int, edgeCounts []int, maxExpansions int, seed int64) (string, []Exp4Point) {
	var pts []Exp4Point
	for _, edges := range edgeCounts {
		g := datagen.SyntheticERG(edges, seed)
		for _, algo := range Exp4Algorithms(maxExpansions) {
			start := time.Now()
			res := algo.Run(g, k)
			pts = append(pts, Exp4Point{
				Algo: algo.Name, K: k, Edges: edges,
				Elapsed: time.Since(start), Benefit: res.Benefit, Exhausted: res.Exhausted,
			})
		}
	}
	return formatExp4(fmt.Sprintf("Fig 17(b): selection time, k=%d, varying #-edges", k), pts, "edges", func(p Exp4Point) int { return p.Edges }), pts
}

func formatExp4(title string, pts []Exp4Point, xName string, x func(Exp4Point) int) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "%-8s %8s %12s %10s %6s\n", "algo", xName, "time", "benefit", "cap?")
	for _, p := range pts {
		cap := ""
		if p.Exhausted {
			cap = "yes"
		}
		fmt.Fprintf(&b, "%-8s %8d %12s %10.2f %6s\n", p.Algo, x(p), p.Elapsed.Round(time.Microsecond), p.Benefit, cap)
	}
	return b.String()
}

// Exp4ComponentTime reproduces Fig 18: the average machine time per
// framework component per iteration for each given task.
func Exp4ComponentTime(env *Env, taskIDs []string) (string, map[string]pipeline.Timings, error) {
	out := map[string]pipeline.Timings{}
	var b strings.Builder
	b.WriteString("Fig 18: average machine time per component per iteration\n")
	fmt.Fprintf(&b, "%-6s %12s %12s %12s %12s %12s %12s\n",
		"task", "detect", "build-erg", "benefit", "select", "apply", "train")
	for _, id := range taskIDs {
		curve, err := RunTask(env, id, RunOptions{})
		if err != nil {
			return "", nil, err
		}
		if len(curve.Timings) == 0 {
			continue
		}
		var avg pipeline.Timings
		for _, tm := range curve.Timings {
			avg.Detect += tm.Detect
			avg.BuildERG += tm.BuildERG
			avg.Benefit += tm.Benefit
			avg.Select += tm.Select
			avg.Apply += tm.Apply
			avg.Train += tm.Train
		}
		n := time.Duration(len(curve.Timings))
		avg.Detect /= n
		avg.BuildERG /= n
		avg.Benefit /= n
		avg.Select /= n
		avg.Apply /= n
		avg.Train /= n
		out[id] = avg
		fmt.Fprintf(&b, "%-6s %12s %12s %12s %12s %12s %12s\n", id,
			avg.Detect.Round(time.Microsecond),
			avg.BuildERG.Round(time.Microsecond),
			avg.Benefit.Round(time.Microsecond),
			avg.Select.Round(time.Microsecond),
			avg.Apply.Round(time.Microsecond),
			avg.Train.Round(time.Microsecond))
	}
	return b.String(), out, nil
}

// randKSubset is kept for harness reuse: a deterministic subset of tasks.
func randKSubset(ids []string, k int, seed int64) []string {
	if k >= len(ids) {
		return ids
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(ids))
	out := make([]string, 0, k)
	for _, i := range perm[:k] {
		out = append(out, ids[i])
	}
	return out
}
