package experiments

import (
	"fmt"
	"strings"
	"sync"
)

// AblationVariant names one configuration of the ablation study over the
// design choices DESIGN.md documents on top of the paper's pseudocode.
type AblationVariant struct {
	Name string
	Opts RunOptions
}

// AblationVariants is the studied grid.
func AblationVariants() []AblationVariant {
	return []AblationVariant{
		{Name: "full", Opts: RunOptions{}},
		{Name: "-generalize", Opts: RunOptions{NoGeneralization: true}},
		{Name: "-hysteresis", Opts: RunOptions{NoHysteresis: true}},
		{Name: "-both", Opts: RunOptions{NoGeneralization: true, NoHysteresis: true}},
	}
}

// Ablation runs the variants on one task and reports initial/final
// distances, quantifying what transformation-rule generalization and
// merge hysteresis contribute to convergence.
func Ablation(env *Env, taskID string) (string, map[string]Curve, error) {
	env.Dataset(mustTask(taskID).Dataset)
	variants := AblationVariants()
	curves := make([]Curve, len(variants))
	errs := make([]error, len(variants))
	var wg sync.WaitGroup
	for i, v := range variants {
		wg.Add(1)
		go func(i int, v AblationVariant) {
			defer wg.Done()
			curves[i], errs[i] = RunTask(env, taskID, v.Opts)
		}(i, v)
	}
	wg.Wait()
	out := map[string]Curve{}
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation (%s): GSS, k=10, budget=15\n", taskID)
	fmt.Fprintf(&b, "%-14s %10s %10s\n", "variant", "initial", "final")
	for i, v := range variants {
		if errs[i] != nil {
			return "", nil, errs[i]
		}
		out[v.Name] = curves[i]
		fmt.Fprintf(&b, "%-14s %10.5f %10.5f\n", v.Name, curves[i].InitialDist, curves[i].FinalDist())
	}
	return b.String(), out, nil
}
