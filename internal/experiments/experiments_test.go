package experiments

import (
	"strings"
	"testing"

	"visclean/internal/pipeline"
)

func testEnv(t testing.TB) *Env {
	t.Helper()
	return NewEnv(0.01, 11)
}

func TestWorkloadHas18ValidTasks(t *testing.T) {
	env := testEnv(t)
	tasks := Workload()
	if len(tasks) != 18 {
		t.Fatalf("workload has %d tasks, want 18", len(tasks))
	}
	seen := map[string]bool{}
	perDataset := map[string]int{}
	for _, task := range tasks {
		if seen[task.ID] {
			t.Fatalf("duplicate task id %s", task.ID)
		}
		seen[task.ID] = true
		perDataset[task.Dataset]++
		q, err := parseTaskQuery(env, task)
		if err != nil {
			t.Fatalf("task %s: %v", task.ID, err)
		}
		d := env.Dataset(task.Dataset)
		if _, err := q.Execute(d.Dirty); err != nil {
			t.Fatalf("task %s execute dirty: %v", task.ID, err)
		}
		if _, err := q.Execute(d.Truth.Clean); err != nil {
			t.Fatalf("task %s execute clean: %v", task.ID, err)
		}
	}
	if perDataset["D1"] != 8 || perDataset["D2"] != 5 || perDataset["D3"] != 5 {
		t.Fatalf("task split per dataset = %v, want 8/5/5", perDataset)
	}
}

func TestTaskByID(t *testing.T) {
	if _, err := TaskByID("Q1"); err != nil {
		t.Fatal(err)
	}
	if _, err := TaskByID("Q99"); err == nil {
		t.Fatal("expected error for unknown task")
	}
}

func TestEnvCachesDatasets(t *testing.T) {
	env := testEnv(t)
	a := env.Dataset("D1")
	b := env.Dataset("D1")
	if a != b {
		t.Fatal("dataset not cached")
	}
}

func TestRunTaskSmoke(t *testing.T) {
	env := testEnv(t)
	curve, err := RunTask(env, "Q1", RunOptions{Budget: 3}, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Dists) == 0 {
		t.Fatal("no iterations")
	}
	if curve.Snapshots[0] == nil {
		t.Fatal("initial snapshot missing")
	}
	if len(curve.UserSeconds) != len(curve.Dists) {
		t.Fatal("user time series length mismatch")
	}
	for i := 1; i < len(curve.UserSeconds); i++ {
		if curve.UserSeconds[i] < curve.UserSeconds[i-1] {
			t.Fatal("cumulative user time decreased")
		}
	}
	// Three iterations can transiently overshoot (the model's first
	// auto-merge activation); catastrophe is the only failure here.
	if curve.FinalDist() > curve.InitialDist*2 {
		t.Fatalf("short run exploded: %v -> %v", curve.InitialDist, curve.FinalDist())
	}
}

func TestRunTaskConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("full-budget run is slow")
	}
	env := testEnv(t)
	curve, err := RunTask(env, "Q1", RunOptions{Budget: 15})
	if err != nil {
		t.Fatal(err)
	}
	if curve.FinalDist() > curve.InitialDist*0.8 {
		t.Fatalf("perfect-oracle 15-iteration run did not clean enough: %v -> %v",
			curve.InitialDist, curve.FinalDist())
	}
}

func TestExp1ProgressSmoke(t *testing.T) {
	env := testEnv(t)
	report, curve, err := Exp1Progress(env, "Q1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, "ground truth") {
		t.Fatal("report missing ground-truth chart")
	}
	if len(curve.Snapshots) < 2 {
		t.Fatalf("snapshots = %d", len(curve.Snapshots))
	}
}

func TestExp2UserTimeSavings(t *testing.T) {
	env := testEnv(t)
	report, out, err := Exp2UserTime(env, []string{"Q1"})
	if err != nil {
		t.Fatal(err)
	}
	pair := out["Q1"]
	comp, single := pair[0], pair[1]
	if len(comp.UserSeconds) == 0 || len(single.UserSeconds) == 0 {
		t.Fatal("missing user time series")
	}
	// Composite must be cheaper in total when both ran the same number
	// of iterations (the paper's ~40% saving).
	n := len(comp.UserSeconds)
	if m := len(single.UserSeconds); m < n {
		n = m
	}
	if comp.UserSeconds[n-1] >= single.UserSeconds[n-1] {
		t.Fatalf("composite %0.fs not cheaper than single %0.fs",
			comp.UserSeconds[n-1], single.UserSeconds[n-1])
	}
	if !strings.Contains(report, "Fig 15") || !strings.Contains(report, "Fig 16") {
		t.Fatal("report missing figures")
	}
}

func TestExp4VaryKShape(t *testing.T) {
	report, pts := Exp4VaryK(2000, []int{5, 10}, 50000, 1)
	if !strings.Contains(report, "Fig 17(a)") {
		t.Fatal("report header missing")
	}
	byAlgoK := map[string]map[int]Exp4Point{}
	for _, p := range pts {
		if byAlgoK[p.Algo] == nil {
			byAlgoK[p.Algo] = map[int]Exp4Point{}
		}
		byAlgoK[p.Algo][p.K] = p
	}
	// GSS must be far faster than B&B at k=10.
	gss, bb := byAlgoK["GSS"][10], byAlgoK["B&B"][10]
	if gss.Elapsed >= bb.Elapsed {
		t.Fatalf("GSS (%v) not faster than B&B (%v) at k=10", gss.Elapsed, bb.Elapsed)
	}
}

func TestExp4VaryEdges(t *testing.T) {
	_, pts := Exp4VaryEdges(5, []int{1000, 2000}, 20000, 1)
	if len(pts) != 10 {
		t.Fatalf("points = %d, want 2 sizes x 5 algorithms", len(pts))
	}
}

func TestExp4ComponentTime(t *testing.T) {
	env := testEnv(t)
	report, out, err := Exp4ComponentTime(env, []string{"Q2"})
	if err != nil {
		t.Fatal(err)
	}
	tm, ok := out["Q2"]
	if !ok || tm.Total() <= 0 {
		t.Fatalf("timings missing: %+v", out)
	}
	if !strings.Contains(report, "Fig 18") {
		t.Fatal("report header missing")
	}
}

func TestTableIVAndV(t *testing.T) {
	env := testEnv(t)
	iv := TableIV(env)
	if !strings.Contains(iv, "D1") || !strings.Contains(iv, "paper") {
		t.Fatalf("Table IV malformed:\n%s", iv)
	}
	v, err := TableV(env)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(v, "Q18") {
		t.Fatalf("Table V missing tasks:\n%s", v)
	}
}

func TestExp3Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("noisy-input grid is slow")
	}
	env := testEnv(t)
	report, results, err := Exp3NoisyInput(env, []string{"Q2"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || len(results[0].Questions) != len(Exp3Settings) {
		t.Fatalf("results malformed: %+v", results)
	}
	if !strings.Contains(report, "Table VI") {
		t.Fatal("report header missing")
	}
}

func TestExp2EffectivenessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("six selectors is slow")
	}
	env := testEnv(t)
	_, out, err := Exp2Effectiveness(env, []string{"Q2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(out["Q2"]) != len(Exp2Selectors) {
		t.Fatalf("curves = %d, want %d", len(out["Q2"]), len(Exp2Selectors))
	}
	_ = pipeline.SelectGSS // keep import intent explicit
}

func TestExpMultiViewSmoke(t *testing.T) {
	env := testEnv(t)
	report, res, err := ExpMultiView(env, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Views) < 2 || len(res.Views) > 4 {
		t.Fatalf("view count %d outside the 2-4 scenario range", len(res.Views))
	}
	if len(res.MultiDists) == 0 {
		t.Fatal("multi-view arm ran no iterations")
	}
	for i, dists := range res.MultiDists {
		if len(dists) != len(res.Views) {
			t.Fatalf("iteration %d recorded %d view dists, want %d", i+1, len(dists), len(res.Views))
		}
	}
	if len(res.SeqDists) != len(res.Views) || len(res.SeqConverged) != len(res.Views) {
		t.Fatalf("sequential arm malformed: %d dists / %d converged", len(res.SeqDists), len(res.SeqConverged))
	}
	for v, init := range res.InitialDist {
		if init <= 0 {
			t.Fatalf("view %d initial dist %v not positive", v, init)
		}
	}
	if !strings.Contains(report, "Multi-view cleaning") {
		t.Fatal("report header missing")
	}
	if !strings.Contains(report, "V2") {
		t.Fatalf("report missing per-view rows:\n%s", report)
	}
}

func TestExpMultiViewConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("full-budget multi-view comparison is slow")
	}
	env := testEnv(t)
	report, res, err := ExpMultiView(env, 15)
	if err != nil {
		t.Fatal(err)
	}
	mt, ok := res.MultiTotal()
	if !ok {
		t.Fatalf("multi-view arm did not converge every view:\n%s", report)
	}
	if mt <= 0 {
		t.Fatalf("multi-view converged with %d answers", mt)
	}
	// The sequential arm pays per view; if it also converged, the shared
	// session must not cost more answers than the sum of dedicated ones.
	if st, ok := res.SeqTotal(); ok && mt > st {
		t.Fatalf("multi-view needed %d answers vs sequential %d — cross-view aggregation made it worse:\n%s",
			mt, st, report)
	}
}
