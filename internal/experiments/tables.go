package experiments

import (
	"fmt"
	"strings"

	"visclean/internal/distance"
	"visclean/internal/vis"
)

// TableIV renders the generated datasets' statistics next to the paper's
// targets, verifying the substitution preserved the error structure.
func TableIV(env *Env) string {
	type target struct {
		attrs                   int
		tuples, distinct        int
		missingRate, outlierPct float64
	}
	targets := map[string]target{
		"D1": {6, 50483, 13915, 0.151, 0.011},
		"D2": {17, 13486, 4644, 0.082, 0.013},
		"D3": {17, 7676, 3702, 0.092, 0.021},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table IV: dataset statistics (generated at scale %.3f vs. paper)\n", env.Scale)
	fmt.Fprintf(&b, "%-4s %7s %9s %10s %10s %10s\n", "", "attrs", "tuples", "distinct", "missing%", "outlier%")
	for _, name := range []string{"D1", "D2", "D3"} {
		s := env.Dataset(name).Stats()
		tg := targets[name]
		fmt.Fprintf(&b, "%-4s %7d %9d %10d %9.1f%% %9.1f%%\n", name,
			s.Attributes, s.Tuples, s.DistinctTuples, s.MissingRate*100, s.OutlierRate*100)
		fmt.Fprintf(&b, "%-4s %7d %9d %10d %9.1f%% %9.1f%%  (paper)\n", "",
			tg.attrs, tg.tuples, tg.distinct, tg.missingRate*100, tg.outlierPct*100)
	}
	return b.String()
}

// TableV renders the reconstructed workload with initial dirtiness: each
// task's query and its initial EMD to the ground-truth visualization.
func TableV(env *Env) (string, error) {
	var b strings.Builder
	b.WriteString("Table V: visualization tasks (reconstruction; see workload.go notes)\n")
	fmt.Fprintf(&b, "%-5s %-4s %10s  %s\n", "task", "data", "EMD(dirty)", "query")
	for _, t := range Workload() {
		q, err := parseTaskQuery(env, t)
		if err != nil {
			return "", fmt.Errorf("task %s: %w", t.ID, err)
		}
		d := env.Dataset(t.Dataset)
		dirtyVis, err := q.Execute(d.Dirty)
		if err != nil {
			return "", fmt.Errorf("task %s execute: %w", t.ID, err)
		}
		truthVis, err := q.Execute(d.Truth.Clean)
		if err != nil {
			return "", fmt.Errorf("task %s truth: %w", t.ID, err)
		}
		emd := emdOf(dirtyVis, truthVis)
		fmt.Fprintf(&b, "%-5s %-4s %10.5f  %s\n", t.ID, t.Dataset, emd, t.VQL)
	}
	return b.String(), nil
}

// emdOf reports the pipeline's default (label-aligned) distance, the
// same measure every other experiment reports.
func emdOf(a, b *vis.Data) float64 { return distance.Default(a, b) }
