package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
)

// Exp3Setting is one cell of Table VI.
type Exp3Setting struct {
	WrongLabel   float64 // 0, 0.05, 0.10
	Completeness float64 // 1.0, 0.95, 0.90
}

// Exp3Result is one task's Table VI row: the average number of CQG
// questions needed to reach the clean-run quality under each setting.
type Exp3Result struct {
	Task      string
	Questions map[Exp3Setting]float64
}

// Exp3Settings mirrors the paper's grid: wrong labels varied with full
// completeness, and completeness varied with no wrong labels.
var Exp3Settings = []Exp3Setting{
	{WrongLabel: 0, Completeness: 1},
	{WrongLabel: 0.05, Completeness: 1},
	{WrongLabel: 0.10, Completeness: 1},
	{WrongLabel: 0, Completeness: 0.95},
	{WrongLabel: 0, Completeness: 0.90},
}

// Exp3NoisyInput reproduces Table VI: for each task, the clean run's
// final EMD at the paper budget defines the quality target; each noisy
// setting then runs (averaged over repeats) until it reaches the target
// (with 5% slack) or the extended budget runs out, and the number of CQG
// questions asked is reported.
func Exp3NoisyInput(env *Env, taskIDs []string, repeats int) (string, []Exp3Result, error) {
	if repeats <= 0 {
		repeats = 3
	}
	const (
		cleanBudget = 15
		maxBudget   = 30
		slack       = 1.05
	)
	var results []Exp3Result
	for _, id := range taskIDs {
		clean, err := RunTask(env, id, RunOptions{Budget: cleanBudget})
		if err != nil {
			return "", nil, err
		}
		target := clean.FinalDist() * slack
		res := Exp3Result{Task: id, Questions: map[Exp3Setting]float64{}}

		// The (setting, repeat) grid runs in parallel: each run owns a
		// session over a cloned table and a seeded noise stream.
		type job struct {
			setting Exp3Setting
			repeat  int
		}
		var jobs []job
		for _, setting := range Exp3Settings {
			for r := 0; r < repeats; r++ {
				jobs = append(jobs, job{setting: setting, repeat: r})
			}
		}
		counts := make([]int, len(jobs))
		errs := make([]error, len(jobs))
		var wg sync.WaitGroup
		sem := make(chan struct{}, runtime.NumCPU())
		for i, j := range jobs {
			wg.Add(1)
			go func(i int, j job) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				counts[i], errs[i] = questionsToReach(env, id, j.setting, target, maxBudget, int64(j.repeat+1))
			}(i, j)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return "", nil, err
			}
		}
		sums := map[Exp3Setting]float64{}
		for i, j := range jobs {
			sums[j.setting] += float64(counts[i])
		}
		for setting, sum := range sums {
			res.Questions[setting] = sum / float64(repeats)
		}
		results = append(results, res)
	}

	var b strings.Builder
	b.WriteString("Table VI: #-questions asked under different settings (average)\n")
	fmt.Fprintf(&b, "%-6s %10s %10s %10s %10s %10s\n", "task", "W%=0", "W%=5", "W%=10", "C%=95", "C%=90")
	for _, r := range results {
		fmt.Fprintf(&b, "%-6s %10.1f %10.1f %10.1f %10.1f %10.1f\n", r.Task,
			r.Questions[Exp3Settings[0]],
			r.Questions[Exp3Settings[1]],
			r.Questions[Exp3Settings[2]],
			r.Questions[Exp3Settings[3]],
			r.Questions[Exp3Settings[4]])
	}
	return b.String(), results, nil
}

// questionsToReach runs one noisy session and returns how many CQG
// questions (iterations) it took to reach the target EMD; maxBudget is
// returned when the target is never reached.
func questionsToReach(env *Env, taskID string, setting Exp3Setting, target float64, maxBudget int, seed int64) (int, error) {
	curve, err := RunTask(env, taskID, RunOptions{
		Budget:         maxBudget,
		WrongLabelRate: setting.WrongLabel,
		Completeness:   setting.Completeness,
		Seed:           seed * 7919,
	})
	if err != nil {
		return 0, err
	}
	for i, d := range curve.Dists {
		if d <= target {
			return i + 1, nil
		}
	}
	return maxBudget, nil
}
