package experiments

import (
	"fmt"
	"strings"
	"sync"

	"visclean/internal/pipeline"
)

// Exp2Selectors holds the algorithm set compared in Fig 14.
var Exp2Selectors = []pipeline.SelectorKind{
	pipeline.SelectGSS,
	pipeline.SelectGSSPlus,
	pipeline.SelectBB,
	pipeline.SelectAlphaBB, // the 5-B&B baseline
	pipeline.SelectSingle,
	pipeline.SelectRandom,
}

// Exp2Effectiveness reproduces Fig 14: EMD vs. iteration for every
// selection algorithm on one task per dataset. Runs are independent
// (each session clones the dataset), so selectors execute in parallel.
func Exp2Effectiveness(env *Env, taskIDs []string) (string, map[string][]Curve, error) {
	out := map[string][]Curve{}
	var b strings.Builder
	for _, id := range taskIDs {
		env.Dataset(mustTask(id).Dataset) // generate once before fan-out
		curves := make([]Curve, len(Exp2Selectors))
		errs := make([]error, len(Exp2Selectors))
		var wg sync.WaitGroup
		for i, sel := range Exp2Selectors {
			wg.Add(1)
			go func(i int, sel pipeline.SelectorKind) {
				defer wg.Done()
				curves[i], errs[i] = RunTask(env, id, RunOptions{Selector: sel})
			}(i, sel)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				return "", nil, fmt.Errorf("%s/%s: %w", id, Exp2Selectors[i], err)
			}
		}
		out[id] = curves
		b.WriteString(FormatCurveTable(fmt.Sprintf("Fig 14 (%s): EMD vs. #-iterations per selector", id), curves))
		b.WriteByte('\n')
	}
	return b.String(), out, nil
}

func mustTask(id string) Task {
	t, err := TaskByID(id)
	if err != nil {
		panic(err)
	}
	return t
}

// Exp2UserTime reproduces Figs 15 and 16: per-iteration cumulative user
// seconds (composite vs. single) and EMD as a function of user time.
func Exp2UserTime(env *Env, taskIDs []string) (string, map[string][2]Curve, error) {
	out := map[string][2]Curve{}
	var b strings.Builder
	for _, id := range taskIDs {
		comp, err := RunTask(env, id, RunOptions{Selector: pipeline.SelectGSS})
		if err != nil {
			return "", nil, err
		}
		single, err := RunTask(env, id, RunOptions{Selector: pipeline.SelectSingle})
		if err != nil {
			return "", nil, err
		}
		out[id] = [2]Curve{comp, single}

		fmt.Fprintf(&b, "Fig 15 (%s): cumulative user seconds per iteration\n", id)
		fmt.Fprintf(&b, "%-10s", "iteration")
		n := len(comp.UserSeconds)
		if len(single.UserSeconds) > n {
			n = len(single.UserSeconds)
		}
		for i := 1; i <= n; i++ {
			fmt.Fprintf(&b, " %8d", i)
		}
		b.WriteByte('\n')
		writeRow := func(name string, xs []float64) {
			fmt.Fprintf(&b, "%-10s", name)
			for _, x := range xs {
				fmt.Fprintf(&b, " %8.1f", x)
			}
			b.WriteByte('\n')
		}
		writeRow("composite", comp.UserSeconds)
		writeRow("single", single.UserSeconds)

		fmt.Fprintf(&b, "Fig 16 (%s): (user seconds, EMD) pairs\n", id)
		writePairs := func(name string, c Curve) {
			fmt.Fprintf(&b, "%-10s", name)
			for i := range c.Dists {
				fmt.Fprintf(&b, " (%0.0fs, %.5f)", c.UserSeconds[i], c.Dists[i])
			}
			b.WriteByte('\n')
		}
		writePairs("composite", comp)
		writePairs("single", single)
		if cs, ss := total(comp.UserSeconds), total(single.UserSeconds); ss > 0 {
			fmt.Fprintf(&b, "total user time: composite %.0fs vs single %.0fs (saving %.0f%%)\n\n",
				cs, ss, (1-cs/ss)*100)
		}
	}
	return b.String(), out, nil
}

func total(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return xs[len(xs)-1]
}
