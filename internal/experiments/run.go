package experiments

import (
	"fmt"
	"strings"

	"visclean/internal/datagen"
	"visclean/internal/oracle"
	"visclean/internal/pipeline"
	"visclean/internal/usercost"
	"visclean/internal/vis"
	"visclean/internal/vql"
)

// RunOptions parameterizes one cleaning run.
type RunOptions struct {
	Selector pipeline.SelectorKind
	Budget   int // iterations; default 15 (paper)
	K        int // CQG size; default 10 (paper)
	// Oracle noise (Exp-3).
	WrongLabelRate float64
	Completeness   float64
	Seed           int64
	// Ablations (see pipeline.Config).
	NoGeneralization bool
	NoHysteresis     bool
}

func (o RunOptions) withDefaults() RunOptions {
	if o.Budget == 0 {
		o.Budget = 15
	}
	if o.K == 0 {
		o.K = 10
	}
	if o.Completeness == 0 {
		o.Completeness = 1
	}
	return o
}

// Curve is one run's trajectory: the EMD to ground truth and the
// cumulative simulated user time after each iteration.
type Curve struct {
	Task        string
	Selector    string
	InitialDist float64
	Dists       []float64 // after iteration i+1
	UserSeconds []float64 // cumulative
	Questions   []int
	Timings     []pipeline.Timings
	// Snapshots holds the visualization after selected iterations for
	// the Fig 10–12 progressions (keyed by iteration; 0 = initial).
	Snapshots map[int]*vis.Data
}

// FinalDist returns the last distance (or the initial one if no
// iterations ran).
func (c Curve) FinalDist() float64 {
	if len(c.Dists) == 0 {
		return c.InitialDist
	}
	return c.Dists[len(c.Dists)-1]
}

// RunTask executes one cleaning run of a workload task and returns its
// trajectory. snapshotAt lists iterations whose visualization should be
// captured (0 captures the initial chart).
func RunTask(env *Env, taskID string, opts RunOptions, snapshotAt ...int) (Curve, error) {
	opts = opts.withDefaults()
	task, d, q, err := env.Materialize(taskID)
	if err != nil {
		return Curve{}, err
	}
	truthVis, err := q.Execute(d.Truth.Clean)
	if err != nil {
		return Curve{}, fmt.Errorf("experiments: truth vis for %s: %w", taskID, err)
	}
	session, err := pipeline.NewSession(d.Dirty, q, d.KeyColumns, pipeline.Config{
		Selector:         opts.Selector,
		K:                opts.K,
		Seed:             env.Seed + opts.Seed,
		TruthVis:         truthVis,
		Workers:          env.Workers,
		NoGeneralization: opts.NoGeneralization,
		NoHysteresis:     opts.NoHysteresis,
	})
	if err != nil {
		return Curve{}, err
	}
	user := newOracleUser(d, env.Seed+opts.Seed, opts)
	cost := usercost.NewModel(env.Seed + opts.Seed)

	curve := Curve{
		Task:      task.ID,
		Selector:  opts.Selector.String(),
		Snapshots: map[int]*vis.Data{},
	}
	curve.InitialDist, err = session.DistToTruth()
	if err != nil {
		return Curve{}, err
	}
	wantSnap := map[int]bool{}
	for _, it := range snapshotAt {
		wantSnap[it] = true
	}
	if wantSnap[0] {
		if v, err := session.CurrentVis(); err == nil {
			curve.Snapshots[0] = v
		}
	}

	spent := 0.0
	for i := 0; i < opts.Budget; i++ {
		rep, err := session.RunIteration(user)
		if err != nil {
			return curve, err
		}
		if rep.Exhausted {
			break
		}
		if opts.Selector == pipeline.SelectSingle {
			spent += cost.SingleGroupCost(rep.Questions())
		} else {
			spent += cost.CompositeCost(rep.TQuestions+rep.AQuestions, rep.MQuestions+rep.OQuestions)
		}
		curve.Dists = append(curve.Dists, rep.DistToTruth)
		curve.UserSeconds = append(curve.UserSeconds, spent)
		curve.Questions = append(curve.Questions, rep.Questions())
		curve.Timings = append(curve.Timings, rep.Timings)
		if wantSnap[rep.Iteration] {
			if v, err := session.CurrentVis(); err == nil {
				curve.Snapshots[rep.Iteration] = v
			}
		}
	}
	return curve, nil
}

// newOracleUser adapts a generated ground truth to the pipeline's User,
// applying Exp-3's noise knobs.
func newOracleUser(d *datagen.Dataset, seed int64, opts RunOptions) pipeline.User {
	o := oracle.New(d.Truth, seed)
	o.WrongLabelRate = opts.WrongLabelRate
	if opts.Completeness > 0 && opts.Completeness < 1 {
		o.Completeness = opts.Completeness
	}
	return o
}

// FormatCurveTable renders a set of curves as a fixed-width table of
// EMD-per-iteration series (the data behind Figs 13–14).
func FormatCurveTable(title string, curves []Curve) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-10s %-8s %9s", "task", "selector", "iter0")
	n := 0
	for _, c := range curves {
		if len(c.Dists) > n {
			n = len(c.Dists)
		}
	}
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, " %8s", fmt.Sprintf("iter%d", i))
	}
	b.WriteByte('\n')
	for _, c := range curves {
		fmt.Fprintf(&b, "%-10s %-8s %9.5f", c.Task, c.Selector, c.InitialDist)
		for _, d := range c.Dists {
			fmt.Fprintf(&b, " %8.5f", d)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// parseTaskQuery is a test helper: the workload must parse and validate.
func parseTaskQuery(env *Env, t Task) (*vql.Query, error) {
	q, err := vql.Parse(t.VQL)
	if err != nil {
		return nil, err
	}
	d := env.Dataset(t.Dataset)
	if err := q.Validate(d.Dirty.Schema()); err != nil {
		return nil, err
	}
	return q, nil
}
