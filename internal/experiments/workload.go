// Package experiments reproduces every table and figure of the paper's
// evaluation (§VII): the 18-query workload of Table V, the end-to-end
// cleaning runs of Figs 10–13, the selector comparison of Fig 14, the
// user-cost curves of Figs 15–16, the noisy-input study of Table VI and
// the selection-efficiency study of Figs 17–18. See DESIGN.md §3 for the
// experiment index and EXPERIMENTS.md for paper-vs-measured results.
package experiments

import (
	"fmt"
	"sync"

	"visclean/internal/datagen"
	"visclean/internal/vql"
)

// Task is one visualization task of Table V.
type Task struct {
	ID      string // "Q1".."Q18"
	Dataset string // "D1", "D2", "D3"
	VQL     string
	// Note documents where the reconstruction deviates from the paper's
	// (partially garbled) Table V.
	Note string
}

// Workload returns the 18 visualization tasks of Table V. The table in
// the paper's text is OCR-damaged; rows whose definition is explicit in
// the prose (Q1, Q2, Q7, Q8, Q11–Q13, Q15) are exact, the rest are
// reconstructions consistent with the legible fragments (chart type,
// axes, transform, filters).
func Workload() []Task {
	return []Task{
		{ID: "Q1", Dataset: "D1", Note: "top-10 venues by total citations (running example, Fig 10)",
			VQL: `VISUALIZE bar SELECT Venue, SUM(Citations) FROM D1 TRANSFORM GROUP BY Venue SORT Y BY DESC LIMIT 10`},
		{ID: "Q2", Dataset: "D1", Note: "share of publications per year (Fig 1b)",
			VQL: `VISUALIZE pie SELECT Year, COUNT(Year) FROM D1 TRANSFORM GROUP BY Year SORT X BY ASC`},
		{ID: "Q3", Dataset: "D1", Note: "publications per venue",
			VQL: `VISUALIZE bar SELECT Venue, COUNT(Venue) FROM D1 TRANSFORM GROUP BY Venue SORT Y BY DESC LIMIT 10`},
		{ID: "Q4", Dataset: "D1", Note: "citation histogram, interval 200",
			VQL: `VISUALIZE bar SELECT Citations, COUNT(Citations) FROM D1 TRANSFORM BIN Citations BY INTERVAL 200`},
		{ID: "Q5", Dataset: "D1", Note: "publications per 5-year period",
			VQL: `VISUALIZE bar SELECT Year, COUNT(Year) FROM D1 TRANSFORM BIN Year BY INTERVAL 5`},
		{ID: "Q6", Dataset: "D1", Note: "top venues by average citations",
			VQL: `VISUALIZE bar SELECT Venue, AVG(Citations) FROM D1 TRANSFORM GROUP BY Venue SORT Y BY DESC LIMIT 10`},
		{ID: "Q7", Dataset: "D1", Note: "highly-cited SIGMOD papers per 5-year period after 1999 (Fig 11)",
			VQL: `VISUALIZE bar SELECT Year, COUNT(Year) FROM D1 TRANSFORM BIN Year BY INTERVAL 5 WHERE Year > 1999 AND Venue = 'SIGMOD' AND Citations > 100`},
		{ID: "Q8", Dataset: "D1", Note: "venue share of recent publications (Fig 12)",
			VQL: `VISUALIZE pie SELECT Venue, COUNT(Venue) FROM D1 TRANSFORM GROUP BY Venue WHERE Year > 2009 SORT Y BY DESC LIMIT 10`},
		{ID: "Q9", Dataset: "D2", Note: "players per team",
			VQL: `VISUALIZE bar SELECT Team, COUNT(Team) FROM D2 TRANSFORM GROUP BY Team SORT Y BY DESC LIMIT 10`},
		{ID: "Q10", Dataset: "D2", Note: "team share of total points",
			VQL: `VISUALIZE pie SELECT Team, SUM(#Points) FROM D2 TRANSFORM GROUP BY Team SORT Y BY DESC LIMIT 10`},
		{ID: "Q11", Dataset: "D2", Note: "games played by Lakers players",
			VQL: `VISUALIZE bar SELECT Player, SUM(#Games) FROM D2 TRANSFORM GROUP BY Player WHERE Team = 'Lakers' SORT Y BY DESC LIMIT 10`},
		{ID: "Q12", Dataset: "D2", Note: "points-per-game histogram of forwards, interval 5",
			VQL: `VISUALIZE bar SELECT #Points, COUNT(#Points) FROM D2 TRANSFORM BIN #Points BY INTERVAL 5 WHERE Position = 'Forward'`},
		{ID: "Q13", Dataset: "D2", Note: "top guards by points",
			VQL: `VISUALIZE pie SELECT Player, SUM(#Points) FROM D2 TRANSFORM GROUP BY Player WHERE Position = 'Guard' SORT Y BY DESC LIMIT 10`},
		{ID: "Q14", Dataset: "D3", Note: "books per publisher",
			VQL: `VISUALIZE pie SELECT Publ, COUNT(Publ) FROM D3 TRANSFORM GROUP BY Publ SORT Y BY DESC LIMIT 10`},
		{ID: "Q15", Dataset: "D3", Note: "average rating per publisher, English books",
			VQL: `VISUALIZE bar SELECT Publ, AVG(Rating) FROM D3 TRANSFORM GROUP BY Publ WHERE Lang = 'English' SORT Y BY DESC LIMIT 10`},
		{ID: "Q16", Dataset: "D3", Note: "average rating per author, English books",
			VQL: `VISUALIZE pie SELECT Author, AVG(Rating) FROM D3 TRANSFORM GROUP BY Author WHERE Lang = 'English' SORT Y BY DESC LIMIT 10`},
		{ID: "Q17", Dataset: "D3", Note: "top-5 authors by total rating mass",
			VQL: `VISUALIZE bar SELECT Author, SUM(Rating) FROM D3 TRANSFORM GROUP BY Author SORT Y BY DESC LIMIT 5`},
		{ID: "Q18", Dataset: "D3", Note: "rating histogram, interval 1",
			VQL: `VISUALIZE bar SELECT Rating, COUNT(Rating) FROM D3 TRANSFORM BIN Rating BY INTERVAL 1`},
	}
}

// TaskByID finds a workload task.
func TaskByID(id string) (Task, error) {
	for _, t := range Workload() {
		if t.ID == id {
			return t, nil
		}
	}
	return Task{}, fmt.Errorf("experiments: no task %q", id)
}

// Env caches generated datasets so the 18 tasks share three generations.
// Dataset access is mutex-guarded: the parallel experiment drivers fan
// runs out across goroutines.
type Env struct {
	Scale float64
	Seed  int64
	// Workers is passed through to every session's pipeline.Config: it
	// bounds the benefit engine's and forest training's fan-out. 0 keeps
	// the pipeline default; results are identical for every value.
	Workers int
	mu      sync.Mutex
	data    map[string]*datagen.Dataset
}

// NewEnv creates an experiment environment at the given generator scale.
// Scale 1.0 reproduces Table IV sizes; the harness defaults to 0.05 so a
// full run finishes in minutes (see EXPERIMENTS.md).
func NewEnv(scale float64, seed int64) *Env {
	return &Env{Scale: scale, Seed: seed, data: map[string]*datagen.Dataset{}}
}

// Dataset returns (generating on first use) one of D1/D2/D3.
func (e *Env) Dataset(name string) *datagen.Dataset {
	e.mu.Lock()
	defer e.mu.Unlock()
	if d, ok := e.data[name]; ok {
		return d
	}
	cfg := datagen.Config{Scale: e.Scale, Seed: e.Seed}
	var d *datagen.Dataset
	switch name {
	case "D1":
		d = datagen.D1(cfg)
	case "D2":
		d = datagen.D2(cfg)
	case "D3":
		d = datagen.D3(cfg)
	default:
		panic("experiments: unknown dataset " + name)
	}
	e.data[name] = d
	return d
}

// Materialize resolves a task into its dataset and parsed query.
func (e *Env) Materialize(id string) (Task, *datagen.Dataset, *vql.Query, error) {
	task, err := TaskByID(id)
	if err != nil {
		return Task{}, nil, nil, err
	}
	d := e.Dataset(task.Dataset)
	q, err := vql.Parse(task.VQL)
	if err != nil {
		return Task{}, nil, nil, fmt.Errorf("experiments: task %s: %w", id, err)
	}
	return task, d, q, nil
}
