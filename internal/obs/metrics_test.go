package obs

import (
	"strings"
	"sync"
	"testing"
)

// withEnabled runs f with instrumentation forced on, restoring the
// previous state after.
func withEnabled(t *testing.T, f func()) {
	t.Helper()
	prev := Enabled()
	SetEnabled(true)
	defer SetEnabled(prev)
	f()
}

func TestDisabledMetricsAreInert(t *testing.T) {
	SetEnabled(false)
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", TimeBuckets)
	f := r.FloatCounter("f_total", "")
	c.Inc()
	g.Set(7)
	h.Observe(0.5)
	f.Add(1.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || f.Value() != 0 {
		t.Fatalf("disabled metrics moved: c=%d g=%d h=%d f=%g", c.Value(), g.Value(), h.Count(), f.Value())
	}
}

func TestHistogramBucketing(t *testing.T) {
	withEnabled(t, func() {
		r := NewRegistry()
		h := r.Histogram("lat_seconds", "", []float64{0.01, 0.1, 1})
		// One sample per regime: below the first bound, exactly on a
		// bound (le semantics: counts in that bucket), between bounds,
		// and beyond every bound (+Inf).
		for _, v := range []float64{0.001, 0.01, 0.5, 30} {
			h.Observe(v)
		}
		got := h.BucketCounts()
		want := []int64{2, 0, 1, 1} // ≤0.01: 0.001 and 0.01; ≤0.1: none; ≤1: 0.5; +Inf: 30
		if len(got) != len(want) {
			t.Fatalf("bucket count = %d, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("bucket %d = %d, want %d (all %v)", i, got[i], want[i], got)
			}
		}
		if h.Count() != 4 {
			t.Fatalf("count = %d, want 4", h.Count())
		}
		if want := 0.001 + 0.01 + 0.5 + 30; h.Sum() != want {
			t.Fatalf("sum = %g, want %g", h.Sum(), want)
		}
	})
}

func TestConcurrentIncrements(t *testing.T) {
	withEnabled(t, func() {
		r := NewRegistry()
		c := r.Counter("hits_total", "")
		f := r.FloatCounter("busy_seconds_total", "")
		h := r.Histogram("obs_seconds", "", []float64{1, 2, 3})
		g := r.Gauge("active", "")
		const workers, per = 8, 1000
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				g.Inc()
				for i := 0; i < per; i++ {
					c.Inc()
					f.Add(0.5)
					h.Observe(float64(i % 4))
				}
				g.Dec()
			}()
		}
		wg.Wait()
		if c.Value() != workers*per {
			t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
		}
		if want := float64(workers*per) * 0.5; f.Value() != want {
			t.Fatalf("float counter = %g, want %g", f.Value(), want)
		}
		if h.Count() != workers*per {
			t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
		}
		if g.Value() != 0 {
			t.Fatalf("gauge = %d, want 0", g.Value())
		}
	})
}

func TestRegistrationIsIdempotent(t *testing.T) {
	withEnabled(t, func() {
		r := NewRegistry()
		a := r.Counter("dup_total", "", Label{"phase", "x"})
		b := r.Counter("dup_total", "", Label{"phase", "x"})
		if a != b {
			t.Fatal("same name+labels returned distinct counters")
		}
		other := r.Counter("dup_total", "", Label{"phase", "y"})
		if a == other {
			t.Fatal("distinct labels returned the same counter")
		}
		defer func() {
			if recover() == nil {
				t.Fatal("re-registering a counter as a gauge did not panic")
			}
		}()
		r.Gauge("dup_total", "", Label{"phase", "x"})
	})
}

// TestPrometheusExpositionGolden locks the exposition format: a
// Prometheus scraper parses this exact shape, so changes here are
// breaking changes for operators.
func TestPrometheusExpositionGolden(t *testing.T) {
	withEnabled(t, func() {
		r := NewRegistry()
		c := r.Counter("visclean_requests_total", "HTTP requests served.", Label{"route", "state"})
		g := r.Gauge("visclean_sessions_live", "Live sessions.")
		h := r.Histogram("visclean_iter_seconds", "Iteration latency.", []float64{0.1, 1})
		f := r.FloatCounter("visclean_busy_seconds_total", "Worker busy time.")
		c.Add(3)
		g.Set(2)
		h.Observe(0.05)
		h.Observe(0.5)
		h.Observe(9)
		f.Add(1.25)

		var b strings.Builder
		r.WritePrometheus(&b)
		want := `# HELP visclean_busy_seconds_total Worker busy time.
# TYPE visclean_busy_seconds_total counter
visclean_busy_seconds_total 1.25
# HELP visclean_iter_seconds Iteration latency.
# TYPE visclean_iter_seconds histogram
visclean_iter_seconds_bucket{le="0.1"} 1
visclean_iter_seconds_bucket{le="1"} 2
visclean_iter_seconds_bucket{le="+Inf"} 3
visclean_iter_seconds_sum 9.55
visclean_iter_seconds_count 3
# HELP visclean_requests_total HTTP requests served.
# TYPE visclean_requests_total counter
visclean_requests_total{route="state"} 3
# HELP visclean_sessions_live Live sessions.
# TYPE visclean_sessions_live gauge
visclean_sessions_live 2
`
		if got := b.String(); got != want {
			t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
		}
	})
}

func TestWriteJSON(t *testing.T) {
	withEnabled(t, func() {
		r := NewRegistry()
		r.Counter("a_total", "").Add(2)
		h := r.Histogram("b_seconds", "", []float64{1})
		h.Observe(0.5)
		h.Observe(1.5)
		var b strings.Builder
		if err := r.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		want := "{\n  \"a_total\": 2,\n  \"b_seconds\": {\"count\": 2, \"sum\": 2, \"avg\": 1}\n}\n"
		if b.String() != want {
			t.Fatalf("json mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
		}
	})
}
