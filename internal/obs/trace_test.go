package obs

import (
	"testing"
	"time"
)

// fakeClock is a deterministic clock for span-timing tests.
type fakeClock struct {
	t time.Time
}

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestSpanTimingWithFakeClock(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	tr := NewTracer(4, clk.now)
	tr.SetEnabled(true)

	sp := tr.Start("iteration", "sess-1")
	clk.advance(10 * time.Millisecond)
	sp.Phase("detect")
	clk.advance(25 * time.Millisecond)
	sp.Phase("annotate")
	clk.advance(5 * time.Millisecond)
	sp.End()

	got := tr.Recent(0)
	if len(got) != 1 {
		t.Fatalf("recent = %d traces, want 1", len(got))
	}
	trace := got[0]
	if trace.Name != "iteration" || trace.Label != "sess-1" || trace.Seq != 1 {
		t.Fatalf("trace identity wrong: %+v", trace)
	}
	if trace.StartUnix != time.Unix(1000, 0).UnixNano() {
		t.Fatalf("start = %d", trace.StartUnix)
	}
	if want := (40 * time.Millisecond).Nanoseconds(); trace.DurationNS != want {
		t.Fatalf("duration = %d, want %d", trace.DurationNS, want)
	}
	wantPhases := []Phase{
		{Name: "detect", DurationNS: (10 * time.Millisecond).Nanoseconds()},
		{Name: "annotate", DurationNS: (25 * time.Millisecond).Nanoseconds()},
	}
	if len(trace.Phases) != len(wantPhases) {
		t.Fatalf("phases = %v", trace.Phases)
	}
	for i, p := range wantPhases {
		if trace.Phases[i] != p {
			t.Fatalf("phase %d = %+v, want %+v", i, trace.Phases[i], p)
		}
	}
}

func TestDisabledTracerRecordsNothing(t *testing.T) {
	tr := NewTracer(4, nil)
	if sp := tr.Start("x", ""); sp != nil {
		t.Fatal("disabled tracer handed out a span")
	}
	// nil-span methods must be safe no-ops.
	var sp *Span
	sp.Phase("p")
	sp.End()
	tr.Record("x", "", time.Unix(0, 0), time.Second, nil)
	if got := tr.Recent(0); len(got) != 0 {
		t.Fatalf("disabled tracer buffered %d traces", len(got))
	}
}

func TestRingEvictionAndOrder(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	tr := NewTracer(3, clk.now)
	tr.SetEnabled(true)
	for i := 0; i < 5; i++ {
		tr.Record("t", string(rune('a'+i)), clk.t, time.Duration(i), nil)
		clk.advance(time.Second)
	}
	got := tr.Recent(0)
	if len(got) != 3 {
		t.Fatalf("ring holds %d, want 3", len(got))
	}
	// Newest first: seq 5, 4, 3.
	for i, wantSeq := range []uint64{5, 4, 3} {
		if got[i].Seq != wantSeq {
			t.Fatalf("recent[%d].Seq = %d, want %d", i, got[i].Seq, wantSeq)
		}
	}
	if limited := tr.Recent(2); len(limited) != 2 || limited[0].Seq != 5 {
		t.Fatalf("Recent(2) = %+v", limited)
	}
}

func TestConcurrentRecord(t *testing.T) {
	tr := NewTracer(8, nil)
	tr.SetEnabled(true)
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				sp := tr.Start("w", "")
				sp.Phase("p")
				sp.End()
			}
		}()
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	got := tr.Recent(0)
	if len(got) != 8 {
		t.Fatalf("ring holds %d, want 8", len(got))
	}
	seen := map[uint64]bool{}
	for _, trc := range got {
		if seen[trc.Seq] {
			t.Fatalf("duplicate seq %d", trc.Seq)
		}
		seen[trc.Seq] = true
	}
}
