package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Phase is one named slice of a trace (an iteration's "annotate" time,
// say). Durations are nanoseconds so traces serialize to JSON without
// a custom marshaller.
type Phase struct {
	Name       string `json:"name"`
	DurationNS int64  `json:"durationNs"`
}

// Trace is one completed span: a name (what kind of work), a label
// (which session/task did it), wall-clock start, total duration, and
// its phase breakdown. Seq increases monotonically per tracer so
// clients polling /debug/traces can detect what they have already seen.
type Trace struct {
	Seq        uint64  `json:"seq"`
	Name       string  `json:"name"`
	Label      string  `json:"label,omitempty"`
	StartUnix  int64   `json:"startUnixNano"`
	DurationNS int64   `json:"durationNs"`
	Phases     []Phase `json:"phases,omitempty"`
}

// Tracer keeps the most recent traces in a fixed-size ring buffer.
// Recording is O(1) and bounded in memory; readers copy out. The clock
// is injectable so tests (and deterministic replays) can drive span
// timing from a fake clock; durations use Go's monotonic-clock
// arithmetic when the real clock is injected (time.Time subtraction
// reads the monotonic reading when both operands carry one).
type Tracer struct {
	enabled atomic.Bool
	now     func() time.Time

	mu   sync.Mutex
	ring []Trace
	next int    // ring index of the next write
	n    int    // live entries, ≤ len(ring)
	seq  uint64 // total traces ever recorded
}

// NewTracer builds a tracer holding the last `capacity` traces, reading
// time from `now` (nil selects time.Now). Tracers start disabled.
func NewTracer(capacity int, now func() time.Time) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	if now == nil {
		now = time.Now
	}
	return &Tracer{ring: make([]Trace, capacity), now: now}
}

// DefaultTracer is the process-wide tracer the pipeline records
// iteration spans into and cmd/viscleanweb serves at /debug/traces.
var DefaultTracer = NewTracer(256, nil)

// SetEnabled switches recording on or off. While off, Start returns nil
// and Record is a no-op — zero allocation per call.
func (t *Tracer) SetEnabled(on bool) { t.enabled.Store(on) }

// Enabled reports whether the tracer records.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// Now reads the tracer's clock. Instrumentation sites that time work
// themselves use it so a fake clock governs both start and end.
func (t *Tracer) Now() time.Time { return t.now() }

// Record appends one completed trace built from an externally measured
// start time, duration and phase breakdown — the cheap path for callers
// (like the pipeline) that already time their phases. phases is copied.
func (t *Tracer) Record(name, label string, start time.Time, total time.Duration, phases []Phase) {
	if !t.enabled.Load() {
		return
	}
	tr := Trace{
		Name:       name,
		Label:      label,
		StartUnix:  start.UnixNano(),
		DurationNS: total.Nanoseconds(),
		Phases:     append([]Phase(nil), phases...),
	}
	t.mu.Lock()
	t.seq++
	tr.Seq = t.seq
	t.ring[t.next] = tr
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	t.mu.Unlock()
}

// Span is an in-flight trace under construction. A nil *Span (what
// Start returns when the tracer is disabled) accepts every method as a
// no-op, so call sites need no guards.
type Span struct {
	t      *Tracer
	name   string
	label  string
	start  time.Time
	mark   time.Time
	phases []Phase
}

// Start opens a span, or returns nil when the tracer is disabled.
func (t *Tracer) Start(name, label string) *Span {
	if !t.enabled.Load() {
		return nil
	}
	now := t.now()
	return &Span{t: t, name: name, label: label, start: now, mark: now}
}

// Phase closes the current phase: the time since the previous Phase
// call (or since Start) is recorded under the given name.
func (s *Span) Phase(name string) {
	if s == nil {
		return
	}
	now := s.t.now()
	s.phases = append(s.phases, Phase{Name: name, DurationNS: now.Sub(s.mark).Nanoseconds()})
	s.mark = now
}

// End records the span into the tracer's ring.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := s.t.now()
	s.t.Record(s.name, s.label, s.start, now.Sub(s.start), s.phases)
}

// Recent returns up to max traces, newest first. max ≤ 0 returns all
// buffered traces.
func (t *Tracer) Recent(max int) []Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.n
	if max > 0 && max < n {
		n = max
	}
	out := make([]Trace, 0, n)
	for i := 0; i < n; i++ {
		// next-1 is the newest entry; walk backwards.
		idx := (t.next - 1 - i + 2*len(t.ring)) % len(t.ring)
		out = append(out, t.ring[idx])
	}
	return out
}
