package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one fixed key="value" pair attached to a metric series at
// registration time. Labels are static — there is no dynamic
// label-value lookup on the hot path; a site that needs per-phase
// series registers one series per phase up front.
type Label struct {
	Key, Value string
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be ≥ 0 to keep the counter monotone).
func (c *Counter) Add(n int64) {
	if !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// FloatCounter is a monotonically increasing float metric (accumulated
// seconds, mostly). The value is stored as float64 bits and updated by
// compare-and-swap.
type FloatCounter struct {
	bits atomic.Uint64
}

// Add accumulates v (v must be ≥ 0).
func (c *FloatCounter) Add(v float64) {
	if !enabled.Load() {
		return
	}
	for {
		old := c.bits.Load()
		neu := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, neu) {
			return
		}
	}
}

// Value returns the accumulated total.
func (c *FloatCounter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is an integer metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if !enabled.Load() {
		return
	}
	g.v.Store(v)
}

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) {
	if !enabled.Load() {
		return
	}
	g.v.Add(n)
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution metric. Buckets are
// cumulative upper bounds (Prometheus "le" semantics) with an implicit
// +Inf bucket; Observe is lock-free.
type Histogram struct {
	bounds []float64      // sorted upper bounds, exclusive of +Inf
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sum    FloatCounter
	count  atomic.Int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if !enabled.Load() {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all observed samples.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// BucketCounts returns the per-bucket (non-cumulative) counts; the last
// entry is the +Inf bucket.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// TimeBuckets is the standard latency bucket layout (seconds): half a
// millisecond to ~100 s, roughly ×2.5 per step — wide enough to cover
// both a sub-millisecond CQG selection and a multi-second annotate on a
// full-scale dataset.
var TimeBuckets = []float64{.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 25, 60, 120}

// SizeBuckets is the standard byte-size bucket layout: 256 B to 16 MiB,
// ×4 per step (session snapshots, HTTP bodies).
var SizeBuckets = []float64{256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216}

// metricKind discriminates exposition TYPE lines.
type metricKind int

const (
	kindCounter metricKind = iota
	kindFloatCounter
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	if k == kindGauge {
		return "gauge"
	}
	if k == kindHistogram {
		return "histogram"
	}
	return "counter"
}

// series is one registered metric instance: a name, a rendered label
// set, and exactly one of the four value types.
type series struct {
	name   string
	labels []Label
	kind   metricKind

	counter  *Counter
	fcounter *FloatCounter
	gauge    *Gauge
	hist     *Histogram
}

// Registry holds registered metrics and renders them. Registration is
// idempotent: asking for a name+labels combination that already exists
// returns the existing instance (so package-level vars in several files
// can share a series), but re-registering it as a different kind
// panics — that is a programming error worth failing loudly on.
type Registry struct {
	mu     sync.Mutex
	byKey  map[string]*series
	help   map[string]string
	sorted []*series // registration order; exposition re-sorts by key
}

// NewRegistry builds an empty registry. Most code uses Default.
func NewRegistry() *Registry {
	return &Registry{
		byKey: make(map[string]*series),
		help:  make(map[string]string),
	}
}

// Default is the process-wide registry every instrumented package
// registers into and cmd/viscleanweb exposes at /metrics.
var Default = NewRegistry()

func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// register finds or creates a series; the build callback runs under the
// registry lock only on first sight.
func (r *Registry) register(name, help string, kind metricKind, labels []Label, build func(*series)) *series {
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.byKey[key]; ok {
		if s.kind != kind {
			panic(fmt.Sprintf("obs: %s re-registered as %s (was %s)", key, kind, s.kind))
		}
		return s
	}
	s := &series{name: name, labels: append([]Label(nil), labels...), kind: kind}
	build(s)
	r.byKey[key] = s
	r.sorted = append(r.sorted, s)
	if help != "" {
		r.help[name] = help
	}
	return s
}

// Counter registers (or finds) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.register(name, help, kindCounter, labels, func(s *series) { s.counter = &Counter{} })
	return s.counter
}

// FloatCounter registers (or finds) a float counter series.
func (r *Registry) FloatCounter(name, help string, labels ...Label) *FloatCounter {
	s := r.register(name, help, kindFloatCounter, labels, func(s *series) { s.fcounter = &FloatCounter{} })
	return s.fcounter
}

// Gauge registers (or finds) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.register(name, help, kindGauge, labels, func(s *series) { s.gauge = &Gauge{} })
	return s.gauge
}

// Histogram registers (or finds) a histogram series with the given
// cumulative upper bounds (the +Inf bucket is implicit). All series of
// one histogram name must share one bucket layout.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	s := r.register(name, help, kindHistogram, labels, func(s *series) {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		s.hist = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	})
	return s.hist
}

// snapshotSeries returns the registered series sorted by name then
// label key, so exposition order is stable regardless of registration
// order (package init order is a build detail, not an interface).
func (r *Registry) snapshotSeries() []*series {
	r.mu.Lock()
	out := append([]*series(nil), r.sorted...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return seriesKey(out[i].name, out[i].labels) < seriesKey(out[j].name, out[j].labels)
	})
	return out
}

func labelString(labels []Label, extra string) string {
	if len(labels) == 0 && extra == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	if extra != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every registered series in the Prometheus
// text exposition format (version 0.0.4): HELP/TYPE headers per metric
// name, histograms as cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) {
	lastName := ""
	for _, s := range r.snapshotSeries() {
		if s.name != lastName {
			if help := r.helpFor(s.name); help != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", s.name, help)
			}
			fmt.Fprintf(w, "# TYPE %s %s\n", s.name, s.kind)
			lastName = s.name
		}
		switch s.kind {
		case kindCounter:
			fmt.Fprintf(w, "%s%s %d\n", s.name, labelString(s.labels, ""), s.counter.Value())
		case kindFloatCounter:
			fmt.Fprintf(w, "%s%s %s\n", s.name, labelString(s.labels, ""), formatFloat(s.fcounter.Value()))
		case kindGauge:
			fmt.Fprintf(w, "%s%s %d\n", s.name, labelString(s.labels, ""), s.gauge.Value())
		case kindHistogram:
			h := s.hist
			counts := h.BucketCounts()
			cum := int64(0)
			for i, bound := range h.bounds {
				cum += counts[i]
				fmt.Fprintf(w, "%s_bucket%s %d\n", s.name, labelString(s.labels, fmt.Sprintf("le=%q", formatFloat(bound))), cum)
			}
			cum += counts[len(counts)-1]
			fmt.Fprintf(w, "%s_bucket%s %d\n", s.name, labelString(s.labels, `le="+Inf"`), cum)
			fmt.Fprintf(w, "%s_sum%s %s\n", s.name, labelString(s.labels, ""), formatFloat(h.Sum()))
			fmt.Fprintf(w, "%s_count%s %d\n", s.name, labelString(s.labels, ""), h.Count())
		}
	}
}

func (r *Registry) helpFor(name string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.help[name]
}

// WriteJSON renders a flat JSON snapshot of every series — the
// -metrics-out format of cmd/visclean and cmd/experiments. Counters and
// gauges map to numbers; histograms to {count, sum, avg}. Keys are the
// full series identity (name plus rendered labels), sorted.
func (r *Registry) WriteJSON(w io.Writer) error {
	type hjson struct {
		Count int64   `json:"count"`
		Sum   float64 `json:"sum"`
		Avg   float64 `json:"avg"`
	}
	// Hand-rendered to keep ordering stable without an intermediate
	// ordered-map dependency.
	var b strings.Builder
	b.WriteString("{\n")
	sers := r.snapshotSeries()
	for i, s := range sers {
		key := seriesKey(s.name, s.labels)
		fmt.Fprintf(&b, "  %q: ", key)
		switch s.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%d", s.counter.Value())
		case kindFloatCounter:
			fmt.Fprintf(&b, "%s", formatFloat(s.fcounter.Value()))
		case kindGauge:
			fmt.Fprintf(&b, "%d", s.gauge.Value())
		case kindHistogram:
			h := hjson{Count: s.hist.Count(), Sum: s.hist.Sum()}
			if h.Count > 0 {
				h.Avg = h.Sum / float64(h.Count)
			}
			fmt.Fprintf(&b, `{"count": %d, "sum": %s, "avg": %s}`, h.Count, formatFloat(h.Sum), formatFloat(h.Avg))
		}
		if i+1 < len(sers) {
			b.WriteByte(',')
		}
		b.WriteByte('\n')
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
