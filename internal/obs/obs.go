// Package obs is VisClean's dependency-free observability layer:
// process-wide metrics (counters, gauges, histograms with atomic hot
// paths and Prometheus text exposition) and a lightweight span tracer
// (per-iteration phase breakdowns kept in a ring buffer). It is
// reproduction infrastructure, not part of the paper's contribution —
// but it is what makes the paper's quantities visible in a running
// server: the per-refinement latencies progressive systems treat as
// user-visible (Fig 18's machine-time categories) and the benefit
// model's work counters (hypothetical-visualization evaluations, memo
// hits, incremental-pricer accepts vs. fallbacks).
//
// Design constraints, in order:
//
//  1. No effect on computation. Instrumentation only ever observes —
//     nothing in the cleaning pipeline reads a metric or a trace, so
//     the determinism guarantees of DESIGN.md §4 hold with obs enabled
//     or disabled.
//  2. Cheap when disabled. The package-level enabled flag is a single
//     atomic load; every metric method and the tracer's Record early
//     return without allocating when it is off, so library users who
//     never call SetEnabled(true) pay one predictable branch per
//     instrumentation site.
//  3. Cheap when enabled. Counter/gauge updates are single atomic adds;
//     histogram observation is a branchless bucket scan plus two atomic
//     adds; no locks on any hot path. Locks exist only at registration
//     (process start) and exposition (scrape time).
//
// The process-wide Default registry and DefaultTracer are what the
// instrumented packages (pipeline, par, service) write to and what
// cmd/viscleanweb exposes at /metrics and /debug/traces. Tests that
// need isolation build private instances with NewRegistry/NewTracer.
package obs

import "sync/atomic"

// enabled gates every instrumentation site in the process. Off by
// default: plain library use (tests, examples, one-shot CLI runs that
// did not ask for metrics) pays one atomic load per site and nothing
// else.
var enabled atomic.Bool

// SetEnabled switches instrumentation on or off process-wide.
// cmd/viscleanweb enables it at startup; cmd/visclean and
// cmd/experiments enable it when -metrics-out is set.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether instrumentation is on. Call sites with
// non-trivial setup cost (building a label string, reading a clock)
// should check it before doing that work; the metric methods also check
// it themselves, so a bare Inc() needs no guard.
func Enabled() bool { return enabled.Load() }
