package datagen

import (
	"math/rand"

	"visclean/internal/dataset"
	"visclean/internal/erg"
)

// SyntheticERG builds a random ERG with the requested number of edges for
// the CQG-selection efficiency experiments (Fig 17), where the paper
// varies #-edges from 5,000 to 40,000 independently of any dataset.
// Vertices number numEdges/3 (average degree 6); edge weights are uniform
// in (0,1) and stored as both the T-question probability and the benefit.
func SyntheticERG(numEdges int, seed int64) *erg.Graph {
	rng := rand.New(rand.NewSource(seed))
	numVertices := numEdges/3 + 2
	vertices := make([]dataset.TupleID, numVertices)
	for i := range vertices {
		vertices[i] = dataset.TupleID(i)
	}
	g := erg.MustNew(vertices)

	seen := make(map[[2]int]struct{}, numEdges)
	added := 0
	for added < numEdges {
		a := rng.Intn(numVertices)
		b := rng.Intn(numVertices)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		key := [2]int{a, b}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		w := rng.Float64()
		if err := g.AddEdge(erg.Edge{
			A: vertices[a], B: vertices[b],
			HasT: true, PT: w, Benefit: w,
		}); err != nil {
			continue
		}
		added++
	}
	return g
}
