package datagen

import (
	"visclean/internal/dataset"
)

// d2Entity is one distinct NBA player.
type d2Entity struct {
	player      string
	position    string
	team        string
	nationality string
	university  string
	height      float64
	weight      float64
	birthYear   int
	draftYear   int
	seasons     float64
	games       float64
	points      float64 // career points-per-game average
	rebounds    float64
	assists     float64
	steals      float64
	blocks      float64
	salary      float64 // millions
}

// D2 generates the NBA Players dataset: player records collected from
// three simulated communities with team/position spelling variants,
// 8.2% missing and 1.3% outlier measure cells. 17 attributes.
func D2(cfg Config) *Dataset {
	g := newGen(cfg.Seed + 2)
	numEntities := scaledCount(4644, cfg.Scale, 40)

	g.registerPool("Team", teamPool)
	g.registerPool("Position", positionPool)
	g.registerPool("Nationality", nationalityPool)
	g.registerPool("Univ", universityPool)

	surnames := make([]string, 0, numEntities/2+10)
	for i := 0; i < numEntities/2+10; i++ {
		surnames = append(surnames, g.synthName(2))
	}

	entities := make([]d2Entity, numEntities)
	for i := range entities {
		pos := g.pickKey(positionPool)
		birth := 1955 + g.rng.Intn(45)
		seasons := 1 + g.rng.Intn(18)
		gamesPerSeason := 40 + g.rng.Float64()*42
		points := 2 + g.rng.Float64()*28 // per-game average
		entities[i] = d2Entity{
			player:      firstNames[g.rng.Intn(len(firstNames))] + " " + surnames[g.rng.Intn(len(surnames))],
			position:    pos,
			team:        g.pickKey(teamPool),
			nationality: g.pickKey(nationalityPool),
			university:  g.pickKey(universityPool),
			height:      round1(180 + g.rng.Float64()*40),
			weight:      round1(70 + g.rng.Float64()*70),
			birthYear:   birth,
			draftYear:   birth + 18 + g.rng.Intn(5),
			seasons:     float64(seasons),
			games:       round1(float64(seasons) * gamesPerSeason),
			points:      round1(points),
			rebounds:    round1(1 + g.rng.Float64()*12),
			assists:     round1(0.5 + g.rng.Float64()*10),
			steals:      round1(0.2 + g.rng.Float64()*2.5),
			blocks:      round1(0.1 + g.rng.Float64()*3),
			salary:      round1(0.5 + g.rng.Float64()*40),
		}
	}

	schema := dataset.Schema{
		{Name: "Player", Kind: dataset.String},
		{Name: "Position", Kind: dataset.String},
		{Name: "Team", Kind: dataset.String},
		{Name: "Nationality", Kind: dataset.String},
		{Name: "Univ", Kind: dataset.String},
		{Name: "Height", Kind: dataset.Float},
		{Name: "Weight", Kind: dataset.Float},
		{Name: "BirthYear", Kind: dataset.Float},
		{Name: "DraftYear", Kind: dataset.Float},
		{Name: "Seasons", Kind: dataset.Float},
		{Name: "#Games", Kind: dataset.Float},
		{Name: "#Points", Kind: dataset.Float},
		{Name: "#Rebounds", Kind: dataset.Float},
		{Name: "#Assists", Kind: dataset.Float},
		{Name: "#Steals", Kind: dataset.Float},
		{Name: "#Blocks", Kind: dataset.Float},
		{Name: "Salary", Kind: dataset.Float},
	}
	dirty := dataset.NewTable(schema)
	clean := dataset.NewTable(schema)

	const (
		pMissing = 0.082
		pOutlier = 0.013
	)
	for eid, e := range entities {
		cleanRow := []dataset.Value{
			dataset.Str(e.player), dataset.Str(e.position), dataset.Str(e.team),
			dataset.Str(e.nationality), dataset.Str(e.university),
			dataset.Num(e.height), dataset.Num(e.weight),
			dataset.Num(float64(e.birthYear)), dataset.Num(float64(e.draftYear)),
			dataset.Num(e.seasons), dataset.Num(e.games), dataset.Num(e.points),
			dataset.Num(e.rebounds), dataset.Num(e.assists),
			dataset.Num(e.steals), dataset.Num(e.blocks), dataset.Num(e.salary),
		}
		clean.MustAppend(cleanRow)
		// 13,486 / 4,644 ≈ 2.9 copies.
		copies := 1 + g.binomial(4, 0.475)
		for c := 0; c < copies; c++ {
			pointsCell, _, _ := g.corruptMeasure(g.sourceNoise(e.points), pMissing, pOutlier)
			gamesCell, _, _ := g.corruptMeasure(g.sourceNoise(e.games), pMissing, pOutlier)
			id := dirty.MustAppend([]dataset.Value{
				dataset.Str(e.player),
				dataset.Str(g.variantOf(e.position, positionPool, 0.4)),
				dataset.Str(g.variantOf(e.team, teamPool, 0.5)),
				dataset.Str(g.variantOf(e.nationality, nationalityPool, 0.3)),
				dataset.Str(g.variantOf(e.university, universityPool, 0.35)),
				dataset.Num(e.height), dataset.Num(e.weight),
				dataset.Num(float64(e.birthYear)), dataset.Num(float64(e.draftYear)),
				dataset.Num(e.seasons), gamesCell, pointsCell,
				dataset.Num(e.rebounds), dataset.Num(e.assists),
				dataset.Num(e.steals), dataset.Num(e.blocks), dataset.Num(e.salary),
			})
			g.truth.Entity[id] = eid
			g.recordTrueY("#Points", id, e.points)
			g.recordTrueY("#Games", id, e.games)
		}
	}
	g.truth.Clean = clean
	return &Dataset{
		Name:           "D2",
		Dirty:          dirty,
		Truth:          g.truth,
		KeyColumns:     []int{schema.Index("Player")},
		MeasureColumns: []string{"#Points", "#Games"},
	}
}
