// Package datagen synthesizes the paper's three evaluation datasets
// (Table IV) with recorded ground truth, substituting for the crawled
// corpora and crowdsourced labels the authors used (see DESIGN.md §1):
//
//	D1 DB Papers   — 13,915 entities / 50,483 tuples, 6 attributes,
//	                 15.1% missing, 1.1% outliers
//	D2 NBA Players —  4,644 entities / 13,486 tuples, 17 attributes,
//	                  8.2% missing, 1.3% outliers
//	D3 Books       —  3,702 entities /  7,676 tuples, 17 attributes,
//	                  9.2% missing, 2.1% outliers
//
// Each generator first creates clean entities, then duplicates them
// across simulated sources with attribute-value variants (tuple- and
// attribute-level duplicates), then corrupts measure cells (missing
// values and outliers), recording everything it did in the ground truth.
// A Scale factor shrinks entity counts proportionally for fast runs.
package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"visclean/internal/dataset"
	"visclean/internal/oracle"
)

// Config controls generation.
type Config struct {
	// Scale multiplies the paper's entity counts; 1.0 reproduces
	// Table IV sizes. Values below ~0.005 clamp to a small floor so the
	// pipeline still has structure to clean.
	Scale float64
	// Seed makes generation deterministic.
	Seed int64
}

// Dataset bundles a dirty table with its ground truth and the metadata
// the pipeline needs.
type Dataset struct {
	Name  string
	Dirty *dataset.Table
	Truth *oracle.GroundTruth
	// KeyColumns are the blocking-key column indices for entity matching.
	KeyColumns []int
	// MeasureColumns are the numeric columns that carry injected errors.
	MeasureColumns []string
}

// Stats summarizes a generated dataset for Table IV verification.
type Stats struct {
	Attributes     int
	Tuples         int
	DistinctTuples int
	MissingRate    float64 // over measure columns
	OutlierRate    float64 // over measure columns
}

// Stats computes the Table IV row for this dataset.
func (d *Dataset) Stats() Stats {
	s := Stats{
		Attributes: d.Dirty.NumCols(),
		Tuples:     d.Dirty.NumRows(),
	}
	ents := map[int]struct{}{}
	for _, e := range d.Truth.Entity {
		ents[e] = struct{}{}
	}
	s.DistinctTuples = len(ents)

	cells, missing, outliers := 0, 0, 0
	for _, colName := range d.MeasureColumns {
		c := d.Dirty.ColumnIndex(colName)
		if c < 0 {
			continue
		}
		for i := 0; i < d.Dirty.NumRows(); i++ {
			cells++
			v := d.Dirty.Get(i, c)
			if v.IsNull() {
				missing++
				continue
			}
			f, _ := v.Float()
			if truth, ok := d.Truth.TrueValue(colName, d.Dirty.ID(i)); ok && truth != f {
				// Source noise is not an outlier; count only gross errors.
				if math.Abs(f-truth) > 0.5*math.Abs(truth)+1e-9 {
					outliers++
				}
			}
		}
	}
	if cells > 0 {
		s.MissingRate = float64(missing) / float64(cells)
		s.OutlierRate = float64(outliers) / float64(cells)
	}
	return s
}

// gen carries shared generator state.
type gen struct {
	rng   *rand.Rand
	truth *oracle.GroundTruth
}

func newGen(seed int64) *gen {
	return &gen{
		rng: rand.New(rand.NewSource(seed)),
		truth: &oracle.GroundTruth{
			Entity:    map[dataset.TupleID]int{},
			Canonical: map[string]map[string]string{},
			TrueY:     map[string]map[dataset.TupleID]float64{},
		},
	}
}

// registerCanonical records variant → canonical for a column.
func (g *gen) registerCanonical(column, variant, canonical string) {
	m := g.truth.Canonical[column]
	if m == nil {
		m = map[string]string{}
		g.truth.Canonical[column] = m
	}
	m[variant] = canonical
}

// registerPool registers a whole synonym pool for a column.
func (g *gen) registerPool(column string, pool map[string][]string) {
	for canon, variants := range pool {
		g.registerCanonical(column, canon, canon)
		for _, v := range variants {
			g.registerCanonical(column, v, canon)
		}
	}
}

// variantOf picks the canonical value or one of its variants.
// pVariant is the probability a non-canonical spelling is used.
func (g *gen) variantOf(canonical string, pool map[string][]string, pVariant float64) string {
	variants := pool[canonical]
	if len(variants) == 0 || g.rng.Float64() >= pVariant {
		return canonical
	}
	return variants[g.rng.Intn(len(variants))]
}

// pickWeighted draws a key from a weight map, deterministically ordered.
func (g *gen) pickWeighted(weights map[string]float64) string {
	keys := make([]string, 0, len(weights))
	total := 0.0
	for k := range weights {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		total += weights[k]
	}
	r := g.rng.Float64() * total
	for _, k := range keys {
		r -= weights[k]
		if r <= 0 {
			return k
		}
	}
	return keys[len(keys)-1]
}

// pickKey draws a uniform key from a pool map, deterministically.
func (g *gen) pickKey(pool map[string][]string) string {
	keys := make([]string, 0, len(pool))
	for k := range pool {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys[g.rng.Intn(len(keys))]
}

// binomial samples Binomial(n, p).
func (g *gen) binomial(n int, p float64) int {
	c := 0
	for i := 0; i < n; i++ {
		if g.rng.Float64() < p {
			c++
		}
	}
	return c
}

// corruptMeasure applies the paper's error model to a measure cell:
// with pMissing the value disappears; else with pOutlier it becomes a
// gross error (decimal shift or large additive offset). The true value
// is recorded beforehand by the caller.
func (g *gen) corruptMeasure(v float64, pMissing, pOutlier float64) (dataset.Value, bool, bool) {
	r := g.rng.Float64()
	if r < pMissing {
		return dataset.Null(dataset.Float), true, false
	}
	if r < pMissing+pOutlier {
		switch g.rng.Intn(3) {
		case 0:
			v *= 10 // decimal shift, the paper's 174 → 1740
		case 1:
			v /= 10
		default:
			v += 500 + 500*g.rng.Float64()
		}
		return dataset.Num(round1(v)), false, true
	}
	return dataset.Num(round1(v)), false, false
}

func round1(v float64) float64 { return math.Round(v*10) / 10 }

// scaledCount applies the scale factor with a floor.
func scaledCount(base int, scale float64, floor int) int {
	if scale <= 0 {
		scale = 1
	}
	n := int(math.Round(float64(base) * scale))
	if n < floor {
		n = floor
	}
	return n
}

// synthName builds a pronounceable unique-ish name from the rng, used
// for system names and surnames so blocking keys have a realistic
// frequency distribution.
func (g *gen) synthName(syllables int) string {
	consonants := []string{"b", "d", "f", "g", "k", "l", "m", "n", "r", "s", "t", "v", "z", "ch", "sh"}
	vowels := []string{"a", "e", "i", "o", "u"}
	out := ""
	for i := 0; i < syllables; i++ {
		out += consonants[g.rng.Intn(len(consonants))] + vowels[g.rng.Intn(len(vowels))]
	}
	return string(out[0]-'a'+'A') + out[1:]
}

// entityValue records the true Y value of a dirty tuple.
func (g *gen) recordTrueY(column string, id dataset.TupleID, v float64) {
	m := g.truth.TrueY[column]
	if m == nil {
		m = map[dataset.TupleID]float64{}
		g.truth.TrueY[column] = m
	}
	m[id] = v
}

// sourceNoise returns v with small cross-source variance on a minority
// of copies (the paper's 42-vs-44 Elaps citations).
func (g *gen) sourceNoise(v float64) float64 {
	if g.rng.Float64() < 0.2 {
		return v * (1 + 0.05*(2*g.rng.Float64()-1))
	}
	return v
}

func fmtYearVariant(g *gen, canon string, year int) string {
	switch g.rng.Intn(3) {
	case 0:
		return fmt.Sprintf("%s'%02d", canon, year%100)
	case 1:
		return fmt.Sprintf("%s %d", canon, year)
	default:
		return fmt.Sprintf("%s %d Conf.", canon, year)
	}
}
