package datagen

import (
	"fmt"
	"strings"

	"visclean/internal/dataset"
)

// d1Entity is one distinct paper.
type d1Entity struct {
	title       string
	authors     string
	affiliation string
	venue       string
	year        int
	citations   float64
}

// D1 generates the DB Papers dataset: publications crawled from six
// simulated sources with venue/affiliation spelling variants, duplicate
// records, missing citation counts (15.1%) and decimal-shift outliers
// (1.1%). Schema: Title, Authors, Affiliation, Venue, Year, Citations.
func D1(cfg Config) *Dataset {
	g := newGen(cfg.Seed)
	numEntities := scaledCount(13915, cfg.Scale, 40)

	g.registerPool("Venue", venuePool)
	g.registerPool("Affiliation", affiliationPool)

	// A shared system-name pool creates realistic titles: most are
	// unique to one paper, but collisions exist (different papers named
	// alike), which is what makes some T-questions genuinely uncertain.
	namePool := make([]string, 0, numEntities/3+20)
	for i := 0; i < numEntities/3+20; i++ {
		namePool = append(namePool, g.synthName(2+g.rng.Intn(2)))
	}

	entities := make([]d1Entity, numEntities)
	for i := range entities {
		venue := g.pickWeighted(venuePrestige)
		year := 1995 + g.rng.Intn(25)
		name := namePool[g.rng.Intn(len(namePool))]
		title := fmt.Sprintf("%s: %s %s %s",
			name,
			titleWords[g.rng.Intn(len(titleWords))],
			titleWords[g.rng.Intn(len(titleWords))],
			titleWords[g.rng.Intn(len(titleWords))])
		nAuth := 1 + g.rng.Intn(3)
		var auth []string
		for a := 0; a < nAuth; a++ {
			auth = append(auth, firstNames[g.rng.Intn(len(firstNames))]+" "+lastNames[g.rng.Intn(len(lastNames))])
		}
		age := float64(2020 - year)
		cites := venuePrestige[venue] * (5 + age) * (0.5 + 3*g.rng.Float64())
		entities[i] = d1Entity{
			title:       title,
			authors:     strings.Join(auth, ", "),
			affiliation: g.pickKey(affiliationPool),
			venue:       venue,
			year:        year,
			citations:   round1(cites),
		}
	}

	schema := dataset.Schema{
		{Name: "Title", Kind: dataset.String},
		{Name: "Authors", Kind: dataset.String},
		{Name: "Affiliation", Kind: dataset.String},
		{Name: "Venue", Kind: dataset.String},
		{Name: "Year", Kind: dataset.Float},
		{Name: "Citations", Kind: dataset.Float},
	}
	dirty := dataset.NewTable(schema)
	clean := dataset.NewTable(schema)

	const (
		pMissing = 0.151
		pOutlier = 0.011
	)
	for eid, e := range entities {
		clean.MustAppend([]dataset.Value{
			dataset.Str(e.title), dataset.Str(e.authors), dataset.Str(e.affiliation),
			dataset.Str(e.venue), dataset.Num(float64(e.year)), dataset.Num(e.citations),
		})
		// 50,483 / 13,915 ≈ 3.63 copies per entity on average.
		copies := 1 + g.binomial(5, 0.526)
		for c := 0; c < copies; c++ {
			title := e.title
			if g.rng.Float64() < 0.15 {
				// One source abbreviates the title to the system name.
				title = strings.SplitN(e.title, ":", 2)[0]
			}
			venue := g.variantOf(e.venue, venuePool, 0.55)
			if g.rng.Float64() < 0.12 {
				// Year-suffixed ad-hoc variant, registered on the fly.
				venue = fmtYearVariant(g, e.venue, e.year)
				g.registerCanonical("Venue", venue, e.venue)
			}
			affiliation := g.variantOf(e.affiliation, affiliationPool, 0.5)
			cites := g.sourceNoise(e.citations)
			cell, _, _ := g.corruptMeasure(cites, pMissing, pOutlier)

			id := dirty.MustAppend([]dataset.Value{
				dataset.Str(title), dataset.Str(e.authors), dataset.Str(affiliation),
				dataset.Str(venue), dataset.Num(float64(e.year)), cell,
			})
			g.truth.Entity[id] = eid
			g.recordTrueY("Citations", id, e.citations)
		}
	}
	g.truth.Clean = clean
	return &Dataset{
		Name:           "D1",
		Dirty:          dirty,
		Truth:          g.truth,
		KeyColumns:     []int{schema.Index("Title")},
		MeasureColumns: []string{"Citations"},
	}
}
