package datagen

import (
	"fmt"

	"visclean/internal/dataset"
)

// d3Entity is one distinct book.
type d3Entity struct {
	name       string
	author     string
	pubYear    int
	rating     float64
	numRatings float64
	publisher  string
	language   string
	pages      float64
	price      float64
	edition    float64
	format     string
	series     string
	awards     float64
	isbn       string
	cover      string
	translator string
	chapters   float64
}

// D3 generates the Books dataset: ratings collected from two simulated
// websites with publisher/language spelling variants, 9.2% missing and
// 2.1% outlier measure cells. 17 attributes.
func D3(cfg Config) *Dataset {
	g := newGen(cfg.Seed + 3)
	numEntities := scaledCount(3702, cfg.Scale, 40)

	g.registerPool("Publ", publisherPool)
	g.registerPool("Lang", languagePool)

	authorPool := make([]string, 0, numEntities/4+10)
	for i := 0; i < numEntities/4+10; i++ {
		authorPool = append(authorPool, firstNames[g.rng.Intn(len(firstNames))]+" "+g.synthName(2+g.rng.Intn(2)))
	}

	entities := make([]d3Entity, numEntities)
	for i := range entities {
		lang := "English"
		if g.rng.Float64() < 0.2 {
			lang = g.pickKey(languagePool)
		}
		entities[i] = d3Entity{
			name: fmt.Sprintf("The %s %s",
				bookWords[g.rng.Intn(len(bookWords))],
				bookNouns[g.rng.Intn(len(bookNouns))]),
			author:     authorPool[g.rng.Intn(len(authorPool))],
			pubYear:    1970 + g.rng.Intn(50),
			rating:     round1(2.5 + g.rng.Float64()*2.4),
			numRatings: round1(float64(50 + g.rng.Intn(50000))),
			publisher:  g.pickKey(publisherPool),
			language:   lang,
			pages:      float64(120 + g.rng.Intn(900)),
			price:      round1(5 + g.rng.Float64()*45),
			edition:    float64(1 + g.rng.Intn(5)),
			format:     formatPool[g.rng.Intn(len(formatPool))],
			series:     []string{"", "", "", "Trilogy", "Saga", "Cycle"}[g.rng.Intn(6)],
			awards:     float64(g.rng.Intn(4)),
			isbn:       fmt.Sprintf("978-%09d", g.rng.Intn(1_000_000_000)),
			cover:      g.synthName(2),
			translator: "",
			chapters:   float64(5 + g.rng.Intn(50)),
		}
	}

	schema := dataset.Schema{
		{Name: "Name", Kind: dataset.String},
		{Name: "Author", Kind: dataset.String},
		{Name: "PubYear", Kind: dataset.Float},
		{Name: "Rating", Kind: dataset.Float},
		{Name: "NumRatings", Kind: dataset.Float},
		{Name: "Publ", Kind: dataset.String},
		{Name: "Lang", Kind: dataset.String},
		{Name: "Pages", Kind: dataset.Float},
		{Name: "Price", Kind: dataset.Float},
		{Name: "Edition", Kind: dataset.Float},
		{Name: "Format", Kind: dataset.String},
		{Name: "Series", Kind: dataset.String},
		{Name: "Awards", Kind: dataset.Float},
		{Name: "ISBN", Kind: dataset.String},
		{Name: "Cover", Kind: dataset.String},
		{Name: "Translator", Kind: dataset.String},
		{Name: "Chapters", Kind: dataset.Float},
	}
	dirty := dataset.NewTable(schema)
	clean := dataset.NewTable(schema)

	const (
		pMissing = 0.092
		pOutlier = 0.021
	)
	for eid, e := range entities {
		clean.MustAppend([]dataset.Value{
			dataset.Str(e.name), dataset.Str(e.author), dataset.Num(float64(e.pubYear)),
			dataset.Num(e.rating), dataset.Num(e.numRatings), dataset.Str(e.publisher),
			dataset.Str(e.language), dataset.Num(e.pages), dataset.Num(e.price),
			dataset.Num(e.edition), dataset.Str(e.format), dataset.Str(e.series),
			dataset.Num(e.awards), dataset.Str(e.isbn), dataset.Str(e.cover),
			dataset.Str(e.translator), dataset.Num(e.chapters),
		})
		// 7,676 / 3,702 ≈ 2.07 copies.
		copies := 1 + g.binomial(3, 0.357)
		for c := 0; c < copies; c++ {
			ratingCell, _, _ := g.corruptMeasure(e.rating, pMissing, pOutlier)
			id := dirty.MustAppend([]dataset.Value{
				dataset.Str(e.name), dataset.Str(e.author), dataset.Num(float64(e.pubYear)),
				ratingCell, dataset.Num(g.sourceNoise(e.numRatings)),
				dataset.Str(g.variantOf(e.publisher, publisherPool, 0.5)),
				dataset.Str(g.variantOf(e.language, languagePool, 0.4)),
				dataset.Num(e.pages), dataset.Num(e.price),
				dataset.Num(e.edition), dataset.Str(e.format), dataset.Str(e.series),
				dataset.Num(e.awards), dataset.Str(e.isbn), dataset.Str(e.cover),
				dataset.Str(e.translator), dataset.Num(e.chapters),
			})
			g.truth.Entity[id] = eid
			g.recordTrueY("Rating", id, e.rating)
		}
	}
	g.truth.Clean = clean
	return &Dataset{
		Name:           "D3",
		Dirty:          dirty,
		Truth:          g.truth,
		KeyColumns:     []int{schema.Index("Name"), schema.Index("ISBN")},
		MeasureColumns: []string{"Rating"},
	}
}
