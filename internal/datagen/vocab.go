package datagen

// Vocabulary pools for the synthetic datasets. Canonical values map to
// their dirty variants; the generators register every variant they emit
// in the ground truth's canonical map.

// venuePool mirrors D1's database venues. Variants follow the paper's
// examples: "ACM SIGMOD", "SIGMOD Conf.", "SIGMOD'13" all denote SIGMOD.
var venuePool = map[string][]string{
	"SIGMOD": {"ACM SIGMOD", "SIGMOD Conf.", "SIGMOD Conference", "Proc. SIGMOD", "In SIGMOD"},
	"VLDB":   {"PVLDB", "Very Large Data Bases", "Proc. VLDB", "VLDB Endowment"},
	"ICDE":   {"IEEE ICDE", "ICDE Conf.", "Intl. Conf. on Data Engineering", "IEEE ICDE Conf."},
	"PODS":   {"ACM PODS", "In Pods", "PODS Symp."},
	"KDD":    {"ACM KDD", "SIGKDD", "KDD Conf."},
	"CIKM":   {"ACM CIKM", "CIKM Conf."},
	"EDBT":   {"EDBT Conf.", "Intl. Conf. EDBT"},
	"ICDT":   {"ICDT Conf.", "Intl. Conf. ICDT"},
	"TKDE":   {"IEEE TKDE", "Trans. Knowl. Data Eng."},
	"VLDBJ":  {"VLDB Journal", "The VLDB Journal"},
	"SIGIR":  {"ACM SIGIR", "SIGIR Conf."},
	"WWW":    {"The Web Conf.", "WWW Conf."},
	"WSDM":   {"ACM WSDM"},
	"DASFAA": {"DASFAA Conf."},
	"SSDBM":  {"SSDBM Conf."},
}

// venuePrestige weights citation counts so top venues dominate the Q1
// bar chart the way they do in the paper's Fig 10.
var venuePrestige = map[string]float64{
	"SIGMOD": 10, "VLDB": 9.5, "ICDE": 8, "PODS": 7, "KDD": 9,
	"CIKM": 5, "EDBT": 4.5, "ICDT": 4, "TKDE": 6, "VLDBJ": 5.5,
	"SIGIR": 6.5, "WWW": 7.5, "WSDM": 5, "DASFAA": 3, "SSDBM": 2.5,
}

// affiliationPool gives each canonical affiliation its spelling variants.
var affiliationPool = map[string][]string{
	"Tsinghua":  {"THU", "Tsinghua Univ.", "Tsinghua University"},
	"QCRI":      {"QCRI, HBKU", "QCRI HBKU", "Qatar Computing Research Inst."},
	"Microsoft": {"MSR", "Microsoft Research", "Microsoft Corp."},
	"Stanford":  {"Stanford Univ.", "Stanford University"},
	"NUS":       {"CS@NUS", "National Univ. of Singapore"},
	"MIT":       {"MIT CSAIL", "Mass. Inst. of Technology"},
	"Berkeley":  {"UC Berkeley", "Univ. of California, Berkeley"},
	"CMU":       {"Carnegie Mellon", "Carnegie Mellon Univ."},
	"ETH":       {"ETH Zurich", "ETH Zürich"},
	"HKUST":     {"Hong Kong UST", "HK Univ. of Science and Technology"},
}

// titleWords builds synthetic paper titles.
var titleWords = []string{
	"Adaptive", "Scalable", "Efficient", "Interactive", "Progressive",
	"Distributed", "Incremental", "Robust", "Approximate", "Learned",
	"Query", "Index", "Join", "Cleaning", "Visualization", "Sampling",
	"Stream", "Graph", "Transaction", "Storage", "Crowdsourcing",
	"Entity", "Matching", "Repair", "Detection", "Optimization",
	"Processing", "Analytics", "Exploration", "Integration", "Search",
}

var systemNames = []string{
	"Nadir", "KuaLin", "TsingFlow", "SeeQL", "Elapse", "DeepVis",
	"CleanX", "VizOne", "DataForge", "QuickER", "TupleNet", "ChartIQ",
	"FlowDB", "MergeKit", "SpotDirt", "RankEye", "BlinkSum", "CrowdFix",
}

var firstNames = []string{
	"Wei", "Li", "Yang", "Chen", "Ana", "John", "Maria", "Sam", "Noor",
	"Ivan", "Elena", "Raj", "Yuki", "Omar", "Lucia", "Peter", "Amira",
}

var lastNames = []string{
	"Wang", "Li", "Zhang", "Chen", "Smith", "Garcia", "Kumar", "Tanaka",
	"Mueller", "Rossi", "Kim", "Chai", "Tang", "Luo", "Qin", "Ivanov",
}

// teamPool mirrors D2's NBA teams with community-specific spellings.
var teamPool = map[string][]string{
	"Lakers":        {"LA Lakers", "Los Angeles Lakers", "L.A. Lakers"},
	"Celtics":       {"Boston Celtics", "BOS Celtics"},
	"Warriors":      {"Golden State Warriors", "GS Warriors", "GSW"},
	"Bulls":         {"Chicago Bulls", "CHI Bulls"},
	"Spurs":         {"San Antonio Spurs", "SA Spurs"},
	"Heat":          {"Miami Heat", "MIA Heat"},
	"Knicks":        {"New York Knicks", "NY Knicks"},
	"Rockets":       {"Houston Rockets", "HOU Rockets"},
	"Mavericks":     {"Dallas Mavericks", "Dallas Mavs", "DAL Mavericks"},
	"Suns":          {"Phoenix Suns", "PHX Suns"},
	"Bucks":         {"Milwaukee Bucks", "MIL Bucks"},
	"Nuggets":       {"Denver Nuggets", "DEN Nuggets"},
	"Raptors":       {"Toronto Raptors", "TOR Raptors"},
	"Jazz":          {"Utah Jazz", "UTA Jazz"},
	"Clippers":      {"LA Clippers", "Los Angeles Clippers"},
	"Sixers":        {"Philadelphia 76ers", "PHI 76ers", "76ers"},
	"Trail Blazers": {"Portland Trail Blazers", "POR Blazers"},
	"Thunder":       {"Oklahoma City Thunder", "OKC Thunder"},
	"Grizzlies":     {"Memphis Grizzlies", "MEM Grizzlies"},
	"Hawks":         {"Atlanta Hawks", "ATL Hawks"},
}

var positionPool = map[string][]string{
	"Guard":   {"G", "Point Guard", "Shooting Guard"},
	"Forward": {"F", "Small Forward", "Power Forward"},
	"Center":  {"C", "Ctr."},
}

var nationalityPool = map[string][]string{
	"USA":       {"United States", "U.S.A."},
	"Spain":     {"ESP"},
	"France":    {"FRA"},
	"Canada":    {"CAN"},
	"Australia": {"AUS"},
	"Serbia":    {"SRB"},
	"Greece":    {"GRE"},
	"Nigeria":   {"NGA"},
}

var universityPool = map[string][]string{
	"Duke":     {"Duke Univ.", "Duke University"},
	"Kentucky": {"Univ. of Kentucky", "UK"},
	"UCLA":     {"Univ. of California LA"},
	"Kansas":   {"Univ. of Kansas", "KU"},
	"UNC":      {"North Carolina", "Univ. of North Carolina"},
	"Gonzaga":  {"Gonzaga Univ."},
	"Arizona":  {"Univ. of Arizona"},
	"None":     {"N/A (international)", "no college"},
}

// publisherPool mirrors D3's book publishers.
var publisherPool = map[string][]string{
	"Penguin":       {"Penguin Books", "Penguin Press", "Penguin Random House"},
	"HarperCollins": {"Harper Collins", "Harper", "HarperCollins Publ."},
	"Macmillan":     {"Macmillan Publ.", "Pan Macmillan"},
	"Hachette":      {"Hachette Book Group", "Hachette Livre"},
	"Scholastic":    {"Scholastic Inc.", "Scholastic Press"},
	"Vintage":       {"Vintage Books", "Vintage Press"},
	"Bloomsbury":    {"Bloomsbury Publ.", "Bloomsbury Press"},
	"Tor":           {"Tor Books", "Tor/Forge"},
	"Bantam":        {"Bantam Books", "Bantam Press"},
	"Anchor":        {"Anchor Books"},
	"Orbit":         {"Orbit Books"},
	"Knopf":         {"Alfred A. Knopf", "Knopf Doubleday"},
}

var languagePool = map[string][]string{
	"English": {"english", "ENG", "English (US)", "en-US"},
	"Spanish": {"spanish", "SPA", "Español"},
	"French":  {"french", "FRE"},
	"German":  {"german", "GER"},
}

var bookWords = []string{
	"Shadow", "River", "Night", "Garden", "Secret", "Last", "Silent",
	"Winter", "Crimson", "Lost", "Golden", "Broken", "Hidden", "Iron",
	"Glass", "Storm", "Ember", "Hollow", "Silver", "Wild", "Paper",
	"Crown", "Ash", "Thorn", "Echo", "Salt", "Bright", "Forgotten",
}

var bookNouns = []string{
	"Kingdom", "Daughter", "House", "Song", "Road", "City", "Letter",
	"Promise", "Library", "Map", "Ocean", "Key", "Door", "Year",
	"Truth", "Garden", "Game", "Thief", "Witness", "Orchard",
}

var formatPool = []string{"Hardcover", "Paperback", "Ebook", "Audiobook"}
