package datagen

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"testing"

	"visclean/internal/dataset"
)

// csvHash renders a table to CSV and hashes the bytes.
func csvHash(t *testing.T, tbl *dataset.Table) (string, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	h := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(h[:]), buf.Bytes()
}

// TestCSVGoldenRoundTrip pins the columnar engine to the seed row-store
// byte for byte: testdata/csv_golden.json holds the SHA-256 of each
// generated dataset's CSV, captured with the pre-columnar
// implementation at Scale 0.02, Seed 7. The columnar store must (a)
// generate identical CSV bytes and (b) round-trip them: load the CSV
// back and re-save to the exact same bytes.
func TestCSVGoldenRoundTrip(t *testing.T) {
	raw, err := os.ReadFile("testdata/csv_golden.json")
	if err != nil {
		t.Fatal(err)
	}
	golden := map[string]string{}
	if err := json.Unmarshal(raw, &golden); err != nil {
		t.Fatal(err)
	}

	cfg := Config{Scale: 0.02, Seed: 7}
	for name, gen := range map[string]func(Config) *Dataset{"D1": D1, "D2": D2, "D3": D3} {
		d := gen(cfg)
		for suffix, tbl := range map[string]*dataset.Table{"_dirty": d.Dirty, "_clean": d.Truth.Clean} {
			key := name + suffix
			want, ok := golden[key]
			if !ok {
				t.Fatalf("no golden hash for %s", key)
			}
			got, raw := csvHash(t, tbl)
			if got != want {
				t.Errorf("%s: CSV hash %s, want %s (columnar output diverged from the seed row store)", key, got, want)
				continue
			}
			// Round trip: one parse is a fixed point — load the CSV,
			// re-save, re-load, re-save; the two saves must be
			// byte-identical. (Strict save==resave cannot hold: a few
			// generated cells are literal NA spellings like D2's
			// college "None", which ParseValue has always normalized
			// to null — in the seed row store exactly as here.)
			back, err := dataset.ReadCSV(bytes.NewReader(raw), tbl.Schema())
			if err != nil {
				t.Fatalf("%s: reload: %v", key, err)
			}
			var buf bytes.Buffer
			if err := back.WriteCSV(&buf); err != nil {
				t.Fatal(err)
			}
			again, err := dataset.ReadCSV(bytes.NewReader(buf.Bytes()), tbl.Schema())
			if err != nil {
				t.Fatalf("%s: second reload: %v", key, err)
			}
			var buf2 bytes.Buffer
			if err := again.WriteCSV(&buf2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
				t.Errorf("%s: CSV load/save is not a fixed point", key)
			}
		}
	}
}
