package datagen

import (
	"math"
	"testing"

	"visclean/internal/dataset"
)

const testScale = 0.02

func TestD1Shape(t *testing.T) {
	d := D1(Config{Scale: testScale, Seed: 1})
	s := d.Stats()
	if s.Attributes != 6 {
		t.Fatalf("attributes = %d, want 6", s.Attributes)
	}
	wantEntities := int(math.Round(13915 * testScale))
	if math.Abs(float64(s.DistinctTuples-wantEntities)) > float64(wantEntities)/5 {
		t.Fatalf("entities = %d, want ≈ %d", s.DistinctTuples, wantEntities)
	}
	// Duplication factor ≈ 3.63.
	ratio := float64(s.Tuples) / float64(s.DistinctTuples)
	if ratio < 3.0 || ratio > 4.3 {
		t.Fatalf("duplication ratio = %v, want ≈ 3.63", ratio)
	}
	if math.Abs(s.MissingRate-0.151) > 0.04 {
		t.Fatalf("missing rate = %v, want ≈ 0.151", s.MissingRate)
	}
	if s.OutlierRate <= 0 || s.OutlierRate > 0.03 {
		t.Fatalf("outlier rate = %v, want ≈ 0.011", s.OutlierRate)
	}
}

func TestD2Shape(t *testing.T) {
	d := D2(Config{Scale: testScale, Seed: 1})
	s := d.Stats()
	if s.Attributes != 17 {
		t.Fatalf("attributes = %d, want 17", s.Attributes)
	}
	ratio := float64(s.Tuples) / float64(s.DistinctTuples)
	if ratio < 2.4 || ratio > 3.4 {
		t.Fatalf("duplication ratio = %v, want ≈ 2.9", ratio)
	}
	if math.Abs(s.MissingRate-0.082) > 0.03 {
		t.Fatalf("missing rate = %v, want ≈ 0.082", s.MissingRate)
	}
}

func TestD3Shape(t *testing.T) {
	d := D3(Config{Scale: testScale, Seed: 1})
	s := d.Stats()
	if s.Attributes != 17 {
		t.Fatalf("attributes = %d, want 17", s.Attributes)
	}
	ratio := float64(s.Tuples) / float64(s.DistinctTuples)
	if ratio < 1.7 || ratio > 2.5 {
		t.Fatalf("duplication ratio = %v, want ≈ 2.07", ratio)
	}
	if math.Abs(s.MissingRate-0.092) > 0.035 {
		t.Fatalf("missing rate = %v, want ≈ 0.092", s.MissingRate)
	}
}

func TestGenerationDeterministic(t *testing.T) {
	a := D1(Config{Scale: 0.01, Seed: 7})
	b := D1(Config{Scale: 0.01, Seed: 7})
	if a.Dirty.NumRows() != b.Dirty.NumRows() {
		t.Fatal("row counts differ for same seed")
	}
	for i := 0; i < a.Dirty.NumRows(); i++ {
		for c := 0; c < a.Dirty.NumCols(); c++ {
			if !a.Dirty.Get(i, c).Equal(b.Dirty.Get(i, c)) {
				t.Fatalf("cell (%d,%d) differs for same seed", i, c)
			}
		}
	}
	c := D1(Config{Scale: 0.01, Seed: 8})
	if c.Dirty.NumRows() == a.Dirty.NumRows() {
		// Same size is possible; compare some content.
		same := true
		for i := 0; i < a.Dirty.NumRows() && same; i++ {
			same = a.Dirty.Get(i, 0).Equal(c.Dirty.Get(i, 0))
		}
		if same {
			t.Fatal("different seeds produced identical data")
		}
	}
}

func TestGroundTruthConsistency(t *testing.T) {
	for _, d := range []*Dataset{
		D1(Config{Scale: 0.01, Seed: 3}),
		D2(Config{Scale: 0.01, Seed: 3}),
		D3(Config{Scale: 0.01, Seed: 3}),
	} {
		// Every dirty tuple has an entity and a recorded true Y for each
		// measure column.
		for i := 0; i < d.Dirty.NumRows(); i++ {
			id := d.Dirty.ID(i)
			if _, ok := d.Truth.Entity[id]; !ok {
				t.Fatalf("%s: tuple %d has no entity", d.Name, id)
			}
			for _, mc := range d.MeasureColumns {
				if _, ok := d.Truth.TrueValue(mc, id); !ok {
					t.Fatalf("%s: tuple %d has no true %s", d.Name, id, mc)
				}
			}
		}
		// Clean table has one row per entity.
		ents := map[int]struct{}{}
		for _, e := range d.Truth.Entity {
			ents[e] = struct{}{}
		}
		if d.Truth.Clean.NumRows() != len(ents) {
			t.Fatalf("%s: clean rows %d != entities %d", d.Name, d.Truth.Clean.NumRows(), len(ents))
		}
		// Canonicalization is idempotent and hits pool canons.
		for col, m := range d.Truth.Canonical {
			for variant, canon := range m {
				if got := d.Truth.CanonicalValue(col, variant); got != canon {
					t.Fatalf("%s: canonical(%s,%q) = %q, want %q", d.Name, col, variant, got, canon)
				}
				if got := d.Truth.CanonicalValue(col, canon); got != canon {
					t.Fatalf("%s: canonical not idempotent for %q", d.Name, canon)
				}
			}
		}
	}
}

func TestD1DirtyVenuesCanonicalize(t *testing.T) {
	d := D1(Config{Scale: 0.01, Seed: 5})
	venue := d.Dirty.ColumnIndex("Venue")
	unknown := 0
	for v := range d.Dirty.DistinctStrings(venue) {
		canon := d.Truth.CanonicalValue("Venue", v)
		if _, ok := venuePool[canon]; !ok {
			unknown++
		}
	}
	if unknown > 0 {
		t.Fatalf("%d dirty venue values do not canonicalize into the pool", unknown)
	}
}

func TestTrueEntityDuplicatesShareEntity(t *testing.T) {
	d := D1(Config{Scale: 0.01, Seed: 6})
	// Group dirty tuples by entity; every group's true Y must agree.
	byEntity := map[int][]dataset.TupleID{}
	for id, e := range d.Truth.Entity {
		byEntity[e] = append(byEntity[e], id)
	}
	multi := 0
	for _, ids := range byEntity {
		if len(ids) < 2 {
			continue
		}
		multi++
		first, _ := d.Truth.TrueValue("Citations", ids[0])
		for _, id := range ids[1:] {
			v, _ := d.Truth.TrueValue("Citations", id)
			if v != first {
				t.Fatalf("entity with inconsistent true Y: %v vs %v", first, v)
			}
		}
	}
	if multi == 0 {
		t.Fatal("no duplicated entities generated")
	}
}

func TestSyntheticERG(t *testing.T) {
	g := SyntheticERG(500, 42)
	if g.NumEdges() != 500 {
		t.Fatalf("edges = %d, want 500", g.NumEdges())
	}
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(i)
		if e.Benefit <= 0 || e.Benefit >= 1 {
			t.Fatalf("edge weight %v out of (0,1)", e.Benefit)
		}
		if !e.HasT || e.PT != e.Benefit {
			t.Fatalf("edge payload wrong: %+v", e)
		}
	}
	// Deterministic.
	g2 := SyntheticERG(500, 42)
	if g2.Edge(0).Benefit != g.Edge(0).Benefit {
		t.Fatal("synthetic ERG not deterministic")
	}
}
