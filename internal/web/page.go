package web

// indexHTML is the single-page GUI: progressive chart, composite
// question context, and answer controls — the web edition of the
// paper's Fig 9.
const indexHTML = `<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>VisClean</title>
<style>
  body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 60rem; color: #222; }
  h1 { font-size: 1.3rem; }
  .query { font-family: monospace; background: #f4f4f4; padding: .5rem; border-radius: 4px; }
  .bar-row { display: flex; align-items: center; margin: 2px 0; }
  .bar-label { width: 14rem; text-align: right; padding-right: .5rem; font-size: .85rem;
               overflow: hidden; text-overflow: ellipsis; white-space: nowrap; }
  .bar { background: #4a7fb5; height: 1.1rem; border-radius: 2px; }
  .bar-value { padding-left: .4rem; font-size: .8rem; color: #555; }
  .panel { border: 1px solid #ddd; border-radius: 6px; padding: 1rem; margin-top: 1rem; }
  .pending { border-color: #c90; background: #fffbe8; }
  button { margin-right: .5rem; padding: .35rem .9rem; border-radius: 4px; border: 1px solid #888;
           background: #fff; cursor: pointer; }
  button.primary { background: #2b6e2b; color: #fff; border-color: #2b6e2b; }
  button.danger { background: #a33; color: #fff; border-color: #a33; }
  table { border-collapse: collapse; font-size: .8rem; margin: .5rem 0; }
  td, th { border: 1px solid #ddd; padding: .2rem .5rem; }
  .meta { color: #666; font-size: .85rem; }
  .cqg { font-size: .8rem; color: #555; }
  input[type=number] { width: 8rem; padding: .3rem; }
</style>
</head>
<body>
<h1>VisClean — interactive cleaning for progressive visualization</h1>
<div class="query" id="query"></div>
<div class="meta" id="meta"></div>
<div id="chart"></div>
<div class="panel" id="qpanel" style="display:none"></div>
<div class="panel" id="controls">
  <button class="primary" id="iterate">Ask next composite question</button>
  <span class="meta" id="status"></span>
</div>
<div class="cqg" id="cqg"></div>
<script>
let sessionId = null;
async function ensureSession() {
  if (sessionId) return sessionId;
  const r = await fetch('/api/session', {method: 'POST', body: '{}'});
  if (r.status === 503) {
    document.getElementById('meta').textContent = 'server busy — all session slots taken, retrying…';
    return null;
  }
  if (!r.ok) {
    document.getElementById('meta').textContent = 'failed to create session: ' + await r.text();
    return null;
  }
  sessionId = (await r.json()).id;
  return sessionId;
}
async function getState() {
  const id = await ensureSession();
  if (!id) return null;
  const r = await fetch('/api/session/' + id + '/state');
  if (r.status === 404) { sessionId = null; return null; } // evicted: recreate on next tick
  return r.json();
}
function renderChart(c) {
  const el = document.getElementById('chart');
  if (!c || !c.labels || c.labels.length === 0) { el.innerHTML = '<p class="meta">(empty chart)</p>'; return; }
  const max = Math.max(...c.values.map(Math.abs), 1e-9);
  el.innerHTML = c.labels.map((l, i) => {
    const w = Math.max(1, Math.round(420 * Math.abs(c.values[i]) / max));
    return '<div class="bar-row"><div class="bar-label" title="' + l + '">' + l +
      '</div><div class="bar" style="width:' + w + 'px"></div>' +
      '<div class="bar-value">' + c.values[i].toFixed(1) + '</div></div>';
  }).join('');
}
function tupleTable(cells) {
  if (!cells || cells.length === 0) return '';
  return '<table><tr>' + cells.map(c => '<th>' + c.name + '</th>').join('') + '</tr><tr>' +
    cells.map(c => '<td>' + (c.value || '∅') + '</td>').join('') + '</tr></table>';
}
function renderQuestion(q) {
  const el = document.getElementById('qpanel');
  if (!q) { el.style.display = 'none'; return; }
  el.style.display = 'block';
  el.className = 'panel pending';
  let html = '<b>' + q.prompt + '</b>';
  (q.tuples || []).forEach(t => html += tupleTable(t));
  if (q.kind === 'T' || q.kind === 'A') {
    html += '<p><button class="primary" onclick="answer({yes:true})">Yes, same</button>' +
      '<button class="danger" onclick="answer({yes:false})">No, different</button>' +
      '<button onclick="answer({skip:true})">Skip</button></p>';
  } else if (q.kind === 'M') {
    html += '<p><input type="number" id="val" step="any" placeholder="value">' +
      '<button class="primary" onclick="answerValue(true)">Set value</button>' +
      '<button onclick="answer({skip:true})">Skip</button></p>';
  } else {
    html += '<p class="meta">current value: ' + q.current + '</p>' +
      '<p><input type="number" id="val" step="any" placeholder="corrected value">' +
      '<button class="danger" onclick="answerValue(true)">Wrong — correct it</button>' +
      '<button class="primary" onclick="answer({yes:false})">Value is fine</button>' +
      '<button onclick="answer({skip:true})">Skip</button></p>';
  }
  el.innerHTML = html;
}
async function answer(body) {
  if (!sessionId) return;
  await fetch('/api/session/' + sessionId + '/answer', {method: 'POST', body: JSON.stringify(body)});
  refresh();
}
async function answerValue(yes) {
  const v = parseFloat(document.getElementById('val').value);
  if (isNaN(v)) { alert('enter a number'); return; }
  await answer({yes: yes, value: v});
}
document.getElementById('iterate').onclick = async () => {
  const id = await ensureSession();
  if (!id) return;
  const r = await fetch('/api/session/' + id + '/iterate', {method: 'POST'});
  if (r.status === 503) document.getElementById('status').textContent = 'server overloaded — try again shortly';
  refresh();
};
async function refresh() {
  const s = await getState();
  if (!s) return;
  document.getElementById('query').textContent = s.query;
  let meta = 'session ' + s.id + ' · iteration ' + s.iteration;
  if (s.distToTruth > 0) meta += ' · distance to ground truth ' + s.distToTruth.toFixed(5);
  if (s.lastReport) meta += ' · last CQG answered ' + s.lastReport.questions + ' questions';
  if (s.error) meta += ' · error: ' + s.error;
  document.getElementById('meta').textContent = meta;
  if (!s.running) renderChart(s.chart);
  renderQuestion(s.question);
  document.getElementById('status').textContent =
    s.running ? (s.question ? 'waiting for your answer…' : 'thinking…') : 'idle';
  document.getElementById('cqg').textContent = s.cqg ?
    'CQG: ' + s.cqg.vertices.join(', ') + ' | links: ' + s.cqg.edges.join(' · ') : '';
}
setInterval(refresh, 700);
refresh();
</script>
</body>
</html>`
