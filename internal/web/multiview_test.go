package web

// Multi-view sessions over the HTTP API: creating with extra views,
// adding a view mid-session, and the per-view chart route.

import (
	"encoding/json"
	"net/http"
	"testing"
)

const mvSecondQuery = `VISUALIZE bar SELECT Affiliation, AVG(Citations) FROM D1 TRANSFORM GROUP BY Affiliation SORT Y BY DESC LIMIT 8`

func TestCreateWithExtraViews(t *testing.T) {
	mux, _ := testShell(t, false)
	rec := doReq(t, mux, http.MethodPost, "/api/session",
		`{"queries": [`+jsonStr(mvSecondQuery)+`]}`)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create status %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	st := getState(t, mux, out.ID)
	if len(st.Views) != 2 {
		t.Fatalf("state has %d views, want 2", len(st.Views))
	}
	if st.Views[0].Query != st.Query {
		t.Fatalf("views[0].query %q != query %q", st.Views[0].Query, st.Query)
	}
	if st.Views[1].Query != mvSecondQuery {
		t.Fatalf("views[1].query = %q", st.Views[1].Query)
	}
	if len(st.Views[1].Chart.Labels) == 0 {
		t.Fatal("second view has no chart")
	}
}

func TestAddViewAndViewChartRoutes(t *testing.T) {
	mux, _ := testShell(t, false)
	id := createSession(t, mux)

	if rec := doReq(t, mux, http.MethodPost, "/api/session/"+id+"/view", `{}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty-query add-view status %d", rec.Code)
	}
	if rec := doReq(t, mux, http.MethodPost, "/api/session/"+id+"/view",
		`{"query": "VISUALIZE nope"}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad-query add-view status %d", rec.Code)
	}

	rec := doReq(t, mux, http.MethodPost, "/api/session/"+id+"/view",
		`{"query": `+jsonStr(mvSecondQuery)+`}`)
	if rec.Code != http.StatusCreated {
		t.Fatalf("add-view status %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		View int `json:"view"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.View != 1 {
		t.Fatalf("add-view returned index %d, want 1", out.View)
	}
	if st := getState(t, mux, id); len(st.Views) != 2 {
		t.Fatalf("state has %d views after add, want 2", len(st.Views))
	}

	rec = doReq(t, mux, http.MethodGet, "/api/session/"+id+"/view/1/chart", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("view-chart status %d: %s", rec.Code, rec.Body.String())
	}
	var vj viewJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &vj); err != nil {
		t.Fatal(err)
	}
	if vj.Query != mvSecondQuery || len(vj.Chart.Labels) == 0 {
		t.Fatalf("view chart = %+v", vj)
	}

	for _, path := range []string{"/view/2/chart", "/view/-1/chart", "/view/x/chart"} {
		if rec := doReq(t, mux, http.MethodGet, "/api/session/"+id+path, ""); rec.Code != http.StatusNotFound {
			t.Fatalf("GET %s status %d, want 404", path, rec.Code)
		}
	}
}

func jsonStr(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}
