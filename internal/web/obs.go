package web

// Operational endpoints (DESIGN.md §5, README "Operating viscleanweb"):
// /metrics exposes the obs registry in Prometheus text format,
// /debug/traces returns the tracer's recent iteration spans as JSON, and
// -pprof additionally mounts net/http/pprof under /debug/pprof/ on the
// same listener. pprof is opt-in because it exposes goroutine dumps and
// heap contents — not something to leave open by default.

import (
	"net/http"
	"net/http/pprof"

	"visclean/internal/obs"
)

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.Default.WritePrometheus(w)
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, obs.DefaultTracer.Recent(64))
}

// mountPprof registers the standard pprof handlers on the mux. The
// profile endpoints that hang off Index (heap, goroutine, block, mutex,
// allocs, threadcreate) are served by the catch-all registration.
func mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}
