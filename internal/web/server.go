// Package web is VisClean's HTTP shell: a thin handler layer over the
// internal/service session registry that serves the composite-question
// GUI (§VI of the paper), the JSON session API, the operational
// endpoints (/metrics, /debug/traces, optional pprof), and the cluster
// plumbing — health/readiness probes and the snapshot export/import
// pair the internal/cluster router composes into session migration
// (DESIGN.md §9).
//
// Every handler parses the request, calls the registry, and serializes
// the result; all session state, locking, lifecycle and persistence
// live in internal/service. The same Server runs standalone under
// cmd/viscleanweb and as one shard of a cluster behind
// cmd/viscleanrouter.
package web

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"

	"visclean/internal/service"
	"visclean/internal/vis"
)

// Config parameterizes a Server.
type Config struct {
	// Registry is the session registry the server fronts (required).
	Registry *service.Registry
	// Defaults seed new sessions; request bodies override field by field.
	Defaults service.Spec
	// Pprof mounts net/http/pprof under /debug/pprof/ when set.
	Pprof bool
}

// Readiness states reported by GET /readyz. A server starts in
// StateStarting, flips to StateReady once restore finishes (SetReady),
// and to StateDraining when shutdown begins (SetDraining) — the router
// routes new work to Ready shards only and pulls sessions off Draining
// ones.
const (
	StateStarting int32 = iota
	StateReady
	StateDraining
)

// Server is the HTTP shell. Zero value is not usable; construct with New.
type Server struct {
	reg      *service.Registry
	defaults service.Spec
	pprof    bool
	state    atomic.Int32 // StateStarting → StateReady → StateDraining
}

// New builds a Server in the Starting state.
func New(cfg Config) *Server {
	return &Server{reg: cfg.Registry, defaults: cfg.Defaults, pprof: cfg.Pprof}
}

// SetReady marks the server ready (true) or back to starting (false).
func (s *Server) SetReady(ready bool) {
	if ready {
		s.state.Store(StateReady)
	} else {
		s.state.Store(StateStarting)
	}
}

// SetDraining marks the server draining: /readyz fails so the router
// stops routing new sessions here and migrates existing ones away.
func (s *Server) SetDraining() { s.state.Store(StateDraining) }

// Draining reports whether SetDraining has been called.
func (s *Server) Draining() bool { return s.state.Load() == StateDraining }

// Handler returns the server's routing mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", s.handleIndex)
	mux.HandleFunc("POST /api/session", s.handleCreate)
	mux.HandleFunc("GET /api/sessions", s.handleList)
	mux.HandleFunc("GET /api/session/{id}/state", s.handleState)
	mux.HandleFunc("POST /api/session/{id}/view", s.handleAddView)
	mux.HandleFunc("GET /api/session/{id}/view/{v}/chart", s.handleViewChart)
	mux.HandleFunc("POST /api/session/{id}/iterate", s.handleIterate)
	mux.HandleFunc("POST /api/session/{id}/answer", s.handleAnswer)
	mux.HandleFunc("POST /api/session/{id}/export", s.handleExport)
	mux.HandleFunc("POST /api/session/import", s.handleImport)
	mux.HandleFunc("DELETE /api/session/{id}", s.handleClose)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/traces", s.handleTraces)
	if s.pprof {
		mountPprof(mux)
	}
	return mux
}

// handleHealthz is the liveness probe: the process is up and serving.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = io.WriteString(w, "ok\n")
}

// handleReadyz is the readiness probe: 200 "ok" only once RestoreAll
// has completed (SetReady) and shutdown has not begun. The body names
// the state so the router can distinguish a starting shard (will become
// ready; leave it in peace) from a draining one (migrate sessions off).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	switch s.state.Load() {
	case StateReady:
		_, _ = io.WriteString(w, "ok\n")
	case StateDraining:
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = io.WriteString(w, "draining\n")
	default:
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = io.WriteString(w, "starting\n")
	}
}

// retryAfter derives the Retry-After hint from the worker pool's queue:
// one second of headroom plus roughly how many "turns" of the pool the
// queued work represents, clamped to [1, 30]. An idle pool answers 1; a
// deeply backed-up one tells clients to stay away longer instead of
// hammering a fixed two-second cadence.
func (s *Server) retryAfter() string {
	queued, _, workers := s.reg.QueueStats()
	if workers < 1 {
		workers = 1
	}
	secs := 1 + queued/workers
	if secs > 30 {
		secs = 30
	}
	return strconv.Itoa(secs)
}

// writeServiceError maps registry sentinel errors to HTTP statuses.
func (s *Server) writeServiceError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, service.ErrNotFound):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, service.ErrBusy), errors.Is(err, service.ErrOverloaded):
		w.Header().Set("Retry-After", s.retryAfter())
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, service.ErrIterationRunning), errors.Is(err, service.ErrNoQuestion),
		errors.Is(err, service.ErrExists):
		http.Error(w, err.Error(), http.StatusConflict)
	case errors.Is(err, service.ErrClosed):
		http.Error(w, err.Error(), http.StatusGone)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// handleCreate builds a new session. The optional JSON body overrides
// the server's default spec field by field; an "id" field pins the
// session id (the cluster router pre-assigns ids so consistent-hash
// placement is decided before the shard is picked) and fails with 409
// if it is already taken.
func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		w.Header().Set("Retry-After", s.retryAfter())
		http.Error(w, "server draining", http.StatusServiceUnavailable)
		return
	}
	var body struct {
		ID       string   `json:"id"`
		Dataset  string   `json:"dataset"`
		Scale    float64  `json:"scale"`
		Seed     int64    `json:"seed"`
		Query    string   `json:"query"`
		Queries  []string `json:"queries"`
		K        int      `json:"k"`
		Selector string   `json:"selector"`
		Auto     *bool    `json:"auto"`
	}
	if data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20)); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	} else if len(data) > 0 {
		if err := json.Unmarshal(data, &body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	spec := s.defaults
	if body.Dataset != "" && body.Dataset != spec.Dataset {
		spec.Dataset = body.Dataset
		spec.Query = "" // the flag query targets the flag dataset
	}
	if body.Scale != 0 {
		spec.Scale = body.Scale
	}
	if body.Seed != 0 {
		spec.Seed = body.Seed
	}
	if body.Query != "" {
		spec.Query = body.Query
	}
	if len(body.Queries) > 0 {
		spec.Queries = body.Queries
	}
	if body.K != 0 {
		spec.K = body.K
	}
	if body.Selector != "" {
		spec.Selector = body.Selector
	}
	if body.Auto != nil {
		spec.Auto = *body.Auto
	}
	var id string
	var err error
	if body.ID != "" {
		id, err = s.reg.CreateWithID(body.ID, spec)
	} else {
		id, err = s.reg.Create(spec)
	}
	if err != nil {
		s.writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": id})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.List())
}

type stateResponse struct {
	ID        string    `json:"id"`
	Query     string    `json:"query"`
	Iteration int       `json:"iteration"`
	Running   bool      `json:"running"`
	Chart     chartJSON `json:"chart"`
	// Views carries every registered view's query and chart in
	// registration order; views[0] duplicates query/chart above (kept for
	// single-view clients).
	Views    []viewJSON        `json:"views,omitempty"`
	Truth    float64           `json:"distToTruth"`
	Question *service.Question `json:"question,omitempty"`
	CQG      *service.CQGView  `json:"cqg,omitempty"`
	Report   *repJSON          `json:"lastReport,omitempty"`
	Error    string            `json:"error,omitempty"`
}

type viewJSON struct {
	Query string    `json:"query"`
	Chart chartJSON `json:"chart"`
}

type chartJSON struct {
	Type   string    `json:"type"`
	Labels []string  `json:"labels"`
	Values []float64 `json:"values"`
}

type repJSON struct {
	Questions int     `json:"questions"`
	Moved     float64 `json:"moved"`
	Exhausted bool    `json:"exhausted"`
}

func (s *Server) handleState(w http.ResponseWriter, r *http.Request) {
	st, err := s.reg.State(r.PathValue("id"))
	if err != nil {
		s.writeServiceError(w, err)
		return
	}
	resp := stateResponse{
		ID:        st.ID,
		Query:     st.Spec.Query,
		Iteration: st.Iteration,
		Running:   st.Running,
		Truth:     st.DistToTruth,
		Question:  st.Question,
		CQG:       st.CQG,
		Error:     st.Err,
	}
	if st.Vis != nil {
		resp.Chart = toChartJSON(st.Vis)
	}
	for i, v := range st.ViewVis {
		vj := viewJSON{Chart: toChartJSON(v)}
		if i < len(st.ViewQueries) {
			vj.Query = st.ViewQueries[i]
		}
		resp.Views = append(resp.Views, vj)
	}
	if st.Report != nil {
		resp.Report = &repJSON{
			Questions: st.Report.Questions(),
			Moved:     st.Report.DistMoved,
			Exhausted: st.Report.Exhausted,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleAddView registers an additional VQL view on a live session
// (body: {"query": "VISUALIZE ..."}). The view is logged into the
// session's answer history, so snapshots and replay restore it.
func (s *Server) handleAddView(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Query string `json:"query"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&body); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if body.Query == "" {
		http.Error(w, "missing query", http.StatusBadRequest)
		return
	}
	v, err := s.reg.AddView(r.PathValue("id"), body.Query)
	if err != nil {
		s.writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]int{"view": v})
}

// handleViewChart serves one view's current chart by view index.
func (s *Server) handleViewChart(w http.ResponseWriter, r *http.Request) {
	st, err := s.reg.State(r.PathValue("id"))
	if err != nil {
		s.writeServiceError(w, err)
		return
	}
	v, err := strconv.Atoi(r.PathValue("v"))
	if err != nil || v < 0 || v >= len(st.ViewVis) {
		http.Error(w, "no such view", http.StatusNotFound)
		return
	}
	vj := viewJSON{Chart: toChartJSON(st.ViewVis[v])}
	if v < len(st.ViewQueries) {
		vj.Query = st.ViewQueries[v]
	}
	writeJSON(w, http.StatusOK, vj)
}

func (s *Server) handleIterate(w http.ResponseWriter, r *http.Request) {
	// The router stamps X-Request-ID on proxied requests; folding it into
	// the iteration's trace label lets one request be followed from the
	// router access log into /debug/traces on the shard.
	if err := s.reg.IterateTagged(r.PathValue("id"), r.Header.Get("X-Request-ID")); err != nil {
		s.writeServiceError(w, err)
		return
	}
	w.WriteHeader(http.StatusAccepted)
}

func (s *Server) handleAnswer(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Yes   *bool    `json:"yes"`
		Value *float64 `json:"value"`
		Skip  bool     `json:"skip"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	a := service.Answer{Skip: body.Skip}
	if body.Yes != nil {
		a.Yes = *body.Yes
	}
	if body.Value != nil {
		a.Value = *body.Value
		a.HasValue = true
	}
	if err := s.reg.Answer(r.PathValue("id"), a); err != nil {
		s.writeServiceError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleExport detaches a session and returns its snapshot — the first
// half of a migration. The session is gone from this shard afterwards
// (modulo its inert on-disk copy; see service.Detach).
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	snap, err := s.reg.Detach(r.PathValue("id"))
	if err != nil {
		s.writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleImport rebuilds a session from a snapshot body — the second
// half of a migration. 409 if the id already lives here.
func (s *Server) handleImport(w http.ResponseWriter, r *http.Request) {
	var snap service.Snapshot
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&snap); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.reg.Attach(snap); err != nil {
		s.writeServiceError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleClose(w http.ResponseWriter, r *http.Request) {
	if err := s.reg.Close(r.PathValue("id")); err != nil {
		s.writeServiceError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func toChartJSON(v *vis.Data) chartJSON {
	out := chartJSON{Type: v.Type.String()}
	for _, p := range v.Points {
		out.Labels = append(out.Labels, p.Label)
		out.Values = append(out.Values, p.Y)
	}
	return out
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(indexHTML))
}
