package web

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"visclean/internal/service"
)

// testShell builds a Server over a real registry with small default
// sessions (D1 at scale 0.004, ~55 entities).
func testShell(t *testing.T, auto bool) (http.Handler, *service.Registry) {
	t.Helper()
	reg := service.NewRegistry(service.Config{
		MaxSessions: 8,
		Workers:     2,
		Logf:        t.Logf,
	})
	t.Cleanup(reg.Shutdown)
	srv := New(Config{
		Registry: reg,
		Defaults: service.Spec{Dataset: "D1", Scale: 0.004, Seed: 3, Auto: auto},
	})
	srv.SetReady(true)
	return srv.Handler(), reg
}

func doReq(t *testing.T, mux http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body == "" {
		req = httptest.NewRequest(method, path, nil)
	} else {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	return rec
}

func createSession(t *testing.T, mux http.Handler) string {
	t.Helper()
	rec := doReq(t, mux, http.MethodPost, "/api/session", "{}")
	if rec.Code != http.StatusCreated {
		t.Fatalf("create status %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.ID == "" {
		t.Fatal("create returned empty session id")
	}
	return out.ID
}

func getState(t *testing.T, mux http.Handler, id string) stateResponse {
	t.Helper()
	rec := doReq(t, mux, http.MethodGet, "/api/session/"+id+"/state", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("state status %d: %s", rec.Code, rec.Body.String())
	}
	var out stateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestCreateAndState(t *testing.T) {
	mux, _ := testShell(t, false)
	id := createSession(t, mux)
	s := getState(t, mux, id)
	if s.ID != id || s.Iteration != 0 || s.Running {
		t.Fatalf("fresh state = %+v", s)
	}
	if len(s.Chart.Labels) == 0 {
		t.Fatal("no chart in initial state")
	}
	if s.Truth <= 0 {
		t.Fatal("dist to truth missing")
	}
	if s.Query == "" {
		t.Fatal("query missing from state")
	}
}

func TestAutoIteration(t *testing.T) {
	mux, _ := testShell(t, true)
	id := createSession(t, mux)
	rec := doReq(t, mux, http.MethodPost, "/api/session/"+id+"/iterate", "")
	if rec.Code != http.StatusAccepted {
		t.Fatalf("iterate status %d", rec.Code)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if s := getState(t, mux, id); !s.Running {
			if s.Iteration != 1 {
				t.Fatalf("iteration = %d after auto run", s.Iteration)
			}
			if s.Report == nil || s.Report.Questions == 0 {
				t.Fatalf("report missing: %+v", s.Report)
			}
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("auto iteration never finished")
}

func TestIterateConflictWhileRunning(t *testing.T) {
	mux, _ := testShell(t, false) // web user: iteration parks on questions
	id := createSession(t, mux)
	rec := doReq(t, mux, http.MethodPost, "/api/session/"+id+"/iterate", "")
	if rec.Code != http.StatusAccepted {
		t.Fatalf("iterate status %d", rec.Code)
	}
	rec2 := doReq(t, mux, http.MethodPost, "/api/session/"+id+"/iterate", "")
	if rec2.Code != http.StatusConflict {
		t.Fatalf("second iterate status %d, want conflict", rec2.Code)
	}
	// Skip every question until the iteration ends so nothing leaks.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		s := getState(t, mux, id)
		if !s.Running {
			return
		}
		if s.Question != nil {
			rec := doReq(t, mux, http.MethodPost, "/api/session/"+id+"/answer", `{"skip":true}`)
			if rec.Code != http.StatusNoContent && rec.Code != http.StatusConflict {
				t.Fatalf("answer status %d", rec.Code)
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("iteration never finished under skip-all answers")
}

func TestAnswerWithoutQuestion(t *testing.T) {
	mux, _ := testShell(t, false)
	id := createSession(t, mux)
	rec := doReq(t, mux, http.MethodPost, "/api/session/"+id+"/answer", `{"yes":true}`)
	if rec.Code != http.StatusConflict {
		t.Fatalf("answer with no question: status %d", rec.Code)
	}
}

func TestAnswerBadJSON(t *testing.T) {
	mux, _ := testShell(t, false)
	id := createSession(t, mux)
	rec := doReq(t, mux, http.MethodPost, "/api/session/"+id+"/answer", `{`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad json status %d", rec.Code)
	}
}

func TestUnknownSession(t *testing.T) {
	mux, _ := testShell(t, false)
	rec := doReq(t, mux, http.MethodGet, "/api/session/nope/state", "")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown session state status %d", rec.Code)
	}
	rec = doReq(t, mux, http.MethodPost, "/api/session/nope/iterate", "")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown session iterate status %d", rec.Code)
	}
}

func TestCloseSession(t *testing.T) {
	mux, reg := testShell(t, false)
	id := createSession(t, mux)
	rec := doReq(t, mux, http.MethodDelete, "/api/session/"+id, "")
	if rec.Code != http.StatusNoContent {
		t.Fatalf("close status %d", rec.Code)
	}
	rec = doReq(t, mux, http.MethodGet, "/api/session/"+id+"/state", "")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("state after close status %d", rec.Code)
	}
	if reg.Len() != 0 {
		t.Fatalf("registry still holds %d sessions after close", reg.Len())
	}
}

func TestCreateOverridesSpec(t *testing.T) {
	mux, reg := testShell(t, false)
	rec := doReq(t, mux, http.MethodPost, "/api/session", `{"seed": 7, "k": 5}`)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create status %d: %s", rec.Code, rec.Body.String())
	}
	infos := reg.List()
	if len(infos) != 1 || infos[0].Spec.Seed != 7 || infos[0].Spec.K != 5 {
		t.Fatalf("spec overrides not applied: %+v", infos)
	}
}

func TestSessionCapacity(t *testing.T) {
	reg := service.NewRegistry(service.Config{MaxSessions: 1, Workers: 1, Logf: t.Logf})
	t.Cleanup(reg.Shutdown)
	mux := New(Config{
		Registry: reg,
		Defaults: service.Spec{Dataset: "D1", Scale: 0.004, Seed: 3},
	}).Handler()
	createSession(t, mux)
	rec := doReq(t, mux, http.MethodPost, "/api/session", "{}")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("create beyond capacity: status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("busy rejection missing Retry-After")
	}
}

func TestIndexServesPage(t *testing.T) {
	mux, _ := testShell(t, false)
	rec := doReq(t, mux, http.MethodGet, "/", "")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "VisClean") {
		t.Fatalf("index page wrong: %d", rec.Code)
	}
}
