package web

import (
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"visclean/internal/obs"
	"visclean/internal/service"
)

// enableObs turns observability on for one test and restores the
// disabled default afterwards so the rest of the package runs on the
// zero-cost path.
func enableObs(t *testing.T) {
	t.Helper()
	obs.SetEnabled(true)
	obs.DefaultTracer.SetEnabled(true)
	t.Cleanup(func() {
		obs.SetEnabled(false)
		obs.DefaultTracer.SetEnabled(false)
	})
}

func runAutoIteration(t *testing.T, mux http.Handler, id string) {
	t.Helper()
	rec := doReq(t, mux, http.MethodPost, "/api/session/"+id+"/iterate", "")
	if rec.Code != http.StatusAccepted {
		t.Fatalf("iterate status %d", rec.Code)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if s := getState(t, mux, id); !s.Running {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("iteration never finished")
}

// TestMetricsEndpoint runs an iteration with observability on and checks
// that /metrics exposes the documented families — per-phase timings,
// benefit memo/pricer counters, pool shape, service lifecycle — and that
// every exposed family is documented in DESIGN.md §5 (the catalog is a
// contract, not prose).
func TestMetricsEndpoint(t *testing.T) {
	enableObs(t)
	mux, _ := testShell(t, true)
	id := createSession(t, mux)
	runAutoIteration(t, mux, id)

	rec := doReq(t, mux, http.MethodGet, "/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body := rec.Body.String()

	for _, name := range []string{
		"visclean_pipeline_iterations_total",
		"visclean_iteration_phase_seconds",
		`phase="annotate"`,
		`phase="select"`,
		"visclean_benefit_evals_total",
		"visclean_benefit_memo_hits_total",
		"visclean_par_fanouts_total",
		"visclean_service_sessions_live",
		"visclean_service_sessions_created_total",
		"visclean_service_iteration_seconds",
		"visclean_service_busy_total",
		"visclean_service_overload_total",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("/metrics missing %q", name)
		}
	}

	design, err := os.ReadFile("../../DESIGN.md")
	if err != nil {
		t.Fatalf("read DESIGN.md: %v", err)
	}
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			t.Fatalf("malformed TYPE line %q", line)
		}
		if name := fields[2]; !strings.Contains(string(design), name) {
			t.Errorf("metric %s exposed but not documented in DESIGN.md", name)
		}
	}
}

// TestTracesEndpoint checks /debug/traces returns the finished
// iteration's span, labelled with the session id and carrying per-phase
// durations.
func TestTracesEndpoint(t *testing.T) {
	enableObs(t)
	mux, _ := testShell(t, true)
	id := createSession(t, mux)
	runAutoIteration(t, mux, id)

	rec := doReq(t, mux, http.MethodGet, "/debug/traces", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/traces status %d", rec.Code)
	}
	var traces []obs.Trace
	if err := json.Unmarshal(rec.Body.Bytes(), &traces); err != nil {
		t.Fatalf("decode traces: %v", err)
	}
	for _, tr := range traces {
		if tr.Name == "iteration" && tr.Label == id {
			if len(tr.Phases) == 0 {
				t.Fatal("iteration trace has no phases")
			}
			return
		}
	}
	t.Fatalf("no iteration trace labelled %q among %d traces", id, len(traces))
}

// TestPprofGatedByFlag checks the profiling endpoints exist only when
// the operator opted in with -pprof.
func TestPprofGatedByFlag(t *testing.T) {
	reg := service.NewRegistry(service.Config{MaxSessions: 1, Workers: 1, Logf: t.Logf})
	t.Cleanup(reg.Shutdown)

	off := New(Config{Registry: reg}).Handler()
	if rec := doReq(t, off, http.MethodGet, "/debug/pprof/", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("pprof off: status %d, want 404", rec.Code)
	}
	on := New(Config{Registry: reg, Pprof: true}).Handler()
	if rec := doReq(t, on, http.MethodGet, "/debug/pprof/", ""); rec.Code != http.StatusOK {
		t.Fatalf("pprof on: status %d, want 200", rec.Code)
	}
}
