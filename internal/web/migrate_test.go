package web

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"visclean/internal/service"
)

// newShell is testShell but returns the Server so tests can drive the
// readiness lifecycle.
func newShell(t *testing.T, auto bool) (*Server, *service.Registry) {
	t.Helper()
	reg := service.NewRegistry(service.Config{
		MaxSessions: 8,
		Workers:     2,
		Logf:        t.Logf,
	})
	t.Cleanup(reg.Shutdown)
	srv := New(Config{
		Registry: reg,
		Defaults: service.Spec{Dataset: "D1", Scale: 0.004, Seed: 3, Auto: auto},
	})
	return srv, reg
}

func TestHealthzAndReadyzLifecycle(t *testing.T) {
	srv, _ := newShell(t, true)
	mux := srv.Handler()

	// Liveness is unconditional; readiness follows the lifecycle.
	if rec := doReq(t, mux, http.MethodGet, "/healthz", ""); rec.Code != http.StatusOK {
		t.Fatalf("healthz while starting: %d", rec.Code)
	}
	rec := doReq(t, mux, http.MethodGet, "/readyz", "")
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "starting") {
		t.Fatalf("readyz while starting: %d %q", rec.Code, rec.Body.String())
	}

	srv.SetReady(true)
	rec = doReq(t, mux, http.MethodGet, "/readyz", "")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("readyz when ready: %d %q", rec.Code, rec.Body.String())
	}

	srv.SetDraining()
	if !srv.Draining() {
		t.Fatal("Draining() false after SetDraining")
	}
	rec = doReq(t, mux, http.MethodGet, "/readyz", "")
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "draining") {
		t.Fatalf("readyz when draining: %d %q", rec.Code, rec.Body.String())
	}
	// A draining shard refuses new sessions so the router places them
	// elsewhere, but keeps serving existing ones.
	if rec := doReq(t, mux, http.MethodPost, "/api/session", "{}"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("create while draining: %d, want 503", rec.Code)
	}
	if rec := doReq(t, mux, http.MethodGet, "/healthz", ""); rec.Code != http.StatusOK {
		t.Fatalf("healthz while draining: %d", rec.Code)
	}
}

// TestExportImportRoundTrip is the migration primitive over HTTP: a
// session exported from one shard and imported into a fresh one must
// report the identical iteration count, chart and distance-to-truth,
// and a re-export must yield the identical answer history.
func TestExportImportRoundTrip(t *testing.T) {
	srvA, _ := newShell(t, true)
	srvA.SetReady(true)
	muxA := srvA.Handler()
	id := createSession(t, muxA)
	runAutoIteration(t, muxA, id)
	before := getState(t, muxA, id)

	rec := doReq(t, muxA, http.MethodPost, "/api/session/"+id+"/export", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("export status %d: %s", rec.Code, rec.Body.String())
	}
	snapJSON := rec.Body.String()
	var snap service.Snapshot
	if err := json.Unmarshal([]byte(snapJSON), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.ID != id || len(snap.History.Iterations) != 1 {
		t.Fatalf("snapshot shape: id=%s iterations=%d", snap.ID, len(snap.History.Iterations))
	}
	// The exporting shard no longer owns the session.
	if rec := doReq(t, muxA, http.MethodGet, "/api/session/"+id+"/state", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("state on exporter after export: %d, want 404", rec.Code)
	}

	srvB, _ := newShell(t, true)
	srvB.SetReady(true)
	muxB := srvB.Handler()
	if rec := doReq(t, muxB, http.MethodPost, "/api/session/import", snapJSON); rec.Code != http.StatusNoContent {
		t.Fatalf("import status %d: %s", rec.Code, rec.Body.String())
	}
	after := getState(t, muxB, id)
	if after.Iteration != before.Iteration || after.Truth != before.Truth {
		t.Fatalf("imported state diverged: iter %d→%d, dist %v→%v",
			before.Iteration, after.Iteration, before.Truth, after.Truth)
	}
	if len(after.Chart.Values) != len(before.Chart.Values) {
		t.Fatalf("chart size changed: %d → %d", len(before.Chart.Values), len(after.Chart.Values))
	}
	for i := range after.Chart.Values {
		if after.Chart.Values[i] != before.Chart.Values[i] || after.Chart.Labels[i] != before.Chart.Labels[i] {
			t.Fatalf("chart point %d diverged: %s=%v → %s=%v", i,
				before.Chart.Labels[i], before.Chart.Values[i], after.Chart.Labels[i], after.Chart.Values[i])
		}
	}

	// Importing the same snapshot twice must conflict, not clobber.
	if rec := doReq(t, muxB, http.MethodPost, "/api/session/import", snapJSON); rec.Code != http.StatusConflict {
		t.Fatalf("duplicate import status %d, want 409", rec.Code)
	}

	// Re-export: the answer history survives the round trip unchanged.
	rec = doReq(t, muxB, http.MethodPost, "/api/session/"+id+"/export", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("re-export status %d", rec.Code)
	}
	var snap2 service.Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap2); err != nil {
		t.Fatal(err)
	}
	h1, _ := json.Marshal(snap.History)
	h2, _ := json.Marshal(snap2.History)
	if string(h1) != string(h2) {
		t.Fatalf("answer history changed across migration:\n was %s\n now %s", h1, h2)
	}
}

// TestExportImportMidIteration exports a session that has acked answers
// and a parked, unanswered question: the snapshot carries the acked
// answers as partial history and the import resumes cleanly at the
// pre-iteration boundary (the parked question was never answered and
// must not reappear).
func TestExportImportMidIteration(t *testing.T) {
	srvA, _ := newShell(t, false)
	srvA.SetReady(true)
	muxA := srvA.Handler()
	id := createSession(t, muxA)
	if rec := doReq(t, muxA, http.MethodPost, "/api/session/"+id+"/iterate", ""); rec.Code != http.StatusAccepted {
		t.Fatalf("iterate status %d", rec.Code)
	}
	// Answer the first question, then leave the second parked.
	answerOne(t, muxA, id)
	waitForQuestion(t, muxA, id)

	rec := doReq(t, muxA, http.MethodPost, "/api/session/"+id+"/export", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("mid-iteration export status %d: %s", rec.Code, rec.Body.String())
	}
	var snap service.Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.History.Iterations) != 0 || len(snap.History.Partial) == 0 {
		t.Fatalf("mid-iteration snapshot: %d committed, %d partial — want 0 committed, >0 partial",
			len(snap.History.Iterations), len(snap.History.Partial))
	}

	srvB, _ := newShell(t, false)
	srvB.SetReady(true)
	muxB := srvB.Handler()
	if rec := doReq(t, muxB, http.MethodPost, "/api/session/import", rec.Body.String()); rec.Code != http.StatusNoContent {
		t.Fatalf("import status %d: %s", rec.Code, rec.Body.String())
	}
	st := getState(t, muxB, id)
	if st.Running || st.Question != nil || st.Iteration != 0 {
		t.Fatalf("imported mid-iteration session not at a clean boundary: %+v", st)
	}
}

// answerOne waits for a question and acks it with the deterministic
// chaos policy (confirm T/A, keep O, skip the rest).
func answerOne(t *testing.T, mux http.Handler, id string) {
	t.Helper()
	q := waitForQuestion(t, mux, id)
	var body string
	switch q.Kind {
	case "T", "A":
		body = `{"yes":true}`
	case "O":
		body = `{"yes":false}`
	default:
		body = `{"skip":true}`
	}
	rec := doReq(t, mux, http.MethodPost, "/api/session/"+id+"/answer", body)
	if rec.Code != http.StatusNoContent {
		t.Fatalf("answer status %d: %s", rec.Code, rec.Body.String())
	}
}

func waitForQuestion(t *testing.T, mux http.Handler, id string) *service.Question {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if s := getState(t, mux, id); s.Question != nil {
			return s.Question
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("no question appeared")
	return nil
}

func TestCreateWithPinnedID(t *testing.T) {
	srv, _ := newShell(t, true)
	srv.SetReady(true)
	mux := srv.Handler()
	rec := doReq(t, mux, http.MethodPost, "/api/session", `{"id":"pin-web-1"}`)
	if rec.Code != http.StatusCreated || !strings.Contains(rec.Body.String(), "pin-web-1") {
		t.Fatalf("pinned create: %d %s", rec.Code, rec.Body.String())
	}
	if rec := doReq(t, mux, http.MethodPost, "/api/session", `{"id":"pin-web-1"}`); rec.Code != http.StatusConflict {
		t.Fatalf("duplicate pinned create: %d, want 409", rec.Code)
	}
}

// TestRetryAfterFromQueueDepth: 503s advertise a Retry-After derived
// from pool pressure — an integer in [1, 30], not the old hardcoded 2.
func TestRetryAfterFromQueueDepth(t *testing.T) {
	reg := service.NewRegistry(service.Config{
		MaxSessions: 1,
		Workers:     1,
		Logf:        t.Logf,
	})
	t.Cleanup(reg.Shutdown)
	srv := New(Config{
		Registry: reg,
		Defaults: service.Spec{Dataset: "D1", Scale: 0.004, Seed: 3, Auto: true},
	})
	srv.SetReady(true)
	mux := srv.Handler()
	createSession(t, mux)
	rec := doReq(t, mux, http.MethodPost, "/api/session", "{}")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity create: %d, want 503", rec.Code)
	}
	ra := rec.Header().Get("Retry-After")
	n, err := strconv.Atoi(ra)
	if err != nil || n < 1 || n > 30 {
		t.Fatalf("Retry-After %q not an integer in [1,30]: %v", ra, err)
	}
}

// TestRequestIDInTraceLabel: an X-Request-ID sent by the router must
// surface in the iteration's trace label so cross-shard requests can be
// correlated from /debug/traces.
func TestRequestIDInTraceLabel(t *testing.T) {
	enableObs(t)
	srv, _ := newShell(t, true)
	srv.SetReady(true)
	mux := srv.Handler()
	id := createSession(t, mux)

	req := httptest.NewRequest(http.MethodPost, "/api/session/"+id+"/iterate", nil)
	req.Header.Set("X-Request-ID", "rid-test-42")
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("iterate status %d", rec.Code)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if s := getState(t, mux, id); !s.Running {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	tr := doReq(t, mux, http.MethodGet, "/debug/traces", "")
	if tr.Code != http.StatusOK {
		t.Fatalf("/debug/traces status %d", tr.Code)
	}
	if !strings.Contains(tr.Body.String(), "rid=rid-test-42") {
		t.Fatalf("trace labels missing request id: %s", tr.Body.String())
	}
}
