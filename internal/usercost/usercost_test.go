package usercost

import (
	"math"
	"testing"
)

func TestCalibrationMatchesPaper(t *testing.T) {
	// Fig 15(a): 15 iterations of k=10 CQGs (≈9 edge + ≈1 vertex
	// questions) ≈ 520 s; 15 iterations of 10 single questions ≈ 860 s.
	m := NewModel(1)
	m.Jitter = 0 // exact calibration check
	var composite, single float64
	for i := 0; i < 15; i++ {
		composite += m.CompositeCost(9, 1)
		single += m.SingleGroupCost(10)
	}
	if math.Abs(composite-570) > 60 {
		t.Fatalf("15 composite iterations = %v s, want ≈ 520-570", composite)
	}
	if math.Abs(single-960) > 110 {
		t.Fatalf("15 single iterations = %v s, want ≈ 860-960", single)
	}
	saving := 1 - composite/single
	if saving < 0.3 || saving > 0.5 {
		t.Fatalf("composite saving = %v, want ≈ 40%%", saving)
	}
}

func TestJitterBounded(t *testing.T) {
	m := NewModel(2)
	base := m.SinglePerQuestion * 10
	for i := 0; i < 200; i++ {
		c := m.SingleGroupCost(10)
		if c < base*0.89 || c > base*1.11 {
			t.Fatalf("jittered cost %v outside ±10%% of %v", c, base)
		}
	}
}

func TestZeroQuestionsFree(t *testing.T) {
	m := NewModel(3)
	if m.SingleGroupCost(0) != 0 || m.CompositeCost(0, 0) != 0 {
		t.Fatal("zero questions should cost nothing")
	}
}

func TestDeterministicSeed(t *testing.T) {
	a, b := NewModel(7), NewModel(7)
	for i := 0; i < 20; i++ {
		if a.CompositeCost(5, 2) != b.CompositeCost(5, 2) {
			t.Fatal("same seed, different costs")
		}
	}
}

func TestCompositeCheaperPerQuestion(t *testing.T) {
	m := NewModel(4)
	m.Jitter = 0
	// For any sizeable group, composite must beat singles.
	for n := 5; n <= 20; n++ {
		if m.CompositeCost(n, 0) >= m.SingleGroupCost(n) {
			t.Fatalf("composite not cheaper at n=%d", n)
		}
	}
}
