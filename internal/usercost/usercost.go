// Package usercost models the human response time measured in the
// paper's user study (Exp-2, Figs 15–16). The study's finding: answering
// the questions of one composite question graph takes ~40% less time
// than answering the same number of single questions in isolation,
// because the CQG shares context (the same tuples, one table view, one
// mental model) across its questions.
//
// The defaults are calibrated to Fig 15(a): 15 CQG iterations ≈ 520 s
// (≈ 34.7 s each) versus 15 single-question groups ≈ 860 s (≈ 57.3 s
// each) with k = 10 (≈ 9 edges per CQG).
package usercost

import "math/rand"

// Model prices user interactions in seconds.
type Model struct {
	// SinglePerQuestion is the cost of one isolated single question,
	// including re-establishing context each time.
	SinglePerQuestion float64
	// CompositeOverhead is the fixed cost of reading one CQG.
	CompositeOverhead float64
	// CompositePerQuestion is the marginal cost of each question inside
	// a CQG once its context is loaded.
	CompositePerQuestion float64
	// Jitter is the relative noise amplitude (±Jitter) applied per
	// interaction, modelling participant variance.
	Jitter float64

	rng *rand.Rand
}

// NewModel returns the calibrated model with a deterministic noise
// stream.
func NewModel(seed int64) *Model {
	return &Model{
		SinglePerQuestion:    6.4,
		CompositeOverhead:    8.0,
		CompositePerQuestion: 3.0,
		Jitter:               0.1,
		rng:                  rand.New(rand.NewSource(seed)),
	}
}

func (m *Model) noise() float64 {
	if m.Jitter <= 0 || m.rng == nil {
		return 1
	}
	return 1 + m.Jitter*(2*m.rng.Float64()-1)
}

// SingleGroupCost prices answering n single questions in isolation (the
// Single baseline asks m of them per iteration at 1/m unit cost each).
func (m *Model) SingleGroupCost(n int) float64 {
	if n <= 0 {
		return 0
	}
	return m.SinglePerQuestion * float64(n) * m.noise()
}

// CompositeCost prices answering one CQG containing nEdges edge
// questions and nVertex vertex (M/O) questions.
func (m *Model) CompositeCost(nEdges, nVertex int) float64 {
	n := nEdges + nVertex
	if n <= 0 {
		return 0
	}
	return (m.CompositeOverhead + m.CompositePerQuestion*float64(n)) * m.noise()
}
