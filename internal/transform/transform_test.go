package transform

import (
	"reflect"
	"testing"
)

func TestObserveContainmentLearnsDecoration(t *testing.T) {
	l := NewLearner()
	l.Observe("ACM SIGMOD", "SIGMOD")
	if !l.IsDecorative("acm") {
		t.Fatal("acm not learned")
	}
	if l.IsDecorative("sigmod") {
		t.Fatal("core token marked decorative")
	}
	if got := l.Decorative(); !reflect.DeepEqual(got, []string{"acm"}) {
		t.Fatalf("decorative = %v", got)
	}
}

func TestObserveNonContainmentTeachesNothing(t *testing.T) {
	l := NewLearner()
	l.Observe("VLDB", "Very Large Data Bases")
	if len(l.Decorative()) != 0 {
		t.Fatalf("non-containment pair taught %v", l.Decorative())
	}
}

func TestGeneralization(t *testing.T) {
	l := NewLearner()
	l.Observe("ACM SIGMOD", "SIGMOD")
	if !l.Same("ACM KDD", "KDD") {
		t.Fatal("rule did not generalize to unseen family")
	}
	if l.Same("KDD", "SIGMOD") {
		t.Fatal("distinct cores conflated")
	}
	l.Observe("SIGMOD'13", "SIGMOD")
	if !l.Same("ICDE 13", "ICDE") {
		t.Fatal("year decoration did not generalize")
	}
}

func TestCore(t *testing.T) {
	l := NewLearner()
	l.Observe("SIGMOD Conf.", "SIGMOD")
	cases := map[string]string{
		"KDD Conf.":  "kdd",
		"ICDE":       "icde",
		"Conf.":      "", // all decoration
		"A B Conf.":  "a b",
		"conf CONF.": "",
	}
	for in, want := range cases {
		if got := l.Core(in); got != want {
			t.Errorf("Core(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEmptyCoreNeverMatches(t *testing.T) {
	l := NewLearner()
	l.Observe("X Conf.", "X")
	if l.Same("Conf.", "Conf.") {
		t.Fatal("empty cores must not match (would merge everything)")
	}
}

func TestMinSupport(t *testing.T) {
	l := NewLearner()
	l.MinSupport = 2
	l.Observe("ACM SIGMOD", "SIGMOD")
	if l.IsDecorative("acm") {
		t.Fatal("single observation should not reach support 2")
	}
	l.Observe("ACM KDD", "KDD")
	if !l.IsDecorative("acm") {
		t.Fatal("two observations should reach support 2")
	}
}

func TestGroups(t *testing.T) {
	l := NewLearner()
	l.Observe("ACM SIGMOD", "SIGMOD")
	l.Observe("SIGMOD Conf.", "SIGMOD")
	values := []string{
		"SIGMOD", "ACM SIGMOD", "SIGMOD Conf.",
		"KDD", "ACM KDD",
		"VLDB",  // singleton core
		"Conf.", // empty core
	}
	got := l.Groups(values)
	want := [][]string{
		{"ACM KDD", "KDD"},
		{"ACM SIGMOD", "SIGMOD", "SIGMOD Conf."},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("groups = %v, want %v", got, want)
	}
}

func TestCaseInsensitive(t *testing.T) {
	l := NewLearner()
	l.Observe("english", "English")
	// Identical token sets — no rule, but Same still holds via equal cores.
	if !l.Same("ENGLISH", "english") {
		t.Fatal("case variants should share a core")
	}
}
