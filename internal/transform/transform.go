// Package transform implements the string-transformation learning that
// backs VisClean's attribute standardization, in the spirit of the
// unsupervised string transformation learner the paper builds on
// (Deng et al., "Unsupervised String Transformation Learning for Entity
// Consolidation", ICDE 2019 — the paper's [11]).
//
// The learner observes approved value equivalences ("ACM SIGMOD" ≈
// "SIGMOD") and induces token-level deletion rules: when one value's
// token set contains the other's, the surplus tokens are evidence of
// *decorative* tokens for the column ("acm", "conf", "13"). Two values
// whose non-decorative cores coincide are then predicted equivalent even
// if that specific pair was never approved — one answer generalizes to a
// whole family of spellings, which is what makes a ~15-question budget
// able to standardize hundreds of variants.
//
// Rules are scoped per column (a Learner instance per column): "13" may
// be decoration in a venue column and meaningful in a jersey-number
// column.
package transform

import (
	"sort"
	"strings"

	"visclean/internal/stringsim"
)

// Learner accumulates equivalence examples and induces deletion rules.
type Learner struct {
	// decorative maps token -> number of approvals that evidenced it.
	decorative map[string]int
	// MinSupport is how many independent approvals must evidence a token
	// before it is treated as decorative. 1 (the default) follows the
	// paper's aggressive single-example generalization; raising it trades
	// recall for safety under noisy approvals.
	MinSupport int
}

// NewLearner returns an empty learner with MinSupport 1.
func NewLearner() *Learner {
	return &Learner{decorative: map[string]int{}, MinSupport: 1}
}

// Observe records an approved equivalence between two spellings. Only
// containment-related pairs yield rules: "VLDB" ≈ "Very Large Data
// Bases" shares no tokens and teaches nothing token-wise (such pairs
// still standardize via their explicit approval).
func (l *Learner) Observe(v1, v2 string) {
	t1 := stringsim.TokenSet(v1)
	t2 := stringsim.TokenSet(v2)
	switch {
	case subset(t1, t2):
		l.addSurplus(t2, t1)
	case subset(t2, t1):
		l.addSurplus(t1, t2)
	}
}

func (l *Learner) addSurplus(from, minus map[string]struct{}) {
	for t := range from {
		if _, keep := minus[t]; !keep {
			l.decorative[t]++
		}
	}
}

// IsDecorative reports whether a token has reached MinSupport evidence.
func (l *Learner) IsDecorative(token string) bool {
	min := l.MinSupport
	if min < 1 {
		min = 1
	}
	return l.decorative[strings.ToLower(token)] >= min
}

// Decorative returns the currently learned decorative tokens, sorted.
func (l *Learner) Decorative() []string {
	min := l.MinSupport
	if min < 1 {
		min = 1
	}
	out := make([]string, 0, len(l.decorative))
	for t, n := range l.decorative {
		if n >= min {
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out
}

// Core returns the canonical signature of a value: its non-decorative
// tokens, sorted and joined. An empty core means every token was
// decoration; such values never generalize (nothing to anchor on).
func (l *Learner) Core(v string) string {
	var core []string
	for t := range stringsim.TokenSet(v) {
		if !l.IsDecorative(t) {
			core = append(core, t)
		}
	}
	sort.Strings(core)
	return strings.Join(core, " ")
}

// Same predicts whether two values denote the same attribute entity
// under the learned rules.
func (l *Learner) Same(v1, v2 string) bool {
	c1 := l.Core(v1)
	if c1 == "" {
		return false
	}
	return c1 == l.Core(v2)
}

// Groups partitions the given values by core signature, dropping
// singleton groups and empty cores. Each group is sorted; groups are
// ordered by their first member. The pipeline merges each group into one
// synonym class (subject to user cannot-links).
func (l *Learner) Groups(values []string) [][]string {
	byCore := map[string][]string{}
	for _, v := range values {
		core := l.Core(v)
		if core == "" {
			continue
		}
		byCore[core] = append(byCore[core], v)
	}
	var out [][]string
	for _, group := range byCore {
		if len(group) < 2 {
			continue
		}
		sort.Strings(group)
		out = append(out, group)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

func subset(a, b map[string]struct{}) bool {
	if len(a) == 0 || len(a) > len(b) {
		return false
	}
	for t := range a {
		if _, ok := b[t]; !ok {
			return false
		}
	}
	return true
}
