package cqgselect

import (
	"sort"

	"visclean/internal/dataset"
	"visclean/internal/erg"
)

// BBOptions tunes the branch-and-bound search.
type BBOptions struct {
	// Alpha > 1 turns the search into the α-approximation of [21]: a
	// branch is pruned when its upper bound cannot beat α times the
	// incumbent, guaranteeing Benefit ≥ OPT/α. Alpha <= 1 (or 0) is the
	// exact search.
	Alpha float64
	// MaxExpansions caps the number of search-tree expansions; 0 means
	// unbounded. When hit, the incumbent is returned with Exhausted set.
	// The paper observes B&B is impractical for k > 10; this cap keeps
	// the efficiency benchmarks bounded while preserving the trend.
	MaxExpansions int
}

// BranchAndBound finds the heaviest connected k-subgraph of the ERG by
// enumerating connected induced subgraphs exactly once (ESU-style
// canonical enumeration rooted at each vertex) and pruning with an
// admissible bound: current benefit + the top remaining edge benefits
// that could still fit + the top remaining vertex-repair benefits.
func BranchAndBound(g *erg.Graph, k int, opts BBOptions) Result {
	n := g.NumVertices()
	if n == 0 {
		return Result{}
	}
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	s := &bbSearch{g: g, k: k, opts: opts}
	s.prepare()

	verts := g.Vertices()
	for root := 0; root < n && !s.done; root++ {
		v := verts[root]
		ext := []dataset.TupleID{}
		for _, nb := range g.Neighbors(v) {
			if s.order[nb] > root {
				ext = append(ext, nb)
			}
		}
		cur := 0.0
		if r := g.Repair(v); r != nil {
			cur = r.Benefit
		}
		s.extend([]dataset.TupleID{v}, ext, root, cur)
	}
	res := s.best
	res.Exhausted = s.done
	sort.Slice(res.Vertices, func(a, b int) bool { return res.Vertices[a] < res.Vertices[b] })
	return res
}

// AlphaBB is the α-approximation convenience wrapper used by the
// experiments (5-B&B, 10-B&B).
func AlphaBB(g *erg.Graph, k int, alpha float64, maxExpansions int) Result {
	return BranchAndBound(g, k, BBOptions{Alpha: alpha, MaxExpansions: maxExpansions})
}

type bbSearch struct {
	g    *erg.Graph
	k    int
	opts BBOptions

	order      map[dataset.TupleID]int // vertex id -> enumeration index
	edgePrefix []float64               // prefix sums of edge benefits desc
	repPrefix  []float64               // prefix sums of repair benefits desc
	best       Result
	haveBest   bool
	expansions int
	done       bool // expansion budget exhausted
}

func (s *bbSearch) prepare() {
	s.order = make(map[dataset.TupleID]int, s.g.NumVertices())
	for i, v := range s.g.Vertices() {
		s.order[v] = i
	}
	benefits := make([]float64, 0, s.g.NumEdges())
	for i := 0; i < s.g.NumEdges(); i++ {
		if b := s.g.Edge(i).Benefit; b > 0 {
			benefits = append(benefits, b)
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(benefits)))
	s.edgePrefix = prefixSums(benefits)

	var reps []float64
	for _, r := range s.g.Repairs() {
		if r.Benefit > 0 {
			reps = append(reps, r.Benefit)
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(reps)))
	s.repPrefix = prefixSums(reps)
}

func prefixSums(vals []float64) []float64 {
	out := make([]float64, len(vals)+1)
	for i, v := range vals {
		out[i+1] = out[i] + v
	}
	return out
}

// bound returns an upper bound on the benefit of any k-superset of S.
func (s *bbSearch) bound(current float64, size int) float64 {
	slots := s.k - size
	maxEdges := s.k * (s.k - 1) / 2 // ≤ C(k,2) edges in the final subgraph
	addEdges := maxEdges
	if addEdges >= len(s.edgePrefix) {
		addEdges = len(s.edgePrefix) - 1
	}
	addReps := slots
	if addReps >= len(s.repPrefix) {
		addReps = len(s.repPrefix) - 1
	}
	return current + s.edgePrefix[addEdges] + s.repPrefix[addReps]
}

func (s *bbSearch) record(set []dataset.TupleID, benefit float64) {
	if !s.haveBest || benefit > s.best.Benefit {
		s.best = Result{Vertices: append([]dataset.TupleID(nil), set...), Benefit: benefit}
		s.haveBest = true
	}
}

// addBenefit is the benefit delta of adding u to set: u's repair benefit
// plus the benefits of edges joining u to set members.
func (s *bbSearch) addBenefit(set []dataset.TupleID, u dataset.TupleID) float64 {
	delta := 0.0
	if r := s.g.Repair(u); r != nil {
		delta = r.Benefit
	}
	inSet := make(map[dataset.TupleID]struct{}, len(set))
	for _, v := range set {
		inSet[v] = struct{}{}
	}
	for _, ei := range s.g.IncidentEdges(u) {
		e := s.g.Edge(ei)
		other := e.A
		if other == u {
			other = e.B
		}
		if _, ok := inSet[other]; ok {
			delta += e.Benefit
		}
	}
	return delta
}

// extend grows the connected set S following Wernicke's ESU enumeration:
// only vertices ordered after the root may join, and a branch's new
// extension candidates are the chosen vertex's *exclusive* neighbours
// (outside S ∪ N(S)), so every connected induced subgraph is generated
// exactly once. cur is S's benefit, maintained incrementally.
func (s *bbSearch) extend(set, ext []dataset.TupleID, root int, cur float64) {
	if s.done {
		return
	}
	s.expansions++
	if s.opts.MaxExpansions > 0 && s.expansions > s.opts.MaxExpansions {
		s.done = true
		return
	}
	// Record every set (partial ones too) so sparse graphs without any
	// k-subgraph still yield the best smaller CQG.
	s.record(set, cur)
	if len(set) == s.k || len(ext) == 0 {
		return
	}
	// Prune by bound. Exact search prunes branches that cannot beat the
	// incumbent; the α-approximation prunes any branch whose bound is at
	// most α·incumbent, which guarantees incumbent ≥ OPT/α.
	threshold := s.best.Benefit
	if s.opts.Alpha > 1 {
		threshold = s.best.Benefit * s.opts.Alpha
	}
	if s.haveBest && s.bound(cur, len(set)) <= threshold {
		return
	}

	// excluded = S ∪ N(S): candidates already reachable from S belong to
	// earlier branches.
	excl := make(map[dataset.TupleID]struct{}, len(set)*3)
	for _, v := range set {
		excl[v] = struct{}{}
		for _, nb := range s.g.Neighbors(v) {
			excl[nb] = struct{}{}
		}
	}
	for i, u := range ext {
		newExt := append([]dataset.TupleID(nil), ext[i+1:]...)
		seen := make(map[dataset.TupleID]struct{}, len(newExt))
		for _, w := range newExt {
			seen[w] = struct{}{}
		}
		for _, w := range s.g.Neighbors(u) {
			if s.order[w] <= root {
				continue
			}
			if _, ok := excl[w]; ok {
				continue
			}
			if _, ok := seen[w]; ok {
				continue
			}
			newExt = append(newExt, w)
			seen[w] = struct{}{}
		}
		s.extend(append(set, u), newExt, root, cur+s.addBenefit(set, u))
		if s.done {
			return
		}
	}
}
