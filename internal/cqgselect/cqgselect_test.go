package cqgselect

import (
	"math"
	"math/rand"
	"testing"

	"visclean/internal/dataset"
	"visclean/internal/erg"
)

func ids(ns ...int) []dataset.TupleID {
	out := make([]dataset.TupleID, len(ns))
	for i, n := range ns {
		out[i] = dataset.TupleID(n)
	}
	return out
}

// fig7 builds the ERG of the paper's Fig 7(b): vertices A..F (1..6) with
// the benefit-weighted edges of Example 6.
func fig7(t testing.TB) *erg.Graph {
	g := erg.MustNew(ids(1, 2, 3, 4, 5, 6)) // A B C D E F
	edges := []struct {
		a, b int
		w    float64
	}{
		{2, 5, 0.9}, // B-E
		{2, 3, 0.8}, // B-C
		{3, 5, 0.7}, // C-E
		{4, 6, 0.6}, // D-F
		{1, 5, 0.5}, // A-E
		{1, 2, 0.4}, // A-B
		{5, 6, 0.3}, // E-F
		{3, 4, 0.2}, // C-D
	}
	for _, e := range edges {
		if err := g.AddEdge(erg.Edge{
			A: dataset.TupleID(e.a), B: dataset.TupleID(e.b),
			HasT: true, PT: e.w, Benefit: e.w,
		}); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func benefitOf(g *erg.Graph, vs []dataset.TupleID) float64 { return g.SubgraphBenefit(vs) }

func TestGSSOnFig7(t *testing.T) {
	g := fig7(t)
	res := GSS(g, 4)
	// Example 6 selects {A, B, C, E} (Fig 7c) with benefit
	// 0.9+0.8+0.7+0.5+0.4 = 3.3.
	want := ids(1, 2, 3, 5)
	if len(res.Vertices) != 4 {
		t.Fatalf("vertices = %v", res.Vertices)
	}
	for i, v := range want {
		if res.Vertices[i] != v {
			t.Fatalf("vertices = %v, want %v", res.Vertices, want)
		}
	}
	if math.Abs(res.Benefit-3.3) > 1e-12 {
		t.Fatalf("benefit = %v, want 3.3", res.Benefit)
	}
	if !g.Connected(res.Vertices) {
		t.Fatal("GSS result not connected")
	}
}

func TestBBOnFig7MatchesBruteForce(t *testing.T) {
	g := fig7(t)
	res := BranchAndBound(g, 4, BBOptions{})
	if res.Exhausted {
		t.Fatal("tiny search exhausted budget")
	}
	best := bruteForceBest(g, 4)
	if math.Abs(res.Benefit-best) > 1e-12 {
		t.Fatalf("B&B benefit = %v, brute force %v", res.Benefit, best)
	}
	if !g.Connected(res.Vertices) {
		t.Fatal("B&B result not connected")
	}
}

// bruteForceBest enumerates all vertex subsets of size <= k and returns
// the best connected benefit.
func bruteForceBest(g *erg.Graph, k int) float64 {
	verts := g.Vertices()
	n := len(verts)
	best := 0.0
	for mask := 1; mask < 1<<n; mask++ {
		var vs []dataset.TupleID
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				vs = append(vs, verts[i])
			}
		}
		if len(vs) > k || !g.Connected(vs) {
			continue
		}
		if b := g.SubgraphBenefit(vs); b > best {
			best = b
		}
	}
	return best
}

func TestBBExactOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(6)
		g := randomERG(rng, n, 0.4)
		k := 2 + rng.Intn(3)
		res := BranchAndBound(g, k, BBOptions{})
		want := bruteForceBest(g, k)
		if math.Abs(res.Benefit-want) > 1e-9 {
			t.Fatalf("trial %d: B&B = %v, brute force = %v (n=%d k=%d)", trial, res.Benefit, want, n, k)
		}
	}
}

func randomERG(rng *rand.Rand, n int, p float64) *erg.Graph {
	vs := make([]dataset.TupleID, n)
	for i := range vs {
		vs[i] = dataset.TupleID(i + 1)
	}
	g := erg.MustNew(vs)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				w := rng.Float64()
				_ = g.AddEdge(erg.Edge{A: vs[i], B: vs[j], HasT: true, PT: w, Benefit: w})
			}
		}
	}
	// Sprinkle vertex repairs.
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.3 {
			_ = g.SetRepair(erg.VertexRepair{ID: vs[i], Kind: erg.Outlier, Benefit: rng.Float64() / 2})
		}
	}
	return g
}

func TestHierarchyBBGeqGSSGeqNothing(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 20; trial++ {
		g := randomERG(rng, 12, 0.3)
		k := 4
		bb := BranchAndBound(g, k, BBOptions{})
		gssRes := GSS(g, k)
		if gssRes.Benefit > bb.Benefit+1e-9 {
			t.Fatalf("trial %d: GSS %v beat exact B&B %v", trial, gssRes.Benefit, bb.Benefit)
		}
		if len(gssRes.Vertices) > 0 && !g.Connected(gssRes.Vertices) {
			t.Fatalf("trial %d: GSS disconnected %v", trial, gssRes.Vertices)
		}
	}
}

func TestAlphaBBGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	alpha := 5.0
	for trial := 0; trial < 20; trial++ {
		g := randomERG(rng, 10, 0.4)
		k := 4
		exact := BranchAndBound(g, k, BBOptions{})
		approx := AlphaBB(g, k, alpha, 0)
		if approx.Benefit < exact.Benefit/alpha-1e-9 {
			t.Fatalf("trial %d: α-B&B %v below OPT/α = %v", trial, approx.Benefit, exact.Benefit/alpha)
		}
	}
}

func TestBBExpansionBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	g := randomERG(rng, 40, 0.3)
	res := BranchAndBound(g, 8, BBOptions{MaxExpansions: 50})
	if !res.Exhausted {
		t.Fatal("expected budget exhaustion")
	}
	if len(res.Vertices) == 0 {
		t.Fatal("budgeted search returned nothing")
	}
	if !g.Connected(res.Vertices) {
		t.Fatal("budgeted result not connected")
	}
}

func TestGSSPlusPrunesCertainEdges(t *testing.T) {
	g := erg.MustNew(ids(1, 2, 3, 4))
	// One certain edge (p=0.95) with huge benefit, a chain of uncertain
	// edges with small benefit. GSS+ must ignore the certain edge.
	mustAdd(t, g, erg.Edge{A: 1, B: 2, HasT: true, PT: 0.95, Benefit: 10})
	mustAdd(t, g, erg.Edge{A: 2, B: 3, HasT: true, PT: 0.5, Benefit: 1})
	mustAdd(t, g, erg.Edge{A: 3, B: 4, HasT: true, PT: 0.6, Benefit: 1})
	res := GSSPlus(g, 2, GSSPlusOptions{})
	for _, v := range res.Vertices {
		if v == 1 {
			t.Fatalf("pruned edge's endpoint selected: %v", res.Vertices)
		}
	}
}

func mustAdd(t *testing.T, g *erg.Graph, e erg.Edge) {
	t.Helper()
	if err := g.AddEdge(e); err != nil {
		t.Fatal(err)
	}
}

func TestGSSPlusEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	g := randomERG(rng, 60, 0.2)
	full := GSS(g, 5)
	early := GSSPlus(g, 5, GSSPlusOptions{PruneLow: 0, PruneHigh: 1, EarlyStop: 1})
	// Early stop may be worse but never better than full GSS with the
	// same (unpruned) edge set... it can differ; just sanity-check shape.
	if len(early.Vertices) == 0 {
		t.Fatal("early-stop returned nothing")
	}
	if len(early.Vertices) > 5 || len(full.Vertices) > 5 {
		t.Fatal("k violated")
	}
	if !g.Connected(early.Vertices) {
		t.Fatal("early-stop result not connected")
	}
}

func TestGSSSparseFallbacks(t *testing.T) {
	// Graph with a single edge but k=4: no set ever reaches k; the best
	// partial set must be returned.
	g := erg.MustNew(ids(1, 2, 3))
	mustAdd(t, g, erg.Edge{A: 1, B: 2, HasT: true, PT: 0.5, Benefit: 0.7})
	res := GSS(g, 4) // k clamps to 3, still unreachable
	if len(res.Vertices) != 2 || res.Benefit != 0.7 {
		t.Fatalf("sparse fallback = %+v", res)
	}

	// Edgeless graph with a repair: single best vertex.
	g2 := erg.MustNew(ids(1, 2))
	if err := g2.SetRepair(erg.VertexRepair{ID: 2, Kind: erg.Missing, Benefit: 0.4}); err != nil {
		t.Fatal(err)
	}
	res2 := GSS(g2, 3)
	if len(res2.Vertices) != 1 || res2.Vertices[0] != 2 {
		t.Fatalf("edgeless fallback = %+v", res2)
	}

	// Empty graph.
	res3 := GSS(erg.MustNew(nil), 3)
	if len(res3.Vertices) != 0 {
		t.Fatalf("empty graph result = %+v", res3)
	}
}

func TestRandomSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := randomERG(rng, 30, 0.2)
	for trial := 0; trial < 20; trial++ {
		res := Random(g, 6, rng)
		if len(res.Vertices) == 0 || len(res.Vertices) > 6 {
			t.Fatalf("random size = %d", len(res.Vertices))
		}
		if !g.Connected(res.Vertices) {
			t.Fatalf("random result not connected: %v", res.Vertices)
		}
	}
	// Deterministic given the same seed.
	r1 := Random(g, 6, rand.New(rand.NewSource(5)))
	r2 := Random(g, 6, rand.New(rand.NewSource(5)))
	if len(r1.Vertices) != len(r2.Vertices) {
		t.Fatal("random not deterministic under fixed seed")
	}
	for i := range r1.Vertices {
		if r1.Vertices[i] != r2.Vertices[i] {
			t.Fatal("random not deterministic under fixed seed")
		}
	}
}

// Property: on random graphs, GSS's k-subgraph benefit is within the
// exact optimum and at least the average random selection (statistical
// sanity of the greedy heuristic).
func TestGSSBeatsRandomOnAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	gssWins := 0
	trials := 20
	for trial := 0; trial < trials; trial++ {
		g := randomERG(rng, 25, 0.25)
		k := 5
		gssRes := GSS(g, k)
		randSum := 0.0
		const nrand = 10
		for i := 0; i < nrand; i++ {
			randSum += Random(g, k, rng).Benefit
		}
		if gssRes.Benefit >= randSum/nrand {
			gssWins++
		}
	}
	if gssWins < trials*3/4 {
		t.Fatalf("GSS beat average random only %d/%d times", gssWins, trials)
	}
}

func BenchmarkGSS(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomERG(rng, 200, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GSS(g, 10)
	}
}

func BenchmarkBranchAndBound(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomERG(rng, 40, 0.15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BranchAndBound(g, 5, BBOptions{MaxExpansions: 200000})
	}
}
