// Package cqgselect implements the composite-question selection
// algorithms of §V-B and the baselines of §VII:
//
//   - GSS: the paper's greedy subgraph selection (Algorithm 2),
//   - GSS+: GSS with edge pruning (keep only uncertain edges, weight in
//     [0.3, 0.7]) and early termination after m complete subgraphs,
//   - BranchAndBound: exact heaviest connected k-subgraph via canonical
//     connected-subgraph enumeration with an admissible upper bound [21],
//   - AlphaBB: the α-approximate variant of B&B,
//   - Random: a random connected k-subgraph.
//
// All return a Result whose vertex set induces a connected subgraph — a
// valid CQG per Definition 2.2.
package cqgselect

import (
	"sort"

	"visclean/internal/dataset"
	"visclean/internal/erg"
)

// Result is a selected CQG.
type Result struct {
	// Vertices of the CQG, sorted by tuple id. Empty when the ERG is
	// empty.
	Vertices []dataset.TupleID
	// Benefit is the subgraph's total benefit (see erg.SubgraphBenefit).
	Benefit float64
	// Exhausted is true when a budgeted search (B&B) hit its expansion
	// budget and returned the best subgraph found so far.
	Exhausted bool
}

// vertexSet is one entry of Algorithm 2's collection C.
type vertexSet struct {
	members []dataset.TupleID
}

// GSS runs Algorithm 2: sort edges by estimated benefit descending, grow
// vertex sets greedily, and whenever a set reaches k vertices evaluate
// the induced subgraph, keeping the best.
//
// Cases left unspecified by the paper's pseudocode (both endpoints
// already assigned) follow DESIGN.md: same set → skip; different sets →
// merge when the union stays within k, else skip.
func GSS(g *erg.Graph, k int) Result {
	return gss(g, k, gssOptions{})
}

// GSSPlusOptions tunes the optimized variant.
type GSSPlusOptions struct {
	// PruneLow/PruneHigh keep only edges whose question probability is
	// uncertain: an edge survives if p^t or p^a lies in [PruneLow,
	// PruneHigh]. Zero values select the paper's [0.3, 0.7].
	PruneLow, PruneHigh float64
	// EarlyStop terminates edge iteration after this many complete
	// k-subgraphs have been evaluated. Zero selects the paper's m = 20.
	EarlyStop int
}

// GSSPlus runs GSS with the §V-B optimizations: edge pruning to the
// uncertain band and early termination.
func GSSPlus(g *erg.Graph, k int, opts GSSPlusOptions) Result {
	if opts.PruneLow == 0 && opts.PruneHigh == 0 {
		opts.PruneLow, opts.PruneHigh = 0.3, 0.7
	}
	if opts.EarlyStop == 0 {
		opts.EarlyStop = 20
	}
	return gss(g, k, gssOptions{
		prune:     true,
		pruneLow:  opts.PruneLow,
		pruneHigh: opts.PruneHigh,
		earlyStop: opts.EarlyStop,
	})
}

type gssOptions struct {
	prune               bool
	pruneLow, pruneHigh float64
	earlyStop           int // 0 = never
}

func gss(g *erg.Graph, k int, opts gssOptions) Result {
	if g.NumVertices() == 0 {
		return Result{}
	}
	if k > g.NumVertices() {
		k = g.NumVertices()
	}
	if k < 1 {
		k = 1
	}

	// Collect candidate edge indices, optionally pruned to the uncertain
	// band (edges the machine cannot answer alone).
	edgeIdx := make([]int, 0, g.NumEdges())
	for i := 0; i < g.NumEdges(); i++ {
		if opts.prune && !uncertain(g.Edge(i), opts.pruneLow, opts.pruneHigh) {
			continue
		}
		edgeIdx = append(edgeIdx, i)
	}
	// Sort by descending sort weight (benefit + endpoint repairs),
	// deterministic tiebreak.
	sort.Slice(edgeIdx, func(a, b int) bool {
		wa, wb := g.EdgeSortWeight(edgeIdx[a]), g.EdgeSortWeight(edgeIdx[b])
		if wa != wb {
			return wa > wb
		}
		ea, eb := g.Edge(edgeIdx[a]), g.Edge(edgeIdx[b])
		if ea.A != eb.A {
			return ea.A < eb.A
		}
		return ea.B < eb.B
	})

	m := make(map[dataset.TupleID]*vertexSet)
	var best Result
	haveBest := false
	completed := 0

	evaluate := func(set *vertexSet) {
		benefit := g.SubgraphBenefit(set.members)
		if !haveBest || benefit > best.Benefit {
			vs := append([]dataset.TupleID(nil), set.members...)
			sort.Slice(vs, func(a, b int) bool { return vs[a] < vs[b] })
			best = Result{Vertices: vs, Benefit: benefit}
			haveBest = true
		}
	}

	for _, ei := range edgeIdx {
		e := g.Edge(ei)
		sa, sb := m[e.A], m[e.B]
		var target *vertexSet
		switch {
		case sa == nil && sb == nil: // Case 1
			target = &vertexSet{members: []dataset.TupleID{e.A, e.B}}
			m[e.A], m[e.B] = target, target
		case sa == nil: // Case 2: add A into B's set
			sb.members = append(sb.members, e.A)
			m[e.A] = sb
			target = sb
		case sb == nil: // Case 3: add B into A's set
			sa.members = append(sa.members, e.B)
			m[e.B] = sa
			target = sa
		case sa == sb:
			continue // internal edge; set unchanged
		default: // both assigned, different sets: merge if it fits
			if len(sa.members)+len(sb.members) > k {
				continue
			}
			if len(sa.members) < len(sb.members) {
				sa, sb = sb, sa
			}
			sa.members = append(sa.members, sb.members...)
			for _, v := range sb.members {
				m[v] = sa
			}
			target = sa
		}
		if len(target.members) == k {
			evaluate(target)
			completed++
			for _, v := range target.members {
				delete(m, v) // line 22: reset to null
			}
			if opts.earlyStop > 0 && completed >= opts.earlyStop {
				break
			}
		}
	}

	// Evaluate the partial (< k vertex) sets too and keep the overall
	// best: a two-vertex set holding one high-benefit question beats a
	// k-vertex subgraph of worthless edges. (A deviation from the
	// literal Algorithm 2, which only scores full k-sets; the user would
	// rather answer a small question worth something than a big one
	// worth nothing.) The distinct sets are collected out of the map and
	// sorted by a deterministic key before evaluation: evaluate keeps
	// the FIRST set at any given benefit (strict >), so ranging over the
	// map directly would break equal-benefit ties by map iteration order
	// — same seed, different CQG across runs.
	seen := make(map[*vertexSet]struct{}, len(m))
	partial := make([]*vertexSet, 0, len(m))
	for _, set := range m {
		if _, dup := seen[set]; dup {
			continue
		}
		seen[set] = struct{}{}
		partial = append(partial, set)
	}
	sort.Slice(partial, func(i, j int) bool {
		return lessMemberKey(partial[i].members, partial[j].members)
	})
	for _, set := range partial {
		evaluate(set)
	}
	if !haveBest {
		bestV := dataset.TupleID(-1)
		bestB := -1.0
		for _, v := range g.Vertices() {
			b := 0.0
			if r := g.Repair(v); r != nil {
				b = r.Benefit
			}
			if b > bestB {
				bestB, bestV = b, v
			}
		}
		if bestV >= 0 {
			return Result{Vertices: []dataset.TupleID{bestV}, Benefit: g.SubgraphBenefit([]dataset.TupleID{bestV})}
		}
		return Result{}
	}
	return growToK(g, best, k)
}

// lessMemberKey orders vertex sets by their sorted member ids,
// lexicographically — the deterministic tiebreak key for partial-set
// evaluation. Member slices arrive in insertion order, so compare
// sorted copies.
func lessMemberKey(a, b []dataset.TupleID) bool {
	as := append([]dataset.TupleID(nil), a...)
	bs := append([]dataset.TupleID(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := 0; i < len(as) && i < len(bs); i++ {
		if as[i] != bs[i] {
			return as[i] < bs[i]
		}
	}
	return len(as) < len(bs)
}

// growToK greedily extends an undersized CQG to k vertices, one best
// marginal-benefit neighbour at a time, keeping it connected. A partial
// set that won on density of benefit should still ask a full-size
// composite question — the user's unit cost already covers k vertices.
func growToK(g *erg.Graph, res Result, k int) Result {
	if len(res.Vertices) >= k {
		return res
	}
	in := make(map[dataset.TupleID]struct{}, k)
	for _, v := range res.Vertices {
		in[v] = struct{}{}
	}
	vertices := append([]dataset.TupleID(nil), res.Vertices...)
	for len(vertices) < k {
		bestV := dataset.TupleID(-1)
		bestGain := -1.0
		for _, v := range vertices {
			for _, nb := range g.Neighbors(v) {
				if _, dup := in[nb]; dup {
					continue
				}
				gain := marginalGain(g, in, nb)
				if gain > bestGain || (gain == bestGain && (bestV < 0 || nb < bestV)) {
					bestGain, bestV = gain, nb
				}
			}
		}
		if bestV < 0 {
			break // component exhausted
		}
		in[bestV] = struct{}{}
		vertices = append(vertices, bestV)
	}
	sort.Slice(vertices, func(a, b int) bool { return vertices[a] < vertices[b] })
	return Result{Vertices: vertices, Benefit: g.SubgraphBenefit(vertices)}
}

// marginalGain is the benefit delta of adding v to the set: its repair
// benefit plus the benefits of edges into the set.
func marginalGain(g *erg.Graph, in map[dataset.TupleID]struct{}, v dataset.TupleID) float64 {
	gain := 0.0
	if r := g.Repair(v); r != nil {
		gain += r.Benefit
	}
	for _, ei := range g.IncidentEdges(v) {
		e := g.Edge(ei)
		other := e.A
		if other == v {
			other = e.B
		}
		if _, ok := in[other]; ok {
			gain += e.Benefit
		}
	}
	return gain
}

// uncertain reports whether an edge is worth asking a human about under
// GSS+'s pruning rule. T-questions outside the [lo, hi] band are prunable
// — the matching model can answer them itself. A-questions are never
// pruned by confidence: an attribute transformation is only ever applied
// through an (explicit or implied) approval, so however confident the
// prior, pruning the question would leave the standardization undone.
func uncertain(e *erg.Edge, lo, hi float64) bool {
	if e.HasA {
		return true
	}
	if e.HasT && e.PT >= lo && e.PT <= hi {
		return true
	}
	// Edges with neither question payload (synthetic benches) fall back
	// to the benefit value itself.
	if !e.HasT && !e.HasA {
		return e.Benefit >= lo && e.Benefit <= hi
	}
	return false
}
