package cqgselect

import (
	"math/rand"
	"sort"

	"visclean/internal/dataset"
	"visclean/internal/erg"
)

// Random selects a random connected k-subgraph (the paper's Random
// baseline): a uniformly random start vertex grown by repeatedly adding a
// uniformly random frontier neighbour. Deterministic given rng's seed.
func Random(g *erg.Graph, k int, rng *rand.Rand) Result {
	verts := g.Vertices()
	if len(verts) == 0 {
		return Result{}
	}
	if k > len(verts) {
		k = len(verts)
	}
	if k < 1 {
		k = 1
	}
	start := verts[rng.Intn(len(verts))]
	set := map[dataset.TupleID]struct{}{start: {}}
	frontier := []dataset.TupleID{}
	push := func(v dataset.TupleID) {
		for _, nb := range g.Neighbors(v) {
			if _, in := set[nb]; in {
				continue
			}
			frontier = append(frontier, nb)
		}
	}
	push(start)
	for len(set) < k && len(frontier) > 0 {
		i := rng.Intn(len(frontier))
		v := frontier[i]
		frontier = append(frontier[:i], frontier[i+1:]...)
		if _, in := set[v]; in {
			continue
		}
		set[v] = struct{}{}
		push(v)
	}
	out := make([]dataset.TupleID, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return Result{Vertices: out, Benefit: g.SubgraphBenefit(out)}
}
