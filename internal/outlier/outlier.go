// Package outlier implements the paper's kNN outlier detector (§IV, Q_O,
// following Ramaswamy et al. [31]): the outlier score of a value v in
// column Y is the k-th smallest absolute difference between v and every
// other value; the values with the largest scores become O-questions.
// Repair suggestions reuse the kNN imputation logic so that a suspected
// outlier (e.g. the decimal-shifted 1740 in the paper's Table I) is
// replaced by the consensus of the most similar records.
package outlier

import (
	"sort"

	"visclean/internal/dataset"
	"visclean/internal/impute"
	"visclean/internal/knn"
)

// DefaultK is the neighbourhood size for the score.
const DefaultK = 5

// Detection is one suspected outlier with its score and suggested repair.
type Detection struct {
	ID     dataset.TupleID
	Value  float64 // current (suspect) value
	Score  float64 // k-th nearest absolute difference; larger = more anomalous
	Repair float64 // suggested replacement value
	HasFix bool    // false when no neighbour could produce a repair
}

// Detect scores every non-null value of column yCol and returns the top
// maxResults detections in descending score order (ties by tuple id).
// k <= 0 selects DefaultK; maxResults <= 0 returns all scored values.
//
// The 1-D structure makes exact kNN cheap: after sorting the values, each
// value's k nearest neighbours lie in a window around its sorted
// position, found by two-pointer expansion — O(n log n + n·k) overall.
func Detect(t *dataset.Table, yCol, k, maxResults int) []Detection {
	return DetectWithIndex(t, yCol, k, maxResults, nil)
}

// DetectWithIndex is Detect over a prebuilt kNN index (its skip column
// must be yCol), so repair suggestion shares the tokenization the
// imputer already paid for instead of re-scanning the table. A nil index
// is built on demand.
func DetectWithIndex(t *dataset.Table, yCol, k, maxResults int, ix *knn.Index) []Detection {
	if k <= 0 {
		k = DefaultK
	}
	out := Scores(t, yCol, k)
	if maxResults > 0 && len(out) > maxResults {
		out = out[:maxResults]
	}
	// Repair suggestions are expensive (kNN over the whole table), so
	// compute them only for the detections actually returned.
	if ix == nil {
		ix = knn.NewIndex(t, yCol)
	}
	im := impute.NewWithIndex(ix, k)
	for i := range out {
		if s, ok := im.SuggestFor(out[i].ID); ok {
			out[i].Repair = s.Value
			out[i].HasFix = true
		}
	}
	return out
}

// Scores scores every non-null value of column yCol and returns all
// detections in descending score order (ties by tuple id), without
// repair suggestions (Repair/HasFix are zero). Callers that only need
// the score distribution — e.g. the pipeline's anomaly-gate median —
// use this and compute repairs lazily for the detections they keep.
// k <= 0 selects DefaultK.
func Scores(t *dataset.Table, yCol, k int) []Detection {
	if k <= 0 {
		k = DefaultK
	}
	vals, ids := t.NumericColumn(yCol)
	n := len(vals)
	if n < 2 {
		return nil
	}
	if k >= n {
		k = n - 1
	}

	sorted := make([]elem, n)
	for i := range vals {
		sorted[i] = elem{v: vals[i], id: ids[i]}
	}
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].v != sorted[b].v {
			return sorted[a].v < sorted[b].v
		}
		return sorted[a].id < sorted[b].id
	})

	out := make([]Detection, 0, n)
	for i, e := range sorted {
		out = append(out, Detection{ID: e.id, Value: e.v, Score: kthNearest(sorted, i, k)})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// elem pairs a value with its tuple id for sorting.
type elem struct {
	v  float64
	id dataset.TupleID
}

// kthNearest returns the k-th smallest |v_i − v_j| over j ≠ i, walking
// outward from position i in the sorted slice.
func kthNearest(sorted []elem, i, k int) float64 {
	lo, hi := i-1, i+1
	var dist float64
	for found := 0; found < k; found++ {
		switch {
		case lo >= 0 && hi < len(sorted):
			dl := sorted[i].v - sorted[lo].v
			dr := sorted[hi].v - sorted[i].v
			if dl <= dr {
				dist = dl
				lo--
			} else {
				dist = dr
				hi++
			}
		case lo >= 0:
			dist = sorted[i].v - sorted[lo].v
			lo--
		case hi < len(sorted):
			dist = sorted[hi].v - sorted[i].v
			hi++
		default:
			return dist
		}
	}
	return dist
}
