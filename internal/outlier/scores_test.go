package outlier

import (
	"testing"

	"visclean/internal/dataset"
	"visclean/internal/knn"
)

// TestScoresIsDetectWithoutTruncation pins the split introduced for the
// incremental detect path: Scores returns the full score distribution,
// and Detect's output is exactly its maxResults prefix with repairs
// attached.
func TestScoresIsDetectWithoutTruncation(t *testing.T) {
	tbl := citationsTable(t, 174, 1740, 174, 15, 13, 13, 55, 42, 44)
	const k = 3
	all := Scores(tbl, 1, k)
	if len(all) != 9 {
		t.Fatalf("Scores returned %d detections, want one per non-null value", len(all))
	}
	for i := 1; i < len(all); i++ {
		prev, cur := all[i-1], all[i]
		if cur.Score > prev.Score || (cur.Score == prev.Score && cur.ID < prev.ID) {
			t.Fatalf("Scores not ordered at %d: %+v then %+v", i, prev, cur)
		}
	}
	for _, d := range all {
		if d.HasFix {
			t.Fatalf("Scores attached a repair: %+v", d)
		}
	}

	ix := knn.NewIndex(tbl, 1)
	dets := DetectWithIndex(tbl, 1, k, 4, ix)
	if len(dets) != 4 {
		t.Fatalf("Detect returned %d, want 4", len(dets))
	}
	for i, d := range dets {
		if d.ID != all[i].ID || d.Value != all[i].Value || d.Score != all[i].Score {
			t.Fatalf("Detect[%d] = %+v diverges from Scores[%d] = %+v", i, d, i, all[i])
		}
	}
}

// TestScoresSkipsNulls: null measure cells are not scored.
func TestScoresSkipsNulls(t *testing.T) {
	tbl := citationsTable(t, 174, 1740, 174)
	tbl.MustAppend([]dataset.Value{dataset.Str("missing"), dataset.Null(dataset.Float)})
	got := Scores(tbl, 1, 2)
	if len(got) != 3 {
		t.Fatalf("Scores = %d, want 3", len(got))
	}
	for _, d := range got {
		v, ok := tbl.GetByID(d.ID, 1)
		if !ok {
			t.Fatalf("scored unknown tuple: %+v", d)
		}
		if _, ok := v.Float(); !ok {
			t.Fatalf("null cell scored: %+v", d)
		}
	}
}
