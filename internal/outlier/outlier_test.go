package outlier

import (
	"math/rand"
	"sort"
	"testing"

	"visclean/internal/dataset"
)

func citationsTable(t testing.TB, vals ...float64) *dataset.Table {
	tbl := dataset.NewTable(dataset.Schema{
		{Name: "Title", Kind: dataset.String},
		{Name: "Citations", Kind: dataset.Float},
	})
	for i, v := range vals {
		title := dataset.Str("paper" + string(rune('a'+i%26)))
		tbl.MustAppend([]dataset.Value{title, dataset.Num(v)})
	}
	return tbl
}

func TestDetectFindsDecimalShiftOutlier(t *testing.T) {
	// The paper's 1740-vs-174 outlier: one wild value among clustered ones.
	tbl := citationsTable(t, 174, 1740, 174, 15, 13, 13, 55, 42, 44)
	dets := Detect(tbl, 1, 3, 1)
	if len(dets) != 1 {
		t.Fatalf("detections = %v", dets)
	}
	if dets[0].Value != 1740 {
		t.Fatalf("top outlier value = %v, want 1740", dets[0].Value)
	}
	if dets[0].Score <= 0 {
		t.Fatalf("score = %v", dets[0].Score)
	}
	if !dets[0].HasFix {
		t.Fatal("expected a repair suggestion")
	}
	if dets[0].Repair >= 1740 {
		t.Fatalf("repair %v should be far below the outlier", dets[0].Repair)
	}
}

func TestDetectScoreIsKthNearest(t *testing.T) {
	// Values 0, 10, 20, 100 with k=2:
	// score(0)   = 2nd nearest = |0-20|  = 20
	// score(10)  = 2nd nearest = |10-20| = 10 (nearest 0 at 10, then 20 at 10) -> 10
	// score(20)  = 2nd nearest = 20
	// score(100) = 2nd nearest = 90
	tbl := citationsTable(t, 0, 10, 20, 100)
	dets := Detect(tbl, 1, 2, 0)
	byVal := map[float64]float64{}
	for _, d := range dets {
		byVal[d.Value] = d.Score
	}
	want := map[float64]float64{0: 20, 10: 10, 20: 20, 100: 90}
	for v, s := range want {
		if byVal[v] != s {
			t.Errorf("score(%v) = %v, want %v", v, byVal[v], s)
		}
	}
	if dets[0].Value != 100 {
		t.Fatalf("top detection = %v, want 100", dets[0].Value)
	}
}

func TestDetectTinyInputs(t *testing.T) {
	if dets := Detect(citationsTable(t), 1, 5, 0); dets != nil {
		t.Fatalf("empty column detections = %v", dets)
	}
	if dets := Detect(citationsTable(t, 5), 1, 5, 0); dets != nil {
		t.Fatalf("single value detections = %v", dets)
	}
	// Two values: k clamps to 1.
	dets := Detect(citationsTable(t, 5, 8), 1, 5, 0)
	if len(dets) != 2 || dets[0].Score != 3 {
		t.Fatalf("two-value detections = %v", dets)
	}
}

func TestDetectSkipsNulls(t *testing.T) {
	tbl := dataset.NewTable(dataset.Schema{
		{Name: "T", Kind: dataset.String},
		{Name: "Y", Kind: dataset.Float},
	})
	tbl.MustAppend([]dataset.Value{dataset.Str("a"), dataset.Num(1)})
	tbl.MustAppend([]dataset.Value{dataset.Str("b"), dataset.Null(dataset.Float)})
	tbl.MustAppend([]dataset.Value{dataset.Str("c"), dataset.Num(2)})
	dets := Detect(tbl, 1, 1, 0)
	if len(dets) != 2 {
		t.Fatalf("detections = %v", dets)
	}
}

func TestDetectDeterministicOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	vals := make([]float64, 50)
	for i := range vals {
		vals[i] = rng.Float64() * 100
	}
	tbl := citationsTable(t, vals...)
	d1 := Detect(tbl, 1, 5, 10)
	d2 := Detect(tbl, 1, 5, 10)
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatal("nondeterministic detection order")
		}
	}
	if !sort.SliceIsSorted(d1, func(a, b int) bool {
		if d1[a].Score != d1[b].Score {
			return d1[a].Score > d1[b].Score
		}
		return d1[a].ID < d1[b].ID
	}) {
		t.Fatal("detections not sorted by score desc")
	}
}

func TestKthNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(30)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(rng.Intn(100))
		}
		k := 1 + rng.Intn(n-1)
		tbl := citationsTable(t, vals...)
		dets := Detect(tbl, 1, k, 0)
		// Brute force per value.
		for _, d := range dets {
			var diffs []float64
			for _, v := range vals {
				diffs = append(diffs, absf(v-d.Value))
			}
			sort.Float64s(diffs)
			// diffs[0] is self (0); k-th nearest excluding self = diffs[k].
			want := diffs[k]
			if absf(d.Score-want) > 1e-9 {
				t.Fatalf("trial %d: score(%v) = %v, brute force %v (k=%d vals=%v)",
					trial, d.Value, d.Score, want, k, vals)
			}
		}
	}
}

func absf(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}
