// Package vql implements the paper's SQL-like Visualization Query
// Language (Fig 2): lexing, parsing into an AST, semantic validation
// against a table schema, and execution producing vis.Data.
//
// Concrete syntax (keywords are case-insensitive; clauses in brackets are
// optional):
//
//	VISUALIZE bar|pie
//	SELECT <x-column>, [SUM|AVG|COUNT] ( <y-column> ) | <y-column>
//	FROM <dataset>
//	[TRANSFORM GROUP BY <x-column> | BIN <x-column> BY INTERVAL <number>]
//	[WHERE <column> <op> <literal> [AND ...]]   op ∈ {=, <, <=, >=, >}
//	[SORT X|Y BY ASC|DESC]
//	[LIMIT <k>]
package vql

import "fmt"

// tokenKind enumerates lexical token classes.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString // quoted literal
	tokComma
	tokLParen
	tokRParen
	tokOp // =, <, <=, >=, >
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of query"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokComma:
		return "','"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokOp:
		return "operator"
	default:
		return fmt.Sprintf("tokenKind(%d)", int(k))
	}
}

// token is one lexical unit with its source position (byte offset).
type token struct {
	kind tokenKind
	text string
	pos  int
}

// ParseError reports a syntax or semantic error with its position.
type ParseError struct {
	Pos int
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("vql: at offset %d: %s", e.Pos, e.Msg)
}

func errf(pos int, format string, args ...any) error {
	return &ParseError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
