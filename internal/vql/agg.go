package vql

import "visclean/internal/dataset"

// aggState accumulates one group's aggregate. Null cells are skipped, so
// SUM undercounts, AVG shrinks its denominator and COUNT ignores them —
// the precise ways missing values corrupt a chart (§II-C iii).
type aggState struct {
	sum   float64
	count int // non-null cells seen
	rows  int // all rows routed to the group
}

func (a *aggState) add(v dataset.Value) {
	a.rows++
	if f, ok := v.Float(); ok {
		a.sum += f
		a.count++
	} else if !v.IsNull() {
		// Non-null string cell under COUNT: it still counts.
		a.count++
	}
}

// result produces the aggregate value; ok is false when the group has no
// usable cells (e.g. AVG over all-null values), in which case the group
// produces no mark.
func (a *aggState) result(agg Agg) (float64, bool) {
	switch agg {
	case AggSum:
		if a.count == 0 {
			return 0, false
		}
		return a.sum, true
	case AggAvg:
		if a.count == 0 {
			return 0, false
		}
		return a.sum / float64(a.count), true
	case AggCount:
		return float64(a.count), true
	default:
		return 0, false
	}
}
