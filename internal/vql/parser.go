package vql

import (
	"strconv"
	"strings"

	"visclean/internal/vis"
)

// Parse parses a VQL statement into a Query. It performs syntactic checks
// only; use Query.Validate with a schema for semantic checks.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if tok := p.peek(); tok.kind != tokEOF {
		return nil, errf(tok.pos, "unexpected %s %q after end of query", tok.kind, tok.text)
	}
	return q, nil
}

// MustParse is Parse for statically known-good queries (tests, the
// built-in experiment workload). It panics on error.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

// keyword consumes an identifier token matching kw case-insensitively.
func (p *parser) keyword(kw string) error {
	t := p.peek()
	if t.kind != tokIdent || !strings.EqualFold(t.text, kw) {
		return errf(t.pos, "expected %s, got %q", strings.ToUpper(kw), t.text)
	}
	p.next()
	return nil
}

func (p *parser) peekKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", errf(t.pos, "expected identifier, got %s", t.kind)
	}
	p.next()
	return t.text, nil
}

func (p *parser) number() (float64, error) {
	t := p.peek()
	if t.kind != tokNumber {
		return 0, errf(t.pos, "expected number, got %s %q", t.kind, t.text)
	}
	p.next()
	f, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, errf(t.pos, "bad number %q: %v", t.text, err)
	}
	return f, nil
}

func (p *parser) expect(kind tokenKind) (token, error) {
	t := p.peek()
	if t.kind != kind {
		return t, errf(t.pos, "expected %s, got %s %q", kind, t.kind, t.text)
	}
	p.next()
	return t, nil
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}

	if err := p.keyword("VISUALIZE"); err != nil {
		return nil, err
	}
	t := p.peek()
	switch {
	case p.peekKeyword("bar"):
		q.Chart = vis.Bar
		p.next()
	case p.peekKeyword("pie"):
		q.Chart = vis.Pie
		p.next()
	default:
		return nil, errf(t.pos, "expected chart type bar or pie, got %q", t.text)
	}

	if err := p.keyword("SELECT"); err != nil {
		return nil, err
	}
	x, err := p.ident()
	if err != nil {
		return nil, err
	}
	q.X = x
	if _, err := p.expect(tokComma); err != nil {
		return nil, err
	}
	if err := p.parseYExpr(q); err != nil {
		return nil, err
	}

	if err := p.keyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.ident()
	if err != nil {
		return nil, err
	}
	q.From = from

	if p.peekKeyword("TRANSFORM") {
		p.next()
		if err := p.parseTransform(q); err != nil {
			return nil, err
		}
	}
	if p.peekKeyword("WHERE") {
		p.next()
		if err := p.parseWhere(q); err != nil {
			return nil, err
		}
	}
	if p.peekKeyword("SORT") {
		p.next()
		if err := p.parseSort(q); err != nil {
			return nil, err
		}
	}
	if p.peekKeyword("LIMIT") {
		p.next()
		n, err := p.number()
		if err != nil {
			return nil, err
		}
		if n < 1 || n != float64(int(n)) {
			return nil, errf(p.toks[p.i-1].pos, "LIMIT must be a positive integer, got %v", n)
		}
		q.Limit = int(n)
	}
	return q, nil
}

func (p *parser) parseYExpr(q *Query) error {
	name, err := p.ident()
	if err != nil {
		return err
	}
	agg := AggNone
	switch strings.ToUpper(name) {
	case "SUM":
		agg = AggSum
	case "AVG":
		agg = AggAvg
	case "COUNT":
		agg = AggCount
	}
	if agg != AggNone && p.peek().kind == tokLParen {
		p.next()
		col, err := p.ident()
		if err != nil {
			return err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return err
		}
		q.Agg = agg
		q.Y = col
		return nil
	}
	q.Agg = AggNone
	q.Y = name
	return nil
}

func (p *parser) parseTransform(q *Query) error {
	t := p.peek()
	switch {
	case p.peekKeyword("GROUP"):
		p.next()
		if err := p.keyword("BY"); err != nil {
			return err
		}
		col, err := p.ident()
		if err != nil {
			return err
		}
		if col != q.X {
			return errf(t.pos, "TRANSFORM GROUP BY column %q must match SELECT x column %q", col, q.X)
		}
		q.Transform = TransformGroup
	case p.peekKeyword("BIN"):
		p.next()
		col, err := p.ident()
		if err != nil {
			return err
		}
		if col != q.X {
			return errf(t.pos, "TRANSFORM BIN column %q must match SELECT x column %q", col, q.X)
		}
		if err := p.keyword("BY"); err != nil {
			return err
		}
		if err := p.keyword("INTERVAL"); err != nil {
			return err
		}
		iv, err := p.number()
		if err != nil {
			return err
		}
		if iv <= 0 {
			return errf(t.pos, "BIN interval must be positive, got %v", iv)
		}
		q.Transform = TransformBin
		q.BinInterval = iv
	default:
		return errf(t.pos, "expected GROUP or BIN after TRANSFORM, got %q", t.text)
	}
	return nil
}

func (p *parser) parseWhere(q *Query) error {
	for {
		col, err := p.ident()
		if err != nil {
			return err
		}
		opTok, err := p.expect(tokOp)
		if err != nil {
			return err
		}
		var op Op
		switch opTok.text {
		case "=":
			op = OpEq
		case "<":
			op = OpLt
		case "<=":
			op = OpLe
		case ">=":
			op = OpGe
		case ">":
			op = OpGt
		}
		pred := Predicate{Column: col, Op: op}
		lit := p.peek()
		switch lit.kind {
		case tokNumber:
			f, err := p.number()
			if err != nil {
				return err
			}
			pred.IsNum = true
			pred.NumValue = f
		case tokString:
			p.next()
			pred.StrValue = lit.text
		case tokIdent:
			// Bare-word string literal, as the paper writes
			// "Venue = SIGMOD" without quotes.
			p.next()
			pred.StrValue = lit.text
		default:
			return errf(lit.pos, "expected literal after %s, got %s", opTok.text, lit.kind)
		}
		q.Where = append(q.Where, pred)
		if !p.peekKeyword("AND") {
			return nil
		}
		p.next()
	}
}

func (p *parser) parseSort(q *Query) error {
	t := p.peek()
	switch {
	case p.peekKeyword("X"):
		q.Sort = AxisX
	case p.peekKeyword("Y"):
		q.Sort = AxisY
	default:
		return errf(t.pos, "expected X or Y after SORT, got %q", t.text)
	}
	p.next()
	if err := p.keyword("BY"); err != nil {
		return err
	}
	d := p.peek()
	switch {
	case p.peekKeyword("ASC"):
		q.SortDesc = false
	case p.peekKeyword("DESC"):
		q.SortDesc = true
	default:
		return errf(d.pos, "expected ASC or DESC, got %q", d.text)
	}
	p.next()
	return nil
}
