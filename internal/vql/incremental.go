package vql

import (
	"fmt"
	"math"
	"sort"

	"visclean/internal/dataset"
	"visclean/internal/vis"
)

// This file implements the incremental query executor backing delta
// hypothesis pricing: the pipeline registers the base view's rows once,
// and each hypothetical repair is then evaluated as a (removed rows,
// added rows) delta instead of a full re-execution. The contract is
// bit-identity: Eval must return exactly the chart Execute would produce
// over the equivalent full row set — same points, same float bits, same
// order. Everything below is therefore arranged so that every float
// accumulation (per-group aggregation, first-appearance ordering,
// sorting) happens through the same code in the same order as Execute.

// IncRow is one logical row of the view the incremental executor runs
// over. Rank is the row's stable order key: rows execute in ascending
// Rank order, and a delta identifies removed rows by Rank. The pipeline
// uses the owning entity cluster's smallest tuple id, which is unique
// per cluster and reproduces the view's row order. Vals must not be
// mutated after registration.
type IncRow struct {
	Rank int64
	Vals []dataset.Value
}

// contrib is one row's pre-resolved effect on the chart.
type contrib struct {
	rank   int64
	routed bool          // passes WHERE and carries a usable X
	key    string        // group label (TransformGroup)
	bin    int64         // bin id (TransformBin)
	y      dataset.Value // value fed to the aggregate
	point  vis.Point     // direct mark (TransformNone)
	hasPt  bool
}

// contribRef is one aggregated contribution retained per group.
type contribRef struct {
	rank int64
	y    dataset.Value
}

// keyState is the materialized state of one group or bin.
type keyState struct {
	contribs  []contribRef // ascending rank = execution order
	firstRank int64        // rank of the first contributor (appearance order)
	bin       int64
	y         float64
	ok        bool
}

func (k *keyState) fold(agg Agg) {
	var st aggState
	for _, c := range k.contribs {
		st.add(c.y)
	}
	k.y, k.ok = st.result(agg)
	if len(k.contribs) > 0 {
		k.firstRank = k.contribs[0].rank
	}
}

// Incremental evaluates one query over a registered base row set plus
// per-call deltas. Construction costs one full pass; Eval costs
// O(delta + groups). An Incremental is immutable after construction, so
// concurrent Eval calls are safe.
type Incremental struct {
	q     *Query
	xi    int
	yi    int
	wcols []int

	rows    []contrib
	rankPos map[int64]int

	keys     map[string]*keyState // TransformGroup
	bins     map[int64]*keyState  // TransformBin
	keyOrder []*keyState          // appearance order (group) / bin order (bin)
	labelOf  map[*keyState]string // group label per state

	// basePts is the sorted+limited base chart, computed once at
	// construction through the general Eval path. The empty-delta fast
	// path (Base, and every hypothesis-decline fallback) copies it
	// instead of re-walking keyOrder and re-folding groups.
	basePts  []vis.Point
	baseDone bool
}

// NewIncremental validates the query against the schema and registers
// the base rows, which must arrive in strictly ascending Rank order (the
// order Execute would scan them in).
func (q *Query) NewIncremental(schema dataset.Schema, rows []IncRow) (*Incremental, error) {
	if err := q.Validate(schema); err != nil {
		return nil, err
	}
	inc := &Incremental{
		q:       q,
		xi:      schema.Index(q.X),
		yi:      schema.Index(q.Y),
		rankPos: make(map[int64]int, len(rows)),
	}
	inc.wcols = make([]int, len(q.Where))
	for k, p := range q.Where {
		inc.wcols[k] = schema.Index(p.Column)
	}

	inc.rows = make([]contrib, len(rows))
	for i, r := range rows {
		if i > 0 && rows[i-1].Rank >= r.Rank {
			return nil, fmt.Errorf("vql: incremental rows must have strictly ascending ranks (%d after %d)", r.Rank, rows[i-1].Rank)
		}
		inc.rows[i] = inc.contribution(r)
		inc.rankPos[r.Rank] = i
	}

	switch q.Transform {
	case TransformGroup:
		inc.keys = make(map[string]*keyState)
		inc.labelOf = make(map[*keyState]string)
		for _, c := range inc.rows {
			if !c.routed {
				continue
			}
			st, exists := inc.keys[c.key]
			if !exists {
				st = &keyState{}
				inc.keys[c.key] = st
				inc.labelOf[st] = c.key
				inc.keyOrder = append(inc.keyOrder, st)
			}
			st.contribs = append(st.contribs, contribRef{rank: c.rank, y: c.y})
		}
		for _, st := range inc.keyOrder {
			st.fold(q.Agg)
		}
	case TransformBin:
		inc.bins = make(map[int64]*keyState)
		for _, c := range inc.rows {
			if !c.routed {
				continue
			}
			st, exists := inc.bins[c.bin]
			if !exists {
				st = &keyState{bin: c.bin}
				inc.bins[c.bin] = st
				inc.keyOrder = append(inc.keyOrder, st)
			}
			st.contribs = append(st.contribs, contribRef{rank: c.rank, y: c.y})
		}
		sort.Slice(inc.keyOrder, func(a, b int) bool { return inc.keyOrder[a].bin < inc.keyOrder[b].bin })
		for _, st := range inc.keyOrder {
			st.fold(q.Agg)
		}
	}
	// Materialize the base chart through the general path (baseDone is
	// still false here, so Eval takes the full walk), then arm the
	// empty-delta shortcut.
	inc.basePts = inc.Eval(nil, nil).Points
	inc.baseDone = true
	return inc, nil
}

// contribution resolves one row against the query, mirroring Execute's
// per-row logic (WHERE, key routing, null handling) exactly.
func (inc *Incremental) contribution(r IncRow) contrib {
	c := contrib{rank: r.Rank}
	for k, p := range inc.q.Where {
		if !matches(r.Vals[inc.wcols[k]], p) {
			return c
		}
	}
	xv := r.Vals[inc.xi]
	switch inc.q.Transform {
	case TransformNone:
		yv := r.Vals[inc.yi]
		if xv.IsNull() || yv.IsNull() {
			return c
		}
		y, _ := yv.Float()
		pt := vis.Point{Label: xv.String(), Y: y}
		if f, ok := xv.Float(); ok {
			pt.X, pt.HasX = f, true
		}
		c.point, c.hasPt = pt, true
	case TransformGroup:
		key, ok := xv.Text()
		if !ok {
			if xv.IsNull() {
				return c
			}
			key = xv.String()
		}
		c.key, c.y, c.routed = key, r.Vals[inc.yi], true
	case TransformBin:
		x, ok := xv.Float()
		if !ok {
			return c
		}
		c.bin = int64(math.Floor(x / inc.q.BinInterval))
		c.y, c.routed = r.Vals[inc.yi], true
	}
	return c
}

// Eval produces the chart for the base row set with the rows named in
// removed (by rank) dropped and the added rows inserted at their rank
// positions. added must be in ascending rank order; an added rank may
// reuse a removed one (a merged cluster inherits the smaller first id).
// The result is bit-identical to Execute over the equivalent view.
func (inc *Incremental) Eval(removed []int64, added []IncRow) *vis.Data {
	data := &vis.Data{Type: inc.q.Chart, XField: inc.q.X, YField: inc.q.Y}

	// Empty delta: the answer is the precomputed base chart. Copying the
	// point slice keeps the result as independent as the general path's
	// (callers may mutate it) while skipping the dirty/folded/live maps
	// and the keyOrder walk entirely.
	if len(removed) == 0 && len(added) == 0 && inc.baseDone {
		if len(inc.basePts) > 0 {
			data.Points = append([]vis.Point(nil), inc.basePts...)
		}
		return data
	}

	switch inc.q.Transform {
	case TransformNone:
		data.Points = inc.evalNone(removed, added)
	case TransformGroup, TransformBin:
		data.Points = inc.evalKeyed(removed, added)
	}

	inc.q.sortPoints(data)
	if inc.q.Limit > 0 && len(data.Points) > inc.q.Limit {
		data.Points = data.Points[:inc.q.Limit]
	}
	return data
}

// Base returns the chart of the unmodified base row set.
func (inc *Incremental) Base() *vis.Data { return inc.Eval(nil, nil) }

func removedSet(removed []int64) map[int64]struct{} {
	if len(removed) == 0 {
		return nil
	}
	set := make(map[int64]struct{}, len(removed))
	for _, r := range removed {
		set[r] = struct{}{}
	}
	return set
}

// evalNone assembles the direct-mark point list: surviving base points
// and added points merged in rank order.
func (inc *Incremental) evalNone(removed []int64, added []IncRow) []vis.Point {
	rm := removedSet(removed)
	var pts []vis.Point
	j := 0
	emitAddedBefore := func(rank int64) {
		for j < len(added) && added[j].Rank < rank {
			if c := inc.contribution(added[j]); c.hasPt {
				pts = append(pts, c.point)
			}
			j++
		}
	}
	for i := range inc.rows {
		c := &inc.rows[i]
		emitAddedBefore(c.rank)
		if _, gone := rm[c.rank]; gone {
			continue
		}
		if c.hasPt {
			pts = append(pts, c.point)
		}
	}
	emitAddedBefore(math.MaxInt64)
	return pts
}

// evalKeyed assembles the grouped/binned point list: clean groups reuse
// their base aggregate, dirty groups re-fold their contributor list in
// rank order (the same accumulation order Execute uses), and the output
// order reproduces Execute's (first-appearance order for GROUP, bin
// order for BIN).
func (inc *Incremental) evalKeyed(removed []int64, added []IncRow) []vis.Point {
	grouped := inc.q.Transform == TransformGroup

	// Identify dirty states and collect added contributions per state.
	rm := removedSet(removed)
	dirty := make(map[*keyState][]contribRef)
	markDirty := func(st *keyState) {
		if _, seen := dirty[st]; !seen {
			dirty[st] = nil
		}
	}
	for r := range rm {
		pos, ok := inc.rankPos[r]
		if !ok {
			continue
		}
		if c := &inc.rows[pos]; c.routed {
			markDirty(inc.stateOf(c))
		}
	}
	// newStates tracks groups born in this delta, in appearance order.
	var newStates []*keyState
	newByKey := make(map[string]*keyState)
	newByBin := make(map[int64]*keyState)
	newLabels := make(map[*keyState]string)
	for _, row := range added {
		c := inc.contribution(row)
		if !c.routed {
			continue
		}
		st := inc.stateOf(&c)
		if st == nil {
			if grouped {
				st = newByKey[c.key]
			} else {
				st = newByBin[c.bin]
			}
			if st == nil {
				st = &keyState{bin: c.bin}
				if grouped {
					newByKey[c.key] = st
					newLabels[st] = c.key
				} else {
					newByBin[c.bin] = st
				}
				newStates = append(newStates, st)
				markDirty(st)
			}
		} else {
			markDirty(st)
		}
		dirty[st] = append(dirty[st], contribRef{rank: c.rank, y: c.y})
	}

	// Re-fold each dirty state over its surviving + added contributors,
	// merged in ascending rank order.
	folded := make(map[*keyState]*keyState, len(dirty))
	for st, adds := range dirty {
		nf := &keyState{bin: st.bin}
		nf.contribs = mergeContribs(st.contribs, adds, rm)
		nf.fold(inc.q.Agg)
		folded[st] = nf
	}

	// Output order: clean states keep their base slot; dirty states
	// reorder by their recomputed first contributor. Execute orders
	// groups by first appearance (= min contributing rank) and bins by
	// bin id, so a single merge of the two sorted sequences reproduces
	// it.
	order := func(st *keyState) int64 {
		if grouped {
			return st.firstRank
		}
		return st.bin
	}
	var live []*keyState
	for _, st := range inc.keyOrder {
		nf, isDirty := folded[st]
		if !isDirty {
			live = append(live, st)
			continue
		}
		if len(nf.contribs) > 0 {
			if lbl, ok := inc.labelOf[st]; ok {
				if newLabels == nil {
					newLabels = map[*keyState]string{}
				}
				newLabels[nf] = lbl
			}
			live = append(live, nf)
		}
	}
	for _, st := range newStates {
		nf := folded[st]
		if len(nf.contribs) == 0 {
			continue
		}
		if lbl, ok := newLabels[st]; ok {
			newLabels[nf] = lbl
		}
		live = append(live, nf)
	}
	sort.SliceStable(live, func(a, b int) bool { return order(live[a]) < order(live[b]) })

	var pts []vis.Point
	for _, st := range live {
		if !st.ok {
			continue
		}
		if grouped {
			lbl, ok := inc.labelOf[st]
			if !ok {
				lbl = newLabels[st]
			}
			pts = append(pts, vis.Point{Label: lbl, Y: st.y})
		} else {
			lo := float64(st.bin) * inc.q.BinInterval
			pts = append(pts, vis.Point{Label: binLabel(lo, lo+inc.q.BinInterval), X: lo, HasX: true, Y: st.y})
		}
	}
	return pts
}

// stateOf returns the base state a routed contribution belongs to, or
// nil when the key has no base state.
func (inc *Incremental) stateOf(c *contrib) *keyState {
	if inc.q.Transform == TransformGroup {
		return inc.keys[c.key]
	}
	return inc.bins[c.bin]
}

// mergeContribs merges the surviving base contributors with the added
// ones in ascending rank order. base is sorted; adds is sorted (Eval's
// input contract); rm removes by rank from base only.
func mergeContribs(base, adds []contribRef, rm map[int64]struct{}) []contribRef {
	out := make([]contribRef, 0, len(base)+len(adds))
	j := 0
	for _, c := range base {
		for j < len(adds) && adds[j].rank < c.rank {
			out = append(out, adds[j])
			j++
		}
		if _, gone := rm[c.rank]; gone {
			continue
		}
		out = append(out, c)
	}
	out = append(out, adds[j:]...)
	return out
}
