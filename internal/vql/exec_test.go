package vql

import (
	"math"
	"reflect"
	"testing"

	"visclean/internal/dataset"
	"visclean/internal/vis"
)

// tableI reproduces the paper's Table I (dirty publications excerpt).
func tableI(t *testing.T) *dataset.Table {
	t.Helper()
	tbl := dataset.NewTable(dataset.Schema{
		{Name: "Year", Kind: dataset.Float},
		{Name: "Title", Kind: dataset.String},
		{Name: "Venue", Kind: dataset.String},
		{Name: "Affiliation", Kind: dataset.String},
		{Name: "Citations", Kind: dataset.Float},
	})
	rows := [][]dataset.Value{
		{dataset.Num(2013), dataset.Str("NADEEF"), dataset.Str("ACM SIGMOD"), dataset.Str("QCRI"), dataset.Num(174)},
		{dataset.Num(2013), dataset.Str("NADEEF"), dataset.Str("SIGMOD Conf."), dataset.Str("QCRI, HBKU"), dataset.Num(1740)},
		{dataset.Num(2013), dataset.Str("NADEEF"), dataset.Str("SIGMOD"), dataset.Str("QCRI HBKU"), dataset.Num(174)},
		{dataset.Num(2013), dataset.Str("KuaFu"), dataset.Str("ICDE 2013"), dataset.Str("Microsoft"), dataset.Num(15)},
		{dataset.Num(2013), dataset.Str("TsingNUS"), dataset.Str("SIGMOD'13"), dataset.Str("Tsinghua"), dataset.Num(13)},
		{dataset.Num(2013), dataset.Str("TsingNUS"), dataset.Str("SIGMOD'13"), dataset.Str("THU"), dataset.Num(13)},
		{dataset.Num(2014), dataset.Str("SeeDB"), dataset.Str("VLDB"), dataset.Str("Stanford Univ."), dataset.Null(dataset.Float)},
		{dataset.Num(2014), dataset.Str("SeeDB"), dataset.Str("Very Large Data Bases"), dataset.Str("Stanford"), dataset.Num(55)},
		{dataset.Num(2015), dataset.Str("Elaps"), dataset.Str("ICDE"), dataset.Str("NUS"), dataset.Num(42)},
		{dataset.Num(2015), dataset.Str("Elaps"), dataset.Str("IEEE ICDE Conf. 2015"), dataset.Str("CS@NUS"), dataset.Num(44)},
	}
	for _, r := range rows {
		tbl.MustAppend(r)
	}
	return tbl
}

func pointMap(d *vis.Data) map[string]float64 {
	m := map[string]float64{}
	for _, p := range d.Points {
		m[p.Label] = p.Y
	}
	return m
}

func TestExecuteQ1BarChart(t *testing.T) {
	// Fig 1(a): SUM(Citations) grouped by Venue over dirty Table I.
	tbl := tableI(t)
	q := MustParse(`VISUALIZE bar SELECT Venue, SUM(Citations) FROM pubs TRANSFORM GROUP BY Venue SORT Y BY DESC`)
	d, err := q.Execute(tbl)
	if err != nil {
		t.Fatal(err)
	}
	got := pointMap(d)
	want := map[string]float64{
		"ACM SIGMOD":            174,
		"SIGMOD Conf.":          1740,
		"SIGMOD":                174,
		"ICDE 2013":             15,
		"SIGMOD'13":             26,
		"Very Large Data Bases": 55,
		"ICDE":                  42,
		"IEEE ICDE Conf. 2015":  44,
	}
	// VLDB group: its only tuple has null Citations -> group dropped by
	// SUM's no-usable-cells rule.
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v\nwant %v", got, want)
	}
	if d.Points[0].Label != "SIGMOD Conf." {
		t.Fatalf("desc sort first = %q", d.Points[0].Label)
	}
}

func TestExecuteQ2PieChart(t *testing.T) {
	// Fig 1(b): COUNT of publications by Year; proportions equal on dirty
	// and clean data (Example 2): dirty 6/2/2, clean 3/1/1.
	tbl := tableI(t)
	q := MustParse(`VISUALIZE pie SELECT Year, COUNT(Year) FROM pubs TRANSFORM GROUP BY Year SORT X BY ASC`)
	d, err := q.Execute(tbl)
	if err != nil {
		t.Fatal(err)
	}
	got := pointMap(d)
	want := map[string]float64{"2013": 6, "2014": 2, "2015": 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	norm := d.NormalizedY()
	if math.Abs(norm[0]-0.6) > 1e-12 {
		t.Fatalf("2013 proportion = %v, want 0.6", norm[0])
	}
}

func TestExecuteWherePredicates(t *testing.T) {
	tbl := tableI(t)
	q := MustParse(`VISUALIZE bar SELECT Venue, COUNT(Venue) FROM pubs TRANSFORM GROUP BY Venue WHERE Venue = 'SIGMOD'`)
	d, err := q.Execute(tbl)
	if err != nil {
		t.Fatal(err)
	}
	// Only the literal "SIGMOD" matches; synonyms are dropped — the
	// attribute-duplicate selection pathology of §II-C (ii).
	if len(d.Points) != 1 || d.Points[0].Y != 1 {
		t.Fatalf("points = %v", d.Points)
	}

	q2 := MustParse(`VISUALIZE bar SELECT Venue, SUM(Citations) FROM pubs TRANSFORM GROUP BY Venue WHERE Citations >= 100 AND Year <= 2013`)
	d2, err := q2.Execute(tbl)
	if err != nil {
		t.Fatal(err)
	}
	got := pointMap(d2)
	want := map[string]float64{"ACM SIGMOD": 174, "SIGMOD Conf.": 1740, "SIGMOD": 174}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestExecuteBin(t *testing.T) {
	tbl := tableI(t)
	q := MustParse(`VISUALIZE bar SELECT Citations, COUNT(Citations) FROM pubs TRANSFORM BIN Citations BY INTERVAL 200`)
	d, err := q.Execute(tbl)
	if err != nil {
		t.Fatal(err)
	}
	got := pointMap(d)
	// Non-null citations: 174,1740,174,15,13,13,55,42,44 → bin [0,200)=8, [1600,1800)=1.
	want := map[string]float64{"[0,200)": 8, "[1600,1800)": 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if !d.Points[0].HasX || d.Points[0].X != 0 {
		t.Fatalf("bin point x = %+v", d.Points[0])
	}
}

func TestExecuteBinNegativeValues(t *testing.T) {
	tbl := dataset.NewTable(dataset.Schema{
		{Name: "V", Kind: dataset.Float},
		{Name: "W", Kind: dataset.Float},
	})
	for _, v := range []float64{-25, -5, 5, 15} {
		tbl.MustAppend([]dataset.Value{dataset.Num(v), dataset.Num(1)})
	}
	q := MustParse(`VISUALIZE bar SELECT V, COUNT(W) FROM d TRANSFORM BIN V BY INTERVAL 10`)
	d, err := q.Execute(tbl)
	if err != nil {
		t.Fatal(err)
	}
	got := pointMap(d)
	want := map[string]float64{"[-30,-20)": 1, "[-10,0)": 1, "[0,10)": 1, "[10,20)": 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestExecuteAvg(t *testing.T) {
	tbl := tableI(t)
	q := MustParse(`VISUALIZE bar SELECT Title, AVG(Citations) FROM pubs TRANSFORM GROUP BY Title`)
	d, err := q.Execute(tbl)
	if err != nil {
		t.Fatal(err)
	}
	got := pointMap(d)
	// SeeDB: one null + 55 → AVG over non-null = 55 (shrunken denominator).
	if got["SeeDB"] != 55 {
		t.Fatalf("AVG SeeDB = %v, want 55", got["SeeDB"])
	}
	if math.Abs(got["NADEEF"]-(174+1740+174)/3.0) > 1e-9 {
		t.Fatalf("AVG NADEEF = %v", got["NADEEF"])
	}
}

func TestExecuteRawYPerTuple(t *testing.T) {
	tbl := tableI(t)
	q := MustParse(`VISUALIZE bar SELECT Title, Citations FROM pubs SORT Y BY DESC LIMIT 3`)
	d, err := q.Execute(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Points) != 3 {
		t.Fatalf("limit not applied: %d points", len(d.Points))
	}
	if d.Points[0].Y != 1740 {
		t.Fatalf("top raw point = %v", d.Points[0])
	}
}

func TestExecuteSortXNumeric(t *testing.T) {
	tbl := tableI(t)
	q := MustParse(`VISUALIZE bar SELECT Year, COUNT(Year) FROM pubs TRANSFORM BIN Year BY INTERVAL 1 SORT X BY DESC`)
	d, err := q.Execute(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if d.Points[0].X != 2015 || d.Points[len(d.Points)-1].X != 2013 {
		t.Fatalf("desc x order wrong: %v", d.Points)
	}
}

func TestValidateErrors(t *testing.T) {
	schema := tableI(t).Schema()
	bad := []string{
		`VISUALIZE bar SELECT Nope, SUM(Citations) FROM p TRANSFORM GROUP BY Nope`,
		`VISUALIZE bar SELECT Venue, SUM(Nope) FROM p TRANSFORM GROUP BY Venue`,
		`VISUALIZE bar SELECT Venue, SUM(Citations) FROM p TRANSFORM BIN Venue BY INTERVAL 5`,
		`VISUALIZE bar SELECT Venue, SUM(Title) FROM p TRANSFORM GROUP BY Venue`,
		`VISUALIZE bar SELECT Venue, Title FROM p`,
		`VISUALIZE bar SELECT Venue, Citations FROM p TRANSFORM GROUP BY Venue`,
		`VISUALIZE bar SELECT Venue, SUM(Citations) FROM p TRANSFORM GROUP BY Venue WHERE Nope = 1`,
		`VISUALIZE bar SELECT Venue, SUM(Citations) FROM p TRANSFORM GROUP BY Venue WHERE Venue = 5`,
		`VISUALIZE bar SELECT Venue, SUM(Citations) FROM p TRANSFORM GROUP BY Venue WHERE Citations = 'x'`,
	}
	for _, src := range bad {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q) failed syntactically: %v", src, err)
		}
		if err := q.Validate(schema); err == nil {
			t.Errorf("Validate(%q) succeeded, want error", src)
		}
	}
}

func TestQueryType(t *testing.T) {
	schema := tableI(t).Schema()
	cases := []struct {
		src  string
		want int
	}{
		{`VISUALIZE bar SELECT Citations, Citations FROM p`, 1},
		{`VISUALIZE bar SELECT Venue, Citations FROM p`, 2},
		{`VISUALIZE bar SELECT Year, COUNT(Year) FROM p TRANSFORM BIN Year BY INTERVAL 5`, 3},
		{`VISUALIZE bar SELECT Venue, SUM(Citations) FROM p TRANSFORM GROUP BY Venue`, 4},
	}
	for _, c := range cases {
		if got := MustParse(c.src).QueryType(schema); got != c.want {
			t.Errorf("QueryType(%q) = %d, want %d", c.src, got, c.want)
		}
	}
}

func TestExecuteEmptyResult(t *testing.T) {
	tbl := tableI(t)
	q := MustParse(`VISUALIZE bar SELECT Venue, SUM(Citations) FROM p TRANSFORM GROUP BY Venue WHERE Year > 2020`)
	d, err := q.Execute(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Points) != 0 {
		t.Fatalf("points = %v", d.Points)
	}
}

func TestExecuteDoesNotMutateTable(t *testing.T) {
	tbl := tableI(t)
	before := tbl.String()
	q := MustParse(`VISUALIZE bar SELECT Venue, SUM(Citations) FROM p TRANSFORM GROUP BY Venue SORT Y BY DESC LIMIT 3`)
	if _, err := q.Execute(tbl); err != nil {
		t.Fatal(err)
	}
	if tbl.String() != before {
		t.Fatal("Execute mutated the table")
	}
}

func TestReplaceDatasetName(t *testing.T) {
	q := MustParse(`VISUALIZE bar SELECT Venue, SUM(Citations) FROM D1 TRANSFORM GROUP BY Venue WHERE Year > 2009`)
	q2 := q.ReplaceDatasetName("scaled")
	if q2.From != "scaled" || q.From != "D1" {
		t.Fatalf("rename: %q / %q", q2.From, q.From)
	}
	q2.Where[0].NumValue = 1
	if q.Where[0].NumValue != 2009 {
		t.Fatal("Where slice aliased")
	}
}
