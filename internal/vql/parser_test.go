package vql

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"visclean/internal/vis"
)

func TestParseQ1Style(t *testing.T) {
	q, err := Parse(`VISUALIZE bar SELECT Venue, SUM(Citations) FROM D1
		TRANSFORM GROUP BY Venue SORT Y BY DESC LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	want := &Query{
		Chart:     vis.Bar,
		X:         "Venue",
		Y:         "Citations",
		Agg:       AggSum,
		From:      "D1",
		Transform: TransformGroup,
		Sort:      AxisY,
		SortDesc:  true,
		Limit:     10,
	}
	if !reflect.DeepEqual(q, want) {
		t.Fatalf("got %+v, want %+v", q, want)
	}
}

func TestParseQ7Style(t *testing.T) {
	q, err := Parse(`VISUALIZE bar SELECT Year, COUNT(Year) FROM D1
		TRANSFORM BIN Year BY INTERVAL 5
		WHERE Year > 1999 AND Venue = 'SIGMOD' AND Citations > 100`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Transform != TransformBin || q.BinInterval != 5 {
		t.Fatalf("transform = %v interval %v", q.Transform, q.BinInterval)
	}
	if len(q.Where) != 3 {
		t.Fatalf("where = %v", q.Where)
	}
	if q.Where[1].StrValue != "SIGMOD" || q.Where[1].IsNum {
		t.Fatalf("where[1] = %+v", q.Where[1])
	}
	if q.Where[2].NumValue != 100 || !q.Where[2].IsNum {
		t.Fatalf("where[2] = %+v", q.Where[2])
	}
}

func TestParseBareWordLiteral(t *testing.T) {
	q, err := Parse(`VISUALIZE pie SELECT Team, SUM(#Points) FROM D2
		TRANSFORM GROUP BY Team WHERE Team = lakers SORT Y BY DESC LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Where[0].StrValue != "lakers" {
		t.Fatalf("bare word literal = %+v", q.Where[0])
	}
	if q.X != "Team" || q.Y != "#Points" {
		t.Fatalf("axes = %q %q", q.X, q.Y)
	}
}

func TestParseQuotedLiteralWithEscapes(t *testing.T) {
	q, err := Parse(`VISUALIZE bar SELECT A, SUM(B) FROM D TRANSFORM GROUP BY A WHERE A = 'O''Brien'`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Where[0].StrValue != "O'Brien" {
		t.Fatalf("literal = %q", q.Where[0].StrValue)
	}
}

func TestParseRawY(t *testing.T) {
	q, err := Parse(`VISUALIZE bar SELECT Player, #Games FROM D2 SORT Y BY ASC LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Agg != AggNone || q.Y != "#Games" {
		t.Fatalf("raw y parse = %+v", q)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT a, b FROM d`,                   // missing VISUALIZE
		`VISUALIZE scatter SELECT a, b FROM d`, // bad chart type
		`VISUALIZE bar SELECT a FROM d`,        // missing comma + y
		`VISUALIZE bar SELECT a, SUM(b FROM d`, // unclosed paren
		`VISUALIZE bar SELECT a, b FROM d TRANSFORM GROUP BY c`,          // transform col mismatch
		`VISUALIZE bar SELECT a, b FROM d TRANSFORM BIN a BY INTERVAL 0`, // zero interval
		`VISUALIZE bar SELECT a, b FROM d TRANSFORM SHUFFLE a`,           // bad transform
		`VISUALIZE bar SELECT a, b FROM d WHERE a !`,                     // bad operator char
		`VISUALIZE bar SELECT a, b FROM d WHERE a =`,                     // missing literal
		`VISUALIZE bar SELECT a, b FROM d SORT Z BY ASC`,                 // bad axis
		`VISUALIZE bar SELECT a, b FROM d SORT Y BY SIDEWAYS`,            // bad direction
		`VISUALIZE bar SELECT a, b FROM d LIMIT 0`,                       // bad limit
		`VISUALIZE bar SELECT a, b FROM d LIMIT 2.5`,                     // fractional limit
		`VISUALIZE bar SELECT a, b FROM d extra`,                         // trailing tokens
		`VISUALIZE bar SELECT a, b FROM d WHERE a = 'unterminated`,       // bad string
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseErrorPositions(t *testing.T) {
	_, err := Parse(`VISUALIZE bar SELECT a, b FROM d SORT Z BY ASC`)
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Pos <= 0 {
		t.Fatalf("position = %d", pe.Pos)
	}
	if !strings.Contains(pe.Error(), "offset") {
		t.Fatalf("error text %q", pe.Error())
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParse("nonsense")
}

// Property: String() then Parse() is the identity on random valid queries.
func TestQueryStringRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	cols := []string{"Venue", "Citations", "Year", "Team", "#Points"}
	for trial := 0; trial < 300; trial++ {
		q := &Query{
			Chart: vis.ChartType(rng.Intn(2)),
			X:     cols[rng.Intn(len(cols))],
			Y:     cols[rng.Intn(len(cols))],
			Agg:   Agg(1 + rng.Intn(3)),
			From:  "D1",
		}
		switch rng.Intn(3) {
		case 0:
			q.Transform = TransformNone
			q.Agg = AggNone
		case 1:
			q.Transform = TransformGroup
		case 2:
			q.Transform = TransformBin
			q.BinInterval = float64(1 + rng.Intn(100))
		}
		for i := rng.Intn(3); i > 0; i-- {
			p := Predicate{Column: cols[rng.Intn(len(cols))], Op: Op(rng.Intn(5))}
			if rng.Intn(2) == 0 {
				p.IsNum = true
				p.NumValue = float64(rng.Intn(2000))
			} else {
				p.StrValue = []string{"SIGMOD", "VLDB", "a b", "O'Brien"}[rng.Intn(4)]
			}
			q.Where = append(q.Where, p)
		}
		if rng.Intn(2) == 0 {
			q.Sort = Axis(1 + rng.Intn(2))
			q.SortDesc = rng.Intn(2) == 0
		}
		if rng.Intn(2) == 0 {
			q.Limit = 1 + rng.Intn(20)
		}

		src := q.String()
		back, err := Parse(src)
		if err != nil {
			t.Fatalf("trial %d: Parse(%q): %v", trial, src, err)
		}
		if !reflect.DeepEqual(back, q) {
			t.Fatalf("trial %d: round trip mismatch\nsrc:  %s\ngot:  %+v\nwant: %+v", trial, src, back, q)
		}
	}
}
