package vql

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"visclean/internal/dataset"
)

// TestExecuteMatchesNaiveReference cross-checks the executor against a
// straightforward reference implementation on randomized tables and
// queries: same groups, same aggregates, same filtered rows.
func TestExecuteMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cats := []string{"SIGMOD", "VLDB", "ICDE", "KDD", "PODS"}

	for trial := 0; trial < 60; trial++ {
		// Random table.
		tbl := dataset.NewTable(dataset.Schema{
			{Name: "Cat", Kind: dataset.String},
			{Name: "Year", Kind: dataset.Float},
			{Name: "Y", Kind: dataset.Float},
		})
		n := 1 + rng.Intn(60)
		for i := 0; i < n; i++ {
			cat := dataset.Str(cats[rng.Intn(len(cats))])
			if rng.Float64() < 0.1 {
				cat = dataset.Null(dataset.String)
			}
			y := dataset.Num(float64(rng.Intn(200)))
			if rng.Float64() < 0.15 {
				y = dataset.Null(dataset.Float)
			}
			tbl.MustAppend([]dataset.Value{
				cat,
				dataset.Num(float64(2000 + rng.Intn(20))),
				y,
			})
		}

		agg := []Agg{AggSum, AggAvg, AggCount}[rng.Intn(3)]
		var where string
		var filter func(year float64) bool
		if rng.Intn(2) == 0 {
			cut := 2000 + rng.Intn(20)
			where = fmt.Sprintf(" WHERE Year >= %d", cut)
			filter = func(y float64) bool { return y >= float64(cut) }
		} else {
			filter = func(float64) bool { return true }
		}
		src := fmt.Sprintf(`VISUALIZE bar SELECT Cat, %s(Y) FROM t TRANSFORM GROUP BY Cat%s SORT X BY ASC`, agg, where)
		q := MustParse(src)
		got, err := q.Execute(tbl)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		// Naive reference.
		type accum struct {
			sum   float64
			count int
		}
		ref := map[string]*accum{}
		for i := 0; i < tbl.NumRows(); i++ {
			year, _ := tbl.Get(i, 1).Float()
			if !filter(year) {
				continue
			}
			cat, ok := tbl.Get(i, 0).Text()
			if !ok {
				continue
			}
			a := ref[cat]
			if a == nil {
				a = &accum{}
				ref[cat] = a
			}
			if yv, ok := tbl.Get(i, 2).Float(); ok {
				a.sum += yv
				a.count++
			}
		}
		want := map[string]float64{}
		for cat, a := range ref {
			switch agg {
			case AggSum:
				if a.count > 0 {
					want[cat] = a.sum
				}
			case AggAvg:
				if a.count > 0 {
					want[cat] = a.sum / float64(a.count)
				}
			case AggCount:
				want[cat] = float64(a.count)
			}
		}

		gotMap := map[string]float64{}
		var labels []string
		for _, p := range got.Points {
			gotMap[p.Label] = p.Y
			labels = append(labels, p.Label)
		}
		if len(gotMap) != len(want) {
			t.Fatalf("trial %d (%s): %d groups, want %d\ngot %v\nwant %v",
				trial, src, len(gotMap), len(want), gotMap, want)
		}
		for cat, w := range want {
			if g, ok := gotMap[cat]; !ok || math.Abs(g-w) > 1e-9 {
				t.Fatalf("trial %d (%s): group %q = %v, want %v", trial, src, cat, g, w)
			}
		}
		if !sort.StringsAreSorted(labels) {
			t.Fatalf("trial %d: SORT X BY ASC violated: %v", trial, labels)
		}
	}
}

// TestBinMatchesNaiveReference cross-checks binning.
func TestBinMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 40; trial++ {
		tbl := dataset.NewTable(dataset.Schema{
			{Name: "X", Kind: dataset.Float},
			{Name: "Y", Kind: dataset.Float},
		})
		n := 1 + rng.Intn(50)
		for i := 0; i < n; i++ {
			x := dataset.Num(float64(rng.Intn(100)) - 30)
			if rng.Float64() < 0.1 {
				x = dataset.Null(dataset.Float)
			}
			tbl.MustAppend([]dataset.Value{x, dataset.Num(1)})
		}
		interval := float64(1 + rng.Intn(20))
		src := fmt.Sprintf(`VISUALIZE bar SELECT X, COUNT(Y) FROM t TRANSFORM BIN X BY INTERVAL %g`, interval)
		got, err := MustParse(src).Execute(tbl)
		if err != nil {
			t.Fatal(err)
		}
		want := map[int64]float64{}
		for i := 0; i < tbl.NumRows(); i++ {
			x, ok := tbl.Get(i, 0).Float()
			if !ok {
				continue
			}
			want[int64(math.Floor(x/interval))]++
		}
		if len(got.Points) != len(want) {
			t.Fatalf("trial %d: %d bins, want %d", trial, len(got.Points), len(want))
		}
		for _, p := range got.Points {
			b := int64(math.Floor(p.X / interval))
			if want[b] != p.Y {
				t.Fatalf("trial %d: bin %d = %v, want %v", trial, b, p.Y, want[b])
			}
		}
	}
}
