package vql

import (
	"fmt"
	"testing"

	"visclean/internal/dataset"
	"visclean/internal/vis"
)

// incSchema is the row shape the incremental-executor tests use.
var incSchema = dataset.Schema{
	{Name: "Venue", Kind: dataset.String},
	{Name: "Year", Kind: dataset.Float},
	{Name: "Citations", Kind: dataset.Float},
}

func incRow(rank int64, venue string, year, cites dataset.Value) IncRow {
	return IncRow{Rank: rank, Vals: []dataset.Value{dataset.Str(venue), year, cites}}
}

// applyDelta materializes the delta the incremental executor evaluates
// into a plain table, in ascending rank order — the reference Execute
// runs over it.
func applyDelta(t *testing.T, base []IncRow, removed []int64, added []IncRow) *dataset.Table {
	t.Helper()
	rm := map[int64]bool{}
	for _, r := range removed {
		rm[r] = true
	}
	var rows []IncRow
	for _, r := range base {
		if !rm[r.Rank] {
			rows = append(rows, r)
		}
	}
	rows = append(rows, added...)
	for i := range rows {
		for j := i + 1; j < len(rows); j++ {
			if rows[j].Rank < rows[i].Rank {
				rows[i], rows[j] = rows[j], rows[i]
			}
		}
	}
	tbl := dataset.NewTable(incSchema)
	for _, r := range rows {
		tbl.MustAppend(r.Vals)
	}
	return tbl
}

// assertSameData requires bit-exact equality — the incremental
// executor's whole contract.
func assertSameData(t *testing.T, label string, got, want *vis.Data) {
	t.Helper()
	if len(got.Points) != len(want.Points) {
		t.Fatalf("%s: point counts differ: got %d want %d\ngot  %+v\nwant %+v",
			label, len(got.Points), len(want.Points), got.Points, want.Points)
	}
	for i := range got.Points {
		if got.Points[i] != want.Points[i] {
			t.Fatalf("%s: point %d differs: got %+v want %+v", label, i, got.Points[i], want.Points[i])
		}
	}
}

// checkDelta runs one (removed, added) delta through Eval and through
// Execute-over-the-equivalent-table and compares.
func checkDelta(t *testing.T, q *Query, base []IncRow, removed []int64, added []IncRow) {
	t.Helper()
	inc, err := q.NewIncremental(incSchema, base)
	if err != nil {
		t.Fatal(err)
	}
	got := inc.Eval(removed, added)
	want, err := q.Execute(applyDelta(t, base, removed, added))
	if err != nil {
		t.Fatal(err)
	}
	assertSameData(t, fmt.Sprintf("removed=%v added=%d", removed, len(added)), got, want)
}

func incBase() []IncRow {
	num := dataset.Num
	null := dataset.Null(dataset.Float)
	return []IncRow{
		incRow(0, "SIGMOD", num(2013), num(174)),
		incRow(2, "ICDE", num(2013), num(15)),
		incRow(5, "SIGMOD", num(2014), null),
		incRow(6, "VLDB", num(2014), num(55)),
		incRow(9, "ICDE", num(2015), num(42)),
		incRow(12, "KDD", num(2015), num(7)),
	}
}

var incQueries = []string{
	`VISUALIZE bar SELECT Venue, SUM(Citations) FROM D TRANSFORM GROUP BY Venue SORT Y BY DESC LIMIT 10`,
	`VISUALIZE bar SELECT Venue, AVG(Citations) FROM D TRANSFORM GROUP BY Venue SORT X BY ASC`,
	`VISUALIZE bar SELECT Venue, COUNT(Citations) FROM D TRANSFORM GROUP BY Venue`,
	`VISUALIZE bar SELECT Venue, SUM(Citations) FROM D TRANSFORM GROUP BY Venue WHERE Year >= 2014 SORT Y BY DESC`,
	`VISUALIZE bar SELECT Year, SUM(Citations) FROM D TRANSFORM BIN Year BY INTERVAL 1`,
	`VISUALIZE bar SELECT Year, Citations FROM D`,
	`VISUALIZE bar SELECT Venue, SUM(Citations) FROM D TRANSFORM GROUP BY Venue SORT Y BY DESC LIMIT 2`,
}

// TestIncrementalEvalMatchesExecute sweeps deltas — removals, additions,
// new groups, emptied groups, rank reuse, null cells — across query
// shapes and compares every chart bit for bit.
func TestIncrementalEvalMatchesExecute(t *testing.T) {
	num := dataset.Num
	null := dataset.Null(dataset.Float)
	deltas := []struct {
		name    string
		removed []int64
		added   []IncRow
	}{
		{name: "noop"},
		{name: "remove-one", removed: []int64{2}},
		{name: "remove-all-of-group", removed: []int64{2, 9}},
		{name: "remove-everything", removed: []int64{0, 2, 5, 6, 9, 12}},
		{name: "add-new-group", added: []IncRow{incRow(3, "CIDR", num(2013), num(9))}},
		{name: "add-to-existing-group", added: []IncRow{incRow(13, "VLDB", num(2016), num(3))}},
		{name: "add-before-first", added: []IncRow{incRow(-1, "AAAI", num(2012), num(1))}},
		{name: "replace-same-rank", removed: []int64{5}, added: []IncRow{incRow(5, "SIGMOD", num(2014), num(100))}},
		{name: "merge-two-rows", removed: []int64{0, 5}, added: []IncRow{incRow(0, "SIGMOD", num(2013), num(274))}},
		{name: "null-added", added: []IncRow{incRow(7, "VLDB", num(2014), null)}},
		{name: "group-rename", removed: []int64{6}, added: []IncRow{incRow(6, "Very Large Data Bases", num(2014), num(55))}},
		{name: "reorder-first-appearance", removed: []int64{0}, added: []IncRow{incRow(10, "SIGMOD", num(2013), num(174))}},
	}
	for _, src := range incQueries {
		q := MustParse(src)
		for _, d := range deltas {
			t.Run(fmt.Sprintf("%s/%s", q.Chart, d.name), func(t *testing.T) {
				checkDelta(t, q, incBase(), d.removed, d.added)
			})
		}
	}
}

// TestIncrementalBaseMatchesExecute checks the zero-delta chart equals a
// straight execution of the base rows.
func TestIncrementalBaseMatchesExecute(t *testing.T) {
	for _, src := range incQueries {
		q := MustParse(src)
		inc, err := q.NewIncremental(incSchema, incBase())
		if err != nil {
			t.Fatal(err)
		}
		want, err := q.Execute(applyDelta(t, incBase(), nil, nil))
		if err != nil {
			t.Fatal(err)
		}
		assertSameData(t, src, inc.Base(), want)
	}
}

// TestIncrementalBaseFastPath pins the empty-delta shortcut's
// bit-identity against the general path. Eval with an unknown removed
// rank takes the allocating walk but produces the same chart (no group
// is dirtied), so the two paths can be compared point for point.
func TestIncrementalBaseFastPath(t *testing.T) {
	for _, src := range incQueries {
		q := MustParse(src)
		inc, err := q.NewIncremental(incSchema, incBase())
		if err != nil {
			t.Fatal(err)
		}
		fast := inc.Base()
		slow := inc.Eval([]int64{-999}, nil) // unknown rank: no-op delta, general path
		assertSameData(t, src, fast, slow)

		// The fast path must hand out an independent copy: mutating one
		// result must not leak into the next.
		if len(fast.Points) > 0 {
			fast.Points[0].Y += 1e6
			again := inc.Base()
			assertSameData(t, src+" after mutation", again, slow)
		}
	}
}

// TestIncrementalBaseAllocs pins the empty-delta shortcut's allocation
// budget: one vis.Data plus one point-slice copy. The general path
// allocates the dirty/folded maps and the live slice every call; this
// test is what keeps the Base() hot path from quietly regressing to it.
func TestIncrementalBaseAllocs(t *testing.T) {
	q := MustParse(incQueries[0])
	inc, err := q.NewIncremental(incSchema, incBase())
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if inc.Eval(nil, nil) == nil {
			t.Fatal("nil chart")
		}
	})
	if allocs > 2 {
		t.Fatalf("Eval(nil, nil) allocates %.0f objects per call, want ≤ 2", allocs)
	}
}

// TestIncrementalLimitTopKChurn targets the Limit+sortPoints seam the
// multi-view pricer leans on: deltas that push a dirty group out of the
// top-K, pull one in from below the cut, or reshuffle a tie exactly at
// the boundary. Every case is checked bit-identical against Execute
// over the equivalent table.
func TestIncrementalLimitTopKChurn(t *testing.T) {
	num := dataset.Num
	// Base sums (SUM Citations, DESC): SIGMOD=174, ICDE=57, VLDB=55, KDD=7.
	deltas := []struct {
		name    string
		removed []int64
		added   []IncRow
	}{
		// The leader shrinks to last place and drops below the cut.
		{name: "leader-drops-out", removed: []int64{0}, added: []IncRow{incRow(0, "SIGMOD", num(2013), num(1))}},
		// A below-cut group is boosted past the boundary and enters.
		{name: "tail-enters", added: []IncRow{incRow(13, "KDD", num(2016), num(500))}},
		// Both at once: the displaced and the promoted swap slots.
		{name: "swap-across-boundary", removed: []int64{2, 9}, added: []IncRow{
			incRow(2, "ICDE", num(2013), num(1)),
			incRow(13, "KDD", num(2016), num(400)),
		}},
		// A dirty group lands exactly on a boundary tie (VLDB 55 → 57 =
		// ICDE): ordering must match Execute's tiebreak, not map order.
		{name: "tie-at-boundary", added: []IncRow{incRow(14, "VLDB", num(2016), num(2))}},
		// A new group is born directly inside the top-K.
		{name: "new-group-enters", added: []IncRow{incRow(3, "CIDR", num(2013), num(999))}},
		// The boundary group is emptied outright; the next one moves up.
		{name: "boundary-group-vanishes", removed: []int64{2, 9}},
	}
	for _, limit := range []int{1, 2, 3} {
		src := fmt.Sprintf(`VISUALIZE bar SELECT Venue, SUM(Citations) FROM D TRANSFORM GROUP BY Venue SORT Y BY DESC LIMIT %d`, limit)
		q := MustParse(src)
		for _, d := range deltas {
			t.Run(fmt.Sprintf("limit%d/%s", limit, d.name), func(t *testing.T) {
				checkDelta(t, q, incBase(), d.removed, d.added)
			})
		}
	}
	// Ascending sort flips which end of the order the cut falls on.
	for _, d := range deltas {
		q := MustParse(`VISUALIZE bar SELECT Venue, SUM(Citations) FROM D TRANSFORM GROUP BY Venue SORT Y BY ASC LIMIT 2`)
		t.Run("asc-limit2/"+d.name, func(t *testing.T) {
			checkDelta(t, q, incBase(), d.removed, d.added)
		})
	}
}

// TestIncrementalRejectsUnsortedRanks guards the registration contract.
func TestIncrementalRejectsUnsortedRanks(t *testing.T) {
	q := MustParse(incQueries[0])
	rows := []IncRow{
		incRow(5, "A", dataset.Num(2013), dataset.Num(1)),
		incRow(5, "B", dataset.Num(2013), dataset.Num(2)),
	}
	if _, err := q.NewIncremental(incSchema, rows); err == nil {
		t.Fatal("duplicate ranks accepted")
	}
}
