package vql

import (
	"strings"
	"unicode"
)

// lex splits the query into tokens. Identifiers may contain letters,
// digits, '_', '#', '.' and '@' so attribute names like "#Points" and
// "Publ." lex as single tokens. String literals use single or double
// quotes with doubling for escapes ('O”Brien').
func lex(src string) ([]token, error) {
	var toks []token
	runes := []rune(src)
	i := 0
	for i < len(runes) {
		r := runes[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == ',':
			toks = append(toks, token{kind: tokComma, text: ",", pos: i})
			i++
		case r == '(':
			toks = append(toks, token{kind: tokLParen, text: "(", pos: i})
			i++
		case r == ')':
			toks = append(toks, token{kind: tokRParen, text: ")", pos: i})
			i++
		case r == '=', r == '<', r == '>':
			start := i
			op := string(r)
			if (r == '<' || r == '>') && i+1 < len(runes) && runes[i+1] == '=' {
				op += "="
				i++
			}
			toks = append(toks, token{kind: tokOp, text: op, pos: start})
			i++
		case r == '\'' || r == '"':
			quote := r
			start := i
			i++
			var b strings.Builder
			closed := false
			for i < len(runes) {
				if runes[i] == quote {
					if i+1 < len(runes) && runes[i+1] == quote {
						b.WriteRune(quote)
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				b.WriteRune(runes[i])
				i++
			}
			if !closed {
				return nil, errf(start, "unterminated string literal")
			}
			toks = append(toks, token{kind: tokString, text: b.String(), pos: start})
		case unicode.IsDigit(r), r == '-' && i+1 < len(runes) && unicode.IsDigit(runes[i+1]),
			r == '.' && i+1 < len(runes) && unicode.IsDigit(runes[i+1]):
			start := i
			var b strings.Builder
			if r == '-' {
				b.WriteRune(r)
				i++
			}
			seenDot := false
			for i < len(runes) {
				c := runes[i]
				if unicode.IsDigit(c) {
					b.WriteRune(c)
					i++
					continue
				}
				if c == '.' && !seenDot && i+1 < len(runes) && unicode.IsDigit(runes[i+1]) {
					seenDot = true
					b.WriteRune(c)
					i++
					continue
				}
				break
			}
			toks = append(toks, token{kind: tokNumber, text: b.String(), pos: start})
		case isIdentRune(r):
			start := i
			var b strings.Builder
			for i < len(runes) && isIdentRune(runes[i]) {
				b.WriteRune(runes[i])
				i++
			}
			toks = append(toks, token{kind: tokIdent, text: b.String(), pos: start})
		default:
			return nil, errf(i, "unexpected character %q", string(r))
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(runes)})
	return toks, nil
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '#' || r == '.' || r == '@'
}
