package vql

import (
	"fmt"
	"strconv"
	"strings"

	"visclean/internal/vis"
)

// Agg is the Y-axis aggregation function (the paper's AGG ∈ {SUM, AVG,
// COUNT}). AggNone means Y' = Y raw.
type Agg int

const (
	AggNone Agg = iota
	AggSum
	AggAvg
	AggCount
)

func (a Agg) String() string {
	switch a {
	case AggNone:
		return ""
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggCount:
		return "COUNT"
	default:
		return fmt.Sprintf("Agg(%d)", int(a))
	}
}

// Transform is how the X axis is derived from the X column.
type Transform int

const (
	TransformNone Transform = iota
	TransformGroup
	TransformBin
)

// Op is a comparison operator of the WHERE clause; the paper's grammar
// allows {=, <, <=, >=, >}.
type Op int

const (
	OpEq Op = iota
	OpLt
	OpLe
	OpGe
	OpGt
)

func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGe:
		return ">="
	case OpGt:
		return ">"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Predicate is one WHERE conjunct: Column Op Literal. Exactly one of
// StrValue/NumValue applies, chosen by IsNum.
type Predicate struct {
	Column   string
	Op       Op
	StrValue string
	NumValue float64
	IsNum    bool
}

func (p Predicate) String() string {
	lit := "'" + strings.ReplaceAll(p.StrValue, "'", "''") + "'"
	if p.IsNum {
		lit = strconv.FormatFloat(p.NumValue, 'g', -1, 64)
	}
	return fmt.Sprintf("%s %s %s", p.Column, p.Op, lit)
}

// Axis selects the sort axis.
type Axis int

const (
	AxisNone Axis = iota
	AxisX
	AxisY
)

// Query is the parsed VQL statement.
type Query struct {
	Chart       vis.ChartType
	X           string // x-axis source column
	Y           string // y-axis source column
	Agg         Agg
	From        string
	Transform   Transform
	BinInterval float64 // valid when Transform == TransformBin
	Where       []Predicate
	Sort        Axis
	SortDesc    bool
	Limit       int // 0 means no limit
}

// String renders the query back to concrete syntax; Parse(q.String()) is
// the identity on the AST (verified by a round-trip property test).
func (q *Query) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "VISUALIZE %s SELECT %s, ", q.Chart, q.X)
	if q.Agg == AggNone {
		b.WriteString(q.Y)
	} else {
		fmt.Fprintf(&b, "%s(%s)", q.Agg, q.Y)
	}
	fmt.Fprintf(&b, " FROM %s", q.From)
	switch q.Transform {
	case TransformGroup:
		fmt.Fprintf(&b, " TRANSFORM GROUP BY %s", q.X)
	case TransformBin:
		fmt.Fprintf(&b, " TRANSFORM BIN %s BY INTERVAL %s", q.X,
			strconv.FormatFloat(q.BinInterval, 'g', -1, 64))
	}
	if len(q.Where) > 0 {
		b.WriteString(" WHERE ")
		for i, p := range q.Where {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(p.String())
		}
	}
	if q.Sort != AxisNone {
		axis := "X"
		if q.Sort == AxisY {
			axis = "Y"
		}
		dir := "ASC"
		if q.SortDesc {
			dir = "DESC"
		}
		fmt.Fprintf(&b, " SORT %s BY %s", axis, dir)
	}
	if q.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	return b.String()
}
