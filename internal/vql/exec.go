package vql

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"visclean/internal/dataset"
	"visclean/internal/vis"
)

// Validate checks the query against a table schema: referenced columns
// must exist, BIN requires a numeric X, aggregates other than COUNT
// require a numeric Y, and WHERE literals must match column kinds.
func (q *Query) Validate(schema dataset.Schema) error {
	xi := schema.Index(q.X)
	if xi < 0 {
		return fmt.Errorf("vql: unknown x column %q", q.X)
	}
	yi := schema.Index(q.Y)
	if yi < 0 {
		return fmt.Errorf("vql: unknown y column %q", q.Y)
	}
	if q.Transform == TransformBin && schema[xi].Kind != dataset.Float {
		return fmt.Errorf("vql: BIN requires numeric x column, %q is %v", q.X, schema[xi].Kind)
	}
	if (q.Agg == AggSum || q.Agg == AggAvg) && schema[yi].Kind != dataset.Float {
		return fmt.Errorf("vql: %s requires numeric y column, %q is %v", q.Agg, q.Y, schema[yi].Kind)
	}
	if q.Agg == AggNone && schema[yi].Kind != dataset.Float {
		return fmt.Errorf("vql: raw y column %q must be numeric", q.Y)
	}
	if q.Transform != TransformNone && q.Agg == AggNone {
		return fmt.Errorf("vql: GROUP/BIN requires an aggregate on the y axis")
	}
	for _, p := range q.Where {
		ci := schema.Index(p.Column)
		if ci < 0 {
			return fmt.Errorf("vql: unknown WHERE column %q", p.Column)
		}
		if p.IsNum && schema[ci].Kind != dataset.Float {
			return fmt.Errorf("vql: numeric literal compared with %v column %q", schema[ci].Kind, p.Column)
		}
		if !p.IsNum && schema[ci].Kind != dataset.String {
			return fmt.Errorf("vql: string literal compared with %v column %q", schema[ci].Kind, p.Column)
		}
	}
	if q.Transform == TransformBin && q.BinInterval <= 0 {
		return fmt.Errorf("vql: BIN interval must be positive")
	}
	return nil
}

// QueryType classifies the query per the paper's Table III:
//
//	1: X'=X (numeric), Y'=Y    2: X'=X (categorical), Y'=Y
//	3: X'=BIN(X), Y'=AGG(Y)    4: X'=GROUP(X), Y'=AGG(Y)
func (q *Query) QueryType(schema dataset.Schema) int {
	switch q.Transform {
	case TransformBin:
		return 3
	case TransformGroup:
		return 4
	}
	xi := schema.Index(q.X)
	if xi >= 0 && schema[xi].Kind == dataset.Float {
		return 1
	}
	return 2
}

// Execute runs the query over the table, producing the chart series. The
// table is not modified. Execution order follows the clause semantics:
// WHERE filter → TRANSFORM (group/bin) → aggregate → SORT → LIMIT.
//
// Null handling, which is what makes dirty data distort charts (§II-C):
// rows whose X cell is null never contribute a mark; SUM treats null Y as
// absent (the group total silently undercounts, as with t7[Citations] in
// the paper's Fig 1a); AVG and COUNT skip null Y cells; rows failing a
// WHERE predicate because a synonym does not literally match are dropped,
// reproducing the attribute-duplicate selection pathology.
func (q *Query) Execute(t *dataset.Table) (*vis.Data, error) {
	if err := q.Validate(t.Schema()); err != nil {
		return nil, err
	}
	xi := t.ColumnIndex(q.X)
	yi := t.ColumnIndex(q.Y)

	data := &vis.Data{Type: q.Chart, XField: q.X, YField: q.Y}

	rows := q.filterRows(t)
	switch q.Transform {
	case TransformNone:
		for _, i := range rows {
			xv := t.Get(i, xi)
			yv := t.Get(i, yi)
			if xv.IsNull() || yv.IsNull() {
				continue
			}
			y, _ := yv.Float()
			p := vis.Point{Label: xv.String(), Y: y}
			if f, ok := xv.Float(); ok {
				p.X, p.HasX = f, true
			}
			data.Points = append(data.Points, p)
		}
	case TransformGroup:
		groups := make(map[string]*aggState)
		var order []string
		for _, i := range rows {
			xv := t.Get(i, xi)
			key, ok := xv.Text()
			if !ok {
				// Numeric categorical grouping (e.g. GROUP BY Year).
				if xv.IsNull() {
					continue
				}
				key = xv.String()
			}
			g, exists := groups[key]
			if !exists {
				g = &aggState{}
				groups[key] = g
				order = append(order, key)
			}
			g.add(t.Get(i, yi))
		}
		for _, key := range order {
			y, ok := groups[key].result(q.Agg)
			if !ok {
				continue
			}
			data.Points = append(data.Points, vis.Point{Label: key, Y: y})
		}
	case TransformBin:
		bins := make(map[int64]*aggState)
		for _, i := range rows {
			x, ok := t.Get(i, xi).Float()
			if !ok {
				continue
			}
			b := int64(math.Floor(x / q.BinInterval))
			g, exists := bins[b]
			if !exists {
				g = &aggState{}
				bins[b] = g
			}
			g.add(t.Get(i, yi))
		}
		keys := make([]int64, 0, len(bins))
		for b := range bins {
			keys = append(keys, b)
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		for _, b := range keys {
			y, ok := bins[b].result(q.Agg)
			if !ok {
				continue
			}
			lo := float64(b) * q.BinInterval
			hi := lo + q.BinInterval
			data.Points = append(data.Points, vis.Point{
				Label: binLabel(lo, hi),
				X:     lo,
				HasX:  true,
				Y:     y,
			})
		}
	}

	q.sortPoints(data)
	if q.Limit > 0 && len(data.Points) > q.Limit {
		data.Points = data.Points[:q.Limit]
	}
	return data, nil
}

func binLabel(lo, hi float64) string {
	return "[" + strconv.FormatFloat(lo, 'g', -1, 64) + "," + strconv.FormatFloat(hi, 'g', -1, 64) + ")"
}

// filterRows returns the row indices passing every WHERE conjunct.
func (q *Query) filterRows(t *dataset.Table) []int {
	idx := make([]int, 0, t.NumRows())
	cols := make([]int, len(q.Where))
	for k, p := range q.Where {
		cols[k] = t.ColumnIndex(p.Column)
	}
rows:
	for i := 0; i < t.NumRows(); i++ {
		for k, p := range q.Where {
			if !matches(t.Get(i, cols[k]), p) {
				continue rows
			}
		}
		idx = append(idx, i)
	}
	return idx
}

func matches(v dataset.Value, p Predicate) bool {
	if v.IsNull() {
		return false
	}
	if p.IsNum {
		f, ok := v.Float()
		if !ok {
			return false
		}
		switch p.Op {
		case OpEq:
			return f == p.NumValue
		case OpLt:
			return f < p.NumValue
		case OpLe:
			return f <= p.NumValue
		case OpGe:
			return f >= p.NumValue
		case OpGt:
			return f > p.NumValue
		}
		return false
	}
	s, ok := v.Text()
	if !ok {
		return false
	}
	switch p.Op {
	case OpEq:
		return s == p.StrValue
	case OpLt:
		return s < p.StrValue
	case OpLe:
		return s <= p.StrValue
	case OpGe:
		return s >= p.StrValue
	case OpGt:
		return s > p.StrValue
	}
	return false
}

func (q *Query) sortPoints(d *vis.Data) {
	if q.Sort == AxisNone {
		return
	}
	cmp := func(pa, pb vis.Point) int {
		if q.Sort == AxisY {
			switch {
			case pa.Y < pb.Y:
				return -1
			case pa.Y > pb.Y:
				return 1
			}
			return 0
		}
		if pa.HasX && pb.HasX {
			switch {
			case pa.X < pb.X:
				return -1
			case pa.X > pb.X:
				return 1
			}
			return 0
		}
		return strings.Compare(pa.Label, pb.Label)
	}
	sort.SliceStable(d.Points, func(a, b int) bool {
		c := cmp(d.Points[a], d.Points[b])
		if c == 0 {
			// Deterministic tiebreak independent of sort direction.
			return d.Points[a].Label < d.Points[b].Label
		}
		if q.SortDesc {
			return c > 0
		}
		return c < 0
	})
}

// ReplaceDatasetName returns a copy of the query with FROM rewritten;
// the experiment harness uses it to point one task at scaled datasets.
func (q *Query) ReplaceDatasetName(name string) *Query {
	cp := *q
	cp.From = name
	cp.Where = append([]Predicate(nil), q.Where...)
	return &cp
}

// NormalizeKeywordCase is a helper for tests: uppercases bare keywords so
// string comparisons of serialized queries are stable.
func NormalizeKeywordCase(src string) string {
	return strings.Join(strings.Fields(src), " ")
}
