package distance

import (
	"math"
	"testing"

	"visclean/internal/vis"
)

func categorical(labels []string, ys []float64) *vis.Data {
	d := &vis.Data{Type: vis.Bar}
	for i := range labels {
		d.Points = append(d.Points, vis.Point{Label: labels[i], Y: ys[i]})
	}
	return d
}

func binned(xs, ys []float64) *vis.Data {
	d := &vis.Data{Type: vis.Bar}
	for i := range xs {
		d.Points = append(d.Points, vis.Point{Label: "b", X: xs[i], HasX: true, Y: ys[i]})
	}
	return d
}

func TestDefaultDispatchesCategorical(t *testing.T) {
	a := categorical([]string{"SIGMOD", "VLDB"}, []float64{3, 1})
	b := categorical([]string{"SIGMOD", "VLDB"}, []float64{1, 3})
	if got, want := Default(a, b), L1(a, b); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Default = %v, L1 = %v", got, want)
	}
}

func TestDefaultDispatchesPositional(t *testing.T) {
	a := binned([]float64{0, 1}, []float64{3, 1})
	b := binned([]float64{0, 1}, []float64{1, 3})
	if got, want := Default(a, b), EMD1D(a, b); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Default = %v, EMD1D = %v", got, want)
	}
}

func TestDefaultMixedFallsBackToL1(t *testing.T) {
	a := binned([]float64{0}, []float64{1})
	b := categorical([]string{"x"}, []float64{1})
	if got, want := Default(a, b), L1(a, b); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Default mixed = %v, want L1 %v", got, want)
	}
}

// TestDefaultSeesLabelSwap is the scenario that disqualifies the paper's
// literal EMD as a progress measure: same bar heights, wrong categories.
func TestDefaultSeesLabelSwap(t *testing.T) {
	a := categorical([]string{"SIGMOD", "VLDB"}, []float64{3, 1})
	b := categorical([]string{"VLDB", "SIGMOD"}, []float64{3, 1})
	if got := EMD(a, b); got > 1e-12 {
		t.Fatalf("literal EMD should be blind to the swap, got %v", got)
	}
	if got := Default(a, b); got <= 0 {
		t.Fatalf("Default must see the swap, got %v", got)
	}
}

func TestDefaultIdentity(t *testing.T) {
	a := categorical([]string{"x", "y", "z"}, []float64{5, 2, 1})
	if got := Default(a, a); got > 1e-12 {
		t.Fatalf("Default identity = %v", got)
	}
	p := binned([]float64{0, 200, 400}, []float64{5, 2, 1})
	if got := Default(p, p); got > 1e-12 {
		t.Fatalf("Default positional identity = %v", got)
	}
}
