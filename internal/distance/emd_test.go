package distance

import (
	"math"
	"math/rand"
	"testing"

	"visclean/internal/vis"
)

func chart(ys ...float64) *vis.Data {
	d := &vis.Data{Type: vis.Bar, XField: "X", YField: "Y"}
	for i, y := range ys {
		d.Points = append(d.Points, vis.Point{Label: string(rune('A' + i)), Y: y})
	}
	return d
}

func TestEMDIdentity(t *testing.T) {
	a := chart(1, 2, 3, 4)
	if got := EMD(a, a); got > 1e-12 {
		t.Fatalf("EMD(a,a) = %v, want 0", got)
	}
}

func TestEMDSymmetry(t *testing.T) {
	a, b := chart(1, 2, 3), chart(3, 1, 5, 2)
	if d1, d2 := EMD(a, b), EMD(b, a); math.Abs(d1-d2) > 1e-12 {
		t.Fatalf("EMD not symmetric: %v vs %v", d1, d2)
	}
}

func TestEMDEmptyCharts(t *testing.T) {
	e := chart()
	if got := EMD(e, e); got != 0 {
		t.Fatalf("EMD(empty,empty) = %v", got)
	}
	if got := EMD(e, chart(1, 2)); got != 1 {
		t.Fatalf("EMD(empty,nonempty) = %v, want 1", got)
	}
}

func TestEMDKnownValue(t *testing.T) {
	// a normalizes to (1, 0)... not valid: use (0.75, 0.25) vs (0.5, 0.5).
	a := chart(3, 1) // -> 0.75, 0.25
	b := chart(1, 1) // -> 0.5, 0.5
	// Sorted masses: a = (0.25, 0.75), b = (0.5, 0.5).
	// Monotone coupling: 0.25 mass at cost |0.25-0.5|=0.25, then 0.25 of
	// 0.75 onto remaining 0.25 of first 0.5 at cost |0.75-0.5|=0.25, then
	// 0.5 onto 0.5 at cost 0.25. Work = 0.25*0.25 + 0.25*0.25 + 0.5*0.25
	// = 0.25. Total flow 1, EMD = 0.25.
	if got := EMD(a, b); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("EMD = %v, want 0.25", got)
	}
}

func TestEMDMatchesFlowSolver(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		m, n := 1+rng.Intn(8), 1+rng.Intn(8)
		pa := randomDist(rng, m)
		pb := randomDist(rng, n)
		fast := EMDVectors(pa, pb)
		exact := emdViaFlow(pa, pb)
		if math.Abs(fast-exact) > 1e-9 {
			t.Fatalf("trial %d: fast EMD %v != flow EMD %v (pa=%v pb=%v)", trial, fast, exact, pa, pb)
		}
	}
}

func randomDist(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	sum := 0.0
	for i := range out {
		out[i] = rng.Float64()
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

func TestEMDTriangleInequality(t *testing.T) {
	// EMD over distributions is a metric; spot-check the triangle
	// inequality on random normalized vectors of equal support size.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(6)
		a, b, c := randomDist(rng, n), randomDist(rng, n), randomDist(rng, n)
		dab := EMDVectors(a, b)
		dbc := EMDVectors(b, c)
		dac := EMDVectors(a, c)
		if dac > dab+dbc+1e-9 {
			t.Fatalf("triangle violated: d(a,c)=%v > %v+%v", dac, dab, dbc)
		}
	}
}

func TestEMDNegativeValuesShifted(t *testing.T) {
	// Negative bars are shifted before normalization; must not panic and
	// must keep identity at zero.
	a := chart(-5, 10, 3)
	if got := EMD(a, a); got > 1e-12 {
		t.Fatalf("EMD(a,a) with negatives = %v", got)
	}
	b := chart(-5, 10, 4)
	if got := EMD(a, b); got < 0 {
		t.Fatalf("negative EMD %v", got)
	}
}

func TestEMDAllZeroSeries(t *testing.T) {
	a := chart(0, 0, 0)
	b := chart(1, 1, 1)
	// Both normalize to uniform; distance 0.
	if got := EMD(a, b); got > 1e-12 {
		t.Fatalf("EMD(uniform,uniform) = %v", got)
	}
}

func TestEMD1D(t *testing.T) {
	mk := func(pos []float64, ys []float64) *vis.Data {
		d := &vis.Data{Type: vis.Bar}
		for i := range pos {
			d.Points = append(d.Points, vis.Point{Label: "b", X: pos[i], HasX: true, Y: ys[i]})
		}
		return d
	}
	// All mass at 0 vs all mass at 1 → W1 = 1.
	a := mk([]float64{0}, []float64{5})
	b := mk([]float64{1}, []float64{7})
	if got := EMD1D(a, b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("EMD1D = %v, want 1", got)
	}
	if got := EMD1D(a, a); got != 0 {
		t.Fatalf("EMD1D identity = %v", got)
	}
	if got := EMD1D(&vis.Data{}, a); got != 1 {
		t.Fatalf("EMD1D empty vs nonempty = %v", got)
	}
}

func TestLabelAlignedDistances(t *testing.T) {
	a := &vis.Data{Points: []vis.Point{{Label: "SIGMOD", Y: 3}, {Label: "VLDB", Y: 1}}}
	b := &vis.Data{Points: []vis.Point{{Label: "SIGMOD", Y: 1}, {Label: "VLDB", Y: 3}}}
	if got := L1(a, b); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("L1 = %v, want 0.5", got)
	}
	if got := L2(a, b); math.Abs(got-math.Sqrt(0.5)) > 1e-12 {
		t.Fatalf("L2 = %v", got)
	}
	for name, f := range map[string]Func{"L1": L1, "L2": L2, "KL": KL, "JS": JS} {
		if d := f(a, a); d > 1e-6 {
			t.Errorf("%s identity = %v", name, d)
		}
		if d := f(a, b); d <= 0 {
			t.Errorf("%s(a,b) = %v, want > 0", name, d)
		}
	}
	// Symmetric ones.
	for name, f := range map[string]Func{"L1": L1, "L2": L2, "JS": JS} {
		if d1, d2 := f(a, b), f(b, a); math.Abs(d1-d2) > 1e-12 {
			t.Errorf("%s not symmetric: %v vs %v", name, d1, d2)
		}
	}
}

func TestDistancesDisjointLabels(t *testing.T) {
	a := &vis.Data{Points: []vis.Point{{Label: "A", Y: 1}}}
	b := &vis.Data{Points: []vis.Point{{Label: "B", Y: 1}}}
	if got := L1(a, b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("L1 disjoint = %v, want 1", got)
	}
	if got := JS(a, b); got <= 0 {
		t.Fatalf("JS disjoint = %v", got)
	}
}

func TestTransportationDirect(t *testing.T) {
	// 2 supplies, 2 demands, classic assignment structure.
	supply := []float64{0.5, 0.5}
	demand := []float64{0.5, 0.5}
	cost := [][]float64{{0, 1}, {1, 0}}
	flow := transportation(supply, demand, cost)
	if math.Abs(flow[0][0]-0.5) > 1e-9 || math.Abs(flow[1][1]-0.5) > 1e-9 {
		t.Fatalf("flow = %v, want diagonal", flow)
	}
	if flow[0][1] > 1e-9 || flow[1][0] > 1e-9 {
		t.Fatalf("off-diagonal flow: %v", flow)
	}
}

func TestTransportationUnbalanced(t *testing.T) {
	supply := []float64{1.0}
	demand := []float64{0.25, 0.25}
	cost := [][]float64{{2, 3}}
	flow := transportation(supply, demand, cost)
	// Total moved = min(1, 0.5) = 0.5, cheapest first.
	total := flow[0][0] + flow[0][1]
	if math.Abs(total-0.5) > 1e-9 {
		t.Fatalf("total flow = %v, want 0.5", total)
	}
	if math.Abs(flow[0][0]-0.25) > 1e-9 {
		t.Fatalf("flow[0][0] = %v, want 0.25", flow[0][0])
	}
}

func TestTransportationEmpty(t *testing.T) {
	flow := transportation(nil, []float64{1}, nil)
	if len(flow) != 0 {
		t.Fatalf("flow = %v", flow)
	}
}

func BenchmarkEMDFast(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pa := randomDist(rng, 20)
	pb := randomDist(rng, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EMDVectors(pa, pb)
	}
}

func BenchmarkEMDFlowSolver(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pa := randomDist(rng, 20)
	pb := randomDist(rng, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emdViaFlow(pa, pb)
	}
}
