package distance

import (
	"math"
	"reflect"
	"sort"

	"visclean/internal/vis"
)

// Baseline precomputes the base-side intermediates of Default so that
// repeated distances against one fixed visualization skip the base's
// normalization / label-map / sort work. This is the delta-EMD layer of
// incremental hypothesis pricing: one Baseline per iteration, one
// Distance call per hypothesis.
//
// Bit-identity contract: Distance(after) returns exactly the same float
// bits as dist(base, after). For Default that holds because the fast
// paths below perform the identical arithmetic in the identical order —
// the base prefix sums replay cdf's left-to-right additions, and the
// label union is enumerated in the same sorted order L1 uses. For any
// other dist the Baseline simply forwards, so the contract is trivially
// preserved.
type Baseline struct {
	dist Func
	base *vis.Data
	fast bool // dist is Default: use the incremental paths

	// EMD1D intermediates (valid when fast).
	basePositional bool
	baseXs         []float64 // sorted support (duplicates kept, like EMD1D's xs)
	basePrefix     []float64 // basePrefix[i] = mass of baseXs[:i+1] by running sum
	baseEmpty      bool

	// L1 intermediates (valid when fast).
	baseMass   map[string]float64
	baseLabels []string // sorted
}

// NewBaseline captures the base side of dist. base must not be mutated
// afterwards. A Baseline is immutable and safe for concurrent Distance
// calls.
func NewBaseline(dist Func, base *vis.Data) *Baseline {
	b := &Baseline{dist: dist, base: base}
	b.fast = reflect.ValueOf(dist).Pointer() == reflect.ValueOf(Func(Default)).Pointer()
	if !b.fast {
		return b
	}
	b.basePositional = allPositional(base)
	b.baseEmpty = len(base.Points) == 0

	// EMD1D base side: the sorted (x, mass) support with running prefix
	// sums. sortWeighted is the exact extraction EMD1D performs, so the
	// prefix sums replay its cdf additions bit for bit.
	ws := sortWeighted(base)
	b.baseXs = make([]float64, len(ws))
	b.basePrefix = make([]float64, len(ws))
	run := 0.0
	for i, w := range ws {
		b.baseXs[i] = w.x
		run += w.p
		b.basePrefix[i] = run
	}

	// L1 base side: the normalized label-mass map and its sorted labels.
	b.baseMass = normalizedLabelMap(base)
	b.baseLabels = make([]string, 0, len(b.baseMass))
	for l := range b.baseMass {
		b.baseLabels = append(b.baseLabels, l)
	}
	sort.Strings(b.baseLabels)
	return b
}

type weighted struct{ x, p float64 }

// sortWeighted mirrors EMD1D's extract: normalized masses at their x
// positions (index fallback), sorted by x with Go's deterministic
// (unstable but input-determined) sort.
func sortWeighted(d *vis.Data) []weighted {
	norm := d.NormalizedY()
	out := make([]weighted, len(d.Points))
	for i, pt := range d.Points {
		x := float64(i)
		if pt.HasX {
			x = pt.X
		}
		out[i] = weighted{x: x, p: norm[i]}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].x < out[j].x })
	return out
}

// Distance returns dist(base, after), using the precomputed base
// intermediates when dist is Default.
func (b *Baseline) Distance(after *vis.Data) float64 {
	if !b.fast {
		return b.dist(b.base, after)
	}
	if b.basePositional && allPositional(after) {
		return b.emd1d(after)
	}
	return b.l1(after)
}

// emd1d integrates |CDF_base − CDF_after| over the merged support,
// reading the base CDF from the prefix-sum table. The after side's
// prefix sums are built the same way, so every addition matches the
// from-scratch EMD1D evaluation.
func (b *Baseline) emd1d(after *vis.Data) float64 {
	wb := sortWeighted(after)
	switch {
	case b.baseEmpty && len(wb) == 0:
		return 0
	case b.baseEmpty || len(wb) == 0:
		return 1
	}
	bXs := make([]float64, len(wb))
	bPrefix := make([]float64, len(wb))
	run := 0.0
	for i, w := range wb {
		bXs[i] = w.x
		run += w.p
		bPrefix[i] = run
	}

	xs := make([]float64, 0, len(b.baseXs)+len(bXs))
	xs = append(xs, b.baseXs...)
	xs = append(xs, bXs...)
	sort.Float64s(xs)

	cdf := func(sortedXs, prefix []float64, x float64) float64 {
		// Number of support points with w.x <= x; the slice is sorted, so
		// they form a prefix and the running sum equals cdf's loop.
		n := sort.SearchFloat64s(sortedXs, x)
		for n < len(sortedXs) && sortedXs[n] <= x {
			n++
		}
		if n == 0 {
			return 0
		}
		return prefix[n-1]
	}
	total := 0.0
	for i := 0; i+1 < len(xs); i++ {
		width := xs[i+1] - xs[i]
		if width <= 0 {
			continue
		}
		total += math.Abs(cdf(b.baseXs, b.basePrefix, xs[i])-cdf(bXs, bPrefix, xs[i])) * width
	}
	return total
}

// l1 is L1 with the base side precomputed: the union of labels is the
// merge of the two sorted label lists, identical to unionLabels' sorted
// output, and the sum runs in that order.
func (b *Baseline) l1(after *vis.Data) float64 {
	mb := normalizedLabelMap(after)
	labelsB := make([]string, 0, len(mb))
	for l := range mb {
		labelsB = append(labelsB, l)
	}
	sort.Strings(labelsB)

	sum := 0.0
	i, j := 0, 0
	for i < len(b.baseLabels) || j < len(labelsB) {
		var l string
		switch {
		case j >= len(labelsB) || (i < len(b.baseLabels) && b.baseLabels[i] < labelsB[j]):
			l = b.baseLabels[i]
			i++
		case i >= len(b.baseLabels) || labelsB[j] < b.baseLabels[i]:
			l = labelsB[j]
			j++
		default: // equal
			l = b.baseLabels[i]
			i++
			j++
		}
		sum += math.Abs(b.baseMass[l] - mb[l])
	}
	return sum / 2
}
