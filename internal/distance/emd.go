package distance

import (
	"math"
	"sort"

	"visclean/internal/vis"
)

// Default is the distance the pipeline uses to compare visualizations:
// for charts whose marks carry numeric positions (binned axes) it is the
// positional Earth Mover's Distance (EMD1D); for categorical charts it
// is the label-aligned total-variation distance (L1) — equivalently, EMD
// on the category axis with a 0/1 ground distance.
//
// The paper's Eq. (1)–(4) defines δ_ij = |d_i(y) − d'_j(y)| — a ground
// distance over the *masses themselves*, blind to which bar a mass
// belongs to. Implemented literally (see EMD below, kept for
// reproduction), that measure cannot tell a correctly-cleaned chart from
// one with the same bar heights on the wrong categories, and real
// cleaning trajectories measured with it are non-monotone noise. The
// label-aligned default restores the semantics the paper's narrative
// (and its SEEDB citation [36]) requires; DESIGN.md documents the
// deviation.
func Default(a, b *vis.Data) float64 {
	if allPositional(a) && allPositional(b) {
		return EMD1D(a, b)
	}
	return L1(a, b)
}

func allPositional(d *vis.Data) bool {
	if len(d.Points) == 0 {
		return false
	}
	for _, p := range d.Points {
		if !p.HasX {
			return false
		}
	}
	return true
}

// EMD computes the Earth Mover's Distance between two visualizations
// following §II-B exactly: both y series are normalized into probability
// distributions, the ground distance is δ_ij = |d_i(y) − d'_j(y)| (the
// absolute difference of the normalized y masses), and the optimal flow
// F minimizing Σ f_ij·δ_ij subject to Eq. (2)–(3) defines
//
//	EMD = Σ f_ij δ_ij / Σ f_ij.
//
// Two empty visualizations have distance 0; an empty versus a non-empty
// one has distance 1 (maximal, since no mass can flow).
func EMD(a, b *vis.Data) float64 {
	pa, pb := a.NormalizedY(), b.NormalizedY()
	return EMDVectors(pa, pb)
}

// EMDVectors is EMD on already-normalized mass vectors. Exposed so the
// benefit model can reuse normalized intermediates.
func EMDVectors(pa, pb []float64) float64 {
	switch {
	case len(pa) == 0 && len(pb) == 0:
		return 0
	case len(pa) == 0 || len(pb) == 0:
		return 1
	}
	// The ground distance depends only on the mass values themselves, so
	// the transportation problem is one-dimensional in disguise: moving
	// mass between positions p_i and p'_j costs |p_i − p'_j|. The optimal
	// plan is the monotone (sorted) coupling; computing it directly is
	// exact and far faster than the LP for identical results. We keep the
	// flow solver as the reference implementation (tests cross-check).
	sa := append([]float64(nil), pa...)
	sb := append([]float64(nil), pb...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	work, total := monotoneCoupling(sa, sb)
	if total <= 0 {
		return 0
	}
	return work / total
}

// emdViaFlow solves the same problem with the min-cost-flow solver. It is
// the literal Eq. (1)–(4) implementation and is used by tests to validate
// the fast path.
func emdViaFlow(pa, pb []float64) float64 {
	switch {
	case len(pa) == 0 && len(pb) == 0:
		return 0
	case len(pa) == 0 || len(pb) == 0:
		return 1
	}
	cost := make([][]float64, len(pa))
	for i := range pa {
		cost[i] = make([]float64, len(pb))
		for j := range pb {
			cost[i][j] = math.Abs(pa[i] - pb[j])
		}
	}
	flow := transportation(pa, pb, cost)
	var work, total float64
	for i := range flow {
		for j := range flow[i] {
			work += flow[i][j] * cost[i][j]
			total += flow[i][j]
		}
	}
	if total <= 0 {
		return 0
	}
	return work / total
}

// monotoneCoupling transports sorted masses sa onto sorted masses sb in
// order, returning (Σ f·δ, Σ f). For a 1-D ground distance the sorted
// greedy coupling is an optimal transportation plan.
func monotoneCoupling(sa, sb []float64) (work, total float64) {
	i, j := 0, 0
	ra, rb := sa[0], sb[0]
	const eps = 1e-15
	for i < len(sa) && j < len(sb) {
		f := ra
		if rb < f {
			f = rb
		}
		if f > 0 {
			work += f * math.Abs(sa[i]-sb[j])
			total += f
		}
		ra -= f
		rb -= f
		if ra <= eps {
			i++
			if i < len(sa) {
				ra = sa[i]
			}
		}
		if rb <= eps {
			j++
			if j < len(sb) {
				rb = sb[j]
			}
		}
	}
	return work, total
}

// EMD1D computes the positional Earth Mover's Distance for charts whose x
// axis is ordered (binned numeric axes): mass p_i sits at position x_i and
// the ground distance is |x_i − x_j|. This is the Wasserstein-1 distance,
// computed by the CDF-difference closed form. Points lacking numeric x
// positions fall back to their index.
func EMD1D(a, b *vis.Data) float64 {
	type wp struct{ x, p float64 }
	extract := func(d *vis.Data) []wp {
		norm := d.NormalizedY()
		out := make([]wp, len(d.Points))
		for i, pt := range d.Points {
			x := float64(i)
			if pt.HasX {
				x = pt.X
			}
			out[i] = wp{x: x, p: norm[i]}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].x < out[j].x })
		return out
	}
	wa, wb := extract(a), extract(b)
	switch {
	case len(wa) == 0 && len(wb) == 0:
		return 0
	case len(wa) == 0 || len(wb) == 0:
		return 1
	}
	// Merge the support points and integrate |CDF_a − CDF_b|.
	var xs []float64
	for _, w := range wa {
		xs = append(xs, w.x)
	}
	for _, w := range wb {
		xs = append(xs, w.x)
	}
	sort.Float64s(xs)
	cdf := func(ws []wp, x float64) float64 {
		s := 0.0
		for _, w := range ws {
			if w.x <= x {
				s += w.p
			}
		}
		return s
	}
	total := 0.0
	for i := 0; i+1 < len(xs); i++ {
		width := xs[i+1] - xs[i]
		if width <= 0 {
			continue
		}
		total += math.Abs(cdf(wa, xs[i])-cdf(wb, xs[i])) * width
	}
	return total
}

// L1 is the label-aligned total variation style distance: ½ Σ_labels
// |p_a(l) − p_b(l)| over normalized series, treating absent labels as 0.
// Summation runs in sorted label order, not map iteration order: float
// addition is order-sensitive, and since this is the default distance
// the benefit model maximizes over, a per-run summation order would put
// last-ULP noise in every benefit — enough to flip strict > comparisons
// in CQG selection between identically-seeded runs.
func L1(a, b *vis.Data) float64 {
	ma, mb := normalizedLabelMap(a), normalizedLabelMap(b)
	sum := 0.0
	for _, l := range unionLabels(ma, mb) {
		sum += math.Abs(ma[l] - mb[l])
	}
	return sum / 2
}

// L2 is the label-aligned Euclidean distance over normalized series.
// Sorted label order for the same reason as L1.
func L2(a, b *vis.Data) float64 {
	ma, mb := normalizedLabelMap(a), normalizedLabelMap(b)
	sum := 0.0
	for _, l := range unionLabels(ma, mb) {
		d := ma[l] - mb[l]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// KL is the label-aligned Kullback-Leibler divergence KL(a ‖ b) with
// additive smoothing so absent labels do not yield infinities.
func KL(a, b *vis.Data) float64 {
	ma, mb := normalizedLabelMap(a), normalizedLabelMap(b)
	labels := unionLabels(ma, mb)
	const eps = 1e-9
	sum := 0.0
	for _, l := range labels {
		pa := ma[l] + eps
		pb := mb[l] + eps
		sum += pa * math.Log(pa/pb)
	}
	if sum < 0 {
		return 0 // smoothing can produce tiny negatives
	}
	return sum
}

// JS is the Jensen-Shannon divergence, a smoothed symmetric KL.
func JS(a, b *vis.Data) float64 {
	ma, mb := normalizedLabelMap(a), normalizedLabelMap(b)
	labels := unionLabels(ma, mb)
	const eps = 1e-9
	sum := 0.0
	for _, l := range labels {
		pa := ma[l] + eps
		pb := mb[l] + eps
		m := (pa + pb) / 2
		sum += pa*math.Log(pa/m)/2 + pb*math.Log(pb/m)/2
	}
	if sum < 0 {
		return 0
	}
	return sum
}

func normalizedLabelMap(d *vis.Data) map[string]float64 {
	norm := d.NormalizedY()
	m := make(map[string]float64, len(d.Points))
	for i, p := range d.Points {
		m[p.Label] += norm[i]
	}
	return m
}

func unionLabels(a, b map[string]float64) []string {
	set := make(map[string]struct{}, len(a)+len(b))
	for l := range a {
		set[l] = struct{}{}
	}
	for l := range b {
		set[l] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Func is a visualization distance function. The pipeline is parameterized
// over it; EMD is the default per the paper.
type Func func(a, b *vis.Data) float64
