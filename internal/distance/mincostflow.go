// Package distance quantifies the difference between two visualizations
// (challenge C1 of the paper). The primary function is the Earth Mover's
// Distance of §II-B (Eq. 1–4), solved exactly as a transportation problem
// with a successive-shortest-path min-cost-flow solver; Kullback-Leibler,
// Jensen-Shannon, L1 and L2 alternatives are provided as the paper notes
// any distance function may be plugged in.
package distance

import (
	"math"
)

// transportation solves the balanced-or-unbalanced transportation problem:
// move mass from supplies to demands minimizing Σ flow[i][j]*cost[i][j],
// subject to row sums ≤ supply[i], column sums ≤ demand[j], and total flow
// = min(Σsupply, Σdemand). It returns the optimal flow matrix.
//
// The solver builds a bipartite flow network (source → supplies → demands
// → sink) and repeatedly augments along the cheapest residual path using
// Bellman-Ford, which handles the negative reduced costs that appear in
// residual arcs without needing potentials. Problem sizes here are chart
// series (tens of points), so the O(F·V·E) bound is irrelevant in
// practice.
func transportation(supply, demand []float64, cost [][]float64) [][]float64 {
	m, n := len(supply), len(demand)
	flow := make([][]float64, m)
	for i := range flow {
		flow[i] = make([]float64, n)
	}
	if m == 0 || n == 0 {
		return flow
	}

	// Node numbering: 0 = source, 1..m = supplies, m+1..m+n = demands,
	// m+n+1 = sink.
	src, sink := 0, m+n+1
	nodes := m + n + 2

	type edge struct {
		to, rev int
		cap     float64
		cost    float64
	}
	graph := make([][]edge, nodes)
	addEdge := func(u, v int, cap, cost float64) {
		graph[u] = append(graph[u], edge{to: v, rev: len(graph[v]), cap: cap, cost: cost})
		graph[v] = append(graph[v], edge{to: u, rev: len(graph[u]) - 1, cap: 0, cost: -cost})
	}
	for i := 0; i < m; i++ {
		if supply[i] > 0 {
			addEdge(src, 1+i, supply[i], 0)
		}
	}
	for j := 0; j < n; j++ {
		if demand[j] > 0 {
			addEdge(1+m+j, sink, demand[j], 0)
		}
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			addEdge(1+i, 1+m+j, math.Inf(1), cost[i][j])
		}
	}

	const eps = 1e-12
	for {
		// Bellman-Ford shortest path by cost from src.
		dist := make([]float64, nodes)
		prevNode := make([]int, nodes)
		prevEdge := make([]int, nodes)
		inQueue := make([]bool, nodes)
		for i := range dist {
			dist[i] = math.Inf(1)
			prevNode[i] = -1
		}
		dist[src] = 0
		queue := []int{src}
		inQueue[src] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			inQueue[u] = false
			for ei, e := range graph[u] {
				if e.cap <= eps {
					continue
				}
				if nd := dist[u] + e.cost; nd < dist[e.to]-eps {
					dist[e.to] = nd
					prevNode[e.to] = u
					prevEdge[e.to] = ei
					if !inQueue[e.to] {
						queue = append(queue, e.to)
						inQueue[e.to] = true
					}
				}
			}
		}
		if math.IsInf(dist[sink], 1) {
			break // no augmenting path; max flow reached
		}
		// Find bottleneck.
		aug := math.Inf(1)
		for v := sink; v != src; v = prevNode[v] {
			e := graph[prevNode[v]][prevEdge[v]]
			if e.cap < aug {
				aug = e.cap
			}
		}
		if aug <= eps {
			break
		}
		// Apply augmentation and record flow on supply→demand arcs.
		for v := sink; v != src; v = prevNode[v] {
			u := prevNode[v]
			e := &graph[u][prevEdge[v]]
			e.cap -= aug
			graph[v][e.rev].cap += aug
			if u >= 1 && u <= m && v >= 1+m && v <= m+n {
				flow[u-1][v-1-m] += aug
			} else if v >= 1 && v <= m && u >= 1+m && u <= m+n {
				flow[v-1][u-1-m] -= aug // flow pushed back on residual arc
			}
		}
	}
	return flow
}
