package distance

import (
	"fmt"
	"testing"

	"visclean/internal/vis"
)

func blCat(ys ...float64) *vis.Data {
	d := &vis.Data{Type: vis.Bar}
	for i, y := range ys {
		d.Points = append(d.Points, vis.Point{Label: fmt.Sprintf("l%d", i), Y: y})
	}
	return d
}

func blPos(pts ...[2]float64) *vis.Data {
	d := &vis.Data{Type: vis.Bar}
	for _, p := range pts {
		d.Points = append(d.Points, vis.Point{Label: fmt.Sprintf("[%g)", p[0]), X: p[0], HasX: true, Y: p[1]})
	}
	return d
}

// TestBaselineMatchesDefault sweeps chart pairs across the dispatch
// space — categorical (L1 path), positional (EMD1D path), mixed, empty,
// duplicate-x, negative masses — and requires the baseline's fast paths
// to reproduce Default bit for bit.
func TestBaselineMatchesDefault(t *testing.T) {
	charts := []*vis.Data{
		{},
		blCat(1),
		blCat(174, 1740, 15, 13),
		blCat(3, 3, 3),
		blCat(-1, 4, 2),
		blPos([2]float64{2013, 174}, [2]float64{2014, 55}, [2]float64{2015, 42}),
		blPos([2]float64{2013, 100}, [2]float64{2013.5, 7}),
		blPos([2]float64{2013, 1}, [2]float64{2013, 2}, [2]float64{2014, 3}),
		{Points: []vis.Point{{Label: "a", Y: 5}, {Label: "b", X: 1, HasX: true, Y: 3}}},
	}
	for i, base := range charts {
		bl := NewBaseline(Default, base)
		for j, after := range charts {
			got := bl.Distance(after)
			want := Default(base, after)
			if got != want {
				t.Errorf("base %d vs after %d: baseline %v != default %v", i, j, got, want)
			}
		}
	}
}

// TestBaselineNonDefaultFallsBack checks a custom distance function is
// forwarded untouched.
func TestBaselineNonDefaultFallsBack(t *testing.T) {
	calls := 0
	custom := func(a, b *vis.Data) float64 {
		calls++
		return 42
	}
	bl := NewBaseline(custom, blCat(1, 2))
	if got := bl.Distance(blCat(3)); got != 42 {
		t.Fatalf("custom distance not forwarded: got %v", got)
	}
	if calls != 1 {
		t.Fatalf("custom distance called %d times", calls)
	}
}

// TestBaselineAgainstNamedFuncs cross-checks the fast paths against the
// exported L1/EMD1D they shortcut.
func TestBaselineAgainstNamedFuncs(t *testing.T) {
	a := blCat(174, 1740, 15)
	b := blCat(174, 40, 15)
	if got, want := NewBaseline(Default, a).Distance(b), L1(a, b); got != want {
		t.Fatalf("L1 path: %v != %v", got, want)
	}
	pa := blPos([2]float64{0, 1}, [2]float64{1, 2})
	pb := blPos([2]float64{0.5, 4}, [2]float64{1, 1})
	if got, want := NewBaseline(Default, pa).Distance(pb), EMD1D(pa, pb); got != want {
		t.Fatalf("EMD1D path: %v != %v", got, want)
	}
}
