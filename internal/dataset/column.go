package dataset

import "strings"

// column is the typed storage behind one attribute. Implementations hold
// flat arrays plus a null bitmap; Table enforces kind checks before
// calling set/appendVal, so columns trust their inputs.
type column interface {
	kind() Kind
	get(i int) Value
	isNull(i int) bool
	set(i int, v Value)
	appendVal(v Value)
	// cmp orders two cells with Value.Compare semantics: nulls first,
	// then by value.
	cmp(a, b int) int
	clone() column
	// permute reorders cells so that new position i holds old cell
	// idx[i]. len(idx) equals the column length.
	permute(idx []int)
	// compact keeps only cells whose keep bit is true, preserving order.
	compact(keep []bool, kept int)
}

// floatCol stores a Float column as a flat []float64 plus null bitmap.
type floatCol struct {
	vals  []float64
	nulls bitmap
}

func (c *floatCol) kind() Kind { return Float }

func (c *floatCol) get(i int) Value {
	if c.nulls.get(i) {
		return Value{kind: Float, null: true}
	}
	return Value{kind: Float, num: c.vals[i]}
}

func (c *floatCol) isNull(i int) bool { return c.nulls.get(i) }

func (c *floatCol) set(i int, v Value) {
	if v.null {
		c.nulls.set(i, true)
		c.vals[i] = 0
		return
	}
	c.nulls.set(i, false)
	c.vals[i] = v.num
}

func (c *floatCol) appendVal(v Value) {
	i := len(c.vals)
	c.vals = append(c.vals, v.num) // v.num is 0 for nulls
	if v.null {
		c.nulls.set(i, true)
	}
}

func (c *floatCol) cmp(a, b int) int {
	na, nb := c.nulls.get(a), c.nulls.get(b)
	switch {
	case na && nb:
		return 0
	case na:
		return -1
	case nb:
		return 1
	}
	va, vb := c.vals[a], c.vals[b]
	switch {
	case va < vb:
		return -1
	case va > vb:
		return 1
	default:
		return 0
	}
}

func (c *floatCol) clone() column {
	vals := make([]float64, len(c.vals))
	copy(vals, c.vals)
	return &floatCol{vals: vals, nulls: c.nulls.clone()}
}

func (c *floatCol) permute(idx []int) {
	vals := make([]float64, len(c.vals))
	var nulls bitmap
	hasNulls := c.nulls.anySet(len(c.vals))
	for to, from := range idx {
		vals[to] = c.vals[from]
		if hasNulls && c.nulls.get(from) {
			nulls.set(to, true)
		}
	}
	c.vals, c.nulls = vals, nulls
}

func (c *floatCol) compact(keep []bool, kept int) {
	vals := make([]float64, 0, kept)
	var nulls bitmap
	hasNulls := c.nulls.anySet(len(c.vals))
	for i, k := range keep {
		if !k {
			continue
		}
		if hasNulls && c.nulls.get(i) {
			nulls.set(len(vals), true)
		}
		vals = append(vals, c.vals[i])
	}
	c.vals, c.nulls = vals, nulls
}

// stringCol stores a String column as []uint32 codes into an interner.
// Clones share the dictionary read-only (shared=true on both sides);
// ensureDict copies it before the first new-string write.
type stringCol struct {
	codes  []uint32
	nulls  bitmap
	dict   *interner
	shared bool
}

func newStringCol() *stringCol { return &stringCol{dict: newInterner()} }

func (c *stringCol) kind() Kind { return String }

func (c *stringCol) get(i int) Value {
	if c.nulls.get(i) {
		return Value{kind: String, null: true}
	}
	return Value{kind: String, str: c.dict.strs[c.codes[i]]}
}

func (c *stringCol) isNull(i int) bool { return c.nulls.get(i) }

// text returns the cell's string without constructing a Value.
func (c *stringCol) text(i int) (string, bool) {
	if c.nulls.get(i) {
		return "", false
	}
	return c.dict.strs[c.codes[i]], true
}

// codeFor interns s, copying a shared dictionary first when s is new.
func (c *stringCol) codeFor(s string) uint32 {
	if code, ok := c.dict.lookup(s); ok {
		return code
	}
	if c.shared {
		c.dict = c.dict.clone()
		c.shared = false
	}
	return c.dict.intern(s)
}

func (c *stringCol) set(i int, v Value) {
	if v.null {
		c.nulls.set(i, true)
		c.codes[i] = 0
		return
	}
	c.nulls.set(i, false)
	c.codes[i] = c.codeFor(v.str)
}

func (c *stringCol) appendVal(v Value) {
	i := len(c.codes)
	if v.null {
		c.codes = append(c.codes, 0)
		c.nulls.set(i, true)
		return
	}
	c.codes = append(c.codes, c.codeFor(v.str))
}

func (c *stringCol) cmp(a, b int) int {
	na, nb := c.nulls.get(a), c.nulls.get(b)
	switch {
	case na && nb:
		return 0
	case na:
		return -1
	case nb:
		return 1
	}
	ca, cb := c.codes[a], c.codes[b]
	if ca == cb {
		return 0
	}
	return strings.Compare(c.dict.strs[ca], c.dict.strs[cb])
}

func (c *stringCol) clone() column {
	codes := make([]uint32, len(c.codes))
	copy(codes, c.codes)
	// Both sides now treat the dictionary as frozen; whichever table
	// first needs a new code copies it (see codeFor).
	c.shared = true
	return &stringCol{codes: codes, nulls: c.nulls.clone(), dict: c.dict, shared: true}
}

func (c *stringCol) permute(idx []int) {
	codes := make([]uint32, len(c.codes))
	var nulls bitmap
	hasNulls := c.nulls.anySet(len(c.codes))
	for to, from := range idx {
		codes[to] = c.codes[from]
		if hasNulls && c.nulls.get(from) {
			nulls.set(to, true)
		}
	}
	c.codes, c.nulls = codes, nulls
}

func (c *stringCol) compact(keep []bool, kept int) {
	codes := make([]uint32, 0, kept)
	var nulls bitmap
	hasNulls := c.nulls.anySet(len(c.codes))
	for i, k := range keep {
		if !k {
			continue
		}
		if hasNulls && c.nulls.get(i) {
			nulls.set(len(codes), true)
		}
		codes = append(codes, c.codes[i])
	}
	c.codes, c.nulls = codes, nulls
}

func newColumn(k Kind) column {
	if k == Float {
		return &floatCol{}
	}
	return newStringCol()
}
