package dataset

import (
	"math"
	"sort"
)

// ColumnStats summarizes one column: null rate for any kind, plus moments
// and order statistics for numeric columns. The generators use it to
// verify that synthetic datasets hit the paper's Table IV error rates.
type ColumnStats struct {
	Name     string
	Kind     Kind
	Rows     int
	Nulls    int
	Distinct int
	// The fields below are meaningful only for Float columns.
	Min, Max, Mean, Stddev, Median float64
}

// NullRate returns the fraction of null cells.
func (s ColumnStats) NullRate() float64 {
	if s.Rows == 0 {
		return 0
	}
	return float64(s.Nulls) / float64(s.Rows)
}

// Stats computes ColumnStats for the column at index c.
func (t *Table) Stats(c int) ColumnStats {
	s := ColumnStats{Name: t.schema[c].Name, Kind: t.schema[c].Kind, Rows: len(t.rows)}
	distinct := make(map[string]struct{})
	var nums []float64
	for i := range t.rows {
		v := t.rows[i][c]
		if v.IsNull() {
			s.Nulls++
			continue
		}
		distinct[v.String()] = struct{}{}
		if f, ok := v.Float(); ok {
			nums = append(nums, f)
		}
	}
	s.Distinct = len(distinct)
	if len(nums) == 0 {
		return s
	}
	sort.Float64s(nums)
	s.Min, s.Max = nums[0], nums[len(nums)-1]
	var sum float64
	for _, f := range nums {
		sum += f
	}
	s.Mean = sum / float64(len(nums))
	var ss float64
	for _, f := range nums {
		d := f - s.Mean
		ss += d * d
	}
	s.Stddev = math.Sqrt(ss / float64(len(nums)))
	mid := len(nums) / 2
	if len(nums)%2 == 1 {
		s.Median = nums[mid]
	} else {
		s.Median = (nums[mid-1] + nums[mid]) / 2
	}
	return s
}

// DistinctStrings returns the distinct non-null string values of column c
// with their frequencies. The attribute-duplicate detector iterates over
// this instead of raw rows.
func (t *Table) DistinctStrings(c int) map[string]int {
	out := make(map[string]int)
	for i := range t.rows {
		if s, ok := t.rows[i][c].Text(); ok {
			out[s]++
		}
	}
	return out
}

// NumericColumn extracts the non-null values of a Float column together
// with their tuple ids, in row order.
func (t *Table) NumericColumn(c int) (vals []float64, ids []TupleID) {
	for i := range t.rows {
		if f, ok := t.rows[i][c].Float(); ok {
			vals = append(vals, f)
			ids = append(ids, t.ids[i])
		}
	}
	return vals, ids
}

// MissingIDs returns the tuple ids whose cell in column c is null.
func (t *Table) MissingIDs(c int) []TupleID {
	var out []TupleID
	for i := range t.rows {
		if t.rows[i][c].IsNull() {
			out = append(out, t.ids[i])
		}
	}
	return out
}
