package dataset

import (
	"math"
	"sort"
)

// ColumnStats summarizes one column: null rate for any kind, plus moments
// and order statistics for numeric columns. The generators use it to
// verify that synthetic datasets hit the paper's Table IV error rates.
type ColumnStats struct {
	Name     string
	Kind     Kind
	Rows     int
	Nulls    int
	Distinct int
	// The fields below are meaningful only for Float columns.
	Min, Max, Mean, Stddev, Median float64
}

// NullRate returns the fraction of null cells.
func (s ColumnStats) NullRate() float64 {
	if s.Rows == 0 {
		return 0
	}
	return float64(s.Nulls) / float64(s.Rows)
}

// Stats computes ColumnStats for the column at index c.
func (t *Table) Stats(c int) ColumnStats {
	s := ColumnStats{Name: t.schema[c].Name, Kind: t.schema[c].Kind, Rows: len(t.ids)}
	switch col := t.cols[c].(type) {
	case *stringCol:
		seen := make([]bool, len(col.dict.strs))
		for i, code := range col.codes {
			if col.nulls.get(i) {
				s.Nulls++
				continue
			}
			if !seen[code] {
				seen[code] = true
				s.Distinct++
			}
		}
		return s
	case *floatCol:
		// Distinct counts formatted values, matching the historical
		// row-store semantics (e.g. 0 and -0 render differently).
		distinct := make(map[float64]struct{}, 64)
		sawNegZero, sawPosZero := false, false
		nums := make([]float64, 0, len(col.vals))
		for i, f := range col.vals {
			if col.nulls.get(i) {
				s.Nulls++
				continue
			}
			if f == 0 {
				if math.Signbit(f) {
					sawNegZero = true
				} else {
					sawPosZero = true
				}
			}
			distinct[f] = struct{}{}
			nums = append(nums, f)
		}
		s.Distinct = len(distinct)
		if sawNegZero && sawPosZero {
			s.Distinct++
		}
		if len(nums) == 0 {
			return s
		}
		sort.Float64s(nums)
		s.Min, s.Max = nums[0], nums[len(nums)-1]
		var sum float64
		for _, f := range nums {
			sum += f
		}
		s.Mean = sum / float64(len(nums))
		var ss float64
		for _, f := range nums {
			d := f - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(len(nums)))
		mid := len(nums) / 2
		if len(nums)%2 == 1 {
			s.Median = nums[mid]
		} else {
			s.Median = (nums[mid-1] + nums[mid]) / 2
		}
		return s
	}
	return s
}

// DistinctStrings returns the distinct non-null string values of column c
// with their frequencies. The attribute-duplicate detector iterates over
// this instead of raw rows. On the columnar store this is one pass over
// the code array plus one map insert per distinct value (not per row).
func (t *Table) DistinctStrings(c int) map[string]int {
	out := make(map[string]int)
	col, ok := t.cols[c].(*stringCol)
	if !ok {
		return out
	}
	counts := make([]int, len(col.dict.strs))
	hasNulls := col.nulls.anySet(len(col.codes))
	for i, code := range col.codes {
		if hasNulls && col.nulls.get(i) {
			continue
		}
		counts[code]++
	}
	for code, n := range counts {
		if n > 0 {
			out[col.dict.strs[code]] = n
		}
	}
	return out
}

// NumericColumn extracts the non-null values of a Float column together
// with their tuple ids, in row order.
func (t *Table) NumericColumn(c int) (vals []float64, ids []TupleID) {
	col, ok := t.cols[c].(*floatCol)
	if !ok {
		return nil, nil
	}
	if !col.nulls.anySet(len(col.vals)) {
		vals = make([]float64, len(col.vals))
		copy(vals, col.vals)
		ids = make([]TupleID, len(t.ids))
		copy(ids, t.ids)
		return vals, ids
	}
	for i, f := range col.vals {
		if col.nulls.get(i) {
			continue
		}
		vals = append(vals, f)
		ids = append(ids, t.ids[i])
	}
	return vals, ids
}

// MissingIDs returns the tuple ids whose cell in column c is null.
func (t *Table) MissingIDs(c int) []TupleID {
	var out []TupleID
	col := t.cols[c]
	for i := range t.ids {
		if col.isNull(i) {
			out = append(out, t.ids[i])
		}
	}
	return out
}
