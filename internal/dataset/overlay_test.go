package dataset

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

func overlayFixture(t *testing.T) *Table {
	t.Helper()
	tbl := NewTable(pubsSchema())
	rows := [][]Value{
		{Str("NADEEF"), Str("ACM SIGMOD"), Num(174)},
		{Str("NADEEF"), Str("SIGMOD Conf."), Num(1740)},
		{Str("SeeDB"), Str("VLDB"), Null(Float)},
		{Str("SeeDB"), Str("Very Large Data Bases"), Num(55)},
	}
	for _, r := range rows {
		tbl.MustAppend(r)
	}
	return tbl
}

func TestOverlayBasics(t *testing.T) {
	tbl := overlayFixture(t)
	ov := tbl.Overlay()
	if ov.Base() != tbl {
		t.Fatal("Base should return the underlying table")
	}
	if ov.Touched() != 0 {
		t.Fatal("fresh overlay should have no touched cells")
	}

	id := tbl.ID(0)
	if err := ov.Set(id, 2, Num(175)); err != nil {
		t.Fatal(err)
	}
	if ov.Touched() != 1 {
		t.Fatalf("touched = %d, want 1", ov.Touched())
	}
	// Re-patching the same cell does not grow the touched count.
	if err := ov.Set(id, 2, Num(176)); err != nil {
		t.Fatal(err)
	}
	if ov.Touched() != 1 {
		t.Fatalf("touched after re-patch = %d, want 1", ov.Touched())
	}

	// The base table is untouched.
	if f, _ := tbl.Get(0, 2).Float(); f != 174 {
		t.Fatalf("base mutated: %v", f)
	}
	// Patch and Get see the patched value.
	if v, ok := ov.Patch(id, 2); !ok || !v.Equal(Num(176)) {
		t.Fatalf("Patch = %v, %v", v, ok)
	}
	if v, ok := ov.Get(id, 2); !ok || !v.Equal(Num(176)) {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	// Unpatched cells read through.
	if v, ok := ov.Get(id, 0); !ok || !v.Equal(Str("NADEEF")) {
		t.Fatalf("read-through Get = %v, %v", v, ok)
	}

	// Kind and id validation.
	if err := ov.Set(id, 2, Str("bad")); err == nil {
		t.Fatal("expected kind error")
	}
	if err := ov.Set(9999, 2, Num(1)); err == nil {
		t.Fatal("expected missing-id error")
	}
}

func TestOverlayTombstones(t *testing.T) {
	tbl := overlayFixture(t)
	ov := tbl.Overlay()
	id := tbl.ID(1)
	if !ov.Delete(id) {
		t.Fatal("delete failed")
	}
	if ov.Delete(id) {
		t.Fatal("double tombstone should report false")
	}
	if ov.Delete(9999) {
		t.Fatal("deleting unknown id should report false")
	}
	if !ov.Deleted(id) {
		t.Fatal("Deleted should see the tombstone")
	}
	if _, ok := ov.Get(id, 0); ok {
		t.Fatal("Get should miss a tombstoned row")
	}
	got := ov.Materialize()
	if got.NumRows() != tbl.NumRows()-1 {
		t.Fatalf("materialized rows = %d, want %d", got.NumRows(), tbl.NumRows()-1)
	}
	if _, ok := got.RowIndex(id); ok {
		t.Fatal("tombstoned id survived materialization")
	}
	if tbl.NumRows() != 4 {
		t.Fatal("base table mutated by materialization")
	}
}

// tablesEqual compares two tables cell-by-cell including ids.
func tablesEqual(a, b *Table) error {
	if a.NumRows() != b.NumRows() {
		return fmt.Errorf("rows %d vs %d", a.NumRows(), b.NumRows())
	}
	for i := 0; i < a.NumRows(); i++ {
		if a.ID(i) != b.ID(i) {
			return fmt.Errorf("row %d id %d vs %d", i, a.ID(i), b.ID(i))
		}
		for c := 0; c < a.NumCols(); c++ {
			if !a.Get(i, c).Equal(b.Get(i, c)) {
				return fmt.Errorf("cell (%d,%d) %v vs %v", i, c, a.Get(i, c), b.Get(i, c))
			}
		}
	}
	var ba, bb bytes.Buffer
	if err := a.WriteCSV(&ba); err != nil {
		return err
	}
	if err := b.WriteCSV(&bb); err != nil {
		return err
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		return fmt.Errorf("CSV encodings differ")
	}
	return nil
}

// TestOverlayMaterializeEqualsEagerClone is the property suite the
// tentpole promises: across randomized edit scripts (cell patches on
// both kinds, overwrites, tombstones), Overlay+Materialize must equal
// the eager Clone+Set/DeleteByID path exactly.
func TestOverlayMaterializeEqualsEagerClone(t *testing.T) {
	words := []string{"SIGMOD", "VLDB", "ICDE", "KDD", "", "N/A spelled out", "brand new value"}
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		base := NewTable(pubsSchema())
		n := 5 + rng.Intn(40)
		for i := 0; i < n; i++ {
			row := []Value{
				Str(words[rng.Intn(len(words))]),
				Str(words[rng.Intn(len(words))]),
				Num(float64(rng.Intn(2000))),
			}
			if rng.Intn(6) == 0 {
				row[2] = Null(Float)
			}
			if rng.Intn(9) == 0 {
				row[1] = Null(String)
			}
			base.MustAppend(row)
		}

		ov := base.Overlay()
		eager := base.Clone()
		// mirror applies the same patch eagerly; a patch on a row the
		// eager side already deleted is a legal no-op on both paths
		// (Materialize applies patches before tombstones).
		mirror := func(id TupleID, c int, v Value) {
			if err := ov.Set(id, c, v); err != nil {
				t.Fatalf("trial %d: overlay set: %v", trial, err)
			}
			_ = eager.SetByID(id, c, v)
		}
		edits := 1 + rng.Intn(25)
		for e := 0; e < edits; e++ {
			id := base.ID(rng.Intn(base.NumRows()))
			switch rng.Intn(5) {
			case 0: // tombstone
				a := ov.Delete(id)
				b := eager.DeleteByID(id)
				if a != b {
					t.Fatalf("trial %d: delete reported %v vs eager %v", trial, a, b)
				}
			case 1: // string patch (possibly a brand-new dictionary entry)
				mirror(id, rng.Intn(2), Str(fmt.Sprintf("%s-%d", words[rng.Intn(len(words))], rng.Intn(4))))
			case 2: // numeric patch
				mirror(id, 2, Num(float64(rng.Intn(5000))/7))
			case 3: // null out a cell
				mirror(id, 2, Null(Float))
			case 4: // overwrite an earlier patch
				mirror(id, 0, Str("rewritten"))
			}
		}
		if err := tablesEqual(ov.Materialize(), eager); err != nil {
			t.Fatalf("trial %d (%d rows, %d edits): %v", trial, n, edits, err)
		}
	}
}
