package dataset

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"io"
	"math"
)

// Fingerprint returns a hex SHA-256 content hash of the table: schema
// (names and kinds), tuple ids, and every cell value in column-major
// order. The hash covers decoded values, never dictionary codes, so two
// tables with the same logical content fingerprint identically no matter
// how their interners assigned codes or what clone/overlay history
// produced them. It is the cache key of the cross-session artifact cache
// (DESIGN.md §12): equal fingerprints mean every deterministic function
// of the table — token indexes, standardizers, match candidates, trained
// forests — is equal too, so sessions over the same data can share them.
func (t *Table) Fingerprint() string {
	h := sha256.New()
	var buf [8]byte
	writeUint := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	// Length-prefix every string so (ab, c) and (a, bc) cannot collide.
	writeStr := func(s string) {
		writeUint(uint64(len(s)))
		io.WriteString(h, s)
	}

	writeUint(uint64(len(t.schema)))
	for _, col := range t.schema {
		writeStr(col.Name)
		writeUint(uint64(col.Kind))
	}
	writeUint(uint64(len(t.ids)))
	for _, id := range t.ids {
		writeUint(uint64(id))
	}
	for _, col := range t.cols {
		switch c := col.(type) {
		case *floatCol:
			for i, v := range c.vals {
				if c.nulls.get(i) {
					h.Write([]byte{0})
				} else {
					h.Write([]byte{1})
					writeUint(math.Float64bits(v))
				}
			}
		case *stringCol:
			for i := range c.codes {
				if s, ok := c.text(i); ok {
					h.Write([]byte{1})
					writeStr(s)
				} else {
					h.Write([]byte{0})
				}
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
