package dataset

import "testing"

func TestFingerprintContentIdentity(t *testing.T) {
	a := samplePubs(t)
	b := samplePubs(t)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("independently built tables with equal content fingerprint differently")
	}
	if a.Fingerprint() != a.Clone().Fingerprint() {
		t.Fatal("clone fingerprints differently than its source")
	}
}

func TestFingerprintInternOrderIndependent(t *testing.T) {
	// Two tables with the same final content whose interners assigned
	// codes in different orders: the fingerprint must not see the codes.
	sch := Schema{{Name: "V", Kind: String}}
	a := NewTable(sch)
	a.MustAppend([]Value{Str("x")})
	a.MustAppend([]Value{Str("y")})

	b := NewTable(sch)
	b.MustAppend([]Value{Str("y")}) // interned first → different code order
	b.MustAppend([]Value{Str("y")})
	if err := b.Set(0, 0, Str("x")); err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprint depends on dictionary code assignment order")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := samplePubs(t)
	fp := base.Fingerprint()

	edited := samplePubs(t)
	if err := edited.Set(1, 2, Num(7)); err != nil {
		t.Fatal(err)
	}
	if edited.Fingerprint() == fp {
		t.Fatal("cell edit did not change the fingerprint")
	}

	nulled := samplePubs(t)
	if err := nulled.Set(0, 2, Null(Float)); err != nil {
		t.Fatal(err)
	}
	if nulled.Fingerprint() == fp {
		t.Fatal("nulling a cell did not change the fingerprint")
	}

	appended := samplePubs(t)
	appended.MustAppend([]Value{Str("p"), Str("q"), Num(1)})
	if appended.Fingerprint() == fp {
		t.Fatal("appending a row did not change the fingerprint")
	}

	renamed := NewTable(Schema{
		{Name: "Title", Kind: String},
		{Name: "Place", Kind: String},
		{Name: "Citations", Kind: Float},
	})
	if renamed.Fingerprint() == NewTable(pubsSchema()).Fingerprint() {
		t.Fatal("renaming a column did not change the fingerprint")
	}
}
