// Package dataset provides the typed relational table substrate used by
// every other VisClean component: schemas, nullable cells, stable tuple
// identifiers, CSV round-tripping and simple column statistics.
//
// The paper (§II) operates over a single relation D whose rows carry data
// errors (tuple/attribute duplicates, missing values, outliers). Cleaning
// never mutates D in place destructively; the pipeline works on cheap
// copies so "before" and "after" visualizations can be compared.
package dataset

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind is the type of a column.
type Kind int

const (
	// String is a categorical/textual column (e.g. Venue).
	String Kind = iota
	// Float is a numeric column (e.g. Citations). Integers are stored as
	// floats; the visualization language only needs numeric semantics.
	Float
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case String:
		return "string"
	case Float:
		return "float"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is one cell. The zero Value is a null string cell.
type Value struct {
	kind Kind
	str  string
	num  float64
	null bool
}

// Null returns a null cell of the given kind. Nulls model the paper's
// missing values (§II-C error type iii).
func Null(kind Kind) Value { return Value{kind: kind, null: true} }

// Str returns a non-null string cell.
func Str(s string) Value { return Value{kind: String, str: s} }

// Num returns a non-null numeric cell. NaN is treated as null so that
// arithmetic never silently propagates NaNs into aggregates.
func Num(f float64) Value {
	if math.IsNaN(f) {
		return Null(Float)
	}
	return Value{kind: Float, num: f}
}

// Kind reports the cell's column kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the cell is missing.
func (v Value) IsNull() bool { return v.null }

// Float returns the numeric value; ok is false for nulls or string cells.
func (v Value) Float() (f float64, ok bool) {
	if v.null || v.kind != Float {
		return 0, false
	}
	return v.num, true
}

// Text returns the string value; ok is false for nulls or numeric cells.
func (v Value) Text() (s string, ok bool) {
	if v.null || v.kind != String {
		return "", false
	}
	return v.str, true
}

// String renders the cell for display and CSV encoding. Nulls render as
// the empty string; floats drop a trailing ".0" only through %g.
func (v Value) String() string {
	if v.null {
		return ""
	}
	if v.kind == Float {
		return strconv.FormatFloat(v.num, 'g', -1, 64)
	}
	return v.str
}

// Equal reports deep cell equality. Two nulls of the same kind are equal.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	if v.null || o.null {
		return v.null == o.null
	}
	if v.kind == Float {
		return v.num == o.num
	}
	return v.str == o.str
}

// Compare orders two cells of the same kind: nulls first, then by value.
// It panics if kinds differ, which indicates a schema bug.
func (v Value) Compare(o Value) int {
	if v.kind != o.kind {
		panic(fmt.Sprintf("dataset: comparing %v cell with %v cell", v.kind, o.kind))
	}
	switch {
	case v.null && o.null:
		return 0
	case v.null:
		return -1
	case o.null:
		return 1
	}
	if v.kind == Float {
		switch {
		case v.num < o.num:
			return -1
		case v.num > o.num:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(v.str, o.str)
}

// ParseValue parses a CSV field into a cell of the wanted kind. Empty
// fields and the common NA spellings become nulls, mirroring how the
// paper's Table I writes "N.A." for the missing citation count.
func ParseValue(field string, kind Kind) (Value, error) {
	trimmed := strings.TrimSpace(field)
	if isNullSpelling(trimmed) {
		return Null(kind), nil
	}
	if kind == String {
		return Str(field), nil
	}
	f, err := strconv.ParseFloat(trimmed, 64)
	if err != nil {
		return Value{}, fmt.Errorf("dataset: parse %q as float: %w", field, err)
	}
	return Num(f), nil
}

// isNullSpelling matches the accepted NA spellings case-insensitively
// without allocating (strings.ToUpper copied every CSV field; at 5M+
// tuples that alone dominated load allocations — see the assertion in
// TestIsNullSpellingNoAllocs).
func isNullSpelling(s string) bool {
	switch len(s) {
	case 0:
		return true
	case 2:
		return strings.EqualFold(s, "NA")
	case 3:
		return strings.EqualFold(s, "N/A") || strings.EqualFold(s, "NAN")
	case 4:
		return strings.EqualFold(s, "N.A.") || strings.EqualFold(s, "NULL") || strings.EqualFold(s, "NONE")
	}
	return false
}
