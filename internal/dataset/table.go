package dataset

import (
	"fmt"
	"sort"
	"strings"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of columns with unique names.
type Schema []Column

// Index returns the position of the named column, or -1. This is a
// linear scan; Table.ColumnIndex answers the same question through a
// map built once per table and should be preferred on hot paths.
func (s Schema) Index(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Validate checks that column names are non-empty and unique.
func (s Schema) Validate() error {
	seen := make(map[string]bool, len(s))
	for _, c := range s {
		if c.Name == "" {
			return fmt.Errorf("dataset: schema has empty column name")
		}
		if seen[c.Name] {
			return fmt.Errorf("dataset: duplicate column %q", c.Name)
		}
		seen[c.Name] = true
	}
	return nil
}

// Clone returns a copy of the schema.
func (s Schema) Clone() Schema {
	out := make(Schema, len(s))
	copy(out, s)
	return out
}

// TupleID identifies a tuple for the lifetime of a Table and all tables
// derived from it (clones, filtered views). IDs are assigned once at
// insertion and survive row reordering, so the ERG, the oracle's ground
// truth and the cleaning models can all refer to the same tuple.
type TupleID int

// noRow marks an absent id in the id→row index.
const noRow = int32(-1)

// Table is an in-memory relation stored column-wise: a Float column is a
// flat []float64 plus null bitmap, a String column is []uint32 codes
// into a per-column dictionary shared read-only by clones (see
// column.go). The id→row index is a flat array, not a map, because ids
// are dense by construction. Table is not safe for concurrent mutation;
// the pipeline clones tables (or layers an Overlay) before hypothetical
// repairs.
type Table struct {
	schema Schema
	colIdx map[string]int // memoized Schema.Index
	cols   []column
	ids    []TupleID
	nextID TupleID
	byID   []int32 // id → row index, noRow when absent
}

// NewTable creates an empty table. It panics on an invalid schema, which
// always indicates a programming error rather than bad input data.
func NewTable(schema Schema) *Table {
	if err := schema.Validate(); err != nil {
		panic(err)
	}
	t := &Table{schema: schema.Clone(), colIdx: make(map[string]int, len(schema)), cols: make([]column, len(schema))}
	for i, c := range t.schema {
		t.colIdx[c.Name] = i
		t.cols[i] = newColumn(c.Kind)
	}
	return t
}

// Schema returns the table's schema. Callers must not mutate it.
func (t *Table) Schema() Schema { return t.schema }

// NumRows returns the number of tuples.
func (t *Table) NumRows() int { return len(t.ids) }

// NumCols returns the number of attributes.
func (t *Table) NumCols() int { return len(t.schema) }

// ColumnIndex returns the position of the named column, or -1. Unlike
// Schema.Index this is a single map lookup.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.colIdx[name]; ok {
		return i
	}
	return -1
}

// rowOf resolves an id to its row index, or noRow.
func (t *Table) rowOf(id TupleID) int32 {
	if id < 0 || int(id) >= len(t.byID) {
		return noRow
	}
	return t.byID[id]
}

// Append adds a tuple and returns its new TupleID. The row is copied
// into the column arrays.
func (t *Table) Append(row []Value) (TupleID, error) {
	if len(row) != len(t.schema) {
		return 0, fmt.Errorf("dataset: row has %d cells, schema has %d columns", len(row), len(t.schema))
	}
	for i, v := range row {
		if v.Kind() != t.schema[i].Kind {
			return 0, fmt.Errorf("dataset: column %q expects %v, got %v", t.schema[i].Name, t.schema[i].Kind, v.Kind())
		}
	}
	id := t.nextID
	t.nextID++
	for i, v := range row {
		t.cols[i].appendVal(v)
	}
	t.ids = append(t.ids, id)
	for int(id) >= len(t.byID) {
		t.byID = append(t.byID, noRow)
	}
	t.byID[id] = int32(len(t.ids) - 1)
	return id, nil
}

// MustAppend is Append for statically known-good rows (tests, generators).
func (t *Table) MustAppend(row []Value) TupleID {
	id, err := t.Append(row)
	if err != nil {
		panic(err)
	}
	return id
}

// IDs returns the tuple ids in row order. Callers must not mutate it.
func (t *Table) IDs() []TupleID { return t.ids }

// ID returns the tuple id of the i-th row.
func (t *Table) ID(i int) TupleID { return t.ids[i] }

// RowIndex returns the current row position of a tuple id.
func (t *Table) RowIndex(id TupleID) (int, bool) {
	i := t.rowOf(id)
	if i == noRow {
		return 0, false
	}
	return int(i), true
}

// Row materializes the i-th row as a fresh []Value. Callers must not
// assume writes to the returned slice reach the table; use Set for
// updates so derived state stays consistent.
func (t *Table) Row(i int) []Value {
	out := make([]Value, len(t.cols))
	for c, col := range t.cols {
		out[c] = col.get(i)
	}
	return out
}

// RowByID returns the row for a tuple id. See Row.
func (t *Table) RowByID(id TupleID) ([]Value, bool) {
	i := t.rowOf(id)
	if i == noRow {
		return nil, false
	}
	return t.Row(int(i)), true
}

// Get returns the cell at row i, column c.
func (t *Table) Get(i, c int) Value { return t.cols[c].get(i) }

// GetByID returns the cell for a tuple id and column index.
func (t *Table) GetByID(id TupleID, c int) (Value, bool) {
	i := t.rowOf(id)
	if i == noRow {
		return Value{}, false
	}
	return t.cols[c].get(int(i)), true
}

// Set replaces the cell at row i, column c, enforcing the column kind.
func (t *Table) Set(i, c int, v Value) error {
	if v.Kind() != t.schema[c].Kind {
		return fmt.Errorf("dataset: column %q expects %v, got %v", t.schema[c].Name, t.schema[c].Kind, v.Kind())
	}
	t.cols[c].set(i, v)
	return nil
}

// SetByID replaces a cell addressed by tuple id.
func (t *Table) SetByID(id TupleID, c int, v Value) error {
	i := t.rowOf(id)
	if i == noRow {
		return fmt.Errorf("dataset: no tuple with id %d", id)
	}
	return t.Set(int(i), c, v)
}

// DeleteByID removes a tuple. Row order of the survivors is preserved.
// Each call compacts the column arrays; deleting many tuples should go
// through DeleteIDs, which compacts once for the whole batch.
func (t *Table) DeleteByID(id TupleID) bool {
	if t.rowOf(id) == noRow {
		return false
	}
	return t.DeleteIDs([]TupleID{id}) == 1
}

// DeleteIDs removes a batch of tuples in one compaction pass over the
// column arrays and the id index — O(rows + batch) total instead of
// O(rows) per deletion. Unknown and duplicate ids are ignored; the
// number of tuples actually removed is returned.
func (t *Table) DeleteIDs(ids []TupleID) int {
	keep := make([]bool, len(t.ids))
	for i := range keep {
		keep[i] = true
	}
	removed := 0
	for _, id := range ids {
		if i := t.rowOf(id); i != noRow && keep[i] {
			keep[i] = false
			t.byID[id] = noRow
			removed++
		}
	}
	if removed == 0 {
		return 0
	}
	kept := len(t.ids) - removed
	for _, col := range t.cols {
		col.compact(keep, kept)
	}
	out := make([]TupleID, 0, kept)
	for i, k := range keep {
		if k {
			t.byID[t.ids[i]] = int32(len(out))
			out = append(out, t.ids[i])
		}
	}
	t.ids = out
	return removed
}

// Clone returns a deep copy sharing no mutable state with the receiver:
// column arrays and the id index are copied, string dictionaries are
// shared copy-on-write (frozen until either side needs a new code).
// Tuple ids are preserved, so a clone can be repaired hypothetically and
// compared against the original tuple-by-tuple. For hypothetical repairs
// that touch few cells, Overlay is O(touched) instead of O(table).
func (t *Table) Clone() *Table {
	cp := &Table{
		schema: t.schema.Clone(),
		colIdx: make(map[string]int, len(t.colIdx)),
		cols:   make([]column, len(t.cols)),
		ids:    make([]TupleID, len(t.ids)),
		nextID: t.nextID,
		byID:   make([]int32, len(t.byID)),
	}
	for name, i := range t.colIdx {
		cp.colIdx[name] = i
	}
	for i, col := range t.cols {
		cp.cols[i] = col.clone()
	}
	copy(cp.ids, t.ids)
	copy(cp.byID, t.byID)
	return cp
}

// Filter returns a new table containing the rows for which keep returns
// true. Tuple ids are preserved.
func (t *Table) Filter(keep func(row []Value) bool) *Table {
	out := NewTable(t.schema)
	out.nextID = t.nextID
	out.byID = make([]int32, len(t.byID))
	for i := range out.byID {
		out.byID[i] = noRow
	}
	for i := range t.ids {
		row := t.Row(i)
		if !keep(row) {
			continue
		}
		for c, v := range row {
			out.cols[c].appendVal(v)
		}
		out.ids = append(out.ids, t.ids[i])
		out.byID[t.ids[i]] = int32(len(out.ids) - 1)
	}
	return out
}

// SortBy stably sorts rows by the given column, ascending unless desc.
func (t *Table) SortBy(col int, desc bool) {
	idx := make([]int, len(t.ids))
	for i := range idx {
		idx[i] = i
	}
	c := t.cols[col]
	sort.SliceStable(idx, func(a, b int) bool {
		r := c.cmp(idx[a], idx[b])
		if desc {
			return r > 0
		}
		return r < 0
	})
	for _, cl := range t.cols {
		cl.permute(idx)
	}
	ids := make([]TupleID, len(t.ids))
	for to, from := range idx {
		ids[to] = t.ids[from]
	}
	t.ids = ids
	for i, id := range t.ids {
		t.byID[id] = int32(i)
	}
}

// ConcatRow joins all cells of a row into one normalized string. The
// imputation and outlier modules use this as the record-level text for
// similarity search, following §IV ("concatenate all attributes ... and
// then utilize the string similarity score").
func (t *Table) ConcatRow(i int) string {
	var b strings.Builder
	for c, col := range t.cols {
		if c > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(col.get(i).String())
	}
	return b.String()
}

// String renders a small table for debugging and examples.
func (t *Table) String() string {
	var b strings.Builder
	for i, c := range t.schema {
		if i > 0 {
			b.WriteString(" | ")
		}
		b.WriteString(c.Name)
	}
	b.WriteByte('\n')
	for i := range t.ids {
		for c := range t.schema {
			if c > 0 {
				b.WriteString(" | ")
			}
			b.WriteString(t.cols[c].get(i).String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}
