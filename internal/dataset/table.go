package dataset

import (
	"fmt"
	"sort"
	"strings"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of columns with unique names.
type Schema []Column

// Index returns the position of the named column, or -1.
func (s Schema) Index(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Validate checks that column names are non-empty and unique.
func (s Schema) Validate() error {
	seen := make(map[string]bool, len(s))
	for _, c := range s {
		if c.Name == "" {
			return fmt.Errorf("dataset: schema has empty column name")
		}
		if seen[c.Name] {
			return fmt.Errorf("dataset: duplicate column %q", c.Name)
		}
		seen[c.Name] = true
	}
	return nil
}

// Clone returns a copy of the schema.
func (s Schema) Clone() Schema {
	out := make(Schema, len(s))
	copy(out, s)
	return out
}

// TupleID identifies a tuple for the lifetime of a Table and all tables
// derived from it (clones, filtered views). IDs are assigned once at
// insertion and survive row reordering, so the ERG, the oracle's ground
// truth and the cleaning models can all refer to the same tuple.
type TupleID int

// Table is an in-memory relation. It is not safe for concurrent mutation;
// the pipeline clones tables before hypothetical repairs.
type Table struct {
	schema Schema
	rows   [][]Value
	ids    []TupleID
	nextID TupleID
	byID   map[TupleID]int // row index by tuple id; lazily rebuilt
}

// NewTable creates an empty table. It panics on an invalid schema, which
// always indicates a programming error rather than bad input data.
func NewTable(schema Schema) *Table {
	if err := schema.Validate(); err != nil {
		panic(err)
	}
	return &Table{schema: schema.Clone(), byID: map[TupleID]int{}}
}

// Schema returns the table's schema. Callers must not mutate it.
func (t *Table) Schema() Schema { return t.schema }

// NumRows returns the number of tuples.
func (t *Table) NumRows() int { return len(t.rows) }

// NumCols returns the number of attributes.
func (t *Table) NumCols() int { return len(t.schema) }

// ColumnIndex returns the position of the named column, or -1.
func (t *Table) ColumnIndex(name string) int { return t.schema.Index(name) }

// Append adds a tuple and returns its new TupleID. The row is copied.
func (t *Table) Append(row []Value) (TupleID, error) {
	if len(row) != len(t.schema) {
		return 0, fmt.Errorf("dataset: row has %d cells, schema has %d columns", len(row), len(t.schema))
	}
	for i, v := range row {
		if v.Kind() != t.schema[i].Kind {
			return 0, fmt.Errorf("dataset: column %q expects %v, got %v", t.schema[i].Name, t.schema[i].Kind, v.Kind())
		}
	}
	id := t.nextID
	t.nextID++
	cp := make([]Value, len(row))
	copy(cp, row)
	t.rows = append(t.rows, cp)
	t.ids = append(t.ids, id)
	t.byID[id] = len(t.rows) - 1
	return id, nil
}

// MustAppend is Append for statically known-good rows (tests, generators).
func (t *Table) MustAppend(row []Value) TupleID {
	id, err := t.Append(row)
	if err != nil {
		panic(err)
	}
	return id
}

// IDs returns the tuple ids in row order. Callers must not mutate it.
func (t *Table) IDs() []TupleID { return t.ids }

// ID returns the tuple id of the i-th row.
func (t *Table) ID(i int) TupleID { return t.ids[i] }

// RowIndex returns the current row position of a tuple id.
func (t *Table) RowIndex(id TupleID) (int, bool) {
	i, ok := t.byID[id]
	return i, ok
}

// Row returns the i-th row. Callers must not mutate the returned slice;
// use Set for updates so derived state stays consistent.
func (t *Table) Row(i int) []Value { return t.rows[i] }

// RowByID returns the row for a tuple id.
func (t *Table) RowByID(id TupleID) ([]Value, bool) {
	i, ok := t.byID[id]
	if !ok {
		return nil, false
	}
	return t.rows[i], true
}

// Get returns the cell at row i, column c.
func (t *Table) Get(i, c int) Value { return t.rows[i][c] }

// GetByID returns the cell for a tuple id and column index.
func (t *Table) GetByID(id TupleID, c int) (Value, bool) {
	i, ok := t.byID[id]
	if !ok {
		return Value{}, false
	}
	return t.rows[i][c], true
}

// Set replaces the cell at row i, column c, enforcing the column kind.
func (t *Table) Set(i, c int, v Value) error {
	if v.Kind() != t.schema[c].Kind {
		return fmt.Errorf("dataset: column %q expects %v, got %v", t.schema[c].Name, t.schema[c].Kind, v.Kind())
	}
	t.rows[i][c] = v
	return nil
}

// SetByID replaces a cell addressed by tuple id.
func (t *Table) SetByID(id TupleID, c int, v Value) error {
	i, ok := t.byID[id]
	if !ok {
		return fmt.Errorf("dataset: no tuple with id %d", id)
	}
	return t.Set(i, c, v)
}

// DeleteByID removes a tuple. Row order of the survivors is preserved.
func (t *Table) DeleteByID(id TupleID) bool {
	i, ok := t.byID[id]
	if !ok {
		return false
	}
	t.rows = append(t.rows[:i], t.rows[i+1:]...)
	t.ids = append(t.ids[:i], t.ids[i+1:]...)
	delete(t.byID, id)
	for j := i; j < len(t.ids); j++ {
		t.byID[t.ids[j]] = j
	}
	return true
}

// Clone returns a deep copy sharing nothing with the receiver. Tuple ids
// are preserved, so a clone can be repaired hypothetically and compared
// against the original tuple-by-tuple.
func (t *Table) Clone() *Table {
	cp := &Table{
		schema: t.schema.Clone(),
		rows:   make([][]Value, len(t.rows)),
		ids:    make([]TupleID, len(t.ids)),
		nextID: t.nextID,
		byID:   make(map[TupleID]int, len(t.byID)),
	}
	for i, r := range t.rows {
		row := make([]Value, len(r))
		copy(row, r)
		cp.rows[i] = row
	}
	copy(cp.ids, t.ids)
	for id, i := range t.byID {
		cp.byID[id] = i
	}
	return cp
}

// Filter returns a new table containing the rows for which keep returns
// true. Tuple ids are preserved.
func (t *Table) Filter(keep func(row []Value) bool) *Table {
	out := NewTable(t.schema)
	out.nextID = t.nextID
	for i, r := range t.rows {
		if !keep(r) {
			continue
		}
		row := make([]Value, len(r))
		copy(row, r)
		out.rows = append(out.rows, row)
		out.ids = append(out.ids, t.ids[i])
		out.byID[t.ids[i]] = len(out.rows) - 1
	}
	return out
}

// SortBy stably sorts rows by the given column, ascending unless desc.
func (t *Table) SortBy(col int, desc bool) {
	idx := make([]int, len(t.rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		c := t.rows[idx[a]][col].Compare(t.rows[idx[b]][col])
		if desc {
			return c > 0
		}
		return c < 0
	})
	rows := make([][]Value, len(t.rows))
	ids := make([]TupleID, len(t.ids))
	for to, from := range idx {
		rows[to] = t.rows[from]
		ids[to] = t.ids[from]
	}
	t.rows, t.ids = rows, ids
	for i, id := range t.ids {
		t.byID[id] = i
	}
}

// ConcatRow joins all cells of a row into one normalized string. The
// imputation and outlier modules use this as the record-level text for
// similarity search, following §IV ("concatenate all attributes ... and
// then utilize the string similarity score").
func (t *Table) ConcatRow(i int) string {
	var b strings.Builder
	for c, v := range t.rows[i] {
		if c > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(v.String())
	}
	return b.String()
}

// String renders a small table for debugging and examples.
func (t *Table) String() string {
	var b strings.Builder
	for i, c := range t.schema {
		if i > 0 {
			b.WriteString(" | ")
		}
		b.WriteString(c.Name)
	}
	b.WriteByte('\n')
	for i := range t.rows {
		for c := range t.schema {
			if c > 0 {
				b.WriteString(" | ")
			}
			b.WriteString(t.rows[i][c].String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}
