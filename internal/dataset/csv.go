package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ReadCSV parses a table from CSV. The first record must be a header.
// Column kinds are taken from schema when non-nil; otherwise they are
// inferred by scanning the data: a column is Float when every non-null
// field parses as a number, else String.
func ReadCSV(r io.Reader, schema Schema) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: read csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("dataset: csv has no header")
	}
	header := records[0]
	body := records[1:]

	if schema == nil {
		schema = inferSchema(header, body)
	}
	if len(schema) != len(header) {
		return nil, fmt.Errorf("dataset: schema has %d columns, header has %d", len(schema), len(header))
	}
	for i, c := range schema {
		if c.Name != header[i] {
			return nil, fmt.Errorf("dataset: header column %d is %q, schema says %q", i, header[i], c.Name)
		}
	}
	if err := schema.Validate(); err != nil {
		return nil, err
	}

	t := NewTable(schema)
	for n, rec := range body {
		if len(rec) != len(schema) {
			return nil, fmt.Errorf("dataset: record %d has %d fields, want %d", n+1, len(rec), len(schema))
		}
		row := make([]Value, len(rec))
		for c, field := range rec {
			v, err := ParseValue(field, schema[c].Kind)
			if err != nil {
				return nil, fmt.Errorf("dataset: record %d column %q: %w", n+1, schema[c].Name, err)
			}
			row[c] = v
		}
		if _, err := t.Append(row); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func inferSchema(header []string, body [][]string) Schema {
	schema := make(Schema, len(header))
	for c, name := range header {
		kind := Float
		sawValue := false
		for _, rec := range body {
			if c >= len(rec) {
				continue
			}
			f := strings.TrimSpace(rec[c])
			if isNullSpelling(f) {
				continue
			}
			sawValue = true
			if _, err := strconv.ParseFloat(f, 64); err != nil {
				kind = String
				break
			}
		}
		if !sawValue {
			kind = String
		}
		schema[c] = Column{Name: name, Kind: kind}
	}
	return schema
}

// WriteCSV encodes the table, header first. Nulls become empty fields.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(t.schema))
	for i, c := range t.schema {
		header[i] = c.Name
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: write csv header: %w", err)
	}
	rec := make([]string, len(t.schema))
	for i := range t.ids {
		for c := range t.schema {
			rec[c] = t.cols[c].get(i).String()
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: write csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// LoadCSVFile reads a table from a file path. See ReadCSV.
func LoadCSVFile(path string, schema Schema) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	return ReadCSV(f, schema)
}

// SaveCSVFile writes the table to a file path. See WriteCSV.
func (t *Table) SaveCSVFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
