package dataset

// interner is a per-column string dictionary: codes are assigned in
// first-seen order, so identical insertion sequences yield identical
// code assignments (the determinism suites depend on value bytes only,
// but stable codes keep debugging sane). Clones share the dictionary
// read-only; the first write that needs a new code copies it first
// (copy-on-write), so a table never mutates a dictionary another table
// can observe.
type interner struct {
	strs []string          // code → string
	idx  map[string]uint32 // string → code
}

func newInterner() *interner {
	return &interner{idx: make(map[string]uint32)}
}

// lookup returns the code for s when already interned.
func (in *interner) lookup(s string) (uint32, bool) {
	c, ok := in.idx[s]
	return c, ok
}

// intern returns the code for s, assigning the next code when unseen.
func (in *interner) intern(s string) uint32 {
	if c, ok := in.idx[s]; ok {
		return c
	}
	c := uint32(len(in.strs))
	in.strs = append(in.strs, s)
	in.idx[s] = c
	return c
}

// clone deep-copies the dictionary (the copy-on-write slow path).
func (in *interner) clone() *interner {
	out := &interner{
		strs: make([]string, len(in.strs)),
		idx:  make(map[string]uint32, len(in.idx)),
	}
	copy(out.strs, in.strs)
	for s, c := range in.idx {
		out.idx[s] = c
	}
	return out
}
