package dataset

// bitmap is a packed bit vector used for per-column null tracking. The
// callers track the logical length; out-of-range reads return false.
type bitmap []uint64

func (b bitmap) get(i int) bool {
	w := i >> 6
	if w >= len(b) {
		return false
	}
	return b[w]&(1<<(uint(i)&63)) != 0
}

func (b *bitmap) set(i int, v bool) {
	w := i >> 6
	for w >= len(*b) {
		*b = append(*b, 0)
	}
	if v {
		(*b)[w] |= 1 << (uint(i) & 63)
	} else {
		(*b)[w] &^= 1 << (uint(i) & 63)
	}
}

func (b bitmap) clone() bitmap {
	out := make(bitmap, len(b))
	copy(out, b)
	return out
}

// anySet reports whether any of the first n bits is set — the fast path
// for null scans over fully populated columns.
func (b bitmap) anySet(n int) bool {
	full := n >> 6
	for w := 0; w < full && w < len(b); w++ {
		if b[w] != 0 {
			return true
		}
	}
	if rest := n & 63; rest != 0 && full < len(b) {
		if b[full]&(1<<uint(rest)-1) != 0 {
			return true
		}
	}
	return false
}
