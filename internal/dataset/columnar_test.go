package dataset

import (
	"testing"
)

func TestDeleteIDsBatch(t *testing.T) {
	tbl := samplePubs(t)
	// Delete rows 1 and 3 in one pass; include an unknown and a
	// duplicate id, which must be ignored.
	removed := tbl.DeleteIDs([]TupleID{tbl.ID(3), tbl.ID(1), tbl.ID(1), 9999})
	if removed != 2 {
		t.Fatalf("removed = %d, want 2", removed)
	}
	if tbl.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", tbl.NumRows())
	}
	// Survivors keep their order and id→row mapping.
	wantTitles := []string{"NADEEF", "NADEEF", "SeeDB"}
	wantVenues := []string{"ACM SIGMOD", "SIGMOD", "Very Large Data Bases"}
	for i := 0; i < tbl.NumRows(); i++ {
		if s, _ := tbl.Get(i, 0).Text(); s != wantTitles[i] {
			t.Fatalf("row %d title = %q, want %q", i, s, wantTitles[i])
		}
		if s, _ := tbl.Get(i, 1).Text(); s != wantVenues[i] {
			t.Fatalf("row %d venue = %q, want %q", i, s, wantVenues[i])
		}
		if got, ok := tbl.RowIndex(tbl.ID(i)); !ok || got != i {
			t.Fatalf("id index mismatch at row %d", i)
		}
	}
	if tbl.DeleteIDs(nil) != 0 {
		t.Fatal("empty batch should remove nothing")
	}
}

func TestDeleteIDsPreservesNulls(t *testing.T) {
	tbl := samplePubs(t)
	// Row 3 (SeeDB, VLDB, null) survives deleting rows 0..2; the null
	// must follow its row through the compaction.
	tbl.DeleteIDs([]TupleID{tbl.ID(0), tbl.ID(1), tbl.ID(2)})
	if !tbl.Get(0, 2).IsNull() {
		t.Fatal("null cell lost its position after compaction")
	}
	if f, _ := tbl.Get(1, 2).Float(); f != 55 {
		t.Fatalf("survivor value = %v, want 55", f)
	}
}

// TestCloneDictionaryCopyOnWrite pins the interning contract: clones
// share the string dictionary read-only, and the first write that needs
// a new code copies it, so neither side ever observes the other's
// dictionary growth.
func TestCloneDictionaryCopyOnWrite(t *testing.T) {
	tbl := samplePubs(t)
	cp := tbl.Clone()

	// Writing an existing value into the clone needs no new code and
	// must not disturb the original.
	if err := cp.Set(0, 1, Str("VLDB")); err != nil {
		t.Fatal(err)
	}
	if s, _ := tbl.Get(0, 1).Text(); s != "ACM SIGMOD" {
		t.Fatalf("original venue = %q after clone write", s)
	}

	// Writing a brand-new string into the clone triggers the dictionary
	// copy; the original still resolves all its codes correctly.
	if err := cp.Set(1, 1, Str("EDBT")); err != nil {
		t.Fatal(err)
	}
	if s, _ := cp.Get(1, 1).Text(); s != "EDBT" {
		t.Fatalf("clone venue = %q, want EDBT", s)
	}
	if s, _ := tbl.Get(1, 1).Text(); s != "SIGMOD Conf." {
		t.Fatalf("original venue = %q after clone dictionary copy", s)
	}

	// And symmetrically: new strings in the original don't leak into
	// the clone.
	if err := tbl.Set(2, 1, Str("CIDR")); err != nil {
		t.Fatal(err)
	}
	if s, _ := cp.Get(2, 1).Text(); s != "SIGMOD" {
		t.Fatalf("clone venue = %q after original write", s)
	}
}

func TestColumnIndexMemoized(t *testing.T) {
	tbl := samplePubs(t)
	if got := tbl.ColumnIndex("Citations"); got != 2 {
		t.Fatalf("ColumnIndex(Citations) = %d", got)
	}
	if got := tbl.ColumnIndex("Nope"); got != -1 {
		t.Fatalf("ColumnIndex(Nope) = %d", got)
	}
	// Table.ColumnIndex must agree with Schema.Index on every column.
	for _, c := range tbl.Schema() {
		if tbl.ColumnIndex(c.Name) != tbl.Schema().Index(c.Name) {
			t.Fatalf("ColumnIndex disagrees with Schema.Index on %q", c.Name)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if tbl.ColumnIndex("Citations") != 2 {
			t.Fatal("wrong index")
		}
	})
	if allocs != 0 {
		t.Fatalf("ColumnIndex allocates %v per call, want 0", allocs)
	}
}

// TestIsNullSpellingNoAllocs is the satellite's allocation assertion:
// parsing CSV fields must not allocate for the null-spelling check
// (the old strings.ToUpper copied every field).
func TestIsNullSpellingNoAllocs(t *testing.T) {
	fields := []string{"", "N.A.", "na", "n/a", "NULL", "NaN", "none", "VLDB", "ordinary text", "174.5"}
	allocs := testing.AllocsPerRun(200, func() {
		for _, f := range fields {
			isNullSpelling(f)
		}
	})
	if allocs != 0 {
		t.Fatalf("isNullSpelling allocates %v per run, want 0", allocs)
	}
	// Semantics unchanged from the ToUpper switch.
	for _, f := range []string{"", "N.A.", "n.a.", "NA", "na", "N/A", "null", "NULL", "nan", "NONE", "None"} {
		if !isNullSpelling(f) {
			t.Fatalf("isNullSpelling(%q) = false, want true", f)
		}
	}
	for _, f := range []string{"0", "N.A", "NAAN", "nul", "none ", " "} {
		if isNullSpelling(f) {
			t.Fatalf("isNullSpelling(%q) = true, want false", f)
		}
	}
}

// TestGetNoAllocs pins the columnar promise that cell reads build the
// Value on the stack: scanning a table through Get must not allocate.
func TestGetNoAllocs(t *testing.T) {
	tbl := samplePubs(t)
	sum := 0.0
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < tbl.NumRows(); i++ {
			for c := 0; c < tbl.NumCols(); c++ {
				if f, ok := tbl.Get(i, c).Float(); ok {
					sum += f
				}
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("Get scan allocates %v per run, want 0", allocs)
	}
	_ = sum
}
