package dataset

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func pubsSchema() Schema {
	return Schema{
		{Name: "Title", Kind: String},
		{Name: "Venue", Kind: String},
		{Name: "Citations", Kind: Float},
	}
}

func samplePubs(t *testing.T) *Table {
	t.Helper()
	tbl := NewTable(pubsSchema())
	rows := [][]Value{
		{Str("NADEEF"), Str("ACM SIGMOD"), Num(174)},
		{Str("NADEEF"), Str("SIGMOD Conf."), Num(1740)},
		{Str("NADEEF"), Str("SIGMOD"), Num(174)},
		{Str("SeeDB"), Str("VLDB"), Null(Float)},
		{Str("SeeDB"), Str("Very Large Data Bases"), Num(55)},
	}
	for _, r := range rows {
		tbl.MustAppend(r)
	}
	return tbl
}

func TestValueBasics(t *testing.T) {
	if !Num(math.NaN()).IsNull() {
		t.Fatal("NaN should normalize to null")
	}
	if got := Num(174).String(); got != "174" {
		t.Fatalf("Num(174).String() = %q", got)
	}
	if got := Str("VLDB").String(); got != "VLDB" {
		t.Fatalf("Str String = %q", got)
	}
	if Null(Float).String() != "" {
		t.Fatal("null should render empty")
	}
	if !Null(Float).Equal(Null(Float)) {
		t.Fatal("nulls of same kind should be equal")
	}
	if Null(Float).Equal(Null(String)) {
		t.Fatal("nulls of different kinds should differ")
	}
	if Str("a").Equal(Num(1)) {
		t.Fatal("kind mismatch should not be equal")
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Num(1), Num(2), -1},
		{Num(2), Num(1), 1},
		{Num(2), Num(2), 0},
		{Null(Float), Num(-5), -1},
		{Num(-5), Null(Float), 1},
		{Null(Float), Null(Float), 0},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("a"), 1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueComparePanicsOnKindMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_ = Str("a").Compare(Num(1))
}

func TestParseValue(t *testing.T) {
	cases := []struct {
		in   string
		kind Kind
		null bool
	}{
		{"", Float, true},
		{"N.A.", Float, true},
		{"na", Float, true},
		{"null", String, true},
		{"174.0", Float, false},
		{"VLDB", String, false},
	}
	for _, c := range cases {
		v, err := ParseValue(c.in, c.kind)
		if err != nil {
			t.Fatalf("ParseValue(%q): %v", c.in, err)
		}
		if v.IsNull() != c.null {
			t.Errorf("ParseValue(%q).IsNull() = %v, want %v", c.in, v.IsNull(), c.null)
		}
	}
	if _, err := ParseValue("abc", Float); err == nil {
		t.Fatal("expected error parsing non-numeric float field")
	}
}

func TestSchemaValidate(t *testing.T) {
	if err := pubsSchema().Validate(); err != nil {
		t.Fatal(err)
	}
	dup := Schema{{Name: "A", Kind: String}, {Name: "A", Kind: Float}}
	if err := dup.Validate(); err == nil {
		t.Fatal("expected duplicate-column error")
	}
	empty := Schema{{Name: "", Kind: String}}
	if err := empty.Validate(); err == nil {
		t.Fatal("expected empty-name error")
	}
}

func TestAppendValidation(t *testing.T) {
	tbl := NewTable(pubsSchema())
	if _, err := tbl.Append([]Value{Str("x")}); err == nil {
		t.Fatal("expected arity error")
	}
	if _, err := tbl.Append([]Value{Str("x"), Num(1), Num(1)}); err == nil {
		t.Fatal("expected kind error")
	}
}

func TestTupleIDsStable(t *testing.T) {
	tbl := samplePubs(t)
	ids := append([]TupleID(nil), tbl.IDs()...)
	tbl.SortBy(2, true) // sort by Citations desc
	for _, id := range ids {
		if _, ok := tbl.RowIndex(id); !ok {
			t.Fatalf("id %d lost after sort", id)
		}
	}
	// The largest citation count should now be first.
	if f, _ := tbl.Get(0, 2).Float(); f != 1740 {
		t.Fatalf("after desc sort first citation = %v, want 1740", f)
	}
	// Null sorts last under desc (nulls compare smallest).
	if !tbl.Get(tbl.NumRows()-1, 2).IsNull() {
		t.Fatal("null should sort last under desc")
	}
}

func TestSetAndGetByID(t *testing.T) {
	tbl := samplePubs(t)
	id := tbl.ID(3) // SeeDB with null citations
	if err := tbl.SetByID(id, 2, Num(55)); err != nil {
		t.Fatal(err)
	}
	v, ok := tbl.GetByID(id, 2)
	if !ok {
		t.Fatal("id vanished")
	}
	if f, _ := v.Float(); f != 55 {
		t.Fatalf("got %v, want 55", v)
	}
	if err := tbl.SetByID(id, 2, Str("bad")); err == nil {
		t.Fatal("expected kind error on Set")
	}
	if err := tbl.SetByID(9999, 2, Num(1)); err == nil {
		t.Fatal("expected missing-id error")
	}
}

func TestDeleteByID(t *testing.T) {
	tbl := samplePubs(t)
	id := tbl.ID(1)
	if !tbl.DeleteByID(id) {
		t.Fatal("delete failed")
	}
	if tbl.DeleteByID(id) {
		t.Fatal("double delete should report false")
	}
	if tbl.NumRows() != 4 {
		t.Fatalf("rows = %d, want 4", tbl.NumRows())
	}
	// Remaining ids must still resolve to the right rows.
	for i := 0; i < tbl.NumRows(); i++ {
		got, ok := tbl.RowIndex(tbl.ID(i))
		if !ok || got != i {
			t.Fatalf("id index mismatch at row %d", i)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	tbl := samplePubs(t)
	cp := tbl.Clone()
	if err := cp.Set(0, 2, Num(999)); err != nil {
		t.Fatal(err)
	}
	if f, _ := tbl.Get(0, 2).Float(); f != 174 {
		t.Fatal("clone mutation leaked into original")
	}
	id, err := cp.Append([]Value{Str("new"), Str("X"), Num(1)})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tbl.RowIndex(id); ok {
		t.Fatal("clone id allocation leaked")
	}
}

func TestFilterPreservesIDs(t *testing.T) {
	tbl := samplePubs(t)
	venue := tbl.ColumnIndex("Venue")
	f := tbl.Filter(func(row []Value) bool {
		s, _ := row[venue].Text()
		return strings.Contains(s, "SIGMOD")
	})
	if f.NumRows() != 3 {
		t.Fatalf("filter rows = %d, want 3", f.NumRows())
	}
	for i := 0; i < f.NumRows(); i++ {
		orig, ok := tbl.RowByID(f.ID(i))
		if !ok {
			t.Fatal("filtered id missing from original")
		}
		if !reflect.DeepEqual(orig, f.Row(i)) {
			t.Fatal("filtered row differs from original")
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tbl := samplePubs(t)
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(bytes.NewReader(buf.Bytes()), pubsSchema())
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != tbl.NumRows() {
		t.Fatalf("rows = %d, want %d", back.NumRows(), tbl.NumRows())
	}
	for i := 0; i < tbl.NumRows(); i++ {
		for c := 0; c < tbl.NumCols(); c++ {
			if !back.Get(i, c).Equal(tbl.Get(i, c)) {
				t.Fatalf("cell (%d,%d) = %v, want %v", i, c, back.Get(i, c), tbl.Get(i, c))
			}
		}
	}
}

func TestCSVInferSchema(t *testing.T) {
	in := "Name,Score,Note\nalice,3.5,ok\nbob,,bad\n,7,"
	tbl, err := ReadCSV(strings.NewReader(in), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := Schema{
		{Name: "Name", Kind: String},
		{Name: "Score", Kind: Float},
		{Name: "Note", Kind: String},
	}
	if !reflect.DeepEqual(tbl.Schema(), want) {
		t.Fatalf("inferred schema = %v, want %v", tbl.Schema(), want)
	}
	if !tbl.Get(1, 1).IsNull() {
		t.Fatal("empty numeric field should be null")
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), nil); err == nil {
		t.Fatal("expected empty-csv error")
	}
	if _, err := ReadCSV(strings.NewReader("A,B\n1"), nil); err == nil {
		t.Fatal("expected ragged-record error")
	}
	if _, err := ReadCSV(strings.NewReader("A\nx"), Schema{{Name: "B", Kind: String}}); err == nil {
		t.Fatal("expected header/schema mismatch error")
	}
}

func TestStats(t *testing.T) {
	tbl := samplePubs(t)
	s := tbl.Stats(2)
	if s.Rows != 5 || s.Nulls != 1 {
		t.Fatalf("stats rows/nulls = %d/%d", s.Rows, s.Nulls)
	}
	if got := s.NullRate(); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("null rate = %v, want 0.2", got)
	}
	if s.Min != 55 || s.Max != 1740 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.Median != 174 {
		t.Fatalf("median = %v, want 174", s.Median)
	}
	vs := tbl.Stats(1)
	if vs.Distinct != 5 {
		t.Fatalf("venue distinct = %d, want 5", vs.Distinct)
	}
}

func TestDistinctStringsAndColumnHelpers(t *testing.T) {
	tbl := samplePubs(t)
	d := tbl.DistinctStrings(0)
	if d["NADEEF"] != 3 || d["SeeDB"] != 2 {
		t.Fatalf("distinct titles = %v", d)
	}
	vals, ids := tbl.NumericColumn(2)
	if len(vals) != 4 || len(ids) != 4 {
		t.Fatalf("numeric column sizes = %d/%d", len(vals), len(ids))
	}
	miss := tbl.MissingIDs(2)
	if len(miss) != 1 || miss[0] != tbl.ID(3) {
		t.Fatalf("missing ids = %v", miss)
	}
}

func TestConcatRow(t *testing.T) {
	tbl := samplePubs(t)
	got := tbl.ConcatRow(0)
	if got != "NADEEF ACM SIGMOD 174" {
		t.Fatalf("ConcatRow = %q", got)
	}
}

// Property: CSV round-trip preserves arbitrary float values (including
// negatives and very small magnitudes) and arbitrary printable strings.
func TestQuickCSVRoundTripFloats(t *testing.T) {
	f := func(vals []float64) bool {
		tbl := NewTable(Schema{{Name: "V", Kind: Float}})
		for _, v := range vals {
			if math.IsInf(v, 0) {
				v = 0
			}
			tbl.MustAppend([]Value{Num(v)})
		}
		var buf bytes.Buffer
		if err := tbl.WriteCSV(&buf); err != nil {
			return false
		}
		back, err := ReadCSV(bytes.NewReader(buf.Bytes()), tbl.Schema())
		if err != nil {
			return false
		}
		if back.NumRows() != tbl.NumRows() {
			return false
		}
		for i := 0; i < tbl.NumRows(); i++ {
			if !back.Get(i, 0).Equal(tbl.Get(i, 0)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Compare is a total preorder consistent with Equal on floats.
func TestQuickCompareConsistent(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		va, vb := Num(a), Num(b)
		c1, c2 := va.Compare(vb), vb.Compare(va)
		if c1 != -c2 {
			return false
		}
		return (c1 == 0) == va.Equal(vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
