package dataset

import "fmt"

// Overlay is a copy-on-write view over a base Table: per-column sparse
// cell patches plus row tombstones. Creating one is O(columns) and every
// edit is O(1), so hypothetical repairs, snapshot deltas and what-if
// views cost O(touched cells) instead of the O(table) a deep Clone
// pays. The base table must not be mutated while overlays over it are
// alive; the overlay itself is safe for concurrent reads after the last
// Set/Delete (the same freeze-then-fan-out discipline the pipeline
// already applies to clusters and standardizers).
type Overlay struct {
	base    *Table
	patches []map[TupleID]Value // per column, lazily allocated
	tombs   map[TupleID]struct{}
	touched int
}

// Overlay returns an empty copy-on-write view over the table.
func (t *Table) Overlay() *Overlay {
	return &Overlay{base: t, patches: make([]map[TupleID]Value, len(t.cols))}
}

// Base returns the table the overlay patches.
func (o *Overlay) Base() *Table { return o.base }

// Touched returns the number of patched cells plus tombstoned rows —
// the overlay's size, and the cost Materialize adds over a plain Clone.
func (o *Overlay) Touched() int { return o.touched }

// Set patches one cell, addressed by tuple id, enforcing the column
// kind. The base table is never written.
func (o *Overlay) Set(id TupleID, c int, v Value) error {
	if v.Kind() != o.base.schema[c].Kind {
		return fmt.Errorf("dataset: column %q expects %v, got %v", o.base.schema[c].Name, o.base.schema[c].Kind, v.Kind())
	}
	if o.base.rowOf(id) == noRow {
		return fmt.Errorf("dataset: no tuple with id %d", id)
	}
	if o.patches[c] == nil {
		o.patches[c] = make(map[TupleID]Value)
	}
	if _, seen := o.patches[c][id]; !seen {
		o.touched++
	}
	o.patches[c][id] = v
	return nil
}

// Delete tombstones a row. It reports whether the id was present and
// not already tombstoned.
func (o *Overlay) Delete(id TupleID) bool {
	if o.base.rowOf(id) == noRow {
		return false
	}
	if o.tombs == nil {
		o.tombs = make(map[TupleID]struct{})
	}
	if _, dead := o.tombs[id]; dead {
		return false
	}
	o.tombs[id] = struct{}{}
	o.touched++
	return true
}

// Deleted reports whether the row is tombstoned.
func (o *Overlay) Deleted(id TupleID) bool {
	_, dead := o.tombs[id]
	return dead
}

// Patch returns the patched value for a cell, if any. It does not
// consult the base table — this is the hook view building uses to layer
// hypothetical repairs over the session table without copying it.
func (o *Overlay) Patch(id TupleID, c int) (Value, bool) {
	m := o.patches[c]
	if m == nil {
		return Value{}, false
	}
	v, ok := m[id]
	return v, ok
}

// Get reads a cell through the overlay: tombstoned rows are absent,
// patched cells win over the base.
func (o *Overlay) Get(id TupleID, c int) (Value, bool) {
	if o.Deleted(id) {
		return Value{}, false
	}
	if v, ok := o.Patch(id, c); ok {
		return v, true
	}
	return o.base.GetByID(id, c)
}

// Materialize applies the overlay onto a clone of the base table:
// equivalent to Clone + Set per patch + DeleteIDs of the tombstones.
// The property suite asserts this equivalence over randomized edit
// scripts.
func (o *Overlay) Materialize() *Table {
	out := o.base.Clone()
	for c, m := range o.patches {
		for id, v := range m {
			if err := out.SetByID(id, c, v); err != nil {
				panic(err) // unreachable: Set validated id and kind
			}
		}
	}
	if len(o.tombs) > 0 {
		dead := make([]TupleID, 0, len(o.tombs))
		for id := range o.tombs {
			dead = append(dead, id)
		}
		out.DeleteIDs(dead)
	}
	return out
}
