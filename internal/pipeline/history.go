package pipeline

import (
	"fmt"

	"visclean/internal/dataset"
	"visclean/internal/em"
	"visclean/internal/vql"
)

// Answer kind tags, matching the paper's four question classes.
const (
	AnswerKindT = "T" // entity match (tuple pair)
	AnswerKindA = "A" // attribute synonym (value pair)
	AnswerKindM = "M" // missing-value imputation
	AnswerKindO = "O" // outlier verdict + correction
	// AnswerKindV records a view added mid-session (AddView). Not a
	// user answer in the paper's sense, but it must live in the ordered
	// log: adding a view extends the A-column set, and replaying answers
	// with the final column set instead of the as-of-then one would
	// diverge.
	AnswerKindV = "V"
)

// Answer is one applied user answer. The session records every applied
// answer into its history log, which is the recoverable core of a
// session: replaying the log against a freshly constructed, identically
// configured session reproduces the exact table, model and clustering
// state (training is deterministic given the label set and seed, see
// em.Matcher.Train).
type Answer struct {
	Kind string `json:"kind"`
	// A/B are the tuple ids of a T question; A alone carries the tuple
	// id of an M or O question.
	A dataset.TupleID `json:"a,omitempty"`
	B dataset.TupleID `json:"b,omitempty"`
	// Column/V1/V2 identify an A question.
	Column string `json:"column,omitempty"`
	V1     string `json:"v1,omitempty"`
	V2     string `json:"v2,omitempty"`
	// Yes is the boolean verdict: T match, A same, O is-an-outlier.
	Yes bool `json:"yes,omitempty"`
	// Value is the numeric answer of an M or O question.
	Value float64 `json:"value,omitempty"`
	// Query is the VQL text of a view added mid-session (kind V).
	Query string `json:"query,omitempty"`
}

// History is a session's answer log: one answer group per completed
// iteration, plus the applied-but-uncommitted answers of an iteration
// that was interrupted (cancelled or crashed) mid-CQG. It is the
// serializable payload of a session snapshot.
type History struct {
	Iterations [][]Answer `json:"iterations"`
	Partial    []Answer   `json:"partial,omitempty"`
}

// NumAnswers counts every logged answer, committed or partial.
func (h History) NumAnswers() int {
	n := len(h.Partial)
	for _, it := range h.Iterations {
		n += len(it)
	}
	return n
}

// History returns a deep copy of the session's answer log. Callers must
// not invoke it concurrently with a running iteration.
func (s *Session) History() History {
	h := History{}
	if len(s.committed) > 0 {
		h.Iterations = make([][]Answer, len(s.committed))
		for i, it := range s.committed {
			h.Iterations[i] = append([]Answer(nil), it...)
		}
	}
	if len(s.current) > 0 {
		h.Partial = append([]Answer(nil), s.current...)
	}
	return h
}

// logAnswer appends an applied answer to the in-flight iteration's log.
func (s *Session) logAnswer(a Answer) {
	s.current = append(s.current, a)
}

// commitCurrent seals the in-flight answers as one iteration group.
// Answers left over from a previously interrupted iteration are folded
// into the next committed group, which mirrors the live state evolution
// exactly: both apply those answers before the group's single model
// refresh.
func (s *Session) commitCurrent() {
	s.committed = append(s.committed, s.current)
	s.current = nil
}

// Replay re-applies a logged history to a freshly constructed session:
// each committed group's answers are applied in order followed by one
// model refresh (the step-6 retrain RunIteration would have done), then
// any partial answers are applied without a refresh. The session must be
// fresh — same table, query, key columns and Config as the one that
// produced the history — or the replayed state diverges.
func (s *Session) Replay(h History) error {
	if s.iter != 0 || len(s.committed) != 0 || len(s.current) != 0 {
		return fmt.Errorf("pipeline: Replay requires a fresh session (iteration %d, %d logged answers)",
			s.iter, len(s.committed)+len(s.current))
	}
	for i, group := range h.Iterations {
		for _, a := range group {
			if err := s.replayAnswer(a); err != nil {
				return fmt.Errorf("pipeline: replay iteration %d: %w", i+1, err)
			}
		}
		s.refreshModel()
		s.iter++
		s.commitCurrent()
	}
	for _, a := range h.Partial {
		if err := s.replayAnswer(a); err != nil {
			return fmt.Errorf("pipeline: replay partial answers: %w", err)
		}
	}
	return nil
}

// replayAnswer routes one logged answer through the same apply path the
// live iteration used, which also re-logs it — so a restored session's
// own History() is immediately snapshot-complete again.
func (s *Session) replayAnswer(a Answer) error {
	switch a.Kind {
	case AnswerKindT:
		s.applyT(em.MakePair(a.A, a.B), a.Yes)
	case AnswerKindA:
		s.applyA(a.Column, a.V1, a.V2, a.Yes)
	case AnswerKindM:
		s.applyM(a.A, a.Value)
	case AnswerKindO:
		s.applyO(a.A, a.Yes, a.Value)
	case AnswerKindV:
		q, err := vql.Parse(a.Query)
		if err != nil {
			return fmt.Errorf("view registration %q: %w", a.Query, err)
		}
		return s.applyAddView(q)
	default:
		return fmt.Errorf("unknown answer kind %q", a.Kind)
	}
	return nil
}
