package pipeline

// Session-side wiring of the cross-session artifact cache (DESIGN.md
// §12). Five artifact kinds cover the heavy immutables a session derives
// purely from table content:
//
//	emboot   — blocking candidates, their feature vectors, the distant-
//	           supervision seed labels, the first trained forest and the
//	           post-train probabilities (the dominant NewSession cost).
//	           Keyed by the RF config and blocking keys; RF.Workers is
//	           excluded because training is worker-invariant.
//	std      — one frozen, approval-free goldenrec.Standardizer per
//	           A-column. Sessions Clone() it instead of re-scanning the
//	           column's distinct values on every model refresh.
//	simjoin  — the Algorithm 1 similarity self-join of one A-column at
//	           one threshold. Sessions share the pairs slice and get a
//	           private memo (CloneShared).
//	knn      — the raw per-row token sets of the kNN index. Token sets
//	           exclude yCol, the only column repairs rewrite, so they are
//	           valid at any point in any session's life; each session
//	           re-binds them to its own table and canonicalizer and
//	           re-tokenizes only rows whose canonical text differs.
//	basevis  — one view's pristine initial chart and its
//	           distance.Baseline prefix sums, served while the session
//	           has no answers. Keyed per view query, so multi-view
//	           sessions hold one slot per panel.
//
// The determinism contract: every artifact is a pure function of the
// fingerprinted table content plus the parameters its kind string
// encodes, and strictly read-only once cached. Mutable companions (the
// similarity memo, the token maps a session resets) are private per
// session. Every acquisition has a private-build fallback, so a build
// error, a cold cache or Config.NoArtifactCache all degrade to exactly
// the pre-cache behaviour — the determinism suite holds cache-on
// sessions byte-identical to cache-off ones.

import (
	"fmt"
	"reflect"
	"sort"

	"visclean/internal/artifact"
	"visclean/internal/distance"
	"visclean/internal/em"
	"visclean/internal/goldenrec"
	"visclean/internal/knn"
	"visclean/internal/rf"
	"visclean/internal/vis"
)

// Rough per-element heap overheads for Bytes() accounting: a map entry's
// bucket share, a string header, a slice header, a forest node.
const (
	mapEntryBytes  = 48
	strHeaderBytes = 16
	sliceHdrBytes  = 24
	forestNodeSize = 48
)

// artifactsOn reports whether this session reads and populates the
// shared cache.
func (s *Session) artifactsOn() bool { return s.fingerprint != "" }

// Fingerprint returns the content hash keying this session's entries in
// the shared artifact cache, or "" when the cache is off. The service
// layer records it in snapshots; restore recomputes it from the rebuilt
// table and re-acquires, so the snapshot field is informational.
func (s *Session) Fingerprint() string { return s.fingerprint }

// acquire fetches one artifact for the session's fingerprint, retaining
// the handle until Close so the cache cannot evict it out from under the
// session. Returns nil — private-build fallback — when the cache is off
// or the build failed.
func (s *Session) acquire(kind string, build func() (artifact.Artifact, error)) artifact.Artifact {
	if !s.artifactsOn() {
		return nil
	}
	h, err := s.cfg.Artifacts.Acquire(s.fingerprint, kind, build)
	if err != nil {
		return nil
	}
	s.artMu.Lock()
	if s.artClosed {
		s.artMu.Unlock()
		h.Release()
		return nil
	}
	s.artHandles = append(s.artHandles, h)
	s.artMu.Unlock()
	return h.Artifact()
}

// Close releases the session's references into the shared artifact
// cache. Idempotent, and safe to call while an iteration is still
// running: a late acquisition after Close releases its handle
// immediately and the caller falls back to a private build.
func (s *Session) Close() {
	s.artMu.Lock()
	handles := s.artHandles
	s.artHandles = nil
	s.artClosed = true
	s.artMu.Unlock()
	for _, h := range handles {
		h.Release()
	}
}

// ---- emboot ----

// seedLabel is one distant-supervision pseudo-label.
type seedLabel struct {
	pair  em.Pair
	match bool
}

// embootArtifact is the shared EM bootstrap: everything NewSession
// derives before the user's first answer.
type embootArtifact struct {
	candidates []em.Pair
	feats      [][]float64 // aligned with candidates; shared read-only
	labels     []seedLabel
	forest     *rf.Forest // nil when seeding yielded a single class
	probs      []float64  // post-train probabilities, aligned with candidates
}

func (a *embootArtifact) Bytes() int64 {
	b := int64(len(a.candidates))*16 + int64(len(a.probs))*8 + int64(len(a.labels))*17
	for _, f := range a.feats {
		b += sliceHdrBytes + int64(len(f))*8
	}
	if a.forest != nil {
		b += int64(a.forest.NumNodes()) * forestNodeSize
	}
	return b
}

func embootKey(cfg rf.Config, keyColumns []int) string {
	return fmt.Sprintf("emboot:rf=%d,%d,%d,%g,%d:keys=%v",
		cfg.NumTrees, cfg.MaxDepth, cfg.MinLeaf, cfg.FeatureFrac, cfg.Seed, keyColumns)
}

// acquireBootstrap returns the shared bootstrap artifact, building it
// single-flight on a cold cache; nil means the cache is off and the
// caller must run the private bootstrapMatcher/refreshModel path.
func (s *Session) acquireBootstrap(keyColumns []int) *embootArtifact {
	a := s.acquire(embootKey(s.cfg.RF, keyColumns), func() (artifact.Artifact, error) {
		return s.buildBootstrap(keyColumns), nil
	})
	if a == nil {
		return nil
	}
	return a.(*embootArtifact)
}

// buildBootstrap replays the candidate generation, feature extraction,
// distant-supervision seeding and first training of the private cold
// path (bootstrapMatcher + refreshModel's train half) on a throwaway
// matcher, capturing the immutable results. The arithmetic must stay in
// lockstep with bootstrapMatcher — the determinism suite compares the
// two paths byte for byte.
func (s *Session) buildBootstrap(keyColumns []int) *embootArtifact {
	const maxSeedPerClass = 30
	cands := em.Candidates(s.table, em.BlockingConfig{KeyColumns: keyColumns})
	m := em.NewMatcher(s.table, s.cfg.RF)
	feats := make([][]float64, len(cands))
	type scored struct {
		i  int
		pr float64
	}
	all := make([]scored, len(cands))
	for i, p := range cands {
		f := m.Features(s.table, p)
		feats[i] = f
		all[i] = scored{i: i, pr: m.ProbWithFeatures(p, f)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].pr != all[j].pr {
			return all[i].pr > all[j].pr
		}
		pi, pj := cands[all[i].i], cands[all[j].i]
		if pi.A != pj.A {
			return pi.A < pj.A
		}
		return pi.B < pj.B
	})
	var labels []seedLabel
	pos := 0
	for _, sc := range all {
		if pos >= maxSeedPerClass || sc.pr < 0.88 {
			break
		}
		m.AddLabel(cands[sc.i], true)
		labels = append(labels, seedLabel{pair: cands[sc.i], match: true})
		pos++
	}
	neg := 0
	for i := len(all) - 1; i >= 0; i-- {
		sc := all[i]
		if neg >= maxSeedPerClass || sc.pr > 0.55 {
			break
		}
		m.AddLabel(cands[sc.i], false)
		labels = append(labels, seedLabel{pair: cands[sc.i], match: false})
		neg++
	}
	_ = m.Train(s.table) // single-class training keeps the heuristic (nil forest)
	probs := make([]float64, len(cands))
	for i, p := range cands {
		probs[i] = m.ProbWithFeatures(p, feats[i])
	}
	return &embootArtifact{
		candidates: cands,
		feats:      feats,
		labels:     labels,
		forest:     m.Forest(),
		probs:      probs,
	}
}

// installBootstrap warm-starts the session from the shared bootstrap,
// then runs the refreshModel tail (synonym classes, clustering, index
// maintenance) exactly as the cold path's first refresh would with no
// user labels. Candidate, feature and probability storage is shared
// read-only: later refreshes replace map entries wholesale, never
// mutating the shared slices.
func (s *Session) installBootstrap(a *embootArtifact) {
	s.candidates = a.candidates
	s.featCache = make(map[em.Pair][]float64, len(a.candidates))
	s.probCache = make(map[em.Pair]float64, len(a.candidates))
	for i, p := range a.candidates {
		s.featCache[p] = a.feats[i]
		s.probCache[p] = a.probs[i]
	}
	for _, l := range a.labels {
		s.matcher.AddLabel(l.pair, l.match)
	}
	s.matcher.SetForest(a.forest)
	s.dirtyIDs = nil
	s.mergeList = nil // no auto-merging before the first user label
	s.rebuildStandardizers()
	s.clusters = s.buildClusters(nil, nil)
	s.maintainKnnIndex()
}

// ---- std ----

// stdArtifact is one A-column's frozen approval-free standardizer.
type stdArtifact struct{ base *goldenrec.Standardizer }

func (a *stdArtifact) Bytes() int64 { return a.base.Bytes() }

// baseStandardizer returns a fresh approval-free standardizer for column
// c: a Clone of the shared frozen base when the cache is on (skipping
// the per-refresh distinct-values scan), a private build otherwise.
func (s *Session) baseStandardizer(c int) *goldenrec.Standardizer {
	if st, ok := s.stdBase[c]; ok {
		return st.Clone()
	}
	a := s.acquire(fmt.Sprintf("std:col=%d", c), func() (artifact.Artifact, error) {
		st := goldenrec.NewStandardizer(s.table, c)
		st.Freeze()
		return &stdArtifact{base: st}, nil
	})
	if a == nil {
		return goldenrec.NewStandardizer(s.table, c)
	}
	base := a.(*stdArtifact).base
	if s.stdBase == nil {
		s.stdBase = make(map[int]*goldenrec.Standardizer, len(s.aColumns))
	}
	s.stdBase[c] = base
	return base.Clone()
}

// ---- simjoin ----

// simjoinArtifact is one A-column's precomputed similarity self-join.
type simjoinArtifact struct{ ix *goldenrec.SimIndex }

func (a *simjoinArtifact) Bytes() int64 {
	b := int64(sliceHdrBytes)
	for _, p := range a.ix.Pairs() {
		b += int64(len(p.V1)+len(p.V2)) + 2*strHeaderBytes + 16
	}
	return b
}

// simIndexFor returns a per-session similarity join for column col,
// sharing the precomputed pairs through the cache when possible. The
// clone carries a private memo; the join result itself is a pure
// function of the column's distinct values, which repairs never touch
// (only yCol is ever rewritten).
func (s *Session) simIndexFor(col int, threshold float64) *goldenrec.SimIndex {
	a := s.acquire(fmt.Sprintf("simjoin:col=%d:th=%g", col, threshold), func() (artifact.Artifact, error) {
		return &simjoinArtifact{ix: goldenrec.NewSimIndex(s.table, col, threshold)}, nil
	})
	if a == nil {
		return goldenrec.NewSimIndex(s.table, col, threshold)
	}
	return a.(*simjoinArtifact).ix.CloneShared()
}

// ---- knn ----

// knnArtifact is the raw (canon-free) token set of every row, skipCol
// excluded. The maps are shared live across sessions: safe because
// ResetRows replaces a row's map wholesale, never mutating one in place.
type knnArtifact struct {
	tokens []map[string]struct{}
	bytes  int64
}

func newKnnArtifact(ix *knn.Index) *knnArtifact {
	tokens := ix.TokenSets()
	b := int64(sliceHdrBytes)
	for _, set := range tokens {
		b += sliceHdrBytes
		for tok := range set {
			b += int64(len(tok)) + mapEntryBytes
		}
	}
	return &knnArtifact{tokens: tokens, bytes: b}
}

func (a *knnArtifact) Bytes() int64 { return a.bytes }

// knnFromArtifact installs the session's kNN index from the shared raw
// token sets, re-tokenizing exactly the rows whose canonical text
// differs from the raw rendering — none in a fresh session; after a
// snapshot restore, the rows touched by replayed approvals. Returns
// false (private-build fallback) when the cache is off.
func (s *Session) knnFromArtifact() bool {
	a := s.acquire(fmt.Sprintf("knn:skip=%d", s.yCol), func() (artifact.Artifact, error) {
		return newKnnArtifact(knn.NewIndex(s.table, s.yCol)), nil
	})
	if a == nil {
		return false
	}
	s.knnIndex = knn.NewIndexFromTokens(s.table, s.yCol, s.knnCanon, a.(*knnArtifact).tokens)
	s.snapshotCanon()
	var rows []int
	for _, c := range s.aColumns {
		for v, canon := range s.canonSnap[c] {
			if canon != v {
				rows = append(rows, s.valueRows[c][v]...)
			}
		}
	}
	if len(rows) > 0 {
		sort.Ints(rows)
		s.knnIndex.ResetRows(dedupSortedInts(rows))
	}
	return true
}

// ---- basevis ----

// basevisArtifact is the pristine initial chart and its precomputed
// distance baseline (built against distance.Default).
type basevisArtifact struct {
	vis      *vis.Data
	baseline *distance.Baseline
}

func (a *basevisArtifact) Bytes() int64 {
	b := int64(sliceHdrBytes)
	for _, p := range a.vis.Points {
		b += int64(len(p.Label)) + strHeaderBytes + 24
	}
	return 3 * b // the baseline's prefix sums and label maps mirror the chart
}

// pristine reports whether the session still has no user input of any
// kind — the state in which its current chart equals the shared
// pristine chart.
func (s *Session) pristine() bool {
	return s.iter == 0 && len(s.committed) == 0 && len(s.current) == 0 &&
		!s.userLabeled && len(s.confirmed) == 0 && len(s.split) == 0 &&
		len(s.aApproved) == 0 && len(s.aRejected) == 0 &&
		len(s.answeredM) == 0 && len(s.answeredO) == 0
}

// pristineVis serves the primary view's shared initial chart while the
// session is pristine; nil sends the caller down the private build path.
func (s *Session) pristineVis() *vis.Data { return s.pristineVisView(0) }

// pristineVisView is pristineVis for view v. Each view has its own
// cache slot, keyed by the view's query string on top of the table
// fingerprint, so concurrent sessions over the same data share per-view
// charts and baselines independently of which other views they carry.
func (s *Session) pristineVisView(v int) *vis.Data {
	if !s.pristine() {
		return nil
	}
	if s.basevis[v] == nil {
		q := s.queries[v]
		a := s.acquire("basevis:q="+q.String(), func() (artifact.Artifact, error) {
			view := s.buildView(s.clusters, s.std, nil)
			d, err := q.Execute(view)
			if err != nil {
				return nil, err
			}
			return &basevisArtifact{vis: d, baseline: distance.NewBaseline(distance.Default, d)}, nil
		})
		if a == nil {
			return nil
		}
		s.basevis[v] = a.(*basevisArtifact)
	}
	return s.basevis[v].vis
}

// baselineFor returns the distance baseline of one iteration's base
// chart for view v, reusing the view's shared pristine baseline when
// base is that view's shared pristine chart and the session distance is
// the default the artifact was built with.
func (s *Session) baselineFor(v int, base *vis.Data) *distance.Baseline {
	if bv := s.basevis[v]; bv != nil && base == bv.vis && distIsDefault(s.cfg.Dist) {
		return bv.baseline
	}
	return distance.NewBaseline(s.cfg.Dist, base)
}

func distIsDefault(d distance.Func) bool {
	return reflect.ValueOf(d).Pointer() == reflect.ValueOf(distance.Func(distance.Default)).Pointer()
}
