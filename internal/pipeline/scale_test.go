package pipeline

import (
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"visclean/internal/datagen"
	"visclean/internal/vql"
)

// seedRowStoreBytesPerRow is the measured heap footprint of the
// pre-columnar row store at scale 0.05 (dataset + ground truth,
// 483.7 B/row — see DESIGN.md §11). The scale harness bounds the
// columnar engine against 2× the proportional extrapolation of this.
const seedRowStoreBytesPerRow = 484

func heapMB(t *testing.T) float64 {
	t.Helper()
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return float64(m.HeapAlloc) / 1e6
}

// TestScaleDetect is the 100×-paper-size harness: generate D1 at
// VISCLEAN_SCALE (e.g. 100 ≈ 5.05M tuples), build a session over it and
// run one full detect pass, asserting the heap stays under 2× the
// proportional row-store footprint. Gated behind an env var because a
// 5M-tuple run takes minutes and belongs to the scale lab, not tier-1:
//
//	VISCLEAN_SCALE=100 go test -run TestScaleDetect -timeout 60m ./internal/pipeline/
func TestScaleDetect(t *testing.T) {
	spec := os.Getenv("VISCLEAN_SCALE")
	if spec == "" {
		t.Skip("set VISCLEAN_SCALE (e.g. 100 for ~5M tuples) to run the at-scale harness")
	}
	scale, err := strconv.ParseFloat(spec, 64)
	if err != nil {
		t.Fatalf("bad VISCLEAN_SCALE %q: %v", spec, err)
	}

	before := heapMB(t)
	t0 := time.Now()
	d := datagen.D1(datagen.Config{Scale: scale, Seed: 1})
	rows := d.Dirty.NumRows()
	t.Logf("generated %d tuples in %v, heap %.1f MB", rows, time.Since(t0), heapMB(t)-before)

	q := vql.MustParse(`VISUALIZE bar SELECT Venue, SUM(Citations) FROM D1 TRANSFORM GROUP BY Venue SORT Y BY DESC LIMIT 10`)
	t0 = time.Now()
	s, err := NewSession(d.Dirty, q, d.KeyColumns, Config{Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("session built in %v (blocking, bootstrap, clustering), heap %.1f MB", time.Since(t0), heapMB(t)-before)

	t0 = time.Now()
	qs := s.detectQuestions()
	detectTime := time.Since(t0)
	after := heapMB(t)
	t.Logf("detect pass in %v: %d T, %d A, %d M, %d O questions",
		detectTime, len(qs.T), len(qs.A), len(qs.M), len(qs.O))

	budget := 2 * seedRowStoreBytesPerRow * float64(rows) / 1e6
	t.Logf("heap after detect %.1f MB, budget (2× proportional row store) %.1f MB", after-before, budget)
	if after-before > budget {
		t.Fatalf("heap %.1f MB exceeds 2× proportional row-store footprint %.1f MB", after-before, budget)
	}
	if len(qs.T)+len(qs.A)+len(qs.M)+len(qs.O) == 0 {
		t.Fatal("detect found no questions at scale — harness is not exercising the pipeline")
	}
}
