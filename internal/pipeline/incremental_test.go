package pipeline

// The incremental-pricing equivalence suite. The delta pricer's contract
// is that it is a pure optimization: for every hypothesis it either
// returns the exact float the full rebuild path would (bit-identical,
// not approximately equal), or declines so the estimator falls back.
// These tests enforce the contract both per-hypothesis (every priced
// hypothesis, both ways, on multiple seeds and at advancing session
// states) and end-to-end (whole sessions with the pricer on vs off must
// produce byte-identical traces across selectors, seeds, and worker
// counts). scripts/check.sh runs this file under -race alongside the
// determinism suite.

import (
	"encoding/json"
	"fmt"
	"testing"

	"visclean/internal/benefit"
	"visclean/internal/em"
	"visclean/internal/erg"
	"visclean/internal/oracle"
	"visclean/internal/vis"
)

// collectHypotheses enumerates every hypothesis the estimator would
// price for the graph, in annotation order.
func collectHypotheses(g *erg.Graph) []benefit.Hypothesis {
	var hs []benefit.Hypothesis
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(i)
		if e.HasT {
			pair := em.MakePair(e.A, e.B)
			hs = append(hs,
				benefit.Hypothesis{Kind: benefit.TConfirm, Pair: pair},
				benefit.Hypothesis{Kind: benefit.TSplit, Pair: pair})
		}
		if e.HasA {
			hs = append(hs, benefit.Hypothesis{Kind: benefit.AApprove, Column: e.ACol, V1: e.AV1, V2: e.AV2})
		}
	}
	for _, r := range g.Repairs() {
		kind := benefit.ORepair
		if r.Kind == erg.Missing {
			kind = benefit.MImpute
		}
		hs = append(hs, benefit.Hypothesis{Kind: kind, ID: r.ID, Value: r.Suggested})
	}
	return hs
}

// TestIncrementalPricingBitIdentical prices every hypothesis of the
// first three iterations' ERGs both incrementally and via full rebuild,
// on two seeds, and requires exact float equality wherever the pricer
// accepts — plus that it accepts the overwhelming majority (the fast
// path must actually be the common path for the optimization to mean
// anything).
func TestIncrementalPricingBitIdentical(t *testing.T) {
	for _, seed := range []int64{7, 13} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			s, user := newDetSession(t, SelectGSS, seed, 1)
			priced, declined := 0, 0
			for iter := 0; iter < 3; iter++ {
				base, err := s.CurrentVis()
				if err != nil {
					t.Fatal(err)
				}
				qs := s.detectQuestions()
				g := s.buildERG(qs)
				s.freezeShared()
				p := s.newDeltaPricer([]*vis.Data{base})
				if p == nil {
					t.Fatal("newDeltaPricer returned nil for an executable query")
				}
				for _, h := range collectHypotheses(g) {
					full := 0.0
					if after := s.hypotheticalVis(h); after != nil {
						full = s.cfg.Dist(base, after)
					}
					inc, ok := p.price(h)
					if !ok {
						declined++
						continue
					}
					priced++
					if inc != full {
						t.Fatalf("iter %d %v %+v: incremental %v != full %v",
							iter, h.Kind, h, inc, full)
					}
				}
				rep, err := s.RunIteration(user)
				if err != nil {
					t.Fatal(err)
				}
				if rep.Exhausted {
					break
				}
			}
			if priced == 0 {
				t.Fatal("delta pricer accepted no hypotheses")
			}
			if declined > priced/10 {
				t.Errorf("delta pricer declined %d of %d hypotheses; fast path is not the common path",
					declined, priced+declined)
			}
		})
	}
}

// runIncSession is runDetSession with the incremental pricer toggled.
func runIncSession(t testing.TB, selector SelectorKind, seed int64, workers int, noInc bool) detTrace {
	t.Helper()
	s, user := newIncSession(t, selector, seed, workers, noInc)
	var tr detTrace
	for i := 0; i < 4; i++ {
		rep, err := s.RunIteration(user)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Exhausted {
			break
		}
		tr.CQGs = append(tr.CQGs, rep.CQGMembers)
		tr.Benefits = append(tr.Benefits, rep.EstimatedBenefit)
		tr.Evals = append(tr.Evals, rep.BenefitEvals)
		tr.Questions = append(tr.Questions, rep.Questions())
	}
	h, err := json.Marshal(s.History())
	if err != nil {
		t.Fatal(err)
	}
	tr.History = h
	if v, err := s.CurrentVis(); err == nil {
		tr.FinalVis = fmt.Sprintf("%+v", v)
	}
	return tr
}

func newIncSession(t testing.TB, selector SelectorKind, seed int64, workers int, noInc bool) (*Session, *oracle.Oracle) {
	t.Helper()
	s, user := newDetSession(t, selector, seed, workers)
	s.cfg.NoIncremental = noInc
	return s, user
}

// TestIncrementalFullSessionEquivalence runs whole sessions with the
// pricer on vs off — across GSS, GSS+ and B&B, two seeds, and worker
// counts 1 and 8 — and asserts byte-identical answer logs, CQG vertex
// sets, benefits and final charts.
func TestIncrementalFullSessionEquivalence(t *testing.T) {
	for _, sel := range []SelectorKind{SelectGSS, SelectGSSPlus, SelectBB} {
		for _, seed := range []int64{7, 13} {
			sel, seed := sel, seed
			t.Run(fmt.Sprintf("%s/seed%d", sel, seed), func(t *testing.T) {
				t.Parallel()
				full := runIncSession(t, sel, seed, 1, true)
				inc := runIncSession(t, sel, seed, 1, false)
				assertTracesEqual(t, fmt.Sprintf("%s seed %d incremental vs full", sel, seed), full, inc)
				incPar := runIncSession(t, sel, seed, 8, false)
				assertTracesEqual(t, fmt.Sprintf("%s seed %d incremental workers 8 vs full workers 1", sel, seed), full, incPar)
			})
		}
	}
}

// TestIncrementalSingleBaseline covers the Single baseline's sequential
// estimator, which wires the pricer through a separate code path.
func TestIncrementalSingleBaseline(t *testing.T) {
	full := runIncSession(t, SelectSingle, 7, 1, true)
	inc := runIncSession(t, SelectSingle, 7, 1, false)
	assertTracesEqual(t, "Single incremental vs full", full, inc)
}
