package pipeline

import (
	"context"
	"math/rand"
	"sort"
	"time"

	"visclean/internal/benefit"
	"visclean/internal/cqgselect"
	"visclean/internal/dataset"
	"visclean/internal/em"
	"visclean/internal/erg"
	"visclean/internal/goldenrec"
	"visclean/internal/impute"
	"visclean/internal/outlier"
	"visclean/internal/stringsim"
	"visclean/internal/vis"
)

// questionSet is one iteration's repairing-candidate set Q = Q_T ∪ Q_A ∪
// Q_M ∪ Q_O (§IV).
type questionSet struct {
	T []em.ScoredPair
	A []aQuestion
	M []impute.Suggestion
	O []outlier.Detection
}

type aQuestion struct {
	col    int
	name   string
	v1, v2 string
	sim    float64
}

// RunIteration executes one full framework iteration against the user
// and returns its report. When the ERG is empty (nothing left to ask)
// the report's Exhausted flag is set and no user interaction happens.
func (s *Session) RunIteration(user User) (Report, error) {
	return s.RunIterationCtx(context.Background(), user)
}

// RunIterationCtx is RunIteration with cancellation: the context is
// checked between questions, so cancelling promptly aborts an in-flight
// iteration (e.g. when its session is closed or evicted) instead of
// orphaning it. On cancellation the answers already applied stay applied
// and are kept in the history log as partial answers; the model refresh
// and iteration commit are skipped, exactly as if the process had died
// mid-CQG.
func (s *Session) RunIterationCtx(ctx context.Context, user User) (Report, error) {
	rep := Report{Iteration: s.iter + 1, Selector: s.cfg.Selector.String()}
	if err := ctx.Err(); err != nil {
		return rep, err
	}
	iterStart := time.Now()

	start := time.Now()
	beforeAll, err := s.CurrentVisAll()
	rep.Timings.View += time.Since(start)
	if err != nil {
		return rep, err
	}

	start = time.Now()
	qs := s.detectQuestions()
	rep.Timings.Detect = time.Since(start)
	rep.DetectAccepts = s.lastDetect.accepts
	rep.DetectFallbacks = s.lastDetect.fallbacks
	rep.DetectFull = s.lastDetect.full

	if s.cfg.Selector == SelectSingle {
		if err := s.runSingleIteration(ctx, user, qs, beforeAll, &rep); err != nil {
			return rep, err
		}
	} else {
		if err := s.runCompositeIteration(ctx, user, qs, beforeAll, &rep); err != nil {
			return rep, err
		}
	}
	if rep.Exhausted {
		s.observeIteration(&rep, iterStart)
		return rep, nil
	}

	// Framework step 6: feed answers back into the models.
	start = time.Now()
	s.refreshModel()
	rep.Timings.Train = time.Since(start)

	// Framework step 7: refresh every view's visualization and measure
	// movement. DistMoved / DistToTruth stay primary-view scalars (the
	// historical report contract); the per-view trajectories ride along
	// in ViewCharts / ViewDistMoved.
	start = time.Now()
	afterAll, err := s.CurrentVisAll()
	rep.Timings.View += time.Since(start)
	if err != nil {
		return rep, err
	}
	after := afterAll[0]
	rep.ViewCharts = afterAll
	start = time.Now()
	rep.ViewDistMoved = make([]float64, len(s.queries))
	for v := range s.queries {
		rep.ViewDistMoved[v] = s.cfg.Dist(beforeAll[v], afterAll[v])
	}
	rep.DistMoved = rep.ViewDistMoved[0]
	if s.cfg.TruthVis != nil {
		rep.DistToTruth = s.cfg.Dist(after, s.cfg.TruthVis)
	}
	rep.Timings.Distance = time.Since(start)
	s.iter++
	rep.Iteration = s.iter
	s.commitCurrent()
	s.observeIteration(&rep, iterStart)
	return rep, nil
}

// Run executes up to budget iterations, stopping early when the ERG is
// exhausted, and returns the per-iteration reports.
func (s *Session) Run(user User, budget int) ([]Report, error) {
	var out []Report
	for i := 0; i < budget; i++ {
		rep, err := s.RunIteration(user)
		if err != nil {
			return out, err
		}
		if rep.Exhausted {
			break
		}
		out = append(out, rep)
	}
	return out, nil
}

// DistToTruth reports the current distance to the ground-truth
// visualization (0 if none configured).
func (s *Session) DistToTruth() (float64, error) {
	if s.cfg.TruthVis == nil {
		return 0, nil
	}
	cur, err := s.CurrentVis()
	if err != nil {
		return 0, err
	}
	return s.cfg.Dist(cur, s.cfg.TruthVis), nil
}

// detectQuestions runs the four detectors of §IV (framework step 2).
// Detection is pure: it reads session state but never mutates it, so a
// crash or cancellation between detect and commit leaves nothing to
// diverge on replay, and calling it repeatedly (equivalence suites,
// BuildAnnotatedERG) is side-effect-free. The incremental path (see
// detectdelta.go) serves the same questions from maintained structures;
// Config.NoIncrementalDetect restores the full per-iteration rebuild.
func (s *Session) detectQuestions() questionSet {
	var qs questionSet
	s.lastDetect = detectStats{}

	// Q_T: uncertain candidate pairs (active learning, §IV) — pairs with
	// probability close to 0.5. Uses the probability cache refreshed at
	// the last retrain instead of re-running the forest.
	qs.T = s.uncertainPairs(s.cfg.MaxT, 0.15, 0.9)

	d := s.detector()
	if d == nil {
		s.lastDetect.full = true
	}
	ix := s.knnIdx()
	if d != nil {
		d.sync(ix)
	}

	// Q_A: Algorithm 1 over the current clusters, per A-column.
	// Singleton clusters participate too: Strategy 2's cross-cluster
	// similarity join is what finds synonyms whose tuples are not
	// duplicates of anything (the paper's "ICDE 2013" ↔ "ICDE").
	groups := s.clusters.Groups(1)
	schema := s.table.Schema()
	for _, c := range s.aColumns {
		name := schema[c].Name
		st := s.std[name]
		var cands []goldenrec.Candidate
		if d != nil {
			cands = d.aCandidates(groups, c, s.cfg.SimJoinThreshold)
		} else {
			cands = goldenrec.Candidates(s.table, groups, c, s.cfg.SimJoinThreshold)
		}
		for _, cand := range cands {
			if len(qs.A) >= s.cfg.MaxA {
				break
			}
			if _, done := s.answeredA[makeAKey(name, cand.V1, cand.V2)]; done {
				continue
			}
			if st.SameClass(cand.V1, cand.V2) {
				// Already standardized — except that a near-dissimilar
				// pair inside one class smells like a wrong merge; ask
				// it as a verification question so a reject can cut the
				// class apart (wrong-label recovery).
				if cand.Sim >= 0.25 {
					continue
				}
			}
			qs.A = append(qs.A, aQuestion{col: c, name: name, v1: cand.V1, v2: cand.V2, sim: cand.Prob})
		}
	}

	// Q_M: kNN imputation suggestions for missing measure cells. The
	// token index is shared with the outlier repairer below and cached
	// for the session; the incremental path additionally caches each
	// tuple's ranked neighbour list across iterations.
	var suggest func(id dataset.TupleID) (impute.Suggestion, bool)
	if d != nil {
		suggest = d.suggestFor
	} else {
		suggest = impute.NewWithIndex(ix, s.cfg.ImputeK).SuggestFor
	}
	for _, id := range s.table.MissingIDs(s.yCol) {
		if len(qs.M) >= s.cfg.MaxM {
			break
		}
		if _, done := s.answeredM[id]; done {
			continue
		}
		if sug, ok := suggest(id); ok {
			qs.M = append(qs.M, sug)
		}
	}

	// Q_O: top kNN outlier scores. The anomaly gate's median is taken
	// over the full score distribution; repairs are computed lazily for
	// the detections actually emitted. The outlier detector clamps its k
	// below ImputeK on degenerate tables — mirror that clamp so the
	// suggested repairs match outlier.DetectWithIndex exactly.
	dets := outlier.Scores(s.table, s.yCol, s.cfg.ImputeK)
	med := medianScore(dets)
	kRep := s.cfg.ImputeK
	if len(dets) > 0 && kRep >= len(dets) {
		kRep = len(dets) - 1
	}
	oSuggest := suggest
	if kRep != s.cfg.ImputeK {
		if d != nil {
			oSuggest = func(id dataset.TupleID) (impute.Suggestion, bool) {
				return d.suggestForK(id, kRep)
			}
		} else {
			imO := impute.NewWithIndex(ix, kRep)
			oSuggest = imO.SuggestFor
		}
	}
	qs.O = pickOQuestions(dets, med, s.answeredO, s.cfg.MaxO, oSuggest)
	return qs
}

// pickOQuestions selects the O-questions from the scored detections
// (sorted by descending score): genuinely anomalous values up to the
// cap, re-asking an already-answered cell only when it is extremely
// anomalous — the earlier answer was probably wrong (Exp-3's
// wrong-label recovery: a couple of extra questions). Pure: the
// answered set is only read; re-answers overwrite on apply.
func pickOQuestions(dets []outlier.Detection, med float64, answered map[dataset.TupleID]struct{}, maxO int, suggest func(dataset.TupleID) (impute.Suggestion, bool)) []outlier.Detection {
	var out []outlier.Detection
	for _, d := range dets {
		if len(out) >= maxO {
			break
		}
		// Only genuinely anomalous values are worth a question; scores
		// are sorted descending, so the first miss ends the scan.
		if med > 0 && d.Score < 5*med {
			break
		}
		if _, done := answered[d.ID]; done {
			if med <= 0 || d.Score < 20*med {
				continue
			}
		}
		if sug, ok := suggest(d.ID); ok {
			d.Repair = sug.Value
			d.HasFix = true
		}
		out = append(out, d)
	}
	return out
}

// uncertainPairs ranks unlabeled candidates by |p−0.5| ascending from
// the cached probabilities, keeping only probabilities in [lo, hi].
func (s *Session) uncertainPairs(n int, lo, hi float64) []em.ScoredPair {
	scored := make([]em.ScoredPair, 0, len(s.candidates))
	for _, p := range s.candidates {
		if _, labeled := s.matcher.Label(p); labeled {
			continue
		}
		pr := s.prob(p)
		if pr < lo || pr > hi {
			continue
		}
		scored = append(scored, em.ScoredPair{Pair: p, Prob: pr})
	}
	sort.Slice(scored, func(a, b int) bool {
		da := scored[a].Prob - 0.5
		if da < 0 {
			da = -da
		}
		db := scored[b].Prob - 0.5
		if db < 0 {
			db = -db
		}
		if da != db {
			return da < db
		}
		if scored[a].Pair.A != scored[b].Pair.A {
			return scored[a].Pair.A < scored[b].Pair.A
		}
		return scored[a].Pair.B < scored[b].Pair.B
	})
	if n > 0 && len(scored) > n {
		scored = scored[:n]
	}
	return scored
}

// medianScore is the true median of the detections' scores: for
// even-length inputs the mean of the two middle elements, not the upper
// one. Callers pass the full score distribution — a median over a
// top-scores truncation would estimate the tail, not the population,
// and skew the 5×median anomaly gate.
func medianScore(dets []outlier.Detection) float64 {
	n := len(dets)
	if n == 0 {
		return 0
	}
	scores := make([]float64, n)
	for i, d := range dets {
		scores[i] = d.Score
	}
	sort.Float64s(scores)
	if n%2 == 1 {
		return scores[n/2]
	}
	return (scores[n/2-1] + scores[n/2]) / 2
}

// buildERG organizes the question set as an errors-and-repairs graph
// (framework step 3, Definition 2.1).
func (s *Session) buildERG(qs questionSet) *erg.Graph {
	vertexSet := map[dataset.TupleID]struct{}{}
	addV := func(id dataset.TupleID) {
		vertexSet[id] = struct{}{}
	}
	for _, sp := range qs.T {
		addV(sp.Pair.A)
		addV(sp.Pair.B)
	}
	for _, m := range qs.M {
		addV(m.ID)
	}
	for _, o := range qs.O {
		addV(o.ID)
	}
	// A-questions attach to tuple pairs exhibiting the two values. Prefer
	// a blocking candidate pair (Definition 2.1 puts p^t and p^a on the
	// same edge, which is also what lets GSS grow CQGs mixing both
	// question kinds); fall back to representative tuples. The
	// incremental path answers the lookup from the static candidate
	// index (candidate pairs and attribute cells never change) instead
	// of re-scanning the candidate list.
	var pairByValues map[avKey]em.Pair
	if d := s.detector(); d != nil {
		cidx := d.candidateIndex()
		pairByValues = make(map[avKey]em.Pair, len(qs.A))
		for _, q := range qs.A {
			key := aValueKey(q.col, q.v1, q.v2)
			if _, dup := pairByValues[key]; dup {
				continue
			}
			if p, ok := cidx.PairForValues(q.col, q.v1, q.v2); ok {
				pairByValues[key] = p
			}
		}
	} else {
		pairByValues = s.candidatePairsByValues(qs.A)
	}
	type aPlace struct {
		q    aQuestion
		a, b dataset.TupleID
		ok   bool
	}
	var placed []aPlace
	for _, q := range qs.A {
		p := aPlace{q: q}
		if cand, ok := pairByValues[aValueKey(q.col, q.v1, q.v2)]; ok {
			p.a, p.b, p.ok = cand.A, cand.B, true
		} else {
			a, okA := s.firstTupleWith(q.col, q.v1)
			b, okB := s.firstTupleWith(q.col, q.v2)
			if okA && okB && a != b {
				p.a, p.b, p.ok = a, b, true
			}
		}
		if p.ok {
			addV(p.a)
			addV(p.b)
		}
		placed = append(placed, p)
	}

	vertices := make([]dataset.TupleID, 0, len(vertexSet))
	for v := range vertexSet {
		vertices = append(vertices, v)
	}
	sort.Slice(vertices, func(i, j int) bool { return vertices[i] < vertices[j] })
	g := erg.MustNew(vertices)

	// T-question edges. Every edge also carries an A-question when its
	// endpoints disagree on an A-column (Definition 2.1 weights each
	// edge with the pair (p^t, p^a)): even when the user splits the
	// tuples, the attribute question on the same edge still gets its
	// answer, which is much of the composite mechanism's leverage.
	edgeAt := map[em.Pair]int{}
	for _, sp := range qs.T {
		e := erg.Edge{A: sp.Pair.A, B: sp.Pair.B, HasT: true, PT: sp.Prob}
		s.attachAQuestion(&e)
		if err := g.AddEdge(e); err != nil {
			continue
		}
		edgeAt[sp.Pair] = g.NumEdges() - 1
	}
	// A-questions: prefer an existing T-edge whose endpoints carry the
	// two values; otherwise add a representative edge.
	for _, p := range placed {
		if !p.ok {
			continue
		}
		attached := false
		for i := 0; i < g.NumEdges() && !attached; i++ {
			e := g.Edge(i)
			if e.HasA {
				continue
			}
			if s.edgeShowsValues(e, p.q.col, p.q.v1, p.q.v2) {
				e.HasA = true
				e.PA = p.q.sim
				e.ACol = p.q.name
				e.AV1, e.AV2 = p.q.v1, p.q.v2
				attached = true
			}
		}
		if attached {
			continue
		}
		pair := em.MakePair(p.a, p.b)
		if i, exists := edgeAt[pair]; exists {
			e := g.Edge(i)
			if !e.HasA {
				e.HasA = true
				e.PA = p.q.sim
				e.ACol = p.q.name
				e.AV1, e.AV2 = p.q.v1, p.q.v2
			}
			continue
		}
		// New edge; when the endpoints are a blocking candidate the edge
		// carries the T-question too, exactly the (p^t, p^a) weighting of
		// Definition 2.1.
		e := erg.Edge{
			A: pair.A, B: pair.B,
			HasA: true, PA: p.q.sim, ACol: p.q.name, AV1: p.q.v1, AV2: p.q.v2,
		}
		if pr, isCand := s.probCache[pair]; isCand {
			if _, labeled := s.matcher.Label(pair); !labeled {
				e.HasT = true
				e.PT = pr
			}
		}
		if g.AddEdge(e) == nil {
			edgeAt[pair] = g.NumEdges() - 1
		}
	}

	// Vertex repairs.
	for _, m := range qs.M {
		_ = g.SetRepair(erg.VertexRepair{
			ID: m.ID, Kind: erg.Missing, Suggested: m.Value, Neighbors: m.Neighbors,
		})
	}
	for _, o := range qs.O {
		_ = g.SetRepair(erg.VertexRepair{
			ID: o.ID, Kind: erg.Outlier, Current: o.Value, Suggested: o.Repair, Score: o.Score,
		})
	}

	// Connect isolated repair vertices so CQGs can reach them: attach
	// each to its best candidate partner, or failing that to a nearest
	// neighbour with a question-free context edge.
	s.connectIsolated(g, qs)
	return g
}

// connectIsolated gives edge-less repair vertices a way into a CQG.
func (s *Session) connectIsolated(g *erg.Graph, qs questionSet) {
	d := s.detector()
	neighborOf := map[dataset.TupleID][]dataset.TupleID{}
	for _, m := range qs.M {
		neighborOf[m.ID] = m.Neighbors
	}
	for _, r := range g.Repairs() {
		if len(g.IncidentEdges(r.ID)) > 0 {
			continue
		}
		// Best blocking candidate touching this vertex. The incremental
		// path walks only the candidates incident to the vertex (same
		// elements in the same candidate-list order); the full path
		// scans the whole list.
		touching := s.candidates
		if d != nil {
			touching = d.candidateIndex().Incident(r.ID)
		}
		bestPair := em.Pair{}
		bestProb := -1.0
		for _, p := range touching {
			if p.A != r.ID && p.B != r.ID {
				continue
			}
			other := p.A
			if other == r.ID {
				other = p.B
			}
			if !g.HasVertex(other) {
				continue
			}
			if pr := s.prob(p); pr > bestProb {
				bestProb, bestPair = pr, p
			}
		}
		if bestProb >= 0 {
			_ = g.AddEdge(erg.Edge{A: bestPair.A, B: bestPair.B, HasT: true, PT: bestProb})
			continue
		}
		for _, nb := range neighborOf[r.ID] {
			if g.HasVertex(nb) && nb != r.ID {
				_ = g.AddEdge(erg.Edge{A: r.ID, B: nb}) // context-only edge
				break
			}
		}
	}
}

// attachAQuestion decorates an edge with the A-question implied by its
// endpoints: the first A-column on which both tuples carry differing,
// not-yet-standardized, not-yet-asked values. The approval probability
// is the values' token similarity.
func (s *Session) attachAQuestion(e *erg.Edge) {
	schema := s.table.Schema()
	for _, c := range s.aColumns {
		va, okA := s.table.GetByID(e.A, c)
		vb, okB := s.table.GetByID(e.B, c)
		if !okA || !okB {
			continue
		}
		ta, okA := va.Text()
		tb, okB := vb.Text()
		if !okA || !okB || ta == tb {
			continue
		}
		name := schema[c].Name
		if _, done := s.answeredA[makeAKey(name, ta, tb)]; done {
			continue
		}
		if st := s.std[name]; st != nil && st.SameClass(ta, tb) {
			continue
		}
		e.HasA = true
		e.PA = stringsim.Jaccard(ta, tb)
		e.ACol = name
		e.AV1, e.AV2 = ta, tb
		return
	}
}

// avKey identifies an unordered value pair within one column.
type avKey struct {
	col    int
	v1, v2 string
}

func aValueKey(col int, v1, v2 string) avKey {
	if v1 > v2 {
		v1, v2 = v2, v1
	}
	return avKey{col: col, v1: v1, v2: v2}
}

// candidatePairsByValues finds, for each A-question's value pair, a
// blocking candidate tuple pair exhibiting those values — the natural
// edge to hang the A-question on. Deterministic: candidates are sorted.
func (s *Session) candidatePairsByValues(qs []aQuestion) map[avKey]em.Pair {
	want := make(map[avKey]struct{}, len(qs))
	cols := map[int]struct{}{}
	for _, q := range qs {
		want[aValueKey(q.col, q.v1, q.v2)] = struct{}{}
		cols[q.col] = struct{}{}
	}
	out := make(map[avKey]em.Pair)
	for _, p := range s.candidates {
		for c := range cols {
			va, okA := s.table.GetByID(p.A, c)
			vb, okB := s.table.GetByID(p.B, c)
			if !okA || !okB {
				continue
			}
			ta, okA := va.Text()
			tb, okB := vb.Text()
			if !okA || !okB || ta == tb {
				continue
			}
			key := aValueKey(c, ta, tb)
			if _, wanted := want[key]; !wanted {
				continue
			}
			if _, dup := out[key]; !dup {
				out[key] = p
			}
		}
	}
	return out
}

// firstTupleWith finds the smallest tuple id whose column c equals v.
func (s *Session) firstTupleWith(c int, v string) (dataset.TupleID, bool) {
	for i := 0; i < s.table.NumRows(); i++ {
		if txt, ok := s.table.Get(i, c).Text(); ok && txt == v {
			return s.table.ID(i), true
		}
	}
	return 0, false
}

func (s *Session) edgeShowsValues(e *erg.Edge, c int, v1, v2 string) bool {
	va, okA := s.table.GetByID(e.A, c)
	vb, okB := s.table.GetByID(e.B, c)
	if !okA || !okB {
		return false
	}
	ta, okA := va.Text()
	tb, okB := vb.Text()
	if !okA || !okB {
		return false
	}
	return (ta == v1 && tb == v2) || (ta == v2 && tb == v1)
}

// newEstimator builds one iteration's benefit estimator over the
// per-view base charts (registration order). Single-view sessions get
// exactly the historical estimator; multi-view sessions additionally
// carry the per-view bases and weights so every hypothesis prices as
// the cross-view weighted sum. Callers must freezeShared first.
func (s *Session) newEstimator(bases []*vis.Data, workers int) *benefit.Estimator {
	est := &benefit.Estimator{
		Dist:         s.cfg.Dist,
		Base:         bases[0],
		Hypothetical: s.hypotheticalVis,
		Workers:      workers,
	}
	if len(s.queries) > 1 {
		views := make([]benefit.View, len(s.queries))
		for v := range s.queries {
			views[v] = benefit.View{Base: bases[v], Weight: s.viewWeights[v]}
		}
		est.Views = views
		est.HypotheticalAll = s.hypotheticalVisAll
	}
	if !s.cfg.NoIncremental {
		if p := s.newDeltaPricer(bases); p != nil {
			est.Pricer = p.price
		}
	}
	return est
}

// annotateERG prices the ERG with the estimation-based benefit model
// (framework step 4a): the session's standardizers are frozen so
// concurrent hypothetical-visualization builds never write shared state,
// then the per-edge/per-repair pricing fans out across workers. Returns
// the estimator's work accounting (unique evaluations, memo hits,
// incremental accepts vs. fallbacks).
func (s *Session) annotateERG(g *erg.Graph, bases []*vis.Data, workers int) benefit.Stats {
	s.freezeShared()
	est := s.newEstimator(bases, workers)
	est.Annotate(g)
	return est.Stats()
}

// BuildAnnotatedERG runs detection, ERG construction and benefit
// annotation (framework steps 2–4a) against the current session state
// without asking the user anything, at the given worker count (< 1
// selects GOMAXPROCS). Session state is untouched, so repeated calls
// return identically annotated graphs — the entry point for benchmarks
// and diagnostics that need to measure or inspect the benefit model in
// isolation.
func (s *Session) BuildAnnotatedERG(workers int) (*erg.Graph, int, error) {
	before, err := s.CurrentVisAll()
	if err != nil {
		return nil, 0, err
	}
	qs := s.detectQuestions()
	g := s.buildERG(qs)
	st := s.annotateERG(g, before, workers)
	return g, st.Evals, nil
}

// runCompositeIteration performs steps 3–5 with a CQG. before holds
// each view's current chart in registration order.
func (s *Session) runCompositeIteration(ctx context.Context, user User, qs questionSet, before []*vis.Data, rep *Report) error {
	start := time.Now()
	g := s.buildERG(qs)
	rep.Timings.BuildERG = time.Since(start)

	if g.NumVertices() == 0 {
		rep.Exhausted = true
		return nil
	}

	// Step 4a: benefit model — parallel across cfg.Workers, bit-identical
	// at every worker count (see DESIGN.md "Concurrency and determinism").
	start = time.Now()
	rep.noteBenefit(s.annotateERG(g, before, s.cfg.Workers))
	rep.Timings.Benefit = time.Since(start)

	// Step 4b: CQG selection.
	start = time.Now()
	var res cqgselect.Result
	switch s.cfg.Selector {
	case SelectGSSPlus:
		res = cqgselect.GSSPlus(g, s.cfg.K, cqgselect.GSSPlusOptions{})
	case SelectBB:
		res = cqgselect.BranchAndBound(g, s.cfg.K, cqgselect.BBOptions{MaxExpansions: s.cfg.BBMaxExpansions})
	case SelectAlphaBB:
		res = cqgselect.AlphaBB(g, s.cfg.K, s.cfg.Alpha, s.cfg.BBMaxExpansions)
	case SelectRandom:
		res = cqgselect.Random(g, s.cfg.K, rand.New(rand.NewSource(s.cfg.Seed+int64(s.iter)*977)))
	default:
		res = cqgselect.GSS(g, s.cfg.K)
	}
	rep.Timings.Select = time.Since(start)

	if len(res.Vertices) == 0 {
		rep.Exhausted = true
		return nil
	}
	cqg := g.InducedSubgraph(res.Vertices)
	rep.CQGVertices = cqg.NumVertices()
	rep.CQGEdges = cqg.NumEdges()
	rep.CQGMembers = append([]dataset.TupleID(nil), res.Vertices...)
	rep.EstimatedBenefit = res.Benefit

	// Step 5: user answers the CQG; answers are applied immediately.
	start = time.Now()
	err := s.askCQG(ctx, user, cqg, rep)
	rep.Timings.Apply = time.Since(start)
	return err
}

// CQGObserver is an optional extension of User: a frontend implementing
// it is shown each composite question graph before its questions are
// asked, so it can render the graph GUI (§VI).
type CQGObserver interface {
	BeginCQG(g *erg.Graph)
}

// askCQG walks the CQG's questions and applies the answers (framework
// steps 5–6's data part). Cancellation is honoured between questions.
func (s *Session) askCQG(ctx context.Context, user User, cqg *erg.Graph, rep *Report) error {
	if obs, ok := user.(CQGObserver); ok {
		obs.BeginCQG(cqg)
	}
	for _, e := range cqg.Edges() {
		if err := ctx.Err(); err != nil {
			return err
		}
		if e.HasT {
			rep.TQuestions++
			match, answered := user.AnswerT(e.A, e.B)
			if !answered {
				rep.Unanswered++
			} else {
				s.applyT(em.MakePair(e.A, e.B), match)
				if match {
					// Confirming the tuples also confirms their A-column
					// values (§VI): answer any attached A-question too.
					if e.HasA {
						rep.AQuestions++
						s.applyA(e.ACol, e.AV1, e.AV2, true)
					}
					continue
				}
			}
		}
		if e.HasA {
			rep.AQuestions++
			same, answered := user.AnswerA(e.ACol, e.AV1, e.AV2)
			if !answered {
				rep.Unanswered++
				continue
			}
			s.applyA(e.ACol, e.AV1, e.AV2, same)
		}
	}
	yName := s.table.Schema()[s.yCol].Name
	for _, r := range cqg.Repairs() {
		if err := ctx.Err(); err != nil {
			return err
		}
		if r.Kind == erg.Missing {
			rep.MQuestions++
			v, answered := user.AnswerM(yName, r.ID)
			if !answered {
				rep.Unanswered++
				continue
			}
			s.applyM(r.ID, v)
		} else {
			rep.OQuestions++
			isOut, v, answered := user.AnswerO(yName, r.ID, r.Current)
			if !answered {
				rep.Unanswered++
				continue
			}
			s.applyO(r.ID, isOut, v)
		}
	}
	return nil
}

// applyT records a T answer: matcher label + must/cannot-link. A
// confirmation also equates the pair's values in every A-column (§VI
// label-edge semantics), recorded as revocable approve votes.
func (s *Session) applyT(p em.Pair, match bool) {
	s.logAnswer(Answer{Kind: AnswerKindT, A: p.A, B: p.B, Yes: match})
	s.matcher.AddLabel(p, match)
	s.userLabeled = true
	if !match {
		s.split = append(s.split, p)
		return
	}
	s.confirmed = append(s.confirmed, p)
	schema := s.table.Schema()
	for _, c := range s.aColumns {
		va, okA := s.table.GetByID(p.A, c)
		vb, okB := s.table.GetByID(p.B, c)
		if !okA || !okB {
			continue
		}
		ta, okA := va.Text()
		tb, okB := vb.Text()
		if !okA || !okB || ta == tb {
			continue
		}
		s.aApproved = append(s.aApproved, makeAKey(schema[c].Name, ta, tb))
	}
}

// applyA records an A answer as a vote; classes are rebuilt on the next
// model refresh so a rejection can cut a conflicting earlier approval.
func (s *Session) applyA(column, v1, v2 string, same bool) {
	s.logAnswer(Answer{Kind: AnswerKindA, Column: column, V1: v1, V2: v2, Yes: same})
	key := makeAKey(column, v1, v2)
	s.answeredA[key] = struct{}{}
	if same {
		s.aApproved = append(s.aApproved, key)
	} else {
		s.aRejected = append(s.aRejected, key)
	}
}

// applyM writes the user's imputation into the working table.
func (s *Session) applyM(id dataset.TupleID, v float64) {
	s.logAnswer(Answer{Kind: AnswerKindM, A: id, Value: v})
	s.answeredM[id] = struct{}{}
	_ = s.table.SetByID(id, s.yCol, dataset.Num(v))
	s.markDirty(id)
}

// applyO writes the user's outlier verdict into the working table.
func (s *Session) applyO(id dataset.TupleID, isOutlier bool, v float64) {
	s.logAnswer(Answer{Kind: AnswerKindO, A: id, Yes: isOutlier, Value: v})
	s.answeredO[id] = struct{}{}
	if isOutlier {
		_ = s.table.SetByID(id, s.yCol, dataset.Num(v))
		s.markDirty(id)
	}
}
