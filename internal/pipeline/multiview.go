package pipeline

// Multi-view sessions: one Session serving N concurrent VQL views over
// the same base data (DESIGN.md §13). Views share the cleaned relation —
// buildView/viewRowFor are query-independent — so the per-view cost is
// only query execution, incremental delta evaluation and the distance
// baseline. Question benefit aggregates across views as the weighted sum
// Σ_i w_i · dist_i, accumulated in view registration order, which keeps
// every worker count bit-identical and makes the single-view session the
// exact N=1 special case.

import (
	"fmt"

	"visclean/internal/dataset"
	"visclean/internal/vql"
)

// NumViews returns the number of registered views (≥ 1).
func (s *Session) NumViews() int { return len(s.queries) }

// ViewQueries returns the registered view queries in registration order;
// index 0 is the primary query.
func (s *Session) ViewQueries() []*vql.Query {
	return append([]*vql.Query(nil), s.queries...)
}

// validateView checks a query can join this session as a view: it must
// validate against the schema and share the session's measure column —
// M/O detection and repair write exactly one column (yCol), so a view
// measuring anything else would chart un-cleaned data.
func (s *Session) validateView(q *vql.Query) error {
	if err := q.Validate(s.table.Schema()); err != nil {
		return err
	}
	if s.table.ColumnIndex(q.Y) != s.yCol {
		return fmt.Errorf("pipeline: view %q: measure column %q differs from the session's %q — all views of one session share the measure that M/O repairs write",
			q.String(), q.Y, s.table.Schema()[s.yCol].Name)
	}
	return nil
}

// registerViewColumns extends the A-column set with one view's
// categorical columns: its X axis plus its categorical WHERE columns,
// in that order, deduplicated against columns already registered.
func (s *Session) registerViewColumns(q *vql.Query) {
	schema := s.table.Schema()
	s.addACol(s.table.ColumnIndex(q.X))
	for _, p := range q.Where {
		if !p.IsNum {
			s.addACol(schema.Index(p.Column))
		}
	}
}

// addACol appends column c to the A-column set when it is categorical
// and not yet registered.
func (s *Session) addACol(c int) {
	if c < 0 || s.table.Schema()[c].Kind != dataset.String {
		return
	}
	for _, have := range s.aColumns {
		if have == c {
			return
		}
	}
	s.aColumns = append(s.aColumns, c)
}

// AddView registers an additional view on a live session (a new
// dashboard panel opened mid-cleaning) and returns its view index. The
// registration is logged as an AnswerKindV history entry, so replay and
// snapshot restore re-add the view at exactly the same point in the
// answer sequence — A-column ordering, standardizer state and every
// later chart stay byte-identical. Callers must not invoke it
// concurrently with a running iteration (the service layer serializes
// it with Iterate).
func (s *Session) AddView(q *vql.Query) (int, error) {
	if err := s.applyAddView(q); err != nil {
		return 0, err
	}
	return len(s.queries) - 1, nil
}

// applyAddView validates, logs and applies one view registration — the
// shared path of AddView and history replay.
func (s *Session) applyAddView(q *vql.Query) error {
	if err := s.validateView(q); err != nil {
		return err
	}
	s.logAnswer(Answer{Kind: AnswerKindV, Query: q.String()})
	s.queries = append(s.queries, q)
	s.viewWeights = append(s.viewWeights, 1)
	s.basevis = append(s.basevis, nil)
	obsViewRegistrations.Inc()

	before := len(s.aColumns)
	s.registerViewColumns(q)
	if len(s.aColumns) == before {
		return nil
	}
	// New A-columns change what later model refreshes canonicalize:
	// rebuild the synonym classes now (the new columns start with
	// identity standardizers — no votes touch them yet), extend the kNN
	// canonical snapshot if an index already exists (re-snapshotting an
	// unchanged column records the same canonical forms, a no-op), and
	// drop the incremental detector's candidate index so it rebuilds
	// over the extended column set.
	s.rebuildStandardizers()
	if s.knnIndex != nil {
		s.snapshotCanon()
	}
	if s.detect != nil {
		s.detect.candIdx = nil
	}
	return nil
}
