package pipeline

import (
	"sort"

	"visclean/internal/benefit"
	"visclean/internal/dataset"
	"visclean/internal/distance"
	"visclean/internal/em"
	"visclean/internal/goldenrec"
	"visclean/internal/vis"
	"visclean/internal/vql"
)

// deltaPricer prices hypotheses by incremental delta evaluation instead
// of the full view-rebuild-and-execute path. One pricer is built per
// iteration after freezeShared; it registers the base view's rows with
// an incremental query executor and the base visualization with an
// incremental distance baseline, and each hypothesis then costs only its
// delta:
//
//   - an M/O cell override perturbs exactly one cluster's consolidated
//     row;
//   - an A-approval rewrites only the clusters whose rows carry a value
//     of the two merged synonym classes, found through per-column
//     value→clusters posting lists;
//   - a T-answer rebuilds the entity partition (cheap: one union-find
//     pass over the shared merge list) and diffs it against the base
//     partition — only base clusters that are no longer intact, plus the
//     posting-dirty clusters of the implied A-equations, are rebuilt.
//
// The partition diff is sound because every tuple belongs to exactly one
// base cluster: if a hypothetical cluster mixed tuples of an intact base
// cluster with others, that base cluster's root would have the wrong
// size and GroupIntact would have flagged it dirty. Dirty tuples can
// therefore be regrouped among themselves.
//
// Bit-identity: every float produced here is computed by the same code
// in the same order as the full path — rows via viewRowFor (shared with
// buildView), charts via vql.Incremental (contract-tested against
// Execute), distances via distance.Baseline (replays Default's exact
// arithmetic). price returns ok=false whenever a hypothesis falls
// outside the incremental fast path (unknown value, construction
// failure); the estimator then falls back to the full rebuild, so
// correctness never depends on coverage.
//
// The pricer is immutable after construction and safe for concurrent
// price calls: it reads only frozen session state and per-call private
// structures.
type deltaPricer struct {
	s *Session
	// bases / execs hold one distance baseline and one incremental
	// executor per registered view, in registration order. All
	// executors are registered over the same base rows (the cleaned
	// relation is query-independent), so one delta materialization
	// prices every view.
	bases []*distance.Baseline
	execs []*vql.Incremental

	groups  [][]dataset.TupleID // base partition, Groups(1) order
	ranks   []int64             // ranks[gi] = int64(groups[gi][0])
	hasRow  []bool              // group produced a base view row
	groupOf map[dataset.TupleID]int

	// posting[col][rep] lists the groups (ascending) with a member whose
	// col value canonicalizes to rep; rawRep[col][raw] resolves a raw
	// value to its canonical representative under the frozen base
	// standardizers. Both are built single-threaded here because
	// Standardizer.Canonical may write its cache on first sight of a
	// value — at price time only these read-only maps are consulted.
	posting map[string]map[string][]int
	rawRep  map[string]map[string]string

	// splitTouched[gi] marks base groups containing an endpoint of a
	// user cannot-link. T-hypothesis fast paths (see price) are only
	// sound for groups no cannot-link touches.
	splitTouched []bool

	builder  *em.ClusterBuilder
	yNumeric bool
}

// newDeltaPricer captures the base state of one iteration; bases holds
// each view's current chart in registration order. Callers must
// freezeShared first. Returns nil when any view's query cannot be
// evaluated incrementally (the estimator then uses the full path
// throughout).
func (s *Session) newDeltaPricer(bases []*vis.Data) *deltaPricer {
	p := &deltaPricer{
		s:        s,
		groups:   s.clusters.Groups(1),
		groupOf:  make(map[dataset.TupleID]int),
		posting:  make(map[string]map[string][]int),
		rawRep:   make(map[string]map[string]string),
		yNumeric: s.table.Schema()[s.yCol].Kind == dataset.Float,
	}
	p.bases = make([]*distance.Baseline, len(s.queries))
	for v := range s.queries {
		p.bases[v] = s.baselineFor(v, bases[v])
	}
	p.ranks = make([]int64, len(p.groups))
	p.hasRow = make([]bool, len(p.groups))

	rows := make([]vql.IncRow, 0, len(p.groups))
	for gi, g := range p.groups {
		p.ranks[gi] = int64(g[0])
		for _, id := range g {
			p.groupOf[id] = gi
		}
		vals, ok := s.viewRowFor(g, s.std, nil)
		p.hasRow[gi] = ok
		if ok {
			rows = append(rows, vql.IncRow{Rank: p.ranks[gi], Vals: vals})
		}
	}
	p.execs = make([]*vql.Incremental, len(s.queries))
	for v, q := range s.queries {
		exec, err := q.NewIncremental(s.table.Schema(), rows)
		if err != nil {
			return nil
		}
		p.execs[v] = exec
	}

	schema := s.table.Schema()
	for _, c := range s.aColumns {
		name := schema[c].Name
		st := s.std[name]
		if st == nil {
			continue
		}
		reps := make(map[string]string)
		lists := make(map[string][]int)
		for gi, g := range p.groups {
			for _, id := range g {
				v, ok := s.table.GetByID(id, c)
				if !ok {
					continue
				}
				txt, ok := v.Text()
				if !ok {
					continue
				}
				rep, seen := reps[txt]
				if !seen {
					rep = st.Canonical(txt)
					reps[txt] = rep
				}
				if l := lists[rep]; len(l) == 0 || l[len(l)-1] != gi {
					lists[rep] = append(l, gi)
				}
			}
		}
		p.rawRep[name] = reps
		p.posting[name] = lists
	}

	p.splitTouched = make([]bool, len(p.groups))
	for _, sp := range s.split {
		if gi, ok := p.groupOf[sp.A]; ok {
			p.splitTouched[gi] = true
		}
		if gi, ok := p.groupOf[sp.B]; ok {
			p.splitTouched[gi] = true
		}
	}

	p.builder = em.NewClusterBuilder(s.table, s.mergeList, em.ClusterConfig{
		Threshold: s.cfg.ClusterThreshold,
		Confirmed: s.confirmed,
		Split:     s.split,
	})
	return p
}

// price evaluates one (canonicalized) hypothesis incrementally. ok=false
// requests the full-rebuild fallback.
func (p *deltaPricer) price(h benefit.Hypothesis) (float64, bool) {
	switch h.Kind {
	case benefit.MImpute, benefit.ORepair:
		// Guards mirror hypotheticalVis: an inapplicable repair prices as
		// zero on the full path (nil hypothetical chart).
		if _, ok := p.s.table.RowIndex(h.ID); !ok {
			return 0, true
		}
		if !p.yNumeric {
			return 0, true
		}
		gi, ok := p.groupOf[h.ID]
		if !ok {
			return 0, false
		}
		ov := p.s.table.Overlay()
		if ov.Set(h.ID, p.s.yCol, dataset.Num(h.Value)) != nil {
			return 0, false
		}
		return p.eval([]int{gi}, [][]dataset.TupleID{p.groups[gi]}, p.s.std, ov)

	case benefit.AApprove:
		if p.s.std[h.Column] == nil {
			return 0, true // full path: nil hypothetical chart
		}
		changes := []stdChange{{name: h.Column, v1: h.V1, v2: h.V2}}
		dirty, ok := p.postingDirty(changes)
		if !ok {
			return 0, false
		}
		removed, regrouped := p.sameGroups(dirty)
		return p.eval(removed, regrouped, p.s.stdOverride(changes), nil)

	case benefit.TConfirm, benefit.TSplit:
		// Fast paths that skip the union-find rebuild entirely. Each is
		// provably partition-exact (see DESIGN.md §10 for the arguments;
		// the pricer-equivalence suite enforces bit-identity):
		//
		//   - a cannot-link between tuples already in different base
		//     clusters blocks nothing — had any merge been newly
		//     blocked, its first occurrence would require the two
		//     trajectories to unite, contradicting their distinct final
		//     groups. Partition unchanged.
		//   - a must-link inside one base cluster commutes with the
		//     merges that formed that cluster: the early union never
		//     introduces a block (a cannot-link between any two of the
		//     cluster's parts or absorbed groups would have prevented
		//     the cluster from forming). Partition unchanged; only the
		//     implied A-equations' posting-dirty groups re-resolve.
		//   - a must-link across two base clusters neither touched by
		//     any cannot-link is exactly their two-group union: any
		//     additional merge into the combined group would need a
		//     blocked/unblocked decision to flip, which requires a
		//     cannot-link endpoint inside one of the two groups.
		giA, okA := p.groupOf[h.Pair.A]
		giB, okB := p.groupOf[h.Pair.B]
		if okA && okB {
			if h.Kind == benefit.TSplit && giA != giB {
				return p.eval(nil, nil, p.s.std, nil)
			}
			if h.Kind == benefit.TConfirm {
				changes := p.s.tPairChanges(h.Pair)
				postDirty, ok := p.postingDirty(changes)
				if !ok {
					return 0, false
				}
				std := p.s.std
				if override := p.s.stdOverride(changes); override != nil {
					std = override
				}
				if giA == giB {
					removed, regrouped := p.sameGroups(postDirty)
					return p.eval(removed, regrouped, std, nil)
				}
				if !p.splitTouched[giA] && !p.splitTouched[giB] {
					merged := make([]dataset.TupleID, 0, len(p.groups[giA])+len(p.groups[giB]))
					merged = append(merged, p.groups[giA]...)
					merged = append(merged, p.groups[giB]...)
					sort.Slice(merged, func(a, b int) bool { return merged[a] < merged[b] })
					lo, hi := giA, giB
					if lo > hi {
						lo, hi = hi, lo
					}
					removed := []int{lo, hi}
					regrouped := [][]dataset.TupleID{merged}
					for gi := range postDirty {
						if gi == giA || gi == giB {
							continue
						}
						removed = append(removed, gi)
						regrouped = append(regrouped, p.groups[gi])
					}
					return p.eval(removed, regrouped, std, nil)
				}
			}
		}

		var cl *em.Clusters
		var changes []stdChange
		if h.Kind == benefit.TConfirm {
			cl = p.builder.Build([]em.Pair{h.Pair}, nil)
			changes = p.s.tPairChanges(h.Pair)
		} else {
			cl = p.builder.Build(nil, []em.Pair{h.Pair})
		}
		postDirty, ok := p.postingDirty(changes)
		if !ok {
			return 0, false
		}
		std := p.s.std
		if override := p.s.stdOverride(changes); override != nil {
			std = override
		}

		// Partition diff: base clusters no longer intact are dissolved and
		// their tuples regrouped by their hypothetical root.
		var removed []int
		var dirtyTuples []dataset.TupleID
		partDirty := make(map[int]struct{})
		for gi, g := range p.groups {
			if !cl.GroupIntact(g) {
				removed = append(removed, gi)
				partDirty[gi] = struct{}{}
				dirtyTuples = append(dirtyTuples, g...)
			}
		}
		byRoot := make(map[int][]dataset.TupleID)
		var rootOrder []int
		for _, id := range dirtyTuples {
			root, ok := cl.Root(id)
			if !ok {
				return 0, false
			}
			if _, seen := byRoot[root]; !seen {
				rootOrder = append(rootOrder, root)
			}
			byRoot[root] = append(byRoot[root], id)
		}
		regrouped := make([][]dataset.TupleID, 0, len(rootOrder)+len(postDirty))
		for _, root := range rootOrder {
			members := byRoot[root]
			sort.Slice(members, func(a, b int) bool { return members[a] < members[b] })
			regrouped = append(regrouped, members)
		}
		// Posting-dirty clusters keep their membership but re-resolve
		// under the standardizer override (unless already dissolved).
		for gi := range postDirty {
			if _, dissolved := partDirty[gi]; dissolved {
				continue
			}
			removed = append(removed, gi)
			regrouped = append(regrouped, p.groups[gi])
		}
		return p.eval(removed, regrouped, std, nil)

	default:
		return 0, false
	}
}

// postingDirty unions the posting lists of every change's two value
// classes. ok=false when a value is unknown to the base index.
func (p *deltaPricer) postingDirty(changes []stdChange) (map[int]struct{}, bool) {
	if len(changes) == 0 {
		return nil, true
	}
	out := make(map[int]struct{})
	for _, ch := range changes {
		reps := p.rawRep[ch.name]
		if reps == nil {
			return nil, false
		}
		r1, ok1 := reps[ch.v1]
		r2, ok2 := reps[ch.v2]
		if !ok1 || !ok2 {
			return nil, false
		}
		for _, gi := range p.posting[ch.name][r1] {
			out[gi] = struct{}{}
		}
		for _, gi := range p.posting[ch.name][r2] {
			out[gi] = struct{}{}
		}
	}
	return out, true
}

// sameGroups expands a dirty-group set into matching removed/regrouped
// lists (membership unchanged; rows will re-resolve under an override).
func (p *deltaPricer) sameGroups(dirty map[int]struct{}) ([]int, [][]dataset.TupleID) {
	removed := make([]int, 0, len(dirty))
	for gi := range dirty {
		removed = append(removed, gi)
	}
	sort.Ints(removed)
	regrouped := make([][]dataset.TupleID, len(removed))
	for i, gi := range removed {
		regrouped[i] = p.groups[gi]
	}
	return removed, regrouped
}

// eval materializes the delta — removed base groups and regrouped member
// lists — into the hypothetical chart and returns its distance from the
// base.
func (p *deltaPricer) eval(removed []int, regrouped [][]dataset.TupleID, std map[string]*goldenrec.Standardizer, ov *dataset.Overlay) (float64, bool) {
	ranks := make([]int64, 0, len(removed))
	for _, gi := range removed {
		if p.hasRow[gi] {
			ranks = append(ranks, p.ranks[gi])
		}
	}
	sort.Slice(regrouped, func(a, b int) bool { return regrouped[a][0] < regrouped[b][0] })
	added := make([]vql.IncRow, 0, len(regrouped))
	for _, g := range regrouped {
		vals, ok := p.s.viewRowFor(g, std, ov)
		if !ok {
			continue
		}
		added = append(added, vql.IncRow{Rank: int64(g[0]), Vals: vals})
	}
	if len(p.execs) == 1 {
		// Single view: the historical scalar path, kept separate so the
		// N=1 session stays bit-identical even against a Dist that
		// returns -0.0 (0 + -0.0 would flip the sign bit).
		return p.bases[0].Distance(p.execs[0].Eval(ranks, added)), true
	}
	total := 0.0
	for v := range p.execs {
		total += p.s.viewWeights[v] * p.bases[v].Distance(p.execs[v].Eval(ranks, added))
	}
	return total, true
}
