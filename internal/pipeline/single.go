package pipeline

import (
	"context"
	"sort"
	"time"

	"visclean/internal/em"
	"visclean/internal/vis"
)

// runSingleIteration implements the paper's Single baseline (§VII): in
// each iteration, instead of one CQG, ask m single questions in
// isolation — m/4 drawn from each of Q_T, Q_A, Q_M and Q_O, most
// beneficial first. m is the number of questions a k-vertex CQG would
// carry (k−1 edges plus one vertex repair ≈ k), keeping the unit cost
// comparable per the paper's fairness argument.
func (s *Session) runSingleIteration(ctx context.Context, user User, qs questionSet, before []*vis.Data, rep *Report) error {
	m := s.cfg.K
	if m < 4 {
		m = 4
	}
	perKind := m / 4

	s.freezeShared()
	est := s.newEstimator(before, 1)

	type scoredQ struct {
		kind    int // 0=T 1=A 2=M 3=O
		idx     int
		benefit float64
	}
	benefitStart := time.Now()
	var pool []scoredQ
	for i, sp := range qs.T {
		pool = append(pool, scoredQ{kind: 0, idx: i, benefit: est.TBenefit(sp.Pair, sp.Prob)})
	}
	for i, a := range qs.A {
		pool = append(pool, scoredQ{kind: 1, idx: i, benefit: est.ABenefit(a.name, a.v1, a.v2, a.sim)})
	}
	for i, mq := range qs.M {
		pool = append(pool, scoredQ{kind: 2, idx: i, benefit: est.MBenefit(mq.ID, mq.Value)})
	}
	for i, o := range qs.O {
		pool = append(pool, scoredQ{kind: 3, idx: i, benefit: est.OBenefit(o.ID, o.Repair)})
	}
	rep.Timings.Benefit = time.Since(benefitStart)
	rep.noteBenefit(est.Stats())
	if len(pool) == 0 {
		rep.Exhausted = true
		return nil
	}
	sort.SliceStable(pool, func(a, b int) bool { return pool[a].benefit > pool[b].benefit })

	// Take up to perKind from each kind, then fill remaining slots with
	// the globally best leftovers.
	taken := make([]scoredQ, 0, m)
	counts := [4]int{}
	var leftovers []scoredQ
	for _, q := range pool {
		if counts[q.kind] < perKind {
			taken = append(taken, q)
			counts[q.kind]++
		} else {
			leftovers = append(leftovers, q)
		}
	}
	for _, q := range leftovers {
		if len(taken) >= m {
			break
		}
		taken = append(taken, q)
	}
	if len(taken) > m {
		taken = taken[:m]
	}

	yName := s.table.Schema()[s.yCol].Name
	for _, q := range taken {
		if err := ctx.Err(); err != nil {
			return err
		}
		rep.EstimatedBenefit += q.benefit
		switch q.kind {
		case 0:
			sp := qs.T[q.idx]
			rep.TQuestions++
			match, answered := user.AnswerT(sp.Pair.A, sp.Pair.B)
			if !answered {
				rep.Unanswered++
				continue
			}
			s.applyT(em.MakePair(sp.Pair.A, sp.Pair.B), match)
		case 1:
			a := qs.A[q.idx]
			rep.AQuestions++
			same, answered := user.AnswerA(a.name, a.v1, a.v2)
			if !answered {
				rep.Unanswered++
				continue
			}
			s.applyA(a.name, a.v1, a.v2, same)
		case 2:
			mq := qs.M[q.idx]
			rep.MQuestions++
			v, answered := user.AnswerM(yName, mq.ID)
			if !answered {
				rep.Unanswered++
				continue
			}
			s.applyM(mq.ID, v)
		case 3:
			o := qs.O[q.idx]
			rep.OQuestions++
			isOut, v, answered := user.AnswerO(yName, o.ID, o.Value)
			if !answered {
				rep.Unanswered++
				continue
			}
			s.applyO(o.ID, isOut, v)
		}
	}
	return nil
}
