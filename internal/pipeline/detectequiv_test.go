package pipeline

// The detect-equivalence suite: the incremental detection path
// (detectdelta.go) must produce bit-identical question sets to the full
// rebuild, every iteration, under every selector and worker count —
// the same contract incremental_test.go enforces for benefit pricing.
// Alongside it live the regression tests for the three detect-phase
// bugs this change fixed: detection mutating session state (the O
// re-ask delete), the kNN index never seeing A-merge repairs, and
// medianScore returning the upper middle element of a truncated score
// list.

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"sort"
	"testing"

	"visclean/internal/datagen"
	"visclean/internal/dataset"
	"visclean/internal/impute"
	"visclean/internal/knn"
	"visclean/internal/outlier"
	"visclean/internal/stringsim"
)

// assertQuestionSetsEqual compares two question sets field by field.
// Floats are compared by bit pattern: the incremental path promises the
// very float the full rebuild computes, not an approximation of it.
func assertQuestionSetsEqual(t *testing.T, label string, a, b questionSet) {
	t.Helper()
	if len(a.T) != len(b.T) || len(a.A) != len(b.A) || len(a.M) != len(b.M) || len(a.O) != len(b.O) {
		t.Fatalf("%s: question counts differ: T %d/%d A %d/%d M %d/%d O %d/%d",
			label, len(a.T), len(b.T), len(a.A), len(b.A), len(a.M), len(b.M), len(a.O), len(b.O))
	}
	for i := range a.T {
		x, y := a.T[i], b.T[i]
		if x.Pair != y.Pair || math.Float64bits(x.Prob) != math.Float64bits(y.Prob) {
			t.Fatalf("%s: T[%d] differs: %+v vs %+v", label, i, x, y)
		}
	}
	for i := range a.A {
		x, y := a.A[i], b.A[i]
		if x.col != y.col || x.name != y.name || x.v1 != y.v1 || x.v2 != y.v2 ||
			math.Float64bits(x.sim) != math.Float64bits(y.sim) {
			t.Fatalf("%s: A[%d] differs: %+v vs %+v", label, i, x, y)
		}
	}
	for i := range a.M {
		x, y := a.M[i], b.M[i]
		if x.ID != y.ID || math.Float64bits(x.Value) != math.Float64bits(y.Value) ||
			!reflect.DeepEqual(x.Neighbors, y.Neighbors) {
			t.Fatalf("%s: M[%d] differs: %+v vs %+v", label, i, x, y)
		}
	}
	for i := range a.O {
		x, y := a.O[i], b.O[i]
		if x.ID != y.ID || x.HasFix != y.HasFix ||
			math.Float64bits(x.Value) != math.Float64bits(y.Value) ||
			math.Float64bits(x.Score) != math.Float64bits(y.Score) ||
			math.Float64bits(x.Repair) != math.Float64bits(y.Repair) {
			t.Fatalf("%s: O[%d] differs: %+v vs %+v", label, i, x, y)
		}
	}
}

// runDetectEquivLockstep drives an incremental and a full-detect session
// in lockstep: before each iteration both detect (legal now that
// detection is pure) and the question sets and resulting ERGs are
// compared exactly; then both run the iteration for real and their
// reports, histories and final visualizations must match byte for byte.
func runDetectEquivLockstep(t *testing.T, sel SelectorKind, seed int64, workers int) {
	t.Helper()
	sInc, uInc := newDetSession(t, sel, seed, workers)
	sFull, uFull := newDetSession(t, sel, seed, workers)
	sFull.cfg.NoIncrementalDetect = true

	for iter := 0; iter < 4; iter++ {
		label := fmt.Sprintf("%s/seed%d/w%d iter %d", sel, seed, workers, iter+1)
		qsInc := sInc.detectQuestions()
		qsFull := sFull.detectQuestions()
		assertQuestionSetsEqual(t, label, qsInc, qsFull)
		if fi, ff := sInc.buildERG(qsInc).Fingerprint(), sFull.buildERG(qsFull).Fingerprint(); fi != ff {
			t.Fatalf("%s: ERG fingerprints differ: %016x vs %016x", label, fi, ff)
		}

		repInc, errInc := sInc.RunIteration(uInc)
		repFull, errFull := sFull.RunIteration(uFull)
		if errInc != nil || errFull != nil {
			t.Fatalf("%s: iteration errors: inc %v, full %v", label, errInc, errFull)
		}
		if repInc.DetectFull {
			t.Errorf("%s: incremental session reported a full detect", label)
		}
		if !repFull.DetectFull {
			t.Errorf("%s: kill switch did not force the full detect path", label)
		}
		if repInc.Exhausted != repFull.Exhausted {
			t.Fatalf("%s: exhaustion differs: %v vs %v", label, repInc.Exhausted, repFull.Exhausted)
		}
		if repInc.Exhausted {
			break
		}
		if repInc.Questions() != repFull.Questions() {
			t.Errorf("%s: question counts differ: %d vs %d", label, repInc.Questions(), repFull.Questions())
		}
		if repInc.EstimatedBenefit != repFull.EstimatedBenefit {
			t.Errorf("%s: benefits differ: %v vs %v", label, repInc.EstimatedBenefit, repFull.EstimatedBenefit)
		}
		if fmt.Sprint(repInc.CQGMembers) != fmt.Sprint(repFull.CQGMembers) {
			t.Errorf("%s: CQGs differ: %v vs %v", label, repInc.CQGMembers, repFull.CQGMembers)
		}
	}

	hInc, err := json.Marshal(sInc.History())
	if err != nil {
		t.Fatal(err)
	}
	hFull, err := json.Marshal(sFull.History())
	if err != nil {
		t.Fatal(err)
	}
	if string(hInc) != string(hFull) {
		t.Errorf("answer logs differ:\n%s\nvs\n%s", hInc, hFull)
	}
	vInc, errInc := sInc.CurrentVis()
	vFull, errFull := sFull.CurrentVis()
	if (errInc == nil) != (errFull == nil) {
		t.Fatalf("final vis errors diverge: %v vs %v", errInc, errFull)
	}
	if errInc == nil && fmt.Sprintf("%+v", vInc) != fmt.Sprintf("%+v", vFull) {
		t.Errorf("final visualizations differ:\n%+v\nvs\n%+v", vInc, vFull)
	}
	if sInc.detect == nil || sInc.detect.accepts+sInc.detect.fallbacks == 0 {
		t.Error("incremental detect state never engaged")
	}
	if sFull.detect != nil {
		t.Error("kill switch session built incremental detect state")
	}
}

// TestDetectEquivalencePerIteration is the detect twin of
// TestIncrementalFullSessionEquivalence: every selector × seed × worker
// combination must produce identical question sets from both paths at
// every iteration. scripts/check.sh runs this under -race with obs on.
func TestDetectEquivalencePerIteration(t *testing.T) {
	for _, sel := range []SelectorKind{SelectGSS, SelectGSSPlus, SelectBB} {
		for _, seed := range []int64{7, 13} {
			for _, workers := range []int{1, 8} {
				t.Run(fmt.Sprintf("%s/seed%d/workers%d", sel, seed, workers), func(t *testing.T) {
					t.Parallel()
					runDetectEquivLockstep(t, sel, seed, workers)
				})
			}
		}
	}
}

// TestDetectCacheServesRepeatedSuggestions pins the accept path: with no
// repairs between two detects, the second must serve its kNN suggestions
// from the maintained neighbour cache, and serve the same values.
func TestDetectCacheServesRepeatedSuggestions(t *testing.T) {
	s, _ := newDetSession(t, SelectGSS, 7, 1)
	qs1 := s.detectQuestions()
	if len(qs1.M)+len(qs1.O) == 0 {
		t.Fatal("seed 7 produced no M/O questions; the cache path is untested")
	}
	before := s.detect.accepts
	qs2 := s.detectQuestions()
	assertQuestionSetsEqual(t, "repeat detect", qs1, qs2)
	if s.detect.accepts <= before {
		t.Errorf("second detect hit the cache %d times, want > 0", s.detect.accepts-before)
	}
}

// TestDetectQuestionsPure is the regression test for the O re-ask
// mutation: detectQuestions used to delete extreme detections from
// answeredO before the iteration committed, so a crash between detect
// and commit left the live session diverged from its own answer log.
// Detection must read session state without writing any of it.
func TestDetectQuestionsPure(t *testing.T) {
	s, orc := newDetSession(t, SelectGSS, 7, 1)
	if _, err := s.RunIteration(orc); err != nil {
		t.Fatal(err)
	}
	// Mark every current detection as already answered: under the old
	// code any of them scoring past the re-ask gate was deleted from the
	// map during detect.
	for _, d := range outlier.Scores(s.table, s.yCol, s.cfg.ImputeK) {
		s.answeredO[d.ID] = struct{}{}
	}
	before := make(map[dataset.TupleID]struct{}, len(s.answeredO))
	for id := range s.answeredO {
		before[id] = struct{}{}
	}
	answersBefore := s.History().NumAnswers()

	qs1 := s.detectQuestions()
	qs2 := s.detectQuestions()

	assertQuestionSetsEqual(t, "repeated pure detect", qs1, qs2)
	if !reflect.DeepEqual(before, s.answeredO) {
		t.Errorf("detectQuestions mutated answeredO: %d entries before, %d after", len(before), len(s.answeredO))
	}
	if got := s.History().NumAnswers(); got != answersBefore {
		t.Errorf("detectQuestions logged answers: %d before, %d after", answersBefore, got)
	}
}

// TestReplayAfterMidIterationKillContinues kills an iteration mid-CQG,
// restores a fresh session from the answer log, and requires both
// sessions to keep cleaning identically. With detection impure (the old
// re-ask delete) the live session carried state the log never recorded
// and the two could diverge on later O-questions.
func TestReplayAfterMidIterationKillContinues(t *testing.T) {
	live, orc := newDetSession(t, SelectGSS, 7, 1)
	if _, err := live.RunIteration(orc); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cu := &cancellingUser{inner: orc, cancel: cancel, stopAfter: 2}
	if _, err := live.RunIterationCtx(ctx, cu); err == nil {
		t.Fatal("iteration finished before cancellation could interrupt it")
	} else if ctx.Err() == nil {
		t.Fatalf("unexpected error: %v", err)
	}
	h := live.History()
	if len(h.Partial) == 0 {
		t.Fatal("cancelled iteration logged no partial answers")
	}

	restored, orcR := newDetSession(t, SelectGSS, 7, 1)
	if err := restored.Replay(h); err != nil {
		t.Fatal(err)
	}

	// The perfect oracle consumes no RNG, so the fresh one answers
	// exactly like the live session's.
	for i := 0; i < 3; i++ {
		repL, errL := live.RunIteration(orc)
		repR, errR := restored.RunIteration(orcR)
		if (errL == nil) != (errR == nil) {
			t.Fatalf("iteration %d errors diverge: %v vs %v", i+1, errL, errR)
		}
		if errL != nil {
			t.Fatal(errL)
		}
		if repL.Exhausted != repR.Exhausted {
			t.Fatalf("iteration %d exhaustion diverges", i+1)
		}
		if repL.Exhausted {
			break
		}
		if repL.Questions() != repR.Questions() {
			t.Errorf("iteration %d question counts diverge: %d vs %d", i+1, repL.Questions(), repR.Questions())
		}
		if repL.EstimatedBenefit != repR.EstimatedBenefit {
			t.Errorf("iteration %d benefits diverge: %v vs %v", i+1, repL.EstimatedBenefit, repR.EstimatedBenefit)
		}
	}

	hL, err := json.Marshal(live.History())
	if err != nil {
		t.Fatal(err)
	}
	hR, err := json.Marshal(restored.History())
	if err != nil {
		t.Fatal(err)
	}
	if string(hL) != string(hR) {
		t.Errorf("continued answer logs diverge:\n%s\nvs\n%s", hL, hR)
	}
	vL, errL := live.CurrentVis()
	vR, errR := restored.CurrentVis()
	if errL != nil || errR != nil {
		t.Fatalf("final vis errors: %v, %v", errL, errR)
	}
	visEqual(t, vL, vR)
}

// TestAMergeChangesImputationNeighbors is the regression test for the
// stale kNN index: the shared token index was built once and never saw
// A-repairs, so approving a synonym never changed which neighbours later
// imputations averaged over. After an A-merge the maintained index must
// re-tokenize the affected rows — matching a from-scratch rebuild — and
// the neighbour lists of those rows must actually move.
func TestAMergeChangesImputationNeighbors(t *testing.T) {
	s, _ := newDetSession(t, SelectGSS, 7, 1)
	d := datagen.D1(datagen.Config{Scale: 0.004, Seed: 7})

	venue := -1
	for i, c := range s.table.Schema() {
		if c.Name == "Venue" {
			venue = i
		}
	}
	if venue < 0 {
		t.Fatal("no Venue column")
	}

	// Rows per distinct venue value, and a ground-truth synonym pair
	// whose variants both occur and tokenize differently (identical
	// token sets would leave the index unchanged by construction).
	rowsOf := map[string][]int{}
	for r := 0; r < s.table.NumRows(); r++ {
		if txt, ok := s.table.Get(r, venue).Text(); ok {
			rowsOf[txt] = append(rowsOf[txt], r)
		}
	}
	// Pick the pair deterministically — map iteration order must not
	// choose it, or the test asserts a different merge every run (some
	// merges legitimately leave the probed row's top-k unchanged).
	venues := make([]string, 0, len(rowsOf))
	for v := range rowsOf {
		venues = append(venues, v)
	}
	sort.Strings(venues)
	var v1, v2 string
	byCanon := map[string][]string{}
	canons := []string{}
	for _, v := range venues {
		c := d.Truth.CanonicalValue("Venue", v)
		if len(byCanon[c]) == 0 {
			canons = append(canons, c)
		}
		byCanon[c] = append(byCanon[c], v)
	}
	sort.Strings(canons)
	for _, c := range canons {
		vars := byCanon[c]
		for i := 0; i < len(vars) && v1 == ""; i++ {
			for j := i + 1; j < len(vars); j++ {
				if stringsim.Jaccard(vars[i], vars[j]) < 1 {
					v1, v2 = vars[i], vars[j]
					break
				}
			}
		}
		if v1 != "" {
			break
		}
	}
	if v1 == "" {
		t.Fatal("seed 7 has no co-occurring synonym variants with distinct token sets")
	}

	ix := s.knnIdx()
	accept := func(r int) bool {
		_, ok := s.table.Get(r, s.yCol).Float()
		return ok
	}
	preTok := map[string]map[string]struct{}{}
	preNear := map[string]string{}
	for _, v := range []string{v1, v2} {
		r := rowsOf[v][0]
		tok := make(map[string]struct{}, len(ix.Tokens(r)))
		for k := range ix.Tokens(r) {
			tok[k] = struct{}{}
		}
		preTok[v] = tok
		preNear[v] = fmt.Sprint(ix.Nearest(r, s.cfg.ImputeK, accept))
	}

	s.applyA("Venue", v1, v2, true)
	s.refreshModel()

	st := s.std["Venue"]
	if st == nil {
		t.Fatal("no Venue standardizer after refresh")
	}
	can := st.Canonical(v1)
	if st.Canonical(v2) != can {
		t.Fatalf("approved pair did not merge: %q vs %q", can, st.Canonical(v2))
	}
	moved := v1
	if can == v1 {
		moved = v2
	}
	if st.Canonical(moved) == moved {
		t.Fatalf("neither variant changed canonical form after merging %q and %q", v1, v2)
	}

	// The maintained index must equal a from-scratch rebuild over the
	// post-merge standardizers, row for row.
	fresh := knn.NewIndexCanon(s.table, s.yCol, s.knnCanon)
	for r := 0; r < s.table.NumRows(); r++ {
		if !reflect.DeepEqual(ix.Tokens(r), fresh.Tokens(r)) {
			t.Fatalf("row %d: maintained tokens diverge from rebuild: %v vs %v",
				r, ix.Tokens(r), fresh.Tokens(r))
		}
	}

	r := rowsOf[moved][0]
	if reflect.DeepEqual(preTok[moved], ix.Tokens(r)) {
		t.Errorf("row %d (%q → %q) kept its pre-merge token set", r, moved, can)
	}
	if post := fmt.Sprint(ix.Nearest(r, s.cfg.ImputeK, accept)); post == preNear[moved] {
		t.Errorf("row %d neighbour list unchanged by the A-merge:\n%s", r, post)
	}
}

// TestMedianScoreTrueMedian locks the satellite-3 fix: the median of an
// even-length score list is the mean of the two middle elements, not the
// upper one, and the input is the full detection list, unsorted.
func TestMedianScoreTrueMedian(t *testing.T) {
	mk := func(scores ...float64) []outlier.Detection {
		out := make([]outlier.Detection, len(scores))
		for i, sc := range scores {
			out[i] = outlier.Detection{ID: dataset.TupleID(i), Score: sc}
		}
		return out
	}
	cases := []struct {
		name string
		dets []outlier.Detection
		want float64
	}{
		{"empty", nil, 0},
		{"single", mk(4), 4},
		{"odd", mk(10, 1, 2), 2},
		{"even", mk(10, 2, 1, 3), 2.5}, // old code returned 3
		{"even-pair", mk(8, 2), 5},
	}
	for _, c := range cases {
		if got := medianScore(c.dets); got != c.want {
			t.Errorf("%s: medianScore = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestPickOQuestionsGate covers the re-ask gate around the answered set:
// extreme detections (≥20×median) are re-asked without mutating the
// answered map, moderately anomalous answered ones are skipped, and the
// 5×median cut ends the scan.
func TestPickOQuestionsGate(t *testing.T) {
	dets := []outlier.Detection{
		{ID: 1, Value: 5, Score: 100}, // answered, ≥20×med → re-asked
		{ID: 2, Value: 6, Score: 30},  // answered, <20×med → skipped
		{ID: 3, Value: 7, Score: 25},  // fresh, ≥5×med → asked
		{ID: 4, Value: 8, Score: 10},  // <5×med → scan ends
		{ID: 5, Value: 9, Score: 9},
	}
	answered := map[dataset.TupleID]struct{}{1: {}, 2: {}}
	suggest := func(id dataset.TupleID) (impute.Suggestion, bool) {
		return impute.Suggestion{ID: id, Value: 42}, true
	}

	out := pickOQuestions(dets, 4, answered, 10, suggest)

	if len(out) != 2 || out[0].ID != 1 || out[1].ID != 3 {
		t.Fatalf("picked %+v, want IDs [1 3]", out)
	}
	for _, o := range out {
		if !o.HasFix || o.Repair != 42 {
			t.Errorf("ID %d: repair not filled from suggestion: %+v", o.ID, o)
		}
	}
	if len(answered) != 2 {
		t.Errorf("answered map mutated: %v", answered)
	}
	if capped := pickOQuestions(dets, 4, answered, 1, suggest); len(capped) != 1 {
		t.Errorf("maxO=1 returned %d questions", len(capped))
	}
}

// TestInsertNeighbor pins the cache maintenance primitive: insertion
// keeps (descending sim, ascending id) order and the k cap, and reports
// whether the list changed.
func TestInsertNeighbor(t *testing.T) {
	ns := []knn.Neighbor{{Row: 1, ID: 1, Sim: 0.9}, {Row: 2, ID: 2, Sim: 0.5}, {Row: 3, ID: 3, Sim: 0.3}}

	got, ins := insertNeighbor(append([]knn.Neighbor(nil), ns...), knn.Neighbor{Row: 4, ID: 4, Sim: 0.7}, 3)
	if !ins || len(got) != 3 || got[1].ID != 4 || got[2].ID != 2 {
		t.Fatalf("mid insert: %+v", got)
	}
	got, ins = insertNeighbor(append([]knn.Neighbor(nil), ns...), knn.Neighbor{Row: 4, ID: 4, Sim: 0.1}, 3)
	if ins || len(got) != 3 {
		t.Fatalf("below-cap value inserted: %+v", got)
	}
	got, ins = insertNeighbor(append([]knn.Neighbor(nil), ns...), knn.Neighbor{Row: 0, ID: 0, Sim: 0.5}, 3)
	if !ins || got[1].ID != 0 || got[2].ID != 2 {
		t.Fatalf("tie broken wrong: %+v", got)
	}
	got, ins = insertNeighbor(ns[:2:2], knn.Neighbor{Row: 4, ID: 4, Sim: 0.1}, 3)
	if !ins || len(got) != 3 || got[2].ID != 4 {
		t.Fatalf("under-capacity append: %+v", got)
	}
}
