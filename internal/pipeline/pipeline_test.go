package pipeline

import (
	"testing"

	"visclean/internal/crowd"
	"visclean/internal/datagen"
	"visclean/internal/dataset"
	"visclean/internal/distance"
	"visclean/internal/oracle"
	"visclean/internal/vql"
)

// newTestSession builds a session over a small generated D1 with a
// perfect oracle and the Q1-style query.
func newTestSession(t testing.TB, selector SelectorKind, seed int64) (*Session, *oracle.Oracle) {
	return newScaledSession(t, selector, seed, 0.004) // ~55 entities
}

func newScaledSession(t testing.TB, selector SelectorKind, seed int64, scale float64) (*Session, *oracle.Oracle) {
	t.Helper()
	d := datagen.D1(datagen.Config{Scale: scale, Seed: seed})
	q := vql.MustParse(`VISUALIZE bar SELECT Venue, SUM(Citations) FROM D1 TRANSFORM GROUP BY Venue SORT Y BY DESC LIMIT 10`)
	truthVis, err := q.Execute(d.Truth.Clean)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(d.Dirty, q, d.KeyColumns, Config{
		Query:    q,
		Selector: selector,
		Seed:     seed,
		TruthVis: truthVis,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, oracle.New(d.Truth, seed)
}

func TestSessionInitialState(t *testing.T) {
	s, _ := newTestSession(t, SelectGSS, 1)
	if s.Iteration() != 0 {
		t.Fatal("fresh session has iterations")
	}
	v, err := s.CurrentVis()
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Points) == 0 {
		t.Fatal("initial visualization empty")
	}
	d0, err := s.DistToTruth()
	if err != nil {
		t.Fatal(err)
	}
	if d0 <= 0 {
		t.Fatalf("initial dist to truth = %v; dirty data should be visibly dirty", d0)
	}
}

func TestCleaningReducesDistanceToTruth(t *testing.T) {
	s, user := newTestSession(t, SelectGSS, 2)
	d0, _ := s.DistToTruth()
	reports, err := s.Run(user, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) == 0 {
		t.Fatal("no iterations ran")
	}
	dEnd, _ := s.DistToTruth()
	if dEnd >= d0 {
		t.Fatalf("cleaning did not improve: %v -> %v", d0, dEnd)
	}
	// Substantial improvement expected with a perfect oracle.
	if dEnd > d0*0.8 {
		t.Fatalf("improvement too small: %v -> %v", d0, dEnd)
	}
	for _, r := range reports {
		if r.Questions() == 0 {
			t.Fatalf("iteration %d asked nothing", r.Iteration)
		}
		if r.CQGVertices == 0 || r.CQGVertices > 10 {
			t.Fatalf("iteration %d CQG size %d", r.Iteration, r.CQGVertices)
		}
	}
}

func TestAllSelectorsRun(t *testing.T) {
	for _, sel := range []SelectorKind{SelectGSS, SelectGSSPlus, SelectBB, SelectAlphaBB, SelectRandom, SelectSingle} {
		sel := sel
		t.Run(sel.String(), func(t *testing.T) {
			s, user := newTestSession(t, sel, 3)
			d0, _ := s.DistToTruth()
			reports, err := s.Run(user, 4)
			if err != nil {
				t.Fatal(err)
			}
			if len(reports) == 0 {
				t.Fatal("no iterations")
			}
			dEnd, _ := s.DistToTruth()
			if dEnd > d0+1e-9 {
				t.Fatalf("%s made things worse: %v -> %v", sel, d0, dEnd)
			}
			if sel == SelectSingle {
				for _, r := range reports {
					if r.CQGVertices != 0 {
						t.Fatal("single baseline reported a CQG")
					}
				}
			}
		})
	}
}

func TestNoisyOracleStillConverges(t *testing.T) {
	// Exp-3's finding: moderately wrong/incomplete input costs a few
	// extra questions, not convergence. 5% wrong labels and 95%
	// completeness over a larger budget must still land below the
	// initial distance. (At this tiny scale a single wrong merge moves
	// the chart a lot, so the budget is generous — see Table VI, where
	// the paper itself needs 2–4 extra CQGs under noise.)
	// Like Table VI, the assertion is about *reaching* clean quality at
	// some iteration, not about the last iteration being the best — a
	// lying answer near the end can leave the chart momentarily off.
	// The scale is larger than other tests': on a ~55-entity dataset a
	// single wrong merge moves whole bars, while the paper's tolerance
	// claim is about datasets where wrong answers average out.
	s, user := newScaledSession(t, SelectGSS, 4, 0.012)
	user.WrongLabelRate = 0.05
	user.Completeness = 0.95
	d0, _ := s.DistToTruth()
	reports, err := s.Run(user, 20)
	if err != nil {
		t.Fatal(err)
	}
	best := d0
	for _, r := range reports {
		if r.DistToTruth < best {
			best = r.DistToTruth
		}
	}
	if best > d0*0.7 {
		t.Fatalf("noisy run never reached clean quality: best %v vs initial %v", best, d0)
	}
	dEnd, _ := s.DistToTruth()
	if dEnd > d0*2 {
		t.Fatalf("noisy run ended catastrophically worse: %v -> %v", d0, dEnd)
	}
}

func TestIncompleteAnswersCounted(t *testing.T) {
	s, user := newTestSession(t, SelectGSS, 5)
	user.Completeness = 0.5
	reports, err := s.Run(user, 5)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, r := range reports {
		total += r.Unanswered
	}
	if total == 0 {
		t.Fatal("no unanswered questions recorded at 50% completeness")
	}
}

func TestSessionDoesNotMutateInput(t *testing.T) {
	d := datagen.D1(datagen.Config{Scale: 0.004, Seed: 6})
	before := d.Dirty.String()
	q := vql.MustParse(`VISUALIZE bar SELECT Venue, SUM(Citations) FROM D1 TRANSFORM GROUP BY Venue SORT Y BY DESC LIMIT 10`)
	s, err := NewSession(d.Dirty, q, d.KeyColumns, Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(oracle.New(d.Truth, 6), 3); err != nil {
		t.Fatal(err)
	}
	if d.Dirty.String() != before {
		t.Fatal("session mutated the caller's table")
	}
}

func TestExhaustionStopsRun(t *testing.T) {
	// A tiny clean table has nothing to ask.
	tbl := dataset.NewTable(dataset.Schema{
		{Name: "V", Kind: dataset.String},
		{Name: "Y", Kind: dataset.Float},
	})
	tbl.MustAppend([]dataset.Value{dataset.Str("a"), dataset.Num(1)})
	tbl.MustAppend([]dataset.Value{dataset.Str("b"), dataset.Num(2)})
	q := vql.MustParse(`VISUALIZE bar SELECT V, SUM(Y) FROM t TRANSFORM GROUP BY V`)
	s, err := NewSession(tbl, q, nil, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	truth := &oracle.GroundTruth{
		Entity: map[dataset.TupleID]int{0: 0, 1: 1},
		TrueY:  map[string]map[dataset.TupleID]float64{"Y": {0: 1, 1: 2}},
	}
	reports, err := s.Run(oracle.New(truth, 1), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) > 1 {
		t.Fatalf("clean table ran %d iterations", len(reports))
	}
}

func TestTimingsPopulated(t *testing.T) {
	s, user := newTestSession(t, SelectGSS, 7)
	rep, err := s.RunIteration(user)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Timings.Total() <= 0 {
		t.Fatal("no timings recorded")
	}
	if rep.Timings.Benefit <= 0 || rep.Timings.Train <= 0 {
		t.Fatalf("component timings missing: %+v", rep.Timings)
	}
}

func TestQ7StylePredicateCleaning(t *testing.T) {
	// Q7-style query: the WHERE Venue = SIGMOD predicate initially drops
	// synonym rows; A-question cleaning must recover them.
	d := datagen.D1(datagen.Config{Scale: 0.008, Seed: 8})
	q := vql.MustParse(`VISUALIZE bar SELECT Year, COUNT(Year) FROM D1 TRANSFORM BIN Year BY INTERVAL 5 WHERE Venue = 'SIGMOD'`)
	truthVis, err := q.Execute(d.Truth.Clean)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(d.Dirty, q, d.KeyColumns, Config{Seed: 8, TruthVis: truthVis, Dist: distance.EMD})
	if err != nil {
		t.Fatal(err)
	}
	d0, _ := s.DistToTruth()
	if _, err := s.Run(oracle.New(d.Truth, 8), 10); err != nil {
		t.Fatal(err)
	}
	dEnd, _ := s.DistToTruth()
	if dEnd > d0 {
		t.Fatalf("predicate cleaning regressed: %v -> %v", d0, dEnd)
	}
}

func TestCrowdPanelDrivesSession(t *testing.T) {
	// A crowd of imperfect workers with 3-vote majority aggregation must
	// clean nearly as well as a single perfect expert.
	d := datagen.D1(datagen.Config{Scale: 0.008, Seed: 13})
	q := vql.MustParse(`VISUALIZE bar SELECT Venue, SUM(Citations) FROM D1 TRANSFORM GROUP BY Venue SORT Y BY DESC LIMIT 10`)
	truthVis, err := q.Execute(d.Truth.Clean)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(d.Dirty, q, d.KeyColumns, Config{Seed: 13, TruthVis: truthVis})
	if err != nil {
		t.Fatal(err)
	}
	panel := crowd.NewPanel(d.Truth, 9, 0.85, 0.95, 13)
	d0, _ := s.DistToTruth()
	if _, err := s.Run(panel, 12); err != nil {
		t.Fatal(err)
	}
	dEnd, _ := s.DistToTruth()
	if dEnd >= d0 {
		t.Fatalf("crowd-driven run did not improve: %v -> %v", d0, dEnd)
	}
}
