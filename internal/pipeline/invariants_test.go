package pipeline

import (
	"testing"

	"visclean/internal/datagen"
	"visclean/internal/dataset"
	"visclean/internal/oracle"
	"visclean/internal/vql"
)

// TestViewInvariants checks structural invariants of the cleaned view
// after every iteration of a full run:
//
//   - one view row per entity cluster (never more rows than the dirty
//     table),
//   - view row count shrinks monotonically as entities merge (with a
//     perfect oracle nothing ever splits back),
//   - the view's schema equals the dirty schema,
//   - every A-column value in the view is its own canonical form.
func TestViewInvariants(t *testing.T) {
	d := datagen.D1(datagen.Config{Scale: 0.008, Seed: 17})
	q := vql.MustParse(`VISUALIZE bar SELECT Venue, SUM(Citations) FROM D1 TRANSFORM GROUP BY Venue SORT Y BY DESC LIMIT 10`)
	s, err := NewSession(d.Dirty, q, d.KeyColumns, Config{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	user := oracle.New(d.Truth, 17)

	check := func(iter int, prevRows int) int {
		view := s.CleanedView()
		if view.NumRows() > s.table.NumRows() {
			t.Fatalf("iter %d: view has %d rows, dirty %d", iter, view.NumRows(), s.table.NumRows())
		}
		if got := len(s.clusters.Groups(1)); view.NumRows() != got {
			t.Fatalf("iter %d: view rows %d != clusters %d", iter, view.NumRows(), got)
		}
		if len(view.Schema()) != len(s.table.Schema()) {
			t.Fatalf("iter %d: schema width changed", iter)
		}
		venue := view.ColumnIndex("Venue")
		st := s.std["Venue"]
		for v := range view.DistinctStrings(venue) {
			if canon := st.Canonical(v); canon != v {
				t.Fatalf("iter %d: view contains non-canonical value %q (canon %q)", iter, v, canon)
			}
		}
		return view.NumRows()
	}

	rows := check(0, 1<<30)
	for i := 0; i < 8; i++ {
		rep, err := s.RunIteration(user)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Exhausted {
			break
		}
		rows = check(rep.Iteration, rows)
	}
}

// TestReportsAccounting verifies question counts line up with what the
// oracle was actually asked.
func TestReportsAccounting(t *testing.T) {
	s, user := newTestSession(t, SelectGSS, 19)
	counting := &countingUser{inner: user}
	rep, err := s.RunIteration(counting)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TQuestions != counting.t || rep.AQuestions < counting.a ||
		rep.MQuestions != counting.m || rep.OQuestions != counting.o {
		t.Fatalf("report %+v vs asked T=%d A=%d M=%d O=%d",
			rep, counting.t, counting.a, counting.m, counting.o)
	}
	// AQuestions may exceed explicit A asks: T-confirms answer attached
	// A-questions implicitly. It must never be below.
	if rep.Questions() < counting.t+counting.a+counting.m+counting.o {
		t.Fatal("reported fewer questions than the user answered")
	}
}

type countingUser struct {
	inner      *oracle.Oracle
	t, a, m, o int
}

func (c *countingUser) AnswerT(x, y dataset.TupleID) (bool, bool) {
	c.t++
	return c.inner.AnswerT(x, y)
}

func (c *countingUser) AnswerA(col, v1, v2 string) (bool, bool) {
	c.a++
	return c.inner.AnswerA(col, v1, v2)
}

func (c *countingUser) AnswerM(col string, id dataset.TupleID) (float64, bool) {
	c.m++
	return c.inner.AnswerM(col, id)
}

func (c *countingUser) AnswerO(col string, id dataset.TupleID, cur float64) (bool, float64, bool) {
	c.o++
	return c.inner.AnswerO(col, id, cur)
}

// TestAblationFlagsChangeBehaviour ensures the ablation switches actually
// disable their mechanisms.
func TestAblationFlagsChangeBehaviour(t *testing.T) {
	run := func(cfg Config) float64 {
		d := datagen.D1(datagen.Config{Scale: 0.008, Seed: 23})
		q := vql.MustParse(`VISUALIZE bar SELECT Venue, SUM(Citations) FROM D1 TRANSFORM GROUP BY Venue SORT Y BY DESC LIMIT 10`)
		tv, err := q.Execute(d.Truth.Clean)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Seed = 23
		cfg.TruthVis = tv
		s, err := NewSession(d.Dirty, q, d.KeyColumns, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(oracle.New(d.Truth, 23), 10); err != nil {
			t.Fatal(err)
		}
		dist, _ := s.DistToTruth()
		return dist
	}
	full := run(Config{})
	noGen := run(Config{NoGeneralization: true})
	if full >= noGen {
		t.Fatalf("generalization should help: full %v vs disabled %v", full, noGen)
	}
}
