package pipeline

import (
	"sort"

	"visclean/internal/benefit"
	"visclean/internal/dataset"
	"visclean/internal/em"
	"visclean/internal/goldenrec"
	"visclean/internal/vis"
)

// buildView derives the cleaned relation the visualization runs over:
// entity clusters consolidate into one record each (golden record), and
// every A-question column is rewritten to its canonical value. The
// session's working table is untouched. A non-nil overlay substitutes
// cells on the fly (hypothetical M/O repairs) — the copy-on-write view
// from dataset.Overlay, which replaced the single-cell cellOverride
// struct and prices hypotheses at O(touched cells) without ever writing
// the shared table.
//
// Consolidation resolves each column by majority vote over the cluster's
// non-null values; numeric ties resolve to the median (the paper's
// ground-truth Table II consolidates Elaps' 42 and 44 citations to 43),
// string ties to the lexicographically smallest most-frequent value.
func (s *Session) buildView(cl *em.Clusters, std map[string]*goldenrec.Standardizer, ov *dataset.Overlay) *dataset.Table {
	view := dataset.NewTable(s.table.Schema())
	for _, group := range cl.Groups(1) {
		if out, ok := s.viewRowFor(group, std, ov); ok {
			view.MustAppend(out)
		}
	}
	return view
}

// viewRowFor consolidates one entity cluster into its view row — the
// per-group core of buildView, exposed separately so the incremental
// hypothesis pricer can rebuild exactly the rows a hypothesis perturbs.
// ok is false when the group yields no row (vanished tuple).
func (s *Session) viewRowFor(group []dataset.TupleID, std map[string]*goldenrec.Standardizer, ov *dataset.Overlay) ([]dataset.Value, bool) {
	schema := s.table.Schema()
	cell := func(id dataset.TupleID, c int, v dataset.Value) dataset.Value {
		if ov != nil {
			if pv, ok := ov.Patch(id, c); ok {
				return pv
			}
		}
		return v
	}
	canonical := func(c int, v dataset.Value) dataset.Value {
		name := schema[c].Name
		st := std[name]
		if st == nil {
			return v
		}
		txt, ok := v.Text()
		if !ok {
			return v
		}
		return dataset.Str(st.Canonical(txt))
	}

	if len(group) == 1 {
		if _, ok := s.table.RowIndex(group[0]); !ok {
			return nil, false
		}
		out := make([]dataset.Value, len(schema))
		for c := range schema {
			v, _ := s.table.GetByID(group[0], c)
			out[c] = canonical(c, cell(group[0], c, v))
		}
		return out, true
	}
	out := make([]dataset.Value, len(schema))
	for c := range schema {
		var vals []dataset.Value
		for _, id := range group {
			v, ok := s.table.GetByID(id, c)
			if !ok {
				continue
			}
			vals = append(vals, canonical(c, cell(id, c, v)))
		}
		out[c] = resolve(vals, schema[c].Kind)
	}
	return out, true
}

// resolve elects the consolidated value of a column within one cluster.
func resolve(vals []dataset.Value, kind dataset.Kind) dataset.Value {
	counts := map[string]int{}
	byKey := map[string]dataset.Value{}
	var nums []float64
	for _, v := range vals {
		if v.IsNull() {
			continue
		}
		key := v.String()
		counts[key]++
		byKey[key] = v
		if f, ok := v.Float(); ok {
			nums = append(nums, f)
		}
	}
	if len(counts) == 0 {
		return dataset.Null(kind)
	}
	// Majority, deterministic tiebreaks.
	bestKey := ""
	bestCount := 0
	tie := false
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		switch {
		case counts[k] > bestCount:
			bestKey, bestCount, tie = k, counts[k], false
		case counts[k] == bestCount:
			tie = true
		}
	}
	if !tie || kind == dataset.String {
		return byKey[bestKey]
	}
	// Numeric tie: median of all non-null values.
	sort.Float64s(nums)
	mid := len(nums) / 2
	if len(nums)%2 == 1 {
		return dataset.Num(nums[mid])
	}
	return dataset.Num((nums[mid-1] + nums[mid]) / 2)
}

// CurrentVis computes the primary view's visualization over the current
// cleaned view (framework step 7).
func (s *Session) CurrentVis() (*vis.Data, error) {
	return s.CurrentVisView(0)
}

// CurrentVisView computes view v's visualization over the current
// cleaned view.
func (s *Session) CurrentVisView(v int) (*vis.Data, error) {
	if d := s.pristineVisView(v); d != nil {
		return d, nil
	}
	view := s.buildView(s.clusters, s.std, nil)
	return s.queries[v].Execute(view)
}

// CurrentVisAll computes every registered view's chart, in registration
// order, over one shared cleaned-relation build.
func (s *Session) CurrentVisAll() ([]*vis.Data, error) {
	out := make([]*vis.Data, len(s.queries))
	if s.pristine() {
		served := true
		for v := range s.queries {
			if out[v] = s.pristineVisView(v); out[v] == nil {
				served = false
				break
			}
		}
		if served {
			return out, nil
		}
	}
	view := s.buildView(s.clusters, s.std, nil)
	for v, q := range s.queries {
		d, err := q.Execute(view)
		if err != nil {
			return nil, err
		}
		out[v] = d
	}
	return out, nil
}

// CleanedView materializes the current cleaned relation: entity clusters
// consolidated into golden records and attribute values standardized.
// Per the paper's closing remark, these repairs are best treated as a
// materialized view / suggestions for a DBA rather than destructive
// updates — this accessor is that view.
func (s *Session) CleanedView() *dataset.Table {
	return s.buildView(s.clusters, s.std, nil)
}

// hypotheticalVis derives the visualization that one hypothetical user
// answer would produce, leaving all session state untouched. Returns nil
// when the hypothesis is inapplicable (e.g. a vanished tuple).
//
// This is the callback the parallel benefit engine fans out, so it must
// be safe for concurrent calls: it only reads session state (the
// working table, the merge list, the frozen standardizers and clusters —
// see freezeShared) and builds private clusters / standardizer
// clones / view tables per call. Hypothetical repairs substitute cell
// values through overrides instead of writing to the shared table.
func (s *Session) hypotheticalVis(h benefit.Hypothesis) *vis.Data {
	cl, std, ov, ok := s.hypotheticalState(h)
	if !ok {
		return nil
	}
	return s.execView(cl, std, ov)
}

// hypotheticalState derives the cleaned-relation inputs — clusters,
// standardizers, cell overlay — that one hypothetical answer implies.
// ok=false means the hypothesis is inapplicable (e.g. a vanished
// tuple). Shared by the single-view and multi-view hypothetical chart
// builders, so both price against the identical relation.
func (s *Session) hypotheticalState(h benefit.Hypothesis) (cl *em.Clusters, std map[string]*goldenrec.Standardizer, ov *dataset.Overlay, ok bool) {
	switch h.Kind {
	case benefit.TConfirm:
		cl = s.buildClusters([]em.Pair{h.Pair}, nil)
		// Confirming tuples also equates their A-column values (§VI
		// label-edge semantics), so standardize them hypothetically.
		std = s.std
		if override := s.tPairStandardizers(h.Pair); override != nil {
			std = override
		}
		return cl, std, nil, true
	case benefit.TSplit:
		return s.buildClusters(nil, []em.Pair{h.Pair}), s.std, nil, true
	case benefit.AApprove:
		st := s.std[h.Column]
		if st == nil {
			return nil, nil, nil, false
		}
		override := cloneStdMap(s.std)
		clone := st.Clone()
		clone.Approve(h.V1, h.V2)
		override[h.Column] = clone
		return s.clusters, override, nil, true
	case benefit.MImpute, benefit.ORepair:
		// Overlay.Set enforces both the id's existence and the numeric
		// kind of the measure column — the checks the old
		// write-then-restore path got for free from Table.Set.
		ov = s.table.Overlay()
		if ov.Set(h.ID, s.yCol, dataset.Num(h.Value)) != nil {
			return nil, nil, nil, false
		}
		return s.clusters, s.std, ov, true
	default:
		return nil, nil, nil, false
	}
}

// hypotheticalVisAll derives every view's chart under one hypothetical
// answer, sharing a single cleaned-relation build across the views. A
// nil return means the hypothesis is inapplicable; a nil element means
// that one view's query failed over the hypothetical relation (its term
// prices as zero). Same concurrency contract as hypotheticalVis.
func (s *Session) hypotheticalVisAll(h benefit.Hypothesis) []*vis.Data {
	cl, std, ov, ok := s.hypotheticalState(h)
	if !ok {
		return nil
	}
	view := s.buildView(cl, std, ov)
	out := make([]*vis.Data, len(s.queries))
	for v, q := range s.queries {
		if d, err := q.Execute(view); err == nil {
			out[v] = d
		}
	}
	return out
}

// freezeShared precomputes every lazy structure the hypothetical-vis
// fan-out reads concurrently — the standardizers' path compression and
// canonical-value caches, and the entity clusters' union-find — so that
// during annotation they are touched without a single write. Called
// before each benefit annotation; Approve/merge re-dirty them, but
// answers are only applied after selection, never during annotation.
func (s *Session) freezeShared() {
	for _, st := range s.std {
		st.Freeze()
	}
	s.clusters.Freeze()
}

// stdChange is one hypothetical value equation in one A-column. The
// incremental pricer uses the (v1, v2) pair to find the rows the change
// can touch through its value→rows posting lists.
type stdChange struct {
	name   string
	v1, v2 string
}

// tPairChanges lists the A-column value equations that confirming the
// pair implies (§VI label-edge semantics): one per A-column where the
// two tuples carry differing text values.
func (s *Session) tPairChanges(p em.Pair) []stdChange {
	schema := s.table.Schema()
	var out []stdChange
	for _, c := range s.aColumns {
		va, okA := s.table.GetByID(p.A, c)
		vb, okB := s.table.GetByID(p.B, c)
		if !okA || !okB {
			continue
		}
		ta, okA := va.Text()
		tb, okB := vb.Text()
		if !okA || !okB || ta == tb {
			continue
		}
		out = append(out, stdChange{name: schema[c].Name, v1: ta, v2: tb})
	}
	return out
}

// tPairStandardizers returns a standardizer override where the pair's
// values in every A-column are equated, or nil when nothing changes.
func (s *Session) tPairStandardizers(p em.Pair) map[string]*goldenrec.Standardizer {
	return s.stdOverride(s.tPairChanges(p))
}

// stdOverride clones the standardizer map and applies each change as a
// hypothetical approval, or returns nil when changes is empty.
func (s *Session) stdOverride(changes []stdChange) map[string]*goldenrec.Standardizer {
	var override map[string]*goldenrec.Standardizer
	for _, ch := range changes {
		if override == nil {
			override = cloneStdMap(s.std)
		}
		clone := override[ch.name].Clone()
		clone.Approve(ch.v1, ch.v2)
		override[ch.name] = clone
	}
	return override
}

func cloneStdMap(in map[string]*goldenrec.Standardizer) map[string]*goldenrec.Standardizer {
	out := make(map[string]*goldenrec.Standardizer, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

// execView builds the view and executes the query, returning nil on
// execution errors (hypotheses must never abort an iteration).
func (s *Session) execView(cl *em.Clusters, std map[string]*goldenrec.Standardizer, ov *dataset.Overlay) *vis.Data {
	view := s.buildView(cl, std, ov)
	d, err := s.query.Execute(view)
	if err != nil {
		return nil
	}
	return d
}
