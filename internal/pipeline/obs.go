package pipeline

// Observability wiring (see DESIGN.md §5 for the full catalog). The
// pipeline computes its timings and counters regardless — they are part
// of Report — and this file only mirrors them into the process-wide
// obs registry and tracer after each iteration. Nothing here feeds back
// into the computation, so determinism is untouched whether obs is
// enabled or not, and with obs disabled observeIteration costs a
// handful of gated atomic loads.

import (
	"time"

	"visclean/internal/benefit"
	"visclean/internal/obs"
)

var (
	obsIterations = obs.Default.Counter("visclean_pipeline_iterations_total",
		"Completed cleaning iterations (all sessions).")
	obsExhausted = obs.Default.Counter("visclean_pipeline_exhausted_total",
		"Iterations that found the ERG exhausted (nothing left to ask).")
	obsQuestions = obs.Default.Counter("visclean_pipeline_questions_total",
		"Cleaning questions put to users, by kind.", obs.Label{Key: "kind", Value: "T"})
	obsQuestionsA = obs.Default.Counter("visclean_pipeline_questions_total",
		"", obs.Label{Key: "kind", Value: "A"})
	obsQuestionsM = obs.Default.Counter("visclean_pipeline_questions_total",
		"", obs.Label{Key: "kind", Value: "M"})
	obsQuestionsO = obs.Default.Counter("visclean_pipeline_questions_total",
		"", obs.Label{Key: "kind", Value: "O"})
	obsUnanswered = obs.Default.Counter("visclean_pipeline_unanswered_total",
		"Questions users skipped or that timed out unanswered.")

	obsBenefitEvals = obs.Default.Counter("visclean_benefit_evals_total",
		"Unique hypothetical visualizations derived by the benefit model (memo misses).")
	obsMemoHits = obs.Default.Counter("visclean_benefit_memo_hits_total",
		"Benefit prices served from the per-iteration memo instead of re-derived.")
	obsDeltaAccepts = obs.Default.Counter("visclean_benefit_delta_accepts_total",
		"Hypotheses priced by the incremental delta pricer.")
	obsDeltaFallbacks = obs.Default.Counter("visclean_benefit_delta_fallbacks_total",
		"Hypotheses the delta pricer declined, priced by full view rebuild.")
	obsDetectAccepts = obs.Default.Counter("visclean_detect_delta_accepts_total",
		"Detect-phase kNN suggestions served from the maintained neighbour cache.")
	obsDetectFallbacks = obs.Default.Counter("visclean_detect_delta_fallbacks_total",
		"Detect-phase kNN suggestions recomputed from the live index (cache miss or invalidated).")
	obsDetectFull = obs.Default.Counter("visclean_detect_full_total",
		"Iterations that ran the full (non-incremental) detect path.")

	obsViewRegistrations = obs.Default.Counter("visclean_pipeline_view_registrations_total",
		"Extra views registered on multi-view sessions (DESIGN.md §13) beyond the primary — construction-time extras, live AddView calls, and replayed registrations during restore alike.")
	obsViewDistMoved = obs.Default.Histogram("visclean_pipeline_view_dist_moved",
		"Per-view chart movement (dist between the view's before/after charts) per committed iteration; multi-view sessions observe once per view.",
		distBuckets)

	obsPhaseSeconds = map[string]*obs.Histogram{
		"detect":    phaseHist("detect"),
		"build_erg": phaseHist("build_erg"),
		"annotate":  phaseHist("annotate"),
		"select":    phaseHist("select"),
		"apply":     phaseHist("apply"),
		"train":     phaseHist("train"),
		"view":      phaseHist("view"),
		"distance":  phaseHist("distance"),
	}
)

// distBuckets cover per-iteration chart movement: label-aligned EMD
// values, usually well under 1 at the reproduction scales.
var distBuckets = []float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5}

func phaseHist(phase string) *obs.Histogram {
	help := ""
	if phase == "detect" { // HELP is per metric name; attach it once
		help = "Per-iteration wall time by framework phase (Fig 18 categories)."
	}
	return obs.Default.Histogram("visclean_iteration_phase_seconds", help,
		obs.TimeBuckets, obs.Label{Key: "phase", Value: phase})
}

// noteBenefit copies an estimator's work accounting into the report.
func (r *Report) noteBenefit(st benefit.Stats) {
	r.BenefitEvals = st.Evals
	r.MemoHits = st.MemoHits
	r.DeltaAccepts = st.PricerAccepts
	r.DeltaFallbacks = st.PricerFallbacks
}

// observeIteration publishes one finished iteration's report to the
// obs registry and records its phase breakdown as a trace span.
func (s *Session) observeIteration(rep *Report, start time.Time) {
	if obs.Enabled() {
		obsIterations.Inc()
		if rep.Exhausted {
			obsExhausted.Inc()
		}
		obsQuestions.Add(int64(rep.TQuestions))
		obsQuestionsA.Add(int64(rep.AQuestions))
		obsQuestionsM.Add(int64(rep.MQuestions))
		obsQuestionsO.Add(int64(rep.OQuestions))
		obsUnanswered.Add(int64(rep.Unanswered))
		obsBenefitEvals.Add(int64(rep.BenefitEvals))
		obsMemoHits.Add(int64(rep.MemoHits))
		obsDeltaAccepts.Add(int64(rep.DeltaAccepts))
		obsDeltaFallbacks.Add(int64(rep.DeltaFallbacks))
		obsDetectAccepts.Add(int64(rep.DetectAccepts))
		obsDetectFallbacks.Add(int64(rep.DetectFallbacks))
		if rep.DetectFull {
			obsDetectFull.Inc()
		}
		for _, d := range rep.ViewDistMoved {
			obsViewDistMoved.Observe(d)
		}
		tm := rep.Timings
		obsPhaseSeconds["detect"].Observe(tm.Detect.Seconds())
		obsPhaseSeconds["build_erg"].Observe(tm.BuildERG.Seconds())
		obsPhaseSeconds["annotate"].Observe(tm.Benefit.Seconds())
		obsPhaseSeconds["select"].Observe(tm.Select.Seconds())
		obsPhaseSeconds["apply"].Observe(tm.Apply.Seconds())
		obsPhaseSeconds["train"].Observe(tm.Train.Seconds())
		obsPhaseSeconds["view"].Observe(tm.View.Seconds())
		obsPhaseSeconds["distance"].Observe(tm.Distance.Seconds())
	}
	if obs.DefaultTracer.Enabled() {
		tm := rep.Timings
		obs.DefaultTracer.Record("iteration", s.traceLabel, start, time.Since(start), []obs.Phase{
			{Name: "detect", DurationNS: tm.Detect.Nanoseconds()},
			{Name: "build_erg", DurationNS: tm.BuildERG.Nanoseconds()},
			{Name: "annotate", DurationNS: tm.Benefit.Nanoseconds()},
			{Name: "select", DurationNS: tm.Select.Nanoseconds()},
			{Name: "apply", DurationNS: tm.Apply.Nanoseconds()},
			{Name: "train", DurationNS: tm.Train.Nanoseconds()},
			{Name: "view", DurationNS: tm.View.Nanoseconds()},
			{Name: "distance", DurationNS: tm.Distance.Nanoseconds()},
		})
	}
}
