package pipeline

// The multi-view determinism suite. The contracts: (1) a 2-view session
// is bit-identical across worker counts — the cross-view weighted sum
// runs in registration order regardless of scheduling; (2) replaying a
// history that includes a mid-session AddView restores every panel
// byte-for-byte (the kill/restart path); (3) the N=1 fence — the
// multi-view machinery degenerates to exactly the historical single-view
// arithmetic, demonstrated by a duplicate-view session whose benefits
// are the single-view benefits exactly doubled and whose trajectory is
// unchanged.

import (
	"encoding/json"
	"fmt"
	"testing"

	"visclean/internal/datagen"
	"visclean/internal/oracle"
	"visclean/internal/vql"
)

const (
	mvPrimaryQuery = `VISUALIZE bar SELECT Venue, SUM(Citations) FROM D1 TRANSFORM GROUP BY Venue SORT Y BY DESC LIMIT 10`
	mvSecondQuery  = `VISUALIZE bar SELECT Affiliation, AVG(Citations) FROM D1 TRANSFORM GROUP BY Affiliation SORT Y BY DESC LIMIT 8`
	mvThirdQuery   = `VISUALIZE bar SELECT Year, SUM(Citations) FROM D1 TRANSFORM BIN Year BY INTERVAL 1`
)

// newMultiViewSession builds a session over D1 with the given extra
// views beyond the primary query.
func newMultiViewSession(t testing.TB, seed int64, workers int, extra ...string) (*Session, *oracle.Oracle) {
	t.Helper()
	d := datagen.D1(datagen.Config{Scale: 0.004, Seed: seed})
	q := vql.MustParse(mvPrimaryQuery)
	var views []*vql.Query
	for _, src := range extra {
		views = append(views, vql.MustParse(src))
	}
	s, err := NewSession(d.Dirty, q, d.KeyColumns, Config{
		Selector: SelectGSS,
		Seed:     seed,
		Workers:  workers,
		Queries:  views,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, oracle.New(d.Truth, seed)
}

// mvTrace captures everything observable about a multi-view run,
// including every view's chart after every iteration.
type mvTrace struct {
	History  []byte
	Benefits []float64
	Charts   []string // per iteration: all views' charts, rendered
	Final    string   // final CurrentVisAll rendering
}

func renderAll(t testing.TB, s *Session) string {
	t.Helper()
	all, err := s.CurrentVisAll()
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("%+v", all)
}

func runMultiViewSession(t testing.TB, seed int64, workers int, iters int, extra ...string) mvTrace {
	t.Helper()
	s, user := newMultiViewSession(t, seed, workers, extra...)
	var tr mvTrace
	for i := 0; i < iters; i++ {
		rep, err := s.RunIteration(user)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Exhausted {
			break
		}
		if len(rep.ViewCharts) != s.NumViews() || len(rep.ViewDistMoved) != s.NumViews() {
			t.Fatalf("iteration %d: report carries %d charts / %d dists for %d views",
				i+1, len(rep.ViewCharts), len(rep.ViewDistMoved), s.NumViews())
		}
		if rep.ViewDistMoved[0] != rep.DistMoved {
			t.Fatalf("iteration %d: ViewDistMoved[0] %v != DistMoved %v", i+1, rep.ViewDistMoved[0], rep.DistMoved)
		}
		tr.Benefits = append(tr.Benefits, rep.EstimatedBenefit)
		tr.Charts = append(tr.Charts, fmt.Sprintf("%+v", rep.ViewCharts))
	}
	h, err := json.Marshal(s.History())
	if err != nil {
		t.Fatal(err)
	}
	tr.History = h
	tr.Final = renderAll(t, s)
	return tr
}

// TestMultiViewWorkersBitIdentical: a 2-view session at Workers 1 and 8
// must agree on every byte — answer log, modeled benefits, and every
// view's chart after every iteration.
func TestMultiViewWorkersBitIdentical(t *testing.T) {
	seq := runMultiViewSession(t, 7, 1, 4, mvSecondQuery)
	par := runMultiViewSession(t, 7, 8, 4, mvSecondQuery)
	if string(seq.History) != string(par.History) {
		t.Errorf("answer logs differ:\n%s\nvs\n%s", seq.History, par.History)
	}
	if len(seq.Benefits) != len(par.Benefits) {
		t.Fatalf("iteration counts differ: %d vs %d", len(seq.Benefits), len(par.Benefits))
	}
	for i := range seq.Benefits {
		if seq.Benefits[i] != par.Benefits[i] {
			t.Errorf("iteration %d benefit differs: %v vs %v", i+1, seq.Benefits[i], par.Benefits[i])
		}
		if seq.Charts[i] != par.Charts[i] {
			t.Errorf("iteration %d view charts differ:\n%s\nvs\n%s", i+1, seq.Charts[i], par.Charts[i])
		}
	}
	if seq.Final != par.Final {
		t.Errorf("final view charts differ:\n%s\nvs\n%s", seq.Final, par.Final)
	}
}

// TestMultiViewSessionsDiverge is the sanity inverse: adding a second
// view must actually change which questions the session asks (otherwise
// the aggregation tests above pass vacuously). Divergence is checked
// over several seeds — on any single seed the top CQG can legitimately
// coincide.
func TestMultiViewSessionsDiverge(t *testing.T) {
	diverged := false
	for _, seed := range []int64{7, 11, 13, 19} {
		mono := runMultiViewSession(t, seed, 1, 4)
		multi := runMultiViewSession(t, seed, 1, 4, mvSecondQuery)
		if string(mono.History) != string(multi.History) {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("2-view sessions asked identical questions as single-view on every seed; cross-view aggregation is not wired through")
	}
}

// TestMultiViewReplayRestoresViews is the kill/restart fence: a session
// that starts with two views and adds a third mid-session must be fully
// reproducible from its answer log alone — including the view set, the
// A-column extension the added view caused, and every panel's chart.
func TestMultiViewReplayRestoresViews(t *testing.T) {
	s, user := newMultiViewSession(t, 7, 1, mvThirdQuery)
	if _, err := s.RunIteration(user); err != nil {
		t.Fatal(err)
	}
	v, err := s.AddView(vql.MustParse(mvSecondQuery))
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("AddView returned index %d, want 2", v)
	}
	for i := 0; i < 2; i++ {
		rep, err := s.RunIteration(user)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.ViewCharts) != 3 {
			t.Fatalf("post-AddView iteration reports %d view charts, want 3", len(rep.ViewCharts))
		}
	}

	restored, _ := newMultiViewSession(t, 7, 1, mvThirdQuery)
	if err := restored.Replay(s.History()); err != nil {
		t.Fatal(err)
	}
	if restored.NumViews() != s.NumViews() {
		t.Fatalf("replay restored %d views, want %d", restored.NumViews(), s.NumViews())
	}
	for i, q := range s.ViewQueries() {
		if restored.ViewQueries()[i].String() != q.String() {
			t.Errorf("view %d query differs after replay: %q vs %q", i, restored.ViewQueries()[i], q)
		}
	}
	if got, want := renderAll(t, restored), renderAll(t, s); got != want {
		t.Errorf("replayed view charts differ:\n%s\nvs\n%s", got, want)
	}
	a, _ := json.Marshal(s.History())
	b, _ := json.Marshal(restored.History())
	if string(a) != string(b) {
		t.Errorf("replayed history not snapshot-complete:\n%s\nvs\n%s", b, a)
	}

	// The restored session must continue identically, not just look
	// identical: one more iteration against fresh same-seed oracles.
	d := datagen.D1(datagen.Config{Scale: 0.004, Seed: 7})
	repA, err := s.RunIteration(oracle.New(d.Truth, 7))
	if err != nil {
		t.Fatal(err)
	}
	repB, err := restored.RunIteration(oracle.New(d.Truth, 7))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", repA.ViewCharts) != fmt.Sprintf("%+v", repB.ViewCharts) {
		t.Error("live and replayed sessions diverged on the iteration after restore")
	}
}

// TestMultiViewDuplicateViewFence is the N=1 regression fence, stated
// as exact arithmetic: registering the primary query twice doubles every
// hypothesis price (d + d, exact in IEEE 754), which preserves every
// benefit comparison bit-for-bit — so the session must ask the same
// questions, log the same answers and draw the same view-0 trajectory
// as the single-view session, while reporting exactly doubled benefits.
// Any rounding introduced by the multi-view sum would break this.
func TestMultiViewDuplicateViewFence(t *testing.T) {
	mono := runMultiViewSession(t, 7, 1, 4)
	dup := runMultiViewSession(t, 7, 1, 4, mvPrimaryQuery)
	if string(mono.History) != string(dup.History) {
		t.Errorf("duplicate-view session asked different questions:\n%s\nvs\n%s", mono.History, dup.History)
	}
	if len(mono.Benefits) != len(dup.Benefits) {
		t.Fatalf("iteration counts differ: %d vs %d", len(mono.Benefits), len(dup.Benefits))
	}
	for i := range mono.Benefits {
		if 2*mono.Benefits[i] != dup.Benefits[i] {
			t.Errorf("iteration %d: duplicate-view benefit %v != 2 × single-view %v",
				i+1, dup.Benefits[i], mono.Benefits[i])
		}
	}
}

// TestAddViewValidation pins the registration contract: mismatched
// measure columns and unknown columns are rejected without mutating the
// session, and a session remains usable after a rejected AddView.
func TestAddViewValidation(t *testing.T) {
	s, user := newMultiViewSession(t, 7, 1)
	if _, err := s.AddView(vql.MustParse(`VISUALIZE bar SELECT Venue, SUM(Year) FROM D1 TRANSFORM GROUP BY Venue`)); err == nil {
		t.Error("AddView accepted a view with a different measure column")
	}
	if _, err := s.AddView(vql.MustParse(`VISUALIZE bar SELECT Nope, SUM(Citations) FROM D1 TRANSFORM GROUP BY Nope`)); err == nil {
		t.Error("AddView accepted a view over an unknown column")
	}
	if s.NumViews() != 1 {
		t.Fatalf("rejected AddViews left %d views registered, want 1", s.NumViews())
	}
	if h := s.History(); h.NumAnswers() != 0 {
		t.Fatalf("rejected AddViews logged %d answers, want 0", h.NumAnswers())
	}
	if _, err := s.RunIteration(user); err != nil {
		t.Fatal(err)
	}
}

// TestCurrentVisAllMatchesCurrentVis: on a single-view session the two
// accessors must produce bit-identical charts in every session state
// (pristine artifact-served and post-answer rebuilt).
func TestCurrentVisAllMatchesCurrentVis(t *testing.T) {
	s, user := newMultiViewSession(t, 7, 1)
	for i := 0; i < 3; i++ {
		one, err := s.CurrentVis()
		if err != nil {
			t.Fatal(err)
		}
		all, err := s.CurrentVisAll()
		if err != nil {
			t.Fatal(err)
		}
		if len(all) != 1 || fmt.Sprintf("%+v", all[0]) != fmt.Sprintf("%+v", one) {
			t.Fatalf("iteration %d: CurrentVisAll %+v != CurrentVis %+v", i, all, one)
		}
		if _, err := s.RunIteration(user); err != nil {
			t.Fatal(err)
		}
	}
}
