package pipeline

// The determinism suite. The guarantee that checkpoint/restore (the
// service layer) and the experiment harness depend on is that a session
// is a pure function of (table, query, Config): same seed, same answer
// log, same selected CQGs, same reported benefits — and that the
// Workers knob changes wall-clock time only, never a single byte of the
// outcome. scripts/check.sh runs this file under -race, which is what
// validates the parallel benefit engine's synchronization.

import (
	"encoding/json"
	"fmt"
	"testing"

	"visclean/internal/datagen"
	"visclean/internal/dataset"
	"visclean/internal/oracle"
	"visclean/internal/vql"
)

// detTrace captures everything observable about one session run.
type detTrace struct {
	History   []byte // JSON-encoded answer log
	CQGs      [][]dataset.TupleID
	Benefits  []float64
	Evals     []int
	Questions []int
	FinalVis  string
}

// runDetSession executes a fresh seeded session for a fixed budget and
// returns its trace.
func runDetSession(t testing.TB, selector SelectorKind, seed int64, workers int) detTrace {
	t.Helper()
	s, user := newDetSession(t, selector, seed, workers)
	var tr detTrace
	for i := 0; i < 5; i++ {
		rep, err := s.RunIteration(user)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Exhausted {
			break
		}
		tr.CQGs = append(tr.CQGs, rep.CQGMembers)
		tr.Benefits = append(tr.Benefits, rep.EstimatedBenefit)
		tr.Evals = append(tr.Evals, rep.BenefitEvals)
		tr.Questions = append(tr.Questions, rep.Questions())
	}
	h, err := json.Marshal(s.History())
	if err != nil {
		t.Fatal(err)
	}
	tr.History = h
	if v, err := s.CurrentVis(); err == nil {
		tr.FinalVis = fmt.Sprintf("%+v", v)
	}
	return tr
}

// newDetSession mirrors newScaledSession but threads the Workers knob.
func newDetSession(t testing.TB, selector SelectorKind, seed int64, workers int) (*Session, *oracle.Oracle) {
	t.Helper()
	d := datagen.D1(datagen.Config{Scale: 0.004, Seed: seed})
	q := vql.MustParse(`VISUALIZE bar SELECT Venue, SUM(Citations) FROM D1 TRANSFORM GROUP BY Venue SORT Y BY DESC LIMIT 10`)
	truthVis, err := q.Execute(d.Truth.Clean)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(d.Dirty, q, d.KeyColumns, Config{
		Selector: selector,
		Seed:     seed,
		TruthVis: truthVis,
		Workers:  workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, oracle.New(d.Truth, seed)
}

func assertTracesEqual(t *testing.T, label string, a, b detTrace) {
	t.Helper()
	if string(a.History) != string(b.History) {
		t.Errorf("%s: answer logs differ:\n%s\nvs\n%s", label, a.History, b.History)
	}
	if len(a.CQGs) != len(b.CQGs) {
		t.Fatalf("%s: iteration counts differ: %d vs %d", label, len(a.CQGs), len(b.CQGs))
	}
	for i := range a.CQGs {
		if fmt.Sprint(a.CQGs[i]) != fmt.Sprint(b.CQGs[i]) {
			t.Errorf("%s: iteration %d CQG differs: %v vs %v", label, i+1, a.CQGs[i], b.CQGs[i])
		}
		// Bit-identical, not approximately equal: the parallel reduction
		// must not reorder a single float addition.
		if a.Benefits[i] != b.Benefits[i] {
			t.Errorf("%s: iteration %d benefit differs: %v vs %v", label, i+1, a.Benefits[i], b.Benefits[i])
		}
		if a.Evals[i] != b.Evals[i] {
			t.Errorf("%s: iteration %d eval count differs: %d vs %d", label, i+1, a.Evals[i], b.Evals[i])
		}
		if a.Questions[i] != b.Questions[i] {
			t.Errorf("%s: iteration %d question count differs: %d vs %d", label, i+1, a.Questions[i], b.Questions[i])
		}
	}
	if a.FinalVis != b.FinalVis {
		t.Errorf("%s: final visualizations differ:\n%s\nvs\n%s", label, a.FinalVis, b.FinalVis)
	}
}

var detSelectors = []SelectorKind{SelectGSS, SelectGSSPlus, SelectBB, SelectRandom}

// TestDeterminismSameSeedSameSession runs every selector twice with the
// same seed and asserts byte-identical traces. This is the regression
// gate for the map-iteration-order bugs: gss() partial-set evaluation
// order and erg.SubgraphBenefit summation order.
func TestDeterminismSameSeedSameSession(t *testing.T) {
	for _, sel := range detSelectors {
		sel := sel
		t.Run(sel.String(), func(t *testing.T) {
			t.Parallel()
			a := runDetSession(t, sel, 7, 1)
			b := runDetSession(t, sel, 7, 1)
			assertTracesEqual(t, sel.String(), a, b)
		})
	}
}

// TestDeterminismAcrossWorkerCounts asserts Workers=1 and Workers=8
// sessions are bit-identical: the index-write reduction and per-tree
// forest seeding must leave no scheduler fingerprint on the outcome.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	for _, sel := range detSelectors {
		sel := sel
		t.Run(sel.String(), func(t *testing.T) {
			t.Parallel()
			seq := runDetSession(t, sel, 11, 1)
			par := runDetSession(t, sel, 11, 8)
			assertTracesEqual(t, sel.String()+" workers 1 vs 8", seq, par)
		})
	}
}

// TestDeterminismDifferentSeedsDiverge is the sanity inverse: sessions
// seeded differently must not replay identically (otherwise the suite
// above would pass vacuously with the seed not wired through at all).
func TestDeterminismDifferentSeedsDiverge(t *testing.T) {
	a := runDetSession(t, SelectRandom, 3, 1)
	b := runDetSession(t, SelectRandom, 4, 1)
	if string(a.History) == string(b.History) && a.FinalVis == b.FinalVis && fmt.Sprint(a.CQGs) == fmt.Sprint(b.CQGs) {
		t.Error("seeds 3 and 4 produced byte-identical sessions; seed is not wired through")
	}
}
