package pipeline

import (
	"context"
	"math"
	"testing"

	"visclean/internal/dataset"
	"visclean/internal/vis"
)

// visEqual asserts two visualizations are identical point for point.
func visEqual(t *testing.T, a, b *vis.Data) {
	t.Helper()
	if len(a.Points) != len(b.Points) {
		t.Fatalf("point count: %d vs %d", len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		if a.Points[i].Label != b.Points[i].Label {
			t.Fatalf("label %d: %q vs %q", i, a.Points[i].Label, b.Points[i].Label)
		}
		if math.Abs(a.Points[i].Y-b.Points[i].Y) > 1e-12 {
			t.Fatalf("value %d (%s): %v vs %v", i, a.Points[i].Label, a.Points[i].Y, b.Points[i].Y)
		}
	}
}

// TestReplayReproducesSession is the snapshot/restore soundness test:
// a fresh identically-configured session replaying the answer log must
// land on the exact same visualization, distance-to-truth and history.
func TestReplayReproducesSession(t *testing.T) {
	live, orc := newTestSession(t, SelectGSS, 5)
	for i := 0; i < 3; i++ {
		rep, err := live.RunIteration(orc)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Exhausted {
			break
		}
	}
	h := live.History()
	if len(h.Iterations) == 0 {
		t.Fatal("no iterations logged")
	}
	if len(h.Partial) != 0 {
		t.Fatalf("completed iterations left %d partial answers", len(h.Partial))
	}

	restored, _ := newTestSession(t, SelectGSS, 5)
	if err := restored.Replay(h); err != nil {
		t.Fatal(err)
	}

	if live.Iteration() != restored.Iteration() {
		t.Fatalf("iteration count: live %d, restored %d", live.Iteration(), restored.Iteration())
	}
	dLive, err := live.DistToTruth()
	if err != nil {
		t.Fatal(err)
	}
	dRest, err := restored.DistToTruth()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dLive-dRest) > 1e-12 {
		t.Fatalf("dist to truth: live %v, restored %v", dLive, dRest)
	}
	vLive, err := live.CurrentVis()
	if err != nil {
		t.Fatal(err)
	}
	vRest, err := restored.CurrentVis()
	if err != nil {
		t.Fatal(err)
	}
	visEqual(t, vLive, vRest)

	// The restored session's own log must be snapshot-complete again.
	h2 := restored.History()
	if len(h2.Iterations) != len(h.Iterations) {
		t.Fatalf("restored history has %d iterations, want %d", len(h2.Iterations), len(h.Iterations))
	}
	for i := range h.Iterations {
		if len(h2.Iterations[i]) != len(h.Iterations[i]) {
			t.Fatalf("restored iteration %d has %d answers, want %d",
				i, len(h2.Iterations[i]), len(h.Iterations[i]))
		}
	}

	// And the replayed session keeps cleaning identically. The perfect
	// oracle consumes no RNG when answering, so a fresh one stands in
	// for the live session's oracle.
	_, orcFresh := newTestSession(t, SelectGSS, 5)
	repL, errL := live.RunIteration(orc)
	repR, errR := restored.RunIteration(orcFresh)
	if (errL == nil) != (errR == nil) {
		t.Fatalf("post-replay iteration errors diverge: %v vs %v", errL, errR)
	}
	if errL == nil && repL.Questions() != repR.Questions() {
		t.Fatalf("post-replay questions diverge: %d vs %d", repL.Questions(), repR.Questions())
	}
}

// TestReplayPartialIteration covers the crash-mid-CQG path: cancelling
// an in-flight iteration leaves its applied answers as partial history,
// and replaying committed+partial reproduces the live state.
func TestReplayPartialIteration(t *testing.T) {
	live, orc := newTestSession(t, SelectGSS, 6)
	if _, err := live.RunIteration(orc); err != nil {
		t.Fatal(err)
	}

	// Cancel after the second answer of the next iteration.
	ctx, cancel := context.WithCancel(context.Background())
	cu := &cancellingUser{inner: orc, cancel: cancel, stopAfter: 2}
	_, err := live.RunIterationCtx(ctx, cu)
	if err == nil {
		t.Skip("iteration finished before cancellation could interrupt it")
	}
	if ctx.Err() == nil {
		t.Fatalf("unexpected error: %v", err)
	}

	h := live.History()
	if len(h.Iterations) != 1 {
		t.Fatalf("committed iterations = %d, want 1", len(h.Iterations))
	}
	if len(h.Partial) == 0 {
		t.Fatal("cancelled iteration logged no partial answers")
	}
	if live.Iteration() != 1 {
		t.Fatalf("cancelled iteration advanced the counter to %d", live.Iteration())
	}

	restored, _ := newTestSession(t, SelectGSS, 6)
	if err := restored.Replay(h); err != nil {
		t.Fatal(err)
	}
	vLive, err := live.CurrentVis()
	if err != nil {
		t.Fatal(err)
	}
	vRest, err := restored.CurrentVis()
	if err != nil {
		t.Fatal(err)
	}
	visEqual(t, vLive, vRest)
}

// cancellingUser forwards to an inner user and cancels the context after
// stopAfter answers.
type cancellingUser struct {
	inner     User
	cancel    context.CancelFunc
	stopAfter int
	answered  int
}

func (c *cancellingUser) bump() {
	c.answered++
	if c.answered >= c.stopAfter {
		c.cancel()
	}
}

func (c *cancellingUser) AnswerT(a, b dataset.TupleID) (bool, bool) {
	defer c.bump()
	return c.inner.AnswerT(a, b)
}

func (c *cancellingUser) AnswerA(column, v1, v2 string) (bool, bool) {
	defer c.bump()
	return c.inner.AnswerA(column, v1, v2)
}

func (c *cancellingUser) AnswerM(column string, id dataset.TupleID) (float64, bool) {
	defer c.bump()
	return c.inner.AnswerM(column, id)
}

func (c *cancellingUser) AnswerO(column string, id dataset.TupleID, current float64) (bool, float64, bool) {
	defer c.bump()
	return c.inner.AnswerO(column, id, current)
}

// TestReplayRequiresFreshSession guards the precondition.
func TestReplayRequiresFreshSession(t *testing.T) {
	s, orc := newTestSession(t, SelectGSS, 7)
	if _, err := s.RunIteration(orc); err != nil {
		t.Fatal(err)
	}
	if err := s.Replay(History{}); err == nil {
		t.Fatal("Replay on a used session must fail")
	}
}
