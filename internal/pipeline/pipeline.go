// Package pipeline is VisClean's orchestrator, implementing the framework
// of §III (Fig 6): initialize the error detectors, build the ERG, price
// it with the benefit model, select the most beneficial CQG, put it to
// the user, apply the answers to the data and the cleaning models, and
// refresh the visualization — iterating until the interaction budget is
// spent.
package pipeline

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"visclean/internal/artifact"
	"visclean/internal/dataset"
	"visclean/internal/distance"
	"visclean/internal/em"
	"visclean/internal/goldenrec"
	"visclean/internal/impute"
	"visclean/internal/knn"
	"visclean/internal/rf"
	"visclean/internal/transform"
	"visclean/internal/vis"
	"visclean/internal/vql"
)

// User answers cleaning questions. *oracle.Oracle implements it; the
// interactive CLI provides a terminal implementation.
type User interface {
	AnswerT(a, b dataset.TupleID) (match, answered bool)
	AnswerA(column, v1, v2 string) (same, answered bool)
	AnswerM(column string, id dataset.TupleID) (value float64, answered bool)
	AnswerO(column string, id dataset.TupleID, current float64) (isOutlier bool, value float64, answered bool)
}

// SelectorKind names a CQG selection strategy (§VII's algorithm set).
type SelectorKind int

const (
	SelectGSS SelectorKind = iota
	SelectGSSPlus
	SelectBB
	SelectAlphaBB
	SelectRandom
	// SelectSingle is the single-questions baseline: no CQG; the top m
	// single questions are asked in isolation, m/4 from each of
	// Q_T/Q_A/Q_M/Q_O.
	SelectSingle
)

// String names the selector the way flags and reports spell it.
func (s SelectorKind) String() string {
	switch s {
	case SelectGSS:
		return "GSS"
	case SelectGSSPlus:
		return "GSS+"
	case SelectBB:
		return "B&B"
	case SelectAlphaBB:
		return "α-B&B"
	case SelectRandom:
		return "Random"
	case SelectSingle:
		return "Single"
	default:
		return fmt.Sprintf("SelectorKind(%d)", int(s))
	}
}

// Config parameterizes a cleaning session. Zero values select the
// paper's defaults where one exists.
type Config struct {
	Query *vql.Query

	// Queries registers additional concurrent views beyond the primary
	// query passed to NewSession: the session then serves N dashboard
	// panels over the same base data, and every question's benefit is
	// the weighted sum of its per-view distance deltas, so one answer
	// improves every panel at once. View 0 is always the primary query;
	// an empty slice is the historical single-view session. Every view
	// must validate against the schema and share the primary query's
	// measure (Y) column — M/O detection and repair write exactly one
	// column.
	Queries []*vql.Query
	// ViewWeights sets the per-view aggregation weights in registration
	// order (index 0 = the primary query). Missing or non-positive
	// entries default to 1.
	ViewWeights []float64

	// K is the CQG size (paper default 10).
	K int
	// Selector picks the CQG selection algorithm (default GSS).
	Selector SelectorKind
	// Alpha is the approximation ratio for SelectAlphaBB (default 5).
	Alpha float64
	// BBMaxExpansions bounds B&B search work per iteration (default 2e5).
	BBMaxExpansions int

	// Dist is the visualization distance. The default is
	// distance.Default: label-aligned EMD (positional for binned axes,
	// total variation for categorical ones). distance.EMD is the
	// paper's literal Eq. (1)–(4) — see DESIGN.md for why it is not the
	// default.
	Dist distance.Func

	// RF configures the entity-matching forest.
	RF rf.Config
	// ClusterThreshold is the auto-merge probability (default 0.5).
	ClusterThreshold float64
	// SimJoinThreshold is Algorithm 1's λ (default 0.4).
	SimJoinThreshold float64
	// ImputeK is the kNN neighbourhood (default 5, §IV).
	ImputeK int

	// Question caps bound per-iteration ERG size (and benefit-model
	// work). Defaults: 40 T, 30 A, 15 M, 15 O.
	MaxT, MaxA, MaxM, MaxO int

	// Seed drives every stochastic component.
	Seed int64

	// Workers bounds the fan-out of the parallel hot paths (benefit
	// annotation, forest training): < 1 selects GOMAXPROCS, 1 runs
	// strictly sequentially. Every worker count produces bit-identical
	// sessions — see DESIGN.md "Concurrency and determinism".
	Workers int

	// Ablation switches (see DESIGN.md "Design deviations" and the
	// BenchmarkAblation_* benches): disable individual stabilizing
	// mechanisms to measure their contribution.
	//
	// NoGeneralization turns off transformation-rule learning: only
	// explicitly approved value pairs standardize.
	NoGeneralization bool
	// NoHysteresis rebuilds the auto-merge set from the raw threshold
	// each iteration instead of the Schmitt-trigger rule.
	NoHysteresis bool
	// NoIncremental disables incremental delta pricing: every hypothesis
	// is priced through the full view-rebuild path. The two paths are
	// bit-identical (enforced by the equivalence suite), so this switch
	// only trades speed — it exists for benchmarking the delta engine's
	// contribution and for bisecting any future equivalence regression.
	NoIncremental bool
	// NoIncrementalDetect disables incremental detection (DESIGN.md
	// §10): every iteration re-runs the full §IV detectors instead of
	// maintaining similarity-join postings, neighbour lists and ERG scan
	// indexes across iterations. Same contract as NoIncremental — the
	// two detect paths are bit-identical (enforced by the
	// detect-equivalence suite), so the switch only trades speed.
	NoIncrementalDetect bool
	// NoArtifactCache disables the cross-session shared artifact cache
	// for this session even when Artifacts is set: every index,
	// standardizer and forest is built privately, exactly as before the
	// cache existed. Same contract as the other ablation switches — the
	// cached and private paths are bit-identical (enforced by the
	// determinism suite), so this only trades setup speed.
	NoArtifactCache bool

	// Artifacts, when set (and NoArtifactCache unset), is the shared
	// cross-session artifact cache (internal/artifact, DESIGN.md §12).
	// Session setup acquires the heavy immutables — match candidates,
	// feature vectors, the first trained forest, token indexes, frozen
	// standardizers, similarity joins, the pristine chart — from it
	// instead of building them privately.
	Artifacts *artifact.Cache

	// TruthVis, when set, lets reports include the distance to the
	// ground-truth visualization (the experiments' EMD(Q(D), Q(D_g))).
	TruthVis *vis.Data
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.K == 0 {
		out.K = 10
	}
	if out.Alpha == 0 {
		out.Alpha = 5
	}
	if out.BBMaxExpansions == 0 {
		out.BBMaxExpansions = 200000
	}
	if out.Dist == nil {
		out.Dist = distance.Default
	}
	if out.RF.NumTrees == 0 {
		seed := out.RF.Seed
		out.RF = rf.DefaultConfig()
		out.RF.Seed = seed
	}
	// Zero-valued RF hyperparameters inherit the defaults even when the
	// caller customized others (rf.Train rejects zero depth/leaf).
	def := rf.DefaultConfig()
	if out.RF.MaxDepth == 0 {
		out.RF.MaxDepth = def.MaxDepth
	}
	if out.RF.MinLeaf == 0 {
		out.RF.MinLeaf = def.MinLeaf
	}
	if out.RF.FeatureFrac == 0 {
		out.RF.FeatureFrac = def.FeatureFrac
	}
	// The RF seed derives from Config.Seed whenever it is unset —
	// including when the caller customized other RF knobs. Gating this
	// on the whole RF config being defaulted (as an earlier version did)
	// silently trained identical forests for differently-seeded
	// sessions as soon as a caller touched RF.NumTrees.
	if out.RF.Seed == 0 {
		out.RF.Seed = c.Seed + 1
	}
	if out.RF.Workers == 0 {
		out.RF.Workers = out.Workers
	}
	if out.ClusterThreshold == 0 {
		out.ClusterThreshold = 0.5
	}
	if out.SimJoinThreshold == 0 {
		out.SimJoinThreshold = 0.4
	}
	if out.ImputeK == 0 {
		out.ImputeK = impute.DefaultK
	}
	if out.MaxT == 0 {
		out.MaxT = 40
	}
	if out.MaxA == 0 {
		out.MaxA = 30
	}
	if out.MaxM == 0 {
		out.MaxM = 15
	}
	if out.MaxO == 0 {
		out.MaxO = 15
	}
	return out
}

// Session is one interactive cleaning run over one table and one query.
type Session struct {
	cfg   Config
	table *dataset.Table
	query *vql.Query

	// queries lists every registered view's query in registration
	// order; queries[0] == query always. viewWeights aligns with it.
	// Views added mid-session (AddView) append here and log an
	// AnswerKindV entry so replay restores them at the same point.
	queries     []*vql.Query
	viewWeights []float64

	xCol int // x-axis column index
	yCol int // y-axis (measure) column index

	// aColumns are the categorical columns eligible for A-questions: the
	// X axis if categorical, plus categorical WHERE columns (the paper's
	// Q7 cleans Venue synonyms inside the predicate).
	aColumns []int

	matcher    *em.Matcher
	candidates []em.Pair
	probCache  map[em.Pair]float64
	// featCache holds per-pair feature vectors; entries touching a tuple
	// whose cells changed (dirtyIDs) are recomputed at the next refresh.
	featCache map[em.Pair][]float64
	dirtyIDs  map[dataset.TupleID]struct{}
	// mergeList is the threshold-filtered, probability-sorted candidate
	// list, shared by every clustering rebuild within an iteration.
	mergeList []em.ScoredPair
	// prevMerged is the last iteration's auto-merge set, input to the
	// hysteresis rule (see hysteresisMergeList).
	prevMerged map[em.Pair]struct{}
	confirmed  []em.Pair
	split      []em.Pair
	// userLabeled is set once the user answers a first T-question. Until
	// then the model (trained only on bootstrap pseudo-labels) is used
	// for probabilities and active learning but not for auto-merging, so
	// the initial visualization is the raw dirty chart — the paper's
	// Fig 10(a) starting point.
	userLabeled bool

	// std holds the current per-column synonym classes. It is rebuilt
	// from aApproved/aRejected on every model refresh: approvals union
	// value classes unless a rejection (cannot-link) contradicts the
	// merge — this is what lets later correct answers cut an earlier
	// wrong merge (Exp-3's wrong-label tolerance).
	std       map[string]*goldenrec.Standardizer
	aApproved []aKey
	aRejected []aKey

	answeredA map[aKey]struct{}
	answeredM map[dataset.TupleID]struct{}
	answeredO map[dataset.TupleID]struct{}

	clusters *em.Clusters
	iter     int

	// traceLabel tags this session's iteration traces in the shared
	// obs tracer (the service layer sets it to the public session id).
	// Purely observational — it never influences the computation.
	traceLabel string

	// knnIndex is the lazily-built shared neighbour index over the
	// working table (see internal/knn). Its token sets exclude yCol —
	// the only column cleaning rewrites — and tokenize A-column cells
	// through the session's standardizers, so approved synonyms share
	// tokens. canonSnap/valueRows track, per A-column, each distinct
	// value's canonical form as of the last index maintenance and the
	// rows carrying it: after a model refresh changes some canonical
	// forms, exactly the affected rows are re-tokenized (see
	// maintainKnnIndex).
	knnIndex  *knn.Index
	canonSnap map[int]map[string]string
	valueRows map[int]map[string][]int

	// detect is the incrementally maintained detection state (see
	// detectdelta.go); nil until the first detect, or always nil under
	// Config.NoIncrementalDetect. lastDetect is the most recent detect
	// phase's accounting, copied into the iteration Report.
	detect     *detectDelta
	lastDetect detectStats

	// committed is the answer log, one group per completed iteration;
	// current accumulates the in-flight iteration's applied answers.
	// Together they form the session's History — the recoverable core
	// that Snapshot/Replay (see history.go) serializes.
	committed [][]Answer
	current   []Answer

	// fingerprint keys this session's entries in the shared artifact
	// cache ("" when the cache is off). artMu guards the retained handle
	// list: Close may race with a still-running iteration's lazy
	// acquisitions (see artifacts.go). stdBase caches the per-column
	// shared standardizer bases; basevis the per-view pristine charts,
	// aligned with queries.
	fingerprint string
	artMu       sync.Mutex
	artClosed   bool
	artHandles  []*artifact.Handle
	stdBase     map[int]*goldenrec.Standardizer
	basevis     []*basevisArtifact
}

type aKey struct {
	col, v1, v2 string
}

func makeAKey(col, v1, v2 string) aKey {
	if v1 > v2 {
		v1, v2 = v2, v1
	}
	return aKey{col: col, v1: v1, v2: v2}
}

// NewSession initializes VisClean over a dirty table (framework steps
// 1–2): it validates the query, generates EM candidates via blocking,
// bootstraps the matching model with distant-supervision pseudo-labels,
// and builds the initial clustering. keyColumns are the blocking keys.
func NewSession(table *dataset.Table, query *vql.Query, keyColumns []int, cfg Config) (*Session, error) {
	cfg = cfg.withDefaults()
	if err := query.Validate(table.Schema()); err != nil {
		return nil, err
	}
	s := &Session{
		cfg:       cfg,
		table:     table.Clone(), // never mutate the caller's table
		query:     query,
		xCol:      table.ColumnIndex(query.X),
		yCol:      table.ColumnIndex(query.Y),
		std:       map[string]*goldenrec.Standardizer{},
		answeredA: map[aKey]struct{}{},
		answeredM: map[dataset.TupleID]struct{}{},
		answeredO: map[dataset.TupleID]struct{}{},
	}

	s.queries = append(s.queries, query)
	for _, q := range cfg.Queries {
		if err := s.validateView(q); err != nil {
			return nil, err
		}
		s.queries = append(s.queries, q)
		obsViewRegistrations.Inc()
	}
	s.viewWeights = make([]float64, len(s.queries))
	for i := range s.viewWeights {
		s.viewWeights[i] = 1
		if i < len(cfg.ViewWeights) && cfg.ViewWeights[i] > 0 {
			s.viewWeights[i] = cfg.ViewWeights[i]
		}
	}
	s.basevis = make([]*basevisArtifact, len(s.queries))

	// The A-column set is the union over every view, in registration
	// order: the primary view's columns come first, so the N=1 session
	// sees exactly the historical ordering.
	for _, q := range s.queries {
		s.registerViewColumns(q)
	}
	if cfg.Artifacts != nil && !cfg.NoArtifactCache {
		s.fingerprint = table.Fingerprint()
	}
	s.rebuildStandardizers()

	s.matcher = em.NewMatcher(s.table, cfg.RF)
	if boot := s.acquireBootstrap(keyColumns); boot != nil {
		s.installBootstrap(boot)
	} else {
		s.candidates = em.Candidates(s.table, em.BlockingConfig{KeyColumns: keyColumns})
		s.bootstrapMatcher()
		s.refreshModel()
	}
	return s, nil
}

// bootstrapMatcher seeds the EM model with distant-supervision pseudo-
// labels: the candidate pairs the similarity heuristic ranks as most and
// least similar, gated by absolute sanity thresholds. No ground truth
// and no user budget is consumed. Rank-based selection matters because
// the heuristic's absolute scale shifts with the schema (a table with
// many near-constant numeric columns floats every pair's score up).
func (s *Session) bootstrapMatcher() {
	const maxSeedPerClass = 30
	type scored struct {
		p  em.Pair
		pr float64
	}
	// Feature vectors are computed once here and seeded into featCache:
	// the first refreshModel reuses them verbatim (no cells have changed
	// yet), halving session construction's dominant cost. Bit-identical
	// because Matcher.Prob is ProbWithFeatures over these same features.
	if s.featCache == nil {
		s.featCache = make(map[em.Pair][]float64, len(s.candidates))
	}
	all := make([]scored, 0, len(s.candidates))
	for _, p := range s.candidates {
		feats := s.matcher.Features(s.table, p)
		s.featCache[p] = feats
		all = append(all, scored{p: p, pr: s.matcher.ProbWithFeatures(p, feats)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].pr != all[j].pr {
			return all[i].pr > all[j].pr
		}
		if all[i].p.A != all[j].p.A {
			return all[i].p.A < all[j].p.A
		}
		return all[i].p.B < all[j].p.B
	})
	pos := 0
	for _, sc := range all {
		if pos >= maxSeedPerClass || sc.pr < 0.88 {
			break
		}
		s.matcher.AddLabel(sc.p, true)
		pos++
	}
	neg := 0
	for i := len(all) - 1; i >= 0; i-- {
		sc := all[i]
		if neg >= maxSeedPerClass || sc.pr > 0.55 {
			break
		}
		s.matcher.AddLabel(sc.p, false)
		neg++
	}
}

// refreshModel retrains the matcher, refreshes the probability cache,
// rebuilds the synonym classes from the accumulated A votes and rebuilds
// the entity clustering (framework step 6's model update).
func (s *Session) refreshModel() {
	_ = s.matcher.Train(s.table) // single-class training silently keeps the heuristic
	if s.featCache == nil {
		s.featCache = make(map[em.Pair][]float64, len(s.candidates))
	}
	s.probCache = make(map[em.Pair]float64, len(s.candidates))
	for _, p := range s.candidates {
		feats, ok := s.featCache[p]
		if !ok || s.pairDirty(p) {
			feats = s.matcher.Features(s.table, p)
			s.featCache[p] = feats
		}
		s.probCache[p] = s.matcher.ProbWithFeatures(p, feats)
	}
	s.dirtyIDs = nil
	if s.userLabeled {
		s.mergeList = s.hysteresisMergeList()
	} else {
		s.mergeList = nil // no auto-merging before the first user label
	}
	s.rebuildStandardizers()
	s.clusters = s.buildClusters(nil, nil)
	s.maintainKnnIndex()
}

// hysteresisMergeList selects the auto-merge pairs with a Schmitt-
// trigger rule: an unmerged pair merges when its probability clears
// threshold+margin, and a previously merged pair stays merged until it
// falls below threshold−margin. Retraining on a handful of new labels
// moves marginal probabilities a little every iteration; without the
// hysteresis those pairs flap in and out of the entity set and the
// visualization thrashes.
func (s *Session) hysteresisMergeList() []em.ScoredPair {
	margin := 0.07
	if s.cfg.NoHysteresis {
		margin = 0
	}
	th := s.cfg.ClusterThreshold
	merged := make(map[em.Pair]struct{}, len(s.prevMerged))
	keep := func(p em.Pair, pr float64) bool {
		if pr >= th+margin {
			return true
		}
		if _, was := s.prevMerged[p]; was && pr >= th-margin {
			return true
		}
		return false
	}
	var list []em.ScoredPair
	for _, p := range s.candidates {
		pr := s.prob(p)
		if keep(p, pr) {
			list = append(list, em.ScoredPair{Pair: p, Prob: pr})
			merged[p] = struct{}{}
		}
	}
	sortScored(list)
	s.prevMerged = merged
	return list
}

func sortScored(list []em.ScoredPair) {
	sort.Slice(list, func(i, j int) bool {
		if list[i].Prob != list[j].Prob {
			return list[i].Prob > list[j].Prob
		}
		if list[i].Pair.A != list[j].Pair.A {
			return list[i].Pair.A < list[j].Pair.A
		}
		return list[i].Pair.B < list[j].Pair.B
	})
}

func (s *Session) pairDirty(p em.Pair) bool {
	if len(s.dirtyIDs) == 0 {
		return false
	}
	if _, ok := s.dirtyIDs[p.A]; ok {
		return true
	}
	_, ok := s.dirtyIDs[p.B]
	return ok
}

// markDirty records that a tuple's cells changed, invalidating cached
// pair features that involve it.
func (s *Session) markDirty(id dataset.TupleID) {
	if s.dirtyIDs == nil {
		s.dirtyIDs = map[dataset.TupleID]struct{}{}
	}
	s.dirtyIDs[id] = struct{}{}
}

// rebuildStandardizers reconstructs the per-column synonym classes from
// scratch: approvals merge value classes unless the merge would put a
// rejected pair into one class. On top of the literal approvals, learned
// transformation rules generalize them (see generalizeApprovals) —
// VisClean's Strategy-1 substrate is an unsupervised string
// transformation learner [11], and without generalization a budget of
// ~15 composite questions cannot touch hundreds of distinct variant
// spellings.
func (s *Session) rebuildStandardizers() {
	schema := s.table.Schema()
	s.std = map[string]*goldenrec.Standardizer{}
	for _, c := range s.aColumns {
		s.std[schema[c].Name] = s.baseStandardizer(c)
	}
	for _, ap := range s.aApproved {
		st := s.std[ap.col]
		if st == nil || s.approveViolatesReject(st, ap) {
			continue
		}
		st.Approve(ap.v1, ap.v2)
	}
	if s.cfg.NoGeneralization {
		return
	}
	for _, c := range s.aColumns {
		s.generalizeApprovals(c, schema[c].Name)
	}
}

// generalizeApprovals feeds the user's approvals into a transformation
// learner (the paper's GoldenRecordCreation substrate [11], see
// internal/transform) and standardizes every group of column values the
// learned rules predict equivalent: approving "ACM SIGMOD" ≈ "SIGMOD"
// also merges "ACM KDD" into "KDD" without ever asking. A generalized
// merge is skipped when a user rejection contradicts it, so wrong
// generalizations are correctable (Exp-3 robustness).
func (s *Session) generalizeApprovals(col int, name string) {
	learner := transform.NewLearner()
	taught := false
	for _, ap := range s.aApproved {
		if ap.col != name {
			continue
		}
		learner.Observe(ap.v1, ap.v2)
		taught = true
	}
	if !taught {
		return
	}
	values := make([]string, 0)
	for v := range s.table.DistinctStrings(col) {
		values = append(values, v)
	}
	sort.Strings(values)
	st := s.std[name]
	for _, group := range learner.Groups(values) {
		for _, v := range group[1:] {
			key := makeAKey(name, group[0], v)
			if !s.approveViolatesReject(st, key) {
				st.Approve(group[0], v)
			}
		}
	}
}

// approveViolatesReject reports whether unioning ap's two values would
// join any rejected pair of the same column into one class.
func (s *Session) approveViolatesReject(st *goldenrec.Standardizer, ap aKey) bool {
	for _, rj := range s.aRejected {
		if rj.col != ap.col {
			continue
		}
		cross := (st.SameClass(rj.v1, ap.v1) && st.SameClass(rj.v2, ap.v2)) ||
			(st.SameClass(rj.v1, ap.v2) && st.SameClass(rj.v2, ap.v1))
		if cross {
			return true
		}
	}
	return false
}

// prob returns the cached matching probability of a candidate pair.
func (s *Session) prob(p em.Pair) float64 {
	if pr, ok := s.probCache[p]; ok {
		return pr
	}
	return s.matcher.Prob(s.table, p)
}

// buildClusters builds the entity partition under the accumulated user
// constraints plus optional extra hypothetical ones.
func (s *Session) buildClusters(extraConfirm, extraSplit []em.Pair) *em.Clusters {
	conf := s.confirmed
	spl := s.split
	if len(extraConfirm) > 0 {
		conf = append(append([]em.Pair(nil), conf...), extraConfirm...)
	}
	if len(extraSplit) > 0 {
		spl = append(append([]em.Pair(nil), spl...), extraSplit...)
	}
	return em.BuildClustersSorted(s.table, s.mergeList, em.ClusterConfig{
		Threshold: s.cfg.ClusterThreshold,
		Confirmed: conf,
		Split:     spl,
	})
}

// knnIdx returns the session's shared kNN token index, building it on
// first use. A-column cells are tokenized through the current
// standardizers (knnCanon); the value→canonical snapshot taken here is
// what maintainKnnIndex diffs against after later refreshes.
func (s *Session) knnIdx() *knn.Index {
	if s.knnIndex == nil && !s.knnFromArtifact() {
		s.knnIndex = knn.NewIndexCanon(s.table, s.yCol, s.knnCanon)
		s.snapshotCanon()
	}
	return s.knnIndex
}

// knnCanon maps a cell to the text the kNN index tokenizes: A-column
// text cells resolve to their synonym class's golden value under the
// session's current standardizers; everything else keeps its raw
// rendering. Before any approval Canonical is the identity, so a fresh
// index matches the historical raw-token behaviour exactly.
func (s *Session) knnCanon(col int, v dataset.Value) string {
	if txt, ok := v.Text(); ok {
		if st := s.stdByCol(col); st != nil {
			return st.Canonical(txt)
		}
	}
	return v.String()
}

// stdByCol resolves a column index to its standardizer (nil for
// non-A-columns).
func (s *Session) stdByCol(col int) *goldenrec.Standardizer {
	for _, c := range s.aColumns {
		if c == col {
			return s.std[s.table.Schema()[c].Name]
		}
	}
	return nil
}

// snapshotCanon records, per A-column, every distinct value's canonical
// form under the current standardizers and the rows carrying it.
func (s *Session) snapshotCanon() {
	s.canonSnap = make(map[int]map[string]string, len(s.aColumns))
	s.valueRows = make(map[int]map[string][]int, len(s.aColumns))
	schema := s.table.Schema()
	for _, c := range s.aColumns {
		st := s.std[schema[c].Name]
		snap := make(map[string]string)
		rowsOf := make(map[string][]int)
		for i := 0; i < s.table.NumRows(); i++ {
			txt, ok := s.table.Get(i, c).Text()
			if !ok {
				continue
			}
			if _, seen := snap[txt]; !seen {
				snap[txt] = st.Canonical(txt)
			}
			rowsOf[txt] = append(rowsOf[txt], i)
		}
		s.canonSnap[c] = snap
		s.valueRows[c] = rowsOf
	}
}

// maintainKnnIndex re-tokenizes the rows whose effective cell text
// changed since the last snapshot: a model refresh rebuilds the synonym
// classes, and any value whose canonical form moved stales the token
// sets of exactly the rows carrying it. Runs under both detect paths —
// it is a correctness fix (stale tokens made Q_M/Q_O rank against
// pre-approval text), not an optimization — and additionally marks the
// re-tokenized rows dirty for the incremental detector's neighbour
// cache.
func (s *Session) maintainKnnIndex() {
	if s.knnIndex == nil {
		return
	}
	schema := s.table.Schema()
	var rows []int
	for _, c := range s.aColumns {
		st := s.std[schema[c].Name]
		snap := s.canonSnap[c]
		for v, old := range snap {
			nc := st.Canonical(v)
			if nc == old {
				continue
			}
			snap[v] = nc
			rows = append(rows, s.valueRows[c][v]...)
		}
	}
	if len(rows) == 0 {
		return
	}
	sort.Ints(rows)
	rows = dedupSortedInts(rows)
	s.knnIndex.ResetRows(rows)
	if s.detect != nil {
		s.detect.markTokenDirty(rows)
	}
}

// Table returns the session's working table (with user repairs applied).
func (s *Session) Table() *dataset.Table { return s.table }

// Query returns the session's visualization query.
func (s *Session) Query() *vql.Query { return s.query }

// Iteration returns the number of completed iterations.
func (s *Session) Iteration() int { return s.iter }

// SetTraceLabel tags the session's iteration traces (visible at
// viscleanweb's /debug/traces). The label is observational only.
func (s *Session) SetTraceLabel(label string) { s.traceLabel = label }

// Timings breaks down one iteration's machine time per framework
// component (Fig 18's categories, plus the view/distance bookends the
// paper buckets under "refresh"). Each field also feeds the
// visclean_iteration_phase_seconds metric and the per-iteration trace
// span of the same phase name (see internal/obs and DESIGN.md §5).
type Timings struct {
	Detect   time.Duration // error detection: Q_T/Q_A/Q_M/Q_O generation
	BuildERG time.Duration // ERG construction
	Benefit  time.Duration // estimation-based benefit model (annotate)
	Select   time.Duration // CQG selection
	Apply    time.Duration // repairing data from answers
	Train    time.Duration // model retraining + cluster refresh
	View     time.Duration // cleaned-view build + query execution (before/after charts)
	Distance time.Duration // visualization distance computations (moved / to-truth)
}

// Total sums all components.
func (t Timings) Total() time.Duration {
	return t.Detect + t.BuildERG + t.Benefit + t.Select + t.Apply + t.Train + t.View + t.Distance
}

// Report describes one iteration's outcome.
type Report struct {
	Iteration int
	Selector  string
	// CQGVertices / CQGEdges describe the asked composite question
	// (zero for the Single baseline).
	CQGVertices int
	CQGEdges    int
	// CQGMembers is the selected CQG's vertex set, sorted by tuple id
	// (nil for the Single baseline). The determinism suite compares
	// these across runs and worker counts.
	CQGMembers []dataset.TupleID
	// BenefitEvals counts the unique hypothetical visualizations the
	// benefit model derived this iteration (memo cache misses).
	BenefitEvals int
	// MemoHits counts benefit prices served from the estimator's memo
	// instead of being re-derived (total requests − BenefitEvals).
	MemoHits int
	// DeltaAccepts / DeltaFallbacks split BenefitEvals by pricing path:
	// hypotheses the incremental delta pricer accepted vs. ones it
	// declined (posting/lookup miss), which fell back to the full
	// view-rebuild. Both are zero when the pricer is off
	// (Config.NoIncremental) or unavailable for the query.
	DeltaAccepts   int
	DeltaFallbacks int
	// DetectAccepts / DetectFallbacks split the detect phase's kNN
	// suggestion lookups by path: served from the incrementally
	// maintained neighbour cache vs. recomputed from the live index
	// (first sight or maintenance miss). DetectFull marks an iteration
	// that ran the full detect path (Config.NoIncrementalDetect).
	DetectAccepts   int
	DetectFallbacks int
	DetectFull      bool
	// Questions asked, split by kind, and how many went unanswered
	// (incomplete user input).
	TQuestions, AQuestions, MQuestions, OQuestions int
	Unanswered                                     int
	// EstimatedBenefit is the selected CQG's modeled benefit.
	EstimatedBenefit float64
	// DistToTruth is dist(Q(D), Q(D_g)) when Config.TruthVis is set.
	DistToTruth float64
	// DistMoved is dist(previous vis, new vis) of the primary view: the
	// actual change.
	DistMoved float64
	// ViewCharts holds each view's chart after this iteration, in view
	// registration order (index 0 = the primary query) — the panels a
	// multi-view frontend refreshes. Nil only on an exhausted iteration.
	ViewCharts []*vis.Data
	// ViewDistMoved is each view's dist(before, after) this iteration,
	// aligned with ViewCharts; ViewDistMoved[0] == DistMoved.
	ViewDistMoved []float64
	// Exhausted reports that the ERG ran out of questions.
	Exhausted bool
	Timings   Timings
}

// Questions returns the total number of questions asked this iteration.
func (r Report) Questions() int {
	return r.TQuestions + r.AQuestions + r.MQuestions + r.OQuestions
}
