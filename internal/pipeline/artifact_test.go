package pipeline

// Determinism of the cross-session artifact cache (DESIGN.md §12): a
// session acquiring its setup structures from the shared cache — cold,
// warm, under concurrent churn, under eviction pressure, or restored
// from a snapshot — must be byte-identical to a cache-off session.
// scripts/check.sh runs this file under -race alongside the other
// determinism suites, which is what validates the sharing itself: any
// write to a cached structure from session code is a data race once two
// sessions hold it.

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"visclean/internal/artifact"
	"visclean/internal/datagen"
	"visclean/internal/oracle"
	"visclean/internal/vql"
)

// newArtSession builds the standard determinism-suite session with an
// artifact cache wired in (nil means cache off).
func newArtSession(t testing.TB, cache *artifact.Cache, seed int64, mod func(*Config)) (*Session, *oracle.Oracle) {
	t.Helper()
	d := datagen.D1(datagen.Config{Scale: 0.004, Seed: seed})
	q := vql.MustParse(`VISUALIZE bar SELECT Venue, SUM(Citations) FROM D1 TRANSFORM GROUP BY Venue SORT Y BY DESC LIMIT 10`)
	truthVis, err := q.Execute(d.Truth.Clean)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Seed:      seed,
		TruthVis:  truthVis,
		Artifacts: cache,
	}
	if mod != nil {
		mod(&cfg)
	}
	s, err := NewSession(d.Dirty, q, d.KeyColumns, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, oracle.New(d.Truth, seed)
}

// traceSession is runDetSession's iteration loop on an existing session.
func traceSession(t testing.TB, s *Session, user User) detTrace {
	t.Helper()
	var tr detTrace
	for i := 0; i < 5; i++ {
		rep, err := s.RunIteration(user)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Exhausted {
			break
		}
		tr.CQGs = append(tr.CQGs, rep.CQGMembers)
		tr.Benefits = append(tr.Benefits, rep.EstimatedBenefit)
		tr.Evals = append(tr.Evals, rep.BenefitEvals)
		tr.Questions = append(tr.Questions, rep.Questions())
	}
	h, err := json.Marshal(s.History())
	if err != nil {
		t.Fatal(err)
	}
	tr.History = h
	if v, err := s.CurrentVis(); err == nil {
		tr.FinalVis = fmt.Sprintf("%+v", v)
	}
	return tr
}

// runArtSession runs a full traced session against cache (nil = off).
func runArtSession(t testing.TB, cache *artifact.Cache, seed int64) detTrace {
	t.Helper()
	s, user := newArtSession(t, cache, seed, nil)
	defer s.Close()
	return traceSession(t, s, user)
}

// TestDeterminismArtifactCacheColdWarm holds a cache-off session, the
// session that populates a cold cache, and a session served entirely
// from the warm cache byte-identical.
func TestDeterminismArtifactCacheColdWarm(t *testing.T) {
	off := runArtSession(t, nil, 7)
	cache := artifact.New(0)
	cold := runArtSession(t, cache, 7)
	if cache.Stats().Entries == 0 {
		t.Fatal("cold session cached no artifacts; the cache is not wired in")
	}
	warm := runArtSession(t, cache, 7)
	assertTracesEqual(t, "cache off vs cold", off, cold)
	assertTracesEqual(t, "cache off vs warm", off, warm)
}

// TestDeterminismArtifactCacheConcurrent churns N concurrent sessions
// over the same fingerprint through one cache: every session must match
// the cache-off baseline (and under -race, every shared read must be
// clean).
func TestDeterminismArtifactCacheConcurrent(t *testing.T) {
	baseline := runArtSession(t, nil, 7)
	cache := artifact.New(0)
	const n = 6
	traces := make([]detTrace, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			traces[i] = runArtSession(t, cache, 7)
		}(i)
	}
	wg.Wait()
	for i, tr := range traces {
		assertTracesEqual(t, fmt.Sprintf("concurrent session %d vs cache-off", i), baseline, tr)
	}
}

// TestDeterminismArtifactCacheEvictionPressure runs sessions against a
// one-byte budget: every artifact is over budget the moment its last
// handle releases, so sessions constantly rebuild — but an artifact a
// session still references must survive (handles pin entries), so the
// outcome stays byte-identical.
func TestDeterminismArtifactCacheEvictionPressure(t *testing.T) {
	baseline := runArtSession(t, nil, 7)
	cache := artifact.New(1)
	traces := make([]detTrace, 3)
	var wg sync.WaitGroup
	for i := range traces {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			traces[i] = runArtSession(t, cache, 7)
		}(i)
	}
	wg.Wait()
	for i, tr := range traces {
		assertTracesEqual(t, fmt.Sprintf("evicted session %d vs cache-off", i), baseline, tr)
	}
	if st := cache.Stats(); st.Bytes > 1 {
		t.Fatalf("cache retains %d bytes after all sessions closed, budget 1", st.Bytes)
	}
}

// TestDeterminismArtifactCacheKillSwitch asserts NoArtifactCache really
// bypasses the cache: nothing is cached and the session matches the
// cache-off baseline.
func TestDeterminismArtifactCacheKillSwitch(t *testing.T) {
	baseline := runArtSession(t, nil, 7)
	cache := artifact.New(0)
	s, user := newArtSession(t, cache, 7, func(c *Config) { c.NoArtifactCache = true })
	defer s.Close()
	tr := traceSession(t, s, user)
	if st := cache.Stats(); st.Entries != 0 {
		t.Fatalf("kill switch on, yet %d artifacts were cached", st.Entries)
	}
	assertTracesEqual(t, "kill switch vs cache-off", baseline, tr)
}

// TestDeterminismArtifactCacheReplay restores sessions from an answer
// log with and without a warm cache. Replay applies approvals before
// the kNN index is first built, so the post-restore iterations exercise
// the artifact path that adopts the shared raw token sets and
// re-tokenizes exactly the rows whose canonical text moved.
func TestDeterminismArtifactCacheReplay(t *testing.T) {
	live, orc := newArtSession(t, nil, 5, nil)
	defer live.Close()
	for i := 0; i < 3; i++ {
		rep, err := live.RunIteration(orc)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Exhausted {
			break
		}
	}
	h := live.History()

	cache := artifact.New(0)
	warmup, _ := newArtSession(t, cache, 5, nil)
	warmup.Close()

	restore := func(c *artifact.Cache) detTrace {
		s, _ := newArtSession(t, c, 5, nil)
		defer s.Close()
		if err := s.Replay(h); err != nil {
			t.Fatal(err)
		}
		// A fresh same-seed oracle for each restored session: the two
		// continuations must consume identical answer streams.
		d := datagen.D1(datagen.Config{Scale: 0.004, Seed: 5})
		return traceSession(t, s, oracle.New(d.Truth, 99))
	}
	off := restore(nil)
	warm := restore(cache)
	assertTracesEqual(t, "restored cache-off vs warm cache", off, warm)
}
