package pipeline

// The whole pipeline test suite — including the determinism and
// incremental-pricing trace-equality tests — runs with observability ON.
// That is the acceptance test for the obs layer's core invariant:
// instrumentation observes computation but never feeds back into it, so
// enabling metrics and tracing cannot change a single byte of any
// session's outcome.

import (
	"os"
	"testing"

	"visclean/internal/obs"
)

func TestMain(m *testing.M) {
	obs.SetEnabled(true)
	obs.DefaultTracer.SetEnabled(true)
	os.Exit(m.Run())
}
